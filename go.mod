module pneuma

go 1.24
