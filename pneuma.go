package pneuma

import (
	"context"
	"io"
	"time"

	"pneuma/internal/core"
	"pneuma/internal/docdb"
	"pneuma/internal/docs"
	"pneuma/internal/harness"
	"pneuma/internal/kramabench"
	"pneuma/internal/llm"
	"pneuma/internal/retriever"
	"pneuma/internal/sqlengine"
	"pneuma/internal/table"
	"pneuma/internal/websearch"
)

// Core system types.
type (
	// Config configures a Seeker (model, action cap, web search, ablations).
	Config = core.Config
	// Seeker is the assembled Pneuma-Seeker system (paper Figure 1).
	Seeker = core.Seeker
	// Session is one user's conversation with shared state (T, Q).
	Session = core.Session
	// Reply is one user-facing turn outcome, including the state view.
	Reply = core.Reply
	// State is the shared (T, Q) state object.
	State = core.State
)

// Substrate types.
type (
	// Table is the in-memory relational table.
	Table = table.Table
	// Schema describes a table's columns.
	Schema = table.Schema
	// Column is one schema attribute.
	Column = table.Column
	// Engine is the SQL executor over in-memory tables.
	Engine = sqlengine.Engine
	// Retriever is the hybrid (HNSW + BM25) table-discovery index.
	Retriever = retriever.Retriever
	// KnowledgeDB is the Document Database for captured domain knowledge.
	KnowledgeDB = docdb.DB
	// WebSearch is the (simulated) web search engine.
	WebSearch = websearch.Engine
	// Model is the language-model interface agents depend on.
	Model = llm.Model
	// Question is one benchmark item with its oracle answer.
	Question = kramabench.Question
	// Document is one retrievable unit (a table, a knowledge note or a
	// web page) as returned by Service.Search and the retrievers.
	Document = docs.Document
)

// NewSeeker assembles a bare Pneuma-Seeker over a table corpus. web and kb
// may be nil; a nil cfg.Model defaults to the deterministic SimModel with
// the paper's o4-mini profile.
//
// Deprecated: use New, which returns a concurrency-safe Service with
// request scheduling and takes the same knobs as functional options (see
// the README's migration table). NewSeeker remains for single-session
// batch use.
func NewSeeker(cfg Config, corpus map[string]*Table, web *WebSearch, kb *KnowledgeDB) (*Seeker, error) {
	return core.New(context.Background(), cfg, corpus, web, kb)
}

// NewEngine creates an empty SQL engine.
func NewEngine() *Engine { return sqlengine.NewEngine() }

// NewRetriever creates an empty hybrid retrieval index with default
// sharding (GOMAXPROCS-derived) and the in-memory backend.
func NewRetriever() *Retriever { return retriever.New() }

// Backend selects the shard storage engine of the hybrid index.
type Backend = retriever.Backend

// The available shard storage backends.
const (
	// BackendMemory keeps every shard in RAM (the default).
	BackendMemory = retriever.Memory
	// BackendDisk persists every shard to an append-only segment file,
	// reloaded on open; Retriever.Flush/Close make writes durable.
	BackendDisk = retriever.Disk
)

// RetrieverKnobs are the scaling knobs of the sharded hybrid index. Zero
// values select the defaults (GOMAXPROCS-derived shard count, GOMAXPROCS
// embedding workers, in-memory backend).
//
// Deprecated: prefer assembling a Service with New and the equivalent
// options (WithShards, WithIndexWorkers, WithBackend, WithIndexDir,
// WithEf); RetrieverKnobs remains for standalone-index workflows.
type RetrieverKnobs struct {
	// Shards is the number of hash partitions of the index.
	Shards int
	// Workers sizes the embedding worker pool used by bulk ingest.
	Workers int
	// Backend selects the shard storage engine (BackendMemory or
	// BackendDisk).
	Backend Backend
	// Dir is the index directory for BackendDisk (default: a fresh
	// temporary directory). Opening a directory that already holds an
	// index loads it.
	Dir string
	// Ef is the HNSW query beam width (default 64). Larger values trade
	// query latency for vector-search recall; the knob is query-time
	// only, so an existing disk index may be reopened with a different
	// value.
	Ef int
	// SyncEvery triggers a group-commit fsync once n BackendDisk records
	// are pending (0, the default, defers durability to Flush/Close
	// unless another sync knob is set).
	SyncEvery int
	// SyncBytes triggers a group-commit fsync once pending BackendDisk
	// records reach n bytes (0 leaves the trigger unset).
	SyncBytes int64
	// SyncInterval bounds how long an acknowledged BackendDisk write may
	// stay unsynced (0 leaves the bound unset; defaults to 2ms when
	// SyncEvery or SyncBytes is set).
	SyncInterval time.Duration
	// CompactionRatio is the dead-record fraction that triggers a
	// BackendDisk segment rewrite at Flush/Close (0 = the default 0.5;
	// negative disables compaction).
	CompactionRatio float64
	// Quantize enables the int8 speed tier: query traversal on
	// scalar-quantized vectors with exact float32 rescoring (default
	// off).
	Quantize bool
	// Mmap makes BackendDisk snapshot loads memory-map the file instead
	// of reading it (default off; ignored where unsupported).
	Mmap bool
}

// NewRetrieverWith creates a hybrid retrieval index with explicit scaling
// knobs, loading any existing index when BackendDisk points at a directory
// with persisted segments.
func NewRetrieverWith(k RetrieverKnobs) (*Retriever, error) {
	var opts []retriever.Option
	if k.Shards > 0 {
		opts = append(opts, retriever.WithShards(k.Shards))
	}
	if k.Workers > 0 {
		opts = append(opts, retriever.WithWorkers(k.Workers))
	}
	if k.Backend != "" {
		opts = append(opts, retriever.WithBackend(k.Backend))
	}
	if k.Dir != "" {
		opts = append(opts, retriever.WithDir(k.Dir))
	}
	if k.Ef > 0 {
		opts = append(opts, retriever.WithEf(k.Ef))
	}
	if k.SyncEvery > 0 {
		opts = append(opts, retriever.WithSyncEvery(k.SyncEvery))
	}
	if k.SyncBytes > 0 {
		opts = append(opts, retriever.WithSyncBytes(k.SyncBytes))
	}
	if k.SyncInterval > 0 {
		opts = append(opts, retriever.WithSyncInterval(k.SyncInterval))
	}
	if k.CompactionRatio != 0 {
		opts = append(opts, retriever.WithCompactionRatio(k.CompactionRatio))
	}
	if k.Quantize {
		opts = append(opts, retriever.WithQuantize(true))
	}
	if k.Mmap {
		opts = append(opts, retriever.WithMmap(true))
	}
	return retriever.Open(opts...)
}

// ParseBackend converts a user-supplied string ("memory", "disk", or empty
// for the default) into a Backend.
func ParseBackend(s string) (Backend, error) { return retriever.ParseBackend(s) }

// NewKnowledgeDB creates an empty knowledge store.
func NewKnowledgeDB() *KnowledgeDB { return docdb.New() }

// NewWebSearch creates the simulated web search engine over the built-in
// synthetic corpus (tariff schedules plus distractors).
func NewWebSearch() *WebSearch { return websearch.New(websearch.BuiltinCorpus()) }

// NewSimModel creates the deterministic rule-engine language model with the
// given pricing-catalog profile ("o4-mini", "o3", "gpt-4o", ...).
func NewSimModel(profile string) Model {
	return llm.NewSimModel(llm.WithProfile(profile))
}

// ReadCSV parses a CSV stream into a Table (header row first, types
// inferred).
func ReadCSV(name string, r io.Reader) (*Table, error) { return table.ReadCSV(name, r) }

// LoadDir loads every *.csv in a directory into a corpus map.
func LoadDir(dir string) (map[string]*Table, error) { return table.LoadDir(dir) }

// ArchaeologyDataset generates the synthetic archaeology benchmark dataset
// (5 tables, Table 1 shape).
func ArchaeologyDataset() map[string]*Table { return kramabench.Archaeology() }

// EnvironmentDataset generates the synthetic environment benchmark dataset
// (36 tables, Table 1 shape).
func EnvironmentDataset() map[string]*Table { return kramabench.Environment() }

// SyntheticDataset generates an n-table domain-structured corpus for
// ingest and retrieval scale testing (seeded, deterministic).
func SyntheticDataset(n int) map[string]*Table { return kramabench.Synthetic(n) }

// ArchaeologyQuestions returns the 12 archaeology benchmark questions with
// oracle answers.
func ArchaeologyQuestions(corpus map[string]*Table) []Question {
	return kramabench.ArchaeologyQuestions(corpus)
}

// EnvironmentQuestions returns the 20 environment benchmark questions with
// oracle answers.
func EnvironmentQuestions(corpus map[string]*Table) []Question {
	return kramabench.EnvironmentQuestions(corpus)
}

// Evaluation is the complete per-dataset result set (RQ1 + RQ2 + tokens).
type Evaluation = harness.DatasetEvaluation

// RunFullEvaluation reproduces the paper's §4 for one dataset: Figure 4/5
// convergence, Table 2 token usage, Table 3 accuracy and the O3 in-text
// result. The context bounds the whole sweep; cancellation aborts between
// conversations.
func RunFullEvaluation(ctx context.Context, dataset string, corpus map[string]*Table, questions []Question) (Evaluation, error) {
	return harness.RunFullEvaluation(ctx, dataset, corpus, questions, harness.EvalOptions{})
}
