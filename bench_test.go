// Package pneuma_test hosts the benchmark harness that regenerates every
// table and figure of the paper (DESIGN.md §4) plus the ablation benches
// for the design decisions of DESIGN.md §5.
//
// The full evaluations are deterministic and expensive (hundreds of
// simulated conversations), so they are computed once per process and
// shared across benchmarks; each benchmark prints the paper artifact it
// regenerates. Micro-benchmarks for the substrates (retrieval, SQL engine,
// embedding) report real per-operation numbers.
package pneuma_test

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"pneuma/internal/baselines"
	"pneuma/internal/harness"
	"pneuma/internal/ir"
	"pneuma/internal/kramabench"
	"pneuma/internal/llm"
	"pneuma/internal/retriever"
	"pneuma/internal/sqlengine"
	"pneuma/internal/table"

	"pneuma/internal/core"
)

var (
	evalOnce sync.Once
	archEval harness.DatasetEvaluation
	envEval  harness.DatasetEvaluation
	evalErr  error
)

func fullEvals(b *testing.B) (harness.DatasetEvaluation, harness.DatasetEvaluation) {
	b.Helper()
	evalOnce.Do(func() {
		arch := kramabench.Archaeology()
		archEval, evalErr = harness.RunFullEvaluation(context.Background(), "Archeology", arch,
			kramabench.ArchaeologyQuestions(arch), harness.EvalOptions{})
		if evalErr != nil {
			return
		}
		env := kramabench.Environment()
		envEval, evalErr = harness.RunFullEvaluation(context.Background(), "Environment", env,
			kramabench.EnvironmentQuestions(env), harness.EvalOptions{})
	})
	if evalErr != nil {
		b.Fatal(evalErr)
	}
	return archEval, envEval
}

// BenchmarkTable1_DatasetCharacteristics regenerates Table 1.
func BenchmarkTable1_DatasetCharacteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		arch := kramabench.Archaeology()
		env := kramabench.Environment()
		out := harness.RenderTable1([]harness.Table1Row{
			harness.Table1For("Archeology", arch),
			harness.Table1For("Environment", env),
		})
		if i == 0 {
			b.Log("\n" + out)
		}
	}
}

// BenchmarkFigure4_ConvergenceArchaeology regenerates Figure 4.
func BenchmarkFigure4_ConvergenceArchaeology(b *testing.B) {
	arch, _ := fullEvals(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := harness.RenderFigure("Figure 4 (Archeology)", arch.Convergence)
		if i == 0 {
			b.Log("\n" + out)
		}
	}
}

// BenchmarkFigure5_ConvergenceEnvironment regenerates Figure 5.
func BenchmarkFigure5_ConvergenceEnvironment(b *testing.B) {
	_, env := fullEvals(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := harness.RenderFigure("Figure 5 (Environment)", env.Convergence)
		if i == 0 {
			b.Log("\n" + out)
		}
	}
}

// BenchmarkTable2_TokenCosts regenerates Table 2.
func BenchmarkTable2_TokenCosts(b *testing.B) {
	arch, env := fullEvals(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := harness.RenderTable2([]harness.TokenUsageRow{arch.Tokens, env.Tokens})
		if i == 0 {
			b.Log("\n" + out)
		}
	}
}

// BenchmarkTable3_Accuracy regenerates Table 3.
func BenchmarkTable3_Accuracy(b *testing.B) {
	arch, env := fullEvals(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := harness.RenderTable3(arch.RQ2, env.RQ2)
		if i == 0 {
			b.Log("\n" + out)
		}
	}
}

// BenchmarkTable3_O3FullContext regenerates the in-text O3 result.
func BenchmarkTable3_O3FullContext(b *testing.B) {
	arch, env := fullEvals(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := harness.RenderO3(arch.O3, env.O3)
		if i == 0 {
			b.Log("\n" + out)
		}
	}
}

// BenchmarkLatencyTradeoff regenerates the in-text latency comparison.
func BenchmarkLatencyTradeoff(b *testing.B) {
	arch, env := fullEvals(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := harness.RenderLatency(
			[]harness.TokenUsageRow{arch.Tokens, env.Tokens},
			[]string{"FTS", "Pneuma-Retriever"})
		if i == 0 {
			b.Log("\n" + out)
		}
	}
}

// --- Ablation benches (DESIGN.md §5) --------------------------------------

// ablationQuestions bounds the per-config ablation sweeps: the first 6
// archaeology questions cover the easy, dirty-data, cross-table and
// interpolation axes, which is what the ablated capabilities differ on.
const ablationQuestions = 6

// seekerConvergencePct runs a seeker-only archaeology convergence sweep
// under a config and returns (convergence %, accuracy %).
func seekerConvergencePct(b *testing.B, cfg *core.Config) (float64, float64) {
	b.Helper()
	corpus := kramabench.Archaeology()
	questions := kramabench.ArchaeologyQuestions(corpus)[:ablationQuestions]
	sys, err := harness.NewSeekerSystem(corpus, cfg)
	if err != nil {
		b.Fatal(err)
	}
	sim := llm.NewSimModel(llm.WithProfile("gpt-4o"))
	sum, err := harness.RunConvergence(context.Background(), sys, questions, sim, harness.DefaultMaxTurns)
	if err != nil {
		b.Fatal(err)
	}
	correct := 0
	for i, r := range sum.Results {
		if questions[i].AnswersMatch(r.FinalAnswer) {
			correct++
		}
	}
	return sum.Pct, 100 * float64(correct) / float64(len(questions))
}

// BenchmarkAblationDynamicVsStatic compares conductor-style planning with
// the fixed static pipeline (§3.5).
func BenchmarkAblationDynamicVsStatic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dynConv, dynAcc := seekerConvergencePct(b, nil)
		off := false
		statConv, statAcc := seekerConvergencePct(b, &core.Config{DynamicPlanning: &off})
		if i == 0 {
			b.Logf("dynamic: conv=%.1f%% acc=%.1f%% | static pipeline: conv=%.1f%% acc=%.1f%%",
				dynConv, dynAcc, statConv, statAcc)
		}
	}
}

// BenchmarkAblationContextSpecialization compares specialized per-component
// contexts with one merged mega-context (§3.1), reporting token blow-up.
func BenchmarkAblationContextSpecialization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		corpus := kramabench.Archaeology()
		questions := kramabench.ArchaeologyQuestions(corpus)[:ablationQuestions]
		sim := llm.NewSimModel(llm.WithProfile("gpt-4o"))

		run := func(specialized bool) (float64, int) {
			cfg := &core.Config{Specialized: &specialized}
			sys, err := harness.NewSeekerSystem(corpus, cfg)
			if err != nil {
				b.Fatal(err)
			}
			sum, err := harness.RunConvergence(context.Background(), sys, questions, sim, harness.DefaultMaxTurns)
			if err != nil {
				b.Fatal(err)
			}
			return sum.Pct, sys.Seeker().Meter().Snapshot().Total.InTokens / len(questions)
		}
		specConv, specTok := run(true)
		megaConv, megaTok := run(false)
		if i == 0 {
			b.Logf("specialized: conv=%.1f%% avgIn=%d tok | merged context: conv=%.1f%% avgIn=%d tok (%.1fx tokens)",
				specConv, specTok, megaConv, megaTok, float64(megaTok)/float64(specTok))
		}
	}
}

// BenchmarkAblationActionCap sweeps the conductor's per-turn action cap i
// (paper: i = 5).
func BenchmarkAblationActionCap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var lines string
		for _, cap := range []int{1, 3, 5} {
			conv, acc := seekerConvergencePct(b, &core.Config{MaxActions: cap})
			lines += fmt.Sprintf("i=%d: conv=%.1f%% acc=%.1f%%  ", cap, conv, acc)
		}
		if i == 0 {
			b.Log(lines)
		}
	}
}

// BenchmarkAblationRetrievalMode compares the hybrid index with its vector-
// only and BM25-only halves (§3.3).
func BenchmarkAblationRetrievalMode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var lines string
		for _, m := range []struct {
			name string
			mode retriever.Mode
		}{
			{"hybrid", retriever.ModeHybrid},
			{"vector-only", retriever.ModeVectorOnly},
			{"bm25-only", retriever.ModeBM25Only},
		} {
			conv, acc := seekerConvergencePct(b, &core.Config{RetrieverMode: m.mode})
			lines += fmt.Sprintf("%s: conv=%.1f%% acc=%.1f%%  ", m.name, conv, acc)
		}
		if i == 0 {
			b.Log(lines)
		}
	}
}

// --- Substrate micro-benchmarks --------------------------------------------

// BenchmarkRetrieverSearch measures hybrid table retrieval over the
// environment corpus.
func BenchmarkRetrieverSearch(b *testing.B) {
	corpus := kramabench.Environment()
	ret := retriever.New()
	for _, t := range corpus {
		if err := ret.IndexTable(context.Background(), t); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ret.Search(context.Background(), "nitrate concentration in river water", 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSQLFilteredAggregate measures a filtered aggregate over the 42k
// row soil table.
func BenchmarkSQLFilteredAggregate(b *testing.B) {
	corpus := kramabench.Archaeology()
	eng := sqlengine.NewEngine()
	eng.Register(corpus["soil_samples"])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query("SELECT AVG(k_ppm) FROM soil_samples WHERE region = 'Malta'"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSQLHashJoin measures the hash join of a measurement table with
// the stations registry.
func BenchmarkSQLHashJoin(b *testing.B) {
	corpus := kramabench.Environment()
	eng := sqlengine.NewEngine()
	eng.Register(corpus["air_pm25"])
	eng.Register(corpus["stations"])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := eng.Query(`SELECT AVG(pm25_ugm3) FROM air_pm25 AS a
			JOIN stations AS s ON a.station_id = s.station_id
			WHERE s.region = 'North Basin'`)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSeekerTurn measures one full conductor turn (plan → retrieve →
// state → materialize → execute → respond) end to end.
func BenchmarkSeekerTurn(b *testing.B) {
	corpus := kramabench.Archaeology()
	seeker, err := core.New(context.Background(), core.Config{}, corpus, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess := seeker.NewSession("bench")
		if _, err := sess.Send(context.Background(), "What is the average organic matter percentage for soil samples in the Malta region?"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFTSRespond measures the static baseline's per-turn cost.
func BenchmarkFTSRespond(b *testing.B) {
	corpus := kramabench.Archaeology()
	fts := baselines.NewFTS(corpus)
	conv := fts.StartConversation()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conv.Respond(context.Background(), "potassium levels in Malta soil samples"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDatasetGeneration measures corpus generation (both datasets).
func BenchmarkDatasetGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if got := len(kramabench.Archaeology()); got != 5 {
			b.Fatal("bad archaeology corpus")
		}
		if got := len(kramabench.Environment()); got != 36 {
			b.Fatal("bad environment corpus")
		}
	}
}

// BenchmarkProfile measures table profiling on a wide table.
func BenchmarkProfile(b *testing.B) {
	corpus := kramabench.Archaeology()
	soil := corpus["soil_samples"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := soil.BuildProfile()
		if p.NumCols != 16 {
			b.Fatal("bad profile")
		}
	}
}

// --- Sharded IR stack benchmarks -------------------------------------------

// ingestCorpusSize is the synthetic corpus size for the ingest benchmarks
// (≥500 tables so the shard fan-out dominates fixed costs).
const ingestCorpusSize = 500

func syntheticTables(b *testing.B, n int) []*table.Table {
	b.Helper()
	return kramabench.SyntheticSlice(n)
}

// BenchmarkIngestSequential measures the seed ingest path: a single-shard
// index built one table at a time on one goroutine.
func BenchmarkIngestSequential(b *testing.B) {
	tables := syntheticTables(b, ingestCorpusSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ret := retriever.New(retriever.WithShards(1), retriever.WithWorkers(1))
		for _, t := range tables {
			if err := ret.IndexTable(context.Background(), t); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(ingestCorpusSize)*float64(b.N)/b.Elapsed().Seconds(), "tables/sec")
}

// BenchmarkIngestParallelBulk measures the sharded bulk path: embedding on
// the worker pool, all shards building concurrently. The acceptance bar is
// ≥2x over BenchmarkIngestSequential on a multi-core runner.
func BenchmarkIngestParallelBulk(b *testing.B) {
	tables := syntheticTables(b, ingestCorpusSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ret := retriever.New()
		if err := ret.IndexTables(context.Background(), tables); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(ingestCorpusSize)*float64(b.N)/b.Elapsed().Seconds(), "tables/sec")
}

// BenchmarkRetrievalLatency measures per-query latency on the sharded
// index over the synthetic corpus, reporting p50 and p99 in microseconds.
func BenchmarkRetrievalLatency(b *testing.B) {
	tables := syntheticTables(b, ingestCorpusSize)
	ret := retriever.New()
	if err := ret.IndexTables(context.Background(), tables); err != nil {
		b.Fatal(err)
	}
	queries := kramabench.RetrievalQueries()
	lat := make([]time.Duration, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, err := ret.Search(context.Background(), queries[i%len(queries)], 10); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, time.Since(start))
	}
	b.StopTimer()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p := func(q float64) float64 {
		return float64(lat[int(q*float64(len(lat)-1))]) / float64(time.Microsecond)
	}
	b.ReportMetric(p(0.50), "p50-µs")
	b.ReportMetric(p(0.99), "p99-µs")
}

// BenchmarkIRQueryCached measures the IR facade's fan-out with the LRU
// cache warm — the steady-state cost of a repeated Conductor retrieval.
func BenchmarkIRQueryCached(b *testing.B) {
	corpus := kramabench.Environment()
	cfg := core.Config{}
	sys, err := core.New(context.Background(), cfg, corpus, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	irsys := sys.IR()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := irsys.Query(context.Background(), ir.Request{Query: "nitrate concentration in river water", K: 5}); err != nil {
			b.Fatal(err)
		}
	}
}
