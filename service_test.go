package pneuma_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"pneuma"
	"pneuma/internal/leakcheck"
)

// serviceQuestion is a benchmark question that triggers the full
// conductor pipeline (retrieve → define → materialize → execute) without
// tripping knowledge capture, so concurrent sessions stay independent.
const serviceQuestion = "What is the average organic matter percentage for soil samples in the Malta region? Round your answer to 4 decimal places."

// TestServiceConcurrentSessions drives N sessions through one Service
// simultaneously (run under -race via `make race-smoke`): every session
// must get the same deterministic reply a solo session gets, and the
// per-session meters must sum exactly to the service-wide meter.
func TestServiceConcurrentSessions(t *testing.T) {
	defer leakcheck.Check(t)()
	corpus := pneuma.ArchaeologyDataset()

	// Reference run: one session on its own Service.
	ref, err := pneuma.New(corpus)
	if err != nil {
		t.Fatal(err)
	}
	refReply, err := ref.NewSession("ref").Send(context.Background(), serviceQuestion)
	if err != nil {
		t.Fatal(err)
	}
	if refReply.Answer == "" {
		t.Fatalf("reference run returned no answer: %s", refReply.Message)
	}
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}

	svc, err := pneuma.New(corpus, pneuma.WithMaxConcurrent(4))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	sessions := 12
	if testing.Short() {
		// The -race smoke gate runs on every verify; four sessions still
		// oversubscribe the width-4 scheduler.
		sessions = 6
	}
	replies := make([]pneuma.Reply, sessions)
	errs := make([]error, sessions)
	sess := make([]*pneuma.ServiceSession, sessions)
	for i := range sess {
		sess[i] = svc.NewSession(fmt.Sprintf("user-%d", i))
	}
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			replies[i], errs[i] = sess[i].Send(context.Background(), serviceQuestion)
		}(i)
	}
	wg.Wait()

	for i := 0; i < sessions; i++ {
		if errs[i] != nil {
			t.Fatalf("session %d: %v", i, errs[i])
		}
		if replies[i].Answer != refReply.Answer {
			t.Errorf("session %d answer = %q, want %q (deterministic replies per session)",
				i, replies[i].Answer, refReply.Answer)
		}
		if replies[i].Message != refReply.Message {
			t.Errorf("session %d message diverged from the solo run", i)
		}
	}

	// Per-session metering: session meters must sum exactly to the
	// service totals (Table-2 accounting under concurrency).
	total := svc.Meter().Snapshot()
	var sumIn, sumOut, sumCalls int
	for i := 0; i < sessions; i++ {
		m := sess[i].Meter().Snapshot()
		if m.Calls == 0 {
			t.Errorf("session %d recorded no calls on its own meter", i)
		}
		sumIn += m.Total.InTokens
		sumOut += m.Total.OutTokens
		sumCalls += m.Calls
	}
	if sumIn != total.Total.InTokens || sumOut != total.Total.OutTokens || sumCalls != total.Calls {
		t.Errorf("session meters sum to (in=%d out=%d calls=%d), service meter has (in=%d out=%d calls=%d)",
			sumIn, sumOut, sumCalls, total.Total.InTokens, total.Total.OutTokens, total.Calls)
	}
}

// TestServiceSendCanceled: a canceled request context surfaces as the
// typed ErrCanceled (and context.Canceled stays in the chain).
func TestServiceSendCanceled(t *testing.T) {
	defer leakcheck.Check(t)()
	svc, err := pneuma.New(pneuma.ArchaeologyDataset())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	sess := svc.NewSession("cancel-user")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = sess.Send(ctx, serviceQuestion)
	if !errors.Is(err, pneuma.ErrCanceled) {
		t.Fatalf("Send = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Send = %v, want context.Canceled in the chain", err)
	}
	// The session survives a canceled turn.
	reply, err := sess.Send(context.Background(), serviceQuestion)
	if err != nil || reply.Answer == "" {
		t.Fatalf("post-cancel Send = %v, %v", reply, err)
	}
}

// TestServiceTypedErrors covers the ErrBadQuery and ErrClosed corners of
// the vocabulary, plus errors.As extraction of the Op.
func TestServiceTypedErrors(t *testing.T) {
	svc, err := pneuma.New(pneuma.ArchaeologyDataset())
	if err != nil {
		t.Fatal(err)
	}
	sess := svc.NewSession("typed-errors")

	if _, err := sess.Send(context.Background(), "   "); !errors.Is(err, pneuma.ErrBadQuery) {
		t.Fatalf("empty Send = %v, want ErrBadQuery", err)
	}
	if _, err := svc.Search(context.Background(), "", 3); !errors.Is(err, pneuma.ErrBadQuery) {
		t.Fatalf("empty Search = %v, want ErrBadQuery", err)
	}

	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("Close must be idempotent, got %v", err)
	}
	_, err = sess.Send(context.Background(), serviceQuestion)
	if !errors.Is(err, pneuma.ErrClosed) {
		t.Fatalf("Send after Close = %v, want ErrClosed", err)
	}
	var pe *pneuma.Error
	if !errors.As(err, &pe) || pe.Code != pneuma.ErrClosed || pe.Op == "" {
		t.Fatalf("errors.As gave %+v", pe)
	}
	if _, err := svc.Search(context.Background(), "soil", 3); !errors.Is(err, pneuma.ErrClosed) {
		t.Fatalf("Search after Close = %v, want ErrClosed", err)
	}
}

// TestServiceSearch exercises request-scoped retrieval through the
// scheduler, concurrently.
func TestServiceSearch(t *testing.T) {
	defer leakcheck.Check(t)()
	svc, err := pneuma.New(pneuma.ArchaeologyDataset(), pneuma.WithMaxConcurrent(2))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	want, err := svc.Search(context.Background(), "soil chemistry samples", 3)
	if err != nil || len(want) == 0 {
		t.Fatalf("Search = %v, %v", want, err)
	}
	const n = 16
	var wg sync.WaitGroup
	got := make([][]pneuma.Document, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = svc.Search(context.Background(), "soil chemistry samples", 3)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("concurrent search %d: %v", i, errs[i])
		}
		if len(got[i]) != len(want) {
			t.Fatalf("concurrent search %d returned %d docs, want %d", i, len(got[i]), len(want))
		}
		for j := range want {
			if got[i][j].ID != want[j].ID {
				t.Errorf("concurrent search %d rank %d = %s, want %s (determinism)", i, j, got[i][j].ID, want[j].ID)
			}
		}
	}
}

// TestServiceKnowledgeDedupe: repeating the identical knowledge-bearing
// message — within one session or across sessions — must store exactly one
// note (the Session.Send dedupe satellite).
func TestServiceKnowledgeDedupe(t *testing.T) {
	kb := pneuma.NewKnowledgeDB()
	svc, err := pneuma.New(pneuma.ArchaeologyDataset(), pneuma.WithKnowledge(kb))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	const externalized = "Note that potassium values should be interpolated between samples when missing."

	alice := svc.NewSession("alice")
	for i := 0; i < 3; i++ {
		if _, err := alice.Send(context.Background(), externalized); err != nil {
			t.Fatal(err)
		}
	}
	if kb.Len() != 1 {
		t.Fatalf("repeated identical message saved %d notes, want 1", kb.Len())
	}
	// A different user repeating the same assumption still saves nothing
	// new — but their session surfaces the shared note.
	bob := svc.NewSession("bob")
	if _, err := bob.Send(context.Background(), externalized); err != nil {
		t.Fatal(err)
	}
	if kb.Len() != 1 {
		t.Fatalf("cross-session duplicate saved %d notes, want 1", kb.Len())
	}
	if len(bob.Session().KnowledgeNotes) == 0 {
		t.Error("bob's session did not surface the deduplicated note")
	}
	// Different content still saves.
	if _, err := bob.Send(context.Background(), "Assume tariffs are computed relative to the previous active rate."); err != nil {
		t.Fatal(err)
	}
	if kb.Len() != 2 {
		t.Fatalf("distinct knowledge saved %d notes, want 2", kb.Len())
	}
}
