// Package pneuma is the public API of the Pneuma Project reproduction: an
// LLM-powered data-discovery and preparation system that reifies a user's
// information need as a relational schema (T, Q) and converges it toward
// the latent need through iterative, language-guided interaction (Balaka &
// Castro Fernandez, CIDR 2026).
//
// Quick start — the request-scoped serving surface:
//
//	corpus := pneuma.ArchaeologyDataset()
//	svc, _ := pneuma.New(corpus, pneuma.WithShards(8))
//	defer svc.Close()
//	sess := svc.NewSession("analyst")
//	reply, _ := sess.Send(ctx, "What is the average organic matter percentage "+
//	    "for soil samples in the Malta region? Round your answer to 4 decimal places.")
//	fmt.Println(reply.Answer)
//
// The package re-exports the load-bearing types from the internal packages:
// the Seeker system (Conductor + IR System + Materializer + shared state),
// the deterministic SimModel language substrate, the table store and SQL
// engine, the benchmark datasets, and the evaluation harness that
// regenerates every table and figure of the paper.
//
// # Serving architecture
//
// New assembles a Service: a concurrency-safe facade over one shared
// Seeker that admits many sessions through a bounded request scheduler
// (WithMaxConcurrent). Every blocking call takes a context.Context that
// propagates end-to-end — into the shard fan-out, the embedding worker
// pool and every model call — so a slow or abandoned request is canceled
// without blocking anyone else: queued requests leave the queue the
// moment their context fires, and in-flight queries abandon un-started
// shard work. Requests under a non-cancellable context travel the
// allocation-free hot path; the scheduler adds no steady-state
// allocation.
//
// Failures crossing the surface are typed: every error wraps *Error with
// a Code (ErrCanceled, ErrBadQuery, ErrIndexCorrupt, ErrClosed,
// ErrDegraded) checkable via errors.Is/errors.As; context.Canceled stays
// in the chain. Partially failed retrieval fan-outs degrade — the IR
// System fuses the sources that answered and reports the failures via
// errors.Join — instead of discarding good results.
//
// Token accounting is two-level: the Service meter accumulates global
// totals while each session's meter records its own calls, so
// Table-2-style accounting stays attributable per session under
// concurrency.
//
// # Retrieval architecture
//
// The IR System (§3.3) is built on a sharded hybrid index: documents are
// hash-partitioned by ID across N shards (default derived from
// GOMAXPROCS), each shard owning a pluggable storage backend — an HNSW
// graph plus a BM25 inverted index, either purely in memory
// (BackendMemory, the default) or additionally persisted to an
// append-only segment file per shard (BackendDisk) that is replayed on
// open and made durable by Retriever.Flush/Close. All shards score BM25
// against one shared corpus-statistics object, so sharded ranking is
// identical to single-index ranking at any shard count.
//
// Corpus ingest embeds documents with a worker pool and builds all shards
// concurrently; queries fan out to every shard and to every source
// (tables, knowledge, web) concurrently, and results are merged with
// reciprocal-rank fusion and cached in a bounded LRU that index mutations
// invalidate. Ingest parallelism, shard count, backend, beam width and
// scheduler width are all options on New (WithShards, WithIndexWorkers,
// WithBackend, WithIndexDir, WithEf, WithMaxConcurrent).
//
// # Determinism contract
//
// Results for a fixed corpus are deterministic regardless of worker
// scheduling, shard count or backend: shards always ingest their
// partition in sorted document order, BM25 statistics updates commute,
// score accumulation orders are fixed, and every merge breaks ties by
// document ID. A disk-backed index reopened from its segment files
// answers queries byte-identically to the index that wrote them.
// Concurrent sessions receive the same replies a solo session gets.
package pneuma
