package pneuma

import (
	"time"

	"pneuma/internal/retriever"
)

// SchedulerStats is a point-in-time snapshot of the request scheduler: the
// two live gauges (queue depth, in-flight), the admission outcome counters,
// and the cumulative durations the load shedder and the metrics endpoint
// derive rates from. Counters are monotonic over the Service's lifetime;
// gauges are instantaneous and may be stale by the time the caller reads
// them.
type SchedulerStats struct {
	// MaxConcurrent is the slot count (WithMaxConcurrent).
	MaxConcurrent int
	// MaxQueue is the wait-queue bound (WithMaxQueue); 0 means unbounded.
	MaxQueue int
	// QueueDepth is how many requests are waiting for a slot right now.
	QueueDepth int
	// InFlight is how many requests hold a slot right now.
	InFlight int
	// Accepted counts requests admitted to a slot.
	Accepted uint64
	// Rejected counts requests shed with ErrOverloaded by the queue bound.
	Rejected uint64
	// Canceled counts requests whose context fired before admission.
	Canceled uint64
	// Completed counts admitted requests that have released their slot.
	Completed uint64
	// QueueWait is the total time accepted requests spent waiting for a
	// slot (only requests that actually queued contribute).
	QueueWait time.Duration
	// Busy is the total time admitted requests have held a slot.
	Busy time.Duration
}

// EstimatedWait projects how long a request arriving now would queue:
// the backlog ahead of it (QueueDepth requests) times the mean slot-hold
// time of completed requests, divided across the MaxConcurrent slots
// draining it. Zero while the queue is empty or before any request has
// completed (no basis for a projection). Servers shed with 503 when this
// exceeds their latency bound — the "estimated wait" half of load
// shedding, complementing the hard depth bound of WithMaxQueue.
func (s SchedulerStats) EstimatedWait() time.Duration {
	if s.QueueDepth == 0 || s.Completed == 0 || s.MaxConcurrent <= 0 {
		return 0
	}
	mean := s.Busy / time.Duration(s.Completed)
	return mean * time.Duration(s.QueueDepth) / time.Duration(s.MaxConcurrent)
}

// CompactionStats aggregates segment-compaction activity across the table
// index's disk shards (all zero for BackendMemory).
type CompactionStats = retriever.CompactionStats

// RetrieverStats is the Stats() slice for one retrieval index: size,
// mutation version and the durability counters the disk backend keeps.
type RetrieverStats struct {
	// Documents is the live document count.
	Documents int
	// Version is the mutation counter (monotonic across Add/Delete).
	Version uint64
	// Fsyncs is the cumulative segment-file fsync count (BackendDisk).
	Fsyncs uint64
	// Compaction aggregates segment-rewrite runs, reclaimed records and
	// the max writer stall (BackendDisk).
	Compaction CompactionStats
}

// ServiceStats is the one coherent observability surface of a Service:
// everything the /metrics endpoint exports and the serving tests assert
// reads from this snapshot instead of poking internals. Gauges are
// instantaneous; counters are monotonic since New.
type ServiceStats struct {
	// Scheduler snapshots the bounded request scheduler.
	Scheduler SchedulerStats
	// Meter is the service-wide LLM accounting (token totals, call count,
	// simulated latency — the sum over all sessions).
	Meter MeterSnapshot
	// Tables describes the shared table index, the Service's one
	// Retriever.
	Tables RetrieverStats
}

// SchedulerStats snapshots just the scheduler slice of Stats. It reads
// only atomics — no locks anywhere — so per-request admission-control
// checks (the server's estimated-wait shedder runs one before every
// request) cost nanoseconds.
func (s *Service) SchedulerStats() SchedulerStats {
	return SchedulerStats{
		MaxConcurrent: cap(s.sem),
		MaxQueue:      s.maxQueue,
		QueueDepth:    int(s.sched.queued.Load()),
		InFlight:      int(s.sched.inFlight.Load()),
		Accepted:      s.sched.accepted.Load(),
		Rejected:      s.sched.rejected.Load(),
		Canceled:      s.sched.canceled.Load(),
		Completed:     s.sched.completed.Load(),
		QueueWait:     time.Duration(s.sched.waitNanos.Load()),
		Busy:          time.Duration(s.sched.busyNanos.Load()),
	}
}

// Stats assembles the Service's typed observability snapshot. It is safe
// to call concurrently with serving traffic and never blocks a request:
// scheduler counters are atomics, the meter snapshot takes the meter
// mutex briefly, and the retriever counters take each shard's lock
// briefly.
func (s *Service) Stats() ServiceStats {
	ret := s.seeker.IR().Tables
	return ServiceStats{
		Scheduler: s.SchedulerStats(),
		Meter:     s.seeker.Meter().Snapshot(),
		Tables: RetrieverStats{
			Documents:  ret.Len(),
			Version:    ret.Version(),
			Fsyncs:     ret.Fsyncs(),
			Compaction: ret.CompactionStats(),
		},
	}
}
