GO ?= go

.PHONY: verify fmt-check vet tier1 race bench ingest-bench

# verify is the one-shot local gate every PR must pass: formatting, vet,
# and the tier-1 build+test command from ROADMAP.md.
verify: fmt-check vet tier1

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt -l found unformatted files:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

tier1:
	$(GO) build ./... && $(GO) test ./...

# race runs the concurrency-sensitive packages under the race detector.
race:
	$(GO) test -race ./internal/retriever/... ./internal/ir/... ./internal/embed/...

# bench smoke-runs the sharded IR stack benchmarks.
bench:
	$(GO) test -run XXX -bench 'BenchmarkIngest|BenchmarkRetrievalLatency|BenchmarkIRQueryCached' -benchtime 3x .

# ingest-bench prints the human-readable ingest/latency report.
ingest-bench:
	$(GO) run ./cmd/pneuma-bench -ingest
