GO ?= go

# DOC_PKGS are the packages whose exported API must be fully documented
# (enforced by `make docs` via cmd/pneuma-doccheck).
DOC_PKGS = ./internal/retriever ./internal/ir ./internal/embed ./internal/bm25 .

.PHONY: verify fmt-check vet tier1 race bench ingest-bench docs

# verify is the one-shot local gate every PR must pass: formatting, vet,
# the documentation gate, and the tier-1 build+test command from
# ROADMAP.md.
verify: fmt-check vet tier1 docs

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt -l found unformatted files:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

tier1:
	$(GO) build ./... && $(GO) test ./...

# race runs the concurrency-sensitive packages under the race detector.
race:
	$(GO) test -race ./internal/retriever/... ./internal/ir/... ./internal/embed/...

# bench smoke-runs the sharded IR stack benchmarks.
bench:
	$(GO) test -run XXX -bench 'BenchmarkIngest|BenchmarkRetrievalLatency|BenchmarkIRQueryCached' -benchtime 3x .

# ingest-bench prints the human-readable ingest/latency report.
ingest-bench:
	$(GO) run ./cmd/pneuma-bench -ingest

# docs is the documentation gate: every example must build, vet must be
# clean (via the vet prerequisite, so `make verify` doesn't run it
# twice), and every exported symbol in the core packages must carry a
# doc comment.
docs: vet
	$(GO) build ./examples/...
	$(GO) run ./cmd/pneuma-doccheck $(DOC_PKGS)
