GO ?= go

# DOC_PKGS are the packages whose exported API must be fully documented
# (enforced by `make docs` via cmd/pneuma-doccheck).
DOC_PKGS = ./internal/retriever ./internal/ir ./internal/embed ./internal/bm25 ./internal/pnerr ./internal/server .

.PHONY: verify fmt-check vet asmvet xbuild-arm64 tier1 tier1-scalar race race-smoke fuzz-smoke bench bench-compare bench-smoke bench-cold bench-cold-smoke bench-quant-smoke bench-mixed bench-mixed-smoke bench-compaction bench-compaction-smoke bench-serve bench-serve-smoke bench-kernels bench-kernels-smoke serve-smoke ingest-bench docs

# verify is the one-shot local gate every PR must pass: formatting, vet
# (plus an explicit asmdecl pass over the assembly kernels and an arm64
# cross-build so the NEON path cannot rot on amd64-only machines), the
# documentation gate, the tier-1 build+test command from ROADMAP.md
# (which includes the AllocsPerRun budget guards), the kernel-heavy
# tier-1 packages re-run with the scalar dispatch override (so the
# portable kernels stay proven even on SIMD machines), short-mode smokes
# of the retrieval benchmark pipeline, the disk cold-start pipeline, the
# int8 speed tier, the mixed read/ingest workload, the compaction stall
# comparison and the kernel microbenchmark, a short-mode race pass over
# the concurrent serving path (Service scheduler, cancellation fan-out,
# disk-backend sessions, the live-ingest churn soak, the SIMD dispatch
# seam — batched entry points included, background compaction under
# churn), and a 10-second fuzz pass over the binary decoders.
verify: fmt-check vet asmvet xbuild-arm64 tier1 tier1-scalar docs bench-smoke bench-cold-smoke bench-quant-smoke bench-mixed-smoke bench-compaction-smoke bench-serve-smoke bench-kernels-smoke serve-smoke race-smoke fuzz-smoke

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt -l found unformatted files:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# asmvet re-runs just the assembly declaration checker over the SIMD
# kernels. `go vet ./...` already includes asmdecl for the host GOARCH;
# this explicit pass also covers the arm64 stubs via the cross-build
# below and fails fast with a focused message when a kernel's frame or
# argument layout drifts from its Go declaration.
asmvet:
	$(GO) vet -asmdecl ./internal/vecmath/
	@echo "asmvet: ok"

# xbuild-arm64 cross-compiles the whole module for linux/arm64 so the
# NEON kernel path (assembly, build tags, dispatch stubs) stays
# compilable even though CI and dev machines are amd64. Cross-vet runs
# asmdecl against the arm64 assembly as part of the build's type check.
xbuild-arm64:
	GOOS=linux GOARCH=arm64 $(GO) build ./...
	GOOS=linux GOARCH=arm64 $(GO) vet -asmdecl ./internal/vecmath/
	@echo "xbuild-arm64: ok"

tier1:
	$(GO) build ./... && $(GO) test ./...

# tier1-scalar re-runs the kernel-consuming tier-1 packages with the
# PNEUMA_FORCE_SCALAR env override pinning the dispatch seam to the
# pure-Go kernels: the scalar tier is both the portability floor and the
# bit-identity oracle, so it must keep passing the same tests the SIMD
# tiers do — on the machines where it would otherwise never run.
tier1-scalar:
	PNEUMA_FORCE_SCALAR=1 $(GO) test -count=1 ./internal/vecmath/ ./internal/hnsw/ ./internal/bm25/ ./internal/retriever/
	@echo "tier1-scalar: ok"

# race runs the concurrency-sensitive packages under the race detector.
race:
	$(GO) test -race . ./internal/retriever/... ./internal/ir/... ./internal/embed/... ./internal/docdb/... ./internal/llm/...

# race-smoke is the short-mode race gate wired into `make verify`: it
# drives N concurrent sessions through one Service, cancels a Search
# mid-fan-out, hammers a disk-backed index with concurrent
# search/delete/flush (compaction included), runs the live-ingest churn
# soak (readers pinned on epoch views while a mutator streams batched
# adds/deletes/flushes, with quiesce parity against a sequential
# replay), hammers the SIMD dispatch seam while kernels run, exercises
# background compaction racing a paced ingest stream, and checks the
# goroutine-leak guard — the serving paths a sequential test run never
# stresses.
race-smoke:
	$(GO) test -race -short -count=1 -run 'TestService|TestSearchCanceled|TestIndexDocumentsCanceled|TestQueryPartial|TestQueryCanceled|TestDiskConcurrent|TestChurn|TestBackgroundCompaction|TestDispatchSeamRace' . ./internal/retriever/ ./internal/ir/ ./internal/vecmath/
	@echo "race-smoke: ok"

# fuzz-smoke runs each native fuzz target for 10 seconds — long enough
# to shake the mutator through the seed corpus's structural neighborhood
# on every verify, short enough to keep the gate interactive. Go allows
# one -fuzz pattern per invocation, so the targets run back to back.
fuzz-smoke:
	$(GO) test ./internal/wire/ -run '^$$' -fuzz '^FuzzReader$$' -fuzztime 10s
	$(GO) test ./internal/retriever/ -run '^$$' -fuzz '^FuzzDecodeRecord$$' -fuzztime 10s
	@echo "fuzz-smoke: ok"

# bench runs the retrieval micro-benchmarks with allocation reporting and
# writes the machine-readable BENCH_retrieval.json perf report for the
# 1k-table synthetic corpus, diffed against the committed baseline.
bench:
	$(GO) test -run XXX -bench 'BenchmarkIngest|BenchmarkRetrievalLatency|BenchmarkIRQueryCached|BenchmarkRetrieverSearch' -benchmem -benchtime 20x .
	$(GO) test -run XXX -bench 'BenchmarkSearch|BenchmarkHybridSearch' -benchmem ./internal/hnsw/ ./internal/bm25/ ./internal/retriever/
	$(GO) run ./cmd/pneuma-bench -ingest -quantize -tables 1000 -json BENCH_retrieval.json -baseline BENCH_baseline.json

# bench-compare re-measures the 1k-table workload and prints the
# benchstat-style delta table against the committed BENCH_baseline.json
# without overwriting BENCH_retrieval.json.
bench-compare:
	$(GO) run ./cmd/pneuma-bench -ingest -tables 1000 -json '' -baseline BENCH_baseline.json

# bench-smoke is the short-mode gate wired into `make verify`: a tiny
# corpus proves the bench pipeline still runs end to end and emits valid
# JSON; the throwaway report is removed afterwards.
bench-smoke:
	@$(GO) run ./cmd/pneuma-bench -ingest -tables 60 -rounds 2 -json .bench-smoke.json >/dev/null
	@rm -f .bench-smoke.json
	@echo "bench-smoke: ok"

# bench-cold measures the disk backend's cold-start trajectory on the
# 1k-table corpus — snapshot bulk-load open vs full segment replay, with
# the snapshot/replay/memory parity proof — and merges the cold_start
# section into BENCH_retrieval.json, diffed against the committed
# pre-snapshot baseline.
bench-cold:
	$(GO) run ./cmd/pneuma-bench -cold -tables 1000 -cold-rounds 15 -json BENCH_retrieval.json -baseline BENCH_baseline.json

# bench-cold-smoke is the short-mode disk cold-start gate wired into
# `make verify`: a tiny corpus proves the snapshot/replay/mmap/parity
# pipeline end to end; the throwaway report is removed afterwards.
bench-cold-smoke:
	@$(GO) run ./cmd/pneuma-bench -cold -tables 60 -cold-rounds 1 -json .bench-cold-smoke.json >/dev/null
	@rm -f .bench-cold-smoke.json
	@echo "bench-cold-smoke: ok"

# bench-quant-smoke is the short-mode int8 speed-tier gate wired into
# `make verify`: a tiny corpus proves the quantized query path end to end
# and enforces the tier's accuracy floor (recall@10 vs the unquantized
# index must stay ≥ 0.98); the throwaway report is removed afterwards.
bench-quant-smoke:
	@$(GO) run ./cmd/pneuma-bench -ingest -quantize -tables 60 -rounds 2 -json .bench-quant-smoke.json >/dev/null
	@grep -q '"recall_at_10": \(1\|0\.9[89]\)' .bench-quant-smoke.json || { \
		echo "bench-quant-smoke: recall@10 below 0.98:"; grep '"recall_at_10"' .bench-quant-smoke.json; rm -f .bench-quant-smoke.json; exit 1; }
	@rm -f .bench-quant-smoke.json
	@echo "bench-quant-smoke: ok"

# bench-mixed measures query latency under a live ingest stream on the
# 1k-table corpus — reader goroutines against readers + ingest-stream —
# proving quiesce determinism along the way, and merges the
# mixed_workload section into BENCH_retrieval.json. The acceptance bound
# for live ingest: mixed p99 ≤ 2× the read-only p99 at this shape.
bench-mixed:
	$(GO) run ./cmd/pneuma-bench -mixed -tables 1000 -json BENCH_retrieval.json -baseline BENCH_baseline.json

# bench-mixed-smoke is the short-mode gate wired into `make verify`: a
# tiny corpus proves the mixed read/ingest pipeline (including its
# churned-vs-fresh parity check) runs end to end and emits the
# mixed_workload section; percentile ratios at this size are noise, so
# only the section's presence is enforced. The throwaway report is
# removed afterwards.
bench-mixed-smoke:
	@$(GO) run ./cmd/pneuma-bench -mixed -tables 60 -rounds 2 -json .bench-mixed-smoke.json >/dev/null
	@grep -q '"mixed_workload"' .bench-mixed-smoke.json || { \
		echo "bench-mixed-smoke: missing mixed_workload section"; rm -f .bench-mixed-smoke.json; exit 1; }
	@rm -f .bench-mixed-smoke.json
	@echo "bench-mixed-smoke: ok"

# bench-compaction measures the max writer stall a segment rewrite
# inflicts — background (group-commit flusher) vs inline (under the
# shard lock) over the same delete-then-stream workload — and merges the
# compaction section into BENCH_retrieval.json.
bench-compaction:
	$(GO) run ./cmd/pneuma-bench -compaction -tables 1000 -json BENCH_retrieval.json -baseline BENCH_baseline.json

# bench-compaction-smoke is the short-mode gate wired into `make
# verify`: a tiny corpus proves both rewrite modes complete, reclaim
# dead records and report their stalls; absolute stall numbers at this
# size are noise, so only the section's presence is enforced. The
# throwaway report is removed afterwards.
bench-compaction-smoke:
	@$(GO) run ./cmd/pneuma-bench -compaction -tables 64 -json .bench-compaction-smoke.json >/dev/null
	@grep -q '"compaction"' .bench-compaction-smoke.json || { \
		echo "bench-compaction-smoke: missing compaction section"; rm -f .bench-compaction-smoke.json; exit 1; }
	@rm -f .bench-compaction-smoke.json
	@echo "bench-compaction-smoke: ok"

# bench-serve prices the HTTP serving layer on the 1k-table corpus: the
# retrieval query mix over the wire vs in-process (the overhead row is
# the network layer's per-request cost) and the shed rate under 2×
# saturation, merging the serving section into BENCH_retrieval.json.
bench-serve:
	$(GO) run ./cmd/pneuma-bench -serve -tables 1000 -json BENCH_retrieval.json -baseline BENCH_baseline.json

# bench-serve-smoke is the short-mode gate wired into `make verify`: a
# tiny corpus proves the serving bench (boot, both measurement paths, the
# saturation probe, the drain) runs end to end and emits the serving
# section; absolute numbers at this size are noise, so only the section's
# presence is enforced. The throwaway report is removed afterwards.
bench-serve-smoke:
	@$(GO) run ./cmd/pneuma-bench -serve -tables 60 -rounds 2 -sat-duration 500ms -json .bench-serve-smoke.json >/dev/null
	@grep -q '"serving"' .bench-serve-smoke.json || { \
		echo "bench-serve-smoke: missing serving section"; rm -f .bench-serve-smoke.json; exit 1; }
	@rm -f .bench-serve-smoke.json
	@echo "bench-serve-smoke: ok"

# bench-kernels refreshes the cpu and kernels sections of
# BENCH_retrieval.json in place: single vs batched kernels on every
# dispatch rung this CPU offers (scalar/SSE2/AVX2, float32 and int8)
# without re-running the corpus-dependent modes.
bench-kernels:
	$(GO) run ./cmd/pneuma-bench -kernels -json BENCH_retrieval.json

# bench-kernels-smoke is the short-mode gate wired into `make verify`: it
# proves the kernel microbenchmark runs on every tier rung and emits the
# extended kernels section (the int8 ladder included); the throwaway
# report is removed afterwards.
bench-kernels-smoke:
	@$(GO) run ./cmd/pneuma-bench -kernels -json .bench-kernels-smoke.json >/dev/null
	@grep -q '"dot_int8_tier"' .bench-kernels-smoke.json || { \
		echo "bench-kernels-smoke: missing int8 kernel ladder"; rm -f .bench-kernels-smoke.json; exit 1; }
	@grep -q '"dot_batch_per_cand_ns"' .bench-kernels-smoke.json || { \
		echo "bench-kernels-smoke: missing batched kernel fields"; rm -f .bench-kernels-smoke.json; exit 1; }
	@rm -f .bench-kernels-smoke.json
	@echo "bench-kernels-smoke: ok"

# serve-smoke is the end-to-end daemon gate wired into `make verify`: it
# builds the real pneuma-server binary, boots it on an ephemeral port,
# scripts a session over the wire (index a table, query it, degraded
# source, 400 on abuse, /metrics counters), then SIGTERMs it and asserts
# the graceful drain — post-signal 503s with Retry-After, /readyz down
# while /healthz stays up, clean exit.
serve-smoke:
	$(GO) test ./cmd/pneuma-server/ -run TestServeSmoke -count=1
	@echo "serve-smoke: ok"

# ingest-bench prints the human-readable ingest/latency report.
ingest-bench:
	$(GO) run ./cmd/pneuma-bench -ingest

# docs is the documentation gate: every example must build, vet must be
# clean (via the vet prerequisite, so `make verify` doesn't run it
# twice), and every exported symbol in the core packages must carry a
# doc comment.
docs: vet
	$(GO) build ./examples/...
	$(GO) run ./cmd/pneuma-doccheck $(DOC_PKGS)
