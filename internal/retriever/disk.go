package retriever

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"pneuma/internal/bm25"
	"pneuma/internal/docs"
	"pneuma/internal/table"
	"pneuma/internal/value"
)

// manifestName is the per-index metadata file written next to the segment
// files. It pins the shard count and embedding dimensionality so a reopen
// routes documents to the same shards they were written to.
const manifestName = "manifest.json"

// manifest is the durable index metadata.
type manifest struct {
	Shards int `json:"shards"`
	Dim    int `json:"dim"`
}

// loadOrCreateManifest reads dir's manifest, or writes a fresh one with the
// given shape if none exists. The returned manifest is authoritative: on
// reopen its shard count overrides the caller's, because hash routing must
// match the layout the segments were written under.
func loadOrCreateManifest(dir string, shards, dim int) (manifest, error) {
	path := filepath.Join(dir, manifestName)
	raw, err := os.ReadFile(path)
	if err == nil {
		var m manifest
		if err := json.Unmarshal(raw, &m); err != nil {
			return manifest{}, fmt.Errorf("retriever: corrupt manifest %s: %w", path, err)
		}
		if m.Shards < 1 {
			return manifest{}, fmt.Errorf("retriever: manifest %s has invalid shard count %d", path, m.Shards)
		}
		if m.Dim != dim {
			return manifest{}, fmt.Errorf("retriever: index at %s was built with embedding dim %d, embedder wants %d", dir, m.Dim, dim)
		}
		return m, nil
	}
	if !os.IsNotExist(err) {
		return manifest{}, err
	}
	m := manifest{Shards: shards, Dim: dim}
	raw, err = json.Marshal(m)
	if err != nil {
		return manifest{}, err
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return manifest{}, err
	}
	return m, nil
}

// Segment log record ops.
const (
	opAdd = "add"
	opDel = "del"
)

// segRecord is one line of a shard's append-only segment file.
type segRecord struct {
	Op  string    `json:"op"`
	ID  string    `json:"id"`
	Vec []float32 `json:"vec,omitempty"`
	Doc *segDoc   `json:"doc,omitempty"`
}

// segDoc is the durable form of docs.Document (minus ID, carried on the
// record, and Score, which is query-scoped).
type segDoc struct {
	Kind    string            `json:"kind"`
	Title   string            `json:"title"`
	Content string            `json:"content"`
	Source  string            `json:"source"`
	Meta    map[string]string `json:"meta,omitempty"`
	Table   *segTable         `json:"table,omitempty"`
}

// segTable is the durable form of a structured table payload: full schema
// metadata plus rows in canonical string encoding (value.Value.String),
// decoded back through the declared column kinds.
type segTable struct {
	Name        string      `json:"name"`
	Description string      `json:"description,omitempty"`
	Columns     []segColumn `json:"columns"`
	Rows        [][]string  `json:"rows"`
}

// segColumn is one durable schema column.
type segColumn struct {
	Name        string `json:"name"`
	Type        uint8  `json:"type"`
	Description string `json:"description,omitempty"`
	Unit        string `json:"unit,omitempty"`
}

// encodeDoc converts a document to its durable form.
func encodeDoc(d docs.Document) *segDoc {
	sd := &segDoc{
		Kind:    string(d.Kind),
		Title:   d.Title,
		Content: d.Content,
		Source:  d.Source,
		Meta:    d.Meta,
	}
	if d.Table != nil {
		st := &segTable{
			Name:        d.Table.Schema.Name,
			Description: d.Table.Schema.Description,
		}
		for _, c := range d.Table.Schema.Columns {
			st.Columns = append(st.Columns, segColumn{
				Name: c.Name, Type: uint8(c.Type), Description: c.Description, Unit: c.Unit,
			})
		}
		st.Rows = make([][]string, len(d.Table.Rows))
		for i, row := range d.Table.Rows {
			rec := make([]string, len(row))
			for j, v := range row {
				rec[j] = v.String()
			}
			st.Rows[i] = rec
		}
		sd.Table = st
	}
	return sd
}

// decodeDoc converts a durable record back into a document.
func decodeDoc(id string, sd *segDoc) docs.Document {
	d := docs.Document{
		ID:      id,
		Kind:    docs.Kind(sd.Kind),
		Title:   sd.Title,
		Content: sd.Content,
		Source:  sd.Source,
		Meta:    sd.Meta,
	}
	if sd.Table != nil {
		schema := table.Schema{Name: sd.Table.Name, Description: sd.Table.Description}
		for _, c := range sd.Table.Columns {
			schema.Columns = append(schema.Columns, table.Column{
				Name: c.Name, Type: value.Kind(c.Type), Description: c.Description, Unit: c.Unit,
			})
		}
		t := table.New(schema)
		for _, rec := range sd.Table.Rows {
			row := make(table.Row, len(rec))
			for j, cell := range rec {
				coerced, ok := value.CoerceKind(value.Infer(cell), schema.Columns[j].Type)
				if !ok {
					coerced = value.Null()
				}
				row[j] = coerced
			}
			t.Rows = append(t.Rows, row)
		}
		d.Table = t
	}
	return d
}

// diskBackend is the Disk shard: the in-memory structures of memoryBackend
// plus an append-only JSON-lines segment file replayed on open. Every
// Index/Delete appends one record; the record order is exactly the live
// mutation order, so a replayed shard rebuilds bit-identical HNSW and BM25
// structures (same seed, same insertion sequence) and answers queries
// byte-identically to the shard that wrote the log.
type diskBackend struct {
	*memoryBackend
	path string
	f    *os.File
	w    *bufio.Writer
}

// openDiskBackend opens (or creates) the segment file at path, replays any
// existing records into a fresh in-memory shard, and positions the file
// for appending. A trailing partially-written record — the signature of a
// crash between write and flush — is truncated away rather than treated as
// corruption. ef is the HNSW query beam width (0 selects
// hnsw.DefaultEfSearch); it is a query-time knob, so it is not pinned in
// the manifest.
func openDiskBackend(path string, dim int, seed int64, st *bm25.Stats, ef int) (*diskBackend, error) {
	mem := newMemoryBackend(dim, seed, st, ef)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	good, err := replaySegment(f, mem)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("retriever: replay %s: %w", path, err)
	}
	// Drop any trailing garbage past the last whole record, then seek to
	// the end so new records append after it.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &diskBackend{
		memoryBackend: mem,
		path:          path,
		f:             f,
		w:             bufio.NewWriterSize(f, 1<<20),
	}, nil
}

// replaySegment applies every whole (newline-terminated, well-formed)
// record in f to mem and returns the byte offset just past the last one.
// Anything after that offset — an unterminated or unparsable tail left by
// a crash mid-write — is for the caller to truncate.
func replaySegment(f *os.File, mem *memoryBackend) (int64, error) {
	var good int64
	r := bufio.NewReaderSize(f, 1<<20)
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			// Trailing bytes without a newline are a torn record, never
			// a whole one; stop at the last good offset.
			return good, nil
		}
		if err != nil {
			return 0, err
		}
		var rec segRecord
		if uerr := json.Unmarshal(line, &rec); uerr != nil {
			return good, nil
		}
		switch rec.Op {
		case opAdd:
			if rec.Doc == nil {
				return good, nil
			}
			if ierr := mem.Index(decodeDoc(rec.ID, rec.Doc), rec.Vec); ierr != nil {
				return 0, ierr
			}
		case opDel:
			mem.Delete(rec.ID)
		default:
			return good, nil
		}
		good += int64(len(line))
	}
}

// append writes one record to the segment buffer. Durability is deferred
// to Flush/Close.
func (b *diskBackend) append(rec segRecord) error {
	raw, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := b.w.Write(raw); err != nil {
		return err
	}
	return b.w.WriteByte('\n')
}

// Index adds the document to the in-memory shard and logs it.
func (b *diskBackend) Index(d docs.Document, vec []float32) error {
	if err := b.memoryBackend.Index(d, vec); err != nil {
		return err
	}
	return b.append(segRecord{Op: opAdd, ID: d.ID, Vec: vec, Doc: encodeDoc(d)})
}

// Delete removes the document and logs a tombstone record.
func (b *diskBackend) Delete(id string) bool {
	if !b.memoryBackend.Delete(id) {
		return false
	}
	// A failed tombstone append leaves the delete visible in memory but
	// not durable; the reopened index resurrects the document. That is
	// the backend's documented durability boundary (crash-after-delete).
	_ = b.append(segRecord{Op: opDel, ID: id})
	return true
}

// Flush drains the write buffer and fsyncs the segment file.
func (b *diskBackend) Flush() error {
	if err := b.w.Flush(); err != nil {
		return err
	}
	return b.f.Sync()
}

// Close flushes and closes the segment file.
func (b *diskBackend) Close() error {
	if err := b.Flush(); err != nil {
		b.f.Close()
		return err
	}
	return b.f.Close()
}
