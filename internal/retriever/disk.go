package retriever

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"pneuma/internal/bm25"
	"pneuma/internal/docs"
	"pneuma/internal/wire"
)

// manifestName is the per-index metadata file written next to the segment
// files. It pins the shard count, embedding dimensionality and segment
// format so a reopen routes documents to the same shards they were
// written to and decodes them with the right codec.
const manifestName = "manifest.json"

// segFormat is the current segment/snapshot format generation. Format 0
// (manifests written before the field existed) is the JSON-lines log of
// PR 2, migrated in place on open; formats above segFormat belong to a
// newer build and fail with a typed corruption error.
const segFormat = 2

// manifest is the durable index metadata.
type manifest struct {
	Shards int `json:"shards"`
	Dim    int `json:"dim"`
	// Format is the segment codec generation (see segFormat). Absent in
	// pre-binary manifests, which unmarshal it as 0.
	Format int `json:"format"`
}

// loadOrCreateManifest reads dir's manifest, or writes a fresh one with the
// given shape if none exists. The returned manifest is authoritative: on
// reopen its shard count overrides the caller's, because hash routing must
// match the layout the segments were written under.
func loadOrCreateManifest(dir string, shards, dim int) (manifest, error) {
	path := filepath.Join(dir, manifestName)
	raw, err := os.ReadFile(path)
	if err == nil {
		var m manifest
		if err := json.Unmarshal(raw, &m); err != nil {
			return manifest{}, fmt.Errorf("retriever: corrupt manifest %s: %w", path, err)
		}
		if m.Shards < 1 {
			return manifest{}, fmt.Errorf("retriever: manifest %s has invalid shard count %d", path, m.Shards)
		}
		if m.Dim != dim {
			return manifest{}, fmt.Errorf("retriever: index at %s was built with embedding dim %d, embedder wants %d", dir, m.Dim, dim)
		}
		if m.Format > segFormat {
			return manifest{}, fmt.Errorf("retriever: index at %s uses segment format %d, this build supports up to %d", dir, m.Format, segFormat)
		}
		return m, nil
	}
	if !os.IsNotExist(err) {
		return manifest{}, err
	}
	m := manifest{Shards: shards, Dim: dim, Format: segFormat}
	if err := writeManifest(dir, m); err != nil {
		return manifest{}, err
	}
	return m, nil
}

// writeManifest persists the index metadata atomically (tmp + fsync +
// rename): the manifest pins the shard routing for the whole directory,
// so a crash mid-rewrite — e.g. while stamping the format after a
// legacy-index migration — must leave either the old or the new manifest,
// never a torn one.
func writeManifest(dir string, m manifest) error {
	raw, err := json.Marshal(m)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, manifestName)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer os.Remove(tmp)
	if _, err := f.Write(raw); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Segment record op bytes.
const (
	opAdd = 1
	opDel = 2
)

// Segment file header: magic, format word and a generation counter that
// changes on every compaction rewrite, tying a snapshot to the exact
// segment file it covers (a snapshot whose generation does not match the
// segment is stale — e.g. a crash landed between a compaction's rename
// and its snapshot write — and is discarded in favour of a full replay).
const (
	segMagic      = "pnsg"
	segHeaderSize = 4 + 4 + 8 // magic + format u32 + generation u64
	// maxRecordSize rejects absurd record-length prefixes during replay, so
	// a corrupted length byte cannot trigger a giant allocation.
	maxRecordSize = 1 << 28
)

// writeSegHeader writes the 16-byte segment header at the file's start.
func writeSegHeader(w io.Writer, gen uint64) error {
	var h [segHeaderSize]byte
	copy(h[:4], segMagic)
	binary.LittleEndian.PutUint32(h[4:8], segFormat)
	binary.LittleEndian.PutUint64(h[8:16], gen)
	_, err := w.Write(h[:])
	return err
}

// readSegHeader validates the segment header and returns its generation.
func readSegHeader(f *os.File) (uint64, error) {
	var h [segHeaderSize]byte
	if _, err := f.ReadAt(h[:], 0); err != nil {
		return 0, fmt.Errorf("segment header: %w", err)
	}
	if string(h[:4]) != segMagic {
		return 0, fmt.Errorf("segment header: bad magic %q", h[:4])
	}
	if format := binary.LittleEndian.Uint32(h[4:8]); format != segFormat {
		return 0, fmt.Errorf("segment header: format %d, want %d", format, segFormat)
	}
	return binary.LittleEndian.Uint64(h[8:16]), nil
}

// diskKnobs bundles the durability and maintenance policy the retriever
// resolves from its options.
type diskKnobs struct {
	// compactRatio is the dead-record fraction that triggers a compaction
	// rewrite at Flush/Close. Callers pass a value > 1 to disable.
	compactRatio float64
	// snapshot enables writing a state snapshot on Flush/Close.
	snapshot bool
	// quantize enables the int8 quantized HNSW query path; quantized
	// arenas are persisted in snapshots so a reopen bulk-loads them.
	quantize bool
	// mmap makes snapshot loads map the file instead of reading it.
	mmap bool
	// background moves due compactions off the write path onto the
	// group-commit flusher goroutine (see compact.go); off, they run
	// inline under the shard lock at Flush/Close as before.
	background bool
	// gc is the retriever-wide group-commit coordinator; nil only for
	// backends opened outside a Retriever (see groupcommit.go).
	gc *groupCommit
}

// diskBackend is the Disk shard: the in-memory structures of memoryBackend
// plus an append-only binary segment file and a state snapshot. Every
// Index/Delete appends one CRC-guarded record; the record order is exactly
// the live mutation order, so replaying the log rebuilds bit-identical
// HNSW and BM25 structures. The snapshot serializes the built state
// directly, letting Open skip graph construction and replay only the
// records past the snapshot's high-water mark.
type diskBackend struct {
	*memoryBackend
	path     string
	snapPath string
	f        *os.File
	w        *bufio.Writer
	knobs    diskKnobs

	gen      uint64 // segment generation (bumped by compaction)
	segSize  int64  // logical segment size: header + whole records, incl. buffered
	flushed  int64  // prefix of segSize actually written to the OS file (not buffered)
	snapSize int64  // segment offset covered by the on-disk snapshot
	records  int64  // records in the segment (live + dead)

	// Group-commit state, guarded by the shard lock like everything else:
	// records/bytes appended since the last fsync, the first asynchronous
	// sync error (surfaced at the next Flush/Close), and the cumulative
	// fsync count (the group-commit benchmark's metric).
	pendingRecs  int
	pendingBytes int64
	syncErr      error
	fsyncs       uint64

	// Background-compaction state, guarded by the shard lock (compact.go).
	// compactDone is non-nil while a rewrite is scheduled or running and is
	// closed when it finishes (however it finishes); compactErr parks a
	// failure for the next Flush/Close, like syncErr. The remaining fields
	// feed Retriever.CompactionStats.
	compactWant     bool
	compactDone     chan struct{}
	compactErr      error
	compactRuns     uint64
	compactReclaim  int64
	compactMaxStall time.Duration

	// snapMap is the snapshot file mapping the shard's arenas and strings
	// alias when opened with mmap; released only at Close, because even
	// compaction-rebuilt state retains document strings pointing into it.
	snapMap []byte

	rec   wire.Writer // reusable record payload buffer
	frame wire.Writer // reusable record frame buffer
}

// openDiskBackend opens (or creates) the shard at path. When a valid
// snapshot for the segment's current generation exists, its state is bulk
// loaded and only records past its high-water mark are replayed;
// otherwise the full log is replayed. A trailing torn record or a
// CRC-mismatching record — the signatures of a crash mid-write — truncate
// the log at the last whole record rather than failing the open. ef is
// the HNSW query beam width (0 selects hnsw.DefaultEfSearch); it is a
// query-time knob, so it is not pinned in the manifest.
func openDiskBackend(path, snapPath string, dim int, seed int64, st *bm25.Stats, ef int, knobs diskKnobs) (*diskBackend, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	size := fi.Size()
	gen := uint64(1)
	if size < segHeaderSize {
		// Empty, or shorter than the header — the signature of a crash
		// between file creation and the first sync. A file this short can
		// hold no records, so resetting it loses nothing.
		if size > 0 {
			if err := f.Truncate(0); err != nil {
				f.Close()
				return nil, err
			}
			if _, err := f.Seek(0, io.SeekStart); err != nil {
				f.Close()
				return nil, err
			}
		}
		if err := writeSegHeader(f, gen); err != nil {
			f.Close()
			return nil, err
		}
		size = segHeaderSize
	} else {
		if gen, err = readSegHeader(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("retriever: %s: %w", path, err)
		}
	}

	mem := newMemoryBackend(dim, seed, st, ef, knobs.quantize)
	water := int64(segHeaderSize)
	var recs int64
	var snapMap []byte
	repairSnap := false
	if snapMem, snapWater, snapRecs, mapping, serr := loadSnapshot(snapPath, gen, size, dim, seed, st, ef, knobs.quantize, knobs.mmap); serr == nil {
		mem, water, recs, snapMap = snapMem, snapWater, snapRecs, mapping
	} else if !os.IsNotExist(serr) {
		// A snapshot exists but is unusable (torn tail, CRC mismatch,
		// different version, stale generation): fall back to a full
		// replay and rewrite it below so the next open is fast again.
		repairSnap = true
	}

	fail := func(err error) (*diskBackend, error) {
		f.Close()
		_ = munmapFile(snapMap)
		return nil, err
	}
	good, replayed, err := replaySegment(f, mem, water)
	if err != nil {
		return fail(fmt.Errorf("retriever: replay %s: %w", path, err))
	}
	// Drop any trailing garbage past the last whole record, then seek to
	// the end so new records append after it.
	if err := f.Truncate(good); err != nil {
		return fail(err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		return fail(err)
	}
	b := &diskBackend{
		memoryBackend: mem,
		path:          path,
		snapPath:      snapPath,
		f:             f,
		w:             bufio.NewWriterSize(f, 1<<20),
		knobs:         knobs,
		gen:           gen,
		segSize:       good,
		flushed:       good,
		snapSize:      water,
		records:       recs + replayed,
		snapMap:       snapMap,
	}
	if repairSnap && knobs.snapshot {
		if err := b.writeSnapshot(); err != nil {
			return fail(err)
		}
	}
	return b, nil
}

// replaySegment applies every whole, CRC-valid record in f starting at
// byte offset from, and returns the offset just past the last good record
// plus the number of records applied. Anything after that offset — a torn
// length prefix, a short payload, a checksum mismatch or an undecodable
// record — is for the caller to truncate: record boundaries after a
// corrupt record cannot be trusted, so recovery keeps the longest clean
// prefix.
func replaySegment(f *os.File, mem *memoryBackend, from int64) (int64, int64, error) {
	if _, err := f.Seek(from, io.SeekStart); err != nil {
		return 0, 0, err
	}
	r := bufio.NewReaderSize(f, 1<<20)
	good := from
	var recs int64
	var payload []byte
	var crcb [4]byte
	for {
		var prefix int64
		n, err := wire.ReadUvarint(r, &prefix)
		if err != nil || n == 0 || n > maxRecordSize {
			return good, recs, nil
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(r, payload); err != nil {
			return good, recs, nil
		}
		if _, err := io.ReadFull(r, crcb[:]); err != nil {
			return good, recs, nil
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(crcb[:]) {
			return good, recs, nil
		}
		ok, err := applyRecord(mem, payload)
		if err != nil {
			return 0, 0, err
		}
		if !ok {
			return good, recs, nil
		}
		good += prefix + int64(n) + 4
		recs++
	}
}

// segRecord is one decoded segment record: an add (op, id, vec, doc) or a
// delete tombstone (op, id).
type segRecord struct {
	op  byte
	id  string
	vec []float32
	doc docs.Document
}

// errBadRecord is the typed rejection for a record payload that does not
// decode cleanly: wrong op byte, short or over-long sections, a vector of
// the wrong dimensionality, or trailing garbage. Replay treats it as the
// signature of a torn or corrupted tail and truncates; it is never a
// panic, whatever bytes arrive (the fuzz target's contract).
var errBadRecord = fmt.Errorf("retriever: undecodable segment record")

// decodeRecord parses one record payload against the shard's embedding
// dimensionality. It consumes the whole payload or fails: any leftover
// bytes mean the frame length and the content disagree, which only
// corruption produces.
func decodeRecord(payload []byte, dim int) (segRecord, error) {
	rd := wire.NewReader(payload)
	r := segRecord{op: rd.Byte()}
	r.id = rd.String()
	switch r.op {
	case opAdd:
		r.vec = rd.Float32s()
		doc, derr := decodeDoc(rd, r.id)
		if rd.Err() != nil || derr != nil || len(r.vec) != dim || rd.Remaining() != 0 {
			return segRecord{}, errBadRecord
		}
		r.doc = doc
	case opDel:
		if rd.Err() != nil || rd.Remaining() != 0 {
			return segRecord{}, errBadRecord
		}
	default:
		return segRecord{}, errBadRecord
	}
	return r, nil
}

// applyRecord decodes one record payload and applies it to the in-memory
// shard. It returns (false, nil) for an undecodable payload — corruption
// the caller handles by truncating — and a non-nil error only for real
// apply failures (which indicate a config mismatch, not disk damage).
func applyRecord(mem *memoryBackend, payload []byte) (bool, error) {
	rec, derr := decodeRecord(payload, mem.dim)
	if derr != nil {
		return false, nil
	}
	switch rec.op {
	case opAdd:
		if err := mem.Index(rec.doc, rec.vec); err != nil {
			return false, err
		}
	case opDel:
		mem.Delete(rec.id)
	}
	return true, nil
}

// writeFramedRecord frames one record payload (uvarint length prefix +
// payload + CRC32) into w, using frame as scratch, and returns the framed
// byte count. Shared by the live append path, segment rewrites and the
// background-compaction catch-up copier — every segment byte goes through
// the same framing.
func writeFramedRecord(w io.Writer, frame *wire.Writer, payload []byte) (int64, error) {
	frame.Reset()
	frame.Uvarint(uint64(len(payload)))
	if _, err := w.Write(frame.Bytes()); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(crcb[:]); err != nil {
		return 0, err
	}
	return int64(frame.Len()+len(payload)) + 4, nil
}

// appendRecord frames the current contents of b.rec (length prefix +
// payload + CRC32) into the segment buffer. Writers never fsync inline:
// when a sync policy is configured the record joins the shard's pending
// batch and the group-commit flusher is poked (immediately if a count or
// byte threshold tripped, otherwise after the latency bound — see
// groupcommit.go). Without a policy, durability is deferred to
// Flush/Close as before. Either way, the append also checks the
// compaction threshold, so a segment whose dead fraction crosses the
// configured ratio starts its background rewrite immediately instead of
// waiting for the next Flush.
func (b *diskBackend) appendRecord() error {
	rec, err := writeFramedRecord(b.w, &b.frame, b.rec.Bytes())
	if err != nil {
		return err
	}
	b.segSize += rec
	b.records++
	if gc := b.knobs.gc; gc != nil && gc.sync {
		b.pendingRecs++
		b.pendingBytes += rec
		gc.signal(gc.tripped(b.pendingRecs, b.pendingBytes))
	}
	if b.backgroundCompaction() && b.compactDone == nil && b.shouldCompact() {
		b.scheduleCompactLocked()
	}
	return nil
}

// encodeAddRecord fills b.rec with an add record.
func (b *diskBackend) encodeAddRecord(d docs.Document, vec []float32) {
	b.rec.Reset()
	b.rec.Byte(opAdd)
	b.rec.String(d.ID)
	b.rec.Float32s(vec)
	encodeDoc(&b.rec, d)
}

// Index adds the document to the in-memory shard and logs it.
func (b *diskBackend) Index(d docs.Document, vec []float32) error {
	if err := b.memoryBackend.Index(d, vec); err != nil {
		return err
	}
	b.encodeAddRecord(d, vec)
	return b.appendRecord()
}

// IndexBatch adds the batch to the in-memory shard, then logs one add
// record per document in batch order — the record order stays exactly the
// live mutation order, so a replay rebuilds bit-identical structures.
func (b *diskBackend) IndexBatch(ds []docs.Document, vecs [][]float32) error {
	if err := b.memoryBackend.IndexBatch(ds, vecs); err != nil {
		return err
	}
	for i, d := range ds {
		b.encodeAddRecord(d, vecs[i])
		if err := b.appendRecord(); err != nil {
			return err
		}
	}
	return nil
}

// DeleteBatch tombstones the batch in memory and logs one delete record
// per document that was actually present.
func (b *diskBackend) DeleteBatch(ids []string) int {
	present := ids[:0:0]
	for _, id := range ids {
		if _, ok := b.byID.Load(id); ok {
			present = append(present, id)
		}
	}
	if len(present) == 0 {
		return 0
	}
	b.memoryBackend.DeleteBatch(present)
	for _, id := range present {
		b.rec.Reset()
		b.rec.Byte(opDel)
		b.rec.String(id)
		_ = b.appendRecord()
	}
	return len(present)
}

// Delete removes the document and logs a tombstone record.
func (b *diskBackend) Delete(id string) bool {
	if !b.memoryBackend.Delete(id) {
		return false
	}
	// A failed tombstone append leaves the delete visible in memory but
	// not durable; the reopened index resurrects the document. That is
	// the backend's documented durability boundary (crash-after-delete);
	// WithSyncEvery(1) shrinks the window to the single record.
	b.rec.Reset()
	b.rec.Byte(opDel)
	b.rec.String(id)
	_ = b.appendRecord()
	return true
}

// syncSegment drains the write buffer and fsyncs the segment file,
// clearing the pending group-commit batch. One call makes every record
// appended since the previous sync durable — the whole point of group
// commit is that this runs once per batch, not once per record.
func (b *diskBackend) syncSegment() error {
	b.pendingRecs = 0
	b.pendingBytes = 0
	if err := b.w.Flush(); err != nil {
		return err
	}
	b.flushed = b.segSize
	if err := b.f.Sync(); err != nil {
		return err
	}
	b.fsyncs++
	return nil
}

// Flush makes the shard durable inline, entirely under the caller's shard
// lock: the segment is drained and fsynced, then — per the configured
// policy — a compaction rewrite runs when the dead-record fraction crosses
// the threshold, and a fresh snapshot is written when records were
// appended since the last one. Any sync or background-compaction error
// parked by the flusher since the last Flush surfaces here first.
//
// This is the Close path (and the whole story with background compaction
// off). Retriever.Flush instead goes through flushLocked/finishFlushLocked
// (compact.go) so a due compaction runs on the flusher goroutine while the
// shard keeps serving writes.
func (b *diskBackend) Flush() error {
	if err := b.takeAsyncErr(); err != nil {
		return err
	}
	if err := b.syncSegment(); err != nil {
		return err
	}
	if b.shouldCompact() {
		if err := b.compact(); err != nil {
			return err
		}
	}
	if b.knobs.snapshot && b.segSize != b.snapSize {
		return b.writeSnapshot()
	}
	return nil
}

// takeAsyncErr surfaces (and clears) the first error the flusher parked on
// this shard — a failed group-commit fsync or a failed background
// compaction — in that order.
func (b *diskBackend) takeAsyncErr() error {
	if err := b.syncErr; err != nil {
		b.syncErr = nil
		return err
	}
	if err := b.compactErr; err != nil {
		b.compactErr = nil
		return err
	}
	return nil
}

// shouldCompact reports whether dead records (superseded adds, deleted
// documents and the tombstone records themselves) make up at least the
// configured fraction of the segment.
func (b *diskBackend) shouldCompact() bool {
	if b.records == 0 {
		return false
	}
	dead := b.records - int64(b.memoryBackend.Len())
	if dead <= 0 {
		return false
	}
	return float64(dead)/float64(b.records) >= b.knobs.compactRatio
}

// compact rewrites the segment to exactly the live documents (in their
// original insertion order) under a bumped generation, rebuilds the
// in-memory state to match a replay of the rewritten log — graph
// construction reruns without the tombstoned nodes, so post-compaction
// results are those of a fresh index over the surviving corpus — and
// writes a fresh snapshot. This is the inline variant: the caller's shard
// lock is held throughout, so the whole rewrite counts as writer stall
// (the number the background path exists to shrink).
func (b *diskBackend) compact() error {
	start := time.Now()
	before := b.records
	size, recs, err := rewriteSegment(b.memoryBackend, b.path, b.gen+1)
	if err != nil {
		return err
	}
	if err := b.swapSegment(size, recs); err != nil {
		return err
	}
	if err := b.memoryBackend.compact(); err != nil {
		return err
	}
	b.noteCompaction(before-recs, time.Since(start))
	if b.knobs.snapshot {
		return b.writeSnapshot()
	}
	return nil
}

// swapSegment retargets the shard's write state at the freshly renamed
// segment file of the given logical size and record count: the old handle
// is swapped for a new one positioned at the segment's end, the
// generation advances, and the snapshot watermark resets (the previous
// snapshot's generation is now stale). Shared by inline and background
// compaction; shard lock held.
func (b *diskBackend) swapSegment(size, recs int64) error {
	if err := b.f.Close(); err != nil {
		return err
	}
	nf, err := os.OpenFile(b.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := nf.Seek(size, io.SeekStart); err != nil {
		nf.Close()
		return err
	}
	b.f = nf
	b.w.Reset(nf)
	b.gen++
	b.segSize = size
	b.flushed = size
	b.snapSize = 0
	b.records = recs
	b.pendingRecs = 0
	b.pendingBytes = 0
	return nil
}

// rewriteSegment writes a fresh segment at path (atomically, via rename)
// containing one add record per live document of mem, in insertion order,
// under the given generation. It returns the new logical size and record
// count. Shared by compaction and the legacy-format migration.
func rewriteSegment(mem *memoryBackend, path string, gen uint64) (int64, int64, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, 0, err
	}
	defer os.Remove(tmp)
	w := bufio.NewWriterSize(f, 1<<20)
	if err := writeSegHeader(w, gen); err != nil {
		f.Close()
		return 0, 0, err
	}
	size := int64(segHeaderSize)
	var recs int64
	var rec, frame wire.Writer
	var werr error
	mem.vec.ForEachLive(func(id string, vec []float32) bool {
		d, ok := mem.Document(id)
		if !ok {
			werr = fmt.Errorf("retriever: compact: document %q in graph but not in store", id)
			return false
		}
		rec.Reset()
		rec.Byte(opAdd)
		rec.String(id)
		rec.Float32s(vec)
		encodeDoc(&rec, d)
		var n int64
		if n, werr = writeFramedRecord(w, &frame, rec.Bytes()); werr != nil {
			return false
		}
		size += n
		recs++
		return true
	})
	if werr == nil {
		werr = w.Flush()
	}
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return 0, 0, werr
	}
	if err := os.Rename(tmp, path); err != nil {
		return 0, 0, err
	}
	return size, recs, nil
}

// Close flushes (including any due compaction and snapshot), closes the
// segment file and releases the snapshot mapping. The munmap comes last:
// until this point the shard's arenas and document strings may alias the
// mapping, which is why mmap-backed search results must not be retained
// past Close (see the package doc's mmap caveats).
func (b *diskBackend) Close() error {
	err := b.Flush()
	if cerr := b.f.Close(); err == nil {
		err = cerr
	}
	if merr := munmapFile(b.snapMap); err == nil {
		err = merr
	}
	b.snapMap = nil
	return err
}
