package retriever

import (
	"context"
	"fmt"
	"testing"

	"pneuma/internal/docs"
)

// perfCorpus builds a 300-document hybrid index for the allocation guard
// and the Ef-knob tests.
func perfCorpus(tb testing.TB, opts ...Option) *Retriever {
	tb.Helper()
	r := New(opts...)
	ds := make([]docs.Document, 300)
	for i := range ds {
		ds[i] = docs.Document{
			ID: fmt.Sprintf("doc-%03d", i),
			Content: fmt.Sprintf(
				"river nitrate station sample %d measurement water quality basin sensor", i),
		}
	}
	if err := r.IndexDocuments(context.Background(), ds); err != nil {
		tb.Fatal(err)
	}
	return r
}

// hybridSearchAllocBudget is the committed per-query allocation ceiling for
// the steady-state hybrid Search fan-out: the query embedding, the
// per-shard goroutines, the per-shard result slices from both index halves
// and the returned document slice, plus headroom for the GC occasionally
// dropping the pooled scratch structures. The pre-optimization path
// allocated several hundred per query; a regression past this budget means
// per-query garbage crept back into one of the three layers.
const hybridSearchAllocBudget = 120

func TestSearchAllocsWithinBudget(t *testing.T) {
	r := perfCorpus(t, WithShards(4))
	for i := 0; i < 10; i++ {
		if _, err := r.Search(context.Background(), "nitrate water quality", 5); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := r.Search(context.Background(), "nitrate water quality", 5); err != nil {
			t.Fatal(err)
		}
	})
	if avg > hybridSearchAllocBudget {
		t.Fatalf("steady-state hybrid Search allocates %.1f/op, budget is %d",
			avg, hybridSearchAllocBudget)
	}
}

// TestWithEfKnob verifies the beam width plumbs through to the shards and
// that widening it never loses results on a corpus smaller than the beam.
func TestWithEfKnob(t *testing.T) {
	if got := perfCorpus(t).Ef(); got != 64 {
		t.Fatalf("default Ef = %d, want 64", got)
	}
	wide := perfCorpus(t, WithEf(256))
	if got := wide.Ef(); got != 256 {
		t.Fatalf("Ef = %d, want 256", got)
	}
	narrow := perfCorpus(t, WithEf(1)) // clamped to ≥ k per query
	for _, r := range []*Retriever{wide, narrow} {
		out, err := r.Search(context.Background(), "nitrate water quality", 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 5 {
			t.Fatalf("Search with ef=%d returned %d results, want 5", r.Ef(), len(out))
		}
	}
}

func BenchmarkHybridSearch(b *testing.B) {
	r := perfCorpus(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Search(context.Background(), "nitrate water quality", 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHybridSearchQuantized is BenchmarkHybridSearch with the int8
// speed tier on: same corpus and query, traversal on the quantized arena
// plus the exact rescoring pass. Compare against BenchmarkHybridSearch
// for the tier's end-to-end cost delta.
func BenchmarkHybridSearchQuantized(b *testing.B) {
	r := perfCorpus(b, WithQuantize(true))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Search(context.Background(), "nitrate water quality", 5); err != nil {
			b.Fatal(err)
		}
	}
}
