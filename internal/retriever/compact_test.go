package retriever

import (
	"context"
	"fmt"
	"testing"
	"time"

	"pneuma/internal/docs"
)

// waitForCompactions polls until the retriever has completed at least n
// compaction runs, failing the test after a generous deadline.
func waitForCompactions(t *testing.T, r *Retriever, n uint64) CompactionStats {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		cs := r.CompactionStats()
		if cs.Runs >= n {
			return cs
		}
		if time.Now().After(deadline) {
			t.Fatalf("no compaction after 10s: %+v", cs)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestBackgroundCompactionStats verifies the Flush-triggered background
// path reports its work: deleting half the corpus and flushing must
// record at least one completed run with a positive reclaim count, and
// the memory backend must stay all-zero.
func TestBackgroundCompactionStats(t *testing.T) {
	dir := t.TempDir()
	tables := corpusSlice(64)
	r, err := Open(WithShards(2), WithBackend(Disk), WithDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.IndexTables(context.Background(), tables); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if cs := r.CompactionStats(); cs.Runs != 0 {
		t.Fatalf("compaction ran before any deletes: %+v", cs)
	}
	for _, tb := range tables[:32] {
		r.Delete("table:" + tb.Schema.Name)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	cs := r.CompactionStats()
	if cs.Runs == 0 || cs.Reclaimed <= 0 {
		t.Fatalf("background compaction left no trace: %+v", cs)
	}

	mem := New(WithShards(2))
	defer mem.Close()
	if err := mem.IndexTables(context.Background(), tables); err != nil {
		t.Fatal(err)
	}
	if cs := mem.CompactionStats(); cs != (CompactionStats{}) {
		t.Fatalf("memory backend reports compaction stats: %+v", cs)
	}
}

// TestBackgroundCompactionProactive verifies a compaction starts from the
// write path alone: once deletes push the dead fraction past the
// threshold, the flusher rewrites the segment without any Flush call.
func TestBackgroundCompactionProactive(t *testing.T) {
	dir := t.TempDir()
	tables := corpusSlice(64)
	r, err := Open(WithShards(1), WithBackend(Disk), WithDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.IndexTables(context.Background(), tables); err != nil {
		t.Fatal(err)
	}
	for _, tb := range tables[:40] {
		if !r.Delete("table:" + tb.Schema.Name) {
			t.Fatalf("delete %s failed", tb.Schema.Name)
		}
	}
	waitForCompactions(t, r, 1)
	if r.Len() != 24 {
		t.Fatalf("Len = %d, want 24", r.Len())
	}
	// The proactively compacted shard must still equal a fresh index over
	// the survivors, live and across a reopen.
	fresh := New(WithShards(1))
	defer fresh.Close()
	if err := fresh.IndexTables(context.Background(), tables[40:]); err != nil {
		t.Fatal(err)
	}
	for _, q := range parityQueries {
		assertSameResults(t, "proactive "+q, mustSearch(t, fresh, q, 10), mustSearch(t, r, q, 10))
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(WithBackend(Disk), WithDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for _, q := range parityQueries {
		assertSameResults(t, "proactive+reopened "+q, mustSearch(t, fresh, q, 10), mustSearch(t, re, q, 10))
	}
}

// TestBackgroundCompactionUnderIngest is the live-traffic contract: a
// compaction committing while a writer streams new documents must fold
// every concurrent write into the rewritten state — the result equals
// indexing the survivors and then the new documents in order, exactly as
// if the compaction had never happened. With one shard and the catch-up
// replay in play, this exercises pin, shadow build, catch-up and commit
// against a moving segment.
func TestBackgroundCompactionUnderIngest(t *testing.T) {
	dir := t.TempDir()
	tables := corpusSlice(64)
	r, err := Open(WithShards(1), WithBackend(Disk), WithDir(dir), WithSyncBytes(1024))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ctx := context.Background()
	if err := r.IndexTables(ctx, tables); err != nil {
		t.Fatal(err)
	}
	for _, tb := range tables[:40] {
		if !r.Delete("table:" + tb.Schema.Name) {
			t.Fatalf("delete %s failed", tb.Schema.Name)
		}
	}
	// The deletes above tripped the threshold, so the rewrite is now
	// racing this paced ingest stream.
	extra := make([]docs.Document, 30)
	for i := range extra {
		extra[i] = docs.Document{
			ID:      fmt.Sprintf("live:%03d", i),
			Title:   fmt.Sprintf("live stream doc %d", i),
			Content: fmt.Sprintf("streamed document %d arriving during segment compaction with freight terminal data", i),
		}
		if err := r.IndexDocument(ctx, extra[i]); err != nil {
			t.Fatal(err)
		}
		time.Sleep(200 * time.Microsecond)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	cs := waitForCompactions(t, r, 1)
	if cs.Reclaimed <= 0 {
		t.Fatalf("compaction reclaimed nothing: %+v", cs)
	}
	if r.Len() != 24+len(extra) {
		t.Fatalf("Len = %d, want %d", r.Len(), 24+len(extra))
	}

	// Replay-equivalence oracle: survivors in their original insertion
	// order, then the streamed documents in append order.
	fresh := New(WithShards(1))
	defer fresh.Close()
	if err := fresh.IndexTables(ctx, tables[40:]); err != nil {
		t.Fatal(err)
	}
	for _, d := range extra {
		if err := fresh.IndexDocument(ctx, d); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range append([]string{"streamed document freight"}, parityQueries...) {
		assertSameResults(t, "under-ingest "+q, mustSearch(t, fresh, q, 10), mustSearch(t, r, q, 10))
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(WithBackend(Disk), WithDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for _, q := range parityQueries {
		assertSameResults(t, "under-ingest+reopened "+q, mustSearch(t, fresh, q, 10), mustSearch(t, re, q, 10))
	}
}

// TestInlineCompactionMode verifies WithBackgroundCompaction(false)
// restores the old inline behaviour — the segment still shrinks at Flush,
// and the stall metric records the full under-lock rewrite.
func TestInlineCompactionMode(t *testing.T) {
	dir := t.TempDir()
	tables := corpusSlice(32)
	r, err := Open(WithShards(1), WithBackend(Disk), WithDir(dir), WithBackgroundCompaction(false))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.IndexTables(context.Background(), tables); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	before := totalSize(t, shardFiles(t, dir, ".seg"))
	for _, tb := range tables[:16] {
		r.Delete("table:" + tb.Schema.Name)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	after := totalSize(t, shardFiles(t, dir, ".seg"))
	if after > before*6/10 {
		t.Fatalf("inline compaction did not shrink segment: %d -> %d bytes", before, after)
	}
	cs := r.CompactionStats()
	if cs.Runs == 0 || cs.Reclaimed <= 0 || cs.MaxStall <= 0 {
		t.Fatalf("inline compaction stats incomplete: %+v", cs)
	}
}
