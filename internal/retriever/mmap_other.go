//go:build !unix

package retriever

import (
	"errors"
	"os"
)

// mmapSupported reports whether this platform can map snapshot files.
// WithMmap silently degrades to the ReadFile load path here.
const mmapSupported = false

// mmapFile is unavailable on this platform.
func mmapFile(*os.File) ([]byte, error) {
	return nil, errors.New("retriever: mmap unsupported on this platform")
}

// munmapFile matches the unix signature; nothing to release.
func munmapFile([]byte) error { return nil }
