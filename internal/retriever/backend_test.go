package retriever

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"testing"

	"pneuma/internal/docs"
)

// parityQueries exercises value literals, schema vocabulary and free text.
var parityQueries = []string{
	"freight container transit from port",
	"turbine output capacity",
	"warehouse stock levels and reorder",
	"rainfall readings by station",
	"portfolio yield and maturity",
	"Malta region records",
	"gross tonnage of vessels",
	"potassium in soil",
}

// mustSearch runs a query and fails the test on error.
func mustSearch(t *testing.T, r *Retriever, q string, k int) []docs.Document {
	t.Helper()
	hits, err := r.Search(context.Background(), q, k)
	if err != nil {
		t.Fatalf("search %q: %v", q, err)
	}
	return hits
}

// assertSameResults requires two result lists to agree exactly: same
// length, same IDs in the same order, bit-identical scores.
func assertSameResults(t *testing.T, label string, a, b []docs.Document) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: result counts differ: %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("%s: rank %d: ID %q vs %q", label, i, a[i].ID, b[i].ID)
		}
		if a[i].Score != b[i].Score {
			t.Fatalf("%s: rank %d (%s): score %v vs %v", label, i, a[i].ID, a[i].Score, b[i].Score)
		}
	}
}

func TestParseBackend(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Backend
		ok   bool
	}{
		{"", Memory, true},
		{"memory", Memory, true},
		{"disk", Disk, true},
		{"tape", "", false},
	} {
		got, err := ParseBackend(tc.in)
		if tc.ok != (err == nil) || got != tc.want {
			t.Fatalf("ParseBackend(%q) = %q, %v", tc.in, got, err)
		}
	}
}

// TestMemoryDiskParity indexes the same corpus into both backends and
// requires identical search results in every retrieval mode.
func TestMemoryDiskParity(t *testing.T) {
	tables := corpusSlice(64)
	for _, mode := range []Mode{ModeHybrid, ModeVectorOnly, ModeBM25Only} {
		mem := New(WithMode(mode), WithShards(4))
		dsk, err := Open(WithMode(mode), WithShards(4), WithBackend(Disk), WithDir(t.TempDir()))
		if err != nil {
			t.Fatal(err)
		}
		defer dsk.Close()
		if err := mem.IndexTables(context.Background(), tables); err != nil {
			t.Fatal(err)
		}
		if err := dsk.IndexTables(context.Background(), tables); err != nil {
			t.Fatal(err)
		}
		for _, q := range parityQueries {
			assertSameResults(t, q, mustSearch(t, mem, q, 10), mustSearch(t, dsk, q, 10))
		}
	}
}

// TestDiskFlushReopenRoundTrip is the acceptance scenario: a 500-table
// synthetic corpus indexed into the disk backend, flushed, closed and
// reopened from its segment files must answer searches byte-identically to
// a memory-backed index over the same corpus, with all documents (and
// their structured table payloads) intact.
func TestDiskFlushReopenRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("500-table round trip skipped in -short mode")
	}
	tables := corpusSlice(500)
	dir := t.TempDir()

	mem := New(WithShards(6))
	if err := mem.IndexTables(context.Background(), tables); err != nil {
		t.Fatal(err)
	}

	dsk, err := Open(WithShards(6), WithBackend(Disk), WithDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := dsk.IndexTables(context.Background(), tables); err != nil {
		t.Fatal(err)
	}
	if err := dsk.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := dsk.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen from segments alone; deliberately omit WithShards — the
	// manifest must restore the original layout.
	re, err := Open(WithBackend(Disk), WithDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.NumShards() != 6 {
		t.Fatalf("reopened shard count = %d, want 6 from manifest", re.NumShards())
	}
	if re.Len() != len(tables) {
		t.Fatalf("reopened Len = %d, want %d", re.Len(), len(tables))
	}
	for _, q := range parityQueries {
		assertSameResults(t, q, mustSearch(t, mem, q, 10), mustSearch(t, re, q, 10))
	}
	// Structured payloads survive the round trip.
	for _, tb := range tables[:10] {
		d, ok := re.Document("table:" + tb.Schema.Name)
		if !ok {
			t.Fatalf("document for %s missing after reopen", tb.Schema.Name)
		}
		if d.Table == nil {
			t.Fatalf("table payload for %s lost in round trip", tb.Schema.Name)
		}
		if got, want := d.Table.Schema.String(), tb.Schema.String(); got != want {
			t.Fatalf("schema for %s: %s, want %s", tb.Schema.Name, got, want)
		}
		if d.Table.NumRows() != tb.NumRows() {
			t.Fatalf("rows for %s: %d, want %d", tb.Schema.Name, d.Table.NumRows(), tb.NumRows())
		}
	}
}

// TestDiskDeletePersists verifies tombstone records survive flush/reopen.
func TestDiskDeletePersists(t *testing.T) {
	tables := corpusSlice(32)
	dir := t.TempDir()
	dsk, err := Open(WithShards(4), WithBackend(Disk), WithDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := dsk.IndexTables(context.Background(), tables); err != nil {
		t.Fatal(err)
	}
	victim := "table:" + tables[0].Schema.Name
	if !dsk.Delete(victim) {
		t.Fatal("delete failed")
	}
	if err := dsk.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(WithBackend(Disk), WithDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, ok := re.Document(victim); ok {
		t.Fatal("deleted document resurrected after reopen")
	}
	if re.Len() != len(tables)-1 {
		t.Fatalf("Len = %d, want %d", re.Len(), len(tables)-1)
	}
}

// TestDiskTornTailRecovery simulates a crash mid-append: garbage without a
// trailing newline after the last good record must be truncated away on
// reopen, keeping every whole record.
func TestDiskTornTailRecovery(t *testing.T) {
	tables := corpusSlice(16)
	dir := t.TempDir()
	dsk, err := Open(WithShards(2), WithBackend(Disk), WithDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := dsk.IndexTables(context.Background(), tables); err != nil {
		t.Fatal(err)
	}
	if err := dsk.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		path := filepath.Join(dir, "shard-000"+string(rune('0'+i))+".seg")
		f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString(`{"op":"add","id":"torn`); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	re, err := Open(WithBackend(Disk), WithDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != len(tables) {
		t.Fatalf("Len after torn-tail recovery = %d, want %d", re.Len(), len(tables))
	}
}

// TestGlobalBM25StatsParity is the ranking-parity guarantee: on a small
// corpus (where per-shard statistics would diverge hardest from global
// ones) a many-shard index must assign BM25 scores matching the unsharded
// single index within 1e-9.
func TestGlobalBM25StatsParity(t *testing.T) {
	tables := corpusSlice(32)
	single := New(WithMode(ModeBM25Only), WithShards(1))
	sharded := New(WithMode(ModeBM25Only), WithShards(8))
	if err := single.IndexTables(context.Background(), tables); err != nil {
		t.Fatal(err)
	}
	if err := sharded.IndexTables(context.Background(), tables); err != nil {
		t.Fatal(err)
	}
	for _, q := range parityQueries {
		a := mustSearch(t, single, q, 16)
		b := mustSearch(t, sharded, q, 16)
		if len(a) != len(b) {
			t.Fatalf("%q: result counts differ: %d vs %d", q, len(a), len(b))
		}
		for i := range a {
			if a[i].ID != b[i].ID {
				t.Fatalf("%q rank %d: ID %q vs %q", q, i, a[i].ID, b[i].ID)
			}
			if math.Abs(a[i].Score-b[i].Score) > 1e-9 {
				t.Fatalf("%q rank %d (%s): score %v vs %v diverges past 1e-9",
					q, i, a[i].ID, a[i].Score, b[i].Score)
			}
		}
	}
}

// TestGlobalStatsTrackDeletes verifies the shared statistics shrink when
// documents leave the index, keeping sharded scores aligned with a single
// index built over the surviving corpus.
func TestGlobalStatsTrackDeletes(t *testing.T) {
	tables := corpusSlice(24)
	sharded := New(WithMode(ModeBM25Only), WithShards(8))
	if err := sharded.IndexTables(context.Background(), tables); err != nil {
		t.Fatal(err)
	}
	for _, tb := range tables[:8] {
		if !sharded.Delete("table:" + tb.Schema.Name) {
			t.Fatalf("delete %s failed", tb.Schema.Name)
		}
	}
	single := New(WithMode(ModeBM25Only), WithShards(1))
	if err := single.IndexTables(context.Background(), tables[8:]); err != nil {
		t.Fatal(err)
	}
	for _, q := range parityQueries {
		a := mustSearch(t, single, q, 16)
		b := mustSearch(t, sharded, q, 16)
		if len(a) != len(b) {
			t.Fatalf("%q: result counts differ: %d vs %d", q, len(a), len(b))
		}
		for i := range a {
			if a[i].ID != b[i].ID || math.Abs(a[i].Score-b[i].Score) > 1e-9 {
				t.Fatalf("%q rank %d: (%s %v) vs (%s %v)",
					q, i, a[i].ID, a[i].Score, b[i].ID, b[i].Score)
			}
		}
	}
}
