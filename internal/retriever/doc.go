// Package retriever implements Pneuma-Retriever (Balaka et al., SIGMOD
// 2025), the table-discovery system the paper builds on: a hybrid index
// combining an HNSW vector store with a BM25 inverted index (§3.3), fused
// with reciprocal-rank fusion.
//
// # Sharding
//
// The index is sharded: documents are hash-partitioned by ID across N
// shards (default DefaultShards, GOMAXPROCS-derived), each shard owning a
// storage backend and a lock. Bulk ingest (IndexTables/IndexDocuments)
// embeds documents with a worker pool and builds all shards concurrently;
// Search fans out to every shard concurrently and merges the per-shard
// candidate lists deterministically (score descending, document ID
// ascending) before rank fusion.
//
// # Backends
//
// Each shard's storage engine is a ShardBackend, selected with
// WithBackend:
//
//   - Memory (default) keeps the HNSW graph, BM25 inverted index and
//     document map entirely in RAM.
//   - Disk additionally writes every mutation to an append-only segment
//     file per shard under the index directory (WithDir); the in-memory
//     structures are rebuilt by replaying the log on Open, and
//     Flush/Close make writes durable. Queries run against the same
//     in-memory structures as Memory, so the two backends return
//     identical results at identical latency.
//
// Disk-backed retrievers are created with Open (the error-returning
// constructor); New panics on I/O failure and is meant for Memory-backed
// use.
//
// # Global BM25 statistics
//
// All shards share one bm25.Stats object carrying the corpus-wide
// document count, average document length and per-term document
// frequencies, so a document's BM25 score is exactly what a single
// unsharded index over the whole corpus would assign — shard count never
// changes ranking, even on corpora of a handful of documents where
// per-shard statistics would diverge badly.
//
// # Determinism contract
//
// Results for a fixed corpus are identical regardless of shard count,
// backend, worker count, goroutine scheduling or GOMAXPROCS: bulk ingest
// sorts documents by ID and writes each shard's partition sequentially
// under its lock, HNSW level generation is seeded per shard, BM25
// statistics updates are commutative, and every merge breaks score ties
// by document ID. A Disk-backed index reopened from its segment files
// replays the exact mutation order and therefore answers queries
// byte-identically to the index that wrote them.
package retriever
