// Package retriever implements Pneuma-Retriever (Balaka et al., SIGMOD
// 2025), the table-discovery system the paper builds on: a hybrid index
// combining an HNSW vector store with a BM25 inverted index (§3.3), fused
// with reciprocal-rank fusion.
//
// # Sharding
//
// The index is sharded: documents are hash-partitioned by ID across N
// shards (default DefaultShards, GOMAXPROCS-derived), each shard owning a
// storage backend and a lock. Bulk ingest (IndexTables/IndexDocuments)
// embeds documents with a worker pool and builds all shards concurrently;
// Search fans out to every shard concurrently and merges the per-shard
// candidate lists deterministically (score descending, document ID
// ascending) before rank fusion.
//
// # Backends
//
// Each shard's storage engine is a ShardBackend, selected with
// WithBackend:
//
//   - Memory (default) keeps the HNSW graph, BM25 inverted index and
//     document map entirely in RAM.
//   - Disk additionally writes every mutation to an append-only binary
//     segment file per shard under the index directory (WithDir) and
//     serializes the built state to a per-shard snapshot on Flush/Close,
//     so reopening is a bulk load instead of a graph rebuild. Queries run
//     against the same in-memory structures as Memory, so the two
//     backends return identical results at identical latency.
//
// Disk-backed retrievers are created with Open (the error-returning
// constructor); New panics on I/O failure and is meant for Memory-backed
// use.
//
// # On-disk format (format 2)
//
// An index directory holds manifest.json (shard count, embedding dim and
// the segment format generation — all pinned: reopen uses the manifest's
// layout, and a format from a newer build fails with a typed
// pnerr.ErrIndexCorrupt), one segment file and at most one snapshot file
// per shard, and an advisory lock file while the index is open.
//
// Segment files (shard-NNNN.seg) begin with a 16-byte header — magic
// "pnsg", format word, and a generation counter that changes on every
// compaction rewrite — followed by length-prefixed records:
//
//	uvarint payloadLen | payload | CRC32(payload)
//	payload = op byte (1=add, 2=del) | id string
//	          [add: vector as raw little-endian float32s | document]
//
// Documents are encoded natively: strings length-prefixed, table cells as
// a kind byte plus an exact payload (zigzag-varint ints, raw IEEE 754
// doubles, second+nanosecond timestamps normalized to UTC), so values —
// including sub-second timestamps and NULL-looking string literals —
// round-trip byte-identically instead of degrading through canonical
// strings.
//
// Snapshot files (shard-NNNN.snap) serialize the built shard state — the
// document store, the HNSW struct-of-arrays (vector arena, id/level/
// tombstone/norm slices, adjacency lists, level-generator position) and
// the BM25 document table with term-wise postings — under a header
// carrying the snapshot version, the segment generation it belongs to,
// the covered record count and the high-water mark (segment byte offset
// folded in). The whole file is CRC32-guarded and written atomically.
//
// # Cold start, recovery and compat policy
//
// Open bulk-loads each shard from its snapshot and replays only segment
// records past the high-water mark — O(read) instead of O(rebuild). Every
// failure degrades toward the segment log, never toward wrong state: a
// torn or checksum-failing snapshot, a snapshot from a different version,
// or one whose generation does not match the segment falls back to a full
// replay (and the snapshot is rewritten so the next open is fast again);
// a torn segment tail or a mid-segment CRC mismatch truncates the log at
// the last whole record — boundaries after damage cannot be trusted, so
// recovery keeps the longest clean prefix. Indexes written by the
// pre-binary format (a manifest without a format field) are migrated in
// place on first open: the JSON-lines log is replayed once and rewritten
// as a compacted binary segment plus snapshot. The snapshot is purely
// derived state: deleting every .snap file is always safe.
//
// # Durability and compaction
//
// Records buffer in memory and become durable on Flush/Close;
// WithSyncEvery(n) additionally fsyncs every n appended records,
// shrinking the crash-loss window (including tombstones, whose loss
// resurrects deleted documents). Deletes and replacements accumulate dead
// records in the log; when their fraction reaches WithCompactionRatio
// (default 0.5), Flush/Close rewrites the segment to exactly the live
// documents under a new generation and rebuilds the in-memory state to
// match a replay of the rewritten log — the HNSW graph is reconstructed
// without its tombstoned nodes, so post-compaction results are those of a
// fresh index over the surviving corpus. WithSnapshotOnFlush(false)
// disables snapshot writes (slower cold starts, cheaper flushes).
//
// While open, the Disk backend holds an advisory lock file (PID inside)
// in the index directory: a second process opening the same directory
// fails fast with a typed pnerr.ErrIndexLocked instead of interleaving
// writes; locks left by dead processes are detected and broken.
//
// # Global BM25 statistics
//
// All shards share one bm25.Stats object carrying the corpus-wide
// document count, average document length and per-term document
// frequencies, so a document's BM25 score is exactly what a single
// unsharded index over the whole corpus would assign — shard count never
// changes ranking, even on corpora of a handful of documents where
// per-shard statistics would diverge badly. Stats updates are commutative
// — including the per-shard aggregate folds of snapshot loading — so the
// restored totals are independent of shard load order.
//
// # Determinism contract
//
// Results for a fixed corpus are identical regardless of shard count,
// backend, worker count, goroutine scheduling or GOMAXPROCS: bulk ingest
// sorts documents by ID and writes each shard's partition sequentially
// under its lock, HNSW level generation is seeded per shard, BM25
// statistics updates are commutative, and every merge breaks score ties
// by document ID. A Disk-backed index reopened from its segment files
// replays the exact mutation order; one reopened from snapshots restores
// the exact built state (including the level generator's position) — both
// answer queries bit-identically to the index that wrote them, at any
// shard count.
package retriever
