package retriever

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"

	"pneuma/internal/bm25"
	"pneuma/internal/docs"
	"pneuma/internal/wire"
)

// Per-shard snapshot file: a direct serialization of the built shard
// state — document store, HNSW struct-of-arrays and BM25 document table —
// so Open becomes a bulk load instead of a graph rebuild. The fixed
// header carries the snapshot version, the generation of the segment file
// it covers and the high-water mark (segment byte offset) up to which the
// log is folded in; records past the mark are replayed on top. The whole
// file is CRC32-guarded and written atomically (tmp + rename), so a torn
// or corrupt snapshot is detected up front and degrades to a full segment
// replay, never to wrong state.
const (
	snapMagic      = "pnss"
	snapVersion    = 1
	snapHeaderSize = 4 + 4 + 8 + 8 + 8 // magic + version u32 + generation + watermark + records
)

// writeSnapshot serializes the shard's current state next to the segment
// file and advances the snapshot high-water mark. Section order is
// load-bearing for crash safety on the read side: the document store and
// HNSW sections carry no shared side effects, while the BM25 section
// folds document frequencies into the retriever-wide Stats object as it
// loads — it is parsed last, so a snapshot that fails anywhere leaves the
// shared statistics untouched.
func (b *diskBackend) writeSnapshot() error {
	var buf bytes.Buffer
	var head [snapHeaderSize]byte
	copy(head[:4], snapMagic)
	binary.LittleEndian.PutUint32(head[4:8], snapVersion)
	binary.LittleEndian.PutUint64(head[8:16], b.gen)
	binary.LittleEndian.PutUint64(head[16:24], uint64(b.segSize))
	binary.LittleEndian.PutUint64(head[24:32], uint64(b.records))
	buf.Write(head[:])

	// Document store, sorted by ID so equal states produce equal bytes.
	ids := make([]string, 0, len(b.byID))
	for id := range b.byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var sec wire.Writer
	sec.Uvarint(uint64(len(ids)))
	for _, id := range ids {
		sec.String(id)
		encodeDoc(&sec, b.byID[id])
	}
	buf.Write(sec.Bytes())

	if _, err := b.vec.WriteTo(&buf); err != nil {
		return err
	}
	if _, err := b.lex.WriteTo(&buf); err != nil {
		return err
	}

	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], crc32.ChecksumIEEE(buf.Bytes()))
	buf.Write(crcb[:])

	tmp := b.snapPath + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer os.Remove(tmp)
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, b.snapPath); err != nil {
		return err
	}
	b.snapSize = b.segSize
	return nil
}

// loadSnapshot reads and validates the snapshot at snapPath and, on
// success, returns a fully built in-memory shard plus the high-water mark
// and record count it covers. A missing file returns the raw not-exist
// error (the caller treats it as "no snapshot"); every other failure —
// torn tail, CRC mismatch, version from a different build, generation not
// matching the live segment, watermark past the segment's size — returns
// a descriptive error and the caller falls back to a full replay (and
// rewrites the snapshot). The shared Stats object is only mutated if the
// entire snapshot parses.
func loadSnapshot(snapPath string, expectGen uint64, segSize int64, dim int, seed int64, st *bm25.Stats, ef int) (*memoryBackend, int64, int64, error) {
	raw, err := os.ReadFile(snapPath)
	if err != nil {
		return nil, 0, 0, err
	}
	if len(raw) < snapHeaderSize+4 {
		return nil, 0, 0, fmt.Errorf("snapshot %s: truncated (%d bytes)", snapPath, len(raw))
	}
	body, crcb := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(crcb) {
		return nil, 0, 0, fmt.Errorf("snapshot %s: checksum mismatch", snapPath)
	}
	if string(body[:4]) != snapMagic {
		return nil, 0, 0, fmt.Errorf("snapshot %s: bad magic %q", snapPath, body[:4])
	}
	if v := binary.LittleEndian.Uint32(body[4:8]); v != snapVersion {
		return nil, 0, 0, fmt.Errorf("snapshot %s: version %d, this build reads %d", snapPath, v, snapVersion)
	}
	if gen := binary.LittleEndian.Uint64(body[8:16]); gen != expectGen {
		return nil, 0, 0, fmt.Errorf("snapshot %s: covers segment generation %d, segment is at %d", snapPath, gen, expectGen)
	}
	water := int64(binary.LittleEndian.Uint64(body[16:24]))
	records := int64(binary.LittleEndian.Uint64(body[24:32]))
	if water < segHeaderSize || water > segSize {
		return nil, 0, 0, fmt.Errorf("snapshot %s: watermark %d outside segment of %d bytes", snapPath, water, segSize)
	}

	// The snapshot buffer is owned by the documents built from it, so
	// strings decode as zero-copy views (wire.NewSharedReader).
	rd := wire.NewSharedReader(body[snapHeaderSize:])
	count := int(rd.Uvarint())
	if count > rd.Remaining() {
		return nil, 0, 0, fmt.Errorf("snapshot %s: claims %d documents in %d bytes", snapPath, count, rd.Remaining())
	}
	byID := make(map[string]docs.Document, count)
	for i := 0; i < count; i++ {
		id := rd.String()
		d, derr := decodeDoc(rd, id)
		if derr != nil {
			return nil, 0, 0, fmt.Errorf("snapshot %s: %w", snapPath, derr)
		}
		byID[id] = d
	}
	if err := rd.Err(); err != nil {
		return nil, 0, 0, fmt.Errorf("snapshot %s: document store: %w", snapPath, err)
	}

	// Parse the index sections in deferred-statistics mode: the shared
	// Stats object is only touched (via AttachStats) once every section has
	// validated, so a bad snapshot cannot leak document frequencies into
	// the corpus totals before the caller falls back to a replay — and the
	// shard never materializes a throwaway local df map on the way.
	mem := newMemoryBackend(dim, seed, nil, ef)
	mem.lex.DeferStats()
	br := bytes.NewReader(rd.Rest())
	if _, err := mem.vec.ReadFrom(br); err != nil {
		return nil, 0, 0, fmt.Errorf("snapshot %s: %w", snapPath, err)
	}
	if _, err := mem.lex.ReadFrom(br); err != nil {
		return nil, 0, 0, fmt.Errorf("snapshot %s: %w", snapPath, err)
	}
	if mem.vec.Len() != len(byID) || mem.lex.Len() != len(byID) {
		return nil, 0, 0, fmt.Errorf("snapshot %s: sections disagree (%d docs, %d vectors, %d lexical)",
			snapPath, len(byID), mem.vec.Len(), mem.lex.Len())
	}
	mem.byID = byID
	mem.lex.AttachStats(st)
	return mem, water, records, nil
}
