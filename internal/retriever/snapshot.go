package retriever

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"

	"pneuma/internal/bm25"
	"pneuma/internal/docs"
	"pneuma/internal/wire"
)

// Per-shard snapshot file: a direct serialization of the built shard
// state — document store, HNSW struct-of-arrays and BM25 document table —
// so Open becomes a bulk load instead of a graph rebuild. The fixed
// header carries the snapshot version, the generation of the segment file
// it covers and the high-water mark (segment byte offset) up to which the
// log is folded in; records past the mark are replayed on top. The whole
// file is CRC32-guarded and written atomically (tmp + rename), so a torn
// or corrupt snapshot is detected up front and degrades to a full segment
// replay, never to wrong state.
//
// Version 2 lays the HNSW vector arenas (norms, float32 vectors and the
// optional int8 quantized arrays) out as wire aligned blobs, padded
// relative to the file start. A WithMmap open maps the whole file and the
// arenas become zero-copy views of the mapping — cold start pages data in
// on demand and co-located processes share the page-cache copy. Version-1
// snapshots (prior builds) fail the version check and degrade to a replay
// that rewrites the snapshot in the current format.
const (
	snapMagic      = "pnss"
	snapVersion    = 2
	snapHeaderSize = 4 + 4 + 8 + 8 + 8 // magic + version u32 + generation + watermark + records
)

// snapCRCTable selects the Castagnoli polynomial for the whole-file
// snapshot checksum: amd64 and arm64 compute it with the dedicated CRC32
// instruction, so guarding a multi-megabyte snapshot costs a fraction of
// a millisecond instead of dominating the open. Part of the version-2
// format (version 1 used IEEE; its snapshots fail the version check
// before the polynomial could matter).
var snapCRCTable = crc32.MakeTable(crc32.Castagnoli)

// writeSnapshot serializes the shard's current state next to the segment
// file and advances the snapshot high-water mark. The whole file is built
// in one wire.Writer so blob padding is relative to file offset 0 — the
// invariant the mmap load path's zero-copy reinterpretation depends on.
// Section order is load-bearing for crash safety on the read side: the
// document store and HNSW sections carry no shared side effects, while
// the BM25 section folds document frequencies into the retriever-wide
// Stats object as it loads — it is parsed last, so a snapshot that fails
// anywhere leaves the shared statistics untouched.
func (b *diskBackend) writeSnapshot() error {
	var w wire.Writer
	var head [snapHeaderSize]byte
	copy(head[:4], snapMagic)
	binary.LittleEndian.PutUint32(head[4:8], snapVersion)
	binary.LittleEndian.PutUint64(head[8:16], b.gen)
	binary.LittleEndian.PutUint64(head[16:24], uint64(b.segSize))
	binary.LittleEndian.PutUint64(head[24:32], uint64(b.records))
	w.Raw(head[:])

	// Document store, sorted by ID so equal states produce equal bytes.
	ids := make([]string, 0, b.memoryBackend.Len())
	b.byID.Range(func(k, _ any) bool {
		ids = append(ids, k.(string))
		return true
	})
	sort.Strings(ids)
	w.Uvarint(uint64(len(ids)))
	for _, id := range ids {
		d, _ := b.Document(id)
		w.String(id)
		encodeDoc(&w, d)
	}

	b.vec.AppendSnapshot(&w)
	if _, err := b.lex.WriteTo(&w); err != nil {
		return err
	}

	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], crc32.Checksum(w.Bytes(), snapCRCTable))
	w.Raw(crcb[:])

	tmp := b.snapPath + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer os.Remove(tmp)
	if _, err := f.Write(w.Bytes()); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, b.snapPath); err != nil {
		return err
	}
	b.snapSize = b.segSize
	return nil
}

// loadSnapshot reads and validates the snapshot at snapPath and, on
// success, returns a fully built in-memory shard plus the high-water mark
// and record count it covers. With useMmap (on supported platforms) the
// file is mapped instead of read: the returned mapping is non-nil and the
// built shard's arenas, document strings and IDs alias it zero-copy — the
// caller owns the mapping and must munmap it only after the shard is
// discarded (diskBackend.Close). The whole-file CRC is verified in both
// modes, so a torn or flipped blob is caught up front — an mmap open
// detects corruption exactly as eagerly as a ReadFile open and falls back
// to a replay the same way.
//
// A missing file returns the raw not-exist error (the caller treats it as
// "no snapshot"); every other failure — torn tail, CRC mismatch, version
// from a different build, generation not matching the live segment,
// watermark past the segment's size — returns a descriptive error, with
// any mapping released, and the caller falls back to a full replay (and
// rewrites the snapshot). The shared Stats object is only mutated if the
// entire snapshot parses.
func loadSnapshot(snapPath string, expectGen uint64, segSize int64, dim int, seed int64, st *bm25.Stats, ef int, quant, useMmap bool) (mem *memoryBackend, water, records int64, mapping []byte, err error) {
	var raw []byte
	if useMmap && mmapSupported {
		f, ferr := os.Open(snapPath)
		if ferr != nil {
			return nil, 0, 0, nil, ferr
		}
		m, merr := mmapFile(f)
		f.Close()
		if merr == nil {
			raw, mapping = m, m
		}
		// On mmap failure fall through to ReadFile below.
	}
	ok := false
	defer func() {
		if !ok && mapping != nil {
			_ = munmapFile(mapping)
		}
	}()
	if raw == nil {
		raw, err = os.ReadFile(snapPath)
		if err != nil {
			return nil, 0, 0, nil, err
		}
	}
	if len(raw) < snapHeaderSize+4 {
		return nil, 0, 0, nil, fmt.Errorf("snapshot %s: truncated (%d bytes)", snapPath, len(raw))
	}
	body, crcb := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.Checksum(body, snapCRCTable) != binary.LittleEndian.Uint32(crcb) {
		return nil, 0, 0, nil, fmt.Errorf("snapshot %s: checksum mismatch", snapPath)
	}
	if string(body[:4]) != snapMagic {
		return nil, 0, 0, nil, fmt.Errorf("snapshot %s: bad magic %q", snapPath, body[:4])
	}
	if v := binary.LittleEndian.Uint32(body[4:8]); v != snapVersion {
		return nil, 0, 0, nil, fmt.Errorf("snapshot %s: version %d, this build reads %d", snapPath, v, snapVersion)
	}
	if gen := binary.LittleEndian.Uint64(body[8:16]); gen != expectGen {
		return nil, 0, 0, nil, fmt.Errorf("snapshot %s: covers segment generation %d, segment is at %d", snapPath, gen, expectGen)
	}
	water = int64(binary.LittleEndian.Uint64(body[16:24]))
	records = int64(binary.LittleEndian.Uint64(body[24:32]))
	if water < segHeaderSize || water > segSize {
		return nil, 0, 0, nil, fmt.Errorf("snapshot %s: watermark %d outside segment of %d bytes", snapPath, water, segSize)
	}

	// The snapshot buffer is owned by the structures built from it, so
	// strings and arenas decode as zero-copy views (wire.NewSharedReader).
	// The reader spans the whole body — offset 0 == file offset 0 — so
	// blob alignment lines up; the fixed header is skipped, not re-parsed.
	rd := wire.NewSharedReader(body)
	rd.Skip(snapHeaderSize)
	count := int(rd.Uvarint())
	if count > rd.Remaining() {
		return nil, 0, 0, nil, fmt.Errorf("snapshot %s: claims %d documents in %d bytes", snapPath, count, rd.Remaining())
	}
	byID := make(map[string]docs.Document, count)
	for i := 0; i < count; i++ {
		id := rd.String()
		d, derr := decodeDoc(rd, id)
		if derr != nil {
			return nil, 0, 0, nil, fmt.Errorf("snapshot %s: %w", snapPath, derr)
		}
		byID[id] = d
	}
	if err := rd.Err(); err != nil {
		return nil, 0, 0, nil, fmt.Errorf("snapshot %s: document store: %w", snapPath, err)
	}

	// Parse the index sections in deferred-statistics mode: the shared
	// Stats object is only touched (via AttachStats) once every section has
	// validated, so a bad snapshot cannot leak document frequencies into
	// the corpus totals before the caller falls back to a replay — and the
	// shard never materializes a throwaway local df map on the way.
	mem = newMemoryBackend(dim, seed, nil, ef, quant)
	mem.lex.DeferStats()
	if err := mem.vec.LoadSnapshot(rd); err != nil {
		return nil, 0, 0, nil, fmt.Errorf("snapshot %s: %w", snapPath, err)
	}
	if err := mem.lex.ReadFromShared(rd); err != nil {
		return nil, 0, 0, nil, fmt.Errorf("snapshot %s: %w", snapPath, err)
	}
	if mem.vec.Len() != len(byID) || mem.lex.Len() != len(byID) {
		return nil, 0, 0, nil, fmt.Errorf("snapshot %s: sections disagree (%d docs, %d vectors, %d lexical)",
			snapPath, len(byID), mem.vec.Len(), mem.lex.Len())
	}
	mem.setDocs(byID)
	mem.lex.AttachStats(st)
	ok = true
	return mem, water, records, mapping, nil
}
