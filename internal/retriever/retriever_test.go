package retriever

import (
	"context"
	"testing"

	"pneuma/internal/docs"
	"pneuma/internal/table"
	"pneuma/internal/value"
)

func fixtureTables() []*table.Table {
	mk := func(name, desc string, cols ...table.Column) *table.Table {
		return table.New(table.Schema{Name: name, Description: desc, Columns: cols})
	}
	soil := mk("soil_samples", "Soil chemistry samples from excavation sites",
		table.Column{Name: "k_ppm", Type: value.KindFloat, Description: "Potassium concentration in parts per million"},
		table.Column{Name: "region", Type: value.KindString, Description: "Region of the site"},
	)
	soil.MustAppend(table.Row{value.Float(100), value.String("Malta")})
	tariffs := mk("tariff_schedule", "Import tariff rates by country",
		table.Column{Name: "country", Type: value.KindString, Description: "Exporting country"},
		table.Column{Name: "rate", Type: value.KindFloat, Description: "Tariff rate"},
	)
	tariffs.MustAppend(table.Row{value.String("Germany"), value.Float(0.1)})
	hr := mk("employees", "Employee roster with salaries",
		table.Column{Name: "name", Type: value.KindString, Description: "Employee name"},
		table.Column{Name: "salary", Type: value.KindFloat, Description: "Annual salary"},
	)
	hr.MustAppend(table.Row{value.String("Ada"), value.Float(100000)})
	return []*table.Table{soil, tariffs, hr}
}

func buildIndex(t *testing.T, mode Mode) *Retriever {
	t.Helper()
	r := New(WithMode(mode))
	for _, tb := range fixtureTables() {
		if err := r.IndexTable(context.Background(), tb); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestHybridRanksBySemantics(t *testing.T) {
	r := buildIndex(t, ModeHybrid)
	hits, err := r.Search(context.Background(), "potassium levels in soil", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].Title != "soil_samples" {
		t.Fatalf("top hit = %v, want soil_samples", hits)
	}
}

func TestDescriptionGrounding(t *testing.T) {
	// "potassium" appears only in a column description, not in any column
	// name or value — the capability FTS lacks.
	r := buildIndex(t, ModeHybrid)
	hits, _ := r.Search(context.Background(), "potassium", 1)
	if len(hits) != 1 || hits[0].Title != "soil_samples" {
		t.Fatalf("description grounding failed: %v", hits)
	}
}

func TestValueLiteralGrounding(t *testing.T) {
	r := buildIndex(t, ModeHybrid)
	hits, _ := r.Search(context.Background(), "Germany import rates", 1)
	if len(hits) != 1 || hits[0].Title != "tariff_schedule" {
		t.Fatalf("value grounding failed: %v", hits)
	}
}

func TestModes(t *testing.T) {
	for _, mode := range []Mode{ModeHybrid, ModeVectorOnly, ModeBM25Only} {
		r := buildIndex(t, mode)
		hits, err := r.Search(context.Background(), "employee salaries", 2)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if len(hits) == 0 || hits[0].Title != "employees" {
			t.Fatalf("mode %v: top = %v", mode, hits)
		}
	}
}

func TestDeleteAndLen(t *testing.T) {
	r := buildIndex(t, ModeHybrid)
	if r.Len() != 3 {
		t.Fatalf("len = %d", r.Len())
	}
	if !r.Delete("table:employees") {
		t.Fatal("delete failed")
	}
	if r.Delete("table:employees") {
		t.Fatal("double delete should be false")
	}
	hits, _ := r.Search(context.Background(), "employee salaries", 3)
	for _, h := range hits {
		if h.Title == "employees" {
			t.Fatal("deleted table surfaced")
		}
	}
}

func TestIndexDocumentNonTable(t *testing.T) {
	r := New()
	err := r.IndexDocument(context.Background(), docs.Document{
		ID: "note:1", Kind: docs.KindKnowledge, Title: "tariff rule",
		Content: "tariff impact must consider the previous active tariff rate",
	})
	if err != nil {
		t.Fatal(err)
	}
	hits, _ := r.Search(context.Background(), "previous tariff", 1)
	if len(hits) != 1 || hits[0].ID != "note:1" {
		t.Fatalf("knowledge doc not retrievable: %v", hits)
	}
	if _, ok := r.Document("note:1"); !ok {
		t.Fatal("Document lookup failed")
	}
}

func TestSearchZeroK(t *testing.T) {
	r := buildIndex(t, ModeHybrid)
	hits, err := r.Search(context.Background(), "anything", 0)
	if err != nil || hits != nil {
		t.Fatalf("k=0 should return nothing: %v %v", hits, err)
	}
}
