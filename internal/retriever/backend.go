package retriever

import (
	"fmt"

	"pneuma/internal/bm25"
	"pneuma/internal/docs"
	"pneuma/internal/hnsw"
)

// Backend names a shard storage engine.
type Backend string

// The available shard backends.
const (
	// Memory keeps every shard fully in RAM (HNSW graph + BM25 inverted
	// index + document map). This is the default and the fastest option.
	Memory Backend = "memory"
	// Disk additionally persists every shard to an append-only segment
	// file; the in-memory posting/vector structures are rebuilt from the
	// segment log on Open, and Flush/Close make writes durable. Search
	// runs against the same in-memory structures as Memory, so results
	// and latency are identical — the segment log buys restartability,
	// not a different ranking.
	Disk Backend = "disk"
)

// ParseBackend converts a user-supplied string (CLI flag, config value)
// into a Backend. The empty string selects Memory.
func ParseBackend(s string) (Backend, error) {
	switch Backend(s) {
	case "", Memory:
		return Memory, nil
	case Disk:
		return Disk, nil
	default:
		return "", fmt.Errorf("retriever: unknown backend %q (want %q or %q)", s, Memory, Disk)
	}
}

// ShardBackend is the storage engine behind one shard of the hybrid index:
// it owns the vector and lexical halves plus the document store for one
// hash partition of the corpus. Implementations need not be internally
// synchronized — the Retriever serializes access with one RWMutex per
// shard — but they must be deterministic: indexing the same (document,
// vector) sequence must yield a backend that answers SearchVector and
// SearchLexical identically across implementations and across reopens.
type ShardBackend interface {
	// Index adds (or replaces) one embedded document.
	Index(d docs.Document, vec []float32) error
	// Delete removes a document; it reports whether the ID was present.
	Delete(id string) bool
	// Document returns the stored document by ID.
	Document(id string) (docs.Document, bool)
	// SearchVector returns the top-k nearest documents to the query
	// vector.
	SearchVector(query []float32, k int) ([]hnsw.Result, error)
	// SearchLexical returns the top-k BM25 hits for the query text.
	SearchLexical(query string, k int) []bm25.Result
	// Len returns the number of live documents in this shard.
	Len() int
	// Flush makes all writes since the last Flush durable. A no-op for
	// purely in-memory backends.
	Flush() error
	// Close flushes and releases any resources. The backend must not be
	// used afterwards.
	Close() error
}

// memoryBackend is the in-RAM shard: an HNSW graph, a BM25 inverted index
// and the document map. It is the Memory backend and the substrate the
// Disk backend replays its segment log into. The construction parameters
// are retained so compact can rebuild the graph from scratch.
type memoryBackend struct {
	vec   *hnsw.Index
	lex   *bm25.Index
	byID  map[string]docs.Document
	dim   int
	seed  int64
	ef    int
	quant bool
}

// newMemoryBackend creates an empty in-memory shard. seed fixes the HNSW
// level generator so equal ingest sequences build equal graphs; st is the
// retriever-wide BM25 statistics object shared by every shard (nil scores
// against shard-local statistics); ef is the HNSW query beam width (0
// selects hnsw.DefaultEfSearch); quant enables the int8 quantized HNSW
// query path (the graph itself is identical either way).
func newMemoryBackend(dim int, seed int64, st *bm25.Stats, ef int, quant bool) *memoryBackend {
	return &memoryBackend{
		vec:   hnsw.New(dim, hnsw.Config{Seed: seed, EfSearch: ef, Quantize: quant}),
		lex:   bm25.NewWithStats(bm25.Params{}, st),
		byID:  make(map[string]docs.Document),
		dim:   dim,
		seed:  seed,
		ef:    ef,
		quant: quant,
	}
}

// arenaBytes reports the shard's HNSW vector-arena sizes (float32 bytes,
// quantized-side bytes) for the bench harness's memory accounting.
func (m *memoryBackend) arenaBytes() (int, int) { return m.vec.ArenaBytes() }

// compact rebuilds the shard without its tombstones: the HNSW graph is
// reconstructed by re-inserting the live vectors in their original
// relative order into a freshly seeded index — exactly the graph a replay
// of a compacted segment log builds — and the BM25 index drops its dead
// document slots (the shared Stats object is untouched; live
// contributions are identical before and after). The document map is
// already live-only.
func (m *memoryBackend) compact() error {
	nv := hnsw.New(m.dim, hnsw.Config{Seed: m.seed, EfSearch: m.ef, Quantize: m.quant})
	var err error
	m.vec.ForEachLive(func(id string, vec []float32) bool {
		err = nv.Add(id, vec)
		return err == nil
	})
	if err != nil {
		return err
	}
	m.vec = nv
	m.lex = m.lex.Compact()
	return nil
}

// Index adds the embedded document to both halves and the document map.
func (m *memoryBackend) Index(d docs.Document, vec []float32) error {
	if err := m.vec.Add(d.ID, vec); err != nil {
		return err
	}
	m.lex.Add(d.ID, d.Content)
	m.byID[d.ID] = d
	return nil
}

// Delete removes the document from both halves.
func (m *memoryBackend) Delete(id string) bool {
	if _, ok := m.byID[id]; !ok {
		return false
	}
	delete(m.byID, id)
	m.vec.Delete(id)
	m.lex.Delete(id)
	return true
}

// Document returns the stored document by ID.
func (m *memoryBackend) Document(id string) (docs.Document, bool) {
	d, ok := m.byID[id]
	return d, ok
}

// SearchVector queries the HNSW half.
func (m *memoryBackend) SearchVector(query []float32, k int) ([]hnsw.Result, error) {
	return m.vec.Search(query, k)
}

// SearchLexical queries the BM25 half.
func (m *memoryBackend) SearchLexical(query string, k int) []bm25.Result {
	return m.lex.Search(query, k)
}

// Len returns the number of live documents.
func (m *memoryBackend) Len() int { return len(m.byID) }

// Flush is a no-op: memory shards have no durable state.
func (m *memoryBackend) Flush() error { return nil }

// Close is a no-op: memory shards hold no external resources.
func (m *memoryBackend) Close() error { return nil }
