package retriever

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pneuma/internal/bm25"
	"pneuma/internal/docs"
	"pneuma/internal/hnsw"
)

// Backend names a shard storage engine.
type Backend string

// The available shard backends.
const (
	// Memory keeps every shard fully in RAM (HNSW graph + BM25 inverted
	// index + document map). This is the default and the fastest option.
	Memory Backend = "memory"
	// Disk additionally persists every shard to an append-only segment
	// file; the in-memory posting/vector structures are rebuilt from the
	// segment log on Open, and Flush/Close make writes durable. Search
	// runs against the same in-memory structures as Memory, so results
	// and latency are identical — the segment log buys restartability,
	// not a different ranking.
	Disk Backend = "disk"
)

// ParseBackend converts a user-supplied string (CLI flag, config value)
// into a Backend. The empty string selects Memory.
func ParseBackend(s string) (Backend, error) {
	switch Backend(s) {
	case "", Memory:
		return Memory, nil
	case Disk:
		return Disk, nil
	default:
		return "", fmt.Errorf("retriever: unknown backend %q (want %q or %q)", s, Memory, Disk)
	}
}

// ShardBackend is the storage engine behind one shard of the hybrid index:
// it owns the vector and lexical halves plus the document store for one
// hash partition of the corpus. The read methods (Document, SearchVector,
// SearchLexical, Len) are safe to call concurrently with each other and
// with one mutator — the index halves publish immutable views through
// atomic pointers, and the document store is a sync.Map — but mutators
// (Index, Delete, the batch variants, Flush, Close) are not internally
// serialized against each other: the Retriever runs them under one writer
// mutex per shard. Implementations must be deterministic: indexing the
// same (document, vector) sequence must yield a backend that answers
// SearchVector and SearchLexical identically across implementations and
// across reopens.
type ShardBackend interface {
	// Index adds (or replaces) one embedded document.
	Index(d docs.Document, vec []float32) error
	// IndexBatch adds (or replaces) a batch of embedded documents,
	// equivalent to calling Index on each pair in order but amortizing
	// the copy-on-write of the published read views across the batch.
	IndexBatch(ds []docs.Document, vecs [][]float32) error
	// Delete removes a document; it reports whether the ID was present.
	Delete(id string) bool
	// DeleteBatch removes a batch of documents and returns how many of
	// the IDs were present.
	DeleteBatch(ids []string) int
	// Document returns the stored document by ID.
	Document(id string) (docs.Document, bool)
	// SearchVector returns the top-k nearest documents to the query
	// vector.
	SearchVector(query []float32, k int) ([]hnsw.Result, error)
	// SearchLexical returns the top-k BM25 hits for the query text.
	SearchLexical(query string, k int) []bm25.Result
	// Len returns the number of live documents in this shard.
	Len() int
	// Flush makes all writes since the last Flush durable. A no-op for
	// purely in-memory backends.
	Flush() error
	// Close flushes and releases any resources. The backend must not be
	// used afterwards.
	Close() error
}

// memoryBackend is the in-RAM shard: an HNSW graph, a BM25 inverted index
// and the document map. It is the Memory backend and the substrate the
// Disk backend replays its segment log into. Reads run lock-free against
// the index halves' published views and the sync.Map document store;
// mutators rely on the Retriever's per-shard writer mutex.
type memoryBackend struct {
	vec   *hnsw.Index
	lex   *bm25.Index
	byID  sync.Map // string → docs.Document
	live  atomic.Int64
	dim   int
	seed  int64
	ef    int
	quant bool
}

// newMemoryBackend creates an empty in-memory shard. seed fixes the HNSW
// level generator so equal ingest sequences build equal graphs; st is the
// retriever-wide BM25 statistics object shared by every shard (nil scores
// against shard-local statistics); ef is the HNSW query beam width (0
// selects hnsw.DefaultEfSearch); quant enables the int8 quantized HNSW
// query path (the graph itself is identical either way).
func newMemoryBackend(dim int, seed int64, st *bm25.Stats, ef int, quant bool) *memoryBackend {
	return &memoryBackend{
		vec:   hnsw.New(dim, hnsw.Config{Seed: seed, EfSearch: ef, Quantize: quant}),
		lex:   bm25.NewWithStats(bm25.Params{}, st),
		dim:   dim,
		seed:  seed,
		ef:    ef,
		quant: quant,
	}
}

// setDocs replaces the document store wholesale (bulk load paths: snapshot
// restore, legacy migration). Writer-side only, before the shard serves.
func (m *memoryBackend) setDocs(byID map[string]docs.Document) {
	m.byID = sync.Map{}
	for id, d := range byID {
		m.byID.Store(id, d)
	}
	m.live.Store(int64(len(byID)))
}

// arenaBytes reports the shard's HNSW vector-arena sizes (float32 bytes,
// quantized-side bytes) for the bench harness's memory accounting.
func (m *memoryBackend) arenaBytes() (int, int) { return m.vec.ArenaBytes() }

// compact rebuilds the index halves without their tombstones, in place:
// the HNSW graph is reconstructed by re-inserting the live vectors in
// their original relative order under a freshly seeded level generator —
// exactly the graph a replay of a compacted segment log builds — and the
// BM25 index drops its dead document slots (the shared Stats object is
// untouched; live contributions are identical before and after). Both
// rebuilds publish via atomic view swap, so searches in flight keep their
// pinned pre-compaction view and never observe a half-built shard. The
// document map is already live-only.
func (m *memoryBackend) compact() error {
	m.vec.Compact()
	m.lex.Compact()
	return nil
}

// Index adds the embedded document to both halves and the document map.
// The document store is written first: any ID visible through a published
// index view must resolve in the store, so a concurrent reader never
// surfaces a hit it cannot materialize.
func (m *memoryBackend) Index(d docs.Document, vec []float32) error {
	if len(vec) != m.dim {
		return fmt.Errorf("hnsw: vector for %q has dim %d, index wants %d", d.ID, len(vec), m.dim)
	}
	if _, existed := m.byID.Swap(d.ID, d); !existed {
		m.live.Add(1)
	}
	m.lex.Add(d.ID, d.Content)
	return m.vec.Add(d.ID, vec)
}

// IndexBatch adds the batch through the halves' batch entry points, which
// clone the published copy-on-write arrays once for the whole batch.
func (m *memoryBackend) IndexBatch(ds []docs.Document, vecs [][]float32) error {
	for i, vec := range vecs {
		if len(vec) != m.dim {
			return fmt.Errorf("hnsw: vector for %q has dim %d, index wants %d", ds[i].ID, len(vec), m.dim)
		}
	}
	ids := make([]string, len(ds))
	texts := make([]string, len(ds))
	for i, d := range ds {
		ids[i] = d.ID
		texts[i] = d.Content
		if _, existed := m.byID.Swap(d.ID, d); !existed {
			m.live.Add(1)
		}
	}
	m.lex.AddBatch(ids, texts)
	return m.vec.AddBatch(ids, vecs)
}

// Delete removes the document from both halves, index halves first so a
// concurrent reader cannot surface a hit whose document is already gone.
func (m *memoryBackend) Delete(id string) bool {
	if _, ok := m.byID.Load(id); !ok {
		return false
	}
	m.vec.Delete(id)
	m.lex.Delete(id)
	m.byID.Delete(id)
	m.live.Add(-1)
	return true
}

// DeleteBatch tombstones the batch through the halves' batch entry points.
func (m *memoryBackend) DeleteBatch(ids []string) int {
	present := ids[:0:0]
	for _, id := range ids {
		if _, ok := m.byID.Load(id); ok {
			present = append(present, id)
		}
	}
	if len(present) == 0 {
		return 0
	}
	m.vec.DeleteBatch(present)
	m.lex.DeleteBatch(present)
	for _, id := range present {
		m.byID.Delete(id)
	}
	m.live.Add(int64(-len(present)))
	return len(present)
}

// Document returns the stored document by ID.
func (m *memoryBackend) Document(id string) (docs.Document, bool) {
	v, ok := m.byID.Load(id)
	if !ok {
		return docs.Document{}, false
	}
	return v.(docs.Document), true
}

// SearchVector queries the HNSW half.
func (m *memoryBackend) SearchVector(query []float32, k int) ([]hnsw.Result, error) {
	return m.vec.Search(query, k)
}

// SearchLexical queries the BM25 half.
func (m *memoryBackend) SearchLexical(query string, k int) []bm25.Result {
	return m.lex.Search(query, k)
}

// Len returns the number of live documents.
func (m *memoryBackend) Len() int { return int(m.live.Load()) }

// Flush is a no-op: memory shards have no durable state.
func (m *memoryBackend) Flush() error { return nil }

// Close is a no-op: memory shards hold no external resources.
func (m *memoryBackend) Close() error { return nil }
