package retriever

import "time"

// DefaultSyncInterval is the group-commit latency bound used when a sync
// policy is enabled (WithSyncEvery or WithSyncBytes) without an explicit
// WithSyncInterval: an appended record is fsynced at most this long after
// the append, batched with everything else that arrived in the window.
const DefaultSyncInterval = 2 * time.Millisecond

// groupCommit coordinates durability between the shard writers and the
// retriever's single flusher goroutine. Writers never fsync inline: they
// bump their shard's pending counters under the shard lock, then poke the
// flusher through the (non-blocking, capacity-1) channels. The flusher
// waits out the latency bound — or syncs immediately when a threshold
// trips — and pays one fsync per shard for the whole batch, so N
// concurrent writers share a single disk barrier instead of issuing N.
type groupCommit struct {
	// sync reports whether a durability trigger is configured. The
	// coordinator now exists for every Disk retriever — its goroutine is
	// also where background compaction runs — but without a sync policy
	// the writers never enqueue pending-fsync work and durability stays at
	// Flush/Close, exactly the pre-group-commit default.
	sync bool
	// Trigger thresholds: every fires on pending record count (the
	// deprecated WithSyncEvery alias), bytes on pending payload bytes,
	// interval is the latency bound started by the first pending record.
	every    int
	bytes    int64
	interval time.Duration

	notify  chan struct{} // ≥1 record pending somewhere
	kick    chan struct{} // a count/byte threshold tripped: sync now
	compact chan struct{} // ≥1 shard scheduled a background compaction
	done    chan struct{} // closed by Close: flush once more and exit
	stopped chan struct{} // closed by the flusher on exit
}

// newGroupCommit resolves the configured knobs into a trigger set.
func newGroupCommit(every int, bytes int64, interval time.Duration) *groupCommit {
	g := &groupCommit{
		sync:     every > 0 || bytes > 0 || interval > 0,
		every:    every,
		bytes:    bytes,
		interval: interval,
		notify:   make(chan struct{}, 1),
		kick:     make(chan struct{}, 1),
		compact:  make(chan struct{}, 1),
		done:     make(chan struct{}),
		stopped:  make(chan struct{}),
	}
	if g.sync && g.interval <= 0 {
		g.interval = DefaultSyncInterval
	}
	return g
}

// signal wakes the flusher; trip requests an immediate sync instead of
// waiting out the latency bound. Non-blocking — a token already in the
// channel carries the same information.
func (g *groupCommit) signal(trip bool) {
	select {
	case g.notify <- struct{}{}:
	default:
	}
	if trip {
		select {
		case g.kick <- struct{}{}:
		default:
		}
	}
}

// signalCompact wakes the flusher to run scheduled background
// compactions. Non-blocking; the per-shard compactWant flags (set under
// the shard locks before this is called) carry which shards need work, so
// one token is never a lost wakeup.
func (g *groupCommit) signalCompact() {
	select {
	case g.compact <- struct{}{}:
	default:
	}
}

// tripped reports whether the pending counters cross a configured
// threshold (called by writers under their shard lock).
func (g *groupCommit) tripped(pendingRecs int, pendingBytes int64) bool {
	if g.every > 0 && pendingRecs >= g.every {
		return true
	}
	if g.bytes > 0 && pendingBytes >= g.bytes {
		return true
	}
	return false
}

// flusher is the single group-commit goroutine: it sleeps until a writer
// signals pending data, waits out the latency bound (cut short by a
// threshold kick), then fsyncs every shard with pending records. On Close
// it performs one final sweep so nothing acknowledged to a writer is left
// unsynced. Sync errors are parked on the shard (diskBackend.syncErr) and
// surface from the next Flush/Close — the writer that triggered the batch
// has already returned, which is the documented durability trade of the
// latency-bound window.
//
// The same goroutine runs background segment compaction (see compact.go):
// a compaction signal starts an incremental rewrite that takes the shard
// lock only in short slices, servicing pending fsyncs between slices so
// the latency bound survives a long rewrite.
func (r *Retriever) flusher() {
	g := r.gc
	defer close(g.stopped)
	for {
		select {
		case <-g.done:
			r.syncPendingShards()
			return
		case <-g.compact:
			r.compactPendingShards()
			continue
		case <-g.notify:
		}
		t := time.NewTimer(g.interval)
		select {
		case <-g.done:
			t.Stop()
			r.syncPendingShards()
			return
		case <-g.kick:
			t.Stop()
		case <-t.C:
		}
		r.syncPendingShards()
	}
}

// syncPendingShards fsyncs every disk shard that has records appended
// since its last sync. One fsync covers the whole pending batch.
func (r *Retriever) syncPendingShards() {
	for _, s := range r.shards {
		s.mu.Lock()
		if db, ok := s.be.(*diskBackend); ok && db.pendingRecs > 0 {
			if err := db.syncSegment(); err != nil && db.syncErr == nil {
				db.syncErr = err
			}
		}
		s.mu.Unlock()
	}
}

// Fsyncs returns the cumulative number of segment-file fsyncs across all
// disk shards (0 for the Memory backend). The group-commit benchmark uses
// it to show N writers sharing one barrier; it also counts the syncs
// issued by Flush/Close and the deprecated count-based trigger.
func (r *Retriever) Fsyncs() uint64 {
	var n uint64
	for _, s := range r.shards {
		s.mu.Lock()
		if db, ok := s.be.(*diskBackend); ok {
			n += db.fsyncs
		}
		s.mu.Unlock()
	}
	return n
}
