package retriever

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"

	"pneuma/internal/pnerr"
)

// lockName is the advisory lock file guarding an index directory against
// a second writer.
const lockName = "pneuma.lock"

// dirLock is an advisory single-writer lock on an index directory: an
// O_EXCL-created file holding the owner's PID, removed on release. A
// second process opening the same directory fails fast with a typed
// pnerr.ErrIndexLocked instead of silently interleaving segment writes.
// Crashed owners are detected by probing the recorded PID (signal 0) and
// their stale locks are broken automatically. The lock is advisory: it
// guards cooperating pneuma processes, not arbitrary writers, and the
// create-then-write-PID window plus the probe-then-break window are not
// atomic — acceptable for the corruption class it defends against.
type dirLock struct {
	path string
}

// acquireDirLock takes the advisory lock for dir, breaking at most a few
// stale locks left by dead processes. Contention returns a typed
// pnerr.ErrIndexLocked; anything else is an I/O error.
func acquireDirLock(dir string) (*dirLock, error) {
	path := filepath.Join(dir, lockName)
	for attempt := 0; attempt < 3; attempt++ {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			if _, werr := fmt.Fprintf(f, "%d\n", os.Getpid()); werr != nil {
				f.Close()
				os.Remove(path)
				return nil, werr
			}
			if cerr := f.Close(); cerr != nil {
				os.Remove(path)
				return nil, cerr
			}
			return &dirLock{path: path}, nil
		}
		if !errors.Is(err, fs.ErrExist) {
			return nil, err
		}
		raw, rerr := os.ReadFile(path)
		if rerr != nil {
			if errors.Is(rerr, fs.ErrNotExist) {
				continue // raced with a release; retry the create
			}
			return nil, rerr
		}
		owner := strings.TrimSpace(string(raw))
		pid, perr := strconv.Atoi(owner)
		if perr != nil || !processAlive(pid) {
			// Stale: the recorded owner is gone (or never finished writing
			// its PID before dying). Break the lock and retry.
			_ = os.Remove(path)
			continue
		}
		return nil, pnerr.Locked("retriever: open",
			fmt.Errorf("index directory %s is locked by running process %d (%s)", dir, pid, path))
	}
	return nil, pnerr.Locked("retriever: open",
		fmt.Errorf("index directory %s: lock %s contended", dir, path))
}

// release removes the lock file. Safe on a nil lock.
func (l *dirLock) release() error {
	if l == nil {
		return nil
	}
	err := os.Remove(l.path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	return err
}

// processAlive probes pid with signal 0: delivery (or a permission
// refusal) means the process exists, ESRCH means it does not.
func processAlive(pid int) bool {
	if pid <= 0 {
		return false
	}
	p, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	err = p.Signal(syscall.Signal(0))
	if err == nil {
		return true
	}
	if errors.Is(err, os.ErrProcessDone) || errors.Is(err, syscall.ESRCH) {
		return false
	}
	// EPERM and friends: the process exists but is not ours.
	return true
}
