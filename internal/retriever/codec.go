package retriever

import (
	"fmt"
	"sort"
	"time"

	"pneuma/internal/docs"
	"pneuma/internal/table"
	"pneuma/internal/value"
	"pneuma/internal/wire"
)

// This file is the binary document codec shared by segment records and
// snapshot files (format 2). Unlike the JSON-lines codec it replaces,
// table cells are stored natively — kind byte plus an exact payload
// (zigzag-varint ints, raw IEEE 754 doubles, second+nanosecond
// timestamps) — instead of round-tripping through canonical strings, so
// sub-second timestamps and string literals that look like NULL ("null",
// "NA") survive a flush/reopen byte-identically.

// Cell kind bytes. They mirror value.Kind but are pinned independently so
// a reordering of the in-memory enum can never silently change the disk
// format.
const (
	cellNull   = 0
	cellBool   = 1
	cellInt    = 2
	cellFloat  = 3
	cellString = 4
	cellTime   = 5
)

// encodeValue appends one table cell.
func encodeValue(w *wire.Writer, v value.Value) {
	switch v.Kind() {
	case value.KindBool:
		w.Byte(cellBool)
		if v.BoolVal() {
			w.Byte(1)
		} else {
			w.Byte(0)
		}
	case value.KindInt:
		w.Byte(cellInt)
		w.Varint(v.IntVal())
	case value.KindFloat:
		w.Byte(cellFloat)
		w.Float64(v.FloatVal())
	case value.KindString:
		w.Byte(cellString)
		w.String(v.StringVal())
	case value.KindTime:
		// Second + nanosecond resolution; the location is normalized to
		// UTC (the instant is exact, the wall-clock zone is not kept).
		w.Byte(cellTime)
		t := v.TimeVal()
		w.Varint(t.Unix())
		w.Uvarint(uint64(t.Nanosecond()))
	default:
		w.Byte(cellNull)
	}
}

// decodeValue reads one table cell.
func decodeValue(r *wire.Reader) (value.Value, error) {
	switch k := r.Byte(); k {
	case cellNull:
		return value.Null(), nil
	case cellBool:
		return value.Bool(r.Byte() != 0), nil
	case cellInt:
		return value.Int(r.Varint()), nil
	case cellFloat:
		return value.Float(r.Float64()), nil
	case cellString:
		return value.String(r.String()), nil
	case cellTime:
		sec := r.Varint()
		nsec := r.Uvarint()
		return value.Time(time.Unix(sec, int64(nsec)).UTC()), nil
	default:
		return value.Null(), fmt.Errorf("retriever: unknown cell kind %d", k)
	}
}

// encodeDoc appends a document's durable form (everything except ID,
// which the record carries, and Score, which is query-scoped). Meta keys
// are written in sorted order so equal documents encode to equal bytes.
func encodeDoc(w *wire.Writer, d docs.Document) {
	w.String(string(d.Kind))
	w.String(d.Title)
	w.String(d.Content)
	w.String(d.Source)
	w.Uvarint(uint64(len(d.Meta)))
	if len(d.Meta) > 0 {
		keys := make([]string, 0, len(d.Meta))
		for k := range d.Meta {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			w.String(k)
			w.String(d.Meta[k])
		}
	}
	if d.Table == nil {
		w.Byte(0)
		return
	}
	w.Byte(1)
	t := d.Table
	w.String(t.Schema.Name)
	w.String(t.Schema.Description)
	w.Uvarint(uint64(len(t.Schema.Columns)))
	for _, c := range t.Schema.Columns {
		w.String(c.Name)
		w.Byte(byte(c.Type))
		w.String(c.Description)
		w.String(c.Unit)
	}
	w.Uvarint(uint64(len(t.Rows)))
	// Total cell count lets the decoder back all rows with one arena
	// allocation instead of one slice per row.
	cells := 0
	for _, row := range t.Rows {
		cells += len(row)
	}
	w.Uvarint(uint64(cells))
	for _, row := range t.Rows {
		w.Uvarint(uint64(len(row)))
		for _, v := range row {
			encodeValue(w, v)
		}
	}
}

// decodeDoc reads a document encoded by encodeDoc, attaching the given ID.
func decodeDoc(r *wire.Reader, id string) (docs.Document, error) {
	d := docs.Document{
		ID:      id,
		Kind:    docs.Kind(r.String()),
		Title:   r.String(),
		Content: r.String(),
		Source:  r.String(),
	}
	if nm := int(r.Uvarint()); nm > 0 {
		if nm > r.Remaining() {
			return d, fmt.Errorf("retriever: doc %q claims %d meta entries in %d bytes", id, nm, r.Remaining())
		}
		d.Meta = make(map[string]string, nm)
		for i := 0; i < nm; i++ {
			k := r.String()
			d.Meta[k] = r.String()
		}
	}
	if r.Byte() == 0 {
		return d, r.Err()
	}
	schema := table.Schema{Name: r.String(), Description: r.String()}
	ncols := int(r.Uvarint())
	if ncols > r.Remaining() {
		return d, fmt.Errorf("retriever: doc %q claims %d columns in %d bytes", id, ncols, r.Remaining())
	}
	for i := 0; i < ncols; i++ {
		schema.Columns = append(schema.Columns, table.Column{
			Name:        r.String(),
			Type:        value.Kind(r.Byte()),
			Description: r.String(),
			Unit:        r.String(),
		})
	}
	t := table.New(schema)
	nrows := int(r.Uvarint())
	cells := int(r.Uvarint())
	if nrows > r.Remaining() || cells > r.Remaining() {
		return d, fmt.Errorf("retriever: doc %q claims %d rows / %d cells in %d bytes", id, nrows, cells, r.Remaining())
	}
	// All rows are capacity-limited windows into one arena; a later append
	// to an individual row copies out instead of stomping its neighbour.
	arena := make([]value.Value, 0, cells)
	t.Rows = make([]table.Row, 0, nrows)
	for i := 0; i < nrows; i++ {
		arity := int(r.Uvarint())
		if arity > r.Remaining() || len(arena)+arity > cap(arena) {
			return d, fmt.Errorf("retriever: doc %q row %d claims %d cells in %d bytes", id, i, arity, r.Remaining())
		}
		start := len(arena)
		for j := 0; j < arity; j++ {
			v, err := decodeValue(r)
			if err != nil {
				return d, err
			}
			arena = append(arena, v)
		}
		t.Rows = append(t.Rows, table.Row(arena[start:len(arena):len(arena)]))
	}
	d.Table = t
	return d, r.Err()
}
