//go:build linux

package retriever

import "syscall"

// mapPopulate prefaults the whole mapping inside the mmap call. The open
// path CRC-checks every byte of the snapshot anyway, so lazy paging buys
// nothing there — populating turns the per-page fault storm into one
// sequential page-cache load, which is what makes a mapped open faster
// than ReadFile (same read, no buffer allocation or copy).
const mapPopulate = syscall.MAP_POPULATE
