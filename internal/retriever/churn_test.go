package retriever

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"pneuma/internal/docs"
	"pneuma/internal/leakcheck"
)

// The churn soak: a single mutator streams adds, deletes and flushes into
// a retriever while reader goroutines hammer Search, Document and Len —
// the live-ingest serving pattern the epoch/RCU read path exists for. The
// mutator records the exact operation sequence it applied; after the
// index quiesces, replaying that sequence into a fresh memory-backed
// retriever must reproduce every search result exactly (IDs and scores),
// at every shard count, on both backends, and across a close/reopen with
// and without mmap. Run under -race this doubles as the data-race proof
// for the lock-free read path.

// churnOp is one recorded mutation: an add batch or a delete batch,
// exactly as handed to the batch APIs.
type churnOp struct {
	add []docs.Document
	del []string
}

// churnVocab gives the synthetic corpus vocabulary overlap so BM25 terms
// appear in many documents and deletes move document frequencies.
var churnVocab = []string{
	"river", "nitrate", "station", "turbine", "freight", "manifest",
	"rainfall", "sensor", "basin", "portfolio", "yield", "potassium",
	"warehouse", "stock", "quality", "sample",
}

// churnDoc builds the nth synthetic document.
func churnDoc(n int) docs.Document {
	a := churnVocab[n%len(churnVocab)]
	b := churnVocab[(n/3+5)%len(churnVocab)]
	c := churnVocab[(n/7+11)%len(churnVocab)]
	return docs.Document{
		ID:      fmt.Sprintf("doc-%05d", n),
		Kind:    docs.KindKnowledge,
		Title:   fmt.Sprintf("churn %d", n),
		Content: fmt.Sprintf("%s %s readings series %d with %s measurements", a, b, n, c),
	}
}

// churnQueries is the fixed query set parity is asserted over.
var churnQueries = []string{
	"river nitrate readings",
	"freight manifest series",
	"turbine yield measurements",
	"warehouse stock sample",
	"rainfall sensor basin quality",
}

// assertChurnParity requires two retrievers to answer the churn query set
// identically — same documents, same order, same scores.
func assertChurnParity(t *testing.T, want, got *Retriever, label string) {
	t.Helper()
	ctx := context.Background()
	for _, q := range churnQueries {
		a, err := want.Search(ctx, q, 10)
		if err != nil {
			t.Fatalf("%s: want search: %v", label, err)
		}
		b, err := got.Search(ctx, q, 10)
		if err != nil {
			t.Fatalf("%s: got search: %v", label, err)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: query %q: %d vs %d results", label, q, len(a), len(b))
		}
		for i := range a {
			if a[i].ID != b[i].ID || a[i].Score != b[i].Score {
				t.Fatalf("%s: query %q rank %d: (%s, %v) vs (%s, %v)",
					label, q, i, a[i].ID, a[i].Score, b[i].ID, b[i].Score)
			}
		}
	}
}

// runChurn drives the concurrent soak against r and returns the recorded
// mutation sequence (seeded corpus first). ops scales the soak length.
func runChurn(t *testing.T, r *Retriever, ops int) []churnOp {
	t.Helper()
	ctx := context.Background()

	// Seed corpus, recorded as the first op so replay rebuilds it the same
	// way.
	seed := make([]docs.Document, 80)
	for i := range seed {
		seed[i] = churnDoc(i)
	}
	if err := r.IndexDocuments(ctx, seed); err != nil {
		t.Fatal(err)
	}
	recorded := []churnOp{{add: seed}}

	done := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				switch i % 3 {
				case 0:
					q := churnQueries[rng.Intn(len(churnQueries))]
					res, err := r.Search(ctx, q, 5)
					if err != nil {
						t.Errorf("reader %d: search: %v", g, err)
						return
					}
					for _, d := range res {
						if d.ID == "" {
							t.Errorf("reader %d: empty result ID", g)
							return
						}
					}
				case 1:
					r.Document(fmt.Sprintf("doc-%05d", rng.Intn(200)))
				case 2:
					if r.Len() < 0 {
						t.Errorf("reader %d: negative Len", g)
						return
					}
				}
			}
		}(g)
	}

	// Single mutator: batched adds, batched deletes and flushes in a
	// recorded order. IDs only ever move forward (no replacements), so a
	// compacted index is exactly a fresh build over the survivors.
	rng := rand.New(rand.NewSource(20260808))
	next := len(seed)
	live := make([]string, 0, len(seed)+ops)
	for _, d := range seed {
		live = append(live, d.ID)
	}
	for i := 0; i < ops; i++ {
		switch {
		case rng.Intn(10) == 0:
			if err := r.Flush(); err != nil {
				t.Fatalf("mutator: flush: %v", err)
			}
		case rng.Intn(3) == 0 && len(live) > 20:
			n := 1 + rng.Intn(4)
			del := make([]string, 0, n)
			for j := 0; j < n; j++ {
				k := rng.Intn(len(live))
				del = append(del, live[k])
				live[k] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			if got := r.DeleteDocuments(del); got != len(del) {
				t.Fatalf("mutator: deleted %d of %d", got, len(del))
			}
			recorded = append(recorded, churnOp{del: del})
		default:
			n := 1 + rng.Intn(6)
			add := make([]docs.Document, n)
			for j := range add {
				add[j] = churnDoc(next)
				live = append(live, add[j].ID)
				next++
			}
			if err := r.IndexDocuments(ctx, add); err != nil {
				t.Fatalf("mutator: index: %v", err)
			}
			recorded = append(recorded, churnOp{add: add})
		}
	}
	close(done)
	readers.Wait()
	return recorded
}

// replayChurn applies the recorded sequence, batch for batch, to a fresh
// retriever.
func replayChurn(t *testing.T, r *Retriever, recorded []churnOp) {
	t.Helper()
	ctx := context.Background()
	for _, op := range recorded {
		if len(op.add) > 0 {
			if err := r.IndexDocuments(ctx, op.add); err != nil {
				t.Fatal(err)
			}
		}
		if len(op.del) > 0 {
			if got := r.DeleteDocuments(op.del); got != len(op.del) {
				t.Fatalf("replay deleted %d of %d", got, len(op.del))
			}
		}
	}
}

// TestChurnSoak runs the soak across the shard-count × backend matrix and
// asserts quiesced parity with a sequential replay; disk configurations
// additionally close and reopen with mmap off and on, asserting the
// restored index (snapshot bulk load or segment replay) still answers
// identically. Short mode (the race-smoke gate) trims the matrix to one
// shard count per backend.
func TestChurnSoak(t *testing.T) {
	shardCounts := []int{1, 4, 8}
	ops := 150
	if testing.Short() {
		shardCounts = []int{4}
		ops = 60
	}
	for _, shards := range shardCounts {
		for _, backend := range []Backend{Memory, Disk} {
			t.Run(fmt.Sprintf("shards=%d/%s", shards, backend), func(t *testing.T) {
				defer leakcheck.Check(t)()
				opts := []Option{WithShards(shards), WithBackend(backend)}
				var dir string
				if backend == Disk {
					dir = t.TempDir()
					// A byte-based sync policy keeps the group-commit
					// flusher live for the whole soak. Ratio-triggered
					// compaction is disabled: it rebuilds the graph without
					// its tombstones, which is correct but would diverge
					// from the tombstoned sequential replay below — the
					// dedicated compaction-parity test covers that path.
					opts = append(opts, WithDir(dir), WithSyncBytes(1<<14),
						WithCompactionRatio(-1))
				}
				r, err := Open(opts...)
				if err != nil {
					t.Fatal(err)
				}
				recorded := runChurn(t, r, ops)

				// Parity: a fresh memory-backed retriever fed the same
				// sequence must answer every query identically — the
				// concurrent interleaving observed by readers collapsed to
				// exactly the sequential history at quiesce.
				fresh := New(WithShards(shards))
				defer fresh.Close()
				replayChurn(t, fresh, recorded)
				if fresh.Len() != r.Len() {
					t.Fatalf("replay Len = %d, churned Len = %d", fresh.Len(), r.Len())
				}
				assertChurnParity(t, fresh, r, "quiesced")

				if backend != Disk {
					if err := r.Close(); err != nil {
						t.Fatal(err)
					}
					return
				}
				// Disk: the restored index — snapshot bulk load, with and
				// without mmap — must preserve the same answers.
				if err := r.Close(); err != nil {
					t.Fatal(err)
				}
				for _, mmap := range []bool{false, true} {
					re, err := Open(WithShards(shards), WithBackend(Disk), WithDir(dir), WithMmap(mmap))
					if err != nil {
						t.Fatalf("reopen mmap=%v: %v", mmap, err)
					}
					if re.Len() != fresh.Len() {
						t.Fatalf("reopen mmap=%v: Len = %d, want %d", mmap, re.Len(), fresh.Len())
					}
					assertChurnParity(t, fresh, re, fmt.Sprintf("reopen mmap=%v", mmap))
					if err := re.Close(); err != nil {
						t.Fatal(err)
					}
				}
			})
		}
	}
}

// TestChurnCompactionParity pins the fresh-build contract: after deletes
// and a compaction-triggering Flush, a disk-backed index answers exactly
// like a brand-new index built over only the surviving documents in their
// original insertion order — tombstones leave no trace in results.
func TestChurnCompactionParity(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(WithShards(4), WithBackend(Disk), WithDir(dir), WithCompactionRatio(0.01))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ctx := context.Background()

	all := make([]docs.Document, 120)
	for i := range all {
		all[i] = churnDoc(i)
	}
	if err := r.IndexDocuments(ctx, all); err != nil {
		t.Fatal(err)
	}
	var deleted []string
	for i := 0; i < len(all); i += 3 {
		deleted = append(deleted, all[i].ID)
	}
	if got := r.DeleteDocuments(deleted); got != len(deleted) {
		t.Fatalf("deleted %d of %d", got, len(deleted))
	}
	// Every shard now exceeds the 1% dead fraction; Flush rewrites the
	// segments and rebuilds the in-memory graphs from the survivors.
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}

	survivors := make([]docs.Document, 0, len(all))
	for i, d := range all {
		if i%3 != 0 {
			survivors = append(survivors, d)
		}
	}
	fresh := New(WithShards(4))
	defer fresh.Close()
	if err := fresh.IndexDocuments(ctx, survivors); err != nil {
		t.Fatal(err)
	}
	assertChurnParity(t, fresh, r, "compacted")
}
