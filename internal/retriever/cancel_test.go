package retriever

import (
	"context"
	"errors"
	"testing"
	"time"

	"pneuma/internal/bm25"
	"pneuma/internal/docs"
	"pneuma/internal/hnsw"
	"pneuma/internal/kramabench"
	"pneuma/internal/leakcheck"
	"pneuma/internal/pnerr"
)

// blockingBackend wraps a ShardBackend so one shard's vector search parks
// until released — the instrument for driving a query into the
// "mid-fan-out" window deterministically.
type blockingBackend struct {
	ShardBackend
	entered chan struct{} // closed when SearchVector is reached
	release chan struct{} // SearchVector returns once this closes
}

func (b *blockingBackend) SearchVector(q []float32, k int) ([]hnsw.Result, error) {
	close(b.entered)
	<-b.release
	return b.ShardBackend.SearchVector(q, k)
}

func (b *blockingBackend) SearchLexical(q string, k int) []bm25.Result {
	return b.ShardBackend.SearchLexical(q, k)
}

// TestSearchCanceledBeforeStart: an already-canceled context fails fast
// with the typed error, before any shard is consulted.
func TestSearchCanceledBeforeStart(t *testing.T) {
	r := New(WithShards(4))
	if err := r.IndexTables(context.Background(), kramabench.SyntheticSlice(40)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := r.Search(ctx, "synthetic corpus query", 5)
	if !errors.Is(err, pnerr.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v should wrap context.Canceled", err)
	}
}

// TestSearchCanceledMidFanout: cancel while one shard is parked inside its
// backend. Search must return context.Canceled promptly — not wait for the
// stuck shard — and the abandoned goroutines must drain without leaking
// once the shard unblocks.
func TestSearchCanceledMidFanout(t *testing.T) {
	defer leakcheck.Check(t)()

	r := New(WithShards(4))
	if err := r.IndexTables(context.Background(), kramabench.SyntheticSlice(60)); err != nil {
		t.Fatal(err)
	}
	inner := r.shards[0].be
	blocked := &blockingBackend{
		ShardBackend: inner,
		entered:      make(chan struct{}),
		release:      make(chan struct{}),
	}
	r.shards[0].be = blocked

	ctx, cancel := context.WithCancel(context.Background())
	type result struct {
		ds  []docs.Document
		err error
	}
	done := make(chan result, 1)
	go func() {
		ds, err := r.Search(ctx, "nitrate water quality", 5)
		done <- result{ds, err}
	}()

	// Wait until the query is genuinely mid-fan-out (shard 0 parked inside
	// its backend), then cancel.
	select {
	case <-blocked.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("shard fan-out never reached the blocking backend")
	}
	cancel()

	select {
	case res := <-done:
		if !errors.Is(res.err, context.Canceled) {
			t.Fatalf("Search returned %v, want context.Canceled in the chain", res.err)
		}
		if !errors.Is(res.err, pnerr.ErrCanceled) {
			t.Fatalf("Search returned %v, want typed ErrCanceled", res.err)
		}
		if res.ds != nil {
			t.Fatalf("canceled Search returned documents: %v", res.ds)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Search did not return promptly after cancellation (blocked on stuck shard)")
	}

	// Unblock the parked shard so its goroutine can drain (it holds the
	// shard read lock while parked), then swap the real backend back — the
	// write lock acquisition below also proves the abandoned goroutine
	// released the shard. leakcheck then proves nothing is left running.
	close(blocked.release)
	r.shards[0].mu.Lock()
	r.shards[0].be = inner
	r.shards[0].mu.Unlock()

	// The index must remain fully serviceable after an abandoned query.
	ds, err := r.Search(context.Background(), "nitrate water quality", 5)
	if err != nil || len(ds) == 0 {
		t.Fatalf("post-cancel Search = %v, %v", ds, err)
	}
}

// TestIndexDocumentsCanceled: cancellation during bulk ingest surfaces the
// typed error and leaves the retriever consistent for later ingests.
func TestIndexDocumentsCanceled(t *testing.T) {
	defer leakcheck.Check(t)()

	r := New(WithShards(4))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := r.IndexTables(ctx, kramabench.SyntheticSlice(50))
	if !errors.Is(err, pnerr.ErrCanceled) {
		t.Fatalf("ingest err = %v, want ErrCanceled", err)
	}
	// A fresh ingest on the same retriever must succeed.
	if err := r.IndexTables(context.Background(), kramabench.SyntheticSlice(50)); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 50 {
		t.Fatalf("Len = %d after recovery ingest", r.Len())
	}
}

// TestSearchAfterClose: a closed retriever rejects queries with the typed
// ErrClosed rather than touching released backends.
func TestSearchAfterClose(t *testing.T) {
	r := New(WithShards(2))
	if err := r.IndexTables(context.Background(), kramabench.SyntheticSlice(10)); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Search(context.Background(), "anything", 3); !errors.Is(err, pnerr.ErrClosed) {
		t.Fatalf("Search after Close = %v, want ErrClosed", err)
	}
	if err := r.IndexTables(context.Background(), kramabench.SyntheticSlice(5)); !errors.Is(err, pnerr.ErrClosed) {
		t.Fatalf("Index after Close = %v, want ErrClosed", err)
	}
	if err := r.Close(); !errors.Is(err, pnerr.ErrClosed) {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
}
