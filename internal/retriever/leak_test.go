package retriever

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"pneuma/internal/docs"
	"pneuma/internal/leakcheck"
	"pneuma/internal/pnerr"
)

// Lifecycle leak coverage: every goroutine the retriever starts — the
// group-commit flusher, embedding workers, shard writers, search fan-out
// — must be gone once Close returns, including when Close races live
// readers and writers and when an ingest is abandoned mid-stream.

// TestDiskFlusherCloseNoLeak pins the group-commit flusher's lifecycle:
// with a sync policy configured the flusher goroutine runs for the
// retriever's whole life, and Close must stop it (after its final
// durability sweep) — the leak guard proves it exited, a reopen proves
// the sweep made every acknowledged record durable.
func TestDiskFlusherCloseNoLeak(t *testing.T) {
	defer leakcheck.Check(t)()
	dir := t.TempDir()
	r, err := Open(WithShards(4), WithBackend(Disk), WithDir(dir),
		WithSyncInterval(time.Hour)) // interval never fires: only Close's sweep syncs
	if err != nil {
		t.Fatal(err)
	}
	ds := make([]docs.Document, 40)
	for i := range ds {
		ds[i] = churnDoc(i)
	}
	if err := r.IndexDocuments(context.Background(), ds); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(WithShards(4), WithBackend(Disk), WithDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != len(ds) {
		t.Fatalf("reopen Len = %d, want %d", re.Len(), len(ds))
	}
}

// TestDiskConcurrentCloseUnderLoad closes a disk-backed retriever (group
// commit active) while reader and writer goroutines are still hammering
// it. Close must wait for every in-flight call to drain, every later
// call must fail with the typed ErrClosed — never a crash on a released
// backend — and no goroutine may outlive the retriever.
func TestDiskConcurrentCloseUnderLoad(t *testing.T) {
	defer leakcheck.Check(t)()
	r, err := Open(WithShards(4), WithBackend(Disk), WithDir(t.TempDir()),
		WithSyncBytes(1<<12), WithCompactionRatio(-1))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	seed := make([]docs.Document, 60)
	for i := range seed {
		seed[i] = churnDoc(i)
	}
	if err := r.IndexDocuments(ctx, seed); err != nil {
		t.Fatal(err)
	}

	// okOrClosed accepts the two legal outcomes for a call racing Close.
	okOrClosed := func(who string, err error) {
		if err != nil && !errors.Is(err, pnerr.ErrClosed) {
			t.Errorf("%s: %v", who, err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; ; i++ {
				_, err := r.Search(ctx, churnQueries[rng.Intn(len(churnQueries))], 5)
				if errors.Is(err, pnerr.ErrClosed) {
					return
				}
				okOrClosed(fmt.Sprintf("reader %d", g), err)
				r.Document(fmt.Sprintf("doc-%05d", rng.Intn(100)))
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := len(seed); ; n++ {
			err := r.IndexDocuments(ctx, []docs.Document{churnDoc(n)})
			if errors.Is(err, pnerr.ErrClosed) {
				return
			}
			okOrClosed("writer", err)
			if n%3 == 0 {
				r.DeleteDocuments([]string{churnDoc(n - 2).ID})
			}
		}
	}()

	time.Sleep(20 * time.Millisecond) // let the load reach steady state
	if err := r.Close(); err != nil {
		t.Fatalf("Close under load: %v", err)
	}
	wg.Wait()
	if _, err := r.Search(ctx, "anything", 3); !errors.Is(err, pnerr.ErrClosed) {
		t.Fatalf("Search after Close = %v, want ErrClosed", err)
	}
}

// TestIndexDocumentsCanceledMidIngest cancels a bulk ingest after the
// first batches have already landed (not before it starts, which
// cancel_test.go covers). The call must return the typed ErrCanceled,
// the embedding workers and shard writers must all exit, the
// group-commit flusher must keep running for the surviving retriever,
// and everything indexed before the cut must still be durable and
// searchable after a clean Close and reopen.
func TestIndexDocumentsCanceledMidIngest(t *testing.T) {
	defer leakcheck.Check(t)()
	dir := t.TempDir()
	r, err := Open(WithShards(4), WithBackend(Disk), WithDir(dir),
		WithSyncBytes(1<<12), WithCompactionRatio(-1))
	if err != nil {
		t.Fatal(err)
	}
	big := make([]docs.Document, 4096)
	for i := range big {
		big[i] = churnDoc(i)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Fire once the ingest is visibly under way, so the cancellation
		// lands between batches rather than before the first one.
		for r.Len() == 0 {
			time.Sleep(100 * time.Microsecond)
		}
		cancel()
	}()
	err = r.IndexDocuments(ctx, big)
	if err == nil {
		t.Skip("ingest outran the mid-stream cancel; nothing to assert")
	}
	if !errors.Is(err, pnerr.ErrCanceled) {
		t.Fatalf("ingest err = %v, want ErrCanceled", err)
	}
	got := r.Len()
	if got == 0 || got >= len(big) {
		t.Fatalf("Len = %d after mid-ingest cancel, want partial (0, %d)", got, len(big))
	}

	// The retriever survives the abandoned ingest: later writes work and
	// the partial state is durable across Close/reopen.
	if err := r.IndexDocuments(context.Background(), []docs.Document{churnDoc(len(big))}); err != nil {
		t.Fatal(err)
	}
	want := r.Len()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(WithShards(4), WithBackend(Disk), WithDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != want {
		t.Fatalf("reopen Len = %d, want %d", re.Len(), want)
	}
	if res, err := re.Search(context.Background(), "river nitrate readings", 5); err != nil || len(res) == 0 {
		t.Fatalf("post-reopen Search = %v, %v", res, err)
	}
}
