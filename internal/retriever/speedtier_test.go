package retriever

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pneuma/internal/docs"
)

// speedTierParity runs the storage-mode parity matrix under extra options:
// for each shard count, results from a snapshot open (ReadFile), a
// snapshot open (mmap), a full segment replay and a memory-backed build of
// the same corpus must be identical.
func speedTierParity(t *testing.T, extra ...Option) {
	t.Helper()
	n := 120
	if !testing.Short() {
		n = 400
	}
	for _, shards := range []int{1, 4, 8} {
		dir := t.TempDir()
		tables := buildDiskIndex(t, dir, n, shards, extra...)

		mem := New(append([]Option{WithShards(shards)}, extra...)...)
		if err := mem.IndexTables(context.Background(), tables); err != nil {
			t.Fatal(err)
		}

		open := func(name string, opts ...Option) map[string][]docs.Document {
			all := append([]Option{WithBackend(Disk), WithDir(dir)}, extra...)
			all = append(all, opts...)
			r, err := Open(all...)
			if err != nil {
				t.Fatalf("%d shards %s open: %v", shards, name, err)
			}
			defer r.Close()
			res := make(map[string][]docs.Document)
			for _, q := range parityQueries {
				// Deep-copy before Close: mmap-backed results alias the
				// snapshot mapping, which Close releases (the documented
				// lifetime caveat — retaining them would fault).
				ds := mustSearch(t, r, q, 10)
				cp := make([]docs.Document, len(ds))
				for i, d := range ds {
					d.ID = strings.Clone(d.ID)
					d.Title = strings.Clone(d.Title)
					d.Content = strings.Clone(d.Content)
					d.Source = strings.Clone(d.Source)
					cp[i] = d
				}
				res[q] = cp
			}
			return res
		}

		snapRes := open("snap-readfile")
		mmapRes := open("snap-mmap", WithMmap(true))
		for _, f := range shardFiles(t, dir, ".snap") {
			os.Remove(f)
		}
		replayRes := open("replay", WithSnapshotOnFlush(false))

		for _, q := range parityQueries {
			assertSameResults(t, fmt.Sprintf("%d shards mmap-vs-readfile %q", shards, q), mmapRes[q], snapRes[q])
			assertSameResults(t, fmt.Sprintf("%d shards replay-vs-readfile %q", shards, q), replayRes[q], snapRes[q])
			assertSameResults(t, fmt.Sprintf("%d shards memory-vs-readfile %q", shards, q), mustSearch(t, mem, q, 10), snapRes[q])
		}
		mem.Close()
	}
}

// TestMmapParity: mapping the snapshot instead of reading it must not
// change a single result, at any shard count, against either the replay
// or the memory baseline.
func TestMmapParity(t *testing.T) { speedTierParity(t, WithMmap(true)) }

// TestQuantizedParity: the int8 speed tier is deterministic across
// storage modes — quantized arenas restored from a snapshot (ReadFile or
// mmap), rebuilt by replay, or built in memory all answer identically.
func TestQuantizedParity(t *testing.T) { speedTierParity(t, WithQuantize(true)) }

// TestQuantizedMmapParity: both knobs together — zero-copy int8 arenas
// aliasing the mapping must score exactly like heap-allocated ones.
func TestQuantizedMmapParity(t *testing.T) {
	speedTierParity(t, WithQuantize(true), WithMmap(true))
}

// TestTornSnapshotMmapFallsBackToReplay is the mmap row of the corruption
// matrix: a torn snapshot opened with WithMmap must fail the checksum
// exactly like the ReadFile path, fall back to segment replay, and
// rewrite a healthy snapshot — never serve from a half-written mapping.
func TestTornSnapshotMmapFallsBackToReplay(t *testing.T) {
	dir := t.TempDir()
	tables := buildDiskIndex(t, dir, 24, 2, WithQuantize(true))

	snaps := shardFiles(t, dir, ".snap")
	raw, err := os.ReadFile(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snaps[0], raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(WithBackend(Disk), WithDir(dir), WithMmap(true), WithQuantize(true))
	if err != nil {
		t.Fatalf("mmap open with torn snapshot: %v", err)
	}
	defer re.Close()
	if re.Len() != len(tables) {
		t.Fatalf("Len = %d, want %d", re.Len(), len(tables))
	}
	healed, err := os.ReadFile(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(healed) == len(raw)/2 {
		t.Fatal("torn snapshot was not rewritten on open")
	}
}

// TestGroupCommitBatchesFsyncs is the group-commit win: many writers,
// each record individually durable within the latency bound, must share
// fsyncs instead of paying one each. The old per-record WithSyncEvery(1)
// behavior issued >= one fsync per record; the batched flusher must come
// in well under that on a bulk ingest.
func TestGroupCommitBatchesFsyncs(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(WithShards(4), WithBackend(Disk), WithDir(dir), WithSyncEvery(1))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	tables := corpusSlice(200)
	if err := r.IndexTables(context.Background(), tables); err != nil {
		t.Fatal(err)
	}
	waitSynced(t, r)
	syncs := r.Fsyncs()
	if syncs == 0 {
		t.Fatal("no fsyncs issued despite an active sync policy")
	}
	if syncs >= uint64(len(tables)) {
		t.Fatalf("%d fsyncs for %d records: group commit is not batching", syncs, len(tables))
	}
	t.Logf("%d records durable with %d fsyncs", len(tables), syncs)
}

// BenchmarkGroupCommitIngest measures a multi-writer durable ingest under
// the group-commit flusher and reports fsyncs per record alongside the
// usual time/op. The legacy per-record WithSyncEvery(1) contract costs
// exactly 1.0 fsyncs/record by construction; the batched flusher holds
// the same durability bound (every acknowledged record synced within the
// latency window) at a fraction of that — the reported metric is the
// group-commit win.
func BenchmarkGroupCommitIngest(b *testing.B) {
	tables := corpusSlice(100)
	var syncs, records uint64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		b.StartTimer()
		r, err := Open(WithShards(4), WithBackend(Disk), WithDir(dir), WithSyncEvery(1))
		if err != nil {
			b.Fatal(err)
		}
		if err := r.IndexTables(context.Background(), tables); err != nil {
			b.Fatal(err)
		}
		if err := r.Flush(); err != nil {
			b.Fatal(err)
		}
		syncs += r.Fsyncs()
		records += uint64(len(tables))
		r.Close()
	}
	b.ReportMetric(float64(syncs)/float64(records), "fsyncs/record")
}

// TestSyncBytesTrigger: a byte-volume threshold must activate the flusher
// and drain pending records without any Flush call.
func TestSyncBytesTrigger(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(WithShards(2), WithBackend(Disk), WithDir(dir), WithSyncBytes(1<<16))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.IndexTables(context.Background(), corpusSlice(40)); err != nil {
		t.Fatal(err)
	}
	waitSynced(t, r)
	if r.Fsyncs() == 0 {
		t.Fatal("WithSyncBytes issued no fsyncs")
	}
}

// TestSyncIntervalDurability: with only a latency bound configured, an
// acknowledged write becomes durable without Flush — the crash-copy
// reopen sees it once the flusher has drained.
func TestSyncIntervalDurability(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(WithShards(1), WithBackend(Disk), WithDir(dir), WithSyncInterval(DefaultSyncInterval))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	d := docs.Document{ID: "doc:gc", Kind: docs.KindKnowledge, Title: "gc",
		Content: "group commit latency bound durability probe"}
	if err := r.IndexDocument(context.Background(), d); err != nil {
		t.Fatal(err)
	}
	waitSynced(t, r)

	crash := t.TempDir()
	for _, name := range []string{manifestName, "shard-0000.seg"} {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(crash, name), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	re, err := Open(WithBackend(Disk), WithDir(crash))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, ok := re.Document("doc:gc"); !ok {
		t.Fatal("latency-bound write not durable in crash copy")
	}
}
