//go:build unix

package retriever

import (
	"os"
	"syscall"
)

// mmapSupported reports whether this platform can map snapshot files.
const mmapSupported = true

// mmapFile maps the whole file read-only and shared. The returned slice
// aliases the page cache: co-located processes mapping the same snapshot
// share physical pages. On Linux the mapping is populated up front (see
// mapPopulate); elsewhere pages fault in on first touch. An empty file
// maps to nil (mmap of length 0 is an error on Linux).
func mmapFile(f *os.File) ([]byte, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if fi.Size() == 0 {
		return nil, nil
	}
	return syscall.Mmap(int(f.Fd()), 0, int(fi.Size()), syscall.PROT_READ, syscall.MAP_SHARED|mapPopulate)
}

// munmapFile releases a mapping returned by mmapFile; nil is a no-op.
func munmapFile(b []byte) error {
	if b == nil {
		return nil
	}
	return syscall.Munmap(b)
}
