//go:build unix && !linux

package retriever

// mapPopulate is Linux-only; elsewhere pages fault in on first touch
// (the CRC pass at open touches them all immediately anyway).
const mapPopulate = 0
