package retriever

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"pneuma/internal/docs"
	"pneuma/internal/kramabench"
	"pneuma/internal/table"
)

// corpusSlice returns the synthetic corpus as a slice in map-iteration
// (i.e. effectively random) order.
func corpusSlice(n int) []*table.Table {
	corpus := kramabench.Synthetic(n)
	out := make([]*table.Table, 0, len(corpus))
	for _, t := range corpus {
		out = append(out, t)
	}
	return out
}

// searchKey flattens a result list into a comparable string of IDs and
// scores.
func searchKey(ds []docs.Document) string {
	s := ""
	for _, d := range ds {
		s += fmt.Sprintf("%s:%.12f;", d.ID, d.Score)
	}
	return s
}

var determinismQueries = []string{
	"freight container transit", "turbine output capacity factor",
	"warehouse stock reorder point", "rainfall station readings",
	"portfolio yield maturity", "clinic admission wait",
	"Malta region records", "vessel gross tonnage",
}

// TestParallelIngestDeterminism asserts the sharded index produces
// identical search results across repeated parallel bulk ingests of the
// same corpus, including ingests of permuted input and a fully sequential
// one-table-at-a-time build — worker scheduling, input order and ingest
// path must not leak into results.
func TestParallelIngestDeterminism(t *testing.T) {
	tables := corpusSlice(120)

	build := func(ingest func(r *Retriever)) *Retriever {
		r := New(WithShards(4), WithWorkers(4))
		ingest(r)
		return r
	}
	bulk := build(func(r *Retriever) {
		if err := r.IndexTables(context.Background(), tables); err != nil {
			t.Fatal(err)
		}
	})

	perm := make([]*table.Table, len(tables))
	copy(perm, tables)
	rand.New(rand.NewSource(1)).Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	permuted := build(func(r *Retriever) {
		if err := r.IndexTables(context.Background(), perm); err != nil {
			t.Fatal(err)
		}
	})

	// Sequential ingest in sorted-document order must match too: bulk
	// ingest sorts internally, so per-shard insertion order is identical.
	sortedDocs := make([]docs.Document, len(tables))
	for i, tb := range tables {
		sortedDocs[i] = docs.TableDocument(tb)
	}
	// IndexDocuments sorts by ID; replicate for the one-at-a-time path.
	sort.Slice(sortedDocs, func(i, j int) bool { return sortedDocs[i].ID < sortedDocs[j].ID })
	incremental := build(func(r *Retriever) {
		for _, d := range sortedDocs {
			if err := r.IndexDocument(context.Background(), d); err != nil {
				t.Fatal(err)
			}
		}
	})

	for _, q := range determinismQueries {
		want, err := bulk.Search(context.Background(), q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) == 0 {
			t.Fatalf("query %q returned nothing", q)
		}
		for name, r := range map[string]*Retriever{"permuted": permuted, "incremental": incremental} {
			got, err := r.Search(context.Background(), q, 10)
			if err != nil {
				t.Fatal(err)
			}
			if searchKey(got) != searchKey(want) {
				t.Errorf("%s ingest diverged on %q:\n got %s\nwant %s", name, q, searchKey(got), searchKey(want))
			}
		}
	}
}

// TestRepeatedBulkIngestIdentical runs the same parallel bulk ingest
// several times and asserts bit-identical result sets every time.
func TestRepeatedBulkIngestIdentical(t *testing.T) {
	tables := corpusSlice(80)
	var want map[string]string
	for round := 0; round < 3; round++ {
		r := New(WithShards(4), WithWorkers(8))
		if err := r.IndexTables(context.Background(), tables); err != nil {
			t.Fatal(err)
		}
		got := make(map[string]string)
		for _, q := range determinismQueries {
			ds, err := r.Search(context.Background(), q, 10)
			if err != nil {
				t.Fatal(err)
			}
			got[q] = searchKey(ds)
		}
		if round == 0 {
			want = got
			continue
		}
		for q, key := range got {
			if key != want[q] {
				t.Errorf("round %d diverged on %q:\n got %s\nwant %s", round, q, key, want[q])
			}
		}
	}
}

// TestConcurrentSearchAndIngest hammers the sharded retriever with
// concurrent readers and writers; run under -race this is the data-race
// proof for the shard locking scheme.
func TestConcurrentSearchAndIngest(t *testing.T) {
	tables := corpusSlice(60)
	r := New(WithShards(4))
	if err := r.IndexTables(context.Background(), tables[:20]); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 64)

	// Writers: one bulk ingest, plus incremental single-table writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := r.IndexTables(context.Background(), tables[20:40]); err != nil {
			errCh <- err
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 40 + w; i < 60; i += 4 {
				if err := r.IndexTable(context.Background(), tables[i]); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	// Readers: concurrent searches and metadata reads while writers run.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				q := determinismQueries[(g+i)%len(determinismQueries)]
				if _, err := r.Search(context.Background(), q, 5); err != nil {
					errCh <- err
					return
				}
				r.Len()
				r.Version()
			}
		}(g)
	}
	// Deleter: remove and re-add a document under load.
	wg.Add(1)
	go func() {
		defer wg.Done()
		d := docs.TableDocument(tables[0])
		for i := 0; i < 10; i++ {
			r.Delete(d.ID)
			if err := r.IndexDocument(context.Background(), d); err != nil {
				errCh <- err
				return
			}
		}
	}()

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if got := r.Len(); got != 60 {
		t.Fatalf("after concurrent ingest Len = %d, want 60", got)
	}
	for _, q := range determinismQueries {
		ds, err := r.Search(context.Background(), q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(ds) == 0 {
			t.Fatalf("query %q returned nothing after concurrent ingest", q)
		}
	}
}

// TestVersionCounting asserts every mutation bumps the version and reads
// do not.
func TestVersionCounting(t *testing.T) {
	r := New(WithShards(2))
	v0 := r.Version()
	if err := r.IndexDocument(context.Background(), docs.Document{ID: "a", Content: "alpha doc"}); err != nil {
		t.Fatal(err)
	}
	if r.Version() == v0 {
		t.Fatal("IndexDocument did not bump version")
	}
	v1 := r.Version()
	if _, err := r.Search(context.Background(), "alpha", 1); err != nil {
		t.Fatal(err)
	}
	r.Len()
	r.Document("a")
	if r.Version() != v1 {
		t.Fatal("reads must not bump version")
	}
	if !r.Delete("a") {
		t.Fatal("delete failed")
	}
	if r.Version() == v1 {
		t.Fatal("Delete did not bump version")
	}
}

// TestShardPartitioning asserts documents spread across shards and stay
// routable.
func TestShardPartitioning(t *testing.T) {
	tables := corpusSlice(64)
	r := New(WithShards(4))
	if err := r.IndexTables(context.Background(), tables); err != nil {
		t.Fatal(err)
	}
	if r.NumShards() != 4 {
		t.Fatalf("NumShards = %d", r.NumShards())
	}
	occupied := 0
	for _, s := range r.shards {
		if s.be.Len() > 0 {
			occupied++
		}
	}
	if occupied < 2 {
		t.Fatalf("hash partitioning degenerate: only %d of 4 shards occupied", occupied)
	}
	for _, tb := range tables {
		if _, ok := r.Document("table:" + tb.Schema.Name); !ok {
			t.Fatalf("document for %s not routable", tb.Schema.Name)
		}
	}
	if r.Len() != 64 {
		t.Fatalf("Len = %d, want 64", r.Len())
	}
}
