package retriever

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"pneuma/internal/docs"
	"pneuma/internal/embed"
	"pneuma/internal/pnerr"
	"pneuma/internal/table"
	"pneuma/internal/value"
)

// buildDiskIndex ingests tables into a fresh disk index at dir and closes
// it (which flushes and writes snapshots), returning the table set.
func buildDiskIndex(t *testing.T, dir string, n, shards int, opts ...Option) []*table.Table {
	t.Helper()
	tables := corpusSlice(n)
	all := append([]Option{WithShards(shards), WithBackend(Disk), WithDir(dir)}, opts...)
	r, err := Open(all...)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.IndexTables(context.Background(), tables); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	return tables
}

// shardFiles returns the shard files under dir with the given extension.
func shardFiles(t *testing.T, dir, ext string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "shard-*"+ext))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

// totalSize sums the sizes of the given files.
func totalSize(t *testing.T, files []string) int64 {
	t.Helper()
	var n int64
	for _, f := range files {
		fi, err := os.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		n += fi.Size()
	}
	return n
}

// TestSnapshotReplayParity is the determinism contract for the snapshot
// fast path: an index reopened from snapshots must answer every query
// bit-identically to one rebuilt by full segment replay and to a
// memory-backed index over the same corpus, at several shard counts.
func TestSnapshotReplayParity(t *testing.T) {
	n := 120
	if !testing.Short() {
		n = 1000
	}
	for _, shards := range []int{1, 4, 8} {
		dir := t.TempDir()
		tables := buildDiskIndex(t, dir, n, shards)

		mem := New(WithShards(shards))
		if err := mem.IndexTables(context.Background(), tables); err != nil {
			t.Fatal(err)
		}

		// Snapshot path: .snap files exist from Close.
		if got := len(shardFiles(t, dir, ".snap")); got != shards {
			t.Fatalf("%d shards: %d snapshot files, want %d", shards, got, shards)
		}
		snap, err := Open(WithBackend(Disk), WithDir(dir))
		if err != nil {
			t.Fatal(err)
		}
		snapRes := make(map[string][]docs.Document)
		for _, q := range parityQueries {
			snapRes[q] = mustSearch(t, snap, q, 10)
		}
		snap.Close()

		// Replay path: delete the snapshots, disable rewriting.
		for _, f := range shardFiles(t, dir, ".snap") {
			os.Remove(f)
		}
		replay, err := Open(WithBackend(Disk), WithDir(dir), WithSnapshotOnFlush(false))
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range parityQueries {
			want := mustSearch(t, replay, q, 10)
			assertSameResults(t, fmt.Sprintf("%d shards snapshot-vs-replay %q", shards, q), snapRes[q], want)
			memRes := mustSearch(t, mem, q, 10)
			if len(memRes) != len(want) {
				t.Fatalf("%d shards memory-vs-disk %q: %d vs %d results", shards, q, len(memRes), len(want))
			}
			for i := range want {
				if memRes[i].ID != want[i].ID || math.Abs(memRes[i].Score-want[i].Score) > 1e-9 {
					t.Fatalf("%d shards memory-vs-disk %q rank %d: (%s %v) vs (%s %v)",
						shards, q, i, memRes[i].ID, memRes[i].Score, want[i].ID, want[i].Score)
				}
			}
		}
		replay.Close()
	}
}

// TestSnapshotSkipsReplayAboveWatermark verifies the incremental path:
// records appended after the last snapshot are replayed on top of the
// bulk-loaded state.
func TestSnapshotSkipsReplayAboveWatermark(t *testing.T) {
	dir := t.TempDir()
	tables := buildDiskIndex(t, dir, 32, 2)

	// Reopen (snapshot load) and append more documents, then close with
	// snapshots disabled so the tail stays above the watermark.
	r, err := Open(WithBackend(Disk), WithDir(dir), WithSnapshotOnFlush(false))
	if err != nil {
		t.Fatal(err)
	}
	extra := docs.Document{ID: "doc:extra", Kind: docs.KindKnowledge, Title: "extra",
		Content: "freshly appended record beyond the snapshot watermark"}
	if err := r.IndexDocument(context.Background(), extra); err != nil {
		t.Fatal(err)
	}
	if !r.Delete("table:" + tables[0].Schema.Name) {
		t.Fatal("delete failed")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(WithBackend(Disk), WithDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != len(tables) {
		t.Fatalf("Len = %d, want %d (one add, one delete above watermark)", re.Len(), len(tables))
	}
	if _, ok := re.Document("doc:extra"); !ok {
		t.Fatal("appended document lost")
	}
	if _, ok := re.Document("table:" + tables[0].Schema.Name); ok {
		t.Fatal("deleted document resurrected")
	}
}

// TestTornSnapshotFallsBackToReplay truncates a snapshot mid-file: the
// open must detect it (checksum), fall back to full segment replay, and
// rewrite a healthy snapshot.
func TestTornSnapshotFallsBackToReplay(t *testing.T) {
	dir := t.TempDir()
	tables := buildDiskIndex(t, dir, 24, 2)

	snaps := shardFiles(t, dir, ".snap")
	raw, err := os.ReadFile(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snaps[0], raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	before, err := os.Stat(snaps[0])
	if err != nil {
		t.Fatal(err)
	}

	re, err := Open(WithBackend(Disk), WithDir(dir))
	if err != nil {
		t.Fatalf("open with torn snapshot: %v", err)
	}
	defer re.Close()
	if re.Len() != len(tables) {
		t.Fatalf("Len = %d, want %d", re.Len(), len(tables))
	}
	// The unusable snapshot was rewritten during open.
	after, err := os.Stat(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() == before.Size() {
		t.Fatal("torn snapshot was not rewritten on open")
	}
}

// TestSnapshotVersionMismatchRebuilds patches the snapshot's version word
// (fixing the checksum so only the version check can reject it): the open
// must rebuild from the segment and rewrite the snapshot at the current
// version.
func TestSnapshotVersionMismatchRebuilds(t *testing.T) {
	dir := t.TempDir()
	tables := buildDiskIndex(t, dir, 24, 2)

	snaps := shardFiles(t, dir, ".snap")
	for _, snap := range snaps {
		raw, err := os.ReadFile(snap)
		if err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint32(raw[4:8], 99)
		body := raw[:len(raw)-4]
		binary.LittleEndian.PutUint32(raw[len(raw)-4:], crc32.Checksum(body, snapCRCTable))
		if err := os.WriteFile(snap, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	re, err := Open(WithBackend(Disk), WithDir(dir))
	if err != nil {
		t.Fatalf("open with version-mismatched snapshot: %v", err)
	}
	re.Close()
	if ln := lenOf(t, dir, len(tables)); ln != len(tables) {
		t.Fatalf("Len = %d, want %d", ln, len(tables))
	}
	for _, snap := range snaps {
		raw, err := os.ReadFile(snap)
		if err != nil {
			t.Fatal(err)
		}
		if v := binary.LittleEndian.Uint32(raw[4:8]); v != snapVersion {
			t.Fatalf("snapshot %s still at version %d after repair", snap, v)
		}
	}
}

// lenOf reopens the index and returns its Len, asserting a clean open.
func lenOf(t *testing.T, dir string, want int) int {
	t.Helper()
	re, err := Open(WithBackend(Disk), WithDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	return re.Len()
}

// TestSegmentCRCMismatchTruncates flips one byte in the middle of a
// segment (with snapshots removed, forcing a replay): the open must keep
// every record before the damage, drop everything after it, and truncate
// the file to the clean prefix.
func TestSegmentCRCMismatchTruncates(t *testing.T) {
	dir := t.TempDir()
	tables := buildDiskIndex(t, dir, 24, 1)

	for _, f := range shardFiles(t, dir, ".snap") {
		os.Remove(f)
	}
	seg := shardFiles(t, dir, ".seg")[0]
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	mid := len(raw) / 2
	raw[mid] ^= 0xff
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(WithBackend(Disk), WithDir(dir))
	if err != nil {
		t.Fatalf("open with mid-segment corruption: %v", err)
	}
	got := re.Len()
	re.Close()
	if got <= 0 || got >= len(tables) {
		t.Fatalf("Len after mid-segment corruption = %d, want in (0, %d)", got, len(tables))
	}
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() > int64(mid) {
		t.Fatalf("segment not truncated at corruption: %d bytes, damage at %d", fi.Size(), mid)
	}
}

// TestCompactionShrinksSegment deletes half the corpus and flushes: the
// dead fraction (tombstones + dead adds) crosses the default threshold,
// so the segment must be rewritten ≥40%% smaller, and the surviving index
// must match a fresh index over the survivors exactly.
func TestCompactionShrinksSegment(t *testing.T) {
	dir := t.TempDir()
	tables := corpusSlice(64)
	r, err := Open(WithShards(2), WithBackend(Disk), WithDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.IndexTables(context.Background(), tables); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	before := totalSize(t, shardFiles(t, dir, ".seg"))

	for _, tb := range tables[:32] {
		if !r.Delete("table:" + tb.Schema.Name) {
			t.Fatalf("delete %s failed", tb.Schema.Name)
		}
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	after := totalSize(t, shardFiles(t, dir, ".seg"))
	if after > before*6/10 {
		t.Fatalf("segment after compacting 50%%-deleted corpus: %d -> %d bytes (want ≥40%% shrink)", before, after)
	}
	if r.Len() != 32 {
		t.Fatalf("Len = %d, want 32", r.Len())
	}

	// Post-compaction state must equal a fresh index over the survivors
	// (graph rebuilt without tombstones), and survive a reopen.
	fresh := New(WithShards(2))
	if err := fresh.IndexTables(context.Background(), tables[32:]); err != nil {
		t.Fatal(err)
	}
	for _, q := range parityQueries {
		assertSameResults(t, "compacted "+q, mustSearch(t, fresh, q, 10), mustSearch(t, r, q, 10))
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(WithBackend(Disk), WithDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for _, q := range parityQueries {
		assertSameResults(t, "compacted+reopened "+q, mustSearch(t, fresh, q, 10), mustSearch(t, re, q, 10))
	}
}

// TestCompactionDisabled verifies a negative WithCompactionRatio leaves
// the segment append-only even when most records are dead.
func TestCompactionDisabled(t *testing.T) {
	dir := t.TempDir()
	tables := corpusSlice(16)
	r, err := Open(WithShards(1), WithBackend(Disk), WithDir(dir), WithCompactionRatio(-1))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.IndexTables(context.Background(), tables); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	before := totalSize(t, shardFiles(t, dir, ".seg"))
	for _, tb := range tables {
		r.Delete("table:" + tb.Schema.Name)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	after := totalSize(t, shardFiles(t, dir, ".seg"))
	if after < before {
		t.Fatalf("segment shrank with compaction disabled: %d -> %d bytes", before, after)
	}
}

// TestDirLock verifies the advisory index-directory lock: a second open
// fails fast with the typed ErrIndexLocked, the lock clears on Close, and
// a stale lock left by a dead process is broken automatically.
func TestDirLock(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(WithShards(1), WithBackend(Disk), WithDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(WithBackend(Disk), WithDir(dir)); !errors.Is(err, pnerr.ErrIndexLocked) {
		t.Fatalf("second open: err = %v, want ErrIndexLocked", err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, lockName)); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("lock file not removed on Close: %v", err)
	}

	// A lock held by a dead process (an absurd PID) is stale and broken.
	if err := os.WriteFile(filepath.Join(dir, lockName), []byte("999999999\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(WithBackend(Disk), WithDir(dir))
	if err != nil {
		t.Fatalf("open over stale lock: %v", err)
	}
	re.Close()
}

// TestSyncEveryDurability indexes with a sync policy and verifies the
// records become durable in the segment file without any Flush — by
// copying the live index directory (minus the lock) aside and opening the
// copy, simulating a crash of the original process. With group commit the
// fsync is asynchronous but latency-bounded, so the test polls until the
// flusher has drained the pending batch.
// waitSynced blocks until no disk shard has records pending fsync (the
// group-commit flusher has caught up), failing the test after 5s.
func waitSynced(t *testing.T, r *Retriever) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		pending := 0
		for _, s := range r.shards {
			s.mu.Lock()
			if db, ok := s.be.(*diskBackend); ok {
				pending += db.pendingRecs
			}
			s.mu.Unlock()
		}
		if pending == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("group-commit flusher did not drain: %d records still pending", pending)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSyncEveryDurability(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(WithShards(1), WithBackend(Disk), WithDir(dir), WithSyncEvery(1))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	tables := corpusSlice(12)
	if err := r.IndexTables(context.Background(), tables); err != nil {
		t.Fatal(err)
	}
	if !r.Delete("table:" + tables[0].Schema.Name) {
		t.Fatal("delete failed")
	}
	// No Flush: the group-commit flusher must make every acknowledged
	// record durable within the latency bound. Poll (generously, for slow
	// CI) until the shard reports no pending records.
	waitSynced(t, r)
	crash := t.TempDir()
	for _, name := range []string{manifestName, "shard-0000.seg"} {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(crash, name), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	re, err := Open(WithBackend(Disk), WithDir(crash))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != len(tables)-1 {
		t.Fatalf("crash-copy Len = %d, want %d (all records incl. tombstone durable)", re.Len(), len(tables)-1)
	}
}

// TestTablePayloadFidelity is the round-trip regression for the binary
// codec: sub-second timestamps and NULL-looking string literals must
// survive flush/reopen byte-identically (the legacy canonical-string
// codec degraded both).
func TestTablePayloadFidelity(t *testing.T) {
	ts := time.Date(2026, 3, 14, 9, 26, 53, 589793238, time.UTC)
	tb := table.New(table.Schema{
		Name:        "fidelity_probe",
		Description: "codec round-trip probe",
		Columns: []table.Column{
			{Name: "stamp", Type: value.KindTime},
			{Name: "label", Type: value.KindString},
			{Name: "reading", Type: value.KindFloat},
			{Name: "count", Type: value.KindInt},
			{Name: "flag", Type: value.KindBool},
		},
	})
	rows := []table.Row{
		{value.Time(ts), value.String("null"), value.Float(3.141592653589793), value.Int(-42), value.Bool(true)},
		{value.Time(ts.Add(time.Nanosecond)), value.String("NA"), value.Float(math.Inf(1)), value.Int(1 << 60), value.Bool(false)},
		{value.Null(), value.String("2024-01-02"), value.Float(-0.0), value.Int(0), value.Null()},
	}
	for _, row := range rows {
		if err := tb.Append(row); err != nil {
			t.Fatal(err)
		}
	}

	dir := t.TempDir()
	r, err := Open(WithShards(1), WithBackend(Disk), WithDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.IndexTable(context.Background(), tb); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(WithBackend(Disk), WithDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	d, ok := re.Document("table:fidelity_probe")
	if !ok || d.Table == nil {
		t.Fatal("probe table missing after reopen")
	}
	got := d.Table.Rows
	if len(got) != len(rows) {
		t.Fatalf("%d rows, want %d", len(got), len(rows))
	}
	for i, row := range rows {
		for j, want := range row {
			g := got[i][j]
			if g.Kind() != want.Kind() {
				t.Fatalf("row %d col %d: kind %v, want %v", i, j, g.Kind(), want.Kind())
			}
			switch want.Kind() {
			case value.KindTime:
				if !g.TimeVal().Equal(want.TimeVal()) || g.TimeVal().Nanosecond() != want.TimeVal().Nanosecond() {
					t.Fatalf("row %d col %d: time %v, want %v", i, j, g.TimeVal(), want.TimeVal())
				}
			case value.KindFloat:
				if math.Float64bits(g.FloatVal()) != math.Float64bits(want.FloatVal()) {
					t.Fatalf("row %d col %d: float bits %x, want %x", i, j,
						math.Float64bits(g.FloatVal()), math.Float64bits(want.FloatVal()))
				}
			default:
				if g.String() != want.String() || g.StringVal() != want.StringVal() {
					t.Fatalf("row %d col %d: %q, want %q", i, j, g.String(), want.String())
				}
			}
		}
	}
}

// TestLegacyFormatMigration handcrafts a format-0 index (JSON-lines
// segments, a manifest without a format field) and opens it: the
// documents must survive, the segments must be rewritten in the binary
// format with snapshots, and the manifest must be stamped.
func TestLegacyFormatMigration(t *testing.T) {
	dir := t.TempDir()
	emb := embed.New()
	raw, err := json.Marshal(map[string]int{"shards": 1, "dim": emb.Dim()})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	seg, err := os.Create(filepath.Join(dir, "shard-0000.seg"))
	if err != nil {
		t.Fatal(err)
	}
	contents := map[string]string{
		"doc:alpha": "rainfall readings for the coastal stations",
		"doc:beta":  "portfolio yield and maturity ledger",
		"doc:gone":  "to be deleted before migration",
	}
	enc := json.NewEncoder(seg)
	for _, id := range []string{"doc:alpha", "doc:beta", "doc:gone"} {
		rec := legacyRecord{Op: "add", ID: id, Vec: emb.Embed(contents[id]),
			Doc: &legacyDoc{Kind: "knowledge", Title: id, Content: contents[id], Source: "test"}}
		if err := enc.Encode(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Encode(legacyRecord{Op: "del", ID: "doc:gone"}); err != nil {
		t.Fatal(err)
	}
	if err := seg.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(WithBackend(Disk), WithDir(dir))
	if err != nil {
		t.Fatalf("open legacy index: %v", err)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	if _, ok := r.Document("doc:gone"); ok {
		t.Fatal("legacy tombstone ignored")
	}
	hits := mustSearch(t, r, "rainfall readings coastal", 1)
	if len(hits) != 1 || hits[0].ID != "doc:alpha" {
		t.Fatalf("migrated search returned %v", hits)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// Manifest stamped, segment binary, snapshot present.
	mraw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	var m manifest
	if err := json.Unmarshal(mraw, &m); err != nil {
		t.Fatal(err)
	}
	if m.Format != segFormat {
		t.Fatalf("manifest format = %d, want %d", m.Format, segFormat)
	}
	head := make([]byte, 4)
	segf, err := os.Open(filepath.Join(dir, "shard-0000.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := segf.Read(head); err != nil {
		t.Fatal(err)
	}
	segf.Close()
	if string(head) != segMagic {
		t.Fatalf("migrated segment magic = %q, want %q", head, segMagic)
	}
	if got := len(shardFiles(t, dir, ".snap")); got != 1 {
		t.Fatalf("%d snapshots after migration, want 1", got)
	}
	// Second open takes the fast path and sees the same state.
	re, err := Open(WithBackend(Disk), WithDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 2 {
		t.Fatalf("reopened Len = %d, want 2", re.Len())
	}
}

// TestLegacyMigrationInterrupted simulates a crash mid-migration: the
// manifest still says format 0, but one shard was already rewritten to
// the binary format. Reopening must route the binary shard through the
// normal open path (sniffing its magic) instead of misreading it as an
// empty JSON log and destroying it.
func TestLegacyMigrationInterrupted(t *testing.T) {
	dir := t.TempDir()
	tables := buildDiskIndex(t, dir, 24, 2)
	// Rewind the manifest to the legacy (pre-format-field) shape while
	// both shards remain binary — exactly the state a crash between the
	// shard rewrites and the manifest stamp leaves behind.
	raw, err := json.Marshal(map[string]int{"shards": 2, "dim": embed.New().Dim()})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(WithBackend(Disk), WithDir(dir))
	if err != nil {
		t.Fatalf("open after interrupted migration: %v", err)
	}
	defer re.Close()
	if re.Len() != len(tables) {
		t.Fatalf("Len = %d, want %d (binary shards must survive the legacy path)", re.Len(), len(tables))
	}
}

// TestTornSegmentHeaderResets verifies a segment shorter than its header
// (crash between creation and first sync) opens cleanly as empty instead
// of failing every subsequent Open.
func TestTornSegmentHeaderResets(t *testing.T) {
	dir := t.TempDir()
	tables := buildDiskIndex(t, dir, 16, 2)
	seg := shardFiles(t, dir, ".seg")[0]
	if err := os.WriteFile(seg, []byte("pns"), 0o644); err != nil {
		t.Fatal(err)
	}
	os.Remove(shardFiles(t, dir, ".snap")[0])

	re, err := Open(WithBackend(Disk), WithDir(dir))
	if err != nil {
		t.Fatalf("open with torn segment header: %v", err)
	}
	defer re.Close()
	if re.Len() >= len(tables) || re.Len() == 0 {
		t.Fatalf("Len = %d, want the other shard's documents only (0 < n < %d)", re.Len(), len(tables))
	}
}

// TestDiskConcurrentAccess drives concurrent searches, deletes and
// flushes (including a compaction) against one disk-backed retriever —
// the race-smoke scenario for the disk backend.
func TestDiskConcurrentAccess(t *testing.T) {
	dir := t.TempDir()
	tables := corpusSlice(48)
	r, err := Open(WithShards(4), WithBackend(Disk), WithDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.IndexTables(context.Background(), tables); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				q := parityQueries[(g+i)%len(parityQueries)]
				if _, err := r.Search(ctx, q, 5); err != nil {
					t.Errorf("search: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, tb := range tables[:24] {
			r.Delete("table:" + tb.Schema.Name)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			if err := r.Flush(); err != nil {
				t.Errorf("flush: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(WithBackend(Disk), WithDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 24 {
		t.Fatalf("Len after concurrent deletes = %d, want 24", re.Len())
	}
}

// TestParallelShardOpenBeatsSequential pins the concurrent cold open
// (shards load in parallel goroutines, landed with the snapshot work):
// the fan-out wall clock must beat the sum of the per-shard open times,
// which is what a sequential open would have cost. The comparison only
// means something with real parallelism and non-trivial per-shard work,
// so it skips on single-CPU runners and sub-millisecond corpora.
func TestParallelShardOpenBeatsSequential(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs ≥2 CPUs for a parallel open to beat the sequential sum")
	}
	dir := t.TempDir()
	n := 120
	if !testing.Short() {
		n = 480
	}
	buildDiskIndex(t, dir, n, 4)
	re, err := Open(WithBackend(Disk), WithDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.openShardSum < 2*time.Millisecond {
		t.Skipf("per-shard opens too fast to compare meaningfully (sum %v)", re.openShardSum)
	}
	if re.openWall >= re.openShardSum {
		t.Fatalf("concurrent open took %v, sequential sum of shard opens is %v — fan-out paid nothing", re.openWall, re.openShardSum)
	}
}
