package retriever

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"pneuma/internal/bm25"
	"pneuma/internal/docs"
	"pneuma/internal/table"
	"pneuma/internal/value"
)

// Legacy (format-0) segment codec: the JSON-lines log written before the
// binary format existed. Kept read-only for migration — opening a legacy
// index replays its JSON log once, rewrites the segment in the binary
// format with a snapshot, and stamps the manifest, so the second open
// takes the fast path. The rewrite keeps only live records (a forced
// compaction): legacy tombstones and superseded adds do not survive
// migration, and cell values round-trip through the legacy canonical
// string encoding one last time.

// legacyRecord is one line of a legacy shard's JSON segment file.
type legacyRecord struct {
	Op  string     `json:"op"`
	ID  string     `json:"id"`
	Vec []float32  `json:"vec,omitempty"`
	Doc *legacyDoc `json:"doc,omitempty"`
}

// legacyDoc is the legacy durable form of docs.Document.
type legacyDoc struct {
	Kind    string            `json:"kind"`
	Title   string            `json:"title"`
	Content string            `json:"content"`
	Source  string            `json:"source"`
	Meta    map[string]string `json:"meta,omitempty"`
	Table   *legacyTable      `json:"table,omitempty"`
}

// legacyTable is the legacy durable table payload: schema metadata plus
// rows in canonical string encoding, decoded back through the declared
// column kinds.
type legacyTable struct {
	Name        string         `json:"name"`
	Description string         `json:"description,omitempty"`
	Columns     []legacyColumn `json:"columns"`
	Rows        [][]string     `json:"rows"`
}

// legacyColumn is one legacy durable schema column.
type legacyColumn struct {
	Name        string `json:"name"`
	Type        uint8  `json:"type"`
	Description string `json:"description,omitempty"`
	Unit        string `json:"unit,omitempty"`
}

// decodeLegacyDoc converts a legacy record back into a document.
func decodeLegacyDoc(id string, sd *legacyDoc) docs.Document {
	d := docs.Document{
		ID:      id,
		Kind:    docs.Kind(sd.Kind),
		Title:   sd.Title,
		Content: sd.Content,
		Source:  sd.Source,
		Meta:    sd.Meta,
	}
	if sd.Table != nil {
		schema := table.Schema{Name: sd.Table.Name, Description: sd.Table.Description}
		for _, c := range sd.Table.Columns {
			schema.Columns = append(schema.Columns, table.Column{
				Name: c.Name, Type: value.Kind(c.Type), Description: c.Description, Unit: c.Unit,
			})
		}
		t := table.New(schema)
		for _, rec := range sd.Table.Rows {
			row := make(table.Row, len(rec))
			for j, cell := range rec {
				coerced, ok := value.CoerceKind(value.Infer(cell), schema.Columns[j].Type)
				if !ok {
					coerced = value.Null()
				}
				row[j] = coerced
			}
			t.Rows = append(t.Rows, row)
		}
		d.Table = t
	}
	return d
}

// replayLegacySegment applies every whole JSON-lines record in f to mem.
// Torn or malformed tails end the replay silently, matching the legacy
// recovery behaviour.
func replayLegacySegment(f *os.File, mem *memoryBackend) error {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	r := bufio.NewReaderSize(f, 1<<20)
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		var rec legacyRecord
		if uerr := json.Unmarshal(line, &rec); uerr != nil {
			return nil
		}
		switch rec.Op {
		case "add":
			if rec.Doc == nil {
				return nil
			}
			if ierr := mem.Index(decodeLegacyDoc(rec.ID, rec.Doc), rec.Vec); ierr != nil {
				return ierr
			}
		case "del":
			mem.Delete(rec.ID)
		default:
			return nil
		}
	}
}

// openLegacyDiskBackend migrates a format-0 shard: the JSON log is
// replayed into memory, the segment is rewritten in the binary format
// (live records only, generation 1), the in-memory state is rebuilt to
// match a replay of the rewritten log, and a snapshot is written. The
// caller stamps the manifest once every shard has migrated — so a crash
// mid-migration can leave the manifest at format 0 with some shards
// already binary. Each shard is therefore sniffed for the binary magic
// first: an already-migrated shard takes the normal open path instead of
// being misread as an (empty-looking) JSON log and destroyed by the
// rewrite.
func openLegacyDiskBackend(path, snapPath string, dim int, seed int64, st *bm25.Stats, ef int, knobs diskKnobs) (*diskBackend, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	var magic [4]byte
	if _, err := f.ReadAt(magic[:], 0); err == nil && string(magic[:]) == segMagic {
		if err := f.Close(); err != nil {
			return nil, err
		}
		return openDiskBackend(path, snapPath, dim, seed, st, ef, knobs)
	}
	mem := newMemoryBackend(dim, seed, st, ef, knobs.quantize)
	if err := replayLegacySegment(f, mem); err != nil {
		f.Close()
		return nil, fmt.Errorf("retriever: legacy replay %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return nil, err
	}

	size, recs, err := rewriteSegment(mem, path, 1)
	if err != nil {
		return nil, fmt.Errorf("retriever: migrate %s: %w", path, err)
	}
	if err := mem.compact(); err != nil {
		return nil, err
	}
	nf, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := nf.Seek(size, io.SeekStart); err != nil {
		nf.Close()
		return nil, err
	}
	b := &diskBackend{
		memoryBackend: mem,
		path:          path,
		snapPath:      snapPath,
		f:             nf,
		w:             bufio.NewWriterSize(nf, 1<<20),
		knobs:         knobs,
		gen:           1,
		segSize:       size,
		flushed:       size,
		records:       recs,
	}
	// A pre-binary index never has a snapshot; write one now so the next
	// open is a bulk load. Honour the knob for callers that disabled it.
	if knobs.snapshot {
		if err := b.writeSnapshot(); err != nil {
			nf.Close()
			return nil, err
		}
	}
	return b, nil
}
