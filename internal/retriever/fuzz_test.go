package retriever

import (
	"errors"
	"testing"

	"pneuma/internal/docs"
	"pneuma/internal/table"
	"pneuma/internal/value"
	"pneuma/internal/wire"
)

// FuzzDecodeRecord is the segment-record codec's hostile-input contract:
// whatever payload bytes arrive (a torn tail, a bit-flipped frame, pure
// garbage), decodeRecord must never panic, never read past the payload,
// and reject anything malformed with the one typed error replay keys its
// truncation decision on. A successful decode must be internally
// consistent — a known op, a vector of exactly the shard's
// dimensionality for adds, and a document carrying the record's ID.
func FuzzDecodeRecord(f *testing.F) {
	// Seed the corpus with well-formed frames so the fuzzer starts from
	// the interesting part of the input space: a plain add, an add
	// carrying a full table payload, and a delete tombstone.
	plain := docs.Document{
		ID:      "doc-00001",
		Kind:    docs.KindKnowledge,
		Title:   "river nitrate",
		Content: "nitrate readings along the river basin",
		Source:  "sensor-7",
		Meta:    map[string]string{"unit": "mg/L", "year": "2024"},
	}
	tab := table.New(table.Schema{
		Name:        "rivers",
		Description: "water quality samples",
		Columns: []table.Column{
			{Name: "station", Type: value.KindString, Description: "site", Unit: ""},
			{Name: "nitrate", Type: value.KindFloat, Description: "reading", Unit: "mg/L"},
		},
	})
	tab.Rows = []table.Row{
		{value.String("st-1"), value.Float(2.5)},
		{value.String("st-2"), value.Null()},
	}
	tabled := docs.Document{
		ID:      "table:rivers",
		Kind:    docs.KindTable,
		Title:   "rivers",
		Content: "rivers water quality samples",
		Table:   tab,
	}
	var w wire.Writer
	for _, d := range []docs.Document{plain, tabled} {
		w.Reset()
		w.Byte(opAdd)
		w.String(d.ID)
		w.Float32s([]float32{0.1, 0.2, 0.3, 0.4})
		encodeDoc(&w, d)
		f.Add(append([]byte(nil), w.Bytes()...), uint16(4))
	}
	w.Reset()
	w.Byte(opDel)
	w.String("doc-00001")
	f.Add(append([]byte(nil), w.Bytes()...), uint16(4))
	f.Add([]byte{}, uint16(0))
	f.Add([]byte{opAdd}, uint16(8))
	f.Add([]byte{0xff, 0x03, 'x'}, uint16(1))

	f.Fuzz(func(t *testing.T, payload []byte, dim uint16) {
		rec, err := decodeRecord(payload, int(dim))
		if err != nil {
			if !errors.Is(err, errBadRecord) {
				t.Fatalf("decodeRecord returned untyped error %v", err)
			}
			return
		}
		switch rec.op {
		case opAdd:
			if len(rec.vec) != int(dim) {
				t.Fatalf("add decoded with dim %d, index wants %d", len(rec.vec), dim)
			}
			if rec.doc.ID != rec.id {
				t.Fatalf("add decoded doc ID %q under record ID %q", rec.doc.ID, rec.id)
			}
		case opDel:
			if rec.vec != nil || rec.doc.ID != "" {
				t.Fatal("delete decoded with add-side payload")
			}
		default:
			t.Fatalf("decoded unknown op %d", rec.op)
		}
	})
}
