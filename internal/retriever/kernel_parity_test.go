package retriever

import (
	"context"
	"fmt"
	"testing"

	"pneuma/internal/vecmath"
)

// TestScalarDispatchParity is the retriever-level half of the SIMD
// determinism contract: search results must be bit-identical between the
// dispatched kernel tier and the forced-scalar tier — same IDs, same
// order, same float32 scores — at every shard count and on both
// backends. The kernel differential tests prove each primitive agrees at
// every vector length; this proves nothing above them (normalization at
// embed time, HNSW traversal order, RRF fusion) lets a tier leak into
// ranking. On machines without a SIMD tier both passes run the same
// scalar code and the test degenerates to a self-comparison.
func TestScalarDispatchParity(t *testing.T) {
	defer vecmath.ForceScalar(false)
	tables := corpusSlice(48)
	for _, shards := range []int{1, 4, 8} {
		for _, backend := range []Backend{Memory, Disk} {
			t.Run(fmt.Sprintf("%s-%dshard", backend, shards), func(t *testing.T) {
				opts := []Option{WithShards(shards), WithBackend(backend)}
				if backend == Disk {
					opts = append(opts, WithDir(t.TempDir()))
				}
				r, err := Open(opts...)
				if err != nil {
					t.Fatal(err)
				}
				defer r.Close()
				// Index under the dispatched tier; the stored vectors are
				// tier-independent because the kernels are bit-identical.
				vecmath.ForceScalar(false)
				if err := r.IndexTables(context.Background(), tables); err != nil {
					t.Fatal(err)
				}
				for _, q := range parityQueries {
					dispatched := mustSearch(t, r, q, 10)
					vecmath.ForceScalar(true)
					scalar := mustSearch(t, r, q, 10)
					vecmath.ForceScalar(false)
					assertSameResults(t, "scalar-vs-"+vecmath.DetectedTier()+" "+q, dispatched, scalar)
				}
			})
		}
	}
}
