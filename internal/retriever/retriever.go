package retriever

import (
	"context"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pneuma/internal/bm25"
	"pneuma/internal/docs"
	"pneuma/internal/embed"
	"pneuma/internal/hnsw"
	"pneuma/internal/pnerr"
	"pneuma/internal/table"
)

// Mode selects which half (or both) of the hybrid index answers queries —
// the retrieval ablation in DESIGN.md §5.4.
type Mode int

// Retrieval modes.
const (
	// ModeHybrid fuses vector and BM25 rankings (the paper's design).
	ModeHybrid Mode = iota
	// ModeVectorOnly uses only the HNSW side.
	ModeVectorOnly
	// ModeBM25Only uses only the inverted-index side.
	ModeBM25Only
)

// rrfK is the reciprocal-rank-fusion constant (standard value 60).
const rrfK = 60.0

// hnswSeed keeps shard graph construction reproducible; shard i uses
// hnswSeed+i so the shards are deterministic but not identical graphs.
const hnswSeed = 20260118

// DefaultCompactionRatio is the dead-record fraction that triggers a
// segment compaction rewrite at Flush/Close when WithCompactionRatio is
// unset.
const DefaultCompactionRatio = 0.5

// DefaultShards returns the default shard count: GOMAXPROCS clamped to
// [4,16]. The floor matters even on a single core — HNSW insertion cost
// grows with graph size, so four smaller graphs ingest roughly twice as
// fast as one big one; the ceiling keeps per-query fan-out bounded.
func DefaultShards() int {
	n := runtime.GOMAXPROCS(0)
	if n < 4 {
		n = 4
	}
	if n > 16 {
		n = 16
	}
	return n
}

// shard is one hash partition of the hybrid index: a storage backend plus
// the mutex that serializes its writers. Readers do not take it — the
// backend's read methods run against immutable views published by atomic
// pointer swap (see ShardBackend), so a search never blocks on an ingest
// and vice versa. A reader may observe one half a publish ahead of the
// other mid-batch; the writer publishes the document store first, then the
// lexical half, then the vector half, so every ID a view surfaces is
// materializable, and at any quiesce point the halves agree exactly.
type shard struct {
	mu sync.Mutex
	be ShardBackend
}

// ingestBatchSize is the per-shard chunk size bulk ingest feeds to
// IndexBatch: large enough to amortize the copy-on-write of the published
// read views, small enough that cancellation lands between chunks and
// concurrent searches see the corpus appear progressively.
const ingestBatchSize = 64

// Retriever is the sharded hybrid table-discovery index. All methods are
// safe for concurrent use.
type Retriever struct {
	emb       *embed.Embedder
	mode      Mode
	workers   int
	numShards int
	backend   Backend
	dir       string
	ef        int
	// Disk-backend policy knobs (see WithSyncEvery, WithSyncBytes,
	// WithSyncInterval, WithCompactionRatio, WithSnapshotOnFlush,
	// WithMmap); ignored by the Memory backend.
	syncEvery    int
	syncBytes    int64
	syncInterval time.Duration
	compactRatio float64
	noSnapshot   bool
	noBgCompact  bool
	useMmap      bool
	// quantize enables the int8 speed tier on every shard's HNSW index
	// (see WithQuantize); honoured by both backends.
	quantize bool
	// gc is the group-commit coordinator (nil when no sync policy is
	// configured); its flusher goroutine runs from Open to Close.
	gc *groupCommit
	// lock is the advisory single-writer lock on the Disk backend's index
	// directory, held from Open to Close. Nil for the Memory backend.
	lock *dirLock
	// stats is the corpus-wide BM25 statistics object every shard's
	// lexical index contributes to and scores against, so per-shard BM25
	// scores equal single-index scores on the same corpus.
	stats  *bm25.Stats
	shards []*shard
	// version counts index mutations (ingest and delete); callers that
	// cache query results use it for invalidation.
	version atomic.Uint64
	// closed flips once on Close; every subsequent call fails with a typed
	// pnerr.ErrClosed instead of touching released backends.
	closed atomic.Bool
	// refs counts in-flight operations (searches, ingests, flushes,
	// including fan-out goroutines that can outlive a canceled Search).
	// Close flips closed and then waits for refs to drain before releasing
	// the backends, so no reader can be traversing an arena when a
	// mmap-backed shard unmaps its snapshot. Readers never block on this —
	// acquire is an atomic increment plus a closed re-check.
	refs atomic.Int64
	// scratch pools *searchScratch values so steady-state Search reuses
	// its merge buffers and fusion map instead of allocating per query.
	scratch sync.Pool
	// openWall/openShardSum record the Disk backend's cold-open fan-out:
	// wall clock of the concurrent shard open versus the sum of per-shard
	// open times (what a sequential open would cost). Written once by
	// Open, read by tests asserting the parallel open pays.
	openWall     time.Duration
	openShardSum time.Duration
}

// Option configures a Retriever.
type Option func(*Retriever)

// WithMode sets the retrieval mode (default ModeHybrid).
func WithMode(m Mode) Option {
	return func(r *Retriever) { r.mode = m }
}

// WithEmbedder replaces the default embedder.
func WithEmbedder(e *embed.Embedder) Option {
	return func(r *Retriever) { r.emb = e }
}

// WithShards sets the shard count (default DefaultShards()). Values < 1
// are ignored.
func WithShards(n int) Option {
	return func(r *Retriever) {
		if n >= 1 {
			r.numShards = n
		}
	}
}

// WithWorkers sets the embedding worker-pool size used by bulk ingest
// (default GOMAXPROCS). Values < 1 are ignored.
func WithWorkers(n int) Option {
	return func(r *Retriever) {
		if n >= 1 {
			r.workers = n
		}
	}
}

// WithBackend selects the shard storage backend (default Memory). The Disk
// backend persists each shard to an append-only segment file under the
// index directory (see WithDir) and rebuilds the in-memory structures from
// it on Open.
func WithBackend(b Backend) Option {
	return func(r *Retriever) {
		if b != "" {
			r.backend = b
		}
	}
}

// WithDir sets the index directory the Disk backend stores its manifest
// and segment files in. Opening a directory that already holds an index
// loads it; an empty or missing directory starts a fresh index. Ignored by
// the Memory backend. When unset, the Disk backend uses a fresh temporary
// directory (ephemeral across processes, durable within one).
func WithDir(path string) Option {
	return func(r *Retriever) {
		if path != "" {
			r.dir = path
		}
	}
}

// WithEf sets the HNSW query beam width ef for every shard (default
// hnsw.DefaultEfSearch). Larger values trade latency for recall; the knob
// only affects queries, so an existing disk index can be reopened with a
// different ef. Values < 1 are ignored.
func WithEf(ef int) Option {
	return func(r *Retriever) {
		if ef >= 1 {
			r.ef = ef
		}
	}
}

// WithSyncEvery enables group-commit durability triggered by pending
// record count: once n records have been appended since the last fsync,
// the flusher syncs immediately instead of waiting out the latency bound.
// This shrinks the crash-loss window (including the resurrected-tombstone
// window: an unsynced delete record lost in a crash brings the document
// back on reopen) without paying one fsync per record — concurrent
// writers share each disk barrier. 0, the default, leaves the trigger
// unset; values < 0 are ignored. The Memory backend ignores the knob.
//
// Deprecated: WithSyncEvery is kept as a compatibility alias. New code
// should bound durability by bytes (WithSyncBytes) or latency
// (WithSyncInterval); a record count is a proxy for both and tracks
// neither well.
func WithSyncEvery(n int) Option {
	return func(r *Retriever) {
		if n >= 0 {
			r.syncEvery = n
		}
	}
}

// WithSyncBytes enables group-commit durability triggered by pending
// payload volume: once n bytes of records have been appended to a shard
// since its last fsync, the flusher syncs immediately instead of waiting
// out the latency bound. 0, the default, leaves the trigger unset; values
// < 0 are ignored. The Memory backend ignores the knob.
func WithSyncBytes(n int64) Option {
	return func(r *Retriever) {
		if n >= 0 {
			r.syncBytes = n
		}
	}
}

// WithSyncInterval bounds the time an acknowledged write can remain
// unsynced: the group-commit flusher fsyncs every shard with pending
// records at most d after the first of them was appended, batching
// everything that arrived in the window into one fsync per shard. Setting
// any sync knob (this one, WithSyncEvery or WithSyncBytes) activates the
// flusher; the interval defaults to DefaultSyncInterval when another
// trigger is set without an explicit bound. 0, the default, leaves the
// bound unset; values < 0 are ignored. The Memory backend ignores the
// knob.
func WithSyncInterval(d time.Duration) Option {
	return func(r *Retriever) {
		if d >= 0 {
			r.syncInterval = d
		}
	}
}

// WithQuantize toggles the int8 speed tier (default off). When on, every
// shard's HNSW index keeps a scalar-quantized int8 copy of the vector
// arena and runs graph traversal against it — 4× less memory bandwidth
// per distance — then rescores the top candidates with exact float32
// arithmetic, so returned scores and ordering are computed at full
// precision. Graph construction always uses float32: the graph is
// identical with the knob on or off, and an existing disk index can be
// reopened with a different setting. See pneuma/internal/hnsw for the
// quantization scheme and accuracy characteristics.
func WithQuantize(on bool) Option {
	return func(r *Retriever) { r.quantize = on }
}

// WithMmap makes the Disk backend memory-map snapshot files on Open
// instead of reading them (default off). The shard's vector arenas and
// document strings then alias the mapping zero-copy: cold start skips the
// read-and-decode pass, pages fault in on demand, and co-located
// processes share the page cache. The whole-file checksum is still
// verified up front, so corruption degrades to a segment replay exactly
// as in the ReadFile path. Lifetime caveat: because results can alias the
// mapping, documents returned by a mmap-backed retriever must not be
// retained after Close. Ignored on platforms without mmap support and by
// the Memory backend.
func WithMmap(on bool) Option {
	return func(r *Retriever) { r.useMmap = on }
}

// WithCompactionRatio sets the dead-record fraction (superseded adds,
// deleted documents and their tombstone records, as a share of all
// segment records) beyond which Flush/Close rewrites a shard's segment to
// its live records and refreshes the snapshot. 0 selects
// DefaultCompactionRatio; values in (0, 1] set the threshold; negative
// values disable compaction entirely. Compaction rebuilds the shard's
// HNSW graph without the tombstoned nodes — afterwards results are those
// of a fresh index over the surviving corpus. The Memory backend ignores
// the knob.
func WithCompactionRatio(ratio float64) Option {
	return func(r *Retriever) { r.compactRatio = ratio }
}

// WithBackgroundCompaction toggles running due segment compactions on the
// retriever's flusher goroutine instead of inline under the shard writer
// lock (default on). In background mode a rewrite proceeds as an
// incremental shadow rebuild that takes each shard's lock only in short
// slices, so concurrent writers stall for at most one slice's work
// instead of the whole rewrite; Flush still waits for a rewrite it
// triggers, so its post-conditions (compacted segment, fresh snapshot)
// are unchanged. A compaction can also start between Flushes, as soon as
// the dead-record fraction crosses the WithCompactionRatio threshold.
// Turning it off restores the inline behaviour: compaction runs under the
// lock at Flush/Close only. The Memory backend ignores the knob.
func WithBackgroundCompaction(on bool) Option {
	return func(r *Retriever) { r.noBgCompact = !on }
}

// WithSnapshotOnFlush toggles writing a per-shard state snapshot on
// Flush/Close (default on). With a current snapshot, reopening the index
// bulk-loads the built HNSW/BM25 state and replays only the records
// appended after it — O(read) instead of O(rebuild). Disabling trades
// slower cold starts for cheaper flushes; the segment log alone remains a
// complete, durable copy of the index. The Memory backend ignores the
// knob.
func WithSnapshotOnFlush(on bool) Option {
	return func(r *Retriever) { r.noSnapshot = !on }
}

// Open creates a retriever, loading any existing index when the Disk
// backend points at a directory with persisted segments. This is the
// error-returning constructor; New is the panicking convenience wrapper
// for configurations that cannot fail (the Memory backend).
func Open(opts ...Option) (*Retriever, error) {
	r := &Retriever{
		emb:       embed.New(),
		mode:      ModeHybrid,
		workers:   runtime.GOMAXPROCS(0),
		numShards: DefaultShards(),
		backend:   Memory,
		stats:     bm25.NewStats(),
	}
	for _, o := range opts {
		o(r)
	}
	switch r.backend {
	case Memory:
		r.shards = make([]*shard, r.numShards)
		for i := range r.shards {
			r.shards[i] = &shard{be: newMemoryBackend(r.emb.Dim(), hnswSeed+int64(i), r.stats, r.ef, r.quantize)}
		}
	case Disk:
		if r.dir == "" {
			dir, err := os.MkdirTemp("", "pneuma-retriever-*")
			if err != nil {
				return nil, err
			}
			r.dir = dir
		}
		if err := os.MkdirAll(r.dir, 0o755); err != nil {
			return nil, err
		}
		// Advisory single-writer lock: a second process opening this
		// directory fails fast with a typed pnerr.ErrIndexLocked instead
		// of interleaving segment writes with ours.
		lock, err := acquireDirLock(r.dir)
		if err != nil {
			return nil, err
		}
		r.lock = lock
		m, err := loadOrCreateManifest(r.dir, r.numShards, r.emb.Dim())
		if err != nil {
			lock.release()
			if os.IsNotExist(err) || os.IsPermission(err) {
				return nil, err
			}
			return nil, pnerr.Corrupt("retriever: open", err)
		}
		// The manifest's shard count wins: hash routing must match the
		// layout the segments were written under.
		r.numShards = m.Shards
		r.gc = newGroupCommit(r.syncEvery, r.syncBytes, r.syncInterval)
		knobs := diskKnobs{
			compactRatio: r.compactRatio,
			snapshot:     !r.noSnapshot,
			quantize:     r.quantize,
			mmap:         r.useMmap,
			background:   !r.noBgCompact,
			gc:           r.gc,
		}
		switch {
		case knobs.compactRatio == 0:
			knobs.compactRatio = DefaultCompactionRatio
		case knobs.compactRatio < 0:
			// Disabled: the dead fraction can never exceed 1.
			knobs.compactRatio = 2
		}
		legacy := m.Format < segFormat
		// Shards load concurrently: snapshot loads and replays are
		// independent per shard, and the shared BM25 statistics updates
		// are commutative, so the built state is identical to a
		// sequential open regardless of goroutine interleaving. Per-shard
		// durations and the fan-out wall clock are recorded so tests (and
		// curious operators) can verify the parallelism actually pays:
		// openShardSum is what a sequential open would have cost.
		bes := make([]ShardBackend, r.numShards)
		errs := make([]error, r.numShards)
		durs := make([]time.Duration, r.numShards)
		openStart := time.Now()
		var wg sync.WaitGroup
		for i := 0; i < r.numShards; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				t0 := time.Now()
				seg := filepath.Join(r.dir, fmt.Sprintf("shard-%04d.seg", i))
				snap := filepath.Join(r.dir, fmt.Sprintf("shard-%04d.snap", i))
				if legacy {
					bes[i], errs[i] = openLegacyDiskBackend(seg, snap, r.emb.Dim(), hnswSeed+int64(i), r.stats, r.ef, knobs)
				} else {
					bes[i], errs[i] = openDiskBackend(seg, snap, r.emb.Dim(), hnswSeed+int64(i), r.stats, r.ef, knobs)
				}
				durs[i] = time.Since(t0)
			}(i)
		}
		wg.Wait()
		r.openWall = time.Since(openStart)
		for _, d := range durs {
			r.openShardSum += d
		}
		for _, err := range errs {
			if err == nil {
				continue
			}
			// Don't leak the segment files the other shards opened.
			for _, be := range bes {
				if be != nil {
					be.Close()
				}
			}
			lock.release()
			if os.IsNotExist(err) || os.IsPermission(err) {
				return nil, err
			}
			return nil, pnerr.Corrupt("retriever: open", err)
		}
		r.shards = make([]*shard, r.numShards)
		for i, be := range bes {
			r.shards[i] = &shard{be: be}
		}
		if legacy {
			// Every shard is now in the binary format; stamp the manifest
			// so the next open skips the migration path.
			if err := writeManifest(r.dir, manifest{Shards: m.Shards, Dim: m.Dim, Format: segFormat}); err != nil {
				for _, s := range r.shards {
					s.be.Close()
				}
				lock.release()
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("retriever: unknown backend %q", r.backend)
	}
	if r.gc != nil {
		// The flusher starts only once every shard opened — error paths
		// above return before any goroutine exists to leak.
		go r.flusher()
	}
	return r, nil
}

// New creates an empty retriever, panicking if the configuration cannot be
// opened. Only the Disk backend can fail (I/O); Memory-backed construction
// never panics. Callers selecting WithBackend(Disk) should prefer Open.
func New(opts ...Option) *Retriever {
	r, err := Open(opts...)
	if err != nil {
		panic(err)
	}
	return r
}

// NumShards returns the shard count.
func (r *Retriever) NumShards() int { return len(r.shards) }

// Ef returns the effective HNSW query beam width.
func (r *Retriever) Ef() int {
	if r.ef > 0 {
		return r.ef
	}
	return hnsw.DefaultEfSearch
}

// Backend returns the configured shard storage backend.
func (r *Retriever) Backend() Backend { return r.backend }

// Dir returns the index directory (empty for the Memory backend).
func (r *Retriever) Dir() string {
	if r.backend == Memory {
		return ""
	}
	return r.dir
}

// acquire registers an in-flight operation against the lifecycle counter
// and re-checks closed, in that order — the mirror image of Close, which
// flips closed and then reads the counter. Sequential consistency of the
// two atomics guarantees that either this operation observes closed (and
// backs out without touching a backend) or Close observes the reference
// (and waits for release before tearing the backends down). Never blocks.
func (r *Retriever) acquire(op string) error {
	r.refs.Add(1)
	if r.closed.Load() {
		r.refs.Add(-1)
		return pnerr.Closed(op)
	}
	return nil
}

// release drops a reference taken by acquire.
func (r *Retriever) release() { r.refs.Add(-1) }

// Flush makes all shards durable (fsync of every segment file for the Disk
// backend; a no-op for Memory). Searches keep serving throughout: any
// compaction a Flush triggers publishes its rebuilt state by atomic view
// swap, and in-flight queries finish on their pinned pre-flush views.
//
// With background compaction on (the default), a shard whose dead-record
// fraction crosses the threshold is handed to the flusher goroutine and
// Flush waits for the rewrite without holding any shard lock — writers
// and searches proceed while Flush blocks, and Flush's post-conditions
// (compacted segment, current snapshot) still hold when it returns. If
// Close races the wait, the remaining work completes inline there.
func (r *Retriever) Flush() error {
	if err := r.acquire("retriever: flush"); err != nil {
		return err
	}
	defer r.release()
	var waits []<-chan struct{}
	for _, s := range r.shards {
		s.mu.Lock()
		var ch <-chan struct{}
		var err error
		if db, ok := s.be.(*diskBackend); ok {
			ch, err = db.flushLocked()
		} else {
			err = s.be.Flush()
		}
		s.mu.Unlock()
		if err != nil {
			return err
		}
		if ch != nil {
			waits = append(waits, ch)
		}
	}
	if len(waits) == 0 {
		return nil
	}
	for _, ch := range waits {
		select {
		case <-ch:
		case <-r.gc.stopped:
			// Close stopped the flusher mid-wait; its inline Flush owns
			// whatever the background rewrite left undone.
		}
	}
	var first error
	for _, s := range r.shards {
		s.mu.Lock()
		if db, ok := s.be.(*diskBackend); ok {
			if err := db.finishFlushLocked(); err != nil && first == nil {
				first = err
			}
		}
		s.mu.Unlock()
	}
	return first
}

// Close flushes and releases every shard, then drops the index-directory
// lock. Calls after the first return a typed pnerr.ErrClosed, as do all
// queries and ingests against a closed retriever (Disk-backed shards have
// closed their segment files). Operations in flight when Close lands are
// drained first: Close waits for every acquired reference — including
// fan-out goroutines a canceled Search abandoned — before closing a
// backend, so no search can be walking an arena when a mmap-backed shard
// releases its snapshot mapping.
func (r *Retriever) Close() error {
	if r.closed.Swap(true) {
		return pnerr.Closed("retriever: close")
	}
	if r.gc != nil {
		// Stop the group-commit flusher first: it performs one final sweep
		// over the shards on its way out, and waiting for it here means no
		// goroutine can touch a backend after it is closed below.
		close(r.gc.done)
		<-r.gc.stopped
	}
	// Drain in-flight operations. New ones observe closed and back out;
	// the wait is bounded by the longest in-flight ingest chunk or query.
	for r.refs.Load() != 0 {
		time.Sleep(50 * time.Microsecond)
	}
	var first error
	for _, s := range r.shards {
		s.mu.Lock()
		err := s.be.Close()
		s.mu.Unlock()
		if err != nil && first == nil {
			first = err
		}
	}
	if err := r.lock.release(); err != nil && first == nil {
		first = err
	}
	return first
}

// Version returns the mutation counter: it increases on every successful
// ingest or delete, so equal versions imply identical index contents.
func (r *Retriever) Version() uint64 { return r.version.Load() }

// ArenaBytes returns the total bytes held by the float32 vector arenas
// and by the int8 quantized arenas (including their per-vector scale,
// offset and sum arrays) across all shards. The int8 total is 0 unless
// WithQuantize is on; the benchmark harness reports the ratio as the
// memory cost of the speed tier.
func (r *Retriever) ArenaBytes() (float32Bytes, int8Bytes int64) {
	for _, s := range r.shards {
		if mb, ok := s.be.(interface{ arenaBytes() (int, int) }); ok {
			f, q := mb.arenaBytes()
			float32Bytes += int64(f)
			int8Bytes += int64(q)
		}
	}
	return float32Bytes, int8Bytes
}

// shardIndex routes a document ID to its shard slot by FNV-1a hash. Every
// routing decision — ingest, lookup, delete — must go through here so the
// partitions can never diverge.
func (r *Retriever) shardIndex(id string) int {
	if len(r.shards) == 1 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(id))
	return int(h.Sum32() % uint32(len(r.shards)))
}

func (r *Retriever) shardFor(id string) *shard {
	return r.shards[r.shardIndex(id)]
}

// IndexTable adds a table to the index via its canonical document.
func (r *Retriever) IndexTable(ctx context.Context, t *table.Table) error {
	return r.IndexDocument(ctx, docs.TableDocument(t))
}

// IndexTables bulk-ingests a corpus of tables: canonical documents are
// built and embedded with the worker pool, then all shards are written
// concurrently. This is the fast path Seeker assembly and the CLIs use.
// Cancellation propagates into the embedding pool and the per-shard
// writers: un-started work is abandoned and ctx.Err() is returned (already
// inserted documents remain — bulk ingest is not transactional).
func (r *Retriever) IndexTables(ctx context.Context, ts []*table.Table) error {
	ds := make([]docs.Document, len(ts))
	for i, t := range ts {
		ds[i] = docs.TableDocument(t)
	}
	return r.IndexDocuments(ctx, ds)
}

// IndexDocument adds an arbitrary document to the hybrid index. The same
// indexer serves the Document Database (§3.3: "uses Pneuma-Retriever's
// indexer to store domain knowledge").
func (r *Retriever) IndexDocument(ctx context.Context, d docs.Document) error {
	if err := r.acquire("retriever: index"); err != nil {
		return err
	}
	defer r.release()
	if err := ctx.Err(); err != nil {
		return pnerr.Canceled("retriever: index", err)
	}
	vec := r.emb.Embed(d.Content)
	s := r.shardFor(d.ID)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.be.Index(d, vec); err != nil {
		return err
	}
	r.version.Add(1)
	return nil
}

// IndexDocuments bulk-ingests documents. Embeddings are computed with the
// configured worker pool, then each shard is populated by its own
// goroutine. Documents are sorted by ID first, so every shard sees its
// partition in the same order on every ingest of the same corpus — the
// resulting HNSW graphs, and therefore search results, are deterministic
// regardless of input permutation or goroutine scheduling. A canceled ctx
// abandons un-started embedding and insertion work and returns a typed
// pnerr.ErrCanceled; documents already inserted stay in the index.
func (r *Retriever) IndexDocuments(ctx context.Context, ds []docs.Document) error {
	if err := r.acquire("retriever: index"); err != nil {
		return err
	}
	defer r.release()
	if len(ds) == 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return pnerr.Canceled("retriever: index", err)
	}
	sorted := make([]docs.Document, len(ds))
	copy(sorted, ds)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })

	texts := make([]string, len(sorted))
	for i, d := range sorted {
		texts[i] = d.Content
	}
	vecs, err := r.emb.EmbedBatch(ctx, texts, r.workers)
	if err != nil {
		return pnerr.Canceled("retriever: index", err)
	}

	// Partition (in sorted order) so each shard goroutine inserts its
	// documents sequentially under its own lock.
	parts := make([][]int, len(r.shards))
	for i, d := range sorted {
		si := r.shardIndex(d.ID)
		parts[si] = append(parts[si], i)
	}

	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for si, part := range parts {
		if len(part) == 0 {
			continue
		}
		wg.Add(1)
		go func(si int, part []int) {
			defer wg.Done()
			s := r.shards[si]
			s.mu.Lock()
			defer s.mu.Unlock()
			// Feed the shard in ingestBatchSize chunks: each chunk goes
			// through IndexBatch (one copy-on-write clone of the published
			// views for the whole chunk) and publishes before the next, so
			// cancellation lands between chunks and concurrent searches see
			// the corpus appear progressively instead of all at once.
			bds := make([]docs.Document, 0, ingestBatchSize)
			bvecs := make([][]float32, 0, ingestBatchSize)
			for start := 0; start < len(part); start += ingestBatchSize {
				if err := ctx.Err(); err != nil {
					errs[si] = pnerr.Canceled("retriever: index", err)
					return
				}
				end := start + ingestBatchSize
				if end > len(part) {
					end = len(part)
				}
				bds, bvecs = bds[:0], bvecs[:0]
				for _, i := range part[start:end] {
					bds = append(bds, sorted[i])
					bvecs = append(bvecs, vecs[i])
				}
				if err := s.be.IndexBatch(bds, bvecs); err != nil {
					errs[si] = err
					return
				}
			}
		}(si, part)
	}
	wg.Wait()
	r.version.Add(1)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Delete removes a document from both halves of its shard.
func (r *Retriever) Delete(id string) bool {
	if r.acquire("retriever: delete") != nil {
		return false
	}
	defer r.release()
	s := r.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.be.Delete(id) {
		return false
	}
	r.version.Add(1)
	return true
}

// DeleteDocuments removes a batch of documents and returns how many of
// the IDs were present. Shards are written concurrently, each through its
// backend's DeleteBatch (one copy-on-write clone of the published views
// per shard for the whole batch); searches keep serving against their
// pinned views throughout. The mutation counter advances once for the
// whole batch when anything was removed.
func (r *Retriever) DeleteDocuments(ids []string) int {
	if r.acquire("retriever: delete") != nil {
		return 0
	}
	defer r.release()
	if len(ids) == 0 {
		return 0
	}
	parts := make([][]string, len(r.shards))
	for _, id := range ids {
		si := r.shardIndex(id)
		parts[si] = append(parts[si], id)
	}
	var removed atomic.Int64
	var wg sync.WaitGroup
	for si, part := range parts {
		if len(part) == 0 {
			continue
		}
		wg.Add(1)
		go func(s *shard, part []string) {
			defer wg.Done()
			s.mu.Lock()
			defer s.mu.Unlock()
			removed.Add(int64(s.be.DeleteBatch(part)))
		}(r.shards[si], part)
	}
	wg.Wait()
	n := int(removed.Load())
	if n > 0 {
		r.version.Add(1)
	}
	return n
}

// Len returns the number of indexed documents across all shards. Lock-free:
// each shard keeps an atomic live-document counter.
func (r *Retriever) Len() int {
	n := 0
	for _, s := range r.shards {
		n += s.be.Len()
	}
	return n
}

// Document returns the stored document by ID. Lock-free: the document
// store is a sync.Map, so lookups never wait on an in-flight ingest.
func (r *Retriever) Document(id string) (docs.Document, bool) {
	return r.shardFor(id).be.Document(id)
}

// shardHits is one shard's raw candidates for a query.
type shardHits struct {
	vec []hnsw.Result
	lex []bm25.Result
}

// scored is one fused candidate during global re-ranking.
type scored struct {
	id    string
	score float64
}

// searchScratch is the reusable per-query working state of Retriever.Search:
// the per-shard hit table, the merged candidate lists, the RRF fusion map
// and the ranked buffer. Instances cycle through Retriever.scratch; the
// sync.Pool contract applies (GC may drop pooled instances, so only
// steady-state queries are allocation-free), and nothing handed back to the
// caller may alias scratch memory.
type searchScratch struct {
	hits   []shardHits
	errs   []error
	vecRes []hnsw.Result
	lexRes []bm25.Result
	fused  map[string]float64
	ranked []scored
}

// begin readies the scratch for a query fanning out to n shards.
func (s *searchScratch) begin(n int) {
	if cap(s.hits) < n {
		s.hits = make([]shardHits, n)
		s.errs = make([]error, n)
	}
	s.hits = s.hits[:n]
	s.errs = s.errs[:n]
	for i := range s.errs {
		s.errs[i] = nil
	}
	s.vecRes = s.vecRes[:0]
	s.lexRes = s.lexRes[:0]
	s.ranked = s.ranked[:0]
	if s.fused == nil {
		s.fused = make(map[string]float64)
	} else {
		clear(s.fused)
	}
}

// queryShard collects one shard's candidates for a query. No lock: each
// half pins the immutable view current at call time, so the query never
// blocks a writer and never waits on one — the tentpole contract of live
// ingest. The caller must hold a lifecycle reference (acquire) so the
// backend cannot be closed mid-query.
func (r *Retriever) queryShard(s *shard, qvec []float32, query string, fetch int) (shardHits, error) {
	var h shardHits
	if r.mode != ModeBM25Only {
		vr, err := s.be.SearchVector(qvec, fetch)
		if err != nil {
			return shardHits{}, err
		}
		h.vec = vr
	}
	if r.mode != ModeVectorOnly {
		h.lex = s.be.SearchLexical(query, fetch)
	}
	return h, nil
}

// Search returns the top-k documents for the query under the configured
// mode. Scores are RRF scores for hybrid mode, raw scores otherwise. The
// query fans out to all shards concurrently; per-shard candidate lists are
// merged by score with ties broken by document ID, so results are
// deterministic for a fixed index.
//
// Cancellation: a ctx that is already done returns a typed
// pnerr.ErrCanceled immediately; a ctx canceled mid-fan-out abandons every
// shard whose query has not started, stops waiting for in-flight shards,
// and returns promptly. A non-cancellable ctx (context.Background) takes
// the allocation-free fast path — the scheduler machinery costs nothing in
// steady state.
func (r *Retriever) Search(ctx context.Context, query string, k int) ([]docs.Document, error) {
	if err := r.acquire("retriever: search"); err != nil {
		return nil, err
	}
	defer r.release()
	if err := ctx.Err(); err != nil {
		return nil, pnerr.Canceled("retriever: search", err)
	}
	if k <= 0 {
		return nil, nil
	}

	// Over-fetch each side so fusion has enough candidates. Each shard
	// over-fetches the full budget: the global top-fetch is then always a
	// subset of the union of per-shard top-fetch lists.
	fetch := k * 3
	if fetch < 10 {
		fetch = 10
	}

	var qvec []float32
	if r.mode != ModeBM25Only {
		qvec = r.emb.Embed(query)
	}

	sc, _ := r.scratch.Get().(*searchScratch)
	if sc == nil {
		sc = &searchScratch{}
	}
	// The scratch returns to the pool only on paths where no fan-out
	// goroutine can still be writing into it; the canceled path abandons
	// it to the GC instead (see below).
	reuse := true
	defer func() {
		if reuse {
			r.scratch.Put(sc)
		}
	}()
	sc.begin(len(r.shards))

	if len(r.shards) == 1 {
		// Single-shard indexes (docdb, websearch, ablation baselines) run
		// inline: a goroutine + WaitGroup per query buys nothing when
		// there is no fan-out to overlap.
		h, err := r.queryShard(r.shards[0], qvec, query, fetch)
		if err != nil {
			return nil, err
		}
		sc.hits[0] = h
	} else if ctx.Done() == nil {
		// Non-cancellable context: the zero-allocation fan-out. This is
		// the steady-state serving path the AllocsPerRun budgets guard.
		var wg sync.WaitGroup
		for si, s := range r.shards {
			wg.Add(1)
			go func(si int, s *shard) {
				defer wg.Done()
				sc.hits[si], sc.errs[si] = r.queryShard(s, qvec, query, fetch)
			}(si, s)
		}
		wg.Wait()
		for _, err := range sc.errs {
			if err != nil {
				return nil, err
			}
		}
	} else {
		// Cancellable context: each shard goroutine re-checks the context
		// before touching its backend, so work that has not started when
		// cancellation lands is abandoned; the coordinator stops waiting
		// the moment the context fires. Costs a completion channel and a
		// waiter goroutine — only paid by requests that can actually be
		// canceled.
		var wg sync.WaitGroup
		for si, s := range r.shards {
			wg.Add(1)
			// Each goroutine carries its own lifecycle reference: when the
			// context fires, Search returns while these may still be
			// querying, and Close must keep the backends alive until the
			// last of them drains.
			r.refs.Add(1)
			go func(si int, s *shard) {
				defer wg.Done()
				defer r.release()
				if err := ctx.Err(); err != nil {
					sc.errs[si] = err
					return
				}
				sc.hits[si], sc.errs[si] = r.queryShard(s, qvec, query, fetch)
			}(si, s)
		}
		fanoutDone := make(chan struct{})
		go func() {
			wg.Wait()
			close(fanoutDone)
		}()
		select {
		case <-fanoutDone:
		case <-ctx.Done():
			// In-flight shard goroutines may still write into the scratch;
			// hand it to the GC rather than back to the pool.
			reuse = false
			return nil, pnerr.Canceled("retriever: search", ctx.Err())
		}
		for _, err := range sc.errs {
			if err != nil {
				if ctx.Err() != nil {
					return nil, pnerr.Canceled("retriever: search", ctx.Err())
				}
				return nil, err
			}
		}
	}

	vecRes := sc.vecRes
	lexRes := sc.lexRes
	for _, h := range sc.hits {
		vecRes = append(vecRes, h.vec...)
		lexRes = append(lexRes, h.lex...)
	}
	// Re-rank the merged candidate lists globally. BM25 scores are
	// computed against the shared corpus-wide statistics object, so
	// per-shard scores are directly comparable and equal to what a single
	// monolithic index would assign. The comparators are total orders
	// (document IDs are unique across shards), so the unstable sort is
	// still deterministic.
	slices.SortFunc(vecRes, func(a, b hnsw.Result) int {
		if a.Score != b.Score {
			if a.Score > b.Score {
				return -1
			}
			return 1
		}
		return strings.Compare(a.ID, b.ID)
	})
	slices.SortFunc(lexRes, func(a, b bm25.Result) int {
		if a.Score != b.Score {
			if a.Score > b.Score {
				return -1
			}
			return 1
		}
		return strings.Compare(a.ID, b.ID)
	})
	sc.vecRes = vecRes
	sc.lexRes = lexRes
	if len(vecRes) > fetch {
		vecRes = vecRes[:fetch]
	}
	if len(lexRes) > fetch {
		lexRes = lexRes[:fetch]
	}

	ranked := sc.ranked
	switch r.mode {
	case ModeVectorOnly:
		for _, h := range vecRes {
			ranked = append(ranked, scored{h.ID, float64(h.Score)})
		}
	case ModeBM25Only:
		for _, h := range lexRes {
			ranked = append(ranked, scored{h.ID, h.Score})
		}
	default:
		// Reciprocal-rank fusion across both lists.
		fused := sc.fused
		for rank, h := range vecRes {
			fused[h.ID] += 1.0 / (rrfK + float64(rank+1))
		}
		for rank, h := range lexRes {
			fused[h.ID] += 1.0 / (rrfK + float64(rank+1))
		}
		for id, s := range fused {
			ranked = append(ranked, scored{id, s})
		}
	}
	slices.SortFunc(ranked, func(a, b scored) int {
		if a.score != b.score {
			if a.score > b.score {
				return -1
			}
			return 1
		}
		return strings.Compare(a.id, b.id)
	})
	sc.ranked = ranked
	if len(ranked) > k {
		ranked = ranked[:k]
	}
	out := make([]docs.Document, 0, len(ranked))
	for _, s := range ranked {
		d, ok := r.Document(s.id)
		if !ok {
			continue
		}
		d.Score = s.score
		out = append(out, d)
	}
	return out, nil
}
