// Package retriever implements Pneuma-Retriever (Balaka et al., SIGMOD
// 2025), the table-discovery system the paper builds on: a hybrid index
// combining an HNSW vector store with a BM25 inverted index (§3.3), fused
// with reciprocal-rank fusion.
package retriever

import (
	"sort"
	"sync"

	"pneuma/internal/bm25"
	"pneuma/internal/docs"
	"pneuma/internal/embed"
	"pneuma/internal/hnsw"
	"pneuma/internal/table"
)

// Mode selects which half (or both) of the hybrid index answers queries —
// the retrieval ablation in DESIGN.md §5.4.
type Mode int

// Retrieval modes.
const (
	// ModeHybrid fuses vector and BM25 rankings (the paper's design).
	ModeHybrid Mode = iota
	// ModeVectorOnly uses only the HNSW side.
	ModeVectorOnly
	// ModeBM25Only uses only the inverted-index side.
	ModeBM25Only
)

// rrfK is the reciprocal-rank-fusion constant (standard value 60).
const rrfK = 60.0

// Retriever is the hybrid table-discovery index.
type Retriever struct {
	mu   sync.RWMutex
	emb  *embed.Embedder
	vec  *hnsw.Index
	lex  *bm25.Index
	byID map[string]docs.Document
	mode Mode
}

// Option configures a Retriever.
type Option func(*Retriever)

// WithMode sets the retrieval mode (default ModeHybrid).
func WithMode(m Mode) Option {
	return func(r *Retriever) { r.mode = m }
}

// WithEmbedder replaces the default embedder.
func WithEmbedder(e *embed.Embedder) Option {
	return func(r *Retriever) { r.emb = e }
}

// New creates an empty retriever.
func New(opts ...Option) *Retriever {
	r := &Retriever{
		emb:  embed.New(),
		byID: make(map[string]docs.Document),
		mode: ModeHybrid,
	}
	for _, o := range opts {
		o(r)
	}
	r.vec = hnsw.New(r.emb.Dim(), hnsw.Config{Seed: 20260118})
	r.lex = bm25.New(bm25.Params{})
	return r
}

// IndexTable adds a table to the index via its canonical document.
func (r *Retriever) IndexTable(t *table.Table) error {
	return r.IndexDocument(docs.TableDocument(t))
}

// IndexDocument adds an arbitrary document to the hybrid index. The same
// indexer serves the Document Database (§3.3: "uses Pneuma-Retriever's
// indexer to store domain knowledge").
func (r *Retriever) IndexDocument(d docs.Document) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.vec.Add(d.ID, r.emb.Embed(d.Content)); err != nil {
		return err
	}
	r.lex.Add(d.ID, d.Content)
	r.byID[d.ID] = d
	return nil
}

// Delete removes a document from both halves of the index.
func (r *Retriever) Delete(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.byID[id]
	if !ok {
		return false
	}
	delete(r.byID, id)
	r.vec.Delete(id)
	r.lex.Delete(id)
	return true
}

// Len returns the number of indexed documents.
func (r *Retriever) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byID)
}

// Document returns the stored document by ID.
func (r *Retriever) Document(id string) (docs.Document, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.byID[id]
	return d, ok
}

// Search returns the top-k documents for the query under the configured
// mode. Scores are RRF scores for hybrid mode, raw scores otherwise.
func (r *Retriever) Search(query string, k int) ([]docs.Document, error) {
	if k <= 0 {
		return nil, nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()

	// Over-fetch each side so fusion has enough candidates.
	fetch := k * 3
	if fetch < 10 {
		fetch = 10
	}

	var vecRes []hnsw.Result
	var lexRes []bm25.Result
	var err error
	if r.mode != ModeBM25Only {
		vecRes, err = r.vec.Search(r.emb.Embed(query), fetch)
		if err != nil {
			return nil, err
		}
	}
	if r.mode != ModeVectorOnly {
		lexRes = r.lex.Search(query, fetch)
	}

	type scored struct {
		id    string
		score float64
	}
	var ranked []scored
	switch r.mode {
	case ModeVectorOnly:
		for _, h := range vecRes {
			ranked = append(ranked, scored{h.ID, float64(h.Score)})
		}
	case ModeBM25Only:
		for _, h := range lexRes {
			ranked = append(ranked, scored{h.ID, h.Score})
		}
	default:
		// Reciprocal-rank fusion across both lists.
		fused := make(map[string]float64)
		for rank, h := range vecRes {
			fused[h.ID] += 1.0 / (rrfK + float64(rank+1))
		}
		for rank, h := range lexRes {
			fused[h.ID] += 1.0 / (rrfK + float64(rank+1))
		}
		for id, s := range fused {
			ranked = append(ranked, scored{id, s})
		}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].id < ranked[j].id
	})
	if len(ranked) > k {
		ranked = ranked[:k]
	}
	out := make([]docs.Document, 0, len(ranked))
	for _, s := range ranked {
		d, ok := r.byID[s.id]
		if !ok {
			continue
		}
		d.Score = s.score
		out = append(out, d)
	}
	return out, nil
}
