// Package retriever implements Pneuma-Retriever (Balaka et al., SIGMOD
// 2025), the table-discovery system the paper builds on: a hybrid index
// combining an HNSW vector store with a BM25 inverted index (§3.3), fused
// with reciprocal-rank fusion.
//
// The index is sharded: documents are hash-partitioned by ID across N
// shards, each shard owning its own HNSW graph, BM25 inverted index and
// lock. Ingest embeds documents with a worker pool and builds all shards
// concurrently; Search fans out to every shard concurrently and merges the
// per-shard candidate lists deterministically (score descending, document
// ID ascending) before rank fusion. Because each shard is always built in
// the same document order — bulk ingest sorts by ID and writes one shard
// per goroutine — results for a fixed corpus are identical regardless of
// worker scheduling or GOMAXPROCS.
package retriever

import (
	"hash/fnv"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"pneuma/internal/bm25"
	"pneuma/internal/docs"
	"pneuma/internal/embed"
	"pneuma/internal/hnsw"
	"pneuma/internal/table"
)

// Mode selects which half (or both) of the hybrid index answers queries —
// the retrieval ablation in DESIGN.md §5.4.
type Mode int

// Retrieval modes.
const (
	// ModeHybrid fuses vector and BM25 rankings (the paper's design).
	ModeHybrid Mode = iota
	// ModeVectorOnly uses only the HNSW side.
	ModeVectorOnly
	// ModeBM25Only uses only the inverted-index side.
	ModeBM25Only
)

// rrfK is the reciprocal-rank-fusion constant (standard value 60).
const rrfK = 60.0

// hnswSeed keeps shard graph construction reproducible; shard i uses
// hnswSeed+i so the shards are deterministic but not identical graphs.
const hnswSeed = 20260118

// DefaultShards returns the default shard count: GOMAXPROCS clamped to
// [4,16]. The floor matters even on a single core — HNSW insertion cost
// grows with graph size, so four smaller graphs ingest roughly twice as
// fast as one big one; the ceiling keeps per-query fan-out bounded.
func DefaultShards() int {
	n := runtime.GOMAXPROCS(0)
	if n < 4 {
		n = 4
	}
	if n > 16 {
		n = 16
	}
	return n
}

// shard is one hash partition of the hybrid index. Its lock covers both
// halves plus the document store, so a reader always sees the two halves
// in agreement.
type shard struct {
	mu   sync.RWMutex
	vec  *hnsw.Index
	lex  *bm25.Index
	byID map[string]docs.Document
}

// Retriever is the sharded hybrid table-discovery index. All methods are
// safe for concurrent use.
type Retriever struct {
	emb       *embed.Embedder
	mode      Mode
	workers   int
	numShards int
	shards    []*shard
	// version counts index mutations (ingest and delete); callers that
	// cache query results use it for invalidation.
	version atomic.Uint64
}

// Option configures a Retriever.
type Option func(*Retriever)

// WithMode sets the retrieval mode (default ModeHybrid).
func WithMode(m Mode) Option {
	return func(r *Retriever) { r.mode = m }
}

// WithEmbedder replaces the default embedder.
func WithEmbedder(e *embed.Embedder) Option {
	return func(r *Retriever) { r.emb = e }
}

// WithShards sets the shard count (default DefaultShards()). Values < 1
// are ignored.
func WithShards(n int) Option {
	return func(r *Retriever) {
		if n >= 1 {
			r.numShards = n
		}
	}
}

// WithWorkers sets the embedding worker-pool size used by bulk ingest
// (default GOMAXPROCS). Values < 1 are ignored.
func WithWorkers(n int) Option {
	return func(r *Retriever) {
		if n >= 1 {
			r.workers = n
		}
	}
}

// New creates an empty retriever.
func New(opts ...Option) *Retriever {
	r := &Retriever{
		emb:       embed.New(),
		mode:      ModeHybrid,
		workers:   runtime.GOMAXPROCS(0),
		numShards: DefaultShards(),
	}
	for _, o := range opts {
		o(r)
	}
	r.shards = make([]*shard, r.numShards)
	for i := range r.shards {
		r.shards[i] = &shard{
			vec:  hnsw.New(r.emb.Dim(), hnsw.Config{Seed: hnswSeed + int64(i)}),
			lex:  bm25.New(bm25.Params{}),
			byID: make(map[string]docs.Document),
		}
	}
	return r
}

// NumShards returns the shard count.
func (r *Retriever) NumShards() int { return len(r.shards) }

// Version returns the mutation counter: it increases on every successful
// ingest or delete, so equal versions imply identical index contents.
func (r *Retriever) Version() uint64 { return r.version.Load() }

// shardIndex routes a document ID to its shard slot by FNV-1a hash. Every
// routing decision — ingest, lookup, delete — must go through here so the
// partitions can never diverge.
func (r *Retriever) shardIndex(id string) int {
	if len(r.shards) == 1 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(id))
	return int(h.Sum32() % uint32(len(r.shards)))
}

func (r *Retriever) shardFor(id string) *shard {
	return r.shards[r.shardIndex(id)]
}

// IndexTable adds a table to the index via its canonical document.
func (r *Retriever) IndexTable(t *table.Table) error {
	return r.IndexDocument(docs.TableDocument(t))
}

// IndexTables bulk-ingests a corpus of tables: canonical documents are
// built and embedded with the worker pool, then all shards are written
// concurrently. This is the fast path Seeker assembly and the CLIs use.
func (r *Retriever) IndexTables(ts []*table.Table) error {
	ds := make([]docs.Document, len(ts))
	for i, t := range ts {
		ds[i] = docs.TableDocument(t)
	}
	return r.IndexDocuments(ds)
}

// IndexDocument adds an arbitrary document to the hybrid index. The same
// indexer serves the Document Database (§3.3: "uses Pneuma-Retriever's
// indexer to store domain knowledge").
func (r *Retriever) IndexDocument(d docs.Document) error {
	vec := r.emb.Embed(d.Content)
	s := r.shardFor(d.ID)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.vec.Add(d.ID, vec); err != nil {
		return err
	}
	s.lex.Add(d.ID, d.Content)
	s.byID[d.ID] = d
	r.version.Add(1)
	return nil
}

// IndexDocuments bulk-ingests documents. Embeddings are computed with the
// configured worker pool, then each shard is populated by its own
// goroutine. Documents are sorted by ID first, so every shard sees its
// partition in the same order on every ingest of the same corpus — the
// resulting HNSW graphs, and therefore search results, are deterministic
// regardless of input permutation or goroutine scheduling.
func (r *Retriever) IndexDocuments(ds []docs.Document) error {
	if len(ds) == 0 {
		return nil
	}
	sorted := make([]docs.Document, len(ds))
	copy(sorted, ds)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })

	texts := make([]string, len(sorted))
	for i, d := range sorted {
		texts[i] = d.Content
	}
	vecs := r.emb.EmbedBatch(texts, r.workers)

	// Partition (in sorted order) so each shard goroutine inserts its
	// documents sequentially under its own lock.
	parts := make([][]int, len(r.shards))
	for i, d := range sorted {
		si := r.shardIndex(d.ID)
		parts[si] = append(parts[si], i)
	}

	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for si, part := range parts {
		if len(part) == 0 {
			continue
		}
		wg.Add(1)
		go func(si int, part []int) {
			defer wg.Done()
			s := r.shards[si]
			s.mu.Lock()
			defer s.mu.Unlock()
			for _, i := range part {
				d := sorted[i]
				if err := s.vec.Add(d.ID, vecs[i]); err != nil {
					errs[si] = err
					return
				}
				s.lex.Add(d.ID, d.Content)
				s.byID[d.ID] = d
			}
		}(si, part)
	}
	wg.Wait()
	r.version.Add(1)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Delete removes a document from both halves of its shard.
func (r *Retriever) Delete(id string) bool {
	s := r.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byID[id]; !ok {
		return false
	}
	delete(s.byID, id)
	s.vec.Delete(id)
	s.lex.Delete(id)
	r.version.Add(1)
	return true
}

// Len returns the number of indexed documents across all shards.
func (r *Retriever) Len() int {
	n := 0
	for _, s := range r.shards {
		s.mu.RLock()
		n += len(s.byID)
		s.mu.RUnlock()
	}
	return n
}

// Document returns the stored document by ID.
func (r *Retriever) Document(id string) (docs.Document, bool) {
	s := r.shardFor(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.byID[id]
	return d, ok
}

// shardHits is one shard's raw candidates for a query.
type shardHits struct {
	vec []hnsw.Result
	lex []bm25.Result
}

// Search returns the top-k documents for the query under the configured
// mode. Scores are RRF scores for hybrid mode, raw scores otherwise. The
// query fans out to all shards concurrently; per-shard candidate lists are
// merged by score with ties broken by document ID, so results are
// deterministic for a fixed index.
func (r *Retriever) Search(query string, k int) ([]docs.Document, error) {
	if k <= 0 {
		return nil, nil
	}

	// Over-fetch each side so fusion has enough candidates. Each shard
	// over-fetches the full budget: the global top-fetch is then always a
	// subset of the union of per-shard top-fetch lists.
	fetch := k * 3
	if fetch < 10 {
		fetch = 10
	}

	var qvec []float32
	if r.mode != ModeBM25Only {
		qvec = r.emb.Embed(query)
	}

	hits := make([]shardHits, len(r.shards))
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for si, s := range r.shards {
		wg.Add(1)
		go func(si int, s *shard) {
			defer wg.Done()
			s.mu.RLock()
			defer s.mu.RUnlock()
			if r.mode != ModeBM25Only {
				vr, err := s.vec.Search(qvec, fetch)
				if err != nil {
					errs[si] = err
					return
				}
				hits[si].vec = vr
			}
			if r.mode != ModeVectorOnly {
				hits[si].lex = s.lex.Search(query, fetch)
			}
		}(si, s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	var vecRes []hnsw.Result
	var lexRes []bm25.Result
	for _, h := range hits {
		vecRes = append(vecRes, h.vec...)
		lexRes = append(lexRes, h.lex...)
	}
	// Re-rank the merged candidate lists globally. BM25 scores use
	// per-shard corpus statistics (as in any distributed inverted index);
	// hash partitioning keeps shard statistics near the global ones.
	sort.Slice(vecRes, func(i, j int) bool {
		if vecRes[i].Score != vecRes[j].Score {
			return vecRes[i].Score > vecRes[j].Score
		}
		return vecRes[i].ID < vecRes[j].ID
	})
	sort.Slice(lexRes, func(i, j int) bool {
		if lexRes[i].Score != lexRes[j].Score {
			return lexRes[i].Score > lexRes[j].Score
		}
		return lexRes[i].ID < lexRes[j].ID
	})
	if len(vecRes) > fetch {
		vecRes = vecRes[:fetch]
	}
	if len(lexRes) > fetch {
		lexRes = lexRes[:fetch]
	}

	type scored struct {
		id    string
		score float64
	}
	var ranked []scored
	switch r.mode {
	case ModeVectorOnly:
		for _, h := range vecRes {
			ranked = append(ranked, scored{h.ID, float64(h.Score)})
		}
	case ModeBM25Only:
		for _, h := range lexRes {
			ranked = append(ranked, scored{h.ID, h.Score})
		}
	default:
		// Reciprocal-rank fusion across both lists.
		fused := make(map[string]float64)
		for rank, h := range vecRes {
			fused[h.ID] += 1.0 / (rrfK + float64(rank+1))
		}
		for rank, h := range lexRes {
			fused[h.ID] += 1.0 / (rrfK + float64(rank+1))
		}
		for id, s := range fused {
			ranked = append(ranked, scored{id, s})
		}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].id < ranked[j].id
	})
	if len(ranked) > k {
		ranked = ranked[:k]
	}
	out := make([]docs.Document, 0, len(ranked))
	for _, s := range ranked {
		d, ok := r.Document(s.id)
		if !ok {
			continue
		}
		d.Score = s.score
		out = append(out, d)
	}
	return out, nil
}
