package retriever

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"runtime"
	"time"

	"pneuma/internal/docs"
	"pneuma/internal/wire"
)

// Background segment compaction.
//
// The inline compaction path (diskBackend.compact) rewrites the segment
// and rebuilds the shard's in-memory state while the caller holds the
// shard's writer lock — every concurrent writer stalls for the whole
// rewrite, which grows with corpus size. The background path moves that
// work onto the group-commit flusher goroutine and takes the lock only in
// short slices, so a large compaction never stalls a writer for more than
// one slice's work:
//
//  1. Pin (locked, O(1)): drain the segment write buffer, record the
//     current segment extent as the pin point, and pin the HNSW view's
//     live set. Everything below the pin point is frozen in the pinned
//     view; everything after it will be replayed in phase 3.
//  2. Shadow build (off-lock): walk the pinned live set in chunks,
//     inserting each chunk into a fresh shadow memoryBackend and
//     appending the same records to a tmp segment under the bumped
//     generation. Between chunks the goroutine yields and services
//     pending group-commit fsyncs (it *is* the flusher, so nobody else
//     would). Writers keep appending to the live shard throughout.
//  3. Catch-up (mostly off-lock): in rounds, briefly take the lock to
//     drain the write buffer, then — unlocked — read the newly flushed
//     byte range straight off the segment file, raw-copy each record to
//     the tmp segment and replay it into the shadow. Each round shrinks
//     the un-replayed tail; the loop stops when a round catches up
//     completely or stops making progress.
//  4. Commit (locked, small): replay whatever trickled in since the last
//     round, fsync the tmp segment (the bulk was already fsynced
//     off-lock), rename it over the live segment, swap the file handle,
//     and graft the shadow's HNSW/BM25 state into the live backend via
//     AdoptFrom — an O(1) pointer adoption, not a rebuild. Searches
//     in flight keep their pinned pre-compaction views.
//
// The invariant that makes this safe is the same one the inline path
// relies on: at every step the shadow state is exactly what replaying the
// tmp segment would build, because both are fed the same records in the
// same order — phase 2 writes exactly what it inserts (even when a
// concurrent re-add makes the document store momentarily newer than the
// pinned vector, both sides see the same pair), and phase 3 applies the
// very bytes it copies. The commit does not write a snapshot: the segment
// rename invalidates the old snapshot's generation, and the next
// Flush/Close writes a fresh one outside the stall-critical section.

// compactChunk is how many live documents phase 2 moves per lock-free
// slice: large enough to amortize per-batch copy-on-write in the shadow,
// small enough that the reads-first yield and the fsync service interval
// stay tight.
const compactChunk = 64

// compactCatchupRounds bounds phase 3: each round replays the bytes the
// previous one missed, so under any write rate that compaction can outrun,
// the tail shrinks geometrically; after this many rounds the remainder is
// replayed under the lock regardless.
const compactCatchupRounds = 8

// CompactionStats aggregates segment-compaction activity across a
// retriever's disk shards (all zero for the Memory backend).
type CompactionStats struct {
	// Runs counts completed compaction rewrites, inline and background.
	Runs uint64
	// Reclaimed counts dead records (superseded adds, deleted documents
	// and their tombstones) removed across all runs.
	Reclaimed int64
	// MaxStall is the longest any single compaction phase held a shard's
	// writer lock — the worst case a concurrent writer could have waited.
	// Inline compactions count their full duration.
	MaxStall time.Duration
}

// CompactionStats returns cumulative compaction counters across all
// shards, the compaction benchmark's metric (mirroring Fsyncs for group
// commit): background mode is the claim that MaxStall stays bounded by
// one catch-up slice while Runs and Reclaimed match the inline path.
func (r *Retriever) CompactionStats() CompactionStats {
	var cs CompactionStats
	for _, s := range r.shards {
		s.mu.Lock()
		if db, ok := s.be.(*diskBackend); ok {
			cs.Runs += db.compactRuns
			cs.Reclaimed += db.compactReclaim
			if db.compactMaxStall > cs.MaxStall {
				cs.MaxStall = db.compactMaxStall
			}
		}
		s.mu.Unlock()
	}
	return cs
}

// noteCompaction records one completed rewrite (shard lock held).
func (b *diskBackend) noteCompaction(reclaimed int64, stall time.Duration) {
	b.compactRuns++
	b.compactReclaim += reclaimed
	if stall > b.compactMaxStall {
		b.compactMaxStall = stall
	}
}

// backgroundCompaction reports whether due compactions should be handed
// to the flusher goroutine instead of running inline.
func (b *diskBackend) backgroundCompaction() bool {
	return b.knobs.background && b.knobs.gc != nil
}

// scheduleCompactLocked marks the shard as wanting a background rewrite
// and wakes the flusher; if one is already scheduled or running it just
// returns the existing completion channel (shard lock held).
func (b *diskBackend) scheduleCompactLocked() chan struct{} {
	if b.compactDone == nil {
		b.compactWant = true
		b.compactDone = make(chan struct{})
		b.knobs.gc.signalCompact()
	}
	return b.compactDone
}

// flushLocked is Retriever.Flush's per-shard first half (shard lock
// held): surface parked flusher errors, fsync, and either hand a due
// compaction to the flusher — returning a channel that closes when it
// commits — or run it inline when background compaction is off. The
// snapshot is deferred to finishFlushLocked when a rewrite is pending,
// because the rewrite is about to invalidate it.
func (b *diskBackend) flushLocked() (<-chan struct{}, error) {
	if err := b.takeAsyncErr(); err != nil {
		return nil, err
	}
	if err := b.syncSegment(); err != nil {
		return nil, err
	}
	if b.shouldCompact() {
		if b.backgroundCompaction() {
			return b.scheduleCompactLocked(), nil
		}
		if err := b.compact(); err != nil {
			return nil, err
		}
	}
	if b.knobs.snapshot && b.segSize != b.snapSize {
		return nil, b.writeSnapshot()
	}
	return nil, nil
}

// finishFlushLocked is Retriever.Flush's per-shard second half, run after
// waiting out any background rewrite (shard lock held): surface a rewrite
// failure, and bring the snapshot current — records may have landed (or a
// whole compaction committed) since flushLocked, so the segment is synced
// again first to keep the snapshot's watermark inside the durable extent.
func (b *diskBackend) finishFlushLocked() error {
	if err := b.takeAsyncErr(); err != nil {
		return err
	}
	if b.knobs.snapshot && b.segSize != b.snapSize {
		if err := b.syncSegment(); err != nil {
			return err
		}
		return b.writeSnapshot()
	}
	return nil
}

// compactPendingShards runs scheduled background compactions, one shard at
// a time (flusher goroutine only).
func (r *Retriever) compactPendingShards() {
	for _, s := range r.shards {
		s.mu.Lock()
		db, ok := s.be.(*diskBackend)
		want := ok && db.compactWant
		s.mu.Unlock()
		if want {
			r.compactShard(s, db)
		}
	}
}

// drainSyncs services pending group-commit fsyncs from inside a running
// compaction: the compaction occupies the flusher goroutine, so without
// this the latency bound would stretch to the length of the rewrite.
func (r *Retriever) drainSyncs() {
	g := r.gc
	if g == nil || !g.sync {
		return
	}
	select {
	case <-g.notify:
		select {
		case <-g.kick:
		default:
		}
		r.syncPendingShards()
	default:
	}
}

// compactShard is the background rewrite described at the top of the
// file. It runs on the flusher goroutine; all shared state it touches is
// accessed in short shard-locked slices, each measured as writer stall.
func (r *Retriever) compactShard(s *shard, db *diskBackend) {
	g := r.gc
	var maxStall time.Duration
	stallSince := func(t0 time.Time) {
		if d := time.Since(t0); d > maxStall {
			maxStall = d
		}
	}
	// finish completes the run under the lock whatever happened: park err
	// for the next Flush/Close, clear the schedule, release waiters.
	finish := func(err error) {
		s.mu.Lock()
		if err != nil && db.compactErr == nil {
			db.compactErr = err
		}
		db.compactWant = false
		if db.compactDone != nil {
			close(db.compactDone)
			db.compactDone = nil
		}
		s.mu.Unlock()
	}

	// Phase 1: pin. Drain the write buffer so the file holds every record
	// below the pin point, then pin the live set those records built.
	s.mu.Lock()
	if !db.shouldCompact() {
		// A Flush raced in and compacted inline, or deletes were undone by
		// re-adds; nothing to do.
		s.mu.Unlock()
		finish(nil)
		return
	}
	t0 := time.Now()
	if err := db.w.Flush(); err != nil {
		s.mu.Unlock()
		finish(err)
		return
	}
	db.flushed = db.segSize
	base := db.segSize
	gen := db.gen
	walk := db.vec.PinLive()
	stallSince(t0)
	s.mu.Unlock()

	// Phase 2: shadow build. The shadow scores BM25 against local
	// statistics (nil Stats): the live documents' contributions are
	// already in the shared Stats object, and AdoptFrom re-points the
	// adopted view at it, so the rebuild must not count them again.
	shadow := newMemoryBackend(db.dim, db.seed, nil, db.ef, db.quant)
	tmp := db.path + ".tmp"
	tf, err := os.Create(tmp)
	if err != nil {
		finish(err)
		return
	}
	defer os.Remove(tmp) // no-op once renamed
	tmpOpen := true
	defer func() {
		if tmpOpen {
			tf.Close()
		}
	}()
	tw := bufio.NewWriterSize(tf, 1<<20)
	if err := writeSegHeader(tw, gen+1); err != nil {
		finish(err)
		return
	}
	size := int64(segHeaderSize)
	var recs int64
	var rec, frame wire.Writer

	bds := make([]docs.Document, 0, compactChunk)
	bvecs := make([][]float32, 0, compactChunk)
	flushChunk := func() error {
		if len(bds) == 0 {
			return nil
		}
		if err := shadow.IndexBatch(bds, bvecs); err != nil {
			return err
		}
		for i, d := range bds {
			rec.Reset()
			rec.Byte(opAdd)
			rec.String(d.ID)
			rec.Float32s(bvecs[i])
			encodeDoc(&rec, d)
			n, err := writeFramedRecord(tw, &frame, rec.Bytes())
			if err != nil {
				return err
			}
			size += n
			recs++
		}
		bds, bvecs = bds[:0], bvecs[:0]
		// Reads-first yield, and keep group commit honest while this
		// goroutine is busy here.
		r.drainSyncs()
		runtime.Gosched()
		return nil
	}
	var werr error
	aborted := false
	walk(func(id string, vec []float32) bool {
		select {
		case <-g.done:
			aborted = true
			return false
		default:
		}
		d, ok := db.Document(id)
		if !ok {
			// Deleted since the pin. Skipping the add keeps the shadow ≡
			// replay(tmp) invariant: the tombstone record past the pin
			// point is raw-copied in phase 3 and no-ops on both sides.
			return true
		}
		bds = append(bds, d)
		bvecs = append(bvecs, vec)
		if len(bds) == compactChunk {
			werr = flushChunk()
			return werr == nil
		}
		return true
	})
	if aborted {
		// Close is tearing the retriever down; its inline Flush handles
		// any still-due compaction.
		finish(nil)
		return
	}
	if werr == nil {
		werr = flushChunk()
	}
	if werr != nil {
		finish(werr)
		return
	}

	// Phase 3: catch-up. applyFlushed raw-copies the segment's flushed
	// byte range [lo, hi) — whole records by construction — into the tmp
	// segment while replaying each into the shadow. Reads use ReadAt
	// (positionless) so they never race the writer's appends; bytes below
	// db.flushed are immutable.
	applyFlushed := func(lo, hi int64) error {
		buf := make([]byte, hi-lo)
		if _, err := db.f.ReadAt(buf, lo); err != nil {
			return err
		}
		for off := 0; off < len(buf); {
			plen, n := binary.Uvarint(buf[off:])
			if n <= 0 || off+n+int(plen)+4 > len(buf) {
				return fmt.Errorf("retriever: compact: torn record in flushed range of %s", db.path)
			}
			payload := buf[off+n : off+n+int(plen)]
			total := n + int(plen) + 4
			if _, err := tw.Write(buf[off : off+total]); err != nil {
				return err
			}
			ok, err := applyRecord(shadow, payload)
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("retriever: compact: undecodable record in flushed range of %s", db.path)
			}
			off += total
			size += int64(total)
			recs++
		}
		return nil
	}
	cursor := base
	for round := 0; round < compactCatchupRounds; round++ {
		s.mu.Lock()
		t0 = time.Now()
		err := db.w.Flush()
		if err == nil {
			db.flushed = db.segSize
		}
		hi := db.flushed
		stallSince(t0)
		s.mu.Unlock()
		if err != nil {
			finish(err)
			return
		}
		if hi == cursor {
			break
		}
		if err := applyFlushed(cursor, hi); err != nil {
			finish(err)
			return
		}
		cursor = hi
		r.drainSyncs()
	}

	// Fsync the bulk of the tmp segment before taking the lock, so the
	// in-lock fsync below covers only the final trickle.
	if err := tw.Flush(); err != nil {
		finish(err)
		return
	}
	if err := tf.Sync(); err != nil {
		finish(err)
		return
	}

	// Phase 4: commit.
	s.mu.Lock()
	t0 = time.Now()
	before := db.records
	err = func() error {
		if err := db.w.Flush(); err != nil {
			return err
		}
		db.flushed = db.segSize
		if hi := db.flushed; hi > cursor {
			if err := applyFlushed(cursor, hi); err != nil {
				return err
			}
			cursor = hi
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		if err := tf.Sync(); err != nil {
			return err
		}
		tmpOpen = false
		if err := tf.Close(); err != nil {
			return err
		}
		if err := os.Rename(tmp, db.path); err != nil {
			return err
		}
		if err := db.swapSegment(size, recs); err != nil {
			return err
		}
		// Graft the shadow into the live backend: O(1) pointer adoption
		// published by atomic view swap, so readers never see a half
		// state. The document store and live counter need no adoption —
		// writers kept them current throughout.
		db.vec.AdoptFrom(shadow.vec)
		db.lex.AdoptFrom(shadow.lex)
		db.noteCompaction(before-recs, 0)
		return nil
	}()
	stallSince(t0)
	if err == nil {
		if maxStall > db.compactMaxStall {
			db.compactMaxStall = maxStall
		}
	}
	s.mu.Unlock()
	finish(err)
}
