// Package leakcheck is a test helper that fails a test if it leaves
// goroutines behind — the guard the concurrent-serving and cancellation
// tests run under, so an abandoned fan-out can never silently leak its
// shard workers.
//
// Usage: defer leakcheck.Check(t)() at the top of the test. The returned
// func compares the goroutine population after the test against the
// population before it, retrying with backoff to let legitimately
// finishing goroutines (pool workers draining, closed channels unwinding)
// exit before declaring a leak.
package leakcheck

import (
	"runtime"
	"strings"
	"time"
)

// TB is the subset of testing.TB the checker needs.
type TB interface {
	Helper()
	Errorf(format string, args ...interface{})
}

// Check snapshots the current goroutines and returns a func that verifies
// no new ones remain. Stacks that belong to the runtime's own machinery
// (GC, finalizers, test runner) are ignored.
func Check(t TB) func() {
	before := interesting()
	return func() {
		t.Helper()
		// Give exiting goroutines a moment to unwind; the deadline bounds
		// a genuinely leaked goroutine to a short test delay.
		deadline := time.Now().Add(2 * time.Second)
		var leaked []string
		for {
			leaked = diff(before, interesting())
			if len(leaked) == 0 || time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		for _, g := range leaked {
			t.Errorf("leaked goroutine:\n%s", g)
		}
	}
}

// interesting returns one stack trace per live goroutine, excluding
// runtime/testing infrastructure that outlives any single test.
func interesting() map[string]int {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	out := make(map[string]int)
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if g == "" || !isInteresting(g) {
			continue
		}
		out[signature(g)]++
	}
	return out
}

// isInteresting filters out goroutines the checker must tolerate.
func isInteresting(stack string) bool {
	for _, skip := range []string{
		"testing.RunTests",
		"testing.(*T).Run",
		"testing.tRunner",
		"runtime.goexit",
		"runtime.MHeap_Scavenger",
		"runtime.gc",
		"runtime.ensureSigM",
		"signal.signal_recv",
		"created by runtime",
		"leakcheck.interesting",
	} {
		if strings.Contains(stack, skip) {
			return false
		}
	}
	return true
}

// signature normalizes a goroutine stack to its function frames, dropping
// goroutine IDs and argument values so identical logic compares equal.
func signature(stack string) string {
	var frames []string
	for _, line := range strings.Split(stack, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "goroutine ") {
			continue
		}
		if i := strings.IndexByte(line, '('); i > 0 && !strings.HasPrefix(line, "/") {
			line = line[:i]
		}
		frames = append(frames, line)
	}
	return strings.Join(frames, "\n")
}

// diff reports stacks present now that were not present before (or are
// present in greater numbers).
func diff(before, after map[string]int) []string {
	var leaked []string
	for sig, n := range after {
		if n > before[sig] {
			leaked = append(leaked, sig)
		}
	}
	return leaked
}
