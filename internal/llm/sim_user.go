package llm

import (
	"fmt"
	"strings"
)

// This file implements the paper's LLM Sim (§4, Figure 3): an LLM-simulated
// domain expert that "explores and refines its question step-by-step
// depending on the system's responses", is "vague or explores tangents",
// and "only arrives at the specific question if the system's output
// correctly leads it there". Convergence is NOT guaranteed.
//
// The latent need is a NeedSpec; the active need is the ordered list of
// revealed aspects. Each turn the simulated user checks whether the
// system's last output gave it an *anchor* for the next unrevealed aspect
// (evidence that the data supports it). Anchored → reveal the next aspect.
// Not anchored → burn the turn probing. Too many fruitless probes → the
// user wanders off and never converges.

// Aspect names in reveal order. Filters get "filter:<i>".
const (
	AspectTopic    = "topic"
	AspectMeasure  = "measure"
	AspectTemporal = "temporal"
	AspectDerived  = "derived"
	AspectFinal    = "final"
)

// UserSimInput is the user-simulation skill's context: the latent need (the
// prompt's "possible eventual goal"), what kind of system it is talking to
// (Figure 3 adapts the prompt per system), and the system's last output.
type UserSimInput struct {
	Need       NeedSpec `json:"need"`
	SystemKind string   `json:"system_kind"` // "seeker", "rag", "static"
	Turn       int      `json:"turn"`
	Revealed   []string `json:"revealed,omitempty"`
	ProbeCount int      `json:"probe_count"`
	// LastMessage is the system's user-facing message (seeker/rag).
	LastMessage string `json:"last_message,omitempty"`
	// MentionedColumns is the system's interpreted column surface.
	MentionedColumns []MentionedColumn `json:"mentioned_columns,omitempty"`
	// State is the surfaced (T, Q) state view (seeker only).
	State *StateInfo `json:"state,omitempty"`
	// ShownTables are the raw tables a static system returned.
	ShownTables []TableInfo `json:"shown_tables,omitempty"`
	// LastAnswer is the concrete computed answer, when the system produced
	// one.
	LastAnswer string `json:"last_answer,omitempty"`
	// ContextOverflowed signals that the simulated user's own context
	// window overflowed and earlier system outputs were dropped (§4.1:
	// "2-3 turns are enough to exceed the limit").
	ContextOverflowed bool `json:"context_overflowed,omitempty"`
}

// UserSimOutput is the simulated user's move.
type UserSimOutput struct {
	Utterance string   `json:"utterance"`
	Revealed  []string `json:"revealed"`
	// Probing marks a turn that made no progress on the active need.
	Probing bool `json:"probing"`
	// Converged: the active need now matches the latent need and the system
	// demonstrated it understood it.
	Converged bool `json:"converged"`
	// GaveUp: the user wandered off; this conversation will not converge.
	GaveUp bool `json:"gave_up"`
}

// maxProbes is how many fruitless turns the simulated expert tolerates
// before giving up on the thread.
const maxProbes = 4

// aspectsOf lists the aspects of a need in reveal order (topic is the
// opener, final is the full question).
func aspectsOf(need NeedSpec) []string {
	out := []string{AspectTopic, AspectMeasure}
	for i := range need.Filters {
		out = append(out, fmt.Sprintf("filter:%d", i))
	}
	if need.YearFrom != 0 || need.YearTo != 0 || need.FirstLast {
		out = append(out, AspectTemporal)
	}
	if need.Interpolate {
		out = append(out, AspectDerived)
	}
	return append(out, AspectFinal)
}

// skillUserSim implements TaskUserSim.
func skillUserSim(req Request) (interface{}, error) {
	var in UserSimInput
	if err := DecodePayload(req, &in); err != nil {
		return nil, err
	}
	aspects := aspectsOf(in.Need)
	revealed := append([]string{}, in.Revealed...)

	// Opening turn: broad, vague prompt about the topic.
	if len(revealed) == 0 {
		return UserSimOutput{
			Utterance: openerUtterance(in.Need),
			Revealed:  []string{AspectTopic},
		}, nil
	}

	next := nextAspect(aspects, revealed)

	// Context overflow wipes the anchor the user was holding: re-probe.
	if in.ContextOverflowed {
		if in.ProbeCount+1 >= maxProbes {
			return UserSimOutput{
				Utterance: "I keep losing track of what we found. Let me come back to this another time.",
				Revealed:  revealed, Probing: true, GaveUp: true,
			}, nil
		}
		return UserSimOutput{
			Utterance: fmt.Sprintf(
				"That was a lot of raw output and I lost the thread. Can you show me just the part about %s again?",
				in.Need.MeasurePhrase),
			Revealed: revealed, Probing: true,
		}, nil
	}

	// All aspects already revealed: check whether the system demonstrated
	// understanding of the full question → convergence.
	if next == "" {
		if finalAnswered(in) {
			return UserSimOutput{
				Utterance: "That answers my question, thank you.",
				Revealed:  revealed, Converged: true,
			}, nil
		}
		if in.ProbeCount+1 >= maxProbes {
			return UserSimOutput{
				Utterance: "This still is not quite what I need. I will try a different approach some other time.",
				Revealed:  revealed, Probing: true, GaveUp: true,
			}, nil
		}
		return UserSimOutput{
			Utterance: "That does not look like what I asked for. " + in.Need.QuestionText,
			Revealed:  revealed, Probing: true,
		}, nil
	}

	// Check the anchor for the next aspect.
	if anchored(in, next) {
		revealed = append(revealed, next)
		return UserSimOutput{
			Utterance: revealUtterance(in.Need, next),
			Revealed:  revealed,
		}, nil
	}

	// No anchor: probe, or give up after too many probes.
	if in.ProbeCount+1 >= maxProbes {
		return UserSimOutput{
			Utterance: fmt.Sprintf(
				"I do not see anything about %s here; maybe the data just is not available. Never mind.",
				in.Need.MeasurePhrase),
			Revealed: revealed, Probing: true, GaveUp: true,
		}, nil
	}
	return UserSimOutput{
		Utterance: probeUtterance(in.Need, next, in.ProbeCount),
		Revealed:  revealed, Probing: true,
	}, nil
}

func nextAspect(aspects, revealed []string) string {
	have := make(map[string]struct{}, len(revealed))
	for _, r := range revealed {
		have[r] = struct{}{}
	}
	for _, a := range aspects {
		if _, ok := have[a]; !ok {
			return a
		}
	}
	return ""
}

// anchored decides whether the system's last output gives the user evidence
// to reveal the next aspect. This is where the four systems genuinely
// differ (§4.1):
//
//   - seeker and rag INTERPRET: they surface column meanings
//     (MentionedColumns), so an opaque physical name like "k_ppm" still
//     anchors "Potassium in ppm" through its description.
//   - static systems return raw columns and sample rows: the user must
//     interpret alone, so an aspect anchors only when the raw surface
//     (column name tokens, sample values) literally supports it.
func anchored(in UserSimInput, aspect string) bool {
	need := in.Need
	interpreting := in.SystemKind == "seeker" || in.SystemKind == "rag"
	switch {
	case aspect == AspectMeasure:
		if interpreting {
			for _, mc := range in.MentionedColumns {
				if columnMatch(need.MeasurePhrase, ColumnInfo{Name: mc.Column, Description: mc.Description}) >= 0.3 {
					return true
				}
			}
			return strings.Contains(strings.ToLower(in.LastMessage), strings.ToLower(firstWord(need.MeasurePhrase)))
		}
		// Static: the physical column name itself must be readable.
		for _, t := range in.ShownTables {
			for _, c := range t.Columns {
				if nameOverlap(need.MeasurePhrase, c.Name) {
					return true
				}
			}
		}
		return false

	case strings.HasPrefix(aspect, "filter:"):
		idx := filterIndex(aspect)
		if idx < 0 || idx >= len(need.Filters) {
			return false
		}
		val := need.Filters[idx].Value
		if interpreting {
			// The system has engaged with the measure; an interpreting
			// system explicitly invites scoping ("any region ... to focus
			// on"), so the user can bring up the filter.
			return true
		}
		// Static: the value must be visible in the shown samples.
		for _, t := range in.ShownTables {
			for _, c := range t.Columns {
				for _, s := range c.Samples {
					if strings.EqualFold(s, val) {
						return true
					}
				}
			}
		}
		return false

	case aspect == AspectTemporal:
		if interpreting {
			return true
		}
		for _, t := range in.ShownTables {
			if _, ok := findTimeColumn(t); ok {
				return true
			}
		}
		return false

	case aspect == AspectDerived:
		// Realizing interpolation is needed requires noticing missing
		// values. Interpreting systems surface gaps (their computed or
		// interpreted output makes missingness visible); raw sample rows
		// generally do not.
		return interpreting

	case aspect == AspectFinal:
		return true
	}
	return false
}

// finalAnswered checks whether the system's output after the full question
// demonstrates the aligned understanding that defines convergence.
func finalAnswered(in UserSimInput) bool {
	switch in.SystemKind {
	case "seeker":
		// The state view must exist and an executed answer must be shown.
		return in.LastAnswer != "" && in.State != nil && len(in.State.Queries) > 0
	case "rag":
		// A RAG system cannot compute. For needs whose defining assumption
		// is computational (interpolation, first/last anchoring), the user
		// can never see the assumption operate, so the active need cannot
		// be confirmed against the latent one.
		if in.Need.Interpolate || in.Need.FirstLast {
			return false
		}
		// Otherwise convergence is about the need being understood: the
		// interpretation must engage the measure.
		for _, mc := range in.MentionedColumns {
			if columnMatch(in.Need.MeasurePhrase, ColumnInfo{Name: mc.Column, Description: mc.Description}) >= 0.3 {
				return true
			}
		}
		return false
	default:
		// A static system never interprets; the user can only confirm the
		// need themselves if the raw surface exposes the measure column
		// readably AND every filter value.
		measureOK := false
		for _, t := range in.ShownTables {
			for _, c := range t.Columns {
				if nameOverlap(in.Need.MeasurePhrase, c.Name) {
					measureOK = true
				}
			}
		}
		if !measureOK {
			return false
		}
		for _, f := range in.Need.Filters {
			found := false
			for _, t := range in.ShownTables {
				for _, c := range t.Columns {
					for _, s := range c.Samples {
						if strings.EqualFold(s, f.Value) {
							found = true
						}
					}
				}
			}
			if !found {
				return false
			}
		}
		// Derived computations can never be validated against raw rows.
		return !in.Need.Interpolate && !in.Need.FirstLast
	}
}

// nameOverlap checks whether a physical column name is readable as the
// measure phrase without interpretation: some stemmed content token of the
// phrase appears among the name's tokens.
func nameOverlap(phrase, colName string) bool {
	return overlapTokens(phrase, strings.ReplaceAll(colName, "_", " "))
}

func overlapTokens(a, b string) bool {
	bt := map[string]struct{}{}
	for _, t := range tokenizeNorm(b) {
		bt[t] = struct{}{}
	}
	for _, t := range tokenizeNorm(a) {
		if len(t) <= 2 {
			continue // unit fragments like "in"/"of"; single letters (k)
		}
		if _, ok := bt[t]; ok {
			return true
		}
	}
	return false
}

func firstWord(s string) string {
	f := strings.Fields(s)
	if len(f) == 0 {
		return s
	}
	return f[0]
}

func filterIndex(aspect string) int {
	var i int
	if _, err := fmt.Sscanf(aspect, "filter:%d", &i); err != nil {
		return -1
	}
	return i
}

// --- utterance generation -------------------------------------------------

func openerUtterance(need NeedSpec) string {
	return fmt.Sprintf(
		"I'm curious to dive into the %s. Could you help me get an overview of the different variables we have for past studies?",
		need.Topic)
}

func revealUtterance(need NeedSpec, aspect string) string {
	switch {
	case aspect == AspectMeasure:
		return fmt.Sprintf("Great. I'm particularly interested in the %s measurements.", need.MeasurePhrase)
	case strings.HasPrefix(aspect, "filter:"):
		idx := filterIndex(aspect)
		f := need.Filters[idx]
		if f.ColumnPhrase != "" {
			return fmt.Sprintf("Please focus on the %s %s only.", f.Value, f.ColumnPhrase)
		}
		return fmt.Sprintf("Please focus on %s only.", f.Value)
	case aspect == AspectTemporal:
		switch {
		case need.FirstLast:
			return "I care about the first and last time the study recorded values, specifically."
		case need.YearFrom != 0 && need.YearTo != 0 && need.YearFrom != need.YearTo:
			return fmt.Sprintf("Restrict it to the years between %d and %d.", need.YearFrom, need.YearTo)
		case need.YearFrom != 0 && need.YearFrom == need.YearTo:
			return fmt.Sprintf("Only the records in %d matter for this.", need.YearFrom)
		case need.YearFrom != 0:
			return fmt.Sprintf("Only records since %d matter for this.", need.YearFrom)
		default:
			return fmt.Sprintf("Only records before %d matter for this.", need.YearTo)
		}
	case aspect == AspectDerived:
		return "Some values seem to be missing; assume the measurements are linearly interpolated between samples."
	case aspect == AspectFinal:
		return need.QuestionText
	}
	return need.QuestionText
}

func probeUtterance(need NeedSpec, aspect string, probeCount int) string {
	switch probeCount % 3 {
	case 0:
		return fmt.Sprintf("Do we have any data about %s?", need.MeasurePhrase)
	case 1:
		return fmt.Sprintf("Hmm, I was expecting something on %s related to %s. Can you look again?",
			need.MeasurePhrase, need.Topic)
	default:
		return fmt.Sprintf("Could you list what measurements exist around %s?", need.Topic)
	}
}

// tokenizeNorm is a tiny local tokenizer+stemmer wrapper (avoids importing
// textutil twice under different names in this file's hot path).
func tokenizeNorm(s string) []string {
	var out []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tok := b.String()
			// light plural strip to align "samples"/"sample"
			if len(tok) > 3 && strings.HasSuffix(tok, "s") && !strings.HasSuffix(tok, "ss") {
				tok = tok[:len(tok)-1]
			}
			out = append(out, tok)
			b.Reset()
		}
	}
	for _, r := range strings.ToLower(s) {
		if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
			b.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return out
}
