package llm

import (
	"context"
	"strings"
	"testing"
)

func simNeed() NeedSpec {
	return NeedSpec{
		Topic:         "historical soil data from the Malta region",
		MeasurePhrase: "Potassium concentration",
		MeasureColumn: "k_ppm",
		Tables:        []string{"soil_samples"},
		Aggregate:     "AVG",
		Filters:       []FilterSpec{{Column: "region", Value: "Malta", ColumnPhrase: "region"}},
		RoundTo:       4,
		QuestionText:  "What is the average Potassium concentration in the Malta region? Round your answer to 4 decimal places.",
	}
}

func runUserSim(t *testing.T, in UserSimInput) UserSimOutput {
	t.Helper()
	m := NewSimModel()
	resp, err := m.Complete(context.Background(), Request{Task: TaskUserSim, Payload: MarshalPayload(in)})
	if err != nil {
		t.Fatal(err)
	}
	var out UserSimOutput
	if err := DecodeResponse(resp, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestUserSimOpensVague(t *testing.T) {
	out := runUserSim(t, UserSimInput{Need: simNeed(), SystemKind: "seeker", Turn: 1})
	if !strings.Contains(out.Utterance, "overview") {
		t.Fatalf("opener should be vague/exploratory: %q", out.Utterance)
	}
	if out.Converged || out.GaveUp {
		t.Fatal("cannot converge on the opener")
	}
	if len(out.Revealed) != 1 || out.Revealed[0] != AspectTopic {
		t.Fatalf("revealed = %v", out.Revealed)
	}
}

func TestUserSimRevealsMeasureOnlyWhenAnchored(t *testing.T) {
	// No anchor: probe.
	out := runUserSim(t, UserSimInput{
		Need: simNeed(), SystemKind: "seeker", Turn: 2,
		Revealed:    []string{AspectTopic},
		LastMessage: "Here is some unrelated text.",
	})
	if !out.Probing {
		t.Fatalf("no anchor should force a probe, got %q", out.Utterance)
	}
	// Interpreted anchor: reveal.
	out = runUserSim(t, UserSimInput{
		Need: simNeed(), SystemKind: "seeker", Turn: 2,
		Revealed: []string{AspectTopic},
		MentionedColumns: []MentionedColumn{
			{Table: "soil_samples", Column: "k_ppm", Description: "Potassium concentration in parts per million"},
		},
	})
	if out.Probing {
		t.Fatalf("anchored measure should reveal, got probe %q", out.Utterance)
	}
	if !strings.Contains(strings.ToLower(out.Utterance), "potassium") {
		t.Fatalf("reveal should name the measure: %q", out.Utterance)
	}
}

func TestUserSimStaticNeedsReadableNames(t *testing.T) {
	// Opaque physical name without a description: a static system cannot
	// anchor the measure.
	in := UserSimInput{
		Need: simNeed(), SystemKind: "static", Turn: 2,
		Revealed: []string{AspectTopic},
		ShownTables: []TableInfo{{
			Name:    "soil_samples",
			Columns: []ColumnInfo{{Name: "k_ppm", Type: "double"}},
		}},
	}
	out := runUserSim(t, in)
	if !out.Probing {
		t.Fatal("static system with opaque names must not anchor the measure")
	}
	// A transparent name anchors.
	need := simNeed()
	need.MeasurePhrase = "organic matter percentage"
	in.Need = need
	in.ShownTables[0].Columns = []ColumnInfo{{Name: "organic_pct", Type: "double"}}
	out = runUserSim(t, in)
	if out.Probing {
		t.Fatalf("transparent name should anchor: %q", out.Utterance)
	}
}

func TestUserSimGivesUpAfterProbes(t *testing.T) {
	out := runUserSim(t, UserSimInput{
		Need: simNeed(), SystemKind: "seeker", Turn: 6,
		Revealed:    []string{AspectTopic},
		ProbeCount:  3,
		LastMessage: "nothing useful",
	})
	if !out.GaveUp {
		t.Fatal("user must give up after maxProbes fruitless turns")
	}
}

func TestUserSimOverflowBurnsTurn(t *testing.T) {
	out := runUserSim(t, UserSimInput{
		Need: simNeed(), SystemKind: "static", Turn: 3,
		Revealed:          []string{AspectTopic, AspectMeasure},
		ContextOverflowed: true,
	})
	if !out.Probing {
		t.Fatal("overflow must burn the turn")
	}
	if !strings.Contains(out.Utterance, "lost the thread") {
		t.Fatalf("overflow utterance: %q", out.Utterance)
	}
}

func TestUserSimConvergesOnAnsweredFinal(t *testing.T) {
	need := simNeed()
	revealed := []string{AspectTopic, AspectMeasure, "filter:0", AspectFinal}
	out := runUserSim(t, UserSimInput{
		Need: need, SystemKind: "seeker", Turn: 5,
		Revealed:   revealed,
		LastAnswer: "101.5027",
		State:      &StateInfo{Queries: []string{"SELECT ..."}},
	})
	if !out.Converged {
		t.Fatalf("answered final question must converge: %+v", out)
	}
	// Without a computed answer, no convergence.
	out = runUserSim(t, UserSimInput{
		Need: need, SystemKind: "seeker", Turn: 5,
		Revealed: revealed,
	})
	if out.Converged {
		t.Fatal("unanswered final question must not converge")
	}
}

func TestUserSimRAGNeverConvergesOnDerivedNeeds(t *testing.T) {
	need := simNeed()
	need.Interpolate = true
	revealed := []string{AspectTopic, AspectMeasure, "filter:0", AspectDerived, AspectFinal}
	out := runUserSim(t, UserSimInput{
		Need: need, SystemKind: "rag", Turn: 6,
		Revealed: revealed,
		MentionedColumns: []MentionedColumn{
			{Table: "soil_samples", Column: "k_ppm", Description: "Potassium concentration"},
		},
	})
	if out.Converged {
		t.Fatal("RAG cannot demonstrate a computational assumption; no convergence")
	}
}

func TestUserSimFinalUtteranceIsVerbatimQuestion(t *testing.T) {
	need := simNeed()
	out := runUserSim(t, UserSimInput{
		Need: need, SystemKind: "seeker", Turn: 4,
		Revealed: []string{AspectTopic, AspectMeasure, "filter:0"},
		MentionedColumns: []MentionedColumn{
			{Column: "k_ppm", Description: "Potassium concentration in parts per million"},
		},
	})
	if out.Utterance != need.QuestionText {
		t.Fatalf("final ask must be the latent question verbatim, got %q", out.Utterance)
	}
}

func TestAspectsOfOrdering(t *testing.T) {
	need := simNeed()
	need.YearFrom, need.YearTo = 1920, 1980
	need.Interpolate = true
	got := aspectsOf(need)
	want := []string{AspectTopic, AspectMeasure, "filter:0", AspectTemporal, AspectDerived, AspectFinal}
	if len(got) != len(want) {
		t.Fatalf("aspects = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("aspects = %v, want %v", got, want)
		}
	}
}
