package llm

import (
	"fmt"
	"sort"
)

// Pricing is a model's billing and capacity profile. Prices are USD per
// million tokens, as reported by the paper ("O4-mini incurs $1.1 and $4.4
// for every 1 million input and output tokens").
type Pricing struct {
	Name string
	// InPerM / OutPerM are the standard per-million-token prices.
	InPerM  float64
	OutPerM float64
	// LongInPerM applies to input above LongThreshold tokens per request
	// (e.g. Sonnet 4.5's long-context tier). Zero means no long tier.
	LongInPerM    float64
	LongThreshold int
	// Context is the context-window size in tokens.
	Context int
}

// Catalog lists the six models of Table 2 plus GPT-4o (the paper's LLM Sim
// model, whose 128k window drives the static baselines' overflow behaviour).
var Catalog = map[string]Pricing{
	"haiku-4.5":  {Name: "Haiku 4.5", InPerM: 1.0, OutPerM: 5.0, Context: 200_000},
	"o4-mini":    {Name: "O4-mini", InPerM: 1.1, OutPerM: 4.4, Context: 200_000},
	"o3":         {Name: "O3", InPerM: 2.0, OutPerM: 8.0, Context: 200_000},
	"gpt-5.1":    {Name: "gpt-5.1", InPerM: 1.25, OutPerM: 10.0, Context: 272_000},
	"sonnet-4.5": {Name: "Sonnet 4.5", InPerM: 3.0, OutPerM: 15.0, LongInPerM: 6.0, LongThreshold: 200_000, Context: 1_000_000},
	"opus-4.5":   {Name: "Opus 4.5", InPerM: 5.0, OutPerM: 25.0, Context: 200_000},
	"gpt-4o":     {Name: "GPT-4o", InPerM: 2.5, OutPerM: 10.0, Context: 128_000},
}

// Table2Models is the column order of the paper's Table 2.
var Table2Models = []string{"haiku-4.5", "o4-mini", "o3", "gpt-5.1", "sonnet-4.5", "opus-4.5"}

// Lookup returns the pricing entry for a model ID.
func Lookup(id string) (Pricing, error) {
	p, ok := Catalog[id]
	if !ok {
		ids := make([]string, 0, len(Catalog))
		for k := range Catalog {
			ids = append(ids, k)
		}
		sort.Strings(ids)
		return Pricing{}, fmt.Errorf("llm: unknown model %q (known: %v)", id, ids)
	}
	return p, nil
}

// Cost prices a usage total under this model: input above the long-context
// threshold (when present) bills at the long-tier rate. The threshold is
// applied to the aggregate, which matches how the paper's Table 2 prices
// the *average interaction* total.
func (p Pricing) Cost(u Usage) (in, out float64) {
	inTok := float64(u.InTokens)
	if p.LongInPerM > 0 && u.InTokens > p.LongThreshold {
		in = inTok / 1e6 * p.LongInPerM
	} else {
		in = inTok / 1e6 * p.InPerM
	}
	out = float64(u.OutTokens) / 1e6 * p.OutPerM
	return in, out
}
