package llm

import (
	"fmt"
	"strings"
)

// MaterializeInput is the Materializer's specialized context (§3.4): only
// what data integration needs — the target spec, the retrieved table
// schemas, the queries in Q (so formats can be aligned with the filters the
// queries expect), and, on repair calls, the previous plan plus the error
// the tool reported.
type MaterializeInput struct {
	Spec      TableSpec        `json:"spec"`
	Docs      []DocInfo        `json:"docs"`
	Queries   []string         `json:"queries,omitempty"`
	LastError string           `json:"last_error,omitempty"`
	PrevPlan  *MaterializePlan `json:"prev_plan,omitempty"`
}

// MatStep is one step of an integration plan.
type MatStep struct {
	// Op is "base", "join", "fuzzy_join", "parse_dates", "to_number",
	// "interpolate", "derive", or "project".
	Op string `json:"op"`
	// Table names the source table for base/join ops.
	Table string `json:"table,omitempty"`
	// Column is the op's target column.
	Column string `json:"column,omitempty"`
	// Arg carries op-specific data: join keys as "left=right", the X column
	// for interpolate, the SQL expression for derive, the comma-separated
	// projection for project.
	Arg string `json:"arg,omitempty"`
	// Lenient marks repair-loop downgrades (bad values become NULL).
	Lenient bool `json:"lenient,omitempty"`
}

// MaterializePlan is the integration program the Materializer executes —
// the equivalent of the Python/SQL code the paper's Materializer generates.
type MaterializePlan struct {
	Reasoning string    `json:"reasoning"`
	Steps     []MatStep `json:"steps"`
}

// skillMaterializePlan implements TaskMaterializePlan. First call: derive
// the plan from the spec and the schemas (inserting format-normalization
// steps by inspecting column types against what Q expects). Repair call:
// adjust the previous plan according to the tool error.
func skillMaterializePlan(req Request) (interface{}, error) {
	var in MaterializeInput
	if err := DecodePayload(req, &in); err != nil {
		return nil, err
	}
	if in.LastError != "" && in.PrevPlan != nil {
		return repairPlan(in), nil
	}
	return freshPlan(in), nil
}

func freshPlan(in MaterializeInput) MaterializePlan {
	var plan MaterializePlan
	var reasons []string
	spec := in.Spec

	plan.Steps = append(plan.Steps, MatStep{Op: "base", Table: spec.BaseTable})
	reasons = append(reasons, fmt.Sprintf("start from %s", spec.BaseTable))

	if spec.JoinTable != "" {
		op := "join"
		if spec.JoinFuzzy {
			op = "fuzzy_join"
		}
		plan.Steps = append(plan.Steps, MatStep{
			Op:    op,
			Table: spec.JoinTable,
			Arg:   spec.JoinLeftKey + "=" + spec.JoinRightKey,
		})
		reasons = append(reasons, fmt.Sprintf("%s with %s on %s=%s",
			op, spec.JoinTable, spec.JoinLeftKey, spec.JoinRightKey))
	}

	// Format alignment: inspect each needed column's type in the retrieved
	// schemas against how Q uses it (§3.4's date-format example).
	queryText := strings.ToUpper(strings.Join(in.Queries, " "))
	for _, colName := range spec.Columns {
		_, ci, ok := FindColumn(in.Docs, colName)
		if !ok {
			continue
		}
		upper := strings.ToUpper(colName)
		usedTemporally := strings.Contains(queryText, "YEAR("+upper+")") ||
			strings.Contains(queryText, "ORDER BY "+upper)
		usedNumerically := strings.Contains(queryText, "("+upper+")") ||
			strings.Contains(queryText, "( "+upper+" )")
		if ci.Type == "varchar" && usedTemporally {
			plan.Steps = append(plan.Steps, MatStep{Op: "parse_dates", Column: colName})
			reasons = append(reasons, fmt.Sprintf("%s is varchar but used temporally; parse dates", colName))
		} else if ci.Type == "varchar" && usedNumerically {
			plan.Steps = append(plan.Steps, MatStep{Op: "to_number", Column: colName})
			reasons = append(reasons, fmt.Sprintf("%s is varchar but aggregated; coerce to number", colName))
		}
	}

	for _, tr := range spec.Transforms {
		plan.Steps = append(plan.Steps, MatStep{Op: tr.Kind, Column: tr.Column, Arg: tr.Arg})
		reasons = append(reasons, fmt.Sprintf("apply %s on %s", tr.Kind, tr.Column))
	}

	if len(spec.Columns) > 0 {
		plan.Steps = append(plan.Steps, MatStep{Op: "project", Arg: strings.Join(spec.Columns, ",")})
		reasons = append(reasons, "project to the target columns")
	}
	plan.Reasoning = strings.Join(reasons, "; ")
	return plan
}

// repairPlan adjusts the previous plan based on the structured error the
// tool reported — the paper's error-feedback loop.
func repairPlan(in MaterializeInput) MaterializePlan {
	plan := *in.PrevPlan
	errText := in.LastError

	// Misspelled / renamed column with a suggestion.
	if missing, suggestion, ok := parseDidYouMean(errText); ok {
		for i := range plan.Steps {
			if strings.EqualFold(plan.Steps[i].Column, missing) {
				plan.Steps[i].Column = suggestion
			}
			if plan.Steps[i].Op == "project" {
				cols := strings.Split(plan.Steps[i].Arg, ",")
				for j, c := range cols {
					if strings.EqualFold(strings.TrimSpace(c), missing) {
						cols[j] = suggestion
					}
				}
				plan.Steps[i].Arg = strings.Join(cols, ",")
			}
		}
		plan.Reasoning = fmt.Sprintf("repair: column %q does not exist; using suggested %q", missing, suggestion)
		return plan
	}

	// Unparseable dates: downgrade to lenient (bad values → NULL) so the
	// pipeline proceeds; nulls are then interpolation targets.
	if strings.Contains(errText, "do not parse as dates") {
		col := quotedToken(errText)
		for i := range plan.Steps {
			if plan.Steps[i].Op == "parse_dates" && (col == "" || strings.EqualFold(plan.Steps[i].Column, col)) {
				plan.Steps[i].Lenient = true
			}
		}
		plan.Reasoning = "repair: some date values are malformed; re-run date parsing leniently"
		return plan
	}

	// Non-numeric values in a numeric column.
	if strings.Contains(errText, "non-numeric values") || strings.Contains(errText, "is not numeric") {
		col := quotedToken(errText)
		// If a to_number step exists for the column make it lenient;
		// otherwise insert one before the first use.
		for i := range plan.Steps {
			if plan.Steps[i].Op == "to_number" && (col == "" || strings.EqualFold(plan.Steps[i].Column, col)) {
				plan.Steps[i].Lenient = true
				plan.Reasoning = "repair: residual non-numeric values; coerce leniently"
				return plan
			}
		}
		if col != "" {
			insertAt := len(plan.Steps)
			for i, s := range plan.Steps {
				if s.Op == "interpolate" || s.Op == "project" {
					insertAt = i
					break
				}
			}
			steps := append([]MatStep{}, plan.Steps[:insertAt]...)
			steps = append(steps, MatStep{Op: "to_number", Column: col, Lenient: true})
			steps = append(steps, plan.Steps[insertAt:]...)
			plan.Steps = steps
			plan.Reasoning = fmt.Sprintf("repair: column %q holds non-numeric text; inserting numeric coercion", col)
			return plan
		}
	}

	// Interpolation without enough anchors: drop the step; the aggregate
	// will simply ignore the nulls.
	if strings.Contains(errText, "non-null values to interpolate") {
		var steps []MatStep
		for _, s := range plan.Steps {
			if s.Op != "interpolate" {
				steps = append(steps, s)
			}
		}
		plan.Steps = steps
		plan.Reasoning = "repair: too few anchor points to interpolate; skipping interpolation"
		return plan
	}

	// Equi-join produced zero rows (or key mismatch): retry fuzzily.
	if strings.Contains(errText, "join produced no rows") {
		for i := range plan.Steps {
			if plan.Steps[i].Op == "join" {
				plan.Steps[i].Op = "fuzzy_join"
			}
		}
		plan.Reasoning = "repair: exact join keys do not line up; retrying with a fuzzy join"
		return plan
	}

	plan.Reasoning = "repair: error not recognized; re-running the same plan"
	return plan
}

// parseDidYouMean extracts (missing, suggestion) from an error like
// `column "k_ppmm" not found in samples; available: ... (did you mean "k_ppm"?)`.
func parseDidYouMean(s string) (missing, suggestion string, ok bool) {
	idx := strings.Index(s, "did you mean")
	if idx < 0 {
		return "", "", false
	}
	suggestion = quotedToken(s[idx:])
	missing = quotedToken(s)
	if suggestion == "" || missing == "" {
		return "", "", false
	}
	return missing, suggestion, true
}

// quotedToken returns the first "double-quoted" token in s.
func quotedToken(s string) string {
	start := strings.IndexByte(s, '"')
	if start < 0 {
		return ""
	}
	end := strings.IndexByte(s[start+1:], '"')
	if end < 0 {
		return ""
	}
	return s[start+1 : start+1+end]
}
