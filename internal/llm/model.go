// Package llm is the project's language-model substrate and the central
// substitution documented in DESIGN.md: the paper runs Pneuma-Seeker on
// OpenAI O4-mini (and simulates users with GPT-4o); offline Go has neither,
// so this package provides
//
//   - a Model interface every agent talks through,
//   - exact token accounting over rendered prompts (Table 2),
//   - a per-model pricing catalog and context limits (Table 2 and the O3
//     context-overflow experiment),
//   - a deterministic latency model (the 70.26 s/prompt trade-off), and
//   - SimModel, a rule-engine model whose "skills" (conductor planning,
//     integration planning, user simulation, interpretation) are
//     deterministic implementations operating on structured payloads.
//
// Because every agent interaction flows through Complete with a rendered
// text prompt, context-size pressures are real: a component that stuffs too
// much into its prompt genuinely overflows the model's context window. That
// is what makes the paper's context-specialization claim measurable here.
package llm

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"
)

// ErrContextLengthExceeded is returned when a request's rendered prompt
// exceeds the model's context window — the error the paper's O3 whole-table
// baseline hits on most questions.
var ErrContextLengthExceeded = errors.New("llm: context length exceeded")

// Section is one titled block of prompt context. Components build prompts
// from sections so specialization (which sections a component includes) is
// explicit and measurable.
type Section struct {
	Title string
	Body  string
}

// Request is one model invocation.
type Request struct {
	// Task names the skill being requested (e.g. "conductor-plan"). A real
	// hosted model would ignore it; SimModel dispatches on it.
	Task string
	// System is the role-specialization system prompt (§3.1: "prompting an
	// LLM with distinct roles can help focus its behavior").
	System string
	// Sections is the specialized context for this call.
	Sections []Section
	// Payload is the machine-readable core of the prompt; it is rendered
	// into the prompt text (and counted in tokens) and parsed by SimModel.
	Payload json.RawMessage
}

// Render produces the full prompt text that is token-counted. SimModel also
// receives the structured payload, but the *cost* of a request is always
// the cost of this rendering.
func (r Request) Render() string {
	var b strings.Builder
	b.WriteString("## SYSTEM\n")
	b.WriteString(r.System)
	b.WriteString("\n## TASK\n")
	b.WriteString(r.Task)
	b.WriteByte('\n')
	for _, s := range r.Sections {
		b.WriteString("## ")
		b.WriteString(s.Title)
		b.WriteByte('\n')
		b.WriteString(s.Body)
		b.WriteByte('\n')
	}
	if len(r.Payload) > 0 {
		b.WriteString("## PAYLOAD\n")
		b.Write(r.Payload)
		b.WriteByte('\n')
	}
	return b.String()
}

// Usage is the token bill for one call.
type Usage struct {
	InTokens  int
	OutTokens int
}

// Add accumulates another usage.
func (u *Usage) Add(o Usage) {
	u.InTokens += o.InTokens
	u.OutTokens += o.OutTokens
}

// Response is one model completion.
type Response struct {
	// Text is the rendered completion (what a hosted model would return).
	Text string
	// Payload is the structured completion SimModel produced; agents parse
	// this instead of re-parsing Text.
	Payload json.RawMessage
	// Usage is the token bill.
	Usage Usage
	// Latency is the simulated wall-clock latency of the call.
	Latency time.Duration
}

// Model is the language-model interface all agents depend on.
type Model interface {
	// Name returns the model identifier (matches the pricing catalog).
	Name() string
	// ContextLimit returns the context window in tokens.
	ContextLimit() int
	// Complete runs one completion. A canceled ctx aborts the call before
	// any (simulated) inference happens and returns ctx.Err().
	Complete(ctx context.Context, req Request) (Response, error)
}

// Meter accumulates usage and simulated latency across calls, optionally
// per component — the instrument behind Table 2 and the latency trade-off.
// Recording is safe for concurrent use (many sessions share the system
// meter under the Service); the counters are unexported and read through
// Snapshot, so there is no way to race a recording session by accident.
type Meter struct {
	mu           sync.Mutex
	total        Usage
	calls        int
	totalLatency time.Duration
	byComponent  map[string]*Usage
}

// MeterSnapshot is a consistent point-in-time copy of a Meter, safe to read
// while other goroutines keep recording.
type MeterSnapshot struct {
	// Total is the summed usage at snapshot time.
	Total Usage
	// Calls is the completed-call count at snapshot time.
	Calls int
	// TotalLatency is the accumulated simulated latency at snapshot time.
	TotalLatency time.Duration
	// ByComponent holds per-component usage copies.
	ByComponent map[string]Usage
}

// NewMeter creates an empty meter.
func NewMeter() *Meter {
	return &Meter{byComponent: make(map[string]*Usage)}
}

// Record adds one call's usage under the given component label.
func (m *Meter) Record(component string, resp Response) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.total.Add(resp.Usage)
	m.calls++
	m.totalLatency += resp.Latency
	if m.byComponent == nil {
		m.byComponent = make(map[string]*Usage)
	}
	cu, ok := m.byComponent[component]
	if !ok {
		cu = &Usage{}
		m.byComponent[component] = cu
	}
	cu.Add(resp.Usage)
}

// Snapshot returns a consistent copy of the meter's counters — the only
// read path, safe while other goroutines keep recording.
func (m *Meter) Snapshot() MeterSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := MeterSnapshot{
		Total:        m.total,
		Calls:        m.calls,
		TotalLatency: m.totalLatency,
		ByComponent:  make(map[string]Usage, len(m.byComponent)),
	}
	for k, v := range m.byComponent {
		s.ByComponent[k] = *v
	}
	return s
}

// meterKey is the context key WithMeter stores a per-request meter under.
type meterKey struct{}

// WithMeter attaches a per-request (typically per-session) meter to the
// context. Every MeteredModel call made under this context records into it
// in addition to the model's own (system-wide) meter, which is how Table-2
// style accounting stays attributable per session under concurrency.
func WithMeter(ctx context.Context, m *Meter) context.Context {
	if m == nil {
		return ctx
	}
	return context.WithValue(ctx, meterKey{}, m)
}

// MeterFromContext returns the meter attached by WithMeter, or nil.
func MeterFromContext(ctx context.Context) *Meter {
	m, _ := ctx.Value(meterKey{}).(*Meter)
	return m
}

// MeteredModel wraps a Model so every call is recorded on a Meter under a
// component label, plus on any per-request meter the context carries.
type MeteredModel struct {
	Inner     Model
	Meter     *Meter
	Component string
}

// Name implements Model.
func (m *MeteredModel) Name() string { return m.Inner.Name() }

// ContextLimit implements Model.
func (m *MeteredModel) ContextLimit() int { return m.Inner.ContextLimit() }

// Complete implements Model, recording usage on success and on context
// overflow (a failed over-long call still costs the caller a round trip in
// practice; we record zero usage for it but count the call). Usage is
// recorded on the model's own meter and on the context meter (WithMeter),
// when the two differ.
func (m *MeteredModel) Complete(ctx context.Context, req Request) (Response, error) {
	resp, err := m.Inner.Complete(ctx, req)
	if err != nil {
		return resp, err
	}
	if m.Meter != nil {
		m.Meter.Record(m.Component, resp)
	}
	if cm := MeterFromContext(ctx); cm != nil && cm != m.Meter {
		cm.Record(m.Component, resp)
	}
	return resp, nil
}

// MarshalPayload is a small helper that panics on marshal failure — the
// payload DTOs are plain structs, so failure is a programming error.
func MarshalPayload(v interface{}) json.RawMessage {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("llm: marshal payload: %v", err))
	}
	return b
}
