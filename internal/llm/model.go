// Package llm is the project's language-model substrate and the central
// substitution documented in DESIGN.md: the paper runs Pneuma-Seeker on
// OpenAI O4-mini (and simulates users with GPT-4o); offline Go has neither,
// so this package provides
//
//   - a Model interface every agent talks through,
//   - exact token accounting over rendered prompts (Table 2),
//   - a per-model pricing catalog and context limits (Table 2 and the O3
//     context-overflow experiment),
//   - a deterministic latency model (the 70.26 s/prompt trade-off), and
//   - SimModel, a rule-engine model whose "skills" (conductor planning,
//     integration planning, user simulation, interpretation) are
//     deterministic implementations operating on structured payloads.
//
// Because every agent interaction flows through Complete with a rendered
// text prompt, context-size pressures are real: a component that stuffs too
// much into its prompt genuinely overflows the model's context window. That
// is what makes the paper's context-specialization claim measurable here.
package llm

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"
)

// ErrContextLengthExceeded is returned when a request's rendered prompt
// exceeds the model's context window — the error the paper's O3 whole-table
// baseline hits on most questions.
var ErrContextLengthExceeded = errors.New("llm: context length exceeded")

// Section is one titled block of prompt context. Components build prompts
// from sections so specialization (which sections a component includes) is
// explicit and measurable.
type Section struct {
	Title string
	Body  string
}

// Request is one model invocation.
type Request struct {
	// Task names the skill being requested (e.g. "conductor-plan"). A real
	// hosted model would ignore it; SimModel dispatches on it.
	Task string
	// System is the role-specialization system prompt (§3.1: "prompting an
	// LLM with distinct roles can help focus its behavior").
	System string
	// Sections is the specialized context for this call.
	Sections []Section
	// Payload is the machine-readable core of the prompt; it is rendered
	// into the prompt text (and counted in tokens) and parsed by SimModel.
	Payload json.RawMessage
}

// Render produces the full prompt text that is token-counted. SimModel also
// receives the structured payload, but the *cost* of a request is always
// the cost of this rendering.
func (r Request) Render() string {
	var b strings.Builder
	b.WriteString("## SYSTEM\n")
	b.WriteString(r.System)
	b.WriteString("\n## TASK\n")
	b.WriteString(r.Task)
	b.WriteByte('\n')
	for _, s := range r.Sections {
		b.WriteString("## ")
		b.WriteString(s.Title)
		b.WriteByte('\n')
		b.WriteString(s.Body)
		b.WriteByte('\n')
	}
	if len(r.Payload) > 0 {
		b.WriteString("## PAYLOAD\n")
		b.Write(r.Payload)
		b.WriteByte('\n')
	}
	return b.String()
}

// Usage is the token bill for one call.
type Usage struct {
	InTokens  int
	OutTokens int
}

// Add accumulates another usage.
func (u *Usage) Add(o Usage) {
	u.InTokens += o.InTokens
	u.OutTokens += o.OutTokens
}

// Response is one model completion.
type Response struct {
	// Text is the rendered completion (what a hosted model would return).
	Text string
	// Payload is the structured completion SimModel produced; agents parse
	// this instead of re-parsing Text.
	Payload json.RawMessage
	// Usage is the token bill.
	Usage Usage
	// Latency is the simulated wall-clock latency of the call.
	Latency time.Duration
}

// Model is the language-model interface all agents depend on.
type Model interface {
	// Name returns the model identifier (matches the pricing catalog).
	Name() string
	// ContextLimit returns the context window in tokens.
	ContextLimit() int
	// Complete runs one completion.
	Complete(req Request) (Response, error)
}

// Meter accumulates usage and simulated latency across calls, optionally
// per component — the instrument behind Table 2 and the latency trade-off.
type Meter struct {
	Total        Usage
	Calls        int
	TotalLatency time.Duration
	ByComponent  map[string]*Usage
}

// NewMeter creates an empty meter.
func NewMeter() *Meter {
	return &Meter{ByComponent: make(map[string]*Usage)}
}

// Record adds one call's usage under the given component label.
func (m *Meter) Record(component string, resp Response) {
	m.Total.Add(resp.Usage)
	m.Calls++
	m.TotalLatency += resp.Latency
	cu, ok := m.ByComponent[component]
	if !ok {
		cu = &Usage{}
		m.ByComponent[component] = cu
	}
	cu.Add(resp.Usage)
}

// MeteredModel wraps a Model so every call is recorded on a Meter under a
// component label.
type MeteredModel struct {
	Inner     Model
	Meter     *Meter
	Component string
}

// Name implements Model.
func (m *MeteredModel) Name() string { return m.Inner.Name() }

// ContextLimit implements Model.
func (m *MeteredModel) ContextLimit() int { return m.Inner.ContextLimit() }

// Complete implements Model, recording usage on success and on context
// overflow (a failed over-long call still costs the caller a round trip in
// practice; we record zero usage for it but count the call).
func (m *MeteredModel) Complete(req Request) (Response, error) {
	resp, err := m.Inner.Complete(req)
	if err != nil {
		return resp, err
	}
	if m.Meter != nil {
		m.Meter.Record(m.Component, resp)
	}
	return resp, nil
}

// MarshalPayload is a small helper that panics on marshal failure — the
// payload DTOs are plain structs, so failure is a programming error.
func MarshalPayload(v interface{}) json.RawMessage {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("llm: marshal payload: %v", err))
	}
	return b
}
