package llm

import (
	"strconv"
	"strings"

	"pneuma/internal/embed"
	"pneuma/internal/textutil"
)

// This file is the SimModel's natural-language-understanding core: parsing
// user utterances into Intent structures, grounded against the vocabulary
// of retrieved documents. Utterances follow the controlled grammar the user
// simulator and question generators emit; a hosted LLM slotted in through
// the Model interface would handle open language the same way these rules
// handle the closed grammar.

// nluEmbedder is shared by all similarity scoring in the skills.
var nluEmbedder = embed.New()

// Vocab is the grounding vocabulary extracted from retrieved documents.
type Vocab struct {
	Tables []TableInfo
}

// VocabFromDocs collects the table DTOs out of a retrieved document list.
func VocabFromDocs(ds []DocInfo) Vocab {
	var v Vocab
	for _, d := range ds {
		if d.Table != nil {
			v.Tables = append(v.Tables, *d.Table)
		}
	}
	return v
}

// aggregateKeywords maps utterance phrases to SQL aggregates. Multi-word
// phrases are matched before single words.
var aggregateKeywords = []struct {
	phrase string
	agg    string
}{
	{"standard deviation", "STDDEV"},
	{"how many", "COUNT"},
	{"number of", "COUNT"},
	{"average", "AVG"},
	{"mean", "AVG"},
	{"total", "SUM"},
	{"sum", "SUM"},
	{"count", "COUNT"},
	{"highest", "MAX"},
	{"maximum", "MAX"},
	{"max", "MAX"},
	{"lowest", "MIN"},
	{"minimum", "MIN"},
	{"min", "MIN"},
	{"median", "MEDIAN"},
}

// measureBoundary tokens terminate a measure phrase.
var measureBoundary = map[string]struct{}{
	"from": {}, "for": {}, "in": {}, "of": {}, "across": {}, "at": {},
	"between": {}, "recorded": {}, "over": {}, "where": {}, "during": {},
	"measurements": {}, "values": {}, "levels": {}, "readings": {},
	"assume": {}, "round": {}, "the": {}, "and": {}, "since": {}, "was": {},
	"per": {}, "by": {},
}

// overviewMarkers signal an exploratory, non-specific utterance.
var overviewMarkers = []string{
	"overview", "what variables", "what data", "what kind of data",
	"explore", "dive into", "tell me about", "get a sense", "available data",
	"what do we have", "different variables",
}

// ParseUtterance extracts the partial intent expressed by one utterance.
// Parsing is grounded: filter values only become filters when they match a
// sample value of some column in the vocabulary (or follow an explicit
// location/site marker).
func ParseUtterance(text string, vocab Vocab) Intent {
	intent := Intent{RoundTo: -1}
	lower := strings.ToLower(text)

	for _, m := range overviewMarkers {
		if strings.Contains(lower, m) {
			intent.WantOverview = true
			break
		}
	}

	// Aggregate + measure phrase. Keywords match at word boundaries only
	// ("assume" must not match "sum").
	for _, kw := range aggregateKeywords {
		idx := indexOfWord(lower, kw.phrase)
		if idx < 0 {
			continue
		}
		intent.Aggregate = kw.agg
		intent.MeasurePhrase = captureMeasurePhrase(lower[idx+len(kw.phrase):])
		break
	}
	// "interested in the X measurements", "data about X", "focus on X".
	if intent.MeasurePhrase == "" {
		for _, marker := range []string{
			"interested in", "data about", "data on", "anything on",
			"something on", "measurements exist around", "focus on",
			"look at", "care about",
		} {
			idx := indexOfWord(lower, marker)
			if idx < 0 {
				continue
			}
			phrase := captureMeasurePhrase(lower[idx+len(marker):])
			if phrase != "" && !temporalPhrase(phrase) {
				intent.MeasurePhrase = phrase
				break
			}
		}
	}

	// Temporal range: "between 1900 and 1950", "from 1900 to 1950",
	// "since 1980", "in 1975".
	intent.YearFrom, intent.YearTo = parseYearRange(lower)

	// Derived computations.
	if strings.Contains(lower, "interpolat") {
		intent.Interpolate = true
	}
	if strings.Contains(lower, "first and last") || strings.Contains(lower, "first and the last") {
		intent.FirstLast = true
	}
	if strings.Contains(lower, "relative to the previous") ||
		strings.Contains(lower, "compared to the previous") {
		intent.RelativePrev = true
	}

	// Rounding: "round ... to N decimal places".
	if n, ok := parseRounding(lower); ok {
		intent.RoundTo = n
	}

	// Filters, grounded against sample values.
	intent.Filters = parseFilters(text, vocab)

	// A "measure" phrase that is really a filter restatement ("focus on
	// the Malta region") must not shadow the actual measure.
	if intent.MeasurePhrase != "" {
		for _, f := range intent.Filters {
			if containsWord(intent.MeasurePhrase, f.Value) {
				intent.MeasurePhrase = ""
				break
			}
		}
	}

	// Topic: content words of the first sentence (used for retrieval).
	intent.Topic = topicOf(text)
	return intent
}

// capitalizedStop are capitalized grammar/discourse words that are never
// filter values.
var capitalizedStop = map[string]struct{}{
	"what": {}, "which": {}, "could": {}, "can": {}, "please": {},
	"round": {}, "assume": {}, "provide": {}, "that": {}, "this": {},
	"the": {}, "i": {}, "im": {}, "great": {}, "hmm": {}, "do": {},
	"does": {}, "is": {}, "are": {}, "how": {}, "a": {}, "an": {},
	"it": {}, "let": {}, "lets": {}, "some": {}, "only": {}, "never": {},
	"maybe": {}, "restrict": {}, "focus": {}, "tell": {}, "show": {},
	"note": {}, "thanks": {}, "ok": {}, "and": {}, "of": {}, "in": {},
}

// indexOfWord finds phrase in s at a word boundary (non-letter on both
// sides), or -1.
func indexOfWord(s, phrase string) int {
	from := 0
	for {
		idx := strings.Index(s[from:], phrase)
		if idx < 0 {
			return -1
		}
		idx += from
		beforeOK := idx == 0 || !isLetter(s[idx-1])
		end := idx + len(phrase)
		afterOK := end >= len(s) || !isLetter(s[end])
		if beforeOK && afterOK {
			return idx
		}
		from = idx + 1
	}
}

func isLetter(b byte) bool {
	return (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}

// temporalPhrase guards the measure markers against temporal/derived
// restatements ("I care about the first and last time ...").
func temporalPhrase(phrase string) bool {
	switch strings.Fields(phrase)[0] {
	case "first", "last", "missing", "value", "values", "time", "times", "year", "years":
		return true
	}
	return false
}

func isCapStop(clean string) bool {
	_, ok := capitalizedStop[strings.ToLower(clean)]
	return ok
}

// endsSentence reports whether a raw token terminates a sentence.
func endsSentence(raw string) bool {
	return strings.HasSuffix(raw, ".") || strings.HasSuffix(raw, "?") || strings.HasSuffix(raw, "!")
}

// MergeIntent folds a later partial intent into the cumulative one. Later
// information wins for scalar fields; filters accumulate (deduplicated by
// value).
func MergeIntent(acc, next Intent) Intent {
	if next.Topic != "" {
		if acc.Topic == "" {
			acc.Topic = next.Topic
		} else if !strings.Contains(acc.Topic, next.Topic) {
			acc.Topic = acc.Topic + " " + next.Topic
		}
	}
	if next.MeasurePhrase != "" {
		acc.MeasurePhrase = next.MeasurePhrase
	}
	if next.Aggregate != "" {
		acc.Aggregate = next.Aggregate
	}
	if next.YearFrom != 0 {
		acc.YearFrom = next.YearFrom
	}
	if next.YearTo != 0 {
		acc.YearTo = next.YearTo
	}
	if next.FirstLast {
		acc.FirstLast = true
	}
	if next.Interpolate {
		acc.Interpolate = true
	}
	if next.RelativePrev {
		acc.RelativePrev = true
	}
	if next.RoundTo >= 0 {
		acc.RoundTo = next.RoundTo
	}
	// Overview flag reflects only the latest utterance: once the user asks
	// for something specific, the need is no longer exploratory.
	acc.WantOverview = next.WantOverview && acc.MeasurePhrase == "" && next.MeasurePhrase == ""
	for _, f := range next.Filters {
		replaced := false
		for i, g := range acc.Filters {
			if strings.EqualFold(g.Value, f.Value) {
				replaced = true // same constraint restated
				break
			}
			// A new value for the same attribute REPLACES the old filter —
			// "actually, the Gozo region" revises "the Malta region" rather
			// than conjoining with it.
			sameCol := f.Column != "" && strings.EqualFold(f.Column, g.Column)
			samePhrase := f.Column == "" && g.Column == "" &&
				f.ColumnPhrase != "" && strings.EqualFold(f.ColumnPhrase, g.ColumnPhrase)
			if sameCol || samePhrase {
				acc.Filters[i] = f
				replaced = true
				break
			}
		}
		if !replaced {
			acc.Filters = append(acc.Filters, f)
		}
	}
	return acc
}

// ParseAll parses and merges a whole conversation's user messages — the
// stateless "re-read the conversation" behaviour of an LLM.
func ParseAll(messages []string, vocab Vocab) Intent {
	acc := Intent{RoundTo: -1}
	for _, m := range messages {
		acc = MergeIntent(acc, ParseUtterance(m, vocab))
	}
	return acc
}

func captureMeasurePhrase(rest string) string {
	tokens := strings.Fields(rest)
	var phrase []string
	for _, tok := range tokens {
		clean := strings.Trim(tok, ".,;:?!()'\"")
		lc := strings.ToLower(clean)
		if _, stop := measureBoundary[lc]; stop {
			// A leading "of"/"the" is glue, not a boundary: "average of the
			// nitrate concentration" must still capture the phrase.
			if (lc == "the" || lc == "of") && len(phrase) == 0 {
				continue
			}
			break
		}
		if clean == "" {
			break
		}
		phrase = append(phrase, clean)
		if len(phrase) >= 4 {
			break
		}
	}
	return strings.Join(phrase, " ")
}

func parseYearRange(lower string) (from, to int) {
	tokens := strings.Fields(lower)
	clean := make([]string, len(tokens))
	for i, t := range tokens {
		clean[i] = strings.Trim(t, ".,;:?!()'\"")
	}
	isYear := func(s string) (int, bool) {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1500 || n > 2100 {
			return 0, false
		}
		return n, true
	}
	for i := 0; i < len(clean); i++ {
		switch clean[i] {
		case "between":
			if i+3 < len(clean) && clean[i+2] == "and" {
				a, aok := isYear(clean[i+1])
				b, bok := isYear(clean[i+3])
				if aok && bok {
					return a, b
				}
			}
		case "from":
			if i+3 < len(clean) && (clean[i+2] == "to" || clean[i+2] == "until") {
				a, aok := isYear(clean[i+1])
				b, bok := isYear(clean[i+3])
				if aok && bok {
					return a, b
				}
			}
		case "since", "after":
			if i+1 < len(clean) {
				if a, ok := isYear(clean[i+1]); ok {
					return a, 0
				}
			}
		case "before":
			if i+1 < len(clean) {
				if b, ok := isYear(clean[i+1]); ok {
					return 0, b
				}
			}
		case "in", "during":
			if i+1 < len(clean) {
				if a, ok := isYear(clean[i+1]); ok {
					return a, a
				}
			}
		}
	}
	return 0, 0
}

func parseRounding(lower string) (int, bool) {
	idx := strings.Index(lower, "decimal place")
	if idx < 0 {
		return 0, false
	}
	// Walk backwards from the marker to the nearest integer token.
	head := strings.Fields(lower[:idx])
	for i := len(head) - 1; i >= 0 && i >= len(head)-4; i-- {
		tok := strings.Trim(head[i], ".,;:?!()'\"")
		if n, err := strconv.Atoi(tok); err == nil && n >= 0 && n <= 12 {
			return n, true
		}
	}
	return 0, false
}

// locationMarkers introduce a filter value positionally: "the Malta area",
// "at station Alpha", "site X".
var locationMarkers = map[string]struct{}{
	"area": {}, "region": {}, "site": {}, "station": {}, "location": {},
	"zone": {}, "country": {}, "suppliers": {}, "supplier": {}, "basin": {},
	"sector": {}, "category": {},
}

// parseFilters grounds filter values: a token (or bigram) becomes a filter
// when it matches a sample value of a string column in the vocabulary.
// Tokens adjacent to a location marker are accepted even without a sample
// match, with the column resolved by the marker word.
func parseFilters(text string, vocab Vocab) []FilterSpec {
	var out []FilterSpec
	seen := map[string]struct{}{}
	add := func(f FilterSpec) {
		key := strings.ToLower(f.Value)
		if _, dup := seen[key]; dup || f.Value == "" {
			return
		}
		// Word subsumption: "Point" after "Alder Point" is the same entity,
		// not a second filter.
		for _, g := range out {
			if containsWord(g.Value, f.Value) {
				return
			}
			if containsWord(f.Value, g.Value) {
				return
			}
		}
		seen[key] = struct{}{}
		out = append(out, f)
	}

	words := strings.Fields(text)
	clean := make([]string, len(words))
	for i, w := range words {
		clean[i] = strings.Trim(w, ".,;:?!()'\"")
	}

	// candidate reports whether position j can be a filter-value token:
	// capitalized, not a grammar word, not sentence-initial.
	candidate := func(j int) bool {
		if j < 0 || j >= len(clean) || clean[j] == "" {
			return false
		}
		if !isCapitalized(clean[j]) || isCapStop(clean[j]) {
			return false
		}
		if j == 0 || endsSentence(words[j-1]) {
			return false
		}
		return true
	}

	// Pass 1: sample-value grounding for capitalized tokens and bigrams.
	for i := range clean {
		if !candidate(i) {
			continue
		}
		// Try bigram first ("Alder Point"), then unigram.
		if i+1 < len(clean) && isCapitalized(clean[i+1]) && !isCapStop(clean[i+1]) {
			bigram := clean[i] + " " + clean[i+1]
			if col, ok := valueColumn(vocab, bigram); ok {
				add(FilterSpec{Column: col, Value: bigram})
				continue
			}
		}
		if col, ok := valueColumn(vocab, clean[i]); ok {
			add(FilterSpec{Column: col, Value: clean[i]})
		}
	}

	// Pass 2: location-marker adjacency: "the <X> area", "station <X>".
	for i := range clean {
		w := strings.ToLower(clean[i])
		if _, ok := locationMarkers[w]; !ok {
			continue
		}
		// marker after value: "the Malta area"
		if candidate(i - 1) {
			// Extend to a bigram value when the two preceding tokens are
			// both capitalized ("the Coastal Strip region").
			if candidate(i-2) && i >= 2 {
				add(FilterSpec{ColumnPhrase: w, Value: clean[i-2] + " " + clean[i-1]})
			} else {
				add(FilterSpec{ColumnPhrase: w, Value: clean[i-1]})
			}
		}
		// marker before value: "station Alpha" — but not across a sentence
		// boundary ("...region. Could you...").
		if i+1 < len(clean) && candidate(i+1) && !endsSentence(words[i]) {
			add(FilterSpec{ColumnPhrase: w, Value: clean[i+1]})
		}
	}
	return out
}

func isCapitalized(w string) bool {
	if w == "" {
		return false
	}
	c := w[0]
	return 'A' <= c && c <= 'Z'
}

// valueColumn finds the string column whose sample values contain v.
func valueColumn(vocab Vocab, v string) (string, bool) {
	for _, t := range vocab.Tables {
		for _, c := range t.Columns {
			if c.Type != "varchar" {
				continue
			}
			for _, s := range c.Samples {
				if strings.EqualFold(s, v) {
					return c.Name, true
				}
			}
		}
	}
	return "", false
}

// topicOf extracts retrieval-worthy content words from an utterance.
func topicOf(text string) string {
	toks := textutil.NormalizeTokens(text)
	var keep []string
	for _, t := range toks {
		if len(t) <= 2 {
			continue
		}
		switch t {
		case "curiou", "interest", "overview", "different", "variable",
			"could", "help", "want", "would", "like", "know", "please",
			"explore", "dive", "historical", "past", "get", "answer",
			"round", "decimal", "place", "assume", "record", "specific":
			continue
		}
		keep = append(keep, t)
		if len(keep) >= 8 {
			break
		}
	}
	return strings.Join(keep, " ")
}

// columnMatch scores how well a column matches a measure phrase, blending
// token containment over name+description+unit with embedding similarity.
func columnMatch(phrase string, c ColumnInfo) float64 {
	if phrase == "" {
		return 0
	}
	colText := strings.ReplaceAll(c.Name, "_", " ") + " " + c.Description + " " + c.Unit
	overlap := textutil.TokenOverlap(phrase, colText)
	sim := float64(nluEmbedder.Similarity(phrase, colText))
	return 0.65*overlap + 0.35*sim
}

// ResolveMeasure finds the best-matching (table, column) for a measure
// phrase. The conversation topic breaks ties between equally matching
// columns in different tables ("mass" in an artifacts conversation means
// artifacts.mass_g, not radiocarbon_dates.sample_mass_mg). ambiguous is
// true when two columns from different tables still tie within 0.05 — the
// signal for a clarifying question.
func ResolveMeasure(vocab Vocab, phrase, topic string) (tbl TableInfo, col ColumnInfo, score float64, ambiguous bool) {
	type cand struct {
		t TableInfo
		c ColumnInfo
		s float64
	}
	var best, second cand
	for _, t := range vocab.Tables {
		topicBoost := 0.0
		if topic != "" {
			topicBoost = 0.35 * textutil.TokenOverlap(topic, t.Name+" "+t.Description)
		}
		for _, c := range t.Columns {
			// Measures are numeric, or text columns whose samples are
			// mostly numeric (dirty numeric columns awaiting coercion).
			if c.Type != "double" && c.Type != "bigint" && !mostlyNumericSamples(c) {
				continue
			}
			s := columnMatch(phrase, c)
			if s > 0 {
				s += topicBoost
			}
			if s > best.s {
				second = best
				best = cand{t, c, s}
			} else if s > second.s {
				second = cand{t, c, s}
			}
		}
	}
	const threshold = 0.30
	if best.s < threshold {
		return TableInfo{}, ColumnInfo{}, best.s, false
	}
	amb := second.s > 0 && best.s-second.s < 0.05 && second.t.Name != best.t.Name
	return best.t, best.c, best.s, amb
}

// ResolveFilterColumn resolves a filter against a table, returning the
// physical column and the canonical value to filter on. Resolution order:
// the pre-grounded column, an exact sample-value hit, a fuzzy sample-value
// hit (so "Maltese" canonicalizes to the stored value "Malta"), and finally
// a column-phrase match ("area", "station") against names and descriptions.
func ResolveFilterColumn(t TableInfo, f FilterSpec) (column, canonical string, ok bool) {
	if f.Column != "" {
		if _, found := findCol(t, f.Column); found {
			return f.Column, f.Value, true
		}
	}
	bestPhrase, bestPhraseScore := "", 0.0
	bestFuzzyCol, bestFuzzyVal, bestFuzzyScore := "", "", 0.0
	for _, c := range t.Columns {
		if c.Type != "varchar" {
			continue
		}
		for _, s := range c.Samples {
			if strings.EqualFold(s, f.Value) {
				return c.Name, s, true
			}
			if sim := valueSimilarity(s, f.Value); sim >= 0.7 && sim > bestFuzzyScore {
				bestFuzzyCol, bestFuzzyVal, bestFuzzyScore = c.Name, s, sim
			}
		}
		if f.ColumnPhrase != "" {
			if s := columnPhraseMatch(f.ColumnPhrase, c); s > bestPhraseScore {
				bestPhrase, bestPhraseScore = c.Name, s
			}
		}
	}
	if bestFuzzyScore > 0 {
		return bestFuzzyCol, bestFuzzyVal, true
	}
	if bestPhraseScore >= 0.3 {
		return bestPhrase, f.Value, true
	}
	return "", "", false
}

// valueSimilarity scores how likely two value strings denote the same
// entity: the max of normalized edit similarity and a prefix score that
// handles demonyms and inflections ("Maltese" → "Malta").
func valueSimilarity(a, b string) float64 {
	la, lb := strings.ToLower(a), strings.ToLower(b)
	sim := textutil.Similarity(la, lb)
	cp := commonPrefixLen(la, lb)
	minLen := len(la)
	if len(lb) < minLen {
		minLen = len(lb)
	}
	if cp >= 4 && minLen > 0 {
		if p := float64(cp) / float64(minLen); p > sim {
			sim = p
		}
	}
	return sim
}

func commonPrefixLen(a, b string) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}

// containsWord reports whether needle appears as a whole word sequence
// inside hay (case-insensitive).
func containsWord(hay, needle string) bool {
	h := " " + strings.ToLower(hay) + " "
	n := " " + strings.ToLower(needle) + " "
	return strings.Contains(h, n)
}

func columnPhraseMatch(phrase string, c ColumnInfo) float64 {
	colText := strings.ReplaceAll(c.Name, "_", " ") + " " + c.Description
	overlap := textutil.TokenOverlap(phrase, colText)
	sim := float64(nluEmbedder.Similarity(phrase, colText))
	if overlap > sim {
		return overlap
	}
	return sim
}

// mostlyNumericSamples reports whether a varchar column's samples are
// predominantly parseable numbers — a dirty numeric column.
func mostlyNumericSamples(c ColumnInfo) bool {
	if c.Type != "varchar" || len(c.Samples) == 0 {
		return false
	}
	numeric := 0
	for _, s := range c.Samples {
		if _, err := strconv.ParseFloat(strings.TrimSpace(s), 64); err == nil {
			numeric++
		}
	}
	return numeric*2 > len(c.Samples)
}

func findCol(t TableInfo, name string) (ColumnInfo, bool) {
	for _, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return c, true
		}
	}
	return ColumnInfo{}, false
}

// findTimeColumn locates the temporal column of a table: a timestamp-typed
// column, or a numeric column named like a year.
func findTimeColumn(t TableInfo) (ColumnInfo, bool) {
	for _, c := range t.Columns {
		if c.Type == "timestamp" {
			return c, true
		}
	}
	for _, c := range t.Columns {
		lc := strings.ToLower(c.Name)
		if strings.Contains(lc, "year") || strings.Contains(lc, "date") || strings.Contains(lc, "time") {
			return c, true
		}
	}
	return ColumnInfo{}, false
}
