package llm

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// SkillFunc is one deterministic skill of the SimModel: it receives the
// request (whose Payload it unmarshals) and returns a structured result
// that becomes the response payload.
type SkillFunc func(req Request) (interface{}, error)

// SimModel is the deterministic rule-engine language model. It dispatches
// on Request.Task to a registered skill, bills tokens for the rendered
// prompt and the rendered completion, enforces its context window, and
// reports simulated latency. Construction registers the built-in skills
// (conductor planning, integration planning, user simulation,
// interpretation, question decomposition).
type SimModel struct {
	mu      sync.RWMutex
	name    string
	context int
	latency LatencyModel
	skills  map[string]SkillFunc
}

// SimOption configures a SimModel.
type SimOption func(*SimModel)

// WithProfile sets the model's identity and context limit from the pricing
// catalog entry id (e.g. "o4-mini", "o3", "gpt-4o").
func WithProfile(id string) SimOption {
	return func(m *SimModel) {
		if p, err := Lookup(id); err == nil {
			m.name = id
			m.context = p.Context
		}
	}
}

// WithLatency overrides the latency model.
func WithLatency(l LatencyModel) SimOption {
	return func(m *SimModel) { m.latency = l }
}

// WithContextLimit overrides the context window.
func WithContextLimit(n int) SimOption {
	return func(m *SimModel) { m.context = n }
}

// NewSimModel builds the model. The default profile is o4-mini, the model
// the paper runs Pneuma-Seeker on.
func NewSimModel(opts ...SimOption) *SimModel {
	m := &SimModel{
		name:    "o4-mini",
		context: Catalog["o4-mini"].Context,
		latency: DefaultLatency,
		skills:  make(map[string]SkillFunc),
	}
	registerBuiltinSkills(m)
	for _, o := range opts {
		o(m)
	}
	return m
}

// RegisterSkill adds or replaces a skill.
func (m *SimModel) RegisterSkill(task string, fn SkillFunc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.skills[task] = fn
}

// Name implements Model.
func (m *SimModel) Name() string { return m.name }

// ContextLimit implements Model.
func (m *SimModel) ContextLimit() int { return m.context }

// Complete implements Model. The context is honored before any simulated
// inference: a canceled ctx returns ctx.Err() without billing tokens.
func (m *SimModel) Complete(ctx context.Context, req Request) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	prompt := req.Render()
	inTokens := EstimateTokens(prompt)
	if m.context > 0 && inTokens > m.context {
		return Response{}, fmt.Errorf("%w: prompt is %d tokens, %s allows %d",
			ErrContextLengthExceeded, inTokens, m.name, m.context)
	}
	m.mu.RLock()
	skill, ok := m.skills[req.Task]
	m.mu.RUnlock()
	if !ok {
		return Response{}, fmt.Errorf("llm: sim model has no skill %q (known: %v)", req.Task, m.skillNames())
	}
	result, err := skill(req)
	if err != nil {
		return Response{}, fmt.Errorf("llm: skill %s: %w", req.Task, err)
	}
	payload, err := json.Marshal(result)
	if err != nil {
		return Response{}, fmt.Errorf("llm: skill %s produced unmarshalable result: %w", req.Task, err)
	}
	text := string(payload)
	usage := Usage{InTokens: inTokens, OutTokens: EstimateTokens(text)}
	return Response{
		Text:    text,
		Payload: payload,
		Usage:   usage,
		Latency: m.latency.For(usage),
	}, nil
}

func (m *SimModel) skillNames() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	names := make([]string, 0, len(m.skills))
	for n := range m.skills {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DecodePayload unmarshals a request payload into dst with a helpful error.
func DecodePayload(req Request, dst interface{}) error {
	if len(req.Payload) == 0 {
		return fmt.Errorf("request for task %s has no payload", req.Task)
	}
	if err := json.Unmarshal(req.Payload, dst); err != nil {
		return fmt.Errorf("payload for task %s does not decode: %w", req.Task, err)
	}
	return nil
}

// DecodeResponse unmarshals a response payload into dst.
func DecodeResponse(resp Response, dst interface{}) error {
	if err := json.Unmarshal(resp.Payload, dst); err != nil {
		return fmt.Errorf("response payload does not decode: %w", err)
	}
	return nil
}

// registerBuiltinSkills wires the deterministic skills defined in the
// sim_*.go files.
func registerBuiltinSkills(m *SimModel) {
	m.RegisterSkill(TaskConductorPlan, skillConductorPlan)
	m.RegisterSkill(TaskMaterializePlan, skillMaterializePlan)
	m.RegisterSkill(TaskUserSim, skillUserSim)
	m.RegisterSkill(TaskInterpret, skillInterpret)
	m.RegisterSkill(TaskDecompose, skillDecompose)
}

// Task names for the built-in skills.
const (
	// TaskConductorPlan is the Conductor's next-action planning skill.
	TaskConductorPlan = "conductor-plan"
	// TaskMaterializePlan is the Materializer's integration-planning skill
	// (also used for repair: the payload carries the last error).
	TaskMaterializePlan = "materialize-plan"
	// TaskUserSim is the LLM Sim user-simulation skill.
	TaskUserSim = "user-sim"
	// TaskInterpret is the RAG baseline's retrieve-then-interpret skill.
	TaskInterpret = "interpret"
	// TaskDecompose is DS-Guru's question-decomposition skill.
	TaskDecompose = "decompose"
)
