package llm

import (
	"pneuma/internal/docs"
	"pneuma/internal/table"
)

// The DTOs in this file are the machine-readable halves of the prompts the
// agents send. They are marshalled into Request.Payload (and therefore
// token-counted as part of the rendered prompt) and parsed by SimModel's
// skills. A hosted model would read the same JSON out of the prompt text.

// ColumnInfo describes one column for a prompt.
type ColumnInfo struct {
	Name        string   `json:"name"`
	Type        string   `json:"type"`
	Description string   `json:"description,omitempty"`
	Unit        string   `json:"unit,omitempty"`
	Samples     []string `json:"samples,omitempty"`
	Min         string   `json:"min,omitempty"`
	Max         string   `json:"max,omitempty"`
}

// TableInfo describes one table for a prompt.
type TableInfo struct {
	Name        string       `json:"name"`
	Description string       `json:"description,omitempty"`
	NumRows     int          `json:"num_rows"`
	Columns     []ColumnInfo `json:"columns"`
}

// DocInfo is one retrieved document for a prompt.
type DocInfo struct {
	ID      string     `json:"id"`
	Kind    string     `json:"kind"`
	Title   string     `json:"title"`
	Source  string     `json:"source"`
	Snippet string     `json:"snippet,omitempty"`
	Table   *TableInfo `json:"table,omitempty"`
}

// StateInfo is the (T, Q) shared state as shown to the model and user.
type StateInfo struct {
	Tables       []TableInfo `json:"tables"`
	Queries      []string    `json:"queries"`
	Materialized bool        `json:"materialized"`
	// Specs are the raw target-table specifications, including planned
	// transforms — what state comparisons must be made against.
	Specs []TableSpec `json:"specs,omitempty"`
	// ResultPreview is the rendered head of the last executed query result.
	ResultPreview string `json:"result_preview,omitempty"`
}

// FilterSpec is one filter constraint of an information need.
type FilterSpec struct {
	// ColumnPhrase is how a user would describe the column ("the site").
	ColumnPhrase string `json:"column_phrase,omitempty"`
	// Column is the resolved physical column (ground truth in NeedSpec,
	// resolved at runtime in intents).
	Column string `json:"column,omitempty"`
	// Value is the literal filter value ("Malta").
	Value string `json:"value"`
}

// NeedSpec is a structured latent information need: the ground truth behind
// one benchmark question. The user simulator reveals it gradually; the
// oracle computes its answer directly from the data.
type NeedSpec struct {
	// Topic is the broad subject for the opening prompt ("historical data
	// from the Maltese region").
	Topic string `json:"topic"`
	// MeasurePhrase is the user-language description of the measure
	// ("Potassium in ppm").
	MeasurePhrase string `json:"measure_phrase"`
	// MeasureColumn is the ground-truth physical column ("k_ppm").
	MeasureColumn string `json:"measure_column"`
	// Tables lists the ground-truth table(s) involved.
	Tables []string `json:"tables"`
	// JoinTable/JoinKey describe a required join for multi-table needs.
	JoinTable string `json:"join_table,omitempty"`
	JoinKey   string `json:"join_key,omitempty"`
	// Aggregate is AVG, SUM, COUNT, MIN, MAX, MEDIAN or STDDEV.
	Aggregate string `json:"aggregate"`
	// Filters are the constraint values.
	Filters []FilterSpec `json:"filters,omitempty"`
	// YearFrom/YearTo bound a temporal column when non-zero.
	YearFrom int `json:"year_from,omitempty"`
	YearTo   int `json:"year_to,omitempty"`
	// TimeColumn is the temporal column the range applies to.
	TimeColumn string `json:"time_column,omitempty"`
	// FirstLast asks for the average of the first and last recorded values.
	FirstLast bool `json:"first_last,omitempty"`
	// Interpolate asks for linear interpolation of missing measures.
	Interpolate bool `json:"interpolate,omitempty"`
	// RoundTo is the requested number of decimal places (-1: none).
	RoundTo int `json:"round_to"`
	// QuestionText is the full latent question (the benchmark item).
	QuestionText string `json:"question_text"`
}

// Intent is the model's parsed, cumulative understanding of what the user
// has asked for so far. It mirrors NeedSpec but is built bottom-up from
// utterances and grounded against retrieved vocabulary.
type Intent struct {
	WantOverview  bool         `json:"want_overview"`
	Topic         string       `json:"topic,omitempty"`
	MeasurePhrase string       `json:"measure_phrase,omitempty"`
	Aggregate     string       `json:"aggregate,omitempty"`
	Filters       []FilterSpec `json:"filters,omitempty"`
	YearFrom      int          `json:"year_from,omitempty"`
	YearTo        int          `json:"year_to,omitempty"`
	FirstLast     bool         `json:"first_last,omitempty"`
	Interpolate   bool         `json:"interpolate,omitempty"`
	RelativePrev  bool         `json:"relative_prev,omitempty"`
	RoundTo       int          `json:"round_to"`
}

// NewTableInfo converts a table into its prompt DTO with per-column stats
// and up to sampleVals sample values.
func NewTableInfo(t *table.Table, sampleVals int) TableInfo {
	p := t.BuildProfile()
	ti := TableInfo{Name: t.Schema.Name, Description: t.Schema.Description, NumRows: t.NumRows()}
	for i, c := range t.Schema.Columns {
		ci := ColumnInfo{
			Name:        c.Name,
			Type:        c.Type.String(),
			Description: c.Description,
			Unit:        c.Unit,
		}
		cs := p.Columns[i]
		if !cs.Min.IsNull() {
			ci.Min, ci.Max = cs.Min.String(), cs.Max.String()
		}
		n := sampleVals
		if n > len(cs.SampleValues) {
			n = len(cs.SampleValues)
		}
		ci.Samples = append(ci.Samples, cs.SampleValues[:n]...)
		ti.Columns = append(ti.Columns, ci)
	}
	return ti
}

// NewDocInfo converts a retrieval document into its prompt DTO.
func NewDocInfo(d docs.Document, sampleVals int) DocInfo {
	di := DocInfo{
		ID:     d.ID,
		Kind:   string(d.Kind),
		Title:  d.Title,
		Source: d.Source,
	}
	if d.Table != nil {
		ti := NewTableInfo(d.Table, sampleVals)
		di.Table = &ti
	} else {
		snippet := d.Content
		if len(snippet) > 400 {
			snippet = snippet[:400]
		}
		di.Snippet = snippet
	}
	return di
}

// FindColumn locates a column by name across the tables of a DocInfo list,
// returning the owning table and column. Used by skills for grounding.
func FindColumn(docsList []DocInfo, column string) (TableInfo, ColumnInfo, bool) {
	for _, d := range docsList {
		if d.Table == nil {
			continue
		}
		for _, c := range d.Table.Columns {
			if equalFold(c.Name, column) {
				return *d.Table, c, true
			}
		}
	}
	return TableInfo{}, ColumnInfo{}, false
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}
