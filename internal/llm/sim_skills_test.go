package llm

import (
	"context"
	"strings"
	"testing"
)

// callConductor runs the conductor-plan skill directly.
func callConductor(t *testing.T, in ConductorInput) ConductorDecision {
	t.Helper()
	m := NewSimModel()
	resp, err := m.Complete(context.Background(), Request{Task: TaskConductorPlan, Payload: MarshalPayload(in)})
	if err != nil {
		t.Fatal(err)
	}
	var dec ConductorDecision
	if err := DecodeResponse(resp, &dec); err != nil {
		t.Fatal(err)
	}
	return dec
}

func conductorDocs() []DocInfo {
	v := testVocab()
	out := make([]DocInfo, len(v.Tables))
	for i := range v.Tables {
		ti := v.Tables[i]
		out[i] = DocInfo{ID: "table:" + ti.Name, Kind: "table", Title: ti.Name, Table: &ti}
	}
	return out
}

func TestConductorRetrievesFirst(t *testing.T) {
	dec := callConductor(t, ConductorInput{
		UserMessages: []string{"I'm curious about soil chemistry in Malta. Could you give me an overview?"},
	})
	if dec.Action != ActionRetrieve {
		t.Fatalf("action = %q, want retrieve (grounding before anything else)", dec.Action)
	}
	if dec.RetrievalQuery == "" {
		t.Fatal("retrieval needs a query")
	}
	if dec.Reasoning == "" {
		t.Fatal("every decision carries ReAct-style reasoning")
	}
}

func TestConductorOverviewAfterRetrieval(t *testing.T) {
	dec := callConductor(t, ConductorInput{
		UserMessages:    []string{"Could you give me an overview of the different variables we have?"},
		Docs:            conductorDocs(),
		RetrievalRounds: 1,
	})
	if dec.Action != ActionRespond {
		t.Fatalf("action = %q, want respond", dec.Action)
	}
	if len(dec.MentionedColumns) == 0 {
		t.Fatal("overview must interpret columns")
	}
}

func TestConductorUpdatesStateForConcreteNeed(t *testing.T) {
	dec := callConductor(t, ConductorInput{
		UserMessages: []string{
			"What is the average Potassium in ppm for soil samples in the Malta region?",
		},
		Docs:            conductorDocs(),
		RetrievalRounds: 1,
	})
	if dec.Action != ActionUpdateState {
		t.Fatalf("action = %q, want update_state", dec.Action)
	}
	if len(dec.StateTables) != 1 || dec.StateTables[0].BaseTable != "soil_samples" {
		t.Fatalf("spec = %+v", dec.StateTables)
	}
	if len(dec.StateQueries) != 1 || !strings.Contains(dec.StateQueries[0], "AVG(k_ppm)") {
		t.Fatalf("queries = %v", dec.StateQueries)
	}
}

func TestConductorMaterializeThenExecuteThenRespond(t *testing.T) {
	// Same need, state already matching: next is materialize.
	spec := TableSpec{Name: "target_soil_samples", BaseTable: "soil_samples",
		Columns: []string{"region", "k_ppm"}}
	queries := []string{"SELECT AVG(k_ppm) AS answer FROM target_soil_samples WHERE region = 'Malta'"}
	base := ConductorInput{
		UserMessages:    []string{"What is the average Potassium in ppm for soil samples in the Malta region?"},
		Docs:            conductorDocs(),
		RetrievalRounds: 1,
		State: StateInfo{
			Specs: []TableSpec{spec}, Queries: queries,
			Tables: []TableInfo{{Name: "target_soil_samples",
				Columns: []ColumnInfo{{Name: "region"}, {Name: "k_ppm"}}}},
		},
	}
	dec := callConductor(t, base)
	if dec.Action != ActionMaterialize {
		t.Fatalf("unmaterialized state → %q, want materialize", dec.Action)
	}
	base.State.Materialized = true
	dec = callConductor(t, base)
	if dec.Action != ActionExecute {
		t.Fatalf("materialized, unexecuted → %q, want execute", dec.Action)
	}
	base.State.ResultPreview = "| answer |\n| 101.2 |"
	dec = callConductor(t, base)
	if dec.Action != ActionRespond {
		t.Fatalf("executed → %q, want respond", dec.Action)
	}
	if !strings.Contains(dec.Message, "101.2") {
		t.Fatalf("answer message must ground in the result preview: %q", dec.Message)
	}
}

func TestConductorClarifiesUnresolvableMeasure(t *testing.T) {
	dec := callConductor(t, ConductorInput{
		UserMessages:    []string{"What is the average ratio of alpha to omega in the Malta region?"},
		Docs:            conductorDocs(),
		RetrievalRounds: 3, // retrieval exhausted
	})
	if dec.Action != ActionClarify {
		t.Fatalf("action = %q, want clarify (never hallucinate a schema)", dec.Action)
	}
}

func TestConductorRetriesRetrievalBeforeClarifying(t *testing.T) {
	dec := callConductor(t, ConductorInput{
		UserMessages:    []string{"What is the average wind speed reading?"},
		Docs:            conductorDocs(), // has no weather table
		RetrievalRounds: 1,
	})
	if dec.Action != ActionRetrieve {
		t.Fatalf("action = %q, want a focused re-retrieval", dec.Action)
	}
	if dec.RetrievalQuery != "wind speed reading" {
		t.Fatalf("re-retrieval must use the measure phrase alone, got %q", dec.RetrievalQuery)
	}
}

// callMaterializer runs the materialize-plan skill directly.
func callMaterializer(t *testing.T, in MaterializeInput) MaterializePlan {
	t.Helper()
	m := NewSimModel()
	resp, err := m.Complete(context.Background(), Request{Task: TaskMaterializePlan, Payload: MarshalPayload(in)})
	if err != nil {
		t.Fatal(err)
	}
	var plan MaterializePlan
	if err := DecodeResponse(resp, &plan); err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestMaterializePlanInsertsFormatAlignment(t *testing.T) {
	in := MaterializeInput{
		Spec: TableSpec{
			Name: "t", BaseTable: "artifacts",
			Columns: []string{"region", "catalog_date", "grade"},
		},
		Docs: []DocInfo{{
			ID: "table:artifacts", Kind: "table", Title: "artifacts",
			Table: &TableInfo{Name: "artifacts", Columns: []ColumnInfo{
				{Name: "region", Type: "varchar"},
				{Name: "catalog_date", Type: "varchar"},
				{Name: "grade", Type: "bigint"},
			}},
		}},
		Queries: []string{"SELECT AVG(grade) AS answer FROM t WHERE YEAR(catalog_date) BETWEEN 1960 AND 1980"},
	}
	plan := callMaterializer(t, in)
	hasParse := false
	for _, s := range plan.Steps {
		if s.Op == "parse_dates" && s.Column == "catalog_date" {
			hasParse = true
			if s.Lenient {
				t.Error("first plan must be strict (lenience is a repair decision)")
			}
		}
	}
	if !hasParse {
		t.Fatalf("plan missing date normalization for a varchar column used temporally: %+v", plan.Steps)
	}
}

func TestMaterializeRepairDowngradesToLenient(t *testing.T) {
	prev := MaterializePlan{Steps: []MatStep{
		{Op: "base", Table: "artifacts"},
		{Op: "parse_dates", Column: "catalog_date"},
		{Op: "project", Arg: "region,catalog_date,grade"},
	}}
	in := MaterializeInput{
		Spec:      TableSpec{Name: "t", BaseTable: "artifacts"},
		LastError: `transform PARSE_DATES: column "catalog_date" contains values that do not parse as dates (examples: "n.d.")`,
		PrevPlan:  &prev,
	}
	plan := callMaterializer(t, in)
	for _, s := range plan.Steps {
		if s.Op == "parse_dates" && !s.Lenient {
			t.Fatal("repair must downgrade date parsing to lenient")
		}
	}
}

func TestMaterializeRepairFixesColumnName(t *testing.T) {
	prev := MaterializePlan{Steps: []MatStep{
		{Op: "base", Table: "soil"},
		{Op: "to_number", Column: "k_ppmm"},
		{Op: "project", Arg: "region,k_ppmm"},
	}}
	in := MaterializeInput{
		Spec:      TableSpec{Name: "t", BaseTable: "soil"},
		LastError: `transform TO_NUMBER: column "k_ppmm" not found in soil; available: region, k_ppm (did you mean "k_ppm"?)`,
		PrevPlan:  &prev,
	}
	plan := callMaterializer(t, in)
	for _, s := range plan.Steps {
		if s.Column == "k_ppmm" || strings.Contains(s.Arg, "k_ppmm") {
			t.Fatalf("repair left the misspelled column in place: %+v", s)
		}
	}
}

func TestMaterializeRepairSwitchesToFuzzyJoin(t *testing.T) {
	prev := MaterializePlan{Steps: []MatStep{
		{Op: "base", Table: "a"},
		{Op: "join", Table: "b", Arg: "name=name"},
	}}
	in := MaterializeInput{
		Spec:      TableSpec{Name: "t", BaseTable: "a"},
		LastError: "transform JOIN: join produced no rows on name=name — key values may not line up exactly",
		PrevPlan:  &prev,
	}
	plan := callMaterializer(t, in)
	found := false
	for _, s := range plan.Steps {
		if s.Op == "fuzzy_join" {
			found = true
		}
	}
	if !found {
		t.Fatalf("repair should retry fuzzily: %+v", plan.Steps)
	}
}

func TestMaterializeRepairDropsImpossibleInterpolation(t *testing.T) {
	prev := MaterializePlan{Steps: []MatStep{
		{Op: "base", Table: "a"},
		{Op: "interpolate", Column: "v", Arg: "year"},
	}}
	in := MaterializeInput{
		Spec:      TableSpec{Name: "t", BaseTable: "a"},
		LastError: `transform INTERPOLATE: column "v" needs at least 2 non-null values to interpolate, has 1`,
		PrevPlan:  &prev,
	}
	plan := callMaterializer(t, in)
	for _, s := range plan.Steps {
		if s.Op == "interpolate" {
			t.Fatal("repair should drop the impossible interpolation")
		}
	}
}

func TestDecomposeSkillNameOnlyGrounding(t *testing.T) {
	m := NewSimModel()
	resp, err := m.Complete(context.Background(), Request{Task: TaskDecompose, Payload: MarshalPayload(DecomposeInput{
		Question: "What is the average Potassium in ppm in the Malta region?",
		Tables:   testVocab().Tables,
	})})
	if err != nil {
		t.Fatal(err)
	}
	var out DecomposeOutput
	if err := DecodeResponse(resp, &out); err != nil {
		t.Fatal(err)
	}
	// "Potassium" only appears in the description; name-only grounding must
	// fail — the mechanism behind DS-Guru's Table 3 gap.
	if !out.Failed {
		t.Fatalf("decompose should fail on description-only vocabulary: %+v", out)
	}
	// A transparent name succeeds.
	resp, _ = m.Complete(context.Background(), Request{Task: TaskDecompose, Payload: MarshalPayload(DecomposeInput{
		Question: "What is the average ph in the Malta region?",
		Tables:   testVocab().Tables,
	})})
	_ = DecodeResponse(resp, &out)
	if out.Failed {
		t.Fatalf("decompose should ground transparent names: %+v", out)
	}
}
