package llm

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// ConductorInput is the specialized context the Conductor agent assembles
// for one planning call (§3.2): the full user-message history (an LLM
// re-reads its conversation), the current shared state (T, Q), retrieved
// documents, captured knowledge, and the last tool error if any.
type ConductorInput struct {
	UserMessages     []string  `json:"user_messages"`
	State            StateInfo `json:"state"`
	Docs             []DocInfo `json:"docs,omitempty"`
	Knowledge        []string  `json:"knowledge,omitempty"`
	LastError        string    `json:"last_error,omitempty"`
	ActionsTaken     int       `json:"actions_taken"`
	RetrievalRounds  int       `json:"retrieval_rounds"`
	WebSearchEnabled bool      `json:"web_search_enabled"`
}

// Conductor actions (§3.2's action space).
const (
	ActionRetrieve    = "retrieve"     // tool call into IR System
	ActionUpdateState = "update_state" // state modification of (T, Q)
	ActionMaterialize = "materialize"  // tool call into Materializer
	ActionExecute     = "execute"      // tool call into SQL Executor
	ActionRespond     = "respond"      // user-facing communication
	ActionClarify     = "clarify"      // user-facing clarifying question
)

// TransformSpec is one declarative preparation step inside a TableSpec.
type TransformSpec struct {
	// Kind is "interpolate", "parse_dates", "to_number" or "derive".
	Kind string `json:"kind"`
	// Column is the target column (X column for interpolate lives in Arg).
	Column string `json:"column,omitempty"`
	// Arg carries the op-specific argument: interpolate → X column,
	// derive → SQL expression.
	Arg string `json:"arg,omitempty"`
}

// TableSpec describes one target table of T: which base table it derives
// from, an optional join, preparation transforms and the projected columns.
type TableSpec struct {
	Name         string          `json:"name"`
	BaseTable    string          `json:"base_table"`
	Columns      []string        `json:"columns"`
	JoinTable    string          `json:"join_table,omitempty"`
	JoinLeftKey  string          `json:"join_left_key,omitempty"`
	JoinRightKey string          `json:"join_right_key,omitempty"`
	JoinFuzzy    bool            `json:"join_fuzzy,omitempty"`
	Transforms   []TransformSpec `json:"transforms,omitempty"`
}

// ConductorDecision is the planning skill's output: the next action plus
// its arguments, and the internal reasoning trace (ReAct-style).
type ConductorDecision struct {
	Reasoning      string      `json:"reasoning"`
	Action         string      `json:"action"`
	RetrievalQuery string      `json:"retrieval_query,omitempty"`
	Sources        []string    `json:"sources,omitempty"`
	StateTables    []TableSpec `json:"state_tables,omitempty"`
	StateQueries   []string    `json:"state_queries,omitempty"`
	Message        string      `json:"message,omitempty"`
	// MentionedColumns surfaces the model's interpretation of relevant
	// columns (name + meaning); the user simulator anchors on these.
	MentionedColumns []MentionedColumn `json:"mentioned_columns,omitempty"`
}

// MentionedColumn is one interpreted column reference in a user-facing
// message.
type MentionedColumn struct {
	Table       string `json:"table"`
	Column      string `json:"column"`
	Description string `json:"description,omitempty"`
}

// skillConductorPlan implements TaskConductorPlan: evaluate the state, the
// retrieved data and the user's messages, and decide the single best next
// action — internal reasoning, tool call, state modification, or
// user-facing communication (§3.2).
func skillConductorPlan(req Request) (interface{}, error) {
	var in ConductorInput
	if err := DecodePayload(req, &in); err != nil {
		return nil, err
	}
	vocab := VocabFromDocs(in.Docs)
	intent := ParseAll(in.UserMessages, vocab)

	// 1. Nothing retrieved yet: ground the conversation in data first
	// (§3.2: decisions are grounded on retrieved data, not assumptions).
	if len(vocab.Tables) == 0 && in.RetrievalRounds == 0 {
		q := retrievalQuery(intent)
		return ConductorDecision{
			Reasoning: fmt.Sprintf(
				"No data retrieved yet. Before proposing a schema I should see what exists for: %s.", q),
			Action:         ActionRetrieve,
			RetrievalQuery: q,
			Sources:        retrievalSources(in.WebSearchEnabled),
		}, nil
	}

	// 2. Purely exploratory ask: respond with an interpreted overview of
	// what was found. This is what lets a vague user anchor their need.
	if intent.WantOverview && intent.MeasurePhrase == "" {
		msg, cols := overviewMessage(vocab)
		return ConductorDecision{
			Reasoning:        "The user wants an overview; summarize the retrieved tables and interpret their columns.",
			Action:           ActionRespond,
			Message:          msg,
			MentionedColumns: cols,
		}, nil
	}

	// 3. The user named a measure: resolve it against the vocabulary.
	if intent.MeasurePhrase != "" {
		tbl, col, score, ambiguous := ResolveMeasure(vocab, intent.MeasurePhrase, intent.Topic)
		if score < 0.30 {
			// Unresolvable with current documents: retry retrieval with the
			// measure phrase alone (a focused query ranks the right table
			// far better than phrase+topic soup), then web, then give a
			// grounded clarification instead of hallucinating a schema.
			if in.RetrievalRounds < 3 {
				return ConductorDecision{
					Reasoning: fmt.Sprintf(
						"No retrieved column matches %q (best score %.2f); retrieving with the measure phrase directly.",
						intent.MeasurePhrase, score),
					Action:         ActionRetrieve,
					RetrievalQuery: intent.MeasurePhrase,
					Sources:        retrievalSources(in.WebSearchEnabled),
				}, nil
			}
			return ConductorDecision{
				Reasoning: "Retrieval exhausted without a matching column; the gap must go back to the user.",
				Action:    ActionClarify,
				Message: fmt.Sprintf(
					"I could not find data matching %q in the available sources. The closest tables I have are: %s. Could you describe the measurement differently?",
					intent.MeasurePhrase, tableNames(vocab)),
			}, nil
		}
		if ambiguous {
			return ConductorDecision{
				Reasoning: fmt.Sprintf("Two candidate columns tie for %q; asking instead of guessing.", intent.MeasurePhrase),
				Action:    ActionClarify,
				Message: fmt.Sprintf(
					"I found more than one plausible column for %q. Did you mean %s.%s (%s)? If not, tell me which table to use.",
					intent.MeasurePhrase, tbl.Name, col.Name, col.Description),
			}, nil
		}

		// Build the desired (T, Q) from the cumulative intent.
		spec, queries, unresolved := buildPlan(intent, vocab, tbl, col)
		if unresolved != "" {
			// Before asking the user: look for a reference table that both
			// contains the ungrounded value and shares a key with the
			// measure table (e.g. a stations registry for a station-keyed
			// reading table).
			if in.RetrievalRounds < 3 {
				if q := filterLookupQuery(intent, tbl); q != "" {
					return ConductorDecision{
						Reasoning:      "A filter value is not in the measure table; retrieving a joinable reference table for it.",
						Action:         ActionRetrieve,
						RetrievalQuery: q,
						Sources:        retrievalSources(in.WebSearchEnabled),
					}, nil
				}
			}
			return ConductorDecision{
				Reasoning: "A filter value could not be grounded in any retrieved column.",
				Action:    ActionClarify,
				Message:   unresolved,
			}, nil
		}

		// 3a. State drift: update (T, Q) first.
		if stateDiffers(in.State, spec, queries) {
			return ConductorDecision{
				Reasoning: fmt.Sprintf(
					"The user's need now reads as %s of %s.%s%s; updating (T, Q) to match.",
					displayAgg(intent.Aggregate), tbl.Name, col.Name, filterSummary(intent.Filters)),
				Action:       ActionUpdateState,
				StateTables:  []TableSpec{spec},
				StateQueries: queries,
			}, nil
		}
		// 3b. T defined but not materialized.
		if !in.State.Materialized {
			return ConductorDecision{
				Reasoning: "T matches the need but is not materialized; calling Materializer.",
				Action:    ActionMaterialize,
			}, nil
		}
		// 3c. Materialized but Q not executed.
		if in.State.ResultPreview == "" && len(in.State.Queries) > 0 {
			return ConductorDecision{
				Reasoning: "T is materialized; executing Q.",
				Action:    ActionExecute,
			}, nil
		}
		// 3d. Everything done: report, interpreting what was computed.
		msg := answerMessage(intent, tbl, col, in.State.ResultPreview)
		return ConductorDecision{
			Reasoning: "State, materialization and execution are aligned; report the result.",
			Action:    ActionRespond,
			Message:   msg,
			MentionedColumns: []MentionedColumn{
				{Table: tbl.Name, Column: col.Name, Description: col.Description},
			},
		}, nil
	}

	// 4. No measure yet but data retrieved: interpret what exists and guide
	// the user toward something concrete.
	msg, cols := overviewMessage(vocab)
	return ConductorDecision{
		Reasoning:        "The need is still unspecific; surface an interpreted overview to help the user articulate it.",
		Action:           ActionRespond,
		Message:          msg,
		MentionedColumns: cols,
	}, nil
}

// retrievalQuery builds the IR query from an intent.
func retrievalQuery(intent Intent) string {
	parts := []string{intent.Topic}
	if intent.MeasurePhrase != "" {
		parts = append(parts, intent.MeasurePhrase)
	}
	for _, f := range intent.Filters {
		parts = append(parts, f.Value)
	}
	q := strings.TrimSpace(strings.Join(parts, " "))
	if q == "" {
		q = "available datasets"
	}
	return q
}

func retrievalSources(webOn bool) []string {
	s := []string{"tables", "knowledge"}
	if webOn {
		s = append(s, "web")
	}
	return s
}

// overviewMessage renders an interpreted summary of the retrieved tables —
// the key capability static baselines lack (they return raw rows without
// interpretation, §4.1).
func overviewMessage(vocab Vocab) (string, []MentionedColumn) {
	var b strings.Builder
	var cols []MentionedColumn
	b.WriteString("Here is what the available data covers:\n")
	for _, t := range vocab.Tables {
		fmt.Fprintf(&b, "- %s (%d rows): %s. Key variables: ", t.Name, t.NumRows, t.Description)
		// Interpret the measure columns first — the variables an analyst
		// actually asks about — then identifiers, up to a readable cap.
		ordered := append(measureColumns(t), nonMeasureColumns(t)...)
		shown := 0
		for _, c := range ordered {
			if c.Description == "" {
				continue
			}
			if shown > 0 {
				b.WriteString("; ")
			}
			fmt.Fprintf(&b, "%s = %s", c.Name, c.Description)
			cols = append(cols, MentionedColumn{Table: t.Name, Column: c.Name, Description: c.Description})
			shown++
			if shown >= 12 {
				break
			}
		}
		b.WriteString(".\n")
	}
	b.WriteString("Tell me which variable you want to analyze, and any region, station or time range to focus on.")
	return b.String(), cols
}

// measureColumns returns a table's numeric (or numeric-ish) columns —
// the likely measures.
func measureColumns(t TableInfo) []ColumnInfo {
	var out []ColumnInfo
	for _, c := range t.Columns {
		if c.Type == "double" || mostlyNumericSamples(c) {
			out = append(out, c)
		}
	}
	return out
}

func nonMeasureColumns(t TableInfo) []ColumnInfo {
	var out []ColumnInfo
	for _, c := range t.Columns {
		if c.Type != "double" && !mostlyNumericSamples(c) {
			out = append(out, c)
		}
	}
	return out
}

func tableNames(vocab Vocab) string {
	names := make([]string, 0, len(vocab.Tables))
	for _, t := range vocab.Tables {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// BuildPlan constructs the target TableSpec and query list for an intent
// whose measure resolved to (tbl, col). unresolved carries a user-facing
// clarification when a filter cannot be grounded. Exported because the
// full-context baseline synthesizes plans through the same machinery.
func BuildPlan(intent Intent, vocab Vocab, tbl TableInfo, col ColumnInfo) (spec TableSpec, queries []string, unresolved string) {
	return buildPlan(intent, vocab, tbl, col)
}

func buildPlan(intent Intent, vocab Vocab, tbl TableInfo, col ColumnInfo) (spec TableSpec, queries []string, unresolved string) {
	spec = TableSpec{
		Name:      "target_" + tbl.Name,
		BaseTable: tbl.Name,
	}
	colSet := map[string]struct{}{}
	addCol := func(name string) {
		if name == "" {
			return
		}
		if _, dup := colSet[name]; dup {
			return
		}
		colSet[name] = struct{}{}
		spec.Columns = append(spec.Columns, name)
	}

	// Resolve filters; a filter grounded in another table induces a join.
	type resolvedFilter struct {
		column string
		value  string
		joined bool
	}
	var filters []resolvedFilter
	for _, f := range intent.Filters {
		if c, canon, ok := ResolveFilterColumn(tbl, f); ok {
			filters = append(filters, resolvedFilter{column: c, value: canon})
			addCol(c)
			continue
		}
		// Look for the value in another retrieved table sharing a key.
		joined := false
		for _, other := range vocab.Tables {
			if other.Name == tbl.Name {
				continue
			}
			c, canon, ok := ResolveFilterColumn(other, f)
			if !ok {
				continue
			}
			key, rKey, kOK := sharedKey(tbl, other)
			if !kOK {
				continue
			}
			spec.JoinTable = other.Name
			spec.JoinLeftKey = key
			spec.JoinRightKey = rKey
			filters = append(filters, resolvedFilter{column: c, value: canon, joined: true})
			addCol(key)
			addCol(c)
			joined = true
			break
		}
		if !joined {
			return spec, nil, fmt.Sprintf(
				"You mentioned %q, but I cannot find that value in any retrieved column. Which attribute does it refer to?",
				f.Value)
		}
	}

	// Temporal column. A varchar time column (e.g. "Month Day, Year"
	// strings) gets a date-normalization transform so YEAR()/ORDER BY work
	// — the Materializer's §3.4 format-alignment job.
	timeCol, hasTime := findTimeColumn(tbl)
	needsTime := intent.FirstLast || intent.YearFrom != 0 || intent.YearTo != 0 || intent.Interpolate
	if needsTime && hasTime {
		addCol(timeCol.Name)
		if timeCol.Type == "varchar" {
			spec.Transforms = append(spec.Transforms, TransformSpec{Kind: "parse_dates", Column: timeCol.Name})
			timeCol.Type = "timestamp" // post-transform type for Q building
		}
	}

	addCol(col.Name)

	// Transforms: interpolation needs a numeric/temporal X axis.
	if intent.Interpolate && hasTime {
		spec.Transforms = append(spec.Transforms, TransformSpec{
			Kind: "interpolate", Column: col.Name, Arg: timeCol.Name,
		})
	}

	// Derived computation for the paper's tariff walk-through (§3.6):
	// "impact should be calculated relative to the previous active tariff"
	// becomes measure * (1 + new_tariff - prev_tariff) over a join with the
	// tariff table retrieved from the web.
	measureCol := col.Name
	if intent.RelativePrev {
		if t2, newCol, prevCol, ok := findTariffColumns(vocab); ok {
			if !strings.EqualFold(t2.Name, tbl.Name) && spec.JoinTable == "" {
				if lk, rk, jok := looseSharedKey(tbl, t2); jok {
					spec.JoinTable = t2.Name
					spec.JoinLeftKey = lk
					spec.JoinRightKey = rk
					addCol(lk)
				}
			}
			addCol(newCol)
			addCol(prevCol)
			derived := "adjusted_" + col.Name
			spec.Transforms = append(spec.Transforms, TransformSpec{
				Kind:   "derive",
				Column: derived,
				Arg:    fmt.Sprintf("%s * (1 + %s - %s)", col.Name, newCol, prevCol),
			})
			addCol(derived)
			measureCol = derived
		}
	}

	// Build Q.
	agg := intent.Aggregate
	if agg == "" {
		agg = "AVG"
	}
	var where []string
	for _, f := range filters {
		where = append(where, fmt.Sprintf("%s = '%s'", f.column, escapeSQL(f.value)))
	}
	if intent.YearFrom != 0 || intent.YearTo != 0 {
		from, to := intent.YearFrom, intent.YearTo
		if from == 0 {
			from = 1500
		}
		if to == 0 {
			to = 2100
		}
		if hasTime {
			yearExpr := timeCol.Name
			if timeCol.Type == "timestamp" {
				yearExpr = fmt.Sprintf("YEAR(%s)", timeCol.Name)
			}
			where = append(where, fmt.Sprintf("%s BETWEEN %d AND %d", yearExpr, from, to))
		}
	}
	whereClause := ""
	if len(where) > 0 {
		whereClause = " WHERE " + strings.Join(where, " AND ")
	}

	var expr string
	if intent.FirstLast && hasTime {
		inner := fmt.Sprintf("SELECT %s FROM %s%s ORDER BY %s", measureCol, spec.Name, whereClause, timeCol.Name)
		expr = fmt.Sprintf("SELECT (FIRST(%s) + LAST(%s)) / 2 AS answer FROM (%s) AS ordered", measureCol, measureCol, inner)
	} else {
		expr = fmt.Sprintf("SELECT %s(%s) AS answer FROM %s%s", agg, measureCol, spec.Name, whereClause)
	}
	if intent.RoundTo >= 0 {
		expr = wrapRound(expr, intent.RoundTo)
	}
	queries = append(queries, expr)
	return spec, queries, ""
}

// wrapRound rewraps "SELECT <agg expr> AS answer FROM ..." with ROUND.
func wrapRound(q string, digits int) string {
	const marker = " AS answer"
	idx := strings.Index(q, marker)
	if idx < 0 {
		return q
	}
	head := q[len("SELECT "):idx]
	return fmt.Sprintf("SELECT ROUND(%s, %d) AS answer%s", head, digits, q[idx+len(marker):])
}

func escapeSQL(s string) string { return strings.ReplaceAll(s, "'", "''") }

// sharedKey finds a join key: a column name both tables carry that looks
// like an identifier. Generic columns (year, month, region) must never act
// as join keys — joining two fact tables on "year" produces a many-to-many
// explosion, not an integration.
func sharedKey(a, b TableInfo) (left, right string, ok bool) {
	for _, ca := range a.Columns {
		for _, cb := range b.Columns {
			if !strings.EqualFold(ca.Name, cb.Name) {
				continue
			}
			if keyishColumn(ca.Name) {
				return ca.Name, cb.Name, true
			}
		}
	}
	return "", "", false
}

// keyishColumn reports whether a column name looks like a join key.
func keyishColumn(name string) bool {
	lc := strings.ToLower(name)
	return strings.HasSuffix(lc, "_id") || lc == "id" || strings.HasSuffix(lc, "_code") ||
		strings.HasSuffix(lc, "_key") || strings.HasSuffix(lc, "name")
}

// filterLookupQuery builds a retrieval query that targets a reference table
// for the first ungrounded filter: the value plus the measure table's
// key-ish columns (so a table that can actually join ranks first).
func filterLookupQuery(intent Intent, tbl TableInfo) string {
	if len(intent.Filters) == 0 {
		return ""
	}
	var keyTerms []string
	for _, c := range tbl.Columns {
		if keyishColumn(c.Name) {
			keyTerms = append(keyTerms, strings.ReplaceAll(c.Name, "_", " "))
		}
	}
	if len(keyTerms) == 0 {
		return ""
	}
	f := intent.Filters[len(intent.Filters)-1]
	return f.Value + " " + f.ColumnPhrase + " " + strings.Join(keyTerms, " ")
}

// findTariffColumns locates a table carrying both a new and a previous
// tariff rate column.
func findTariffColumns(vocab Vocab) (t TableInfo, newCol, prevCol string, ok bool) {
	for _, tbl := range vocab.Tables {
		var n, p string
		for _, c := range tbl.Columns {
			lc := strings.ToLower(c.Name)
			if strings.Contains(lc, "tariff") {
				if strings.Contains(lc, "new") {
					n = c.Name
				}
				if strings.Contains(lc, "prev") || strings.Contains(lc, "old") {
					p = c.Name
				}
			}
		}
		if n != "" && p != "" {
			return tbl, n, p, true
		}
	}
	return TableInfo{}, "", "", false
}

// looseSharedKey extends sharedKey with entity columns (country) that are
// legitimate join keys for dimension-style tables.
func looseSharedKey(a, b TableInfo) (string, string, bool) {
	if l, r, ok := sharedKey(a, b); ok {
		return l, r, ok
	}
	for _, ca := range a.Columns {
		for _, cb := range b.Columns {
			if strings.EqualFold(ca.Name, cb.Name) && strings.EqualFold(ca.Name, "country") {
				return ca.Name, cb.Name, true
			}
		}
	}
	return "", "", false
}

// stateDiffers compares the live state against the desired spec/queries,
// including planned transforms (an interpolation added to the spec must
// trigger re-materialization even when Q is unchanged).
func stateDiffers(state StateInfo, spec TableSpec, queries []string) bool {
	if len(state.Specs) != 1 || len(state.Queries) != len(queries) {
		return true
	}
	cur, err1 := json.Marshal(state.Specs[0])
	want, err2 := json.Marshal(spec)
	if err1 != nil || err2 != nil || string(cur) != string(want) {
		return true
	}
	for i, q := range queries {
		if state.Queries[i] != q {
			return true
		}
	}
	return false
}

func displayAgg(agg string) string {
	switch agg {
	case "", "AVG":
		return "the average"
	case "SUM":
		return "the total"
	case "COUNT":
		return "the count"
	case "MIN":
		return "the minimum"
	case "MAX":
		return "the maximum"
	case "MEDIAN":
		return "the median"
	case "STDDEV":
		return "the standard deviation"
	default:
		return agg
	}
}

func filterSummary(fs []FilterSpec) string {
	if len(fs) == 0 {
		return ""
	}
	vals := make([]string, len(fs))
	for i, f := range fs {
		vals[i] = f.Value
	}
	return " filtered to " + strings.Join(vals, ", ")
}

// answerMessage is the user-facing report of an executed query, grounded in
// the actual result preview.
func answerMessage(intent Intent, tbl TableInfo, col ColumnInfo, preview string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "I computed %s of %s.%s", displayAgg(intent.Aggregate), tbl.Name, col.Name)
	if col.Description != "" {
		fmt.Fprintf(&b, " (%s)", col.Description)
	}
	b.WriteString(filterSummary(intent.Filters))
	if intent.YearFrom != 0 || intent.YearTo != 0 {
		fmt.Fprintf(&b, " between %d and %d", intent.YearFrom, intent.YearTo)
	}
	if intent.Interpolate {
		b.WriteString(", with missing values linearly interpolated")
	}
	if intent.FirstLast {
		b.WriteString(", averaging the first and last recorded values")
	}
	b.WriteString(".\nResult:\n")
	b.WriteString(preview)
	b.WriteString("\nYou can narrow the scope further (region, time range) or ask for a different statistic.")
	return b.String()
}
