package llm

import (
	"context"
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestEstimateTokens(t *testing.T) {
	if EstimateTokens("") != 0 {
		t.Error("empty text must cost 0")
	}
	if got := EstimateTokens("hi"); got != 1 {
		t.Errorf("short word = %d, want 1", got)
	}
	// ~4 chars per token for long words.
	if got := EstimateTokens("internationalization"); got != 5 {
		t.Errorf("long word = %d, want 5", got)
	}
	// Monotone in content.
	f := func(a, b string) bool {
		return EstimateTokens(a+" "+b) >= EstimateTokens(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPricingTable2Values(t *testing.T) {
	// The paper's stated O4-mini prices ($1.1/$4.4 per 1M) against its
	// reported Table 2 archaeology row (248,351 in / 2,854 out → $0.27/$0.01).
	p := Catalog["o4-mini"]
	in, out := p.Cost(Usage{InTokens: 248_351, OutTokens: 2_854})
	if in < 0.26 || in > 0.28 {
		t.Errorf("o4-mini input cost = %.4f, want ~0.27", in)
	}
	if out < 0.01 || out > 0.02 {
		t.Errorf("o4-mini output cost = %.4f, want ~0.013", out)
	}
	// Sonnet 4.5's long-context tier kicks in above 200k input tokens.
	s := Catalog["sonnet-4.5"]
	inLong, _ := s.Cost(Usage{InTokens: 248_351})
	if inLong < 1.45 || inLong > 1.55 {
		t.Errorf("sonnet long-context input cost = %.4f, want ~1.49", inLong)
	}
	inShort, _ := s.Cost(Usage{InTokens: 149_011})
	if inShort < 0.43 || inShort > 0.47 {
		t.Errorf("sonnet standard input cost = %.4f, want ~0.45", inShort)
	}
}

func TestLookupUnknownModel(t *testing.T) {
	if _, err := Lookup("bogus-model"); err == nil {
		t.Fatal("unknown model must error")
	}
	if _, err := Lookup("o3"); err != nil {
		t.Fatalf("o3 lookup failed: %v", err)
	}
}

func TestLatencyModel(t *testing.T) {
	l := LatencyModel{PerCall: time.Second, PerInToken: time.Millisecond, PerOutToken: 10 * time.Millisecond}
	got := l.For(Usage{InTokens: 100, OutTokens: 10})
	want := time.Second + 100*time.Millisecond + 100*time.Millisecond
	if got != want {
		t.Errorf("latency = %v, want %v", got, want)
	}
}

func TestSimModelContextLimit(t *testing.T) {
	m := NewSimModel(WithContextLimit(50))
	_, err := m.Complete(context.Background(), Request{
		Task:    TaskUserSim,
		System:  strings.Repeat("very long system prompt ", 50),
		Payload: MarshalPayload(UserSimInput{}),
	})
	if !errors.Is(err, ErrContextLengthExceeded) {
		t.Fatalf("err = %v, want context length exceeded", err)
	}
}

func TestSimModelUnknownSkill(t *testing.T) {
	m := NewSimModel()
	if _, err := m.Complete(context.Background(), Request{Task: "no-such-skill"}); err == nil {
		t.Fatal("unknown skill must error")
	}
}

func TestSimModelProfiles(t *testing.T) {
	m := NewSimModel(WithProfile("gpt-4o"))
	if m.Name() != "gpt-4o" || m.ContextLimit() != 128_000 {
		t.Fatalf("profile not applied: %s/%d", m.Name(), m.ContextLimit())
	}
}

func TestMeteredModel(t *testing.T) {
	meter := NewMeter()
	m := &MeteredModel{Inner: NewSimModel(), Meter: meter, Component: "test"}
	_, err := m.Complete(context.Background(), Request{
		Task:    TaskUserSim,
		Payload: MarshalPayload(UserSimInput{Need: NeedSpec{Topic: "things", QuestionText: "q"}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := meter.Snapshot()
	if snap.Calls != 1 || snap.Total.InTokens == 0 || snap.Total.OutTokens == 0 {
		t.Fatalf("meter not recording: %+v", snap)
	}
	if _, ok := snap.ByComponent["test"]; !ok {
		t.Fatal("per-component usage missing")
	}
}

func TestRequestRenderIncludesPayload(t *testing.T) {
	req := Request{Task: "x", System: "sys", Sections: []Section{{Title: "S", Body: "body"}},
		Payload: MarshalPayload(map[string]string{"k": "v"})}
	r := req.Render()
	for _, want := range []string{"sys", "## TASK", "x", "## S", "body", `"k":"v"`} {
		if !strings.Contains(r, want) {
			t.Errorf("render missing %q:\n%s", want, r)
		}
	}
}

// TestMeterFromContext: a per-request meter attached to the context is
// recorded in addition to the model's own meter — the mechanism behind
// per-session accounting under the Service.
func TestMeterFromContext(t *testing.T) {
	system := NewMeter()
	session := NewMeter()
	m := &MeteredModel{Inner: NewSimModel(), Meter: system, Component: "conductor"}
	ctx := WithMeter(context.Background(), session)
	if got := MeterFromContext(ctx); got != session {
		t.Fatal("MeterFromContext did not return the attached meter")
	}
	if _, err := m.Complete(ctx, Request{
		Task:    TaskUserSim,
		Payload: MarshalPayload(UserSimInput{Need: NeedSpec{Topic: "things", QuestionText: "q"}}),
	}); err != nil {
		t.Fatal(err)
	}
	sys, sess := system.Snapshot(), session.Snapshot()
	if sess.Calls != 1 || sys.Calls != 1 {
		t.Fatalf("calls: system=%d session=%d, want 1/1", sys.Calls, sess.Calls)
	}
	if sess.Total != sys.Total {
		t.Fatalf("usage diverged: system=%+v session=%+v", sys.Total, sess.Total)
	}
	if MeterFromContext(context.Background()) != nil {
		t.Fatal("MeterFromContext on a bare context should be nil")
	}
}

// TestCompleteHonorsContext: a canceled context aborts before billing.
func TestCompleteHonorsContext(t *testing.T) {
	meter := NewMeter()
	m := &MeteredModel{Inner: NewSimModel(), Meter: meter, Component: "x"}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Complete(ctx, Request{Task: TaskUserSim}); err == nil {
		t.Fatal("Complete with canceled ctx succeeded")
	}
	if meter.Snapshot().Calls != 0 {
		t.Fatal("canceled call was billed")
	}
}
