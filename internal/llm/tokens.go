package llm

import "unicode/utf8"

// EstimateTokens approximates the BPE token count of text. The estimator
// follows the common ~4-characters-per-token heuristic with a per-word
// floor: every whitespace-separated word costs at least one token, and
// longer words cost ceil(len/4). This is deterministic and close enough to
// real tokenizers for the cost shapes Table 2 reports.
func EstimateTokens(text string) int {
	if text == "" {
		return 0
	}
	tokens := 0
	wordLen := 0
	flush := func() {
		if wordLen == 0 {
			return
		}
		t := (wordLen + 3) / 4
		if t < 1 {
			t = 1
		}
		tokens += t
		wordLen = 0
	}
	for _, r := range text {
		switch r {
		case ' ', '\n', '\t', '\r':
			flush()
		default:
			wordLen += utf8.RuneLen(r)
		}
	}
	flush()
	return tokens
}
