package llm

import (
	"fmt"
	"strings"
)

// InterpretInput is the context of the RAG baseline's single skill (§4.1's
// LlamaIndex: "adds an LLM on top of a top-k vector retriever to interpret
// the retrieved data"): the user's messages plus the retrieved chunks.
type InterpretInput struct {
	UserMessages []string  `json:"user_messages"`
	Docs         []DocInfo `json:"docs"`
}

// InterpretOutput is the interpretation: a user-facing message and the
// interpreted column surface. There is no state, no SQL and no execution —
// which is exactly why this baseline scores 0% on accuracy (Table 3): "the
// questions require actual computation ... not just interpretation".
type InterpretOutput struct {
	Message          string            `json:"message"`
	MentionedColumns []MentionedColumn `json:"mentioned_columns,omitempty"`
}

// skillInterpret implements TaskInterpret.
func skillInterpret(req Request) (interface{}, error) {
	var in InterpretInput
	if err := DecodePayload(req, &in); err != nil {
		return nil, err
	}
	vocab := VocabFromDocs(in.Docs)
	intent := ParseAll(in.UserMessages, vocab)

	var b strings.Builder
	var mentioned []MentionedColumn

	if intent.MeasurePhrase != "" {
		tbl, col, score, _ := ResolveMeasure(vocab, intent.MeasurePhrase, intent.Topic)
		if score >= 0.30 {
			fmt.Fprintf(&b, "Based on the retrieved context, %q corresponds to column %s in table %s",
				intent.MeasurePhrase, col.Name, tbl.Name)
			if col.Description != "" {
				fmt.Fprintf(&b, " (%s)", col.Description)
			}
			b.WriteString(". ")
			mentioned = append(mentioned, MentionedColumn{Table: tbl.Name, Column: col.Name, Description: col.Description})
			if len(intent.Filters) > 0 {
				b.WriteString("The data can be narrowed to ")
				for i, f := range intent.Filters {
					if i > 0 {
						b.WriteString(", ")
					}
					b.WriteString(f.Value)
				}
				b.WriteString(" using the categorical columns present. ")
			}
			if tcol, ok := findTimeColumn(tbl); ok {
				fmt.Fprintf(&b, "Temporal analysis is possible via %s. ", tcol.Name)
				mentioned = append(mentioned, MentionedColumn{Table: tbl.Name, Column: tcol.Name, Description: tcol.Description})
			}
			b.WriteString("Note that I can summarize and interpret the retrieved excerpts, but I cannot execute computations over the full tables.")
			return InterpretOutput{Message: b.String(), MentionedColumns: mentioned}, nil
		}
		fmt.Fprintf(&b, "The retrieved context does not clearly contain %q. ", intent.MeasurePhrase)
	}

	// Fall back to an interpreted overview of the retrieved chunks,
	// measure columns first.
	b.WriteString("The retrieved context covers: ")
	for i, t := range vocab.Tables {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s (%s)", t.Name, t.Description)
		ordered := append(measureColumns(t), nonMeasureColumns(t)...)
		shown := 0
		for _, c := range ordered {
			if c.Description == "" {
				continue
			}
			fmt.Fprintf(&b, " — %s: %s", c.Name, c.Description)
			mentioned = append(mentioned, MentionedColumn{Table: t.Name, Column: c.Name, Description: c.Description})
			shown++
			if shown >= 10 {
				break
			}
		}
	}
	b.WriteString(". Ask about any of these variables and I can interpret the relevant excerpts.")
	return InterpretOutput{Message: b.String(), MentionedColumns: mentioned}, nil
}

// DecomposeInput is DS-Guru's single-shot context (§4.2): the benchmark
// question plus the full schemas of the dataset's tables. DS-Guru
// "instructs an LLM to decompose a question into a sequence of subtasks,
// reason through each step, and synthesize Python code" — one pass, no
// retrieval grounding, no user loop, no error repair.
type DecomposeInput struct {
	Question string      `json:"question"`
	Tables   []TableInfo `json:"tables"`
}

// DecomposeOutput is DS-Guru's synthesized plan: the same plan language the
// Conductor uses, so the execution substrate is shared and the comparison
// isolates the *planning* differences.
type DecomposeOutput struct {
	Subtasks []string  `json:"subtasks"`
	Spec     TableSpec `json:"spec"`
	Queries  []string  `json:"queries"`
	// Failed marks a decomposition that could not ground the question.
	Failed bool   `json:"failed"`
	Reason string `json:"reason,omitempty"`
}

// skillDecompose implements TaskDecompose. Its weaknesses relative to the
// Conductor are deliberate and mirror the baseline's real limitations:
//
//   - column grounding uses physical names only (a one-shot code
//     synthesizer matches identifiers; it has no retrieval-ranked
//     descriptions to lean on),
//   - ambiguity is resolved by guessing (no user to ask),
//   - cross-table filters are only found when an exact shared key exists,
//   - there is no repair loop (the first plan is the only plan).
func skillDecompose(req Request) (interface{}, error) {
	var in DecomposeInput
	if err := DecodePayload(req, &in); err != nil {
		return nil, err
	}
	// Strip descriptions: name-only grounding.
	bare := make([]TableInfo, len(in.Tables))
	for i, t := range in.Tables {
		bt := t
		bt.Columns = make([]ColumnInfo, len(t.Columns))
		for j, c := range t.Columns {
			bc := c
			bc.Description = ""
			bc.Unit = ""
			bt.Columns[j] = bc
		}
		bare[i] = bt
	}
	vocab := Vocab{Tables: bare}
	fullVocab := Vocab{Tables: in.Tables}
	intent := ParseUtterance(in.Question, fullVocab) // values still ground via samples

	subtasks := []string{
		"1. Identify the relevant table and measure column from the question.",
		"2. Apply the question's filters.",
		"3. Compute the requested statistic.",
	}

	if intent.MeasurePhrase == "" {
		return DecomposeOutput{
			Subtasks: subtasks, Failed: true,
			Reason: "could not identify a measure in the question",
		}, nil
	}
	tbl, col, score, _ := ResolveMeasure(vocab, intent.MeasurePhrase, intent.Topic)
	if score < 0.30 {
		return DecomposeOutput{
			Subtasks: subtasks, Failed: true,
			Reason: fmt.Sprintf("no column name matches %q (best %.2f)", intent.MeasurePhrase, score),
		}, nil
	}
	// Rebind to the full table info for plan building (the synthesized code
	// runs against the real schema).
	var fullTbl TableInfo
	for _, t := range in.Tables {
		if t.Name == tbl.Name {
			fullTbl = t
			break
		}
	}
	spec, queries, unresolved := buildPlan(intent, fullVocab, fullTbl, col)
	if unresolved != "" {
		// One-shot synthesis guesses rather than asks: drop the ungrounded
		// filter and proceed — a realistic silent-wrong-answer mode.
		filtered := intent
		filtered.Filters = nil
		for _, f := range intent.Filters {
			if c, canon, ok := ResolveFilterColumn(fullTbl, f); ok {
				f.Column = c
				f.Value = canon
				filtered.Filters = append(filtered.Filters, f)
			}
		}
		spec, queries, _ = buildPlan(filtered, fullVocab, fullTbl, col)
		subtasks = append(subtasks, "note: a filter value could not be located; proceeding without it")
	}
	return DecomposeOutput{Subtasks: subtasks, Spec: spec, Queries: queries}, nil
}
