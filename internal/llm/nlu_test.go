package llm

import (
	"testing"
)

func testVocab() Vocab {
	return Vocab{Tables: []TableInfo{
		{
			Name:        "soil_samples",
			Description: "Soil chemistry samples",
			Columns: []ColumnInfo{
				{Name: "region", Type: "varchar", Description: "Region of the site",
					Samples: []string{"Malta", "Gozo", "Sicily"}},
				{Name: "study_year", Type: "bigint", Description: "Year of the study campaign"},
				{Name: "k_ppm", Type: "double", Description: "Potassium concentration in parts per million", Unit: "ppm"},
				{Name: "ph", Type: "double", Description: "Soil acidity (pH)"},
			},
		},
		{
			Name:        "stations",
			Description: "Monitoring stations registry",
			Columns: []ColumnInfo{
				{Name: "station_id", Type: "bigint", Description: "Station identifier"},
				{Name: "station_name", Type: "varchar", Description: "Station name",
					Samples: []string{"Alder Point", "Birch Ridge"}},
			},
		},
	}}
}

func TestParseUtteranceAggregates(t *testing.T) {
	cases := []struct {
		text string
		agg  string
	}{
		{"What is the average potassium level?", "AVG"},
		{"Show me the total rainfall", "SUM"},
		{"How many samples are there?", "COUNT"},
		{"What is the maximum depth?", "MAX"},
		{"the lowest reading please", "MIN"},
		{"median turbidity?", "MEDIAN"},
		{"standard deviation of the ratio", "STDDEV"},
	}
	for _, c := range cases {
		got := ParseUtterance(c.text, testVocab())
		if got.Aggregate != c.agg {
			t.Errorf("ParseUtterance(%q).Aggregate = %q, want %q", c.text, got.Aggregate, c.agg)
		}
	}
}

func TestAssumeDoesNotMatchSum(t *testing.T) {
	in := ParseUtterance("Assume the measurements are linearly interpolated between samples.", testVocab())
	if in.Aggregate == "SUM" {
		t.Fatal("'assume' must not lex as SUM")
	}
	if !in.Interpolate {
		t.Fatal("interpolation marker missed")
	}
}

func TestParseYearRanges(t *testing.T) {
	cases := []struct {
		text     string
		from, to int
	}{
		{"between 1940 and 1960", 1940, 1960},
		{"from 1900 to 1950", 1900, 1950},
		{"since 1980", 1980, 0},
		{"before 1900", 0, 1900},
		{"in 1975", 1975, 1975},
		{"between 5 and 9 samples", 0, 0}, // not years
	}
	for _, c := range cases {
		got := ParseUtterance(c.text, testVocab())
		if got.YearFrom != c.from || got.YearTo != c.to {
			t.Errorf("ParseUtterance(%q) years = (%d,%d), want (%d,%d)",
				c.text, got.YearFrom, got.YearTo, c.from, c.to)
		}
	}
}

func TestParseRoundingDirective(t *testing.T) {
	in := ParseUtterance("Round your answer to 4 decimal places.", testVocab())
	if in.RoundTo != 4 {
		t.Fatalf("RoundTo = %d, want 4", in.RoundTo)
	}
	in = ParseUtterance("no rounding here", testVocab())
	if in.RoundTo != -1 {
		t.Fatalf("RoundTo = %d, want -1", in.RoundTo)
	}
}

func TestFilterGrounding(t *testing.T) {
	in := ParseUtterance("What is the average ph for soil samples in the Malta region?", testVocab())
	if len(in.Filters) != 1 || in.Filters[0].Value != "Malta" {
		t.Fatalf("filters = %+v, want Malta", in.Filters)
	}
	if in.Filters[0].Column != "region" {
		t.Errorf("filter column = %q, want region", in.Filters[0].Column)
	}
}

func TestFilterBigramAndSubsumption(t *testing.T) {
	in := ParseUtterance("Average ph at the Alder Point station please.", testVocab())
	if len(in.Filters) != 1 {
		t.Fatalf("filters = %+v, want exactly one (Alder Point)", in.Filters)
	}
	if in.Filters[0].Value != "Alder Point" {
		t.Errorf("value = %q, want Alder Point", in.Filters[0].Value)
	}
}

func TestSentenceInitialCapitalsIgnored(t *testing.T) {
	in := ParseUtterance("What about the data? Could you check again? Round it off.", testVocab())
	if len(in.Filters) != 0 {
		t.Fatalf("grammar words became filters: %+v", in.Filters)
	}
}

func TestMeasureResolution(t *testing.T) {
	tbl, col, score, amb := ResolveMeasure(testVocab(), "Potassium in ppm", "")
	if score < 0.3 || amb {
		t.Fatalf("potassium resolution failed: score=%v amb=%v", score, amb)
	}
	if tbl.Name != "soil_samples" || col.Name != "k_ppm" {
		t.Fatalf("resolved %s.%s, want soil_samples.k_ppm", tbl.Name, col.Name)
	}
	_, _, score, _ = ResolveMeasure(testVocab(), "stock prices", "")
	if score >= 0.3 {
		t.Fatalf("unrelated phrase resolved with score %v", score)
	}
}

func TestResolveFilterColumnFuzzyCanonicalizes(t *testing.T) {
	col, canon, ok := ResolveFilterColumn(testVocab().Tables[0], FilterSpec{Value: "Maltese", ColumnPhrase: "area"})
	if !ok || col != "region" || canon != "Malta" {
		t.Fatalf("fuzzy canonicalization failed: col=%q canon=%q ok=%v", col, canon, ok)
	}
}

func TestMergeIntentAccumulates(t *testing.T) {
	v := testVocab()
	acc := ParseAll([]string{
		"I'm curious to dive into the soil data from the Malta region. Could you give me an overview?",
		"Great. I'm particularly interested in the Potassium concentration measurements.",
		"Restrict it to the years between 1920 and 1980.",
		"What is the average Potassium concentration in the Malta region between 1920 and 1980? Round your answer to 4 decimal places.",
	}, v)
	if acc.MeasurePhrase == "" {
		t.Fatal("measure lost in merge")
	}
	if acc.Aggregate != "AVG" {
		t.Errorf("aggregate = %q", acc.Aggregate)
	}
	if acc.YearFrom != 1920 || acc.YearTo != 1980 {
		t.Errorf("years = %d-%d", acc.YearFrom, acc.YearTo)
	}
	if acc.RoundTo != 4 {
		t.Errorf("round = %d", acc.RoundTo)
	}
	if len(acc.Filters) != 1 || acc.Filters[0].Value != "Malta" {
		t.Errorf("filters = %+v", acc.Filters)
	}
	if acc.WantOverview {
		t.Error("overview flag must clear once the need is specific")
	}
}

func TestFilterRestatementDoesNotShadowMeasure(t *testing.T) {
	v := testVocab()
	acc := ParseAll([]string{
		"I'm particularly interested in the Potassium concentration measurements.",
		"Please focus on the Malta region only.",
	}, v)
	if acc.MeasurePhrase != "potassium concentration" {
		t.Fatalf("measure = %q, shadowed by filter restatement", acc.MeasurePhrase)
	}
}

func TestBuildPlanSingleTable(t *testing.T) {
	v := testVocab()
	intent := ParseUtterance(
		"What is the average Potassium in ppm for soil samples in the Malta region between 1920 and 1980? Round your answer to 4 decimal places.", v)
	tbl, col, _, _ := ResolveMeasure(v, intent.MeasurePhrase, intent.Topic)
	spec, queries, unresolved := BuildPlan(intent, v, tbl, col)
	if unresolved != "" {
		t.Fatalf("unresolved: %s", unresolved)
	}
	if spec.BaseTable != "soil_samples" {
		t.Errorf("base = %q", spec.BaseTable)
	}
	if len(queries) != 1 {
		t.Fatalf("queries = %v", queries)
	}
	q := queries[0]
	for _, want := range []string{"ROUND(AVG(k_ppm), 4)", "region = 'Malta'", "study_year BETWEEN 1920 AND 1980"} {
		if !contains(q, want) {
			t.Errorf("query missing %q:\n%s", want, q)
		}
	}
}

func TestBuildPlanCrossTableJoin(t *testing.T) {
	v := Vocab{Tables: []TableInfo{
		{
			Name: "air_pm25", Description: "Air readings",
			Columns: []ColumnInfo{
				{Name: "station_id", Type: "bigint", Description: "Station"},
				{Name: "year", Type: "bigint", Description: "Year"},
				{Name: "pm25_ugm3", Type: "double", Description: "Fine particulate matter concentration"},
			},
		},
		{
			Name: "stations", Description: "Stations registry",
			Columns: []ColumnInfo{
				{Name: "station_id", Type: "bigint", Description: "Station identifier"},
				{Name: "station_name", Type: "varchar", Description: "Station name",
					Samples: []string{"Alder Point"}},
			},
		},
	}}
	intent := ParseUtterance("What is the average fine particulate matter concentration at the Alder Point station?", v)
	tbl, col, _, _ := ResolveMeasure(v, intent.MeasurePhrase, intent.Topic)
	spec, queries, unresolved := BuildPlan(intent, v, tbl, col)
	if unresolved != "" {
		t.Fatalf("unresolved: %s", unresolved)
	}
	if spec.JoinTable != "stations" || spec.JoinLeftKey != "station_id" {
		t.Fatalf("join spec wrong: %+v", spec)
	}
	if !contains(queries[0], "station_name = 'Alder Point'") {
		t.Errorf("query missing station filter: %s", queries[0])
	}
}

func TestSharedKeyRejectsGenericColumns(t *testing.T) {
	a := TableInfo{Name: "a", Columns: []ColumnInfo{{Name: "year"}, {Name: "region"}}}
	b := TableInfo{Name: "b", Columns: []ColumnInfo{{Name: "year"}, {Name: "region"}}}
	if _, _, ok := sharedKey(a, b); ok {
		t.Fatal("year/region must not be join keys")
	}
	a.Columns = append(a.Columns, ColumnInfo{Name: "station_id"})
	b.Columns = append(b.Columns, ColumnInfo{Name: "station_id"})
	if l, r, ok := sharedKey(a, b); !ok || l != "station_id" || r != "station_id" {
		t.Fatalf("id key not found: %v %v %v", l, r, ok)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOfWordFree(s, sub))
}

func indexOfWordFree(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
