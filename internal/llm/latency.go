package llm

import "time"

// LatencyModel simulates hosted-LLM wall-clock latency from token counts:
// a fixed per-call overhead, a prefill rate for input tokens and a decode
// rate for output tokens. Combined with the agents' multi-call turns, the
// defaults land Pneuma-Seeker near the paper's measured 70.26 s per user
// prompt while the static baselines stay near-instant (they make no model
// calls at all).
type LatencyModel struct {
	// PerCall is the fixed connection/queueing overhead.
	PerCall time.Duration
	// PerInToken is the prefill cost per input token.
	PerInToken time.Duration
	// PerOutToken is the decode cost per output token.
	PerOutToken time.Duration
}

// DefaultLatency approximates a mid-2025 hosted reasoning model (O4-mini
// class, with hidden reasoning tokens folded into the decode rate): ~1.2 s
// overhead, ~0.5 ms/input token prefill, ~45 ms/output token decode. These
// constants are calibrated so Pneuma-Seeker's simulated per-prompt latency
// lands near the paper's measured 70.26 s.
var DefaultLatency = LatencyModel{
	PerCall:     1200 * time.Millisecond,
	PerInToken:  500 * time.Microsecond,
	PerOutToken: 55 * time.Millisecond,
}

// For returns the simulated latency of one call.
func (l LatencyModel) For(u Usage) time.Duration {
	return l.PerCall +
		time.Duration(u.InTokens)*l.PerInToken +
		time.Duration(u.OutTokens)*l.PerOutToken
}
