// Package textutil provides the text primitives shared by the BM25 index,
// the embedding model and the simulated language skills: tokenization,
// stopword filtering, a light suffix stemmer, n-gram extraction and string
// similarity measures.
package textutil

import (
	"strings"
	"unicode"
)

// stopwords is the small English stopword list applied by NormalizeTokens.
// It deliberately keeps domain-meaningful words ("first", "last", "average")
// out of the list because benchmark questions rely on them.
var stopwords = map[string]struct{}{
	"a": {}, "an": {}, "the": {}, "of": {}, "in": {}, "on": {}, "at": {},
	"to": {}, "for": {}, "and": {}, "or": {}, "is": {}, "are": {}, "was": {},
	"were": {}, "be": {}, "been": {}, "by": {}, "with": {}, "as": {},
	"that": {}, "this": {}, "these": {}, "those": {}, "it": {}, "its": {},
	"from": {}, "into": {}, "we": {}, "you": {}, "i": {}, "our": {},
	"your": {}, "me": {}, "my": {}, "do": {}, "does": {}, "did": {},
	"have": {}, "has": {}, "had": {}, "can": {}, "could": {}, "would": {},
	"should": {}, "will": {}, "what": {}, "which": {}, "who": {}, "how": {},
	"when": {}, "where": {}, "why": {}, "please": {}, "help": {},
}

// Tokenize splits text into lower-case word tokens. Letters and digits are
// kept; every other rune separates tokens. Underscores split identifiers so
// that column names like "k_ppm" yield ["k", "ppm"].
func Tokenize(text string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
			b.Reset()
		}
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r):
			b.WriteRune(unicode.ToLower(r))
		case unicode.IsDigit(r):
			b.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// IsStopword reports whether tok is in the stopword list.
func IsStopword(tok string) bool {
	_, ok := stopwords[tok]
	return ok
}

// Stem applies a light suffix stemmer (a truncated Porter variant): plural
// "-ies"→"y", "-sses"→"ss", trailing "s" dropped, "-ing"/"-ed" dropped when
// the stem stays ≥3 runes. It is intentionally conservative; recall matters
// more than linguistic purity for schema matching.
func Stem(tok string) string {
	n := len(tok)
	switch {
	case n > 4 && strings.HasSuffix(tok, "ies"):
		return tok[:n-3] + "y"
	case n > 5 && strings.HasSuffix(tok, "sses"):
		return tok[:n-2]
	case n > 3 && strings.HasSuffix(tok, "s") && !strings.HasSuffix(tok, "ss") && !strings.HasSuffix(tok, "us"):
		return tok[:n-1]
	}
	if n > 6 && strings.HasSuffix(tok, "ing") {
		return tok[:n-3]
	}
	if n > 5 && strings.HasSuffix(tok, "ed") {
		return tok[:n-2]
	}
	return tok
}

// NormalizeTokens tokenizes, drops stopwords and stems, producing the token
// stream the BM25 index and the embedder consume.
func NormalizeTokens(text string) []string {
	raw := Tokenize(text)
	out := make([]string, 0, len(raw))
	for _, tok := range raw {
		if IsStopword(tok) {
			continue
		}
		out = append(out, Stem(tok))
	}
	return out
}

// CharNGrams returns the distinct character n-grams of a token, used by the
// embedder to give morphologically related words overlapping features.
func CharNGrams(tok string, n int) []string {
	if n <= 0 || len(tok) < n {
		return nil
	}
	seen := make(map[string]struct{}, len(tok))
	var out []string
	for i := 0; i+n <= len(tok); i++ {
		g := tok[i : i+n]
		if _, dup := seen[g]; dup {
			continue
		}
		seen[g] = struct{}{}
		out = append(out, g)
	}
	return out
}

// Jaccard computes the Jaccard similarity of two token multisets treated as
// sets. Empty inputs yield 0.
func Jaccard(a, b []string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	sa := make(map[string]struct{}, len(a))
	for _, t := range a {
		sa[t] = struct{}{}
	}
	sb := make(map[string]struct{}, len(b))
	for _, t := range b {
		sb[t] = struct{}{}
	}
	inter := 0
	for t := range sa {
		if _, ok := sb[t]; ok {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Levenshtein computes the edit distance between two strings in O(len(a)·
// len(b)) time and O(min) space.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = minInt(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// Similarity maps Levenshtein distance into [0,1]: 1 means identical.
func Similarity(a, b string) float64 {
	if a == b {
		return 1
	}
	la, lb := len([]rune(a)), len([]rune(b))
	longest := la
	if lb > longest {
		longest = lb
	}
	if longest == 0 {
		return 1
	}
	return 1 - float64(Levenshtein(a, b))/float64(longest)
}

// TokenOverlap returns the fraction of a's normalized tokens found in b's
// normalized tokens; an asymmetric containment measure useful for matching a
// short query phrase against a longer description.
func TokenOverlap(a, b string) float64 {
	ta := NormalizeTokens(a)
	if len(ta) == 0 {
		return 0
	}
	tb := make(map[string]struct{})
	for _, t := range NormalizeTokens(b) {
		tb[t] = struct{}{}
	}
	hit := 0
	for _, t := range ta {
		if _, ok := tb[t]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(ta))
}

func minInt(xs ...int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
