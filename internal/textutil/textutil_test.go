package textutil

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"k_ppm", []string{"k", "ppm"}},
		{"avg-potassium ppm", []string{"avg", "potassium", "ppm"}},
		{"", nil},
		{"   ", nil},
		{"a1b2", []string{"a1b2"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestStem(t *testing.T) {
	cases := map[string]string{
		"studies":   "study",
		"tables":    "table",
		"classes":   "class",
		"process":   "process",
		"running":   "runn",
		"recorded":  "record",
		"sampling":  "sampl",
		"gas":       "gas", // too short for the -s rule
		"bus":       "bus",
		"potassium": "potassium",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestNormalizeTokensDropsStopwords(t *testing.T) {
	got := NormalizeTokens("What is the average of the samples?")
	for _, tok := range got {
		if IsStopword(tok) {
			t.Errorf("stopword %q survived normalization", tok)
		}
	}
	// "average" and "sample" must survive.
	found := map[string]bool{}
	for _, tok := range got {
		found[tok] = true
	}
	if !found["average"] || !found["sample"] {
		t.Errorf("NormalizeTokens lost content words: %v", got)
	}
}

func TestCharNGrams(t *testing.T) {
	got := CharNGrams("abcd", 3)
	want := []string{"abc", "bcd"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("CharNGrams = %v, want %v", got, want)
	}
	if CharNGrams("ab", 3) != nil {
		t.Error("short token should produce no n-grams")
	}
	// Duplicates collapse.
	got = CharNGrams("aaaa", 2)
	if !reflect.DeepEqual(got, []string{"aa"}) {
		t.Errorf("CharNGrams(aaaa,2) = %v, want [aa]", got)
	}
}

func TestJaccard(t *testing.T) {
	if got := Jaccard([]string{"a", "b"}, []string{"a", "b"}); got != 1 {
		t.Errorf("identical sets: %v, want 1", got)
	}
	if got := Jaccard([]string{"a"}, []string{"b"}); got != 0 {
		t.Errorf("disjoint sets: %v, want 0", got)
	}
	if got := Jaccard([]string{"a", "b"}, []string{"b", "c"}); got != 1.0/3.0 {
		t.Errorf("overlap: %v, want 1/3", got)
	}
	if got := Jaccard(nil, []string{"a"}); got != 0 {
		t.Errorf("empty input: %v, want 0", got)
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"same", "same", 0},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinProperties(t *testing.T) {
	symmetric := func(a, b string) bool {
		if len(a) > 30 || len(b) > 30 {
			return true
		}
		return Levenshtein(a, b) == Levenshtein(b, a)
	}
	if err := quick.Check(symmetric, &quick.Config{MaxCount: 50}); err != nil {
		t.Error("symmetry:", err)
	}
	identity := func(a string) bool {
		if len(a) > 50 {
			return true
		}
		return Levenshtein(a, a) == 0
	}
	if err := quick.Check(identity, &quick.Config{MaxCount: 50}); err != nil {
		t.Error("identity:", err)
	}
}

func TestSimilarity(t *testing.T) {
	if Similarity("abc", "abc") != 1 {
		t.Error("identical strings must have similarity 1")
	}
	if s := Similarity("supplier_id", "supplier_code"); s <= 0.4 {
		t.Errorf("related identifiers should be similar, got %v", s)
	}
	if s := Similarity("abc", "xyz"); s != 0 {
		t.Errorf("disjoint strings: %v, want 0", s)
	}
}

func TestTokenOverlap(t *testing.T) {
	if got := TokenOverlap("potassium ppm", "Potassium concentration in parts per million (ppm)"); got != 1 {
		t.Errorf("full containment should be 1, got %v", got)
	}
	if got := TokenOverlap("zirconium", "potassium levels"); got != 0 {
		t.Errorf("no overlap should be 0, got %v", got)
	}
}
