// Package websearch implements the paper's Web Search retriever (§3.3): "a
// thin interface to external search engines for general or up-to-date
// information lookup."
//
// No network exists offline, so the engine searches a seeded synthetic web
// corpus instead (the substitution documented in DESIGN.md §2). The corpus
// includes the tariff schedules the paper's running example retrieves from
// online sources, so the intro scenario exercises the same code path:
// Conductor asks IR System for tariff data → Web Search returns a page
// whose embedded table the Materializer integrates.
//
// Exactly as in the paper's evaluation, Web Search is disabled during
// benchmarks "to prevent leaking benchmark information from the internet".
package websearch

import (
	"context"
	"sync"
	"sync/atomic"

	"pneuma/internal/docs"
	"pneuma/internal/retriever"
	"pneuma/internal/table"
	"pneuma/internal/value"
)

// Page is one synthetic web page.
type Page struct {
	URL     string
	Title   string
	Content string
	// Table is an optional structured payload embedded in the page (e.g. a
	// tariff schedule) that the Materializer can integrate directly.
	Table *table.Table
}

// Engine is the simulated search engine.
type Engine struct {
	mu      sync.RWMutex
	index   *retriever.Retriever
	pages   map[string]Page
	enabled bool
	// version counts mutations that can change query results (page adds
	// and enable/disable toggles); the IR System's query cache keys on it.
	version atomic.Uint64
}

// New creates an engine over the given corpus. A nil corpus yields an empty
// (but enabled) engine; use BuiltinCorpus for the default pages.
func New(corpus []Page) *Engine {
	// A single shard: the synthetic web corpus is small and grows one page
	// at a time, so shard fan-out would only fragment BM25 statistics.
	e := &Engine{
		index:   retriever.New(retriever.WithShards(1)),
		pages:   make(map[string]Page),
		enabled: true,
	}
	for _, p := range corpus {
		e.AddPage(p)
	}
	return e
}

// AddPage indexes one page.
func (e *Engine) AddPage(p Page) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.pages[p.URL] = p
	_ = e.index.IndexDocument(context.Background(), docs.Document{
		ID:      p.URL,
		Kind:    docs.KindWeb,
		Title:   p.Title,
		Content: p.Title + "\n" + p.Content,
		Source:  "web-search",
		Table:   p.Table,
		Meta:    map[string]string{"url": p.URL},
	})
	// Increment only after the page is searchable: a concurrent reader
	// must never cache a page-less result under the post-mutation version.
	e.version.Add(1)
}

// SetEnabled toggles the engine. Benchmarks disable it, matching §4's
// "with Web Search disabled".
func (e *Engine) SetEnabled(on bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.enabled = on
	e.version.Add(1)
}

// Version returns the mutation counter; equal versions imply identical
// query results for identical queries.
func (e *Engine) Version() uint64 { return e.version.Load() }

// Enabled reports whether the engine answers queries.
func (e *Engine) Enabled() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.enabled
}

// Search returns the top-k pages for the query, or nothing when disabled.
// Cancellation propagates to the underlying hybrid index.
func (e *Engine) Search(ctx context.Context, query string, k int) ([]docs.Document, error) {
	e.mu.RLock()
	on := e.enabled
	e.mu.RUnlock()
	if !on {
		return nil, nil
	}
	return e.index.Search(ctx, query, k)
}

// Len returns the corpus size.
func (e *Engine) Len() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.pages)
}

// BuiltinCorpus returns the default synthetic web corpus: tariff schedules
// (current and historical) for the intro scenario, plus distractor pages so
// retrieval has to discriminate.
func BuiltinCorpus() []Page {
	tariffs := table.New(table.Schema{
		Name:        "web_tariff_schedule",
		Description: "Import tariff schedule by country with current and previous rates",
		Columns: []table.Column{
			{Name: "country", Type: value.KindString, Description: "Exporting country"},
			{Name: "category", Type: value.KindString, Description: "Goods category"},
			{Name: "new_tariff", Type: value.KindFloat, Description: "Newly announced tariff rate (fraction)"},
			{Name: "prev_tariff", Type: value.KindFloat, Description: "Previously active tariff rate (fraction)"},
			{Name: "effective_date", Type: value.KindTime, Description: "Date the new rate takes effect"},
		},
	})
	rows := []struct {
		country, category string
		newT, prevT       float64
		date              string
	}{
		{"Germany", "lab equipment", 0.12, 0.05, "2026-02-01"},
		{"Germany", "machinery", 0.10, 0.05, "2026-02-01"},
		{"Germany", "chemicals", 0.08, 0.04, "2026-02-01"},
		{"France", "lab equipment", 0.07, 0.07, "2026-01-15"},
		{"France", "machinery", 0.09, 0.06, "2026-01-15"},
		{"China", "electronics", 0.25, 0.10, "2026-03-01"},
		{"China", "machinery", 0.20, 0.10, "2026-03-01"},
		{"Japan", "electronics", 0.05, 0.05, "2026-01-01"},
		{"USA", "domestic", 0.00, 0.00, "2026-01-01"},
	}
	for _, r := range rows {
		t, _ := value.ParseTime(r.date)
		tariffs.MustAppend(table.Row{
			value.String(r.country), value.String(r.category),
			value.Float(r.newT), value.Float(r.prevT), value.Time(t),
		})
	}

	return []Page{
		{
			URL:   "https://trade.example.gov/tariff-schedule-2026",
			Title: "2026 Import Tariff Schedule: New and Previous Rates by Country",
			Content: "Official import tariff schedule listing newly announced tariff " +
				"rates and previously active tariff rates by exporting country and " +
				"goods category, including Germany, France, China and Japan. " +
				"Effective dates included for each rate change.",
			Table: tariffs,
		},
		{
			URL:   "https://news.example.com/tariff-impact-analysis",
			Title: "Analysts: New Tariffs To Raise Procurement Costs For Importers",
			Content: "Commentary on how the 2026 tariff changes will affect organizations " +
				"that import lab equipment and machinery. Direct effects apply to goods " +
				"from tariffed countries; indirect effects arise from tariffed components " +
				"inside otherwise unaffected imports.",
		},
		{
			URL:   "https://weather.example.com/forecast",
			Title: "10-Day Weather Forecast",
			Content: "Sunny with a chance of rain. Temperatures mild across the region " +
				"this week. Pollen counts moderate.",
		},
		{
			URL:   "https://recipes.example.com/brisket",
			Title: "Slow-Cooked Brisket Recipe",
			Content: "A weekend recipe for slow-cooked brisket with spices. " +
				"Preparation time four hours.",
		},
	}
}
