package websearch

import (
	"context"
	"testing"
)

func TestBuiltinCorpusTariffRetrieval(t *testing.T) {
	e := New(BuiltinCorpus())
	if e.Len() != 4 {
		t.Fatalf("corpus size = %d", e.Len())
	}
	hits, err := e.Search(context.Background(), "previously active tariff rates by country", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("no hits for tariff query")
	}
	if hits[0].Table == nil {
		t.Fatalf("top tariff hit should embed the schedule table: %v", hits[0].Title)
	}
	if hits[0].Table.Schema.ColumnIndex("prev_tariff") < 0 {
		t.Error("tariff table missing prev_tariff column")
	}
}

func TestDisableMatchesBenchmarkProtocol(t *testing.T) {
	e := New(BuiltinCorpus())
	e.SetEnabled(false)
	if e.Enabled() {
		t.Fatal("engine should report disabled")
	}
	hits, err := e.Search(context.Background(), "tariff", 3)
	if err != nil || hits != nil {
		t.Fatalf("disabled engine must return nothing: %v %v", hits, err)
	}
	e.SetEnabled(true)
	hits, _ = e.Search(context.Background(), "tariff", 3)
	if len(hits) == 0 {
		t.Fatal("re-enabled engine must answer")
	}
}

func TestDistractorsDoNotWin(t *testing.T) {
	e := New(BuiltinCorpus())
	hits, _ := e.Search(context.Background(), "import tariff schedule", 1)
	if len(hits) != 1 || hits[0].Meta["url"] != "https://trade.example.gov/tariff-schedule-2026" {
		t.Fatalf("wrong top hit: %v", hits)
	}
}

func TestAddPage(t *testing.T) {
	e := New(nil)
	e.AddPage(Page{URL: "https://x.example/a", Title: "Quarterly Llama Census", Content: "llamas counted quarterly"})
	hits, _ := e.Search(context.Background(), "llama census", 1)
	if len(hits) != 1 {
		t.Fatalf("added page not searchable: %v", hits)
	}
}
