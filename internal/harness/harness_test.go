package harness

import (
	"context"
	"strings"
	"testing"

	"pneuma/internal/kramabench"
	"pneuma/internal/llm"
)

func TestTable1For(t *testing.T) {
	arch := kramabench.Archaeology()
	row := Table1For("Archeology", arch)
	if row.NumTables != 5 || row.AvgRows != 11289 || row.AvgCols != 16 {
		t.Fatalf("Table 1 archaeology row = %+v", row)
	}
	env := kramabench.Environment()
	row = Table1For("Environment", env)
	if row.NumTables != 36 || row.AvgRows != 9199 || row.AvgCols != 10 {
		t.Fatalf("Table 1 environment row = %+v", row)
	}
}

func TestBuildTokenUsageCosts(t *testing.T) {
	// The paper's archaeology row: 248,351 in / 2,854 out.
	row := BuildTokenUsage("Archeology", 248_351, 2_854, 70.26)
	if got := row.CostsIn["o4-mini"]; got < 0.26 || got > 0.28 {
		t.Errorf("o4-mini in = %.4f, want ~0.27", got)
	}
	if got := row.CostsIn["o3"]; got < 0.49 || got > 0.51 {
		t.Errorf("o3 in = %.4f, want ~0.50", got)
	}
	if got := row.CostsIn["opus-4.5"]; got < 1.23 || got > 1.25 {
		t.Errorf("opus in = %.4f, want ~1.24", got)
	}
	if got := row.CostsIn["sonnet-4.5"]; got < 1.45 || got > 1.55 {
		t.Errorf("sonnet long-context in = %.4f, want ~1.49", got)
	}
}

func TestRenderers(t *testing.T) {
	t1 := RenderTable1([]Table1Row{{Dataset: "X", NumTables: 5, AvgRows: 10, AvgCols: 3}})
	if !strings.Contains(t1, "Table 1") || !strings.Contains(t1, "X") {
		t.Errorf("table1 render:\n%s", t1)
	}
	fig := RenderFigure("Figure 4", []ConvergenceSummary{
		{System: "A", Pct: 80, MedianTurns: 4},
		{System: "B", Pct: 20, MedianTurns: 10},
	})
	if !strings.Contains(fig, "A") || !strings.Contains(fig, "median turns") {
		t.Errorf("figure render:\n%s", fig)
	}
	t3 := RenderTable3(
		[]AccuracySummary{{System: "S", Pct: 41.67}},
		[]AccuracySummary{{System: "S", Pct: 55.00}},
	)
	if !strings.Contains(t3, "41.67%") || !strings.Contains(t3, "55.00%") {
		t.Errorf("table3 render:\n%s", t3)
	}
	t2 := RenderTable2([]TokenUsageRow{BuildTokenUsage("X", 100_000, 1_000, 50)})
	if !strings.Contains(t2, "Table 2") {
		t.Errorf("table2 render:\n%s", t2)
	}
	o3 := RenderO3(AccuracySummary{Total: 12, ContextExceededCount: 7},
		AccuracySummary{Total: 20, Correct: 2, ContextExceededCount: 17})
	if !strings.Contains(o3, "17/20") {
		t.Errorf("o3 render:\n%s", o3)
	}
	lat := RenderLatency([]TokenUsageRow{{Dataset: "X", AvgSimSec: 70.3}}, []string{"FTS"})
	if !strings.Contains(lat, "70.30") && !strings.Contains(lat, "70.3") {
		t.Errorf("latency render:\n%s", lat)
	}
}

func TestMedian(t *testing.T) {
	if m := median(nil, 15); m != 15 {
		t.Errorf("empty median = %v", m)
	}
	if m := median([]int{3, 1, 2}, 15); m != 2 {
		t.Errorf("odd median = %v", m)
	}
	if m := median([]int{1, 2, 3, 4}, 15); m != 2.5 {
		t.Errorf("even median = %v", m)
	}
}

// TestConvergenceRunnerOnStaticSystem exercises the full user-sim loop with
// overflow accounting against a cheap fake system.
func TestConvergenceRunnerOnFakeSystem(t *testing.T) {
	corpus := kramabench.Archaeology()
	questions := kramabench.ArchaeologyQuestions(corpus)[:2]
	sys, err := NewSeekerSystem(corpus, nil)
	if err != nil {
		t.Fatal(err)
	}
	sim := llm.NewSimModel(llm.WithProfile("gpt-4o"))
	sum, err := RunConvergence(context.Background(), sys, questions, sim, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Results) != 2 {
		t.Fatalf("results = %d", len(sum.Results))
	}
	if sum.Pct < 100 {
		t.Fatalf("A1+A2 must both converge, got %.1f%%", sum.Pct)
	}
	if sum.MedianTurns <= 0 || sum.MedianTurns > 15 {
		t.Fatalf("median turns = %v", sum.MedianTurns)
	}
	for _, r := range sum.Results {
		if len(r.Transcript) == 0 {
			t.Error("transcript missing")
		}
	}
}
