package harness

import (
	"context"
	"errors"

	"pneuma/internal/baselines"
	"pneuma/internal/kramabench"
	"pneuma/internal/llm"
)

// QuestionOutcome records one accuracy attempt.
type QuestionOutcome struct {
	QuestionID string
	Answer     string
	Expected   string
	Correct    bool
	// Err is the failure reason when the system produced no answer.
	Err string
	// ContextExceeded marks the O3 overflow failure specifically.
	ContextExceeded bool
}

// AccuracySummary aggregates RQ2 for one system — one row of Table 3.
type AccuracySummary struct {
	System   string
	Correct  int
	Total    int
	Pct      float64
	Outcomes []QuestionOutcome
	// ContextExceededCount counts overflow failures (the in-text O3
	// result).
	ContextExceededCount int
}

// RunAccuracy evaluates an answerer over a question bank against the
// oracle's ground truth.
func RunAccuracy(ctx context.Context, sys baselines.Answerer, questions []kramabench.Question) AccuracySummary {
	sum := AccuracySummary{System: sys.Name(), Total: len(questions)}
	for _, q := range questions {
		outcome := QuestionOutcome{QuestionID: q.ID, Expected: q.Answer}
		ans, err := sys.AnswerQuestion(ctx, q)
		if err != nil {
			outcome.Err = err.Error()
			outcome.ContextExceeded = errors.Is(err, llm.ErrContextLengthExceeded)
			if outcome.ContextExceeded {
				sum.ContextExceededCount++
			}
		} else {
			outcome.Answer = ans
			outcome.Correct = q.AnswersMatch(ans)
		}
		if outcome.Correct {
			sum.Correct++
		}
		sum.Outcomes = append(sum.Outcomes, outcome)
	}
	if sum.Total > 0 {
		sum.Pct = 100 * float64(sum.Correct) / float64(sum.Total)
	}
	return sum
}

// RAGAnswerer adapts the RAG baseline to RQ2: it runs the conversation like
// the seeker but can never produce a computed answer — reproducing
// LlamaIndex's 0% in Table 3 ("the questions require actual computation").
type RAGAnswerer struct {
	system baselines.System
	sim    llm.Model
}

// NewRAGAnswerer wraps a RAG system for accuracy runs.
func NewRAGAnswerer(system baselines.System, sim llm.Model) *RAGAnswerer {
	if sim == nil {
		sim = llm.NewSimModel(llm.WithProfile("gpt-4o"))
	}
	return &RAGAnswerer{system: system, sim: sim}
}

// Name implements baselines.Answerer.
func (a *RAGAnswerer) Name() string { return a.system.Name() }

// AnswerQuestion implements baselines.Answerer.
func (a *RAGAnswerer) AnswerQuestion(ctx context.Context, q kramabench.Question) (string, error) {
	res, err := RunConversation(ctx, a.system, q, a.sim, DefaultMaxTurns)
	if err != nil {
		return "", err
	}
	if res.FinalAnswer == "" {
		return "", errors.New("rag: interpretation only, no computed answer")
	}
	return res.FinalAnswer, nil
}
