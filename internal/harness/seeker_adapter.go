// Package harness runs the paper's evaluation (§4): the RQ1 convergence
// experiment (Figures 4 and 5), the RQ2 accuracy experiment (Table 3 and
// the in-text O3 results), the token/cost accounting (Table 2) and the
// latency trade-off, over the kramabench datasets with Web Search disabled.
package harness

import (
	"context"
	"fmt"

	"pneuma/internal/baselines"
	"pneuma/internal/core"
	"pneuma/internal/kramabench"
	"pneuma/internal/llm"
	"pneuma/internal/table"
)

// SeekerSystem adapts core.Seeker to the baselines.System interface used by
// the convergence runner.
type SeekerSystem struct {
	seeker *core.Seeker
}

// NewSeekerSystem assembles a Pneuma-Seeker over the corpus with benchmark
// settings (Web Search disabled, defaults everywhere else) unless a custom
// config is supplied.
func NewSeekerSystem(corpus map[string]*table.Table, cfg *core.Config) (*SeekerSystem, error) {
	c := core.Config{}
	if cfg != nil {
		c = *cfg
	}
	s, err := core.New(context.Background(), c, corpus, nil, nil)
	if err != nil {
		return nil, err
	}
	return &SeekerSystem{seeker: s}, nil
}

// Seeker exposes the wrapped system (meter access for Table 2).
func (s *SeekerSystem) Seeker() *core.Seeker { return s.seeker }

// Name implements baselines.System.
func (s *SeekerSystem) Name() string { return "Pneuma-Seeker" }

// Kind implements baselines.System.
func (s *SeekerSystem) Kind() string { return "seeker" }

// StartConversation implements baselines.System.
func (s *SeekerSystem) StartConversation() baselines.Conversation {
	return &seekerConv{sess: s.seeker.NewSession("llm-sim")}
}

type seekerConv struct {
	sess *core.Session
}

func (c *seekerConv) Respond(ctx context.Context, utterance string) (baselines.Output, error) {
	reply, err := c.sess.Send(ctx, utterance)
	if err != nil {
		// A hard system error still yields a user-visible surface; the
		// conversation continues (and likely fails to converge), matching
		// how a real deployment degrades.
		return baselines.Output{
			Message:       fmt.Sprintf("The system hit an internal error: %v", err),
			ContextTokens: 64,
		}, nil
	}
	state := reply.State
	out := baselines.Output{
		Message:          reply.Message,
		MentionedColumns: reply.MentionedColumns,
		State:            &state,
		Answer:           reply.Answer,
	}
	out.ContextTokens = llm.EstimateTokens(reply.Message) + stateTokens(&state)
	return out, nil
}

// stateTokens estimates the context cost of the surfaced state view.
func stateTokens(s *llm.StateInfo) int {
	n := 0
	for _, q := range s.Queries {
		n += llm.EstimateTokens(q)
	}
	for _, t := range s.Tables {
		n += 8 * len(t.Columns)
	}
	n += llm.EstimateTokens(s.ResultPreview)
	return n
}

// SeekerAnswerer runs full simulated conversations to answer benchmark
// questions — Pneuma-Seeker's RQ2 configuration.
type SeekerAnswerer struct {
	system *SeekerSystem
	sim    llm.Model
}

// NewSeekerAnswerer wraps a SeekerSystem for accuracy runs.
func NewSeekerAnswerer(system *SeekerSystem, sim llm.Model) *SeekerAnswerer {
	if sim == nil {
		sim = llm.NewSimModel(llm.WithProfile("gpt-4o"))
	}
	return &SeekerAnswerer{system: system, sim: sim}
}

// Name implements baselines.Answerer.
func (a *SeekerAnswerer) Name() string { return "Pneuma-Seeker" }

// AnswerQuestion implements baselines.Answerer: the answer is whatever the
// system has computed by the end of the simulated conversation.
func (a *SeekerAnswerer) AnswerQuestion(ctx context.Context, q kramabench.Question) (string, error) {
	res, err := RunConversation(ctx, a.system, q, a.sim, DefaultMaxTurns)
	if err != nil {
		return "", err
	}
	if res.FinalAnswer == "" {
		return "", fmt.Errorf("seeker: conversation ended without an answer")
	}
	return res.FinalAnswer, nil
}
