package harness

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"pneuma/internal/baselines"
	"pneuma/internal/kramabench"
	"pneuma/internal/llm"
	"pneuma/internal/table"
)

// Report bundles everything pneuma-bench and the testing benches print:
// one reproduction of every table and figure in the paper.
type Report struct {
	Dataset      string
	Table1       Table1Row
	Convergence  []ConvergenceSummary // Figure 4 or 5
	Accuracy     []AccuracySummary    // Table 3 rows
	O3           AccuracySummary      // in-text O3 result
	TokenUsage   TokenUsageRow        // Table 2 row
	LatencyBySys map[string]time.Duration
}

// Table1Row is one row of the paper's Table 1.
type Table1Row struct {
	Dataset   string
	NumTables int
	AvgRows   int
	AvgCols   int
}

// Table1For computes dataset characteristics.
func Table1For(name string, corpus map[string]*table.Table) Table1Row {
	rows, cols := 0, 0
	for _, t := range corpus {
		rows += t.NumRows()
		cols += t.NumCols()
	}
	n := len(corpus)
	if n == 0 {
		return Table1Row{Dataset: name}
	}
	return Table1Row{Dataset: name, NumTables: n, AvgRows: rows / n, AvgCols: cols / n}
}

// TokenUsageRow is one row of the paper's Table 2: average tokens per
// interaction and the projected cost under each model in the catalog.
type TokenUsageRow struct {
	Dataset   string
	AvgIn     int
	AvgOut    int
	CostsIn   map[string]float64
	CostsOut  map[string]float64
	AvgSimSec float64 // average simulated seconds per user prompt
}

// BuildTokenUsage converts a per-interaction average usage into Table 2
// costs across the catalog.
func BuildTokenUsage(dataset string, avgIn, avgOut int, avgSimSec float64) TokenUsageRow {
	row := TokenUsageRow{
		Dataset: dataset, AvgIn: avgIn, AvgOut: avgOut, AvgSimSec: avgSimSec,
		CostsIn: map[string]float64{}, CostsOut: map[string]float64{},
	}
	for _, id := range llm.Table2Models {
		p := llm.Catalog[id]
		in, out := p.Cost(llm.Usage{InTokens: avgIn, OutTokens: avgOut})
		row.CostsIn[id] = in
		row.CostsOut[id] = out
	}
	return row
}

// RenderTable1 prints both datasets' characteristics like the paper's
// Table 1.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1: Characteristics of the Datasets\n")
	fmt.Fprintf(&b, "%-14s %9s %11s %11s\n", "Dataset", "# Tables", "Avg. #Rows", "Avg. #Cols")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %9d %11d %11d\n", r.Dataset, r.NumTables, r.AvgRows, r.AvgCols)
	}
	return b.String()
}

// RenderFigure prints one convergence scatter (Figure 4 or 5) as a table of
// points plus an ASCII quadrant sketch.
func RenderFigure(title string, sums []ConvergenceSummary) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "%-18s %14s %18s\n", "System", "Convergence %", "Median Turns")
	for _, s := range sums {
		fmt.Fprintf(&b, "%-18s %14.1f %18.1f\n", s.System, s.Pct, s.MedianTurns)
	}
	b.WriteString(renderScatter(sums))
	return b.String()
}

// renderScatter draws convergence% (y) vs median turns (x) in ASCII.
func renderScatter(sums []ConvergenceSummary) string {
	const w, h = 46, 12
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	marks := map[string]byte{}
	legend := []string{}
	for i, s := range sums {
		mark := byte('1' + i)
		marks[s.System] = mark
		legend = append(legend, fmt.Sprintf("%c=%s", mark, s.System))
		x := int(s.MedianTurns / 15 * float64(w-1))
		if x >= w {
			x = w - 1
		}
		y := h - 1 - int(s.Pct/100*float64(h-1))
		if y < 0 {
			y = 0
		}
		if y >= h {
			y = h - 1
		}
		grid[y][x] = mark
	}
	var b strings.Builder
	b.WriteString("  100% ┌" + strings.Repeat("─", w) + "┐  (high convergence, low turns = top-left)\n")
	for i, row := range grid {
		label := "       "
		if i == h-1 {
			label = "    0% "
		}
		b.WriteString(label + "│" + string(row) + "│\n")
	}
	b.WriteString("       └" + strings.Repeat("─", w) + "┘\n")
	b.WriteString("        0        median turns to convergence       15\n")
	b.WriteString("        " + strings.Join(legend, "  ") + "\n")
	return b.String()
}

// RenderTable3 prints the accuracy comparison like the paper's Table 3.
func RenderTable3(arch, env []AccuracySummary) string {
	var b strings.Builder
	b.WriteString("Table 3: Comparison of Accuracy across Datasets\n")
	fmt.Fprintf(&b, "%-20s %14s %14s\n", "System", "Archeology", "Environment")
	for i := range arch {
		fmt.Fprintf(&b, "%-20s %13.2f%% %13.2f%%\n", arch[i].System, arch[i].Pct, env[i].Pct)
	}
	return b.String()
}

// RenderTable2 prints token usage and costs like the paper's Table 2.
func RenderTable2(rows []TokenUsageRow) string {
	var b strings.Builder
	b.WriteString("Table 2: Estimated Average Token Usage and Costs Across Different LLMs\n")
	fmt.Fprintf(&b, "%-13s %10s %9s", "Dataset", "Avg In", "Avg Out")
	for _, id := range llm.Table2Models {
		fmt.Fprintf(&b, " %16s", llm.Catalog[id].Name+" In/Out")
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-13s %10d %9d", r.Dataset, r.AvgIn, r.AvgOut)
		for _, id := range llm.Table2Models {
			fmt.Fprintf(&b, "   $%5.2f/$%5.2f ", r.CostsIn[id], r.CostsOut[id])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderO3 prints the in-text O3 full-context result.
func RenderO3(arch, env AccuracySummary) string {
	var b strings.Builder
	b.WriteString("In-text result: O3 with whole relevant tables in context\n")
	fmt.Fprintf(&b, "  archaeology: context exceeded on %d/%d questions, %d correct\n",
		arch.ContextExceededCount, arch.Total, arch.Correct)
	fmt.Fprintf(&b, "  environment: context exceeded on %d/%d questions, %d correct\n",
		env.ContextExceededCount, env.Total, env.Correct)
	return b.String()
}

// RenderLatency prints the latency trade-off.
func RenderLatency(rows []TokenUsageRow, static []string) string {
	var b strings.Builder
	b.WriteString("Latency trade-off (simulated):\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  Pneuma-Seeker [%s]: %.2f s per user prompt\n", r.Dataset, r.AvgSimSec)
	}
	for _, s := range static {
		fmt.Fprintf(&b, "  %s: answers almost instantaneously (no model calls)\n", s)
	}
	return b.String()
}

// EvalOptions configures RunFullEvaluation.
type EvalOptions struct {
	MaxTurns int
}

// DatasetEvaluation is the complete RQ1+RQ2 result set for one dataset.
type DatasetEvaluation struct {
	Dataset     string
	Table1      Table1Row
	Convergence []ConvergenceSummary
	RQ2         []AccuracySummary // LlamaIndex, DS-Guru, Seeker (Table 3 order)
	O3          AccuracySummary
	Tokens      TokenUsageRow
}

// RunFullEvaluation runs everything the paper's §4 reports for one
// dataset. The context bounds the whole sweep; cancellation aborts
// between conversations.
func RunFullEvaluation(ctx context.Context, dataset string, corpus map[string]*table.Table, questions []kramabench.Question, opts EvalOptions) (DatasetEvaluation, error) {
	if opts.MaxTurns <= 0 {
		opts.MaxTurns = DefaultMaxTurns
	}
	out := DatasetEvaluation{Dataset: dataset, Table1: Table1For(dataset, corpus)}
	sim := llm.NewSimModel(llm.WithProfile("gpt-4o"))

	fts := baselines.NewFTS(corpus)
	retOnly, err := baselines.NewRetrieverOnly(corpus)
	if err != nil {
		return out, err
	}
	rag, err := baselines.NewRAG(corpus, nil)
	if err != nil {
		return out, err
	}
	seeker, err := NewSeekerSystem(corpus, nil)
	if err != nil {
		return out, err
	}

	// RQ1 (Figure 4/5): the four systems in the paper's legend order.
	for _, sys := range []baselines.System{fts, retOnly, rag, seeker} {
		sum, err := RunConvergence(ctx, sys, questions, sim, opts.MaxTurns)
		if err != nil {
			return out, err
		}
		out.Convergence = append(out.Convergence, sum)
	}

	// Table 2: average seeker-side token usage per interaction, measured
	// during the RQ1 sweep.
	meter := seeker.Seeker().Meter().Snapshot()
	n := len(questions)
	avgIn := meter.Total.InTokens / n
	avgOut := meter.Total.OutTokens / n
	prompts := 0
	for _, s := range out.Convergence {
		if s.System == "Pneuma-Seeker" {
			for _, r := range s.Results {
				prompts += len(r.Transcript)
			}
		}
	}
	avgSec := 0.0
	if prompts > 0 {
		avgSec = meter.TotalLatency.Seconds() / float64(prompts)
	}
	out.Tokens = BuildTokenUsage(dataset, avgIn, avgOut, avgSec)

	// RQ2 (Table 3): fresh systems so accuracy runs do not share state.
	rag2, err := baselines.NewRAG(corpus, nil)
	if err != nil {
		return out, err
	}
	seeker2, err := NewSeekerSystem(corpus, nil)
	if err != nil {
		return out, err
	}
	out.RQ2 = []AccuracySummary{
		RunAccuracy(ctx, NewRAGAnswerer(rag2, sim), questions),
		RunAccuracy(ctx, baselines.NewDSGuru(corpus, nil), questions),
		RunAccuracy(ctx, NewSeekerAnswerer(seeker2, sim), questions),
	}
	out.O3 = RunAccuracy(ctx, baselines.NewFullContext(corpus, nil), questions)
	return out, nil
}

// SortedSystems returns convergence summaries sorted by convergence pct
// descending (for assertions and displays).
func SortedSystems(sums []ConvergenceSummary) []ConvergenceSummary {
	out := append([]ConvergenceSummary{}, sums...)
	sort.Slice(out, func(i, j int) bool { return out[i].Pct > out[j].Pct })
	return out
}
