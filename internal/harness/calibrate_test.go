package harness

import (
	"context"
	"os"
	"testing"

	"pneuma/internal/baselines"
	"pneuma/internal/kramabench"
	"pneuma/internal/llm"
	"pneuma/internal/table"
)

// TestCalibrationSweep prints the full RQ1/RQ2 picture for both datasets.
// It asserts only the paper's qualitative shapes; exact percentages are
// reported by the bench harness, which runs the same sweep. Because the
// sweep takes several minutes it is opt-in: set PNEUMA_SWEEP=1.
func TestCalibrationSweep(t *testing.T) {
	if os.Getenv("PNEUMA_SWEEP") == "" {
		t.Skip("set PNEUMA_SWEEP=1 to run the full evaluation sweep (the bench harness covers it)")
	}
	for _, ds := range []struct {
		name      string
		corpus    map[string]*table.Table
		questions []kramabench.Question
	}{
		{"archaeology", kramabench.Archaeology(), nil},
		{"environment", kramabench.Environment(), nil},
	} {
		corpus := ds.corpus
		var questions []kramabench.Question
		if ds.name == "archaeology" {
			questions = kramabench.ArchaeologyQuestions(corpus)
		} else {
			questions = kramabench.EnvironmentQuestions(corpus)
		}
		sim := llm.NewSimModel(llm.WithProfile("gpt-4o"))

		seeker, err := NewSeekerSystem(corpus, nil)
		if err != nil {
			t.Fatal(err)
		}
		fts := baselines.NewFTS(corpus)
		retOnly, err := baselines.NewRetrieverOnly(corpus)
		if err != nil {
			t.Fatal(err)
		}
		rag, err := baselines.NewRAG(corpus, nil)
		if err != nil {
			t.Fatal(err)
		}

		sums := map[string]ConvergenceSummary{}
		for _, sys := range []baselines.System{fts, retOnly, rag, seeker} {
			sum, err := RunConvergence(context.Background(), sys, questions, sim, DefaultMaxTurns)
			if err != nil {
				t.Fatalf("%s/%s: %v", ds.name, sys.Name(), err)
			}
			sums[sys.Name()] = sum
			t.Logf("[%s] RQ1 %-18s conv=%5.1f%% medianTurns=%.1f", ds.name, sys.Name(), sum.Pct, sum.MedianTurns)
			for _, r := range sum.Results {
				if !r.Converged {
					t.Logf("    not converged: %s (gaveUp=%v turns=%d overflows=%d)", r.QuestionID, r.GaveUp, r.Turns, r.Overflows)
				}
			}
		}

		// RQ2.
		seekerAcc := RunAccuracy(context.Background(), NewSeekerAnswerer(seeker, sim), questions)
		dsguru := baselines.NewDSGuru(corpus, nil)
		dsguruAcc := RunAccuracy(context.Background(), dsguru, questions)
		ragAcc := RunAccuracy(context.Background(), NewRAGAnswerer(rag, sim), questions)
		o3 := baselines.NewFullContext(corpus, nil)
		o3Acc := RunAccuracy(context.Background(), o3, questions)

		for _, acc := range []AccuracySummary{ragAcc, dsguruAcc, seekerAcc, o3Acc} {
			t.Logf("[%s] RQ2 %-18s acc=%d/%d (%.2f%%) ctxExceeded=%d", ds.name, acc.System, acc.Correct, acc.Total, acc.Pct, acc.ContextExceededCount)
			for _, o := range acc.Outcomes {
				status := "OK "
				if !o.Correct {
					status = "BAD"
				}
				t.Logf("    %s %-4s got=%q want=%q err=%q", status, o.QuestionID, o.Answer, o.Expected, truncate(o.Err, 90))
			}
		}

		// Qualitative shapes from the paper.
		if !(sums["Pneuma-Seeker"].Pct >= sums["LlamaIndex"].Pct) {
			t.Errorf("[%s] seeker convergence must be >= LlamaIndex", ds.name)
		}
		if !(sums["LlamaIndex"].Pct > sums["FTS"].Pct) {
			t.Errorf("[%s] LlamaIndex convergence must beat FTS", ds.name)
		}
		if ragAcc.Correct != 0 {
			t.Errorf("[%s] LlamaIndex accuracy must be 0, got %d", ds.name, ragAcc.Correct)
		}
		if !(seekerAcc.Pct > dsguruAcc.Pct) {
			t.Errorf("[%s] seeker accuracy must beat DS-Guru", ds.name)
		}
	}
}
