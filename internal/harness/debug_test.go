package harness

import (
	"context"
	"os"
	"testing"

	"pneuma/internal/kramabench"
	"pneuma/internal/llm"
)

// TestDebugQuestion prints the full transcript for one question; select it
// with PNEUMA_DEBUG_Q (e.g. "A4" or "E12"). Skipped when unset.
func TestDebugQuestion(t *testing.T) {
	id := os.Getenv("PNEUMA_DEBUG_Q")
	if id == "" {
		t.Skip("set PNEUMA_DEBUG_Q to run")
	}
	var corpus = kramabench.Archaeology()
	questions := kramabench.ArchaeologyQuestions(corpus)
	if id[0] == 'E' {
		corpus = kramabench.Environment()
		questions = kramabench.EnvironmentQuestions(corpus)
	}
	var q kramabench.Question
	for _, c := range questions {
		if c.ID == id {
			q = c
		}
	}
	if q.ID == "" {
		t.Fatalf("unknown question %s", id)
	}
	sys, err := NewSeekerSystem(corpus, nil)
	if err != nil {
		t.Fatal(err)
	}
	sim := llm.NewSimModel(llm.WithProfile("gpt-4o"))
	res, err := RunConversation(context.Background(), sys, q, sim, DefaultMaxTurns)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range res.Transcript {
		t.Logf("turn %d USER: %s", i+1, e.User)
		t.Logf("turn %d SYS : %s", i+1, e.System)
	}
	t.Logf("converged=%v gaveUp=%v turns=%d answer=%q expected=%q",
		res.Converged, res.GaveUp, res.Turns, res.FinalAnswer, q.Answer)

	// Replay the same utterances directly to inspect state and actions.
	if os.Getenv("PNEUMA_DEBUG_REPLAY") != "" {
		conv := sys.StartConversation().(*seekerConv)
		for _, e := range res.Transcript {
			reply, err := conv.sess.Send(context.Background(), e.User)
			if err != nil {
				t.Logf("REPLAY error: %v", err)
				continue
			}
			t.Logf("REPLAY user=%q answer=%q clarify=%v forced=%v", e.User, reply.Answer, reply.Clarify, reply.Forced)
			for _, a := range reply.Actions {
				t.Logf("  action=%s detail=%s err=%s reasoning=%s", a.Action, a.Detail, a.Err, truncate(a.Reasoning, 120))
			}
			t.Logf("  state: %v", reply.State.Queries)
			t.Logf("  preview: %s", reply.State.ResultPreview)
		}
	}
}
