package harness

import (
	"context"
	"sort"
	"time"

	"pneuma/internal/baselines"
	"pneuma/internal/kramabench"
	"pneuma/internal/llm"
)

// DefaultMaxTurns is the paper's imposed limit of 15 user prompts per
// conversation (§4.1).
const DefaultMaxTurns = 15

// userContextLimit is LLM Sim's own context window: the paper simulates the
// user with GPT-4o (128k), which static systems overflow "in 2-3 turns".
const userContextLimit = 128_000

// ConversationResult is the outcome of one simulated conversation.
type ConversationResult struct {
	QuestionID string
	// Converged: the active information need matched the latent one.
	Converged bool
	// GaveUp: the simulated user abandoned the thread.
	GaveUp bool
	// Turns is how many times the user prompted the system before
	// convergence (or until the cap).
	Turns int
	// FinalAnswer is the last concrete answer the system produced.
	FinalAnswer string
	// Overflows counts user-side context-window overflows.
	Overflows int
	// Transcript records the dialogue for qualitative inspection.
	Transcript []TranscriptEntry
}

// TranscriptEntry is one exchange.
type TranscriptEntry struct {
	User   string
	System string
}

// RunConversation simulates one user (Figure 3) against one system for one
// benchmark question. The context bounds every model call and system turn;
// cancellation aborts the conversation with ctx.Err().
func RunConversation(ctx context.Context, sys baselines.System, q kramabench.Question, simModel llm.Model, maxTurns int) (ConversationResult, error) {
	if maxTurns <= 0 {
		maxTurns = DefaultMaxTurns
	}
	conv := sys.StartConversation()
	res := ConversationResult{QuestionID: q.ID}

	var revealed []string
	probeCount := 0
	overflowed := false
	userTokens := 0
	var last baselines.Output

	for turn := 1; turn <= maxTurns; turn++ {
		in := llm.UserSimInput{
			Need:              q.Need,
			SystemKind:        sys.Kind(),
			Turn:              turn,
			Revealed:          revealed,
			ProbeCount:        probeCount,
			LastMessage:       last.Message,
			MentionedColumns:  last.MentionedColumns,
			State:             last.State,
			ShownTables:       last.ShownTables,
			LastAnswer:        last.Answer,
			ContextOverflowed: overflowed,
		}
		resp, err := simModel.Complete(ctx, llm.Request{
			Task:    llm.TaskUserSim,
			System:  "You are simulating a domain expert exploring an enterprise dataset.",
			Payload: llm.MarshalPayload(in),
		})
		if err != nil {
			return res, err
		}
		var move llm.UserSimOutput
		if err := llm.DecodeResponse(resp, &move); err != nil {
			return res, err
		}
		if move.Converged {
			res.Converged = true
			res.Turns = turn - 1 // prompts issued before convergence
			return res, nil
		}
		if move.GaveUp {
			res.GaveUp = true
			res.Turns = turn - 1
			return res, nil
		}
		revealed = move.Revealed
		if move.Probing {
			probeCount++
		} else {
			probeCount = 0
		}

		out, err := conv.Respond(ctx, move.Utterance)
		if err != nil {
			return res, err
		}
		res.Transcript = append(res.Transcript, TranscriptEntry{User: move.Utterance, System: truncate(out.Message, 400)})
		// The conversation's answer is whatever the *latest* output shows —
		// a stale answer from an earlier, under-specified state does not
		// count once the question has been refined further.
		res.FinalAnswer = out.Answer

		// User-side context accounting: the system's output and the user's
		// own utterance both land in LLM Sim's window. On overflow the
		// window slides: older turns (and the anchors they carried) drop.
		userTokens += out.ContextTokens + llm.EstimateTokens(move.Utterance)
		overflowed = false
		if userTokens > userContextLimit {
			overflowed = true
			res.Overflows++
			userTokens = out.ContextTokens
		}
		last = out
	}
	res.Turns = maxTurns
	return res, nil
}

// ConvergenceSummary aggregates RQ1 results for one system over a question
// bank — one point of Figure 4/5.
type ConvergenceSummary struct {
	System string
	// Pct is the percentage of questions that converged.
	Pct float64
	// MedianTurns is the median turns-to-convergence among converged
	// conversations (maxTurns when nothing converged).
	MedianTurns float64
	Results     []ConversationResult
	// WallClock is the real time the sweep took (not simulated latency).
	WallClock time.Duration
}

// RunConvergence evaluates one system over a bank of questions.
func RunConvergence(ctx context.Context, sys baselines.System, questions []kramabench.Question, simModel llm.Model, maxTurns int) (ConvergenceSummary, error) {
	start := time.Now()
	sum := ConvergenceSummary{System: sys.Name()}
	var turns []int
	converged := 0
	for _, q := range questions {
		r, err := RunConversation(ctx, sys, q, simModel, maxTurns)
		if err != nil {
			return sum, err
		}
		sum.Results = append(sum.Results, r)
		if r.Converged {
			converged++
			turns = append(turns, r.Turns)
		}
	}
	sum.Pct = 100 * float64(converged) / float64(len(questions))
	sum.MedianTurns = median(turns, maxTurns)
	sum.WallClock = time.Since(start)
	return sum, nil
}

func median(xs []int, fallback int) float64 {
	if len(xs) == 0 {
		return float64(fallback)
	}
	sort.Ints(xs)
	n := len(xs)
	if n%2 == 1 {
		return float64(xs[n/2])
	}
	return float64(xs[n/2-1]+xs[n/2]) / 2
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
