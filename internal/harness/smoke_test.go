package harness

import (
	"context"
	"testing"

	"pneuma/internal/kramabench"
	"pneuma/internal/llm"
)

// TestSmokeSeekerA1 runs the easiest archaeology question end-to-end
// against Pneuma-Seeker and requires convergence with the correct answer.
func TestSmokeSeekerA1(t *testing.T) {
	corpus := kramabench.Archaeology()
	questions := kramabench.ArchaeologyQuestions(corpus)
	q := questions[0] // A1
	sys, err := NewSeekerSystem(corpus, nil)
	if err != nil {
		t.Fatal(err)
	}
	sim := llm.NewSimModel(llm.WithProfile("gpt-4o"))
	res, err := RunConversation(context.Background(), sys, q, sim, DefaultMaxTurns)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range res.Transcript {
		t.Logf("turn %d USER: %s", i+1, e.User)
		t.Logf("turn %d SYS : %s", i+1, e.System)
	}
	t.Logf("converged=%v gaveUp=%v turns=%d answer=%q expected=%q",
		res.Converged, res.GaveUp, res.Turns, res.FinalAnswer, q.Answer)
	if !res.Converged {
		t.Fatal("A1 must converge")
	}
	if !q.AnswersMatch(res.FinalAnswer) {
		t.Fatalf("A1 answer %q does not match ground truth %q", res.FinalAnswer, q.Answer)
	}
}
