// Package table implements the in-memory relational store shared by every
// component: typed schemas, row-oriented tables, CSV import/export with type
// inference, and statistical profiling used by retrieval and grounding.
package table

import (
	"fmt"
	"sort"
	"strings"

	"pneuma/internal/value"
)

// Column describes one attribute of a schema.
type Column struct {
	// Name is the physical column name (e.g. "k_ppm").
	Name string
	// Type is the inferred or declared value kind.
	Type value.Kind
	// Description is human/LLM-facing documentation (e.g. "Potassium
	// concentration in parts per million"). Retrieval embeds it.
	Description string
	// Unit is an optional measurement unit ("ppm", "usd", "°C").
	Unit string
}

// Schema is an ordered list of columns plus table-level metadata.
type Schema struct {
	// Name is the table name.
	Name string
	// Description documents the table's contents for retrieval.
	Description string
	Columns     []Column
}

// ColumnNames returns the column names in order.
func (s Schema) ColumnNames() []string {
	out := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		out[i] = c.Name
	}
	return out
}

// ColumnIndex returns the position of the named column (case-insensitive),
// or -1.
func (s Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Column returns the named column and whether it exists.
func (s Schema) Column(name string) (Column, bool) {
	i := s.ColumnIndex(name)
	if i < 0 {
		return Column{}, false
	}
	return s.Columns[i], true
}

// String renders the schema as "name(col type, ...)".
func (s Schema) String() string {
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('(')
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.Type.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Row is one tuple, positionally aligned with the schema's columns.
type Row []value.Value

// Clone deep-copies the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Table is a schema plus rows.
type Table struct {
	Schema Schema
	Rows   []Row

	// profile caches BuildProfile; Append invalidates it. Callers that
	// mutate Rows directly must call InvalidateProfile themselves.
	profile *Profile
}

// InvalidateProfile drops the cached profile after direct row mutation.
func (t *Table) InvalidateProfile() { t.profile = nil }

// New creates an empty table with the given schema.
func New(schema Schema) *Table { return &Table{Schema: schema} }

// NumRows returns the row count.
func (t *Table) NumRows() int { return len(t.Rows) }

// NumCols returns the column count.
func (t *Table) NumCols() int { return len(t.Schema.Columns) }

// Append adds a row, validating arity.
func (t *Table) Append(r Row) error {
	if len(r) != t.NumCols() {
		return fmt.Errorf("table %s: row has %d values, schema has %d columns",
			t.Schema.Name, len(r), t.NumCols())
	}
	t.Rows = append(t.Rows, r)
	t.profile = nil
	return nil
}

// MustAppend is Append that panics on arity mismatch; used by generators
// whose arity is statically correct.
func (t *Table) MustAppend(r Row) {
	if err := t.Append(r); err != nil {
		panic(err)
	}
}

// Cell returns the value at (row, col name), NULL if the column is absent.
func (t *Table) Cell(row int, col string) value.Value {
	i := t.Schema.ColumnIndex(col)
	if i < 0 || row < 0 || row >= len(t.Rows) {
		return value.Null()
	}
	return t.Rows[row][i]
}

// ColumnValues returns all values of the named column, or nil if absent.
func (t *Table) ColumnValues(col string) []value.Value {
	i := t.Schema.ColumnIndex(col)
	if i < 0 {
		return nil
	}
	out := make([]value.Value, len(t.Rows))
	for r, row := range t.Rows {
		out[r] = row[i]
	}
	return out
}

// Clone deep-copies the table.
func (t *Table) Clone() *Table {
	out := &Table{Schema: t.Schema}
	out.Schema.Columns = append([]Column(nil), t.Schema.Columns...)
	out.Rows = make([]Row, len(t.Rows))
	for i, r := range t.Rows {
		out.Rows[i] = r.Clone()
	}
	return out
}

// Head returns a new table containing the first n rows (shared row slices).
func (t *Table) Head(n int) *Table {
	if n > len(t.Rows) {
		n = len(t.Rows)
	}
	return &Table{Schema: t.Schema, Rows: t.Rows[:n]}
}

// ColumnStats summarizes one column for profiling and grounding.
type ColumnStats struct {
	Name      string
	Type      value.Kind
	NullCount int
	Distinct  int
	Min       value.Value
	Max       value.Value
	Mean      float64 // numeric columns only
	// SampleValues holds up to 24 distinct example values as strings; for
	// low-cardinality columns this is the full domain, which grounded
	// filter-value matching depends on.
	SampleValues []string
}

// Profile summarizes a table: per-column stats plus row/col counts.
type Profile struct {
	TableName string
	NumRows   int
	NumCols   int
	Columns   []ColumnStats
}

// BuildProfile computes a Profile. Distinct counts are exact (hash set).
// The result is cached until the table grows via Append (direct Rows
// mutators must call InvalidateProfile); retrieval and planning profile the
// same corpus tables on every call, so caching matters.
func (t *Table) BuildProfile() Profile {
	if t.profile != nil {
		return *t.profile
	}
	p := Profile{TableName: t.Schema.Name, NumRows: t.NumRows(), NumCols: t.NumCols()}
	for ci, col := range t.Schema.Columns {
		cs := ColumnStats{Name: col.Name, Type: col.Type}
		distinct := make(map[string]struct{})
		var sum float64
		var numCount int
		first := true
		for _, row := range t.Rows {
			v := row[ci]
			if v.IsNull() {
				cs.NullCount++
				continue
			}
			key := v.String()
			if _, ok := distinct[key]; !ok {
				distinct[key] = struct{}{}
				if len(cs.SampleValues) < 24 {
					cs.SampleValues = append(cs.SampleValues, key)
				}
			}
			if f, ok := v.AsFloat(); ok && v.Kind().Numeric() {
				sum += f
				numCount++
			}
			if first {
				cs.Min, cs.Max = v, v
				first = false
			} else {
				if value.Compare(v, cs.Min) < 0 {
					cs.Min = v
				}
				if value.Compare(v, cs.Max) > 0 {
					cs.Max = v
				}
			}
		}
		cs.Distinct = len(distinct)
		if numCount > 0 {
			cs.Mean = sum / float64(numCount)
		}
		p.Columns = append(p.Columns, cs)
	}
	t.profile = &p
	return p
}

// Render pretty-prints the table (up to maxRows rows) for the CLI state
// view: a fixed-width ASCII grid like the paper's Figure 2 sample rows.
func (t *Table) Render(maxRows int) string {
	cols := t.Schema.ColumnNames()
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
	}
	n := len(t.Rows)
	if maxRows >= 0 && n > maxRows {
		n = maxRows
	}
	cells := make([][]string, n)
	for r := 0; r < n; r++ {
		cells[r] = make([]string, len(cols))
		for c := range cols {
			s := t.Rows[r][c].String()
			if len(s) > 24 {
				s = s[:21] + "..."
			}
			cells[r][c] = s
			if len(s) > widths[c] {
				widths[c] = len(s)
			}
		}
	}
	var b strings.Builder
	writeRow := func(vals []string) {
		b.WriteByte('|')
		for i, v := range vals {
			fmt.Fprintf(&b, " %-*s |", widths[i], v)
		}
		b.WriteByte('\n')
	}
	writeRow(cols)
	b.WriteByte('|')
	for _, w := range widths {
		b.WriteString(strings.Repeat("-", w+2))
		b.WriteByte('|')
	}
	b.WriteByte('\n')
	for _, row := range cells {
		writeRow(row)
	}
	if len(t.Rows) > n {
		fmt.Fprintf(&b, "... (%d more rows)\n", len(t.Rows)-n)
	}
	return b.String()
}

// SortBy sorts rows in place by the named columns ascending; unknown column
// names are ignored.
func (t *Table) SortBy(cols ...string) {
	idxs := make([]int, 0, len(cols))
	for _, c := range cols {
		if i := t.Schema.ColumnIndex(c); i >= 0 {
			idxs = append(idxs, i)
		}
	}
	if len(idxs) == 0 {
		return
	}
	t.profile = nil // sample order changes
	sort.SliceStable(t.Rows, func(a, b int) bool {
		for _, i := range idxs {
			c := value.Compare(t.Rows[a][i], t.Rows[b][i])
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
}
