package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"pneuma/internal/value"
)

// ReadCSV parses CSV from r into a Table named name. The first record is
// the header. Column types are inferred from the data: each cell is parsed
// with value.Infer and per-column kinds are unified (int+float→float,
// numeric+string→string). After inference every cell is coerced to the
// column kind so a column is homogeneous.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("read csv %s: %w", name, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("read csv %s: empty input", name)
	}
	header := records[0]
	ncols := len(header)
	kinds := make([]value.Kind, ncols)
	raw := make([][]value.Value, 0, len(records)-1)
	for li, rec := range records[1:] {
		if len(rec) != ncols {
			return nil, fmt.Errorf("read csv %s: line %d has %d fields, header has %d",
				name, li+2, len(rec), ncols)
		}
		row := make([]value.Value, ncols)
		for c, cell := range rec {
			v := value.Infer(cell)
			row[c] = v
			kinds[c] = value.UnifyKinds(kinds[c], v.Kind())
		}
		raw = append(raw, row)
	}
	schema := Schema{Name: name}
	for c, h := range header {
		k := kinds[c]
		if k == value.KindNull {
			k = value.KindString // all-null column defaults to varchar
		}
		schema.Columns = append(schema.Columns, Column{Name: strings.TrimSpace(h), Type: k})
	}
	t := New(schema)
	for _, row := range raw {
		out := make(Row, ncols)
		for c := range row {
			coerced, ok := value.CoerceKind(row[c], schema.Columns[c].Type)
			if !ok {
				coerced = value.Null()
			}
			out[c] = coerced
		}
		t.Rows = append(t.Rows, out)
	}
	return t, nil
}

// ReadCSVFile loads path; the table is named after the file's base name
// without extension.
func ReadCSVFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	base := filepath.Base(path)
	name := strings.TrimSuffix(base, filepath.Ext(base))
	return ReadCSV(name, f)
}

// WriteCSV serializes the table to w, header first.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Schema.ColumnNames()); err != nil {
		return err
	}
	rec := make([]string, t.NumCols())
	for _, row := range t.Rows {
		for i, v := range row {
			rec[i] = v.String()
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the table to path, creating parent directories.
func (t *Table) WriteCSVFile(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}

// LoadDir reads every *.csv file in dir into a map keyed by table name.
func LoadDir(dir string) (map[string]*Table, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	out := make(map[string]*Table)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".csv") {
			continue
		}
		t, err := ReadCSVFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		out[t.Schema.Name] = t
	}
	return out, nil
}
