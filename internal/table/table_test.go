package table

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"pneuma/internal/value"
)

func sampleTable() *Table {
	t := New(Schema{
		Name:        "samples",
		Description: "chemical samples",
		Columns: []Column{
			{Name: "id", Type: value.KindInt},
			{Name: "site", Type: value.KindString},
			{Name: "k_ppm", Type: value.KindFloat, Description: "Potassium (ppm)", Unit: "ppm"},
		},
	})
	t.MustAppend(Row{value.Int(1), value.String("Malta"), value.Float(120.5)})
	t.MustAppend(Row{value.Int(2), value.String("Gozo"), value.Float(98.1)})
	t.MustAppend(Row{value.Int(3), value.String("Malta"), value.Null()})
	return t
}

func TestSchemaLookups(t *testing.T) {
	tb := sampleTable()
	if i := tb.Schema.ColumnIndex("K_PPM"); i != 2 {
		t.Errorf("case-insensitive index = %d, want 2", i)
	}
	if i := tb.Schema.ColumnIndex("nope"); i != -1 {
		t.Errorf("missing column index = %d, want -1", i)
	}
	c, ok := tb.Schema.Column("site")
	if !ok || c.Name != "site" {
		t.Errorf("Column(site) = %v, %v", c, ok)
	}
	want := "samples(id bigint, site varchar, k_ppm double)"
	if got := tb.Schema.String(); got != want {
		t.Errorf("Schema.String() = %q, want %q", got, want)
	}
}

func TestAppendArityChecked(t *testing.T) {
	tb := sampleTable()
	if err := tb.Append(Row{value.Int(4)}); err == nil {
		t.Fatal("short row must be rejected")
	}
}

func TestCellAndColumnValues(t *testing.T) {
	tb := sampleTable()
	if got := tb.Cell(0, "site").StringVal(); got != "Malta" {
		t.Errorf("Cell = %q", got)
	}
	if !tb.Cell(99, "site").IsNull() {
		t.Error("out-of-range Cell must be NULL")
	}
	if !tb.Cell(0, "ghost").IsNull() {
		t.Error("missing column Cell must be NULL")
	}
	vals := tb.ColumnValues("k_ppm")
	if len(vals) != 3 || !vals[2].IsNull() {
		t.Errorf("ColumnValues = %v", vals)
	}
}

func TestCloneIsDeep(t *testing.T) {
	tb := sampleTable()
	cp := tb.Clone()
	cp.Rows[0][1] = value.String("Changed")
	if tb.Rows[0][1].StringVal() != "Malta" {
		t.Fatal("Clone must not share row storage")
	}
}

func TestProfile(t *testing.T) {
	tb := sampleTable()
	p := tb.BuildProfile()
	if p.NumRows != 3 || p.NumCols != 3 {
		t.Fatalf("profile dims %dx%d", p.NumRows, p.NumCols)
	}
	k := p.Columns[2]
	if k.NullCount != 1 {
		t.Errorf("k_ppm nulls = %d, want 1", k.NullCount)
	}
	if k.Distinct != 2 {
		t.Errorf("k_ppm distinct = %d, want 2", k.Distinct)
	}
	if k.Min.FloatVal() != 98.1 || k.Max.FloatVal() != 120.5 {
		t.Errorf("k_ppm min/max = %v/%v", k.Min, k.Max)
	}
	mean := (120.5 + 98.1) / 2
	if k.Mean != mean {
		t.Errorf("k_ppm mean = %v, want %v", k.Mean, mean)
	}
	site := p.Columns[1]
	if site.Distinct != 2 || len(site.SampleValues) != 2 {
		t.Errorf("site stats: %+v", site)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tb := sampleTable()
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("samples", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 3 || back.NumCols() != 3 {
		t.Fatalf("round trip dims %dx%d", back.NumRows(), back.NumCols())
	}
	if back.Schema.Columns[2].Type != value.KindFloat {
		t.Errorf("k_ppm type = %v, want float", back.Schema.Columns[2].Type)
	}
	if got := back.Cell(1, "k_ppm").FloatVal(); got != 98.1 {
		t.Errorf("k_ppm[1] = %v", got)
	}
	if !back.Cell(2, "k_ppm").IsNull() {
		t.Error("null survived round trip as non-null")
	}
}

func TestCSVTypeInference(t *testing.T) {
	csv := "a,b,c,d\n1,1.5,x,2020-01-01\n2,2,y,2021-06-15\n,,,"
	tb, err := ReadCSV("t", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := []value.Kind{value.KindInt, value.KindFloat, value.KindString, value.KindTime}
	for i, w := range wantKinds {
		if got := tb.Schema.Columns[i].Type; got != w {
			t.Errorf("col %d type = %v, want %v", i, got, w)
		}
	}
}

func TestCSVMixedIntFloatUnifies(t *testing.T) {
	csv := "x\n1\n2.5\n3"
	tb, err := ReadCSV("t", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Schema.Columns[0].Type != value.KindFloat {
		t.Fatalf("mixed int/float should unify to float, got %v", tb.Schema.Columns[0].Type)
	}
	if got := tb.Rows[0][0].FloatVal(); got != 1 {
		t.Errorf("coerced value = %v", got)
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV("t", strings.NewReader("")); err == nil {
		t.Error("empty CSV must error")
	}
	if _, err := ReadCSV("t", strings.NewReader("a,b\n1")); err == nil {
		t.Error("ragged CSV must error")
	}
}

func TestCSVFileAndLoadDir(t *testing.T) {
	dir := t.TempDir()
	tb := sampleTable()
	if err := tb.WriteCSVFile(filepath.Join(dir, "samples.csv")); err != nil {
		t.Fatal(err)
	}
	tb2 := sampleTable()
	tb2.Schema.Name = "other"
	if err := tb2.WriteCSVFile(filepath.Join(dir, "other.csv")); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("LoadDir found %d tables, want 2", len(got))
	}
	if _, ok := got["samples"]; !ok {
		t.Error("samples table missing")
	}
}

func TestRender(t *testing.T) {
	tb := sampleTable()
	out := tb.Render(2)
	if !strings.Contains(out, "k_ppm") {
		t.Error("render must include header")
	}
	if !strings.Contains(out, "1 more rows") {
		t.Errorf("render must note truncation:\n%s", out)
	}
}

func TestSortBy(t *testing.T) {
	tb := sampleTable()
	tb.SortBy("site", "id")
	if tb.Rows[0][1].StringVal() != "Gozo" {
		t.Fatalf("sort wrong: %v", tb.Rows)
	}
	// Unknown column: no-op, no panic.
	tb.SortBy("ghost")
}

func TestHead(t *testing.T) {
	tb := sampleTable()
	h := tb.Head(2)
	if h.NumRows() != 2 {
		t.Fatalf("head rows = %d", h.NumRows())
	}
	h = tb.Head(99)
	if h.NumRows() != 3 {
		t.Fatalf("over-long head rows = %d", h.NumRows())
	}
}

func TestCSVRoundTripProperty(t *testing.T) {
	// Any table of ints written to CSV and read back preserves the values.
	f := func(xs []int64) bool {
		tb := New(Schema{Name: "p", Columns: []Column{{Name: "v", Type: value.KindInt}}})
		for _, x := range xs {
			tb.MustAppend(Row{value.Int(x)})
		}
		var buf bytes.Buffer
		if err := tb.WriteCSV(&buf); err != nil {
			return false
		}
		back, err := ReadCSV("p", &buf)
		if err != nil {
			return false
		}
		if back.NumRows() != len(xs) {
			return false
		}
		for i, x := range xs {
			if back.Rows[i][0].IntVal() != x {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
