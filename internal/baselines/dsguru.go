package baselines

import (
	"context"
	"fmt"
	"strings"

	"pneuma/internal/core"
	"pneuma/internal/docs"
	"pneuma/internal/kramabench"
	"pneuma/internal/llm"
	"pneuma/internal/sqlengine"
	"pneuma/internal/table"
)

// Answerer is a system that answers one benchmark question end-to-end —
// the RQ2 accuracy interface.
type Answerer interface {
	Name() string
	AnswerQuestion(ctx context.Context, q kramabench.Question) (string, error)
}

// DSGuru is KramaBench's reference framework (§4.2): it "instructs an LLM
// to decompose a question into a sequence of subtasks, reason through each
// step, and synthesize Python code" — one shot, over the full dataset
// schemas, with no retrieval grounding, no user interaction and no repair
// loop. The execution substrate (Materializer + SQL executor) is shared
// with Pneuma-Seeker so the comparison isolates the planning differences.
type DSGuru struct {
	model      llm.Model
	meter      *llm.Meter
	corpusDocs []docs.Document
	tableDTOs  []llm.TableInfo
}

// NewDSGuru builds the baseline over a corpus. The paper runs the O3-based
// DS-Guru, so the default model profile is "o3".
func NewDSGuru(corpus map[string]*table.Table, model llm.Model) *DSGuru {
	if model == nil {
		model = llm.NewSimModel(llm.WithProfile("o3"))
	}
	meter := llm.NewMeter()
	g := &DSGuru{
		model: &llm.MeteredModel{Inner: model, Meter: meter, Component: "ds-guru"},
		meter: meter,
	}
	for _, name := range sortedNames(corpus) {
		t := corpus[name]
		g.corpusDocs = append(g.corpusDocs, docFromTable(t))
		g.tableDTOs = append(g.tableDTOs, llm.NewTableInfo(t, 16))
	}
	return g
}

// Meter exposes token usage.
func (g *DSGuru) Meter() *llm.Meter { return g.meter }

// Name implements Answerer.
func (g *DSGuru) Name() string { return "DS-Guru (O3)" }

// AnswerQuestion implements Answerer: decompose → synthesize plan →
// execute once. Any execution error is final (no repair loop).
func (g *DSGuru) AnswerQuestion(ctx context.Context, q kramabench.Question) (string, error) {
	resp, err := g.model.Complete(ctx, llm.Request{
		Task: llm.TaskDecompose,
		System: "You are DS-Guru. Decompose the question into subtasks, reason " +
			"through each step, and synthesize the code implementing the plan.",
		Payload: llm.MarshalPayload(llm.DecomposeInput{
			Question: q.Need.QuestionText,
			Tables:   g.tableDTOs,
		}),
	})
	if err != nil {
		return "", err
	}
	var plan llm.DecomposeOutput
	if err := llm.DecodeResponse(resp, &plan); err != nil {
		return "", err
	}
	if plan.Failed {
		return "", fmt.Errorf("ds-guru: %s", plan.Reason)
	}

	// One-shot execution: zero repair attempts.
	mat := core.NewMaterializer(g.model, 0)
	res, err := mat.Materialize(ctx, plan.Spec, g.corpusDocs, plan.Queries)
	if err != nil {
		return "", err
	}
	eng := sqlengine.NewEngine()
	eng.RegisterAs(plan.Spec.Name, res.Table)
	var answer string
	for _, qry := range plan.Queries {
		out, err := eng.Query(qry)
		if err != nil {
			return "", err
		}
		if out.NumRows() > 0 && out.NumCols() > 0 {
			answer = out.Rows[0][0].String()
		}
	}
	if strings.TrimSpace(answer) == "" {
		return "", fmt.Errorf("ds-guru: plan produced no answer")
	}
	return answer, nil
}
