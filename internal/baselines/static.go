package baselines

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"pneuma/internal/bm25"
	"pneuma/internal/docs"
	"pneuma/internal/llm"
	"pneuma/internal/retriever"
	"pneuma/internal/table"
)

// sampleRowsShown is how many raw sample rows a static system returns per
// table. Matches the paper's observation that even sample-row-only views
// blow through a 128k window in 2-3 turns.
const sampleRowsShown = 400

// staticTopK is the number of tables a static system returns per query.
const staticTopK = 5

// FTS is the BM25 full-text-search baseline: tables are indexed by their
// column names and sample values only (no descriptions — plain full-text
// search has no schema documentation), and a query returns the raw tables.
// It performs no interpretation, no computation and keeps no state.
type FTS struct {
	index  *bm25.Index
	byName map[string]*table.Table
}

// NewFTS indexes a corpus.
func NewFTS(corpus map[string]*table.Table) *FTS {
	f := &FTS{index: bm25.New(bm25.Params{}), byName: make(map[string]*table.Table)}
	names := sortedNames(corpus)
	for _, name := range names {
		t := corpus[name]
		f.byName[name] = t
		f.index.Add(name, ftsText(t))
	}
	return f
}

// ftsText renders a table the way plain full-text search sees it: name,
// column names and sample values; descriptions are schema documentation a
// generic FTS engine does not have.
func ftsText(t *table.Table) string {
	var b strings.Builder
	b.WriteString(t.Schema.Name)
	b.WriteByte('\n')
	for _, c := range t.Schema.Columns {
		b.WriteString(c.Name)
		b.WriteByte(' ')
	}
	b.WriteByte('\n')
	profile := t.Head(500).BuildProfile()
	for _, cs := range profile.Columns {
		for _, s := range cs.SampleValues {
			if len(s) <= 32 {
				b.WriteString(s)
				b.WriteByte(' ')
			}
		}
	}
	return b.String()
}

// Name implements System.
func (f *FTS) Name() string { return "FTS" }

// Kind implements System.
func (f *FTS) Kind() string { return "static" }

// StartConversation implements System. FTS is stateless, so conversations
// share the index.
func (f *FTS) StartConversation() Conversation { return &ftsConv{f} }

type ftsConv struct{ f *FTS }

func (c *ftsConv) Respond(ctx context.Context, utterance string) (Output, error) {
	_ = ctx // the FTS index is purely in-memory and non-blocking
	hits := c.f.index.Search(utterance, staticTopK)
	var tables []*table.Table
	for _, h := range hits {
		tables = append(tables, c.f.byName[h.ID])
	}
	return staticOutput(tables), nil
}

// RetrieverOnly is Pneuma-Retriever used as a static system (§4.1): its
// hybrid index sees descriptions (that is Pneuma-Retriever's design), but
// like FTS it "only returns tables, represented by their columns and sample
// rows" — no interpretation, no computation.
type RetrieverOnly struct {
	ret *retriever.Retriever
}

// NewRetrieverOnly indexes a corpus with the hybrid index.
func NewRetrieverOnly(corpus map[string]*table.Table) (*RetrieverOnly, error) {
	ret := retriever.New()
	for _, name := range sortedNames(corpus) {
		if err := ret.IndexTable(context.Background(), corpus[name]); err != nil {
			return nil, err
		}
	}
	return &RetrieverOnly{ret: ret}, nil
}

// Name implements System.
func (r *RetrieverOnly) Name() string { return "Pneuma-Retriever" }

// Kind implements System.
func (r *RetrieverOnly) Kind() string { return "static" }

// StartConversation implements System.
func (r *RetrieverOnly) StartConversation() Conversation { return &retrieverConv{r} }

type retrieverConv struct{ r *RetrieverOnly }

func (c *retrieverConv) Respond(ctx context.Context, utterance string) (Output, error) {
	hits, err := c.r.ret.Search(ctx, utterance, staticTopK)
	if err != nil {
		return Output{}, err
	}
	var tables []*table.Table
	for _, h := range hits {
		if h.Table != nil {
			tables = append(tables, h.Table)
		}
	}
	return staticOutput(tables), nil
}

// staticOutput renders raw tables: the DTOs the user simulator anchors
// against (column names + samples, NO descriptions — the user must
// interpret physical names alone) plus the full sample-row dump whose token
// bill lands in the user's context.
func staticOutput(tables []*table.Table) Output {
	var out Output
	var b strings.Builder
	for _, t := range tables {
		ti := llm.NewTableInfo(t, 24)
		// Static systems surface no schema documentation.
		for i := range ti.Columns {
			ti.Columns[i].Description = ""
			ti.Columns[i].Unit = ""
		}
		ti.Description = ""
		out.ShownTables = append(out.ShownTables, ti)
		fmt.Fprintf(&b, "=== %s ===\n", t.Schema.Name)
		b.WriteString(t.Head(sampleRowsShown).Render(sampleRowsShown))
	}
	if len(tables) == 0 {
		b.WriteString("(no matching tables)")
	}
	out.Message = b.String()
	out.ContextTokens = llm.EstimateTokens(out.Message)
	return out
}

// sortedNames returns corpus table names in deterministic order.
func sortedNames(corpus map[string]*table.Table) []string {
	names := make([]string, 0, len(corpus))
	for n := range corpus {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// docFromTable builds the retrieval document for a table (shared helper).
func docFromTable(t *table.Table) docs.Document { return docs.TableDocument(t) }
