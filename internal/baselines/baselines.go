// Package baselines implements the comparison systems of the paper's
// evaluation (§4): BM25 full-text search (FTS), Pneuma-Retriever used as a
// stand-alone static system, a LlamaIndex-style RAG system, DS-Guru
// (KramaBench's reference framework) and the O3 whole-table full-context
// baseline.
package baselines

import (
	"context"

	"pneuma/internal/llm"
)

// Output is the surface a system presents to the (simulated) user after one
// utterance. Different systems fill different fields: static systems return
// raw tables, interpreting systems return messages and interpreted columns,
// Pneuma-Seeker additionally surfaces state and computed answers.
type Output struct {
	// Message is the user-facing text.
	Message string
	// MentionedColumns is the interpreted column surface (seeker/rag).
	MentionedColumns []llm.MentionedColumn
	// State is the surfaced (T, Q) view (seeker only).
	State *llm.StateInfo
	// ShownTables are raw retrieved tables (static systems).
	ShownTables []llm.TableInfo
	// Answer is a computed scalar answer, when the system executes queries.
	Answer string
	// ContextTokens is what this output costs in the user's own context
	// window — the quantity that overflows GPT-4o for static systems
	// (§4.1: "2-3 turns are enough to exceed the limit").
	ContextTokens int
}

// System is a discovery system the user simulator can converse with.
type System interface {
	// Name is the display name used in figures.
	Name() string
	// Kind is the user-simulation behaviour class: "seeker", "rag" or
	// "static".
	Kind() string
	// StartConversation begins a fresh conversation.
	StartConversation() Conversation
}

// Conversation is one ongoing dialogue.
type Conversation interface {
	// Respond handles one user utterance. The context bounds the
	// system's whole turn (retrieval and model calls).
	Respond(ctx context.Context, utterance string) (Output, error)
}
