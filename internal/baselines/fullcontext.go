package baselines

import (
	"bytes"
	"context"
	"fmt"
	"strings"

	"pneuma/internal/core"
	"pneuma/internal/docs"
	"pneuma/internal/kramabench"
	"pneuma/internal/llm"
	"pneuma/internal/sqlengine"
	"pneuma/internal/table"
)

// FullContext is the O3 whole-table baseline (§4.2): "for each benchmark
// question, we provide it with the whole relevant tables, so it has every
// necessary information". Two failure modes are modelled, both from the
// paper's findings:
//
//  1. Context overflow: the serialized relevant tables exceed the model's
//     200k window on most questions (17/20 environment, 6/12 archaeology in
//     the paper) — ErrContextLengthExceeded is returned.
//  2. Attention-limited arithmetic: even when everything fits, a language
//     model cannot reliably aggregate thousands of rows. The simulation
//     computes exactly when the filtered row count is within the attention
//     budget and otherwise aggregates only the earliest rows — precise on
//     small slices, silently wrong on large ones. That reproduces "O3
//     answers none of the six archaeology questions correctly, but answers
//     two environment questions correctly".
type FullContext struct {
	corpus map[string]*table.Table
	model  llm.Model
	meter  *llm.Meter
	// attentionRows is the number of rows the model can aggregate exactly.
	attentionRows int
}

// NewFullContext builds the baseline over a corpus.
func NewFullContext(corpus map[string]*table.Table, model llm.Model) *FullContext {
	if model == nil {
		model = llm.NewSimModel(llm.WithProfile("o3"))
	}
	meter := llm.NewMeter()
	return &FullContext{
		corpus:        corpus,
		model:         &llm.MeteredModel{Inner: model, Meter: meter, Component: "o3-full-context"},
		meter:         meter,
		attentionRows: 60,
	}
}

// Meter exposes token usage.
func (f *FullContext) Meter() *llm.Meter { return f.meter }

// Name implements Answerer.
func (f *FullContext) Name() string { return "O3 (full context)" }

// ContextTokensFor reports the token cost of serializing the question's
// relevant tables — the quantity checked against the 200k window.
func (f *FullContext) ContextTokensFor(q kramabench.Question) int {
	total := 0
	for _, name := range q.RelevantTables {
		t, ok := f.corpus[name]
		if !ok {
			continue
		}
		var buf bytes.Buffer
		_ = t.WriteCSV(&buf)
		total += llm.EstimateTokens(buf.String())
	}
	return total
}

// AnswerQuestion implements Answerer.
func (f *FullContext) AnswerQuestion(ctx context.Context, q kramabench.Question) (string, error) {
	inTokens := f.ContextTokensFor(q) + llm.EstimateTokens(q.Need.QuestionText)
	if inTokens > f.model.ContextLimit() {
		return "", fmt.Errorf("%w: relevant tables serialize to %d tokens, %s allows %d",
			llm.ErrContextLengthExceeded, inTokens, f.model.Name(), f.model.ContextLimit())
	}
	// Bill the full prompt (the call "succeeded" even if arithmetic is
	// unreliable).
	f.meter.Record("o3-full-context", llm.Response{Usage: llm.Usage{InTokens: inTokens, OutTokens: 64}})

	// Plan exactly like a strong model reading the schemas would (the
	// decompose skill with descriptions intact would be the conductor's
	// planner; O3 is at least that capable one-shot).
	var dtos []llm.TableInfo
	var corpusDocs []docs.Document
	for _, name := range q.RelevantTables {
		t, ok := f.corpus[name]
		if !ok {
			continue
		}
		dtos = append(dtos, llm.NewTableInfo(t, 16))
		corpusDocs = append(corpusDocs, docFromTable(t))
	}
	vocab := llm.Vocab{Tables: dtos}
	intent := llm.ParseUtterance(q.Need.QuestionText, vocab)
	if intent.MeasurePhrase == "" {
		return "", fmt.Errorf("o3: could not identify the measure")
	}
	tbl, col, score, _ := llm.ResolveMeasure(vocab, intent.MeasurePhrase, intent.Topic)
	if score < 0.30 {
		return "", fmt.Errorf("o3: no column matches %q", intent.MeasurePhrase)
	}
	spec, queries, unresolved := llm.BuildPlan(intent, vocab, tbl, col)
	if unresolved != "" {
		return "", fmt.Errorf("o3: %s", unresolved)
	}

	// A reading model skips malformed values rather than crashing: all
	// transforms run leniently, without a repair loop.
	mat := core.NewMaterializer(f.model, 0)
	plan, err := mat.PlanOnly(ctx, spec, corpusDocs, queries)
	if err != nil {
		return "", err
	}
	for i := range plan.Steps {
		plan.Steps[i].Lenient = true
	}
	built, err := mat.ExecutePlan(plan, spec, corpusDocs)
	if err != nil {
		return "", err
	}

	// Attention-limited execution: count the rows the query actually
	// aggregates; beyond the budget, only the earliest rows are read.
	matched, err := countMatching(built, spec.Name, queries)
	if err != nil {
		return "", err
	}
	working := built
	if matched > f.attentionRows {
		working = truncateToMatching(built, spec.Name, queries, f.attentionRows)
	}
	eng := sqlengine.NewEngine()
	eng.RegisterAs(spec.Name, working)
	var answer string
	for _, qry := range queries {
		out, err := eng.Query(qry)
		if err != nil {
			return "", err
		}
		if out.NumRows() > 0 && out.NumCols() > 0 {
			answer = out.Rows[0][0].String()
		}
	}
	if strings.TrimSpace(answer) == "" {
		return "", fmt.Errorf("o3: no answer produced")
	}
	return answer, nil
}

// countMatching counts rows the first query's WHERE clause selects.
func countMatching(t *table.Table, name string, queries []string) (int, error) {
	if len(queries) == 0 {
		return t.NumRows(), nil
	}
	sel, err := sqlengine.Parse(queries[0])
	if err != nil {
		return 0, err
	}
	where := extractWhere(sel)
	counting := fmt.Sprintf("SELECT COUNT(*) AS n FROM %s%s", name, where)
	eng := sqlengine.NewEngine()
	eng.RegisterAs(name, t)
	out, err := eng.Query(counting)
	if err != nil {
		return 0, err
	}
	return int(out.Rows[0][0].IntVal()), nil
}

// truncateToMatching keeps rows until budget matching rows have been seen —
// the "model reads from the top" truncation.
func truncateToMatching(t *table.Table, name string, queries []string, budget int) *table.Table {
	sel, err := sqlengine.Parse(queries[0])
	if err != nil {
		return t.Head(budget)
	}
	where := extractWhere(sel)
	if where == "" {
		return t.Head(budget)
	}
	// Evaluate the WHERE predicate row by row via a 1-row engine would be
	// slow; instead select matching row ids from an augmented copy.
	aug := t.Clone()
	aug.Schema.Name = name
	// Use LIMIT on the filtered subquery to find the cutoff cheaply.
	eng := sqlengine.NewEngine()
	eng.RegisterAs(name, aug)
	q := fmt.Sprintf("SELECT * FROM %s%s LIMIT %d", name, where, budget)
	out, err := eng.Query(q)
	if err != nil {
		return t.Head(budget)
	}
	out.Schema = t.Schema
	return out
}

// extractWhere re-renders a parsed query's WHERE clause (with leading
// space), or "".
func extractWhere(sel *sqlengine.Select) string {
	if sel.Where == nil {
		// The aggregate may sit over an ordered subquery (first/last
		// plans); use the subquery's WHERE.
		if sel.From != nil && sel.From.Sub != nil && sel.From.Sub.Where != nil {
			return " WHERE " + sel.From.Sub.Where.String()
		}
		return ""
	}
	return " WHERE " + sel.Where.String()
}
