package baselines

import (
	"context"
	"pneuma/internal/llm"
	"pneuma/internal/retriever"
	"pneuma/internal/table"
)

// RAG is the LlamaIndex-style baseline (§4.1): "adds an LLM on top of a
// top-k vector retriever to interpret the retrieved data". It retrieves
// with the latest utterance only (classic RAG has no planning loop), asks
// the model to interpret the chunks, and can neither keep relational state
// nor execute queries — hence 0% accuracy in Table 3 despite healthy
// convergence.
type RAG struct {
	ret   *retriever.Retriever
	model llm.Model
	meter *llm.Meter
	topK  int
}

// NewRAG indexes the corpus with a vector-only retriever (the
// representative RAG configuration).
func NewRAG(corpus map[string]*table.Table, model llm.Model) (*RAG, error) {
	ret := retriever.New(retriever.WithMode(retriever.ModeVectorOnly))
	for _, name := range sortedNames(corpus) {
		if err := ret.IndexTable(context.Background(), corpus[name]); err != nil {
			return nil, err
		}
	}
	if model == nil {
		model = llm.NewSimModel()
	}
	meter := llm.NewMeter()
	return &RAG{
		ret:   ret,
		model: &llm.MeteredModel{Inner: model, Meter: meter, Component: "rag"},
		meter: meter,
		topK:  3,
	}, nil
}

// Meter exposes token usage for cost reporting.
func (r *RAG) Meter() *llm.Meter { return r.meter }

// Name implements System.
func (r *RAG) Name() string { return "LlamaIndex" }

// Kind implements System.
func (r *RAG) Kind() string { return "rag" }

// StartConversation implements System.
func (r *RAG) StartConversation() Conversation {
	return &ragConv{r: r}
}

type ragConv struct {
	r        *RAG
	messages []string
}

func (c *ragConv) Respond(ctx context.Context, utterance string) (Output, error) {
	c.messages = append(c.messages, utterance)
	hits, err := c.r.ret.Search(ctx, utterance, c.r.topK)
	if err != nil {
		return Output{}, err
	}
	in := llm.InterpretInput{UserMessages: c.messages}
	for _, h := range hits {
		in.Docs = append(in.Docs, llm.NewDocInfo(h, 12))
	}
	resp, err := c.r.model.Complete(ctx, llm.Request{
		Task: llm.TaskInterpret,
		System: "You are a retrieval-augmented assistant. Interpret the retrieved " +
			"context for the user. You cannot execute code or queries.",
		Payload: llm.MarshalPayload(in),
	})
	if err != nil {
		return Output{}, err
	}
	var interp llm.InterpretOutput
	if err := llm.DecodeResponse(resp, &interp); err != nil {
		return Output{}, err
	}
	return Output{
		Message:          interp.Message,
		MentionedColumns: interp.MentionedColumns,
		ContextTokens:    llm.EstimateTokens(interp.Message),
	}, nil
}
