package baselines

import (
	"context"
	"errors"
	"strings"
	"testing"

	"pneuma/internal/kramabench"
	"pneuma/internal/llm"
	"pneuma/internal/table"
	"pneuma/internal/value"
)

func smallCorpus() map[string]*table.Table {
	soil := table.New(table.Schema{
		Name:        "soil_samples",
		Description: "Soil chemistry samples",
		Columns: []table.Column{
			{Name: "region", Type: value.KindString, Description: "Region of the site"},
			{Name: "k_ppm", Type: value.KindFloat, Description: "Potassium concentration in parts per million"},
		},
	})
	soil.MustAppend(table.Row{value.String("Malta"), value.Float(100)})
	soil.MustAppend(table.Row{value.String("Gozo"), value.Float(120)})
	sites := table.New(table.Schema{
		Name:        "sites",
		Description: "Excavation sites registry",
		Columns: []table.Column{
			{Name: "site_name", Type: value.KindString, Description: "Site name"},
			{Name: "region", Type: value.KindString, Description: "Region"},
		},
	})
	sites.MustAppend(table.Row{value.String("Tarxien"), value.String("Malta")})
	return map[string]*table.Table{"soil_samples": soil, "sites": sites}
}

func TestFTSReturnsRawTables(t *testing.T) {
	fts := NewFTS(smallCorpus())
	if fts.Kind() != "static" {
		t.Fatalf("kind = %q", fts.Kind())
	}
	out, err := fts.StartConversation().Respond(context.Background(), "potassium Malta")
	if err != nil {
		t.Fatal(err)
	}
	if len(out.ShownTables) == 0 {
		t.Fatal("FTS returned no tables")
	}
	// Static systems must not surface interpretations.
	if len(out.MentionedColumns) != 0 {
		t.Error("FTS must not interpret columns")
	}
	for _, ti := range out.ShownTables {
		for _, c := range ti.Columns {
			if c.Description != "" {
				t.Errorf("FTS leaked a description for %s", c.Name)
			}
		}
	}
	if out.ContextTokens == 0 {
		t.Error("raw table dumps must cost context tokens")
	}
	if out.Answer != "" {
		t.Error("static systems never compute answers")
	}
}

func TestFTSHasNoDescriptionGrounding(t *testing.T) {
	// "potassium" lives only in a column description; FTS (name+values
	// index) must miss it while the hybrid retriever finds it.
	fts := NewFTS(smallCorpus())
	out, _ := fts.StartConversation().Respond(context.Background(), "potassium")
	for _, ti := range out.ShownTables {
		if ti.Name == "soil_samples" {
			t.Fatal("FTS should not match on descriptions")
		}
	}
	ro, err := NewRetrieverOnly(smallCorpus())
	if err != nil {
		t.Fatal(err)
	}
	out, _ = ro.StartConversation().Respond(context.Background(), "potassium")
	found := false
	for _, ti := range out.ShownTables {
		if ti.Name == "soil_samples" {
			found = true
		}
	}
	if !found {
		t.Fatal("hybrid retriever must match descriptions")
	}
}

func TestRAGInterpretsButCannotCompute(t *testing.T) {
	rag, err := NewRAG(smallCorpus(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rag.Kind() != "rag" {
		t.Fatalf("kind = %q", rag.Kind())
	}
	conv := rag.StartConversation()
	out, err := conv.Respond(context.Background(), "I'm interested in the Potassium concentration measurements.")
	if err != nil {
		t.Fatal(err)
	}
	if len(out.MentionedColumns) == 0 {
		t.Fatal("RAG must interpret columns")
	}
	if out.Answer != "" {
		t.Fatal("RAG must not compute")
	}
	if rag.Meter().Snapshot().Calls == 0 {
		t.Error("RAG model calls must be metered")
	}
}

func TestDSGuruEasyQuestion(t *testing.T) {
	corpus := kramabench.Archaeology()
	questions := kramabench.ArchaeologyQuestions(corpus)
	g := NewDSGuru(corpus, nil)
	ans, err := g.AnswerQuestion(context.Background(), questions[0]) // A1, transparent name
	if err != nil {
		t.Fatalf("A1: %v", err)
	}
	if !questions[0].AnswersMatch(ans) {
		t.Fatalf("A1 answer %q != %q", ans, questions[0].Answer)
	}
	// A5 (opaque measure names) must fail for name-only grounding.
	var a5 kramabench.Question
	for _, q := range questions {
		if q.ID == "A5" {
			a5 = q
		}
	}
	if _, err := g.AnswerQuestion(context.Background(), a5); err == nil {
		t.Fatal("DS-Guru should fail on opaque column names")
	}
}

func TestFullContextOverflowAndSmallTable(t *testing.T) {
	corpus := kramabench.Archaeology()
	questions := kramabench.ArchaeologyQuestions(corpus)
	o3 := NewFullContext(corpus, nil)
	// A1 targets the 42k-row soil table: must overflow.
	_, err := o3.AnswerQuestion(context.Background(), questions[0])
	if !errors.Is(err, llm.ErrContextLengthExceeded) {
		t.Fatalf("A1 err = %v, want context overflow", err)
	}
	if tok := o3.ContextTokensFor(questions[0]); tok < 200_000 {
		t.Fatalf("soil serialization = %d tokens, expected > 200k", tok)
	}
	// A10 (radiocarbon, 5k rows) fits but aggregates beyond the attention
	// budget: an answer comes back, silently wrong.
	var a10 kramabench.Question
	for _, q := range questions {
		if q.ID == "A10" {
			a10 = q
		}
	}
	ans, err := o3.AnswerQuestion(context.Background(), a10)
	if err != nil {
		t.Fatalf("A10 should fit: %v", err)
	}
	if a10.AnswersMatch(ans) {
		t.Fatalf("A10 should be attention-truncated and wrong, got exact %q", ans)
	}
}

func TestStaticOutputTruncatesLongCells(t *testing.T) {
	out := staticOutput([]*table.Table{smallCorpus()["soil_samples"]})
	if !strings.Contains(out.Message, "soil_samples") {
		t.Fatal("message must name the table")
	}
}
