package sqlengine

import (
	"fmt"
	"strconv"
	"strings"

	"pneuma/internal/value"
)

// ParseError is a syntax error with source position, phrased for the
// Materializer's repair loop.
type ParseError struct {
	Pos int
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("sql syntax error at position %d: %s", e.Pos, e.Msg)
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	tokens []token
	pos    int
}

// Parse parses one SELECT statement (a trailing semicolon is allowed).
func Parse(src string) (*Select, error) {
	tokens, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{tokens: tokens}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	p.acceptSymbol(";")
	if !p.atEOF() {
		return nil, p.errorf("unexpected %s after end of statement", p.peek())
	}
	return sel, nil
}

func (p *parser) peek() token { return p.tokens[p.pos] }
func (p *parser) next() token { t := p.tokens[p.pos]; p.pos++; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

func (p *parser) errorf(format string, args ...interface{}) error {
	return &ParseError{Pos: p.peek().pos, Msg: fmt.Sprintf(format, args...)}
}

// acceptKeyword consumes the keyword if present.
func (p *parser) acceptKeyword(kw string) bool {
	if p.peek().kind == tokKeyword && p.peek().text == kw {
		p.pos++
		return true
	}
	return false
}

// expectKeyword consumes the keyword or errors.
func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s, found %s", kw, p.peek())
	}
	return nil
}

// acceptSymbol consumes the symbol if present.
func (p *parser) acceptSymbol(sym string) bool {
	if p.peek().kind == tokSymbol && p.peek().text == sym {
		p.pos++
		return true
	}
	return false
}

// expectSymbol consumes the symbol or errors.
func (p *parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return p.errorf("expected %q, found %s", sym, p.peek())
	}
	return nil
}

func (p *parser) parseSelect() (*Select, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{Limit: -1}
	sel.Distinct = p.acceptKeyword("DISTINCT")
	if p.acceptKeyword("ALL") {
		sel.Distinct = false
	}

	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}

	if p.acceptKeyword("FROM") {
		from, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		sel.From = from
	}

	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}

	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, g)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}

	if p.acceptKeyword("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = h
	}

	for p.acceptKeyword("UNION") {
		if err := p.expectKeyword("ALL"); err != nil {
			return nil, p.errorf("only UNION ALL is supported")
		}
		arm, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		sel.Union = append(sel.Union, arm)
	}

	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}

	if p.acceptKeyword("LIMIT") {
		n, err := p.parseIntLiteral()
		if err != nil {
			return nil, err
		}
		sel.Limit = n
		if p.acceptKeyword("OFFSET") {
			off, err := p.parseIntLiteral()
			if err != nil {
				return nil, err
			}
			sel.Offset = off
		}
	}
	return sel, nil
}

func (p *parser) parseIntLiteral() (int, error) {
	t := p.peek()
	if t.kind != tokNumber {
		return 0, p.errorf("expected integer, found %s", t)
	}
	p.next()
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, p.errorf("expected integer, found %q", t.text)
	}
	return n, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	// Bare `*`.
	if p.peek().kind == tokSymbol && p.peek().text == "*" {
		p.next()
		return SelectItem{Expr: &Star{}}, nil
	}
	// `alias.*` needs two-token lookahead before falling back to parseExpr.
	if p.peek().kind == tokIdent && p.pos+2 < len(p.tokens) &&
		p.tokens[p.pos+1].kind == tokSymbol && p.tokens[p.pos+1].text == "." &&
		p.tokens[p.pos+2].kind == tokSymbol && p.tokens[p.pos+2].text == "*" {
		tbl := p.next().text
		p.next() // .
		p.next() // *
		return SelectItem{Expr: &Star{Table: tbl}}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		t := p.peek()
		if t.kind != tokIdent && t.kind != tokString {
			return SelectItem{}, p.errorf("expected alias after AS, found %s", t)
		}
		p.next()
		item.Alias = t.text
	} else if p.peek().kind == tokIdent {
		item.Alias = p.next().text
	}
	return item, nil
}

func (p *parser) parseTableRef() (*TableRef, error) {
	ref, err := p.parsePrimaryTableRef()
	if err != nil {
		return nil, err
	}
	for {
		var kind JoinKind
		switch {
		case p.acceptKeyword("JOIN"):
			kind = JoinInner
		case p.acceptKeyword("INNER"):
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			kind = JoinInner
		case p.acceptKeyword("LEFT"):
			p.acceptKeyword("OUTER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			kind = JoinLeft
		case p.acceptKeyword("CROSS"):
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			kind = JoinCross
		default:
			return ref, nil
		}
		right, err := p.parsePrimaryTableRef()
		if err != nil {
			return nil, err
		}
		jc := JoinClause{Kind: kind, Right: right}
		if kind != JoinCross {
			switch {
			case p.acceptKeyword("ON"):
				on, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				jc.On = on
			case p.acceptKeyword("USING"):
				if err := p.expectSymbol("("); err != nil {
					return nil, err
				}
				for {
					t := p.peek()
					if t.kind != tokIdent {
						return nil, p.errorf("expected column name in USING, found %s", t)
					}
					p.next()
					jc.Using = append(jc.Using, t.text)
					if !p.acceptSymbol(",") {
						break
					}
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
			default:
				return nil, p.errorf("expected ON or USING after JOIN, found %s", p.peek())
			}
		}
		ref.Joins = append(ref.Joins, jc)
	}
}

func (p *parser) parsePrimaryTableRef() (*TableRef, error) {
	var ref *TableRef
	if p.acceptSymbol("(") {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		ref = &TableRef{Sub: sub}
	} else {
		t := p.peek()
		if t.kind != tokIdent {
			return nil, p.errorf("expected table name or subquery, found %s", t)
		}
		p.next()
		ref = &TableRef{Name: t.text}
	}
	if p.acceptKeyword("AS") {
		t := p.peek()
		if t.kind != tokIdent {
			return nil, p.errorf("expected alias after AS, found %s", t)
		}
		p.next()
		ref.Alias = t.text
	} else if p.peek().kind == tokIdent {
		ref.Alias = p.next().text
	}
	if ref.Sub != nil && ref.Alias == "" {
		ref.Alias = "subquery"
	}
	return ref, nil
}

// Expression grammar, loosest to tightest:
//   OR → AND → NOT → comparison (incl. BETWEEN/IN/LIKE/IS) →
//   additive (+ - ||) → multiplicative (* / %) → unary minus → primary.

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", Expr: e}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		// IS [NOT] NULL
		if p.acceptKeyword("IS") {
			not := p.acceptKeyword("NOT")
			if !p.acceptKeyword("NULL") {
				return nil, p.errorf("expected NULL after IS, found %s", p.peek())
			}
			left = &IsNull{Expr: left, Not: not}
			continue
		}
		not := false
		if p.peek().kind == tokKeyword && p.peek().text == "NOT" {
			// lookahead: NOT BETWEEN / NOT IN / NOT LIKE
			nxt := p.tokens[p.pos+1]
			if nxt.kind == tokKeyword && (nxt.text == "BETWEEN" || nxt.text == "IN" || nxt.text == "LIKE") {
				p.next()
				not = true
			}
		}
		switch {
		case p.acceptKeyword("BETWEEN"):
			lo, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &Between{Expr: left, Lo: lo, Hi: hi, Not: not}
			continue
		case p.acceptKeyword("IN"):
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			var items []Expr
			for {
				it, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				items = append(items, it)
				if !p.acceptSymbol(",") {
					break
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			left = &InList{Expr: left, Items: items, Not: not}
			continue
		case p.acceptKeyword("LIKE"):
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			var e Expr = &Binary{Op: "LIKE", Left: left, Right: right}
			if not {
				e = &Unary{Op: "NOT", Expr: e}
			}
			left = e
			continue
		}
		if not {
			return nil, p.errorf("dangling NOT")
		}
		t := p.peek()
		if t.kind == tokSymbol {
			switch t.text {
			case "=", "<", ">", "<=", ">=", "<>", "!=":
				p.next()
				op := t.text
				if op == "!=" {
					op = "<>"
				}
				right, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				left = &Binary{Op: op, Left: left, Right: right}
				continue
			}
		}
		return left, nil
	}
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "+" || t.text == "-" || t.text == "||") {
			p.next()
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: t.text, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "*" || t.text == "/" || t.text == "%") {
			p.next()
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: t.text, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptSymbol("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", Expr: e}, nil
	}
	if p.acceptSymbol("+") {
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errorf("malformed number %q", t.text)
			}
			return &Literal{Val: value.Float(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(t.text, 64)
			if ferr != nil {
				return nil, p.errorf("malformed number %q", t.text)
			}
			return &Literal{Val: value.Float(f)}, nil
		}
		return &Literal{Val: value.Int(i)}, nil

	case tokString:
		p.next()
		return &Literal{Val: value.String(t.text)}, nil

	case tokKeyword:
		switch t.text {
		case "NULL":
			p.next()
			return &Literal{Val: value.Null()}, nil
		case "TRUE":
			p.next()
			return &Literal{Val: value.Bool(true)}, nil
		case "FALSE":
			p.next()
			return &Literal{Val: value.Bool(false)}, nil
		case "CASE":
			return p.parseCase()
		case "CAST":
			return p.parseCast()
		}
		return nil, p.errorf("unexpected keyword %s in expression", t.text)

	case tokSymbol:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errorf("unexpected %s in expression", t)

	case tokIdent:
		p.next()
		// Function call?
		if p.acceptSymbol("(") {
			return p.parseFuncArgs(strings.ToUpper(t.text))
		}
		// Qualified column?
		if p.acceptSymbol(".") {
			col := p.peek()
			if col.kind != tokIdent {
				return nil, p.errorf("expected column name after %q., found %s", t.text, col)
			}
			p.next()
			return &ColumnRef{Table: t.text, Column: col.text}, nil
		}
		return &ColumnRef{Column: t.text}, nil
	}
	return nil, p.errorf("unexpected %s", t)
}

func (p *parser) parseFuncArgs(name string) (Expr, error) {
	fc := &FuncCall{Name: name}
	if p.peek().kind == tokSymbol && p.peek().text == "*" {
		p.next()
		fc.Star = true
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return fc, nil
	}
	if p.acceptSymbol(")") {
		return fc, nil
	}
	fc.Distinct = p.acceptKeyword("DISTINCT")
	for {
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fc.Args = append(fc.Args, a)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return fc, nil
}

func (p *parser) parseCase() (Expr, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	c := &CaseExpr{}
	if !(p.peek().kind == tokKeyword && p.peek().text == "WHEN") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = op
	}
	for p.acceptKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		res, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, WhenClause{Cond: cond, Result: res})
	}
	if len(c.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN arm")
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *parser) parseCast() (Expr, error) {
	if err := p.expectKeyword("CAST"); err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind != tokIdent && t.kind != tokKeyword {
		return nil, p.errorf("expected type name, found %s", t)
	}
	p.next()
	kind, err := parseTypeName(t.text)
	if err != nil {
		return nil, &ParseError{Pos: t.pos, Msg: err.Error()}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &CastExpr{Expr: e, Type: kind}, nil
}

// parseTypeName maps SQL type names onto value kinds.
func parseTypeName(name string) (value.Kind, error) {
	switch strings.ToUpper(name) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		return value.KindInt, nil
	case "FLOAT", "DOUBLE", "REAL", "DECIMAL", "NUMERIC":
		return value.KindFloat, nil
	case "TEXT", "VARCHAR", "STRING", "CHAR":
		return value.KindString, nil
	case "BOOL", "BOOLEAN":
		return value.KindBool, nil
	case "DATE", "TIMESTAMP", "DATETIME":
		return value.KindTime, nil
	default:
		return value.KindNull, fmt.Errorf("unknown type name %q", name)
	}
}
