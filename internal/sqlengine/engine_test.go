package sqlengine

import (
	"strings"
	"testing"

	"pneuma/internal/table"
	"pneuma/internal/value"
)

// testEngine builds an engine with small fixture tables.
func testEngine(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine()

	proc := table.New(table.Schema{
		Name: "procurement",
		Columns: []table.Column{
			{Name: "id", Type: value.KindInt},
			{Name: "supplier_id", Type: value.KindInt},
			{Name: "item", Type: value.KindString},
			{Name: "price", Type: value.KindFloat},
			{Name: "country", Type: value.KindString},
		},
	})
	rows := []struct {
		id, sup int64
		item    string
		price   float64
		country string
	}{
		{1, 100, "microscope", 1200.50, "Germany"},
		{2, 100, "centrifuge", 800.00, "Germany"},
		{3, 200, "beaker", 12.25, "France"},
		{4, 300, "laptop", 999.99, "USA"},
		{5, 200, "pipette", 45.00, "France"},
		{6, 400, "reagent", 300.00, "Germany"},
	}
	for _, r := range rows {
		proc.MustAppend(table.Row{
			value.Int(r.id), value.Int(r.sup), value.String(r.item),
			value.Float(r.price), value.String(r.country),
		})
	}
	e.Register(proc)

	tariffs := table.New(table.Schema{
		Name: "tariffs",
		Columns: []table.Column{
			{Name: "country", Type: value.KindString},
			{Name: "new_tariff", Type: value.KindFloat},
			{Name: "prev_tariff", Type: value.KindFloat},
		},
	})
	tariffs.MustAppend(table.Row{value.String("Germany"), value.Float(0.10), value.Float(0.05)})
	tariffs.MustAppend(table.Row{value.String("France"), value.Float(0.08), value.Float(0.08)})
	e.Register(tariffs)

	nulls := table.New(table.Schema{
		Name: "nullish",
		Columns: []table.Column{
			{Name: "k", Type: value.KindInt},
			{Name: "v", Type: value.KindFloat},
		},
	})
	nulls.MustAppend(table.Row{value.Int(1), value.Float(10)})
	nulls.MustAppend(table.Row{value.Int(2), value.Null()})
	nulls.MustAppend(table.Row{value.Int(3), value.Float(30)})
	e.Register(nulls)

	return e
}

func mustQuery(t *testing.T, e *Engine, sql string) *table.Table {
	t.Helper()
	out, err := e.Query(sql)
	if err != nil {
		t.Fatalf("Query(%q) failed: %v", sql, err)
	}
	return out
}

func TestSelectStar(t *testing.T) {
	e := testEngine(t)
	out := mustQuery(t, e, "SELECT * FROM procurement")
	if out.NumRows() != 6 || out.NumCols() != 5 {
		t.Fatalf("got %dx%d, want 6x5", out.NumRows(), out.NumCols())
	}
	if out.Schema.Columns[0].Name != "id" {
		t.Errorf("first column = %q, want id", out.Schema.Columns[0].Name)
	}
}

func TestWhereFilter(t *testing.T) {
	e := testEngine(t)
	out := mustQuery(t, e, "SELECT item FROM procurement WHERE country = 'Germany' AND price > 500")
	if out.NumRows() != 2 {
		t.Fatalf("got %d rows, want 2", out.NumRows())
	}
}

func TestProjectionExpressionsAndAliases(t *testing.T) {
	e := testEngine(t)
	out := mustQuery(t, e, "SELECT item, price * 1.1 AS taxed FROM procurement WHERE id = 1")
	if out.NumRows() != 1 {
		t.Fatalf("rows = %d, want 1", out.NumRows())
	}
	if out.Schema.Columns[1].Name != "taxed" {
		t.Errorf("alias = %q, want taxed", out.Schema.Columns[1].Name)
	}
	got := out.Rows[0][1].FloatVal()
	if got < 1320.5 || got > 1320.6 {
		t.Errorf("taxed = %v, want ~1320.55", got)
	}
}

func TestOrderByAndLimit(t *testing.T) {
	e := testEngine(t)
	out := mustQuery(t, e, "SELECT item, price FROM procurement ORDER BY price DESC LIMIT 2")
	if out.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", out.NumRows())
	}
	if out.Rows[0][0].StringVal() != "microscope" {
		t.Errorf("top row = %v, want microscope", out.Rows[0][0])
	}
	if out.Rows[1][0].StringVal() != "laptop" {
		t.Errorf("second row = %v, want laptop", out.Rows[1][0])
	}
}

func TestOrderByOrdinalAndAlias(t *testing.T) {
	e := testEngine(t)
	out := mustQuery(t, e, "SELECT item, price AS p FROM procurement ORDER BY 2 ASC LIMIT 1")
	if out.Rows[0][0].StringVal() != "beaker" {
		t.Errorf("cheapest = %v, want beaker", out.Rows[0][0])
	}
	out = mustQuery(t, e, "SELECT item, price AS p FROM procurement ORDER BY p ASC LIMIT 1")
	if out.Rows[0][0].StringVal() != "beaker" {
		t.Errorf("cheapest via alias = %v, want beaker", out.Rows[0][0])
	}
}

func TestOffset(t *testing.T) {
	e := testEngine(t)
	out := mustQuery(t, e, "SELECT id FROM procurement ORDER BY id LIMIT 2 OFFSET 3")
	if out.NumRows() != 2 || out.Rows[0][0].IntVal() != 4 {
		t.Fatalf("offset result wrong: %v", out.Rows)
	}
}

func TestGroupByAggregates(t *testing.T) {
	e := testEngine(t)
	out := mustQuery(t, e, `
		SELECT country, COUNT(*) AS n, SUM(price) AS total, AVG(price) AS mean
		FROM procurement GROUP BY country ORDER BY country`)
	if out.NumRows() != 3 {
		t.Fatalf("groups = %d, want 3", out.NumRows())
	}
	// France: beaker 12.25 + pipette 45.00
	if out.Rows[0][0].StringVal() != "France" || out.Rows[0][1].IntVal() != 2 {
		t.Errorf("France row wrong: %v", out.Rows[0])
	}
	if got := out.Rows[0][2].FloatVal(); got != 57.25 {
		t.Errorf("France total = %v, want 57.25", got)
	}
}

func TestHaving(t *testing.T) {
	e := testEngine(t)
	out := mustQuery(t, e, `
		SELECT country, COUNT(*) AS n FROM procurement
		GROUP BY country HAVING COUNT(*) >= 2 ORDER BY country`)
	if out.NumRows() != 2 {
		t.Fatalf("groups = %d, want 2 (France, Germany)", out.NumRows())
	}
}

func TestGlobalAggregateOnEmptyInput(t *testing.T) {
	e := testEngine(t)
	out := mustQuery(t, e, "SELECT COUNT(*) AS n, SUM(price) AS s FROM procurement WHERE price > 1e9")
	if out.NumRows() != 1 {
		t.Fatalf("rows = %d, want 1", out.NumRows())
	}
	if out.Rows[0][0].IntVal() != 0 {
		t.Errorf("COUNT(*) = %v, want 0", out.Rows[0][0])
	}
	if !out.Rows[0][1].IsNull() {
		t.Errorf("SUM over empty = %v, want NULL", out.Rows[0][1])
	}
}

func TestCountDistinct(t *testing.T) {
	e := testEngine(t)
	out := mustQuery(t, e, "SELECT COUNT(DISTINCT country) AS c FROM procurement")
	if out.Rows[0][0].IntVal() != 3 {
		t.Errorf("distinct countries = %v, want 3", out.Rows[0][0])
	}
}

func TestAggregatesIgnoreNulls(t *testing.T) {
	e := testEngine(t)
	out := mustQuery(t, e, "SELECT COUNT(v) AS c, AVG(v) AS a, MIN(v) AS lo, MAX(v) AS hi FROM nullish")
	r := out.Rows[0]
	if r[0].IntVal() != 2 {
		t.Errorf("COUNT(v) = %v, want 2", r[0])
	}
	if r[1].FloatVal() != 20 {
		t.Errorf("AVG(v) = %v, want 20", r[1])
	}
	if r[2].FloatVal() != 10 || r[3].FloatVal() != 30 {
		t.Errorf("MIN/MAX = %v/%v, want 10/30", r[2], r[3])
	}
}

func TestMedianAndStddev(t *testing.T) {
	e := testEngine(t)
	out := mustQuery(t, e, "SELECT MEDIAN(price) AS m FROM procurement")
	// prices sorted: 12.25, 45, 300, 800, 999.99, 1200.50 → median (300+800)/2
	if got := out.Rows[0][0].FloatVal(); got != 550 {
		t.Errorf("median = %v, want 550", got)
	}
	out = mustQuery(t, e, "SELECT STDDEV(v) AS s FROM nullish")
	got := out.Rows[0][0].FloatVal()
	// values 10, 30 → sample stddev = sqrt(200) ≈ 14.1421
	if got < 14.14 || got > 14.15 {
		t.Errorf("stddev = %v, want ~14.142", got)
	}
}

func TestInnerJoin(t *testing.T) {
	e := testEngine(t)
	out := mustQuery(t, e, `
		SELECT p.item, p.price, t.new_tariff
		FROM procurement AS p JOIN tariffs AS t ON p.country = t.country
		ORDER BY p.id`)
	// USA has no tariff row → 5 rows.
	if out.NumRows() != 5 {
		t.Fatalf("rows = %d, want 5", out.NumRows())
	}
}

func TestLeftJoinPadsNulls(t *testing.T) {
	e := testEngine(t)
	out := mustQuery(t, e, `
		SELECT p.item, t.new_tariff
		FROM procurement AS p LEFT JOIN tariffs AS t ON p.country = t.country
		ORDER BY p.id`)
	if out.NumRows() != 6 {
		t.Fatalf("rows = %d, want 6", out.NumRows())
	}
	// laptop (USA) must appear with NULL tariff.
	found := false
	for _, r := range out.Rows {
		if r[0].StringVal() == "laptop" {
			found = true
			if !r[1].IsNull() {
				t.Errorf("laptop tariff = %v, want NULL", r[1])
			}
		}
	}
	if !found {
		t.Error("laptop row missing from LEFT JOIN result")
	}
}

func TestJoinUsing(t *testing.T) {
	e := testEngine(t)
	out := mustQuery(t, e, `
		SELECT p.item FROM procurement AS p JOIN tariffs AS t USING (country) ORDER BY p.id`)
	if out.NumRows() != 5 {
		t.Fatalf("rows = %d, want 5", out.NumRows())
	}
}

func TestCrossJoin(t *testing.T) {
	e := testEngine(t)
	out := mustQuery(t, e, "SELECT * FROM tariffs CROSS JOIN nullish")
	if out.NumRows() != 6 { // 2 × 3
		t.Fatalf("rows = %d, want 6", out.NumRows())
	}
}

func TestNonEquiJoin(t *testing.T) {
	e := testEngine(t)
	out := mustQuery(t, e, `
		SELECT p.item FROM procurement AS p JOIN tariffs AS t ON p.price > 1000 AND p.country = t.country`)
	if out.NumRows() != 1 || out.Rows[0][0].StringVal() != "microscope" {
		t.Fatalf("non-equi join wrong: %v", out.Rows)
	}
}

func TestTariffScenarioQuery(t *testing.T) {
	// The paper's running example (§3.6): impact relative to previous tariff.
	e := testEngine(t)
	out := mustQuery(t, e, `
		SELECT AVG(p.price * (1 + (t.new_tariff - t.prev_tariff))) AS new_avg_cost
		FROM procurement AS p JOIN tariffs AS t ON p.country = t.country
		WHERE t.country = 'Germany'`)
	got := out.Rows[0][0].FloatVal()
	// (1200.5+800+300)/3 = 766.8333; ×1.05 = 805.175
	if got < 805.17 || got > 805.18 {
		t.Errorf("new_avg_cost = %v, want ~805.175", got)
	}
}

func TestSubqueryInFrom(t *testing.T) {
	e := testEngine(t)
	out := mustQuery(t, e, `
		SELECT AVG(p) AS a FROM (SELECT price AS p FROM procurement WHERE country = 'France') AS sub`)
	if got := out.Rows[0][0].FloatVal(); got != 28.625 {
		t.Errorf("avg = %v, want 28.625", got)
	}
}

func TestUnionAll(t *testing.T) {
	e := testEngine(t)
	out := mustQuery(t, e, `
		SELECT country FROM tariffs UNION ALL SELECT country FROM tariffs`)
	if out.NumRows() != 4 {
		t.Fatalf("rows = %d, want 4", out.NumRows())
	}
}

func TestDistinct(t *testing.T) {
	e := testEngine(t)
	out := mustQuery(t, e, "SELECT DISTINCT country FROM procurement ORDER BY country")
	if out.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", out.NumRows())
	}
}

func TestCaseExpression(t *testing.T) {
	e := testEngine(t)
	out := mustQuery(t, e, `
		SELECT item, CASE WHEN price > 500 THEN 'expensive' ELSE 'cheap' END AS bucket
		FROM procurement ORDER BY id LIMIT 3`)
	if out.Rows[0][1].StringVal() != "expensive" || out.Rows[2][1].StringVal() != "cheap" {
		t.Errorf("case buckets wrong: %v", out.Rows)
	}
}

func TestCaseWithOperand(t *testing.T) {
	e := testEngine(t)
	out := mustQuery(t, e, `
		SELECT CASE country WHEN 'Germany' THEN 1 WHEN 'France' THEN 2 ELSE 0 END AS code
		FROM procurement ORDER BY id`)
	if out.Rows[0][0].IntVal() != 1 || out.Rows[2][0].IntVal() != 2 || out.Rows[3][0].IntVal() != 0 {
		t.Errorf("operand case wrong: %v", out.Rows)
	}
}

func TestBetweenInLike(t *testing.T) {
	e := testEngine(t)
	out := mustQuery(t, e, "SELECT item FROM procurement WHERE price BETWEEN 100 AND 1000 ORDER BY id")
	if out.NumRows() != 3 {
		t.Fatalf("between rows = %d, want 3", out.NumRows())
	}
	out = mustQuery(t, e, "SELECT item FROM procurement WHERE country IN ('France', 'USA') ORDER BY id")
	if out.NumRows() != 3 {
		t.Fatalf("in rows = %d, want 3", out.NumRows())
	}
	out = mustQuery(t, e, "SELECT item FROM procurement WHERE item LIKE '%scope'")
	if out.NumRows() != 1 || out.Rows[0][0].StringVal() != "microscope" {
		t.Fatalf("like rows wrong: %v", out.Rows)
	}
	out = mustQuery(t, e, "SELECT item FROM procurement WHERE item NOT LIKE '%e%' ORDER BY id")
	for _, r := range out.Rows {
		if strings.Contains(r[0].StringVal(), "e") {
			t.Errorf("NOT LIKE leaked %v", r[0])
		}
	}
}

func TestIsNullPredicates(t *testing.T) {
	e := testEngine(t)
	out := mustQuery(t, e, "SELECT k FROM nullish WHERE v IS NULL")
	if out.NumRows() != 1 || out.Rows[0][0].IntVal() != 2 {
		t.Fatalf("IS NULL wrong: %v", out.Rows)
	}
	out = mustQuery(t, e, "SELECT k FROM nullish WHERE v IS NOT NULL ORDER BY k")
	if out.NumRows() != 2 {
		t.Fatalf("IS NOT NULL wrong: %v", out.Rows)
	}
}

func TestNullComparisonIsNotTrue(t *testing.T) {
	e := testEngine(t)
	// v = NULL never matches via '='.
	out := mustQuery(t, e, "SELECT k FROM nullish WHERE v = NULL")
	if out.NumRows() != 0 {
		t.Fatalf("= NULL matched %d rows, want 0", out.NumRows())
	}
}

func TestScalarFunctions(t *testing.T) {
	e := testEngine(t)
	out := mustQuery(t, e, "SELECT ROUND(3.14159, 2) AS r, UPPER('abc') AS u, COALESCE(NULL, 7) AS c, LENGTH('hello') AS l")
	r := out.Rows[0]
	if r[0].FloatVal() != 3.14 {
		t.Errorf("ROUND = %v", r[0])
	}
	if r[1].StringVal() != "ABC" {
		t.Errorf("UPPER = %v", r[1])
	}
	if r[2].IntVal() != 7 {
		t.Errorf("COALESCE = %v", r[2])
	}
	if r[3].IntVal() != 5 {
		t.Errorf("LENGTH = %v", r[3])
	}
}

func TestCast(t *testing.T) {
	e := testEngine(t)
	out := mustQuery(t, e, "SELECT CAST('42' AS INT) AS i, CAST(3 AS VARCHAR) AS s, CAST('2020-01-15' AS DATE) AS d")
	r := out.Rows[0]
	if r[0].IntVal() != 42 {
		t.Errorf("cast int = %v", r[0])
	}
	if r[1].StringVal() != "3" {
		t.Errorf("cast string = %v", r[1])
	}
	if r[2].Kind() != value.KindTime {
		t.Errorf("cast date kind = %v", r[2].Kind())
	}
}

func TestDateFunctions(t *testing.T) {
	e := testEngine(t)
	out := mustQuery(t, e, "SELECT YEAR(CAST('2021-07-04' AS DATE)) AS y, MONTH(CAST('2021-07-04' AS DATE)) AS m")
	if out.Rows[0][0].IntVal() != 2021 || out.Rows[0][1].IntVal() != 7 {
		t.Errorf("date parts wrong: %v", out.Rows[0])
	}
}

func TestErrorUnknownTable(t *testing.T) {
	e := testEngine(t)
	_, err := e.Query("SELECT * FROM missing_table")
	if err == nil || !strings.Contains(err.Error(), "does not exist") {
		t.Fatalf("err = %v, want unknown-table error", err)
	}
	if !strings.Contains(err.Error(), "procurement") {
		t.Errorf("error should list known tables: %v", err)
	}
}

func TestErrorUnknownColumnListsCandidates(t *testing.T) {
	e := testEngine(t)
	_, err := e.Query("SELECT wrong_col FROM procurement")
	if err == nil || !strings.Contains(err.Error(), "available columns") {
		t.Fatalf("err = %v, want column-not-found with candidates", err)
	}
}

func TestErrorAmbiguousColumn(t *testing.T) {
	e := testEngine(t)
	_, err := e.Query("SELECT country FROM procurement JOIN tariffs ON procurement.country = tariffs.country")
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("err = %v, want ambiguity error", err)
	}
}

func TestErrorNonNumericArithmetic(t *testing.T) {
	e := testEngine(t)
	_, err := e.Query("SELECT item + 1 FROM procurement")
	if err == nil || !strings.Contains(err.Error(), "not numeric") {
		t.Fatalf("err = %v, want non-numeric error", err)
	}
}

func TestErrorDivisionByZero(t *testing.T) {
	e := testEngine(t)
	_, err := e.Query("SELECT price / 0 FROM procurement")
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("err = %v, want division by zero", err)
	}
}

func TestErrorSyntax(t *testing.T) {
	e := testEngine(t)
	for _, bad := range []string{
		"SELEC * FROM procurement",
		"SELECT FROM procurement",
		"SELECT * FROM",
		"SELECT * FROM procurement WHERE",
		"SELECT * procurement",
	} {
		if _, err := e.Query(bad); err == nil {
			t.Errorf("Query(%q) should fail", bad)
		}
	}
}

func TestErrorAggregateInWhere(t *testing.T) {
	e := testEngine(t)
	_, err := e.Query("SELECT * FROM procurement WHERE SUM(price) > 10")
	if err == nil {
		t.Fatal("aggregate in WHERE should error")
	}
}

func TestParseRoundTrip(t *testing.T) {
	// Statement → String() → Parse again must succeed and produce the same
	// rendering (idempotent round trip).
	stmts := []string{
		"SELECT a, b AS x FROM t WHERE a > 1 GROUP BY a HAVING COUNT(*) > 2 ORDER BY a DESC LIMIT 5",
		"SELECT * FROM t1 JOIN t2 ON t1.id = t2.id LEFT JOIN t3 ON t2.k = t3.k",
		"SELECT CASE WHEN x > 0 THEN 'p' ELSE 'n' END AS sign FROM t",
		"SELECT COUNT(DISTINCT c) FROM t",
		"SELECT CAST(x AS DOUBLE) FROM t WHERE y BETWEEN 1 AND 2 AND z IN (1, 2, 3)",
	}
	for _, s := range stmts {
		p1, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		r1 := p1.String()
		p2, err := Parse(r1)
		if err != nil {
			t.Fatalf("reparse of %q (from %q): %v", r1, s, err)
		}
		if r2 := p2.String(); r1 != r2 {
			t.Errorf("render not idempotent:\n 1: %s\n 2: %s", r1, r2)
		}
	}
}

func TestQuotedIdentifiers(t *testing.T) {
	e := NewEngine()
	tb := table.New(table.Schema{
		Name:    "weird",
		Columns: []table.Column{{Name: "my col", Type: value.KindInt}},
	})
	tb.MustAppend(table.Row{value.Int(9)})
	e.Register(tb)
	out := mustQuery(t, e, `SELECT "my col" FROM weird`)
	if out.Rows[0][0].IntVal() != 9 {
		t.Fatalf("quoted ident failed: %v", out.Rows)
	}
}

func TestStringEscapes(t *testing.T) {
	e := testEngine(t)
	out := mustQuery(t, e, "SELECT 'it''s' AS s")
	if out.Rows[0][0].StringVal() != "it's" {
		t.Fatalf("escape wrong: %q", out.Rows[0][0].StringVal())
	}
}

func TestFromlessSelect(t *testing.T) {
	e := testEngine(t)
	out := mustQuery(t, e, "SELECT 1 + 2 AS three")
	if out.Rows[0][0].IntVal() != 3 {
		t.Fatalf("1+2 = %v", out.Rows[0][0])
	}
}

func TestFirstLastAggregates(t *testing.T) {
	e := testEngine(t)
	out := mustQuery(t, e, `
		SELECT FIRST(price) AS f, LAST(price) AS l
		FROM (SELECT price FROM procurement ORDER BY id) AS ordered`)
	if out.Rows[0][0].FloatVal() != 1200.50 {
		t.Errorf("FIRST = %v, want 1200.50", out.Rows[0][0])
	}
	if out.Rows[0][1].FloatVal() != 300.00 {
		t.Errorf("LAST = %v, want 300.00", out.Rows[0][1])
	}
}

func TestRegisterDropNames(t *testing.T) {
	e := NewEngine()
	tb := table.New(table.Schema{Name: "T1", Columns: []table.Column{{Name: "a", Type: value.KindInt}}})
	e.Register(tb)
	if _, ok := e.Table("t1"); !ok {
		t.Fatal("case-insensitive lookup failed")
	}
	if !e.Drop("T1") {
		t.Fatal("drop failed")
	}
	if e.Drop("T1") {
		t.Fatal("double drop should report false")
	}
}

func TestCustomScalarFunction(t *testing.T) {
	e := testEngine(t)
	e.Funcs().Register("DOUBLE_IT", func(args []value.Value) (value.Value, error) {
		f, _ := args[0].AsFloat()
		return value.Float(2 * f), nil
	})
	out := mustQuery(t, e, "SELECT DOUBLE_IT(21) AS x")
	if out.Rows[0][0].FloatVal() != 42 {
		t.Fatalf("custom func = %v", out.Rows[0][0])
	}
}
