package sqlengine

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"pneuma/internal/table"
	"pneuma/internal/value"
)

// intTable builds a single-column bigint table from xs.
func intTable(name string, xs []int32) *table.Table {
	t := table.New(table.Schema{Name: name, Columns: []table.Column{{Name: "v", Type: value.KindInt}}})
	for _, x := range xs {
		t.MustAppend(table.Row{value.Int(int64(x))})
	}
	return t
}

// TestPropertySumMatchesDirectComputation: SUM over any int column equals
// the direct Go sum.
func TestPropertySumMatchesDirectComputation(t *testing.T) {
	f := func(xs []int32) bool {
		e := NewEngine()
		e.Register(intTable("t", xs))
		out, err := e.Query("SELECT SUM(v) AS s, COUNT(*) AS n FROM t")
		if err != nil {
			return false
		}
		var want int64
		for _, x := range xs {
			want += int64(x)
		}
		if len(xs) == 0 {
			return out.Rows[0][0].IsNull() && out.Rows[0][1].IntVal() == 0
		}
		return out.Rows[0][0].IntVal() == want && out.Rows[0][1].IntVal() == int64(len(xs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyWherePartitions: a predicate and its negation partition the
// table (modulo NULL, absent here).
func TestPropertyWherePartitions(t *testing.T) {
	f := func(xs []int32, pivot int32) bool {
		e := NewEngine()
		e.Register(intTable("t", xs))
		lt, err := e.Query(fmt.Sprintf("SELECT COUNT(*) AS n FROM t WHERE v < %d", pivot))
		if err != nil {
			return false
		}
		ge, err := e.Query(fmt.Sprintf("SELECT COUNT(*) AS n FROM t WHERE NOT (v < %d)", pivot))
		if err != nil {
			return false
		}
		return lt.Rows[0][0].IntVal()+ge.Rows[0][0].IntVal() == int64(len(xs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyOrderBySorts: ORDER BY v ASC yields a non-decreasing column.
func TestPropertyOrderBySorts(t *testing.T) {
	f := func(xs []int32) bool {
		e := NewEngine()
		e.Register(intTable("t", xs))
		out, err := e.Query("SELECT v FROM t ORDER BY v")
		if err != nil || out.NumRows() != len(xs) {
			return false
		}
		for i := 1; i < out.NumRows(); i++ {
			if out.Rows[i][0].IntVal() < out.Rows[i-1][0].IntVal() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLimitOffset: LIMIT/OFFSET never exceed bounds and compose.
func TestPropertyLimitOffset(t *testing.T) {
	f := func(xs []int32, rawLimit, rawOffset uint8) bool {
		limit, offset := int(rawLimit%16), int(rawOffset%16)
		e := NewEngine()
		e.Register(intTable("t", xs))
		out, err := e.Query(fmt.Sprintf("SELECT v FROM t ORDER BY v LIMIT %d OFFSET %d", limit, offset))
		if err != nil {
			return false
		}
		want := len(xs) - offset
		if want < 0 {
			want = 0
		}
		if want > limit {
			want = limit
		}
		return out.NumRows() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyAvgBetweenMinMax: AVG lies within [MIN, MAX].
func TestPropertyAvgBetweenMinMax(t *testing.T) {
	f := func(xs []int32) bool {
		if len(xs) == 0 {
			return true
		}
		e := NewEngine()
		e.Register(intTable("t", xs))
		out, err := e.Query("SELECT AVG(v) AS a, MIN(v) AS lo, MAX(v) AS hi FROM t")
		if err != nil {
			return false
		}
		a := out.Rows[0][0].FloatVal()
		lo := out.Rows[0][1].FloatVal()
		hi := out.Rows[0][2].FloatVal()
		return a >= lo-1e-9 && a <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDistinctIdempotent: DISTINCT twice equals DISTINCT once, and
// group count equals distinct count.
func TestPropertyDistinctIdempotent(t *testing.T) {
	f := func(xs []int32) bool {
		e := NewEngine()
		e.Register(intTable("t", xs))
		d1, err := e.Query("SELECT DISTINCT v FROM t")
		if err != nil {
			return false
		}
		d2, err := e.Query("SELECT DISTINCT v FROM (SELECT DISTINCT v FROM t) AS s")
		if err != nil {
			return false
		}
		cnt, err := e.Query("SELECT COUNT(DISTINCT v) AS n FROM t")
		if err != nil {
			return false
		}
		return d1.NumRows() == d2.NumRows() && int64(d1.NumRows()) == cnt.Rows[0][0].IntVal()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyUnionAllCounts: UNION ALL row count is the sum of arm counts.
func TestPropertyUnionAllCounts(t *testing.T) {
	f := func(xs, ys []int32) bool {
		e := NewEngine()
		e.Register(intTable("a", xs))
		e.Register(intTable("b", ys))
		out, err := e.Query("SELECT v FROM a UNION ALL SELECT v FROM b")
		if err != nil {
			return false
		}
		return out.NumRows() == len(xs)+len(ys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyStddevNonNegative over float inputs.
func TestPropertyStddevNonNegative(t *testing.T) {
	f := func(xs []float32) bool {
		tb := table.New(table.Schema{Name: "t", Columns: []table.Column{{Name: "v", Type: value.KindFloat}}})
		for _, x := range xs {
			if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
				continue
			}
			tb.MustAppend(table.Row{value.Float(float64(x))})
		}
		e := NewEngine()
		e.Register(tb)
		out, err := e.Query("SELECT STDDEV(v) AS s FROM t")
		if err != nil {
			return false
		}
		v := out.Rows[0][0]
		return v.IsNull() || v.FloatVal() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
