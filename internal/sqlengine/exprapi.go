package sqlengine

import (
	"pneuma/internal/table"
	"pneuma/internal/value"
)

// ParseExpr parses a standalone SQL expression (no SELECT wrapper). The
// transform toolkit uses it for derived-column formulas.
func ParseExpr(src string) (Expr, error) {
	tokens, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{tokens: tokens}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errorf("unexpected %s after expression", p.peek())
	}
	return e, nil
}

// EvalOnRow evaluates an expression against one row of a table, resolving
// unqualified column names against the table's schema. Aggregates are not
// allowed here.
func EvalOnRow(e Expr, t *table.Table, row table.Row) (value.Value, error) {
	f := &frame{}
	for _, c := range t.Schema.Columns {
		f.cols = append(f.cols, execCol{qual: "", name: c.Name})
	}
	en := &env{frame: f, row: row, funcs: DefaultFuncs}
	return en.eval(e)
}
