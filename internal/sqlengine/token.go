// Package sqlengine implements the from-scratch SQL engine that plays the
// role DuckDB plays in the paper's Materializer: a lexer, recursive-descent
// parser, expression evaluator and tree-walking executor over the in-memory
// tables of internal/table.
//
// The dialect covers what data preparation needs: SELECT with DISTINCT,
// INNER/LEFT/CROSS JOIN, WHERE, GROUP BY, HAVING, ORDER BY, LIMIT/OFFSET,
// UNION ALL, subqueries in FROM, CASE, CAST, BETWEEN, IN, LIKE, IS NULL, a
// scalar-function registry and COUNT/SUM/AVG/MIN/MAX/MEDIAN/STDDEV
// aggregates (with DISTINCT). Errors carry positions and are phrased so the
// Materializer's repair loop can react to them, mirroring the paper's
// "tool analyzes these errors and provides feedback" behaviour.
package sqlengine

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token classes.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol // operators and punctuation
)

// token is one lexical token with its source position (1-based column).
type token struct {
	kind tokenKind
	text string // keywords are upper-cased; identifiers keep original case
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// keywords is the reserved-word set. Identifiers matching these (case-
// insensitively) lex as keywords.
var keywords = map[string]struct{}{
	"SELECT": {}, "FROM": {}, "WHERE": {}, "GROUP": {}, "BY": {}, "HAVING": {},
	"ORDER": {}, "LIMIT": {}, "OFFSET": {}, "AS": {}, "AND": {}, "OR": {},
	"NOT": {}, "NULL": {}, "TRUE": {}, "FALSE": {}, "JOIN": {}, "INNER": {},
	"LEFT": {}, "RIGHT": {}, "CROSS": {}, "OUTER": {}, "ON": {}, "ASC": {},
	"DESC": {}, "DISTINCT": {}, "BETWEEN": {}, "IN": {}, "LIKE": {}, "IS": {},
	"CASE": {}, "WHEN": {}, "THEN": {}, "ELSE": {}, "END": {}, "CAST": {},
	"UNION": {}, "ALL": {}, "USING": {},
}

// lexer turns SQL text into tokens.
type lexer struct {
	src    string
	pos    int
	tokens []token
}

// lex tokenizes src, returning a token slice ending with tokEOF.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpaceAndComments()
		if l.pos >= len(l.src) {
			l.tokens = append(l.tokens, token{kind: tokEOF, pos: l.pos + 1})
			return l.tokens, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexIdent()
		case unicode.IsDigit(rune(c)) || (c == '.' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1]))):
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '"':
			if err := l.lexQuotedIdent(); err != nil {
				return nil, err
			}
		default:
			if !l.lexSymbol() {
				return nil, fmt.Errorf("sql: unexpected character %q at position %d", c, start+1)
			}
		}
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	text := l.src[start:l.pos]
	upper := strings.ToUpper(text)
	if _, ok := keywords[upper]; ok {
		l.tokens = append(l.tokens, token{kind: tokKeyword, text: upper, pos: start + 1})
		return
	}
	l.tokens = append(l.tokens, token{kind: tokIdent, text: text, pos: start + 1})
}

func (l *lexer) lexQuotedIdent() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '"' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '"' { // escaped quote
				b.WriteByte('"')
				l.pos += 2
				continue
			}
			l.pos++
			l.tokens = append(l.tokens, token{kind: tokIdent, text: b.String(), pos: start + 1})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated quoted identifier at position %d", start+1)
}

func (l *lexer) lexNumber() error {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case unicode.IsDigit(rune(c)):
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			seenExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			goto done
		}
	}
done:
	text := l.src[start:l.pos]
	if strings.HasSuffix(text, "e") || strings.HasSuffix(text, "E") ||
		strings.HasSuffix(text, "+") || strings.HasSuffix(text, "-") {
		return fmt.Errorf("sql: malformed number %q at position %d", text, start+1)
	}
	l.tokens = append(l.tokens, token{kind: tokNumber, text: text, pos: start + 1})
	return nil
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' { // escaped quote
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.tokens = append(l.tokens, token{kind: tokString, text: b.String(), pos: start + 1})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string literal at position %d", start+1)
}

// twoCharSymbols are matched before single characters.
var twoCharSymbols = []string{"<=", ">=", "<>", "!=", "||"}

func (l *lexer) lexSymbol() bool {
	rest := l.src[l.pos:]
	for _, s := range twoCharSymbols {
		if strings.HasPrefix(rest, s) {
			l.tokens = append(l.tokens, token{kind: tokSymbol, text: s, pos: l.pos + 1})
			l.pos += len(s)
			return true
		}
	}
	switch rest[0] {
	case '+', '-', '*', '/', '%', '(', ')', ',', '=', '<', '>', '.', ';':
		l.tokens = append(l.tokens, token{kind: tokSymbol, text: rest[:1], pos: l.pos + 1})
		l.pos++
		return true
	}
	return false
}
