package sqlengine

import (
	"fmt"
	"strings"

	"pneuma/internal/value"
)

// EvalError is a runtime evaluation error. Its message names the offending
// expression and value so the Materializer's repair loop can diagnose it
// (e.g. "value \"March 3, 2021\" is not numeric" points at a format issue).
type EvalError struct {
	Expr string
	Msg  string
}

func (e *EvalError) Error() string {
	if e.Expr == "" {
		return "sql eval error: " + e.Msg
	}
	return fmt.Sprintf("sql eval error in %s: %s", e.Expr, e.Msg)
}

func evalErrf(ex Expr, format string, args ...interface{}) error {
	s := ""
	if ex != nil {
		s = ex.String()
	}
	return &EvalError{Expr: s, Msg: fmt.Sprintf(format, args...)}
}

// execCol is one column of an execution frame, carrying the qualifier it is
// reachable under ("" for derived columns).
type execCol struct {
	qual string // table alias, lower-cased
	name string // column name
}

// frame is the schema of rows flowing through the executor.
type frame struct {
	cols []execCol
}

// resolve finds the index of (qual, name). Unqualified names must be
// unambiguous. The error text lists candidates to guide repair.
func (f *frame) resolve(qual, name string) (int, error) {
	qual = strings.ToLower(qual)
	found := -1
	for i, c := range f.cols {
		if !strings.EqualFold(c.name, name) {
			continue
		}
		if qual != "" && c.qual != qual {
			continue
		}
		if found >= 0 {
			return 0, &EvalError{Expr: name, Msg: fmt.Sprintf(
				"column reference %q is ambiguous (qualify it, e.g. %s.%s or %s.%s)",
				name, f.cols[found].qual, name, c.qual, name)}
		}
		found = i
	}
	if found < 0 {
		ref := name
		if qual != "" {
			ref = qual + "." + name
		}
		return 0, &EvalError{Expr: ref, Msg: fmt.Sprintf(
			"column %q does not exist; available columns: %s", ref, f.describe())}
	}
	return found, nil
}

func (f *frame) describe() string {
	names := make([]string, 0, len(f.cols))
	for _, c := range f.cols {
		if c.qual != "" {
			names = append(names, c.qual+"."+c.name)
		} else {
			names = append(names, c.name)
		}
	}
	if len(names) > 24 {
		names = append(names[:24], "...")
	}
	return strings.Join(names, ", ")
}

// env is the evaluation context for one row: the frame, the row values, and
// an optional aggregate lookup used while evaluating grouped select lists.
type env struct {
	frame *frame
	row   []value.Value
	// aggs maps FuncCall.String() of aggregate calls to the per-group value.
	aggs map[string]value.Value
	// funcs is the scalar function registry in effect.
	funcs *FuncRegistry
}

// tri is SQL three-valued logic.
type tri int

const (
	triFalse tri = iota
	triTrue
	triNull
)

func triOf(v value.Value) tri {
	if v.IsNull() {
		return triNull
	}
	if b, ok := v.AsBool(); ok && b {
		return triTrue
	}
	return triFalse
}

func (t tri) value() value.Value {
	switch t {
	case triTrue:
		return value.Bool(true)
	case triFalse:
		return value.Bool(false)
	default:
		return value.Null()
	}
}

// eval evaluates e in the environment.
func (en *env) eval(e Expr) (value.Value, error) {
	switch ex := e.(type) {
	case *Literal:
		return ex.Val, nil

	case *ColumnRef:
		i, err := en.frame.resolve(ex.Table, ex.Column)
		if err != nil {
			return value.Null(), err
		}
		return en.row[i], nil

	case *Star:
		return value.Null(), evalErrf(ex, "* is only valid in a select list or COUNT(*)")

	case *Unary:
		return en.evalUnary(ex)

	case *Binary:
		return en.evalBinary(ex)

	case *Between:
		v, err := en.eval(ex.Expr)
		if err != nil {
			return value.Null(), err
		}
		lo, err := en.eval(ex.Lo)
		if err != nil {
			return value.Null(), err
		}
		hi, err := en.eval(ex.Hi)
		if err != nil {
			return value.Null(), err
		}
		if v.IsNull() || lo.IsNull() || hi.IsNull() {
			return value.Null(), nil
		}
		in := value.Compare(v, lo) >= 0 && value.Compare(v, hi) <= 0
		if ex.Not {
			in = !in
		}
		return value.Bool(in), nil

	case *InList:
		v, err := en.eval(ex.Expr)
		if err != nil {
			return value.Null(), err
		}
		if v.IsNull() {
			return value.Null(), nil
		}
		sawNull := false
		for _, item := range ex.Items {
			iv, err := en.eval(item)
			if err != nil {
				return value.Null(), err
			}
			if iv.IsNull() {
				sawNull = true
				continue
			}
			if value.Equal(v, iv) {
				return value.Bool(!ex.Not), nil
			}
		}
		if sawNull {
			return value.Null(), nil
		}
		return value.Bool(ex.Not), nil

	case *IsNull:
		v, err := en.eval(ex.Expr)
		if err != nil {
			return value.Null(), err
		}
		return value.Bool(v.IsNull() != ex.Not), nil

	case *FuncCall:
		return en.evalFunc(ex)

	case *CaseExpr:
		return en.evalCase(ex)

	case *CastExpr:
		v, err := en.eval(ex.Expr)
		if err != nil {
			return value.Null(), err
		}
		out, ok := value.CoerceKind(v, ex.Type)
		if !ok {
			return value.Null(), evalErrf(ex, "cannot cast %q to %s", v.String(), ex.Type)
		}
		return out, nil

	default:
		return value.Null(), evalErrf(e, "unsupported expression node %T", e)
	}
}

func (en *env) evalUnary(ex *Unary) (value.Value, error) {
	v, err := en.eval(ex.Expr)
	if err != nil {
		return value.Null(), err
	}
	switch ex.Op {
	case "NOT":
		switch triOf(v) {
		case triTrue:
			return value.Bool(false), nil
		case triFalse:
			return value.Bool(true), nil
		default:
			return value.Null(), nil
		}
	case "-":
		if v.IsNull() {
			return value.Null(), nil
		}
		if v.Kind() == value.KindInt {
			return value.Int(-v.IntVal()), nil
		}
		f, ok := v.AsFloat()
		if !ok {
			return value.Null(), evalErrf(ex, "value %q is not numeric", v.String())
		}
		return value.Float(-f), nil
	}
	return value.Null(), evalErrf(ex, "unknown unary operator %q", ex.Op)
}

func (en *env) evalBinary(ex *Binary) (value.Value, error) {
	switch ex.Op {
	case "AND", "OR":
		l, err := en.eval(ex.Left)
		if err != nil {
			return value.Null(), err
		}
		lt := triOf(l)
		if ex.Op == "AND" && lt == triFalse {
			return value.Bool(false), nil
		}
		if ex.Op == "OR" && lt == triTrue {
			return value.Bool(true), nil
		}
		r, err := en.eval(ex.Right)
		if err != nil {
			return value.Null(), err
		}
		rt := triOf(r)
		if ex.Op == "AND" {
			switch {
			case rt == triFalse:
				return value.Bool(false), nil
			case lt == triTrue && rt == triTrue:
				return value.Bool(true), nil
			default:
				return value.Null(), nil
			}
		}
		switch {
		case rt == triTrue:
			return value.Bool(true), nil
		case lt == triFalse && rt == triFalse:
			return value.Bool(false), nil
		default:
			return value.Null(), nil
		}
	}

	l, err := en.eval(ex.Left)
	if err != nil {
		return value.Null(), err
	}
	r, err := en.eval(ex.Right)
	if err != nil {
		return value.Null(), err
	}

	switch ex.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return value.Null(), nil
		}
		c := value.Compare(l, r)
		var b bool
		switch ex.Op {
		case "=":
			b = c == 0
		case "<>":
			b = c != 0
		case "<":
			b = c < 0
		case "<=":
			b = c <= 0
		case ">":
			b = c > 0
		case ">=":
			b = c >= 0
		}
		return value.Bool(b), nil

	case "||":
		if l.IsNull() || r.IsNull() {
			return value.Null(), nil
		}
		return value.String(l.String() + r.String()), nil

	case "LIKE":
		if l.IsNull() || r.IsNull() {
			return value.Null(), nil
		}
		return value.Bool(likeMatch(l.String(), r.String())), nil

	case "+", "-", "*", "/", "%":
		return en.arith(ex, l, r)
	}
	return value.Null(), evalErrf(ex, "unknown operator %q", ex.Op)
}

func (en *env) arith(ex *Binary, l, r value.Value) (value.Value, error) {
	if l.IsNull() || r.IsNull() {
		return value.Null(), nil
	}
	lf, lok := l.AsFloat()
	rf, rok := r.AsFloat()
	if !lok {
		return value.Null(), evalErrf(ex, "value %q is not numeric", l.String())
	}
	if !rok {
		return value.Null(), evalErrf(ex, "value %q is not numeric", r.String())
	}
	bothInt := l.Kind() == value.KindInt && r.Kind() == value.KindInt
	switch ex.Op {
	case "+":
		if bothInt {
			return value.Int(l.IntVal() + r.IntVal()), nil
		}
		return value.Float(lf + rf), nil
	case "-":
		if bothInt {
			return value.Int(l.IntVal() - r.IntVal()), nil
		}
		return value.Float(lf - rf), nil
	case "*":
		if bothInt {
			return value.Int(l.IntVal() * r.IntVal()), nil
		}
		return value.Float(lf * rf), nil
	case "/":
		if rf == 0 {
			return value.Null(), evalErrf(ex, "division by zero")
		}
		return value.Float(lf / rf), nil
	case "%":
		ri := int64(rf)
		if ri == 0 {
			return value.Null(), evalErrf(ex, "modulo by zero")
		}
		return value.Int(int64(lf) % ri), nil
	}
	return value.Null(), evalErrf(ex, "unknown arithmetic operator %q", ex.Op)
}

func (en *env) evalFunc(ex *FuncCall) (value.Value, error) {
	// Aggregates are computed by the grouping executor and injected via the
	// env's aggs map keyed by the call's canonical string.
	if isAggregate(ex.Name) {
		if en.aggs == nil {
			return value.Null(), evalErrf(ex, "aggregate %s is not allowed here (only in SELECT list or HAVING of a grouped query)", ex.Name)
		}
		v, ok := en.aggs[ex.String()]
		if !ok {
			return value.Null(), evalErrf(ex, "internal: aggregate %s was not precomputed", ex.String())
		}
		return v, nil
	}
	reg := en.funcs
	if reg == nil {
		reg = DefaultFuncs
	}
	fn, ok := reg.Lookup(ex.Name)
	if !ok {
		return value.Null(), evalErrf(ex, "unknown function %s (known: %s)", ex.Name, reg.NamesHint())
	}
	args := make([]value.Value, len(ex.Args))
	for i, a := range ex.Args {
		v, err := en.eval(a)
		if err != nil {
			return value.Null(), err
		}
		args[i] = v
	}
	out, err := fn(args)
	if err != nil {
		return value.Null(), evalErrf(ex, "%s", err.Error())
	}
	return out, nil
}

func (en *env) evalCase(ex *CaseExpr) (value.Value, error) {
	if ex.Operand != nil {
		op, err := en.eval(ex.Operand)
		if err != nil {
			return value.Null(), err
		}
		for _, w := range ex.Whens {
			wv, err := en.eval(w.Cond)
			if err != nil {
				return value.Null(), err
			}
			if !op.IsNull() && !wv.IsNull() && value.Equal(op, wv) {
				return en.eval(w.Result)
			}
		}
	} else {
		for _, w := range ex.Whens {
			cv, err := en.eval(w.Cond)
			if err != nil {
				return value.Null(), err
			}
			if triOf(cv) == triTrue {
				return en.eval(w.Result)
			}
		}
	}
	if ex.Else != nil {
		return en.eval(ex.Else)
	}
	return value.Null(), nil
}

// likeMatch implements SQL LIKE with % and _ wildcards, case-insensitive
// (matching DuckDB's ILIKE-ish behaviour that users generally expect from a
// data-prep tool).
func likeMatch(s, pattern string) bool {
	return likeRec(strings.ToLower(s), strings.ToLower(pattern))
}

func likeRec(s, p string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			// Collapse consecutive %.
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(s[i:], p) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			s, p = s[1:], p[1:]
		default:
			if len(s) == 0 || s[0] != p[0] {
				return false
			}
			s, p = s[1:], p[1:]
		}
	}
	return len(s) == 0
}

// collectAggregates walks e and appends every aggregate FuncCall found.
// Aggregates nested inside aggregates are rejected.
func collectAggregates(e Expr, out *[]*FuncCall) error {
	switch ex := e.(type) {
	case nil, *Literal, *ColumnRef, *Star:
		return nil
	case *Unary:
		return collectAggregates(ex.Expr, out)
	case *Binary:
		if err := collectAggregates(ex.Left, out); err != nil {
			return err
		}
		return collectAggregates(ex.Right, out)
	case *Between:
		for _, sub := range []Expr{ex.Expr, ex.Lo, ex.Hi} {
			if err := collectAggregates(sub, out); err != nil {
				return err
			}
		}
		return nil
	case *InList:
		if err := collectAggregates(ex.Expr, out); err != nil {
			return err
		}
		for _, it := range ex.Items {
			if err := collectAggregates(it, out); err != nil {
				return err
			}
		}
		return nil
	case *IsNull:
		return collectAggregates(ex.Expr, out)
	case *FuncCall:
		if isAggregate(ex.Name) {
			var inner []*FuncCall
			for _, a := range ex.Args {
				if err := collectAggregates(a, &inner); err != nil {
					return err
				}
			}
			if len(inner) > 0 {
				return evalErrf(ex, "nested aggregate functions are not allowed")
			}
			*out = append(*out, ex)
			return nil
		}
		for _, a := range ex.Args {
			if err := collectAggregates(a, out); err != nil {
				return err
			}
		}
		return nil
	case *CaseExpr:
		if err := collectAggregates(ex.Operand, out); err != nil {
			return err
		}
		for _, w := range ex.Whens {
			if err := collectAggregates(w.Cond, out); err != nil {
				return err
			}
			if err := collectAggregates(w.Result, out); err != nil {
				return err
			}
		}
		return collectAggregates(ex.Else, out)
	case *CastExpr:
		return collectAggregates(ex.Expr, out)
	default:
		return evalErrf(e, "unsupported expression node %T", e)
	}
}
