package sqlengine

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"pneuma/internal/value"
)

// ScalarFunc is a scalar SQL function implementation.
type ScalarFunc func(args []value.Value) (value.Value, error)

// FuncRegistry maps upper-case function names to implementations. The
// registry is extensible at runtime, which is how the project models the
// paper's point that new operators (e.g. semantic operators à la LOTUS)
// "naturally slot into the action space".
type FuncRegistry struct {
	funcs map[string]ScalarFunc
}

// NewFuncRegistry returns a registry pre-populated with the built-ins.
func NewFuncRegistry() *FuncRegistry {
	r := &FuncRegistry{funcs: make(map[string]ScalarFunc)}
	registerBuiltins(r)
	return r
}

// Register adds or replaces a function (name is case-insensitive).
func (r *FuncRegistry) Register(name string, fn ScalarFunc) {
	r.funcs[strings.ToUpper(name)] = fn
}

// Lookup finds a function by name.
func (r *FuncRegistry) Lookup(name string) (ScalarFunc, bool) {
	fn, ok := r.funcs[strings.ToUpper(name)]
	return fn, ok
}

// NamesHint returns a sorted, comma-separated list of registered names for
// error messages.
func (r *FuncRegistry) NamesHint() string {
	names := make([]string, 0, len(r.funcs))
	for n := range r.funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// DefaultFuncs is the shared default registry.
var DefaultFuncs = NewFuncRegistry()

func arity(name string, args []value.Value, want int) error {
	if len(args) != want {
		return fmt.Errorf("%s expects %d argument(s), got %d", name, want, len(args))
	}
	return nil
}

func arityRange(name string, args []value.Value, lo, hi int) error {
	if len(args) < lo || len(args) > hi {
		return fmt.Errorf("%s expects %d-%d arguments, got %d", name, lo, hi, len(args))
	}
	return nil
}

func numArg(name string, v value.Value) (float64, bool, error) {
	if v.IsNull() {
		return 0, true, nil
	}
	f, ok := v.AsFloat()
	if !ok {
		return 0, false, fmt.Errorf("%s: value %q is not numeric", name, v.String())
	}
	return f, false, nil
}

func registerBuiltins(r *FuncRegistry) {
	// --- numeric ---
	r.Register("ABS", func(args []value.Value) (value.Value, error) {
		if err := arity("ABS", args, 1); err != nil {
			return value.Null(), err
		}
		f, isNull, err := numArg("ABS", args[0])
		if err != nil || isNull {
			return value.Null(), err
		}
		if args[0].Kind() == value.KindInt {
			i := args[0].IntVal()
			if i < 0 {
				i = -i
			}
			return value.Int(i), nil
		}
		return value.Float(math.Abs(f)), nil
	})
	r.Register("ROUND", func(args []value.Value) (value.Value, error) {
		if err := arityRange("ROUND", args, 1, 2); err != nil {
			return value.Null(), err
		}
		f, isNull, err := numArg("ROUND", args[0])
		if err != nil || isNull {
			return value.Null(), err
		}
		digits := 0
		if len(args) == 2 {
			d, dNull, err := numArg("ROUND", args[1])
			if err != nil {
				return value.Null(), err
			}
			if !dNull {
				digits = int(d)
			}
		}
		scale := math.Pow(10, float64(digits))
		return value.Float(math.Round(f*scale) / scale), nil
	})
	r.Register("FLOOR", oneNum("FLOOR", math.Floor))
	r.Register("CEIL", oneNum("CEIL", math.Ceil))
	r.Register("CEILING", oneNum("CEILING", math.Ceil))
	r.Register("SQRT", func(args []value.Value) (value.Value, error) {
		if err := arity("SQRT", args, 1); err != nil {
			return value.Null(), err
		}
		f, isNull, err := numArg("SQRT", args[0])
		if err != nil || isNull {
			return value.Null(), err
		}
		if f < 0 {
			return value.Null(), fmt.Errorf("SQRT of negative value %g", f)
		}
		return value.Float(math.Sqrt(f)), nil
	})
	r.Register("EXP", oneNum("EXP", math.Exp))
	r.Register("LN", func(args []value.Value) (value.Value, error) {
		if err := arity("LN", args, 1); err != nil {
			return value.Null(), err
		}
		f, isNull, err := numArg("LN", args[0])
		if err != nil || isNull {
			return value.Null(), err
		}
		if f <= 0 {
			return value.Null(), fmt.Errorf("LN of non-positive value %g", f)
		}
		return value.Float(math.Log(f)), nil
	})
	pow := func(args []value.Value) (value.Value, error) {
		if err := arity("POWER", args, 2); err != nil {
			return value.Null(), err
		}
		a, aNull, err := numArg("POWER", args[0])
		if err != nil {
			return value.Null(), err
		}
		b, bNull, err := numArg("POWER", args[1])
		if err != nil {
			return value.Null(), err
		}
		if aNull || bNull {
			return value.Null(), nil
		}
		return value.Float(math.Pow(a, b)), nil
	}
	r.Register("POWER", pow)
	r.Register("POW", pow)

	// --- strings ---
	r.Register("LOWER", oneStr("LOWER", strings.ToLower))
	r.Register("UPPER", oneStr("UPPER", strings.ToUpper))
	r.Register("TRIM", oneStr("TRIM", strings.TrimSpace))
	r.Register("LTRIM", oneStr("LTRIM", func(s string) string { return strings.TrimLeft(s, " \t") }))
	r.Register("RTRIM", oneStr("RTRIM", func(s string) string { return strings.TrimRight(s, " \t") }))
	r.Register("LENGTH", func(args []value.Value) (value.Value, error) {
		if err := arity("LENGTH", args, 1); err != nil {
			return value.Null(), err
		}
		if args[0].IsNull() {
			return value.Null(), nil
		}
		return value.Int(int64(len([]rune(args[0].String())))), nil
	})
	r.Register("SUBSTR", func(args []value.Value) (value.Value, error) {
		if err := arityRange("SUBSTR", args, 2, 3); err != nil {
			return value.Null(), err
		}
		if args[0].IsNull() || args[1].IsNull() {
			return value.Null(), nil
		}
		runes := []rune(args[0].String())
		start, ok := args[1].AsInt()
		if !ok {
			return value.Null(), fmt.Errorf("SUBSTR: start %q is not an integer", args[1].String())
		}
		// SQL is 1-based.
		idx := int(start) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(runes) {
			return value.String(""), nil
		}
		end := len(runes)
		if len(args) == 3 && !args[2].IsNull() {
			n, ok := args[2].AsInt()
			if !ok {
				return value.Null(), fmt.Errorf("SUBSTR: length %q is not an integer", args[2].String())
			}
			if int(n) < 0 {
				n = 0
			}
			if idx+int(n) < end {
				end = idx + int(n)
			}
		}
		return value.String(string(runes[idx:end])), nil
	})
	r.Register("REPLACE", func(args []value.Value) (value.Value, error) {
		if err := arity("REPLACE", args, 3); err != nil {
			return value.Null(), err
		}
		if args[0].IsNull() {
			return value.Null(), nil
		}
		return value.String(strings.ReplaceAll(args[0].String(), args[1].String(), args[2].String())), nil
	})
	r.Register("CONCAT", func(args []value.Value) (value.Value, error) {
		var b strings.Builder
		for _, a := range args {
			if !a.IsNull() {
				b.WriteString(a.String())
			}
		}
		return value.String(b.String()), nil
	})
	r.Register("CONTAINS", func(args []value.Value) (value.Value, error) {
		if err := arity("CONTAINS", args, 2); err != nil {
			return value.Null(), err
		}
		if args[0].IsNull() || args[1].IsNull() {
			return value.Null(), nil
		}
		return value.Bool(strings.Contains(
			strings.ToLower(args[0].String()), strings.ToLower(args[1].String()))), nil
	})

	// --- null handling / conditionals ---
	r.Register("COALESCE", func(args []value.Value) (value.Value, error) {
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return value.Null(), nil
	})
	r.Register("NULLIF", func(args []value.Value) (value.Value, error) {
		if err := arity("NULLIF", args, 2); err != nil {
			return value.Null(), err
		}
		if !args[0].IsNull() && !args[1].IsNull() && value.Equal(args[0], args[1]) {
			return value.Null(), nil
		}
		return args[0], nil
	})
	r.Register("IFNULL", func(args []value.Value) (value.Value, error) {
		if err := arity("IFNULL", args, 2); err != nil {
			return value.Null(), err
		}
		if args[0].IsNull() {
			return args[1], nil
		}
		return args[0], nil
	})
	iif := func(args []value.Value) (value.Value, error) {
		if err := arity("IIF", args, 3); err != nil {
			return value.Null(), err
		}
		if triOf(args[0]) == triTrue {
			return args[1], nil
		}
		return args[2], nil
	}
	r.Register("IIF", iif)
	r.Register("IF", iif)
	r.Register("GREATEST", func(args []value.Value) (value.Value, error) {
		return extremum(args, +1)
	})
	r.Register("LEAST", func(args []value.Value) (value.Value, error) {
		return extremum(args, -1)
	})

	// --- temporal ---
	r.Register("YEAR", datePart("YEAR"))
	r.Register("MONTH", datePart("MONTH"))
	r.Register("DAY", datePart("DAY"))
	r.Register("DATE_PART", func(args []value.Value) (value.Value, error) {
		if err := arity("DATE_PART", args, 2); err != nil {
			return value.Null(), err
		}
		part := strings.ToUpper(args[0].String())
		return datePart(part)(args[1:])
	})
	r.Register("PARSE_DATE", func(args []value.Value) (value.Value, error) {
		if err := arity("PARSE_DATE", args, 1); err != nil {
			return value.Null(), err
		}
		if args[0].IsNull() {
			return value.Null(), nil
		}
		t, ok := args[0].AsTime()
		if !ok {
			return value.Null(), fmt.Errorf("PARSE_DATE: cannot parse %q as a date", args[0].String())
		}
		return value.Time(t), nil
	})
	r.Register("EPOCH", func(args []value.Value) (value.Value, error) {
		if err := arity("EPOCH", args, 1); err != nil {
			return value.Null(), err
		}
		if args[0].IsNull() {
			return value.Null(), nil
		}
		t, ok := args[0].AsTime()
		if !ok {
			return value.Null(), fmt.Errorf("EPOCH: %q is not a timestamp", args[0].String())
		}
		return value.Int(t.Unix()), nil
	})
	r.Register("TYPEOF", func(args []value.Value) (value.Value, error) {
		if err := arity("TYPEOF", args, 1); err != nil {
			return value.Null(), err
		}
		return value.String(args[0].Kind().String()), nil
	})
}

func oneNum(name string, fn func(float64) float64) ScalarFunc {
	return func(args []value.Value) (value.Value, error) {
		if err := arity(name, args, 1); err != nil {
			return value.Null(), err
		}
		f, isNull, err := numArg(name, args[0])
		if err != nil || isNull {
			return value.Null(), err
		}
		return value.Float(fn(f)), nil
	}
}

func oneStr(name string, fn func(string) string) ScalarFunc {
	return func(args []value.Value) (value.Value, error) {
		if err := arity(name, args, 1); err != nil {
			return value.Null(), err
		}
		if args[0].IsNull() {
			return value.Null(), nil
		}
		return value.String(fn(args[0].String())), nil
	}
}

func extremum(args []value.Value, dir int) (value.Value, error) {
	if len(args) == 0 {
		return value.Null(), fmt.Errorf("GREATEST/LEAST needs at least one argument")
	}
	best := value.Null()
	for _, a := range args {
		if a.IsNull() {
			continue
		}
		if best.IsNull() || value.Compare(a, best)*dir > 0 {
			best = a
		}
	}
	return best, nil
}

func datePart(part string) ScalarFunc {
	return func(args []value.Value) (value.Value, error) {
		if len(args) != 1 {
			return value.Null(), fmt.Errorf("%s expects 1 argument, got %d", part, len(args))
		}
		if args[0].IsNull() {
			return value.Null(), nil
		}
		t, ok := args[0].AsTime()
		if !ok {
			return value.Null(), fmt.Errorf("%s: %q is not a timestamp (consider PARSE_DATE first)", part, args[0].String())
		}
		switch part {
		case "YEAR":
			return value.Int(int64(t.Year())), nil
		case "MONTH":
			return value.Int(int64(t.Month())), nil
		case "DAY":
			return value.Int(int64(t.Day())), nil
		case "HOUR":
			return value.Int(int64(t.Hour())), nil
		case "MINUTE":
			return value.Int(int64(t.Minute())), nil
		default:
			return value.Null(), fmt.Errorf("unknown date part %q", part)
		}
	}
}
