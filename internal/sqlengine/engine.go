package sqlengine

import (
	"sort"
	"strings"
	"sync"

	"pneuma/internal/table"
)

// Engine is the SQL executor facade: a catalog of in-memory tables plus a
// scalar-function registry. It is the project's stand-in for DuckDB inside
// the Materializer's toolkit. Safe for concurrent use.
type Engine struct {
	mu     sync.RWMutex
	tables map[string]*table.Table // keyed by lower-case name
	funcs  *FuncRegistry
}

// NewEngine creates an engine with an empty catalog and the default
// function registry.
func NewEngine() *Engine {
	return &Engine{
		tables: make(map[string]*table.Table),
		funcs:  NewFuncRegistry(),
	}
}

// Funcs exposes the engine's scalar function registry for extension
// (new operators "naturally slot into the action space", §3.5).
func (e *Engine) Funcs() *FuncRegistry { return e.funcs }

// Register adds (or replaces) a table in the catalog under its schema name.
func (e *Engine) Register(t *table.Table) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.tables[strings.ToLower(t.Schema.Name)] = t
}

// RegisterAs adds the table under an explicit name.
func (e *Engine) RegisterAs(name string, t *table.Table) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.tables[strings.ToLower(name)] = t
}

// Drop removes a table; returns whether it existed.
func (e *Engine) Drop(name string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	key := strings.ToLower(name)
	_, ok := e.tables[key]
	delete(e.tables, key)
	return ok
}

// Table looks up a table by name (case-insensitive).
func (e *Engine) Table(name string) (*table.Table, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tables[strings.ToLower(name)]
	return t, ok
}

// Names returns the sorted catalog table names.
func (e *Engine) Names() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.tables))
	for n := range e.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (e *Engine) namesHint() string {
	names := e.Names()
	if len(names) == 0 {
		return "(catalog is empty)"
	}
	if len(names) > 20 {
		names = append(names[:20], "...")
	}
	return strings.Join(names, ", ")
}

// Query parses and executes one SELECT statement, returning the result as a
// new table named "result".
func (e *Engine) Query(sql string) (*table.Table, error) {
	sel, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return e.Exec(sel)
}

// Exec executes an already-parsed statement.
func (e *Engine) Exec(sel *Select) (*table.Table, error) {
	ex := &executor{engine: e}
	return ex.execSelect(sel)
}
