package sqlengine

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"pneuma/internal/value"
)

// aggregateNames is the set of supported aggregate functions. FIRST/LAST
// take the first/last non-null value in input order, which is meaningful
// after an ordered subquery — the temporal "first and last recorded"
// benchmark questions rely on them.
var aggregateNames = map[string]struct{}{
	"COUNT": {}, "SUM": {}, "AVG": {}, "MIN": {}, "MAX": {},
	"MEDIAN": {}, "STDDEV": {}, "VARIANCE": {}, "FIRST": {}, "LAST": {},
}

// isAggregate reports whether name (upper-case) is an aggregate function.
func isAggregate(name string) bool {
	_, ok := aggregateNames[name]
	return ok
}

// accumulator consumes values for one group and produces the aggregate.
type accumulator interface {
	add(v value.Value) error
	result() value.Value
}

// newAccumulator builds an accumulator for the call. The distinct flag
// wraps the base accumulator with deduplication.
func newAccumulator(fc *FuncCall) (accumulator, error) {
	var base accumulator
	switch fc.Name {
	case "COUNT":
		base = &countAcc{star: fc.Star}
	case "SUM":
		base = &sumAcc{}
	case "AVG":
		base = &avgAcc{}
	case "MIN":
		base = &minMaxAcc{dir: -1}
	case "MAX":
		base = &minMaxAcc{dir: +1}
	case "MEDIAN":
		base = &medianAcc{}
	case "STDDEV":
		base = &varAcc{stddev: true}
	case "VARIANCE":
		base = &varAcc{}
	case "FIRST":
		base = &firstLastAcc{first: true}
	case "LAST":
		base = &firstLastAcc{}
	default:
		return nil, fmt.Errorf("unknown aggregate %s", fc.Name)
	}
	if fc.Distinct {
		return &distinctAcc{inner: base, seen: make(map[string]struct{})}, nil
	}
	return base, nil
}

type countAcc struct {
	star bool
	n    int64
}

func (a *countAcc) add(v value.Value) error {
	if a.star || !v.IsNull() {
		a.n++
	}
	return nil
}
func (a *countAcc) result() value.Value { return value.Int(a.n) }

type sumAcc struct {
	sum     float64
	sumInt  int64
	allInt  bool
	started bool
}

func (a *sumAcc) add(v value.Value) error {
	if v.IsNull() {
		return nil
	}
	f, ok := v.AsFloat()
	if !ok {
		return fmt.Errorf("SUM: value %q is not numeric", v.String())
	}
	if !a.started {
		a.started = true
		a.allInt = true
	}
	if v.Kind() != value.KindInt {
		a.allInt = false
	}
	a.sum += f
	a.sumInt += v.IntVal()
	return nil
}

func (a *sumAcc) result() value.Value {
	if !a.started {
		return value.Null()
	}
	if a.allInt {
		return value.Int(a.sumInt)
	}
	return value.Float(a.sum)
}

type avgAcc struct {
	sum float64
	n   int64
}

func (a *avgAcc) add(v value.Value) error {
	if v.IsNull() {
		return nil
	}
	f, ok := v.AsFloat()
	if !ok {
		return fmt.Errorf("AVG: value %q is not numeric", v.String())
	}
	a.sum += f
	a.n++
	return nil
}

func (a *avgAcc) result() value.Value {
	if a.n == 0 {
		return value.Null()
	}
	return value.Float(a.sum / float64(a.n))
}

type minMaxAcc struct {
	dir  int
	best value.Value
}

func (a *minMaxAcc) add(v value.Value) error {
	if v.IsNull() {
		return nil
	}
	if a.best.IsNull() || value.Compare(v, a.best)*a.dir > 0 {
		a.best = v
	}
	return nil
}
func (a *minMaxAcc) result() value.Value { return a.best }

type medianAcc struct {
	vals []float64
}

func (a *medianAcc) add(v value.Value) error {
	if v.IsNull() {
		return nil
	}
	f, ok := v.AsFloat()
	if !ok {
		return fmt.Errorf("MEDIAN: value %q is not numeric", v.String())
	}
	a.vals = append(a.vals, f)
	return nil
}

func (a *medianAcc) result() value.Value {
	n := len(a.vals)
	if n == 0 {
		return value.Null()
	}
	sort.Float64s(a.vals)
	if n%2 == 1 {
		return value.Float(a.vals[n/2])
	}
	return value.Float((a.vals[n/2-1] + a.vals[n/2]) / 2)
}

// varAcc implements Welford's online algorithm for sample variance.
type varAcc struct {
	stddev bool
	n      int64
	mean   float64
	m2     float64
}

func (a *varAcc) add(v value.Value) error {
	if v.IsNull() {
		return nil
	}
	f, ok := v.AsFloat()
	if !ok {
		return fmt.Errorf("STDDEV/VARIANCE: value %q is not numeric", v.String())
	}
	a.n++
	d := f - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (f - a.mean)
	return nil
}

func (a *varAcc) result() value.Value {
	if a.n < 2 {
		return value.Null()
	}
	variance := a.m2 / float64(a.n-1)
	if a.stddev {
		return value.Float(math.Sqrt(variance))
	}
	return value.Float(variance)
}

type firstLastAcc struct {
	first bool
	val   value.Value
	set   bool
}

func (a *firstLastAcc) add(v value.Value) error {
	if v.IsNull() {
		return nil
	}
	if a.first {
		if !a.set {
			a.val = v
			a.set = true
		}
		return nil
	}
	a.val = v
	a.set = true
	return nil
}

func (a *firstLastAcc) result() value.Value {
	if !a.set {
		return value.Null()
	}
	return a.val
}

// distinctAcc deduplicates values (by rendered string, kind-tagged) before
// feeding the inner accumulator.
type distinctAcc struct {
	inner accumulator
	seen  map[string]struct{}
}

func (a *distinctAcc) add(v value.Value) error {
	if v.IsNull() {
		return nil
	}
	key := v.Kind().String() + "\x00" + v.String()
	if _, dup := a.seen[key]; dup {
		return nil
	}
	a.seen[key] = struct{}{}
	return a.inner.add(v)
}

func (a *distinctAcc) result() value.Value { return a.inner.result() }

// groupKey renders a slice of values into a hashable composite key.
func groupKey(vals []value.Value) string {
	var b strings.Builder
	for _, v := range vals {
		b.WriteString(v.Kind().String())
		b.WriteByte(':')
		b.WriteString(v.String())
		b.WriteByte('\x1f')
	}
	return b.String()
}
