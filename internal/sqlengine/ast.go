package sqlengine

import (
	"strings"

	"pneuma/internal/value"
)

// Expr is a SQL expression AST node.
type Expr interface {
	// String renders the expression back to SQL-ish text for error messages
	// and for the state view.
	String() string
}

// Literal is a constant value.
type Literal struct{ Val value.Value }

func (l *Literal) String() string {
	if l.Val.Kind() == value.KindString {
		return "'" + strings.ReplaceAll(l.Val.StringVal(), "'", "''") + "'"
	}
	if l.Val.IsNull() {
		return "NULL"
	}
	return l.Val.String()
}

// ColumnRef references a column, optionally qualified by a table alias.
type ColumnRef struct {
	Table  string // optional qualifier
	Column string
}

func (c *ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// Star is the bare `*` or `alias.*` in a select list.
type Star struct{ Table string }

func (s *Star) String() string {
	if s.Table != "" {
		return s.Table + ".*"
	}
	return "*"
}

// Unary is NOT x or -x.
type Unary struct {
	Op   string // "NOT" or "-"
	Expr Expr
}

func (u *Unary) String() string {
	if u.Op == "NOT" {
		return "NOT " + u.Expr.String()
	}
	return u.Op + u.Expr.String()
}

// Binary is a binary operator application.
type Binary struct {
	Op          string // + - * / % || = <> < <= > >= AND OR LIKE
	Left, Right Expr
}

func (b *Binary) String() string {
	return "(" + b.Left.String() + " " + b.Op + " " + b.Right.String() + ")"
}

// Between is x BETWEEN lo AND hi (negated when Not).
type Between struct {
	Expr, Lo, Hi Expr
	Not          bool
}

func (b *Between) String() string {
	op := " BETWEEN "
	if b.Not {
		op = " NOT BETWEEN "
	}
	return "(" + b.Expr.String() + op + b.Lo.String() + " AND " + b.Hi.String() + ")"
}

// InList is x IN (e1, e2, ...) (negated when Not).
type InList struct {
	Expr  Expr
	Items []Expr
	Not   bool
}

func (i *InList) String() string {
	var b strings.Builder
	b.WriteString(i.Expr.String())
	if i.Not {
		b.WriteString(" NOT")
	}
	b.WriteString(" IN (")
	for j, it := range i.Items {
		if j > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.String())
	}
	b.WriteString(")")
	return b.String()
}

// IsNull is x IS [NOT] NULL.
type IsNull struct {
	Expr Expr
	Not  bool
}

func (i *IsNull) String() string {
	if i.Not {
		return i.Expr.String() + " IS NOT NULL"
	}
	return i.Expr.String() + " IS NULL"
}

// FuncCall is a scalar or aggregate function application.
type FuncCall struct {
	Name     string // upper-cased
	Args     []Expr
	Star     bool // COUNT(*)
	Distinct bool // COUNT(DISTINCT x), SUM(DISTINCT x), ...
}

func (f *FuncCall) String() string {
	var b strings.Builder
	b.WriteString(f.Name)
	b.WriteByte('(')
	if f.Star {
		b.WriteByte('*')
	} else {
		if f.Distinct {
			b.WriteString("DISTINCT ")
		}
		for i, a := range f.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.String())
		}
	}
	b.WriteByte(')')
	return b.String()
}

// CaseExpr is CASE [operand] WHEN ... THEN ... [ELSE ...] END.
type CaseExpr struct {
	Operand Expr // nil for searched CASE
	Whens   []WhenClause
	Else    Expr // nil → NULL
}

// WhenClause is one WHEN cond THEN result arm.
type WhenClause struct {
	Cond   Expr
	Result Expr
}

func (c *CaseExpr) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	if c.Operand != nil {
		b.WriteByte(' ')
		b.WriteString(c.Operand.String())
	}
	for _, w := range c.Whens {
		b.WriteString(" WHEN ")
		b.WriteString(w.Cond.String())
		b.WriteString(" THEN ")
		b.WriteString(w.Result.String())
	}
	if c.Else != nil {
		b.WriteString(" ELSE ")
		b.WriteString(c.Else.String())
	}
	b.WriteString(" END")
	return b.String()
}

// CastExpr is CAST(x AS type).
type CastExpr struct {
	Expr Expr
	Type value.Kind
}

func (c *CastExpr) String() string {
	return "CAST(" + c.Expr.String() + " AS " + strings.ToUpper(c.Type.String()) + ")"
}

// SelectItem is one select-list entry.
type SelectItem struct {
	Expr  Expr
	Alias string // optional
}

// OrderItem is one ORDER BY entry.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// JoinKind enumerates join types.
type JoinKind int

// Join kinds.
const (
	JoinInner JoinKind = iota
	JoinLeft
	JoinCross
)

func (k JoinKind) String() string {
	switch k {
	case JoinInner:
		return "INNER JOIN"
	case JoinLeft:
		return "LEFT JOIN"
	case JoinCross:
		return "CROSS JOIN"
	default:
		return "JOIN"
	}
}

// TableRef is a FROM-clause item: a named table or a subquery, with an
// optional alias and zero or more joins hanging off it.
type TableRef struct {
	Name  string  // table name when Sub == nil
	Sub   *Select // subquery
	Alias string
	Joins []JoinClause
}

// JoinClause is one JOIN ... ON ... attached to a TableRef.
type JoinClause struct {
	Kind  JoinKind
	Right *TableRef
	On    Expr     // nil for CROSS JOIN
	Using []string // USING(col, ...) alternative to ON
}

// Select is a full SELECT statement (possibly with UNION ALL arms).
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     *TableRef // nil allows SELECT 1+1
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 = none
	Offset   int // 0 = none
	// Union chains additional SELECTs combined with UNION ALL.
	Union []*Select
}

// String reconstructs an approximate SQL text (used in state views and
// error messages; not guaranteed byte-identical to the input).
func (s *Select) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.Expr.String())
		if it.Alias != "" {
			b.WriteString(" AS ")
			b.WriteString(it.Alias)
		}
	}
	if s.From != nil {
		b.WriteString(" FROM ")
		writeTableRef(&b, s.From)
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING ")
		b.WriteString(s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Expr.String())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		b.WriteString(" LIMIT ")
		b.WriteString(itoa(s.Limit))
		if s.Offset > 0 {
			b.WriteString(" OFFSET ")
			b.WriteString(itoa(s.Offset))
		}
	}
	for _, u := range s.Union {
		b.WriteString(" UNION ALL ")
		b.WriteString(u.String())
	}
	return b.String()
}

func writeTableRef(b *strings.Builder, t *TableRef) {
	if t.Sub != nil {
		b.WriteByte('(')
		b.WriteString(t.Sub.String())
		b.WriteByte(')')
	} else {
		b.WriteString(t.Name)
	}
	if t.Alias != "" {
		b.WriteString(" AS ")
		b.WriteString(t.Alias)
	}
	for _, j := range t.Joins {
		b.WriteByte(' ')
		b.WriteString(j.Kind.String())
		b.WriteByte(' ')
		writeTableRef(b, j.Right)
		if len(j.Using) > 0 {
			b.WriteString(" USING (")
			b.WriteString(strings.Join(j.Using, ", "))
			b.WriteByte(')')
		} else if j.On != nil {
			b.WriteString(" ON ")
			b.WriteString(j.On.String())
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
