package sqlengine

import (
	"fmt"
	"sort"
	"strings"

	"pneuma/internal/table"
	"pneuma/internal/value"
)

// executor runs a parsed Select against an Engine's catalog.
type executor struct {
	engine *Engine
}

// relation is an intermediate result: a frame plus rows.
type relation struct {
	frame *frame
	rows  [][]value.Value
}

func (ex *executor) execSelect(sel *Select) (*table.Table, error) {
	out, err := ex.execSingle(sel)
	if err != nil {
		return nil, err
	}
	for _, arm := range sel.Union {
		armOut, err := ex.execSingle(arm)
		if err != nil {
			return nil, err
		}
		if armOut.NumCols() != out.NumCols() {
			return nil, &EvalError{Msg: fmt.Sprintf(
				"UNION ALL arms have different column counts: %d vs %d",
				out.NumCols(), armOut.NumCols())}
		}
		for i := range out.Schema.Columns {
			out.Schema.Columns[i].Type = value.UnifyKinds(
				out.Schema.Columns[i].Type, armOut.Schema.Columns[i].Type)
		}
		out.Rows = append(out.Rows, armOut.Rows...)
	}
	return out, nil
}

// execSingle executes one SELECT without its union arms.
func (ex *executor) execSingle(sel *Select) (*table.Table, error) {
	var rel relation
	if sel.From != nil {
		r, err := ex.execFrom(sel.From)
		if err != nil {
			return nil, err
		}
		rel = r
	} else {
		// FROM-less SELECT evaluates over a single empty row.
		rel = relation{frame: &frame{}, rows: [][]value.Value{{}}}
	}

	// WHERE.
	if sel.Where != nil {
		filtered := rel.rows[:0:0]
		for _, row := range rel.rows {
			en := &env{frame: rel.frame, row: row, funcs: ex.engine.funcs}
			v, err := en.eval(sel.Where)
			if err != nil {
				return nil, err
			}
			if triOf(v) == triTrue {
				filtered = append(filtered, row)
			}
		}
		rel.rows = filtered
	}

	// Expand stars in the select list against the input frame.
	items, err := expandStars(sel.Items, rel.frame)
	if err != nil {
		return nil, err
	}

	// Rewrite ORDER BY aliases/ordinals to the underlying expressions.
	orderBy, err := rewriteOrderBy(sel.OrderBy, items)
	if err != nil {
		return nil, err
	}

	// Detect grouping.
	var aggCalls []*FuncCall
	for _, it := range items {
		if err := collectAggregates(it.Expr, &aggCalls); err != nil {
			return nil, err
		}
	}
	if sel.Having != nil {
		if err := collectAggregates(sel.Having, &aggCalls); err != nil {
			return nil, err
		}
	}
	for _, o := range orderBy {
		if err := collectAggregates(o.Expr, &aggCalls); err != nil {
			return nil, err
		}
	}
	grouped := len(sel.GroupBy) > 0 || len(aggCalls) > 0

	var outNames []string
	var outRows [][]value.Value
	if grouped {
		outNames, outRows, err = ex.execGrouped(sel, items, orderBy, rel, aggCalls)
	} else {
		outNames, outRows, err = ex.execPlain(sel, items, orderBy, rel)
	}
	if err != nil {
		return nil, err
	}

	// DISTINCT.
	if sel.Distinct {
		seen := make(map[string]struct{}, len(outRows))
		dedup := outRows[:0:0]
		for _, row := range outRows {
			k := groupKey(row)
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			dedup = append(dedup, row)
		}
		outRows = dedup
	}

	// LIMIT / OFFSET.
	if sel.Offset > 0 {
		if sel.Offset >= len(outRows) {
			outRows = nil
		} else {
			outRows = outRows[sel.Offset:]
		}
	}
	if sel.Limit >= 0 && sel.Limit < len(outRows) {
		outRows = outRows[:sel.Limit]
	}

	// Build the output table, inferring column types from the data.
	schema := table.Schema{Name: "result"}
	kinds := make([]value.Kind, len(outNames))
	for _, row := range outRows {
		for i, v := range row {
			kinds[i] = value.UnifyKinds(kinds[i], v.Kind())
		}
	}
	for i, name := range outNames {
		k := kinds[i]
		if k == value.KindNull {
			k = value.KindString
		}
		schema.Columns = append(schema.Columns, table.Column{Name: name, Type: k})
	}
	out := table.New(schema)
	for _, row := range outRows {
		out.Rows = append(out.Rows, table.Row(row))
	}
	return out, nil
}

// execPlain handles non-grouped selection: projection plus ORDER BY
// evaluated against the input rows.
func (ex *executor) execPlain(sel *Select, items []SelectItem, orderBy []OrderItem, rel relation) ([]string, [][]value.Value, error) {
	type sortable struct {
		out  []value.Value
		keys []value.Value
	}
	rows := make([]sortable, 0, len(rel.rows))
	for _, in := range rel.rows {
		en := &env{frame: rel.frame, row: in, funcs: ex.engine.funcs}
		out := make([]value.Value, len(items))
		for i, it := range items {
			v, err := en.eval(it.Expr)
			if err != nil {
				return nil, nil, err
			}
			out[i] = v
		}
		var keys []value.Value
		for _, o := range orderBy {
			v, err := en.eval(o.Expr)
			if err != nil {
				return nil, nil, err
			}
			keys = append(keys, v)
		}
		rows = append(rows, sortable{out: out, keys: keys})
	}
	if len(orderBy) > 0 {
		sort.SliceStable(rows, func(a, b int) bool {
			return lessKeys(rows[a].keys, rows[b].keys, orderBy)
		})
	}
	outRows := make([][]value.Value, len(rows))
	for i, r := range rows {
		outRows[i] = r.out
	}
	return outputNames(items), outRows, nil
}

// group accumulates one GROUP BY bucket.
type group struct {
	rep  []value.Value // representative (first) input row
	accs map[string]accumulator
}

// execGrouped handles GROUP BY / aggregate selection.
func (ex *executor) execGrouped(sel *Select, items []SelectItem, orderBy []OrderItem, rel relation, aggCalls []*FuncCall) ([]string, [][]value.Value, error) {
	// Deduplicate aggregate calls by canonical string.
	uniqueAggs := make(map[string]*FuncCall)
	for _, fc := range aggCalls {
		uniqueAggs[fc.String()] = fc
	}

	groups := make(map[string]*group)
	var order []string // group insertion order for determinism
	for _, in := range rel.rows {
		en := &env{frame: rel.frame, row: in, funcs: ex.engine.funcs}
		keyVals := make([]value.Value, len(sel.GroupBy))
		for i, g := range sel.GroupBy {
			v, err := en.eval(g)
			if err != nil {
				return nil, nil, err
			}
			keyVals[i] = v
		}
		k := groupKey(keyVals)
		grp, ok := groups[k]
		if !ok {
			grp = &group{rep: in, accs: make(map[string]accumulator, len(uniqueAggs))}
			for s, fc := range uniqueAggs {
				acc, err := newAccumulator(fc)
				if err != nil {
					return nil, nil, evalErrf(fc, "%s", err.Error())
				}
				grp.accs[s] = acc
			}
			groups[k] = grp
			order = append(order, k)
		}
		for s, fc := range uniqueAggs {
			var arg value.Value
			switch {
			case fc.Star:
				arg = value.Bool(true) // COUNT(*) counts rows
			case len(fc.Args) == 1:
				v, err := en.eval(fc.Args[0])
				if err != nil {
					return nil, nil, err
				}
				arg = v
			default:
				return nil, nil, evalErrf(fc, "aggregate %s expects exactly 1 argument, got %d", fc.Name, len(fc.Args))
			}
			if err := grp.accs[s].add(arg); err != nil {
				return nil, nil, evalErrf(fc, "%s", err.Error())
			}
		}
	}

	// A global aggregate over zero rows still yields one group.
	if len(groups) == 0 && len(sel.GroupBy) == 0 {
		grp := &group{rep: make([]value.Value, len(rel.frame.cols)), accs: make(map[string]accumulator, len(uniqueAggs))}
		for i := range grp.rep {
			grp.rep[i] = value.Null()
		}
		for s, fc := range uniqueAggs {
			acc, err := newAccumulator(fc)
			if err != nil {
				return nil, nil, evalErrf(fc, "%s", err.Error())
			}
			grp.accs[s] = acc
		}
		groups[""] = grp
		order = append(order, "")
	}

	type sortable struct {
		out  []value.Value
		keys []value.Value
	}
	var rows []sortable
	for _, k := range order {
		grp := groups[k]
		aggVals := make(map[string]value.Value, len(grp.accs))
		for s, acc := range grp.accs {
			aggVals[s] = acc.result()
		}
		en := &env{frame: rel.frame, row: grp.rep, aggs: aggVals, funcs: ex.engine.funcs}
		if sel.Having != nil {
			hv, err := en.eval(sel.Having)
			if err != nil {
				return nil, nil, err
			}
			if triOf(hv) != triTrue {
				continue
			}
		}
		out := make([]value.Value, len(items))
		for i, it := range items {
			v, err := en.eval(it.Expr)
			if err != nil {
				return nil, nil, err
			}
			out[i] = v
		}
		var keys []value.Value
		for _, o := range orderBy {
			v, err := en.eval(o.Expr)
			if err != nil {
				return nil, nil, err
			}
			keys = append(keys, v)
		}
		rows = append(rows, sortable{out: out, keys: keys})
	}
	if len(orderBy) > 0 {
		sort.SliceStable(rows, func(a, b int) bool {
			return lessKeys(rows[a].keys, rows[b].keys, orderBy)
		})
	}
	outRows := make([][]value.Value, len(rows))
	for i, r := range rows {
		outRows[i] = r.out
	}
	return outputNames(items), outRows, nil
}

func lessKeys(a, b []value.Value, order []OrderItem) bool {
	for i, o := range order {
		c := value.Compare(a[i], b[i])
		if c != 0 {
			if o.Desc {
				return c > 0
			}
			return c < 0
		}
	}
	return false
}

// outputNames derives the output column name of each select item.
func outputNames(items []SelectItem) []string {
	names := make([]string, len(items))
	for i, it := range items {
		switch {
		case it.Alias != "":
			names[i] = it.Alias
		default:
			if cr, ok := it.Expr.(*ColumnRef); ok {
				names[i] = cr.Column
			} else {
				names[i] = it.Expr.String()
			}
		}
	}
	return names
}

// expandStars replaces * and alias.* with explicit column references.
func expandStars(items []SelectItem, f *frame) ([]SelectItem, error) {
	out := make([]SelectItem, 0, len(items))
	for _, it := range items {
		st, ok := it.Expr.(*Star)
		if !ok {
			out = append(out, it)
			continue
		}
		qual := strings.ToLower(st.Table)
		matched := false
		for _, c := range f.cols {
			if qual != "" && c.qual != qual {
				continue
			}
			matched = true
			out = append(out, SelectItem{Expr: &ColumnRef{Table: c.qual, Column: c.name}, Alias: c.name})
		}
		if !matched {
			if qual != "" {
				return nil, &EvalError{Expr: st.String(), Msg: fmt.Sprintf("unknown table alias %q", st.Table)}
			}
			return nil, &EvalError{Expr: "*", Msg: "SELECT * with no input columns"}
		}
	}
	return out, nil
}

// rewriteOrderBy resolves ORDER BY aliases and ordinals against the select
// list: `ORDER BY total` where total is an output alias, and `ORDER BY 2`.
func rewriteOrderBy(orderBy []OrderItem, items []SelectItem) ([]OrderItem, error) {
	out := make([]OrderItem, len(orderBy))
	for i, o := range orderBy {
		out[i] = o
		if lit, ok := o.Expr.(*Literal); ok && lit.Val.Kind() == value.KindInt {
			n := int(lit.Val.IntVal())
			if n < 1 || n > len(items) {
				return nil, &EvalError{Msg: fmt.Sprintf("ORDER BY position %d is out of range (select list has %d items)", n, len(items))}
			}
			out[i].Expr = items[n-1].Expr
			continue
		}
		if cr, ok := o.Expr.(*ColumnRef); ok && cr.Table == "" {
			for _, it := range items {
				if it.Alias != "" && strings.EqualFold(it.Alias, cr.Column) {
					out[i].Expr = it.Expr
					break
				}
			}
		}
	}
	return out, nil
}

// execFrom evaluates a FROM clause item with its chained joins.
func (ex *executor) execFrom(ref *TableRef) (relation, error) {
	left, err := ex.execPrimary(ref)
	if err != nil {
		return relation{}, err
	}
	for _, jc := range ref.Joins {
		right, err := ex.execPrimary(jc.Right)
		if err != nil {
			return relation{}, err
		}
		left, err = ex.execJoin(left, right, jc)
		if err != nil {
			return relation{}, err
		}
	}
	return left, nil
}

// execPrimary evaluates a base table or subquery, applying its alias.
func (ex *executor) execPrimary(ref *TableRef) (relation, error) {
	var t *table.Table
	if ref.Sub != nil {
		sub, err := ex.execSelect(ref.Sub)
		if err != nil {
			return relation{}, err
		}
		t = sub
	} else {
		var ok bool
		t, ok = ex.engine.Table(ref.Name)
		if !ok {
			return relation{}, &EvalError{Expr: ref.Name, Msg: fmt.Sprintf(
				"table %q does not exist; known tables: %s", ref.Name, ex.engine.namesHint())}
		}
	}
	qual := ref.Alias
	if qual == "" {
		qual = ref.Name
	}
	qual = strings.ToLower(qual)
	f := &frame{}
	for _, c := range t.Schema.Columns {
		f.cols = append(f.cols, execCol{qual: qual, name: c.Name})
	}
	rows := make([][]value.Value, len(t.Rows))
	for i, r := range t.Rows {
		rows[i] = r
	}
	return relation{frame: f, rows: rows}, nil
}

// execJoin joins two relations. Equi-join conjuncts are executed as a hash
// join; remaining predicates run as a post-filter. CROSS JOIN and
// non-equi-joins fall back to nested loops.
func (ex *executor) execJoin(left, right relation, jc JoinClause) (relation, error) {
	combined := &frame{cols: append(append([]execCol(nil), left.frame.cols...), right.frame.cols...)}

	// Build the join condition: USING(col,...) becomes equi-pairs.
	var conjuncts []Expr
	if len(jc.Using) > 0 {
		for _, col := range jc.Using {
			lq, err := qualFor(left.frame, col)
			if err != nil {
				return relation{}, err
			}
			rq, err := qualFor(right.frame, col)
			if err != nil {
				return relation{}, err
			}
			conjuncts = append(conjuncts, &Binary{Op: "=",
				Left:  &ColumnRef{Table: lq, Column: col},
				Right: &ColumnRef{Table: rq, Column: col}})
		}
	} else if jc.On != nil {
		conjuncts = splitConjuncts(jc.On)
	}

	var leftKeys, rightKeys []Expr
	var residual []Expr
	for _, c := range conjuncts {
		bin, ok := c.(*Binary)
		if ok && bin.Op == "=" {
			lOnLeft := exprResolvesIn(bin.Left, left.frame) && !exprResolvesIn(bin.Left, right.frame)
			rOnRight := exprResolvesIn(bin.Right, right.frame) && !exprResolvesIn(bin.Right, left.frame)
			if lOnLeft && rOnRight {
				leftKeys = append(leftKeys, bin.Left)
				rightKeys = append(rightKeys, bin.Right)
				continue
			}
			lOnRight := exprResolvesIn(bin.Left, right.frame) && !exprResolvesIn(bin.Left, left.frame)
			rOnLeft := exprResolvesIn(bin.Right, left.frame) && !exprResolvesIn(bin.Right, right.frame)
			if lOnRight && rOnLeft {
				leftKeys = append(leftKeys, bin.Right)
				rightKeys = append(rightKeys, bin.Left)
				continue
			}
		}
		residual = append(residual, c)
	}

	matchResidual := func(row []value.Value) (bool, error) {
		for _, res := range residual {
			en := &env{frame: combined, row: row, funcs: ex.engine.funcs}
			v, err := en.eval(res)
			if err != nil {
				return false, err
			}
			if triOf(v) != triTrue {
				return false, nil
			}
		}
		return true, nil
	}

	var out [][]value.Value
	rightWidth := len(right.frame.cols)

	if len(leftKeys) > 0 {
		// Hash join: build on right, probe from left.
		build := make(map[string][][]value.Value, len(right.rows))
		for _, rrow := range right.rows {
			en := &env{frame: right.frame, row: rrow, funcs: ex.engine.funcs}
			keys := make([]value.Value, len(rightKeys))
			null := false
			for i, k := range rightKeys {
				v, err := en.eval(k)
				if err != nil {
					return relation{}, err
				}
				if v.IsNull() {
					null = true
					break
				}
				keys[i] = v
			}
			if null {
				continue // NULL keys never match
			}
			gk := groupKey(keys)
			build[gk] = append(build[gk], rrow)
		}
		for _, lrow := range left.rows {
			en := &env{frame: left.frame, row: lrow, funcs: ex.engine.funcs}
			keys := make([]value.Value, len(leftKeys))
			null := false
			for i, k := range leftKeys {
				v, err := en.eval(k)
				if err != nil {
					return relation{}, err
				}
				if v.IsNull() {
					null = true
					break
				}
				keys[i] = v
			}
			matched := false
			if !null {
				for _, rrow := range build[groupKey(keys)] {
					row := combineRows(lrow, rrow)
					ok, err := matchResidual(row)
					if err != nil {
						return relation{}, err
					}
					if ok {
						out = append(out, row)
						matched = true
					}
				}
			}
			if !matched && jc.Kind == JoinLeft {
				out = append(out, padRight(lrow, rightWidth))
			}
		}
		return relation{frame: combined, rows: out}, nil
	}

	// Nested loop (CROSS JOIN or non-equi condition).
	for _, lrow := range left.rows {
		matched := false
		for _, rrow := range right.rows {
			row := combineRows(lrow, rrow)
			if jc.Kind != JoinCross {
				ok := true
				if jc.On != nil {
					en := &env{frame: combined, row: row, funcs: ex.engine.funcs}
					v, err := en.eval(jc.On)
					if err != nil {
						return relation{}, err
					}
					ok = triOf(v) == triTrue
				}
				if !ok {
					continue
				}
			}
			out = append(out, row)
			matched = true
		}
		if !matched && jc.Kind == JoinLeft {
			out = append(out, padRight(lrow, rightWidth))
		}
	}
	return relation{frame: combined, rows: out}, nil
}

func combineRows(l, r []value.Value) []value.Value {
	row := make([]value.Value, 0, len(l)+len(r))
	row = append(row, l...)
	return append(row, r...)
}

func padRight(l []value.Value, width int) []value.Value {
	row := make([]value.Value, len(l)+width)
	copy(row, l)
	for i := len(l); i < len(row); i++ {
		row[i] = value.Null()
	}
	return row
}

// qualFor returns the qualifier under which col is reachable in f, erroring
// when absent or ambiguous.
func qualFor(f *frame, col string) (string, error) {
	qual := ""
	for _, c := range f.cols {
		if strings.EqualFold(c.name, col) {
			if qual != "" {
				return "", &EvalError{Expr: col, Msg: fmt.Sprintf("USING column %q is ambiguous", col)}
			}
			qual = c.qual
		}
	}
	if qual == "" {
		return "", &EvalError{Expr: col, Msg: fmt.Sprintf("USING column %q not found; available: %s", col, f.describe())}
	}
	return qual, nil
}

// splitConjuncts flattens a tree of AND into its conjuncts.
func splitConjuncts(e Expr) []Expr {
	if bin, ok := e.(*Binary); ok && bin.Op == "AND" {
		return append(splitConjuncts(bin.Left), splitConjuncts(bin.Right)...)
	}
	return []Expr{e}
}

// exprResolvesIn reports whether every column reference in e resolves in f
// (and e references at least one column).
func exprResolvesIn(e Expr, f *frame) bool {
	refs := collectColumnRefs(e)
	if len(refs) == 0 {
		return false
	}
	for _, r := range refs {
		if _, err := f.resolve(r.Table, r.Column); err != nil {
			return false
		}
	}
	return true
}

func collectColumnRefs(e Expr) []*ColumnRef {
	var out []*ColumnRef
	var walk func(Expr)
	walk = func(e Expr) {
		switch ex := e.(type) {
		case nil, *Literal, *Star:
		case *ColumnRef:
			out = append(out, ex)
		case *Unary:
			walk(ex.Expr)
		case *Binary:
			walk(ex.Left)
			walk(ex.Right)
		case *Between:
			walk(ex.Expr)
			walk(ex.Lo)
			walk(ex.Hi)
		case *InList:
			walk(ex.Expr)
			for _, it := range ex.Items {
				walk(it)
			}
		case *IsNull:
			walk(ex.Expr)
		case *FuncCall:
			for _, a := range ex.Args {
				walk(a)
			}
		case *CaseExpr:
			walk(ex.Operand)
			for _, w := range ex.Whens {
				walk(w.Cond)
				walk(w.Result)
			}
			walk(ex.Else)
		case *CastExpr:
			walk(ex.Expr)
		}
	}
	walk(e)
	return out
}
