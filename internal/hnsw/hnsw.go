// Package hnsw implements the Hierarchical Navigable Small World
// approximate-nearest-neighbour index of Malkov & Yashunin (2018), the
// vector half of Pneuma-Retriever's hybrid index.
//
// The implementation follows the paper's Algorithms 1-5: multi-layer greedy
// search from a single entry point, ef-bounded best-first search per layer,
// and the heuristic neighbour-selection rule that keeps the graph navigable
// by preferring diverse neighbours. Level assignment uses the standard
// exponential distribution with normalization factor 1/ln(M), drawn from a
// seeded deterministic PRNG so index builds are reproducible.
package hnsw

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"pneuma/internal/vecmath"
)

// Config holds HNSW construction parameters.
type Config struct {
	// M is the maximum number of bidirectional links per node per layer
	// (layer 0 allows 2M). Default 16.
	M int
	// EfConstruction is the beam width used while inserting. Default 200.
	EfConstruction int
	// EfSearch is the default beam width for queries. Default 64.
	EfSearch int
	// Seed seeds the level generator. Builds with equal seeds and insert
	// order produce identical graphs.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.M <= 0 {
		c.M = 16
	}
	if c.EfConstruction <= 0 {
		c.EfConstruction = 200
	}
	if c.EfSearch <= 0 {
		c.EfSearch = 64
	}
	return c
}

// Index is an HNSW graph over float32 vectors with string external IDs.
// All public methods are safe for concurrent use.
type Index struct {
	mu     sync.RWMutex
	cfg    Config
	dim    int
	levelM float64
	rng    *rand.Rand

	nodes  []*node
	byID   map[string]int
	entry  int // index into nodes, -1 when empty
	maxLvl int
}

type node struct {
	id      string
	vec     []float32
	level   int
	links   [][]int32 // per-layer neighbour lists (indices into nodes)
	deleted bool
}

// New creates an empty index for vectors of the given dimensionality.
func New(dim int, cfg Config) *Index {
	cfg = cfg.withDefaults()
	return &Index{
		cfg:    cfg,
		dim:    dim,
		levelM: 1 / math.Log(float64(cfg.M)),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		byID:   make(map[string]int),
		entry:  -1,
		maxLvl: -1,
	}
}

// Len returns the number of live vectors in the index.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	n := 0
	for _, nd := range ix.nodes {
		if !nd.deleted {
			n++
		}
	}
	return n
}

// Dim returns the vector dimensionality.
func (ix *Index) Dim() int { return ix.dim }

// Add inserts a vector under the given ID. Re-adding an existing ID replaces
// its vector (implemented as delete + fresh insert).
func (ix *Index) Add(id string, vec []float32) error {
	if len(vec) != ix.dim {
		return fmt.Errorf("hnsw: vector for %q has dim %d, index wants %d", id, len(vec), ix.dim)
	}
	cp := make([]float32, len(vec))
	copy(cp, vec)

	ix.mu.Lock()
	defer ix.mu.Unlock()

	if old, ok := ix.byID[id]; ok {
		ix.nodes[old].deleted = true
		delete(ix.byID, id)
		if ix.entry == old {
			ix.resetEntryLocked()
		}
	}

	level := ix.randomLevel()
	nd := &node{id: id, vec: cp, level: level, links: make([][]int32, level+1)}
	idx := len(ix.nodes)
	ix.nodes = append(ix.nodes, nd)
	ix.byID[id] = idx

	if ix.entry < 0 {
		ix.entry = idx
		ix.maxLvl = level
		return nil
	}

	ep := ix.entry
	// Phase 1: greedy descent through layers above the new node's level.
	for lvl := ix.maxLvl; lvl > level; lvl-- {
		ep = ix.greedyClosestLocked(cp, ep, lvl)
	}
	// Phase 2: per-layer beam search + neighbour selection from min(level,
	// maxLvl) down to 0.
	top := level
	if ix.maxLvl < top {
		top = ix.maxLvl
	}
	for lvl := top; lvl >= 0; lvl-- {
		candidates := ix.searchLayerLocked(cp, ep, ix.cfg.EfConstruction, lvl)
		m := ix.cfg.M
		if lvl == 0 {
			m = 2 * ix.cfg.M
		}
		selected := ix.selectHeuristicLocked(cp, candidates, ix.cfg.M)
		for _, c := range selected {
			ix.linkLocked(idx, c.idx, lvl, m)
		}
		if len(candidates) > 0 {
			ep = candidates[0].idx
		}
	}

	if level > ix.maxLvl {
		ix.maxLvl = level
		ix.entry = idx
	}
	return nil
}

// Delete removes an ID from the index. It returns false if absent. Deleted
// nodes are tombstoned: they keep routing but never appear in results.
func (ix *Index) Delete(id string) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	idx, ok := ix.byID[id]
	if !ok {
		return false
	}
	ix.nodes[idx].deleted = true
	delete(ix.byID, id)
	if ix.entry == idx {
		ix.resetEntryLocked()
	}
	return true
}

func (ix *Index) resetEntryLocked() {
	ix.entry = -1
	ix.maxLvl = -1
	for i, nd := range ix.nodes {
		if nd.deleted {
			continue
		}
		if nd.level > ix.maxLvl {
			ix.maxLvl = nd.level
			ix.entry = i
		}
	}
}

// Result is one nearest-neighbour hit.
type Result struct {
	ID string
	// Score is cosine similarity in [-1,1]; higher is better.
	Score float32
}

// Search returns up to k nearest neighbours of query by cosine similarity
// (vectors are compared by squared L2, equivalent for unit vectors), using
// the index's default ef.
func (ix *Index) Search(query []float32, k int) ([]Result, error) {
	return ix.SearchEf(query, k, ix.cfg.EfSearch)
}

// SearchEf is Search with an explicit beam width ef (clamped to ≥ k).
func (ix *Index) SearchEf(query []float32, k, ef int) ([]Result, error) {
	if len(query) != ix.dim {
		return nil, fmt.Errorf("hnsw: query has dim %d, index wants %d", len(query), ix.dim)
	}
	if k <= 0 {
		return nil, nil
	}
	if ef < k {
		ef = k
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.entry < 0 {
		return nil, nil
	}
	ep := ix.entry
	for lvl := ix.maxLvl; lvl > 0; lvl-- {
		ep = ix.greedyClosestLocked(query, ep, lvl)
	}
	cands := ix.searchLayerLocked(query, ep, ef, 0)
	out := make([]Result, 0, k)
	for _, c := range cands {
		nd := ix.nodes[c.idx]
		if nd.deleted {
			continue
		}
		out = append(out, Result{ID: nd.id, Score: vecmath.Cosine(query, nd.vec)})
		if len(out) == k {
			break
		}
	}
	return out, nil
}

// randomLevel draws the node level from the exponential distribution of the
// HNSW paper: floor(-ln(U) · mL).
func (ix *Index) randomLevel() int {
	u := ix.rng.Float64()
	for u == 0 {
		u = ix.rng.Float64()
	}
	return int(math.Floor(-math.Log(u) * ix.levelM))
}

// greedyClosestLocked walks layer lvl greedily toward query from ep and
// returns the local minimum.
func (ix *Index) greedyClosestLocked(query []float32, ep, lvl int) int {
	cur := ep
	curDist := vecmath.SquaredL2(query, ix.nodes[cur].vec)
	for {
		improved := false
		nd := ix.nodes[cur]
		if lvl < len(nd.links) {
			for _, nb := range nd.links[lvl] {
				d := vecmath.SquaredL2(query, ix.nodes[nb].vec)
				if d < curDist {
					cur, curDist = int(nb), d
					improved = true
				}
			}
		}
		if !improved {
			return cur
		}
	}
}

// cand pairs a node index with its distance to the query.
type cand struct {
	idx  int
	dist float32
}

type minHeap []cand

func (h minHeap) Len() int            { return len(h) }
func (h minHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h minHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x interface{}) { *h = append(*h, x.(cand)) }
func (h *minHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type maxHeap []cand

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return h[i].dist > h[j].dist }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(cand)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// searchLayerLocked is Algorithm 2: ef-bounded best-first search on one
// layer. The result is sorted ascending by distance.
func (ix *Index) searchLayerLocked(query []float32, ep, ef, lvl int) []cand {
	visited := map[int]struct{}{ep: {}}
	epDist := vecmath.SquaredL2(query, ix.nodes[ep].vec)
	candidates := minHeap{{ep, epDist}}
	results := maxHeap{{ep, epDist}}
	heap.Init(&candidates)
	heap.Init(&results)

	for candidates.Len() > 0 {
		c := heap.Pop(&candidates).(cand)
		if results.Len() >= ef && c.dist > results[0].dist {
			break
		}
		nd := ix.nodes[c.idx]
		if lvl < len(nd.links) {
			for _, nb := range nd.links[lvl] {
				nbi := int(nb)
				if _, seen := visited[nbi]; seen {
					continue
				}
				visited[nbi] = struct{}{}
				d := vecmath.SquaredL2(query, ix.nodes[nbi].vec)
				if results.Len() < ef || d < results[0].dist {
					heap.Push(&candidates, cand{nbi, d})
					heap.Push(&results, cand{nbi, d})
					if results.Len() > ef {
						heap.Pop(&results)
					}
				}
			}
		}
	}
	out := make([]cand, results.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&results).(cand)
	}
	return out
}

// selectHeuristicLocked is Algorithm 4: pick up to m diverse neighbours —
// a candidate is kept only if it is closer to the query than to every
// already-kept neighbour.
func (ix *Index) selectHeuristicLocked(query []float32, cands []cand, m int) []cand {
	if len(cands) <= m {
		return cands
	}
	kept := make([]cand, 0, m)
	for _, c := range cands {
		if len(kept) >= m {
			break
		}
		ok := true
		for _, k := range kept {
			if vecmath.SquaredL2(ix.nodes[c.idx].vec, ix.nodes[k.idx].vec) < c.dist {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, c)
		}
	}
	// Backfill with nearest rejected candidates if diversity pruned too hard.
	if len(kept) < m {
		seen := make(map[int]struct{}, len(kept))
		for _, k := range kept {
			seen[k.idx] = struct{}{}
		}
		for _, c := range cands {
			if len(kept) >= m {
				break
			}
			if _, dup := seen[c.idx]; !dup {
				kept = append(kept, c)
			}
		}
	}
	return kept
}

// linkLocked adds a bidirectional edge a↔b on layer lvl, shrinking neighbour
// lists that exceed maxLinks via the selection heuristic.
func (ix *Index) linkLocked(a, b, lvl, maxLinks int) {
	if a == b {
		return
	}
	ix.addEdgeLocked(a, b, lvl, maxLinks)
	ix.addEdgeLocked(b, a, lvl, maxLinks)
}

func (ix *Index) addEdgeLocked(from, to, lvl, maxLinks int) {
	nd := ix.nodes[from]
	if lvl >= len(nd.links) {
		return
	}
	for _, existing := range nd.links[lvl] {
		if int(existing) == to {
			return
		}
	}
	nd.links[lvl] = append(nd.links[lvl], int32(to))
	if len(nd.links[lvl]) > maxLinks {
		// Re-select the best maxLinks neighbours relative to this node.
		cands := make([]cand, 0, len(nd.links[lvl]))
		for _, nb := range nd.links[lvl] {
			cands = append(cands, cand{int(nb), vecmath.SquaredL2(nd.vec, ix.nodes[nb].vec)})
		}
		sortCands(cands)
		kept := ix.selectHeuristicLocked(nd.vec, cands, maxLinks)
		links := make([]int32, 0, len(kept))
		for _, k := range kept {
			links = append(links, int32(k.idx))
		}
		nd.links[lvl] = links
	}
}

func sortCands(cs []cand) {
	// insertion sort; neighbour lists are tiny (≤ 2M+1)
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].dist < cs[j-1].dist; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}
