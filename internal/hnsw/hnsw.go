package hnsw

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"pneuma/internal/vecmath"
)

// DefaultEfSearch is the query beam width used when Config.EfSearch is
// unset.
const DefaultEfSearch = 64

// Config holds HNSW construction parameters.
type Config struct {
	// M is the maximum number of bidirectional links per node per layer
	// (layer 0 allows 2M). Default 16.
	M int
	// EfConstruction is the beam width used while inserting. Default 200.
	EfConstruction int
	// EfSearch is the default beam width for queries. Default
	// DefaultEfSearch.
	EfSearch int
	// Seed seeds the level generator. Builds with equal seeds and insert
	// order produce identical graphs.
	Seed int64
	// Quantize maintains an int8 scalar-quantized copy of every vector
	// and runs query traversal on it, rescoring finalists with exact
	// float32 math (see quant.go). Graph construction always uses float32
	// distances, so the graph is identical with the knob on or off.
	// Default false.
	Quantize bool
	// RescoreFactor is the exact-rescore over-fetch multiplier of the
	// quantized path: the top k·RescoreFactor quantized candidates are
	// rescored with float32 CosineWithNorms before the top k are
	// returned. Default DefaultRescoreFactor. Ignored unless Quantize.
	RescoreFactor int
}

func (c Config) withDefaults() Config {
	if c.M <= 0 {
		c.M = 16
	}
	if c.EfConstruction <= 0 {
		c.EfConstruction = 200
	}
	if c.EfSearch <= 0 {
		c.EfSearch = DefaultEfSearch
	}
	if c.RescoreFactor <= 0 {
		c.RescoreFactor = DefaultRescoreFactor
	}
	return c
}

// Index is an HNSW graph over float32 vectors with string external IDs.
// All public methods are safe for concurrent use.
//
// Node storage is struct-of-arrays (see the package comment): vectors live
// in one contiguous arena indexed by node slot, with parallel slices for
// everything else, so beam search touches flat memory instead of chasing
// per-node pointers.
type Index struct {
	mu     sync.RWMutex
	cfg    Config
	dim    int
	levelM float64
	rng    *rand.Rand

	ids     []string  // external ID per node slot
	vecs    []float32 // contiguous vector arena; slot i at [i*dim, (i+1)*dim)
	norms   []float32 // Euclidean norm per slot, computed once at Add
	levels  []int32   // top layer per slot
	deleted []bool    // tombstone flags
	links   [][][]int32

	// Quantized side arenas, slot-parallel with vecs (Config.Quantize
	// only; see quant.go): int8 codes plus per-vector dequantization
	// constants and precomputed code sums.
	qvecs  []int8
	qscale []float32
	qoff   []float32
	qsum   []int32

	byID   map[string]int
	entry  int // slot index, -1 when empty
	maxLvl int
	live   int // live (non-tombstoned) node count, maintained by Add/Delete
	// rngDraws counts level-generator draws so a serialized index can
	// fast-forward a fresh generator to the exact same state (see ReadFrom):
	// later Adds then assign the same levels a never-serialized index would.
	rngDraws uint64
}

// New creates an empty index for vectors of the given dimensionality.
func New(dim int, cfg Config) *Index {
	cfg = cfg.withDefaults()
	return &Index{
		cfg:    cfg,
		dim:    dim,
		levelM: 1 / math.Log(float64(cfg.M)),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		byID:   make(map[string]int),
		entry:  -1,
		maxLvl: -1,
	}
}

// Len returns the number of live vectors in the index.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.live
}

// Dim returns the vector dimensionality.
func (ix *Index) Dim() int { return ix.dim }

// EfSearch returns the default query beam width.
func (ix *Index) EfSearch() int { return ix.cfg.EfSearch }

// vecAt returns slot i's vector window in the arena.
func (ix *Index) vecAt(i int) []float32 {
	return ix.vecs[i*ix.dim : (i+1)*ix.dim]
}

// Add inserts a vector under the given ID. Re-adding an existing ID replaces
// its vector (implemented as delete + fresh insert).
func (ix *Index) Add(id string, vec []float32) error {
	if len(vec) != ix.dim {
		return fmt.Errorf("hnsw: vector for %q has dim %d, index wants %d", id, len(vec), ix.dim)
	}

	ix.mu.Lock()
	defer ix.mu.Unlock()

	if old, ok := ix.byID[id]; ok {
		ix.deleted[old] = true
		ix.live--
		delete(ix.byID, id)
		if ix.entry == old {
			ix.resetEntryLocked()
		}
	}

	level := ix.randomLevel()
	idx := len(ix.ids)
	ix.ids = append(ix.ids, id)
	ix.vecs = append(ix.vecs, vec...)
	ix.norms = append(ix.norms, vecmath.Norm(vec))
	ix.levels = append(ix.levels, int32(level))
	ix.deleted = append(ix.deleted, false)
	ix.links = append(ix.links, make([][]int32, level+1))
	ix.byID[id] = idx
	ix.live++
	cp := ix.vecAt(idx)
	if ix.cfg.Quantize {
		ix.appendQuantizedLocked(cp)
	}

	if ix.entry < 0 {
		ix.entry = idx
		ix.maxLvl = level
		return nil
	}

	s := scratchPool.Get().(*searchScratch)
	defer scratchPool.Put(s)

	ep := ix.entry
	// Phase 1: greedy descent through layers above the new node's level.
	for lvl := ix.maxLvl; lvl > level; lvl-- {
		ep = ix.greedyClosestLocked(cp, ep, lvl)
	}
	// Phase 2: per-layer beam search + neighbour selection from min(level,
	// maxLvl) down to 0.
	top := level
	if ix.maxLvl < top {
		top = ix.maxLvl
	}
	for lvl := top; lvl >= 0; lvl-- {
		candidates := ix.searchLayerLocked(s, cp, ep, ix.cfg.EfConstruction, lvl)
		m := ix.cfg.M
		if lvl == 0 {
			m = 2 * ix.cfg.M
		}
		selected := ix.selectHeuristicLocked(cp, candidates, ix.cfg.M)
		for _, c := range selected {
			ix.linkLocked(idx, int(c.idx), lvl, m)
		}
		if len(candidates) > 0 {
			ep = int(candidates[0].idx)
		}
	}

	if level > ix.maxLvl {
		ix.maxLvl = level
		ix.entry = idx
	}
	return nil
}

// Delete removes an ID from the index. It returns false if absent. Deleted
// nodes are tombstoned: they keep routing but never appear in results.
func (ix *Index) Delete(id string) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	idx, ok := ix.byID[id]
	if !ok {
		return false
	}
	ix.deleted[idx] = true
	ix.live--
	delete(ix.byID, id)
	if ix.entry == idx {
		ix.resetEntryLocked()
	}
	return true
}

func (ix *Index) resetEntryLocked() {
	ix.entry = -1
	ix.maxLvl = -1
	for i := range ix.ids {
		if ix.deleted[i] {
			continue
		}
		if int(ix.levels[i]) > ix.maxLvl {
			ix.maxLvl = int(ix.levels[i])
			ix.entry = i
		}
	}
}

// Result is one nearest-neighbour hit.
type Result struct {
	ID string
	// Score is cosine similarity in [-1,1]; higher is better.
	Score float32
}

// Search returns up to k nearest neighbours of query by cosine similarity
// (vectors are compared by squared L2, equivalent for unit vectors), using
// the index's default ef.
func (ix *Index) Search(query []float32, k int) ([]Result, error) {
	return ix.SearchEf(query, k, ix.cfg.EfSearch)
}

// SearchEf is Search with an explicit beam width ef (clamped to ≥ k).
func (ix *Index) SearchEf(query []float32, k, ef int) ([]Result, error) {
	if len(query) != ix.dim {
		return nil, fmt.Errorf("hnsw: query has dim %d, index wants %d", len(query), ix.dim)
	}
	if k <= 0 {
		return nil, nil
	}
	if ef < k {
		ef = k
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.entry < 0 {
		return nil, nil
	}

	s := scratchPool.Get().(*searchScratch)
	defer scratchPool.Put(s)

	if ix.quantizedLocked() {
		return ix.searchQuantizedLocked(s, query, k, ef), nil
	}

	ep := ix.entry
	for lvl := ix.maxLvl; lvl > 0; lvl-- {
		ep = ix.greedyClosestLocked(query, ep, lvl)
	}
	cands := ix.searchLayerLocked(s, query, ep, ef, 0)
	qNorm := vecmath.Norm(query)
	out := make([]Result, 0, k)
	for _, c := range cands {
		ci := int(c.idx)
		if ix.deleted[ci] {
			continue
		}
		out = append(out, Result{
			ID:    ix.ids[ci],
			Score: vecmath.CosineWithNorms(query, ix.vecAt(ci), qNorm, ix.norms[ci]),
		})
		if len(out) == k {
			break
		}
	}
	return out, nil
}

// randomLevel draws the node level from the exponential distribution of the
// HNSW paper: floor(-ln(U) · mL).
func (ix *Index) randomLevel() int {
	ix.rngDraws++
	u := ix.rng.Float64()
	for u == 0 {
		ix.rngDraws++
		u = ix.rng.Float64()
	}
	return int(math.Floor(-math.Log(u) * ix.levelM))
}

// greedyClosestLocked walks layer lvl greedily toward query from ep and
// returns the local minimum.
func (ix *Index) greedyClosestLocked(query []float32, ep, lvl int) int {
	cur := ep
	curDist := vecmath.SquaredL2(query, ix.vecAt(cur))
	for {
		improved := false
		nbs := ix.links[cur]
		if lvl < len(nbs) {
			for _, nb := range nbs[lvl] {
				d := vecmath.SquaredL2(query, ix.vecAt(int(nb)))
				if d < curDist {
					cur, curDist = int(nb), d
					improved = true
				}
			}
		}
		if !improved {
			return cur
		}
	}
}

// cand pairs a node slot with its distance to the query.
type cand struct {
	idx  int32
	dist float32
}

// candHeap is a binary heap of candidates ordered by distance: a min-heap
// by default, a max-heap when max is set. One concrete type replaces the
// former container/heap min/max pair, so pushes and pops move 8-byte cand
// values directly instead of boxing them through interface{}.
type candHeap struct {
	items []cand
	max   bool
}

func (h *candHeap) len() int  { return len(h.items) }
func (h *candHeap) top() cand { return h.items[0] }
func (h *candHeap) reset()    { h.items = h.items[:0] }
func (h *candHeap) before(a, b cand) bool {
	if h.max {
		return a.dist > b.dist
	}
	return a.dist < b.dist
}

func (h *candHeap) push(c cand) {
	h.items = append(h.items, c)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.before(h.items[i], h.items[p]) {
			break
		}
		h.items[i], h.items[p] = h.items[p], h.items[i]
		i = p
	}
}

func (h *candHeap) pop() cand {
	it := h.items
	root := it[0]
	n := len(it) - 1
	it[0] = it[n]
	h.items = it[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && h.before(it[r], it[c]) {
			c = r
		}
		if !h.before(it[c], it[i]) {
			break
		}
		it[i], it[c] = it[c], it[i]
		i = c
	}
	return root
}

// searchScratch is the reusable per-search working state: both beam-search
// heaps, the epoch-stamped visited array and the output buffer. Instances
// cycle through scratchPool; see the package comment for the lifecycle
// rules (no retention past the search, GC may drop pooled instances).
type searchScratch struct {
	visited []uint32
	epoch   uint32
	cands   candHeap // min-heap: next candidate to expand
	results candHeap // max-heap: worst of the ef best so far on top
	out     []cand
	qvec    []int8 // quantized-query codes (Quantize searches only)
	resc    []cand // exact-rescore buffer (Quantize searches only)
}

var scratchPool = sync.Pool{
	New: func() any {
		return &searchScratch{results: candHeap{max: true}}
	},
}

// begin readies the scratch for a search over n node slots: both heaps are
// emptied and the visited epoch advances, invalidating every mark left by
// earlier searches (against this index or any other sharing the pool)
// without touching the array. On epoch wrap-around the array is zeroed so
// stale uint32 stamps from 2^32 searches ago cannot collide.
func (s *searchScratch) begin(n int) {
	s.cands.reset()
	s.results.reset()
	if cap(s.visited) < n {
		grown := make([]uint32, n)
		s.visited = grown
		s.epoch = 0
	}
	s.visited = s.visited[:cap(s.visited)]
	s.epoch++
	if s.epoch == 0 {
		clear(s.visited)
		s.epoch = 1
	}
}

// searchLayerLocked is Algorithm 2: ef-bounded best-first search on one
// layer. The result is sorted ascending by distance and aliases s.out — it
// is valid only until the next search using the same scratch.
func (ix *Index) searchLayerLocked(s *searchScratch, query []float32, ep, ef, lvl int) []cand {
	s.begin(len(ix.ids))
	s.visited[ep] = s.epoch
	epDist := vecmath.SquaredL2(query, ix.vecAt(ep))
	s.cands.push(cand{int32(ep), epDist})
	s.results.push(cand{int32(ep), epDist})

	for s.cands.len() > 0 {
		c := s.cands.pop()
		if s.results.len() >= ef && c.dist > s.results.top().dist {
			break
		}
		nbs := ix.links[c.idx]
		if lvl < len(nbs) {
			for _, nb := range nbs[lvl] {
				if s.visited[nb] == s.epoch {
					continue
				}
				s.visited[nb] = s.epoch
				d := vecmath.SquaredL2(query, ix.vecAt(int(nb)))
				if s.results.len() < ef || d < s.results.top().dist {
					s.cands.push(cand{nb, d})
					s.results.push(cand{nb, d})
					if s.results.len() > ef {
						s.results.pop()
					}
				}
			}
		}
	}
	n := s.results.len()
	if cap(s.out) < n {
		s.out = make([]cand, n)
	}
	out := s.out[:n]
	for i := n - 1; i >= 0; i-- {
		out[i] = s.results.pop()
	}
	return out
}

// selectHeuristicLocked is Algorithm 4: pick up to m diverse neighbours —
// a candidate is kept only if it is closer to the query than to every
// already-kept neighbour.
func (ix *Index) selectHeuristicLocked(query []float32, cands []cand, m int) []cand {
	if len(cands) <= m {
		return cands
	}
	kept := make([]cand, 0, m)
	for _, c := range cands {
		if len(kept) >= m {
			break
		}
		ok := true
		for _, k := range kept {
			if vecmath.SquaredL2(ix.vecAt(int(c.idx)), ix.vecAt(int(k.idx))) < c.dist {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, c)
		}
	}
	// Backfill with nearest rejected candidates if diversity pruned too hard.
	if len(kept) < m {
		seen := make(map[int32]struct{}, len(kept))
		for _, k := range kept {
			seen[k.idx] = struct{}{}
		}
		for _, c := range cands {
			if len(kept) >= m {
				break
			}
			if _, dup := seen[c.idx]; !dup {
				kept = append(kept, c)
			}
		}
	}
	return kept
}

// linkLocked adds a bidirectional edge a↔b on layer lvl, shrinking neighbour
// lists that exceed maxLinks via the selection heuristic.
func (ix *Index) linkLocked(a, b, lvl, maxLinks int) {
	if a == b {
		return
	}
	ix.addEdgeLocked(a, b, lvl, maxLinks)
	ix.addEdgeLocked(b, a, lvl, maxLinks)
}

func (ix *Index) addEdgeLocked(from, to, lvl, maxLinks int) {
	nbs := ix.links[from]
	if lvl >= len(nbs) {
		return
	}
	for _, existing := range nbs[lvl] {
		if int(existing) == to {
			return
		}
	}
	nbs[lvl] = append(nbs[lvl], int32(to))
	if len(nbs[lvl]) > maxLinks {
		// Re-select the best maxLinks neighbours relative to this node.
		vec := ix.vecAt(from)
		cands := make([]cand, 0, len(nbs[lvl]))
		for _, nb := range nbs[lvl] {
			cands = append(cands, cand{nb, vecmath.SquaredL2(vec, ix.vecAt(int(nb)))})
		}
		sortCands(cands)
		kept := ix.selectHeuristicLocked(vec, cands, maxLinks)
		links := make([]int32, 0, len(kept))
		for _, k := range kept {
			links = append(links, k.idx)
		}
		nbs[lvl] = links
	}
}

// sortCands orders a neighbour candidate list ascending by distance. Still
// needed by addEdgeLocked's overflow re-selection (which never goes through
// the beam-search heaps); insertion sort, because neighbour lists are tiny
// (≤ 2M+1).
func sortCands(cs []cand) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].dist < cs[j-1].dist; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}
