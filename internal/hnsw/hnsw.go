package hnsw

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"pneuma/internal/vecmath"
)

// DefaultEfSearch is the query beam width used when Config.EfSearch is
// unset.
const DefaultEfSearch = 64

// Config holds HNSW construction parameters.
type Config struct {
	// M is the maximum number of bidirectional links per node per layer
	// (layer 0 allows 2M). Default 16.
	M int
	// EfConstruction is the beam width used while inserting. Default 200.
	EfConstruction int
	// EfSearch is the default beam width for queries. Default
	// DefaultEfSearch.
	EfSearch int
	// Seed seeds the level generator. Builds with equal seeds and insert
	// order produce identical graphs.
	Seed int64
	// Quantize maintains an int8 scalar-quantized copy of every vector
	// and runs query traversal on it, rescoring finalists with exact
	// float32 math (see quant.go). Graph construction always uses float32
	// distances, so the graph is identical with the knob on or off.
	// Default false.
	Quantize bool
	// RescoreFactor is the exact-rescore over-fetch multiplier of the
	// quantized path: the top k·RescoreFactor quantized candidates are
	// rescored with float32 CosineWithNorms before the top k are
	// returned. Default DefaultRescoreFactor. Ignored unless Quantize.
	RescoreFactor int
}

func (c Config) withDefaults() Config {
	if c.M <= 0 {
		c.M = 16
	}
	if c.EfConstruction <= 0 {
		c.EfConstruction = 200
	}
	if c.EfSearch <= 0 {
		c.EfSearch = DefaultEfSearch
	}
	if c.RescoreFactor <= 0 {
		c.RescoreFactor = DefaultRescoreFactor
	}
	return c
}

// graph is one immutable published view of the index: everything the read
// path touches, frozen at a batch boundary. Readers pin a view with a
// single atomic load and never take a lock; writers build the next view in
// a private draft and publish it with one atomic pointer swap (see the
// package comment for the epoch lifecycle).
//
// Views share storage where sharing is safe: the append-only arrays (ids,
// vecs, norms, levels, the arenas) grow in place past the published
// length — readers never index beyond their own view's len, so tail
// writes cannot race. Arrays that are mutated *in place* by a batch — the
// tombstone flags and any adjacency list the batch rewires — are
// copy-on-write: the draft clones them before the first mutation, leaving
// every older view intact until its last reader drains and the GC retires
// it.
type graph struct {
	dim     int
	ids     []string  // external ID per node slot
	vecs    []float32 // contiguous vector arena; slot i at [i*dim, (i+1)*dim)
	norms   []float32 // Euclidean norm per slot, computed once at Add
	levels  []int32   // top layer per slot
	deleted []bool    // tombstone flags (COW'd by batches that tombstone)
	links   [][][]int32

	// Quantized side arenas, slot-parallel with vecs (Config.Quantize
	// only; see quant.go): int8 codes plus per-vector dequantization
	// constants and precomputed code sums.
	qvecs  []int8
	qscale []float32
	qoff   []float32
	qsum   []int32

	entry  int // slot index, -1 when empty
	maxLvl int
	live   int  // live (non-tombstoned) node count
	quant  bool // int8 arenas cover every slot (computed at publish)
}

// vecAt returns slot i's vector window in the arena.
func (g *graph) vecAt(i int) []float32 {
	return g.vecs[i*g.dim : (i+1)*g.dim]
}

// Index is an HNSW graph over float32 vectors with string external IDs.
// All public methods are safe for concurrent use; reads (Search, Len,
// ForEachLive, AppendSnapshot) are lock-free — they pin the current
// immutable view with one atomic load and never block on writers.
//
// Node storage is struct-of-arrays (see the package comment): vectors live
// in one contiguous arena indexed by node slot, with parallel slices for
// everything else, so beam search touches flat memory instead of chasing
// per-node pointers.
type Index struct {
	cfg    Config
	dim    int
	levelM float64

	// view is the published read-path state. Writers replace it wholesale;
	// readers load it once per operation and use it unlocked.
	view atomic.Pointer[graph]

	// Writer-only state below; mu serializes writers (batches), never
	// readers.
	mu   sync.Mutex
	rng  *rand.Rand
	byID map[string]int
	// copied stamps, per slot, the batch that last made links[slot]
	// privately writable (by COW or by appending the slot); writableLinks
	// consults it so each batch deep-copies a node's adjacency at most
	// once.
	copied []uint64
	batch  uint64
	// linksBatch/delBatch record the batch that last cloned the outer
	// links array / the tombstone array, making those clones once per
	// batch at most.
	linksBatch uint64
	delBatch   uint64
	// rngDraws counts level-generator draws so a serialized index can
	// fast-forward a fresh generator to the exact same state (see
	// LoadSnapshot): later Adds then assign the same levels a
	// never-serialized index would.
	rngDraws uint64
}

// New creates an empty index for vectors of the given dimensionality.
func New(dim int, cfg Config) *Index {
	cfg = cfg.withDefaults()
	ix := &Index{
		cfg:    cfg,
		dim:    dim,
		levelM: 1 / math.Log(float64(cfg.M)),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		byID:   make(map[string]int),
	}
	ix.view.Store(&graph{dim: dim, entry: -1, maxLvl: -1})
	return ix
}

// beginBatch opens a writer batch (mu must be held): the draft starts as a
// shallow copy of the published view, so slice headers alias the published
// arrays until a mutation COWs them or an append grows them past the
// published length.
func (ix *Index) beginBatch() *graph {
	ix.batch++
	g := *ix.view.Load()
	return &g
}

// publish atomically swaps the draft in as the new published view
// (mu must be held). Readers that loaded the old view keep using it; the
// GC retires it once the last such reader drains.
func (ix *Index) publish(g *graph) {
	g.quant = ix.cfg.Quantize && len(g.qsum) == len(g.ids)
	ix.view.Store(g)
}

// ensureOuterLinks makes the draft's outer links array privately writable
// (once per batch): entries below the published length are about to be
// replaced in place, which must not be visible through older views.
func (ix *Index) ensureOuterLinks(g *graph) {
	if ix.linksBatch == ix.batch {
		return
	}
	ix.linksBatch = ix.batch
	cl := make([][][]int32, len(g.links))
	copy(cl, g.links)
	g.links = cl
}

// writableLinks returns node u's adjacency layers, deep-copying them into
// the draft the first time this batch touches u. Nodes appended by this
// batch are already private.
func (ix *Index) writableLinks(g *graph, u int) [][]int32 {
	if ix.copied[u] == ix.batch {
		return g.links[u]
	}
	ix.ensureOuterLinks(g)
	old := g.links[u]
	nl := make([][]int32, len(old))
	for l, nbs := range old {
		nl[l] = append(make([]int32, 0, len(nbs)+1), nbs...)
	}
	g.links[u] = nl
	ix.copied[u] = ix.batch
	return nl
}

// tombstone marks slot i deleted in the draft, cloning the tombstone array
// the first time this batch tombstones anything.
func (ix *Index) tombstone(g *graph, i int) {
	if ix.delBatch != ix.batch {
		ix.delBatch = ix.batch
		cl := make([]bool, len(g.deleted))
		copy(cl, g.deleted)
		g.deleted = cl
	}
	g.deleted[i] = true
}

// Len returns the number of live vectors in the index.
func (ix *Index) Len() int {
	return ix.view.Load().live
}

// Dim returns the vector dimensionality.
func (ix *Index) Dim() int { return ix.dim }

// EfSearch returns the default query beam width.
func (ix *Index) EfSearch() int { return ix.cfg.EfSearch }

// Add inserts a vector under the given ID. Re-adding an existing ID replaces
// its vector (implemented as delete + fresh insert).
func (ix *Index) Add(id string, vec []float32) error {
	if len(vec) != ix.dim {
		return fmt.Errorf("hnsw: vector for %q has dim %d, index wants %d", id, len(vec), ix.dim)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	g := ix.beginBatch()
	ix.addLocked(g, id, vec)
	ix.publish(g)
	return nil
}

// AddBatch inserts ids[i] → vecs[i] in order inside a single writer batch,
// publishing one new view at the end instead of one per insert. The graph
// it builds is identical to len(ids) sequential Adds; batching only
// amortizes the per-batch copy-on-write cost, so bulk ingest stays O(n)
// in cloned headers rather than O(n²). Nothing is inserted if any vector
// has the wrong dimensionality.
func (ix *Index) AddBatch(ids []string, vecs [][]float32) error {
	if len(ids) != len(vecs) {
		return fmt.Errorf("hnsw: AddBatch got %d ids, %d vectors", len(ids), len(vecs))
	}
	for i, v := range vecs {
		if len(v) != ix.dim {
			return fmt.Errorf("hnsw: vector for %q has dim %d, index wants %d", ids[i], len(v), ix.dim)
		}
	}
	if len(ids) == 0 {
		return nil
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	g := ix.beginBatch()
	for i := range ids {
		ix.addLocked(g, ids[i], vecs[i])
		// Yield between inserts — the reads-first pacing policy. Searches
		// never take mu (they run on the published view, which stays
		// pre-batch until the publish below), so the only thing a batch
		// can cost concurrent readers is the scheduler: on a box whose
		// cores are saturated, an unyielding batch owns a P for tens of
		// milliseconds and reader tail latency becomes pure run-queue
		// wait. Yielding after every insert caps that wait at one
		// insert's work. When cores are idle Gosched is ~100ns against
		// a ~100µs insert, so bulk ingest throughput is unaffected
		// exactly where there is nothing to be fair to; under reader
		// pressure ingest deliberately slows instead of the p99 blowing
		// up.
		runtime.Gosched()
	}
	ix.publish(g)
	return nil
}

// addLocked applies one insert to the draft (mu held, batch open).
func (ix *Index) addLocked(g *graph, id string, vec []float32) {
	if old, ok := ix.byID[id]; ok {
		ix.tombstone(g, old)
		g.live--
		delete(ix.byID, id)
		if g.entry == old {
			ix.resetEntry(g)
		}
	}

	level := ix.randomLevel()
	idx := len(g.ids)
	g.ids = append(g.ids, id)
	g.vecs = append(g.vecs, vec...)
	g.norms = append(g.norms, vecmath.Norm(vec))
	g.levels = append(g.levels, int32(level))
	g.deleted = append(g.deleted, false)
	g.links = append(g.links, make([][]int32, level+1))
	ix.copied = append(ix.copied, ix.batch)
	ix.byID[id] = idx
	g.live++
	cp := g.vecAt(idx)
	if ix.cfg.Quantize {
		appendQuantized(g, cp)
	}

	if g.entry < 0 {
		g.entry = idx
		g.maxLvl = level
		return
	}

	s := scratchPool.Get().(*searchScratch)
	defer scratchPool.Put(s)
	s.prep(2*ix.cfg.M, false)

	ep := g.entry
	// Phase 1: greedy descent through layers above the new node's level.
	for lvl := g.maxLvl; lvl > level; lvl-- {
		ep = g.greedyClosest(s, cp, ep, lvl)
	}
	// Phase 2: per-layer beam search + neighbour selection from min(level,
	// maxLvl) down to 0.
	top := level
	if g.maxLvl < top {
		top = g.maxLvl
	}
	for lvl := top; lvl >= 0; lvl-- {
		candidates := g.searchLayer(s, cp, ep, ix.cfg.EfConstruction, lvl)
		m := ix.cfg.M
		if lvl == 0 {
			m = 2 * ix.cfg.M
		}
		selected := g.selectHeuristic(cp, candidates, ix.cfg.M)
		for _, c := range selected {
			ix.link(g, idx, int(c.idx), lvl, m)
		}
		if len(candidates) > 0 {
			ep = int(candidates[0].idx)
		}
	}

	if level > g.maxLvl {
		g.maxLvl = level
		g.entry = idx
	}
}

// Delete removes an ID from the index. It returns false if absent. Deleted
// nodes are tombstoned: they keep routing but never appear in results.
func (ix *Index) Delete(id string) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	idx, ok := ix.byID[id]
	if !ok {
		return false
	}
	g := ix.beginBatch()
	ix.deleteLocked(g, idx, id)
	ix.publish(g)
	return true
}

// DeleteBatch tombstones every present ID inside a single writer batch and
// returns how many were present, publishing one new view at the end.
func (ix *Index) DeleteBatch(ids []string) int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	n := 0
	var g *graph
	for _, id := range ids {
		idx, ok := ix.byID[id]
		if !ok {
			continue
		}
		if g == nil {
			g = ix.beginBatch()
		}
		ix.deleteLocked(g, idx, id)
		n++
	}
	if g != nil {
		ix.publish(g)
	}
	return n
}

func (ix *Index) deleteLocked(g *graph, idx int, id string) {
	ix.tombstone(g, idx)
	g.live--
	delete(ix.byID, id)
	if g.entry == idx {
		ix.resetEntry(g)
	}
}

func (ix *Index) resetEntry(g *graph) {
	g.entry = -1
	g.maxLvl = -1
	for i := range g.ids {
		if g.deleted[i] {
			continue
		}
		if int(g.levels[i]) > g.maxLvl {
			g.maxLvl = int(g.levels[i])
			g.entry = i
		}
	}
}

// Compact rebuilds the index tombstone-free, in place, by re-inserting the
// live nodes in their original insertion order into a fresh graph with a
// freshly seeded level generator — the result is identical to building a
// new index over the survivors. Readers are never blocked: they keep
// serving from the old view until the rebuilt graph is published with one
// atomic swap.
func (ix *Index) Compact() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	old := ix.view.Load()
	ix.rng = rand.New(rand.NewSource(ix.cfg.Seed))
	ix.rngDraws = 0
	ix.byID = make(map[string]int, old.live)
	ix.copied = ix.copied[:0]
	ix.batch++
	g := &graph{dim: ix.dim, entry: -1, maxLvl: -1}
	for i := range old.ids {
		if old.deleted[i] {
			continue
		}
		ix.addLocked(g, old.ids[i], old.vecAt(i))
		// Same reads-first yield as AddBatch: searches keep serving the
		// pre-compaction view, so the only thing a long rebuild can cost
		// readers on a saturated box is run-queue wait — cap it at one
		// insert.
		runtime.Gosched()
	}
	ix.publish(g)
}

// AdoptFrom atomically replaces this index's contents with donor's: the
// published view and the complete writer state (level generator, ID map,
// batch stamps) move over, so subsequent Adds behave exactly as they would
// have on the donor. Readers of this index are never blocked — they keep
// serving the old view until the donor's graph is published with one
// atomic swap. The donor must not be used afterwards; it exists so
// background segment compaction can build a shadow index off-lock and
// install it in O(1) under the shard writer lock.
func (ix *Index) AdoptFrom(donor *Index) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	donor.mu.Lock()
	defer donor.mu.Unlock()
	ix.rng = donor.rng
	ix.rngDraws = donor.rngDraws
	ix.byID = donor.byID
	ix.copied = donor.copied
	ix.batch = donor.batch
	ix.linksBatch = donor.linksBatch
	ix.delBatch = donor.delBatch
	// Publish a copy of the donor's graph header: publish stamps g.quant
	// in place, and the donor's own view must stay untouched in case it
	// still has readers mid-search.
	g := *donor.view.Load()
	ix.publish(&g)
}

// Result is one nearest-neighbour hit.
type Result struct {
	ID string
	// Score is cosine similarity in [-1,1]; higher is better.
	Score float32
}

// Search returns up to k nearest neighbours of query by cosine similarity
// (vectors are compared by squared L2, equivalent for unit vectors), using
// the index's default ef.
func (ix *Index) Search(query []float32, k int) ([]Result, error) {
	return ix.SearchEf(query, k, ix.cfg.EfSearch)
}

// SearchEf is Search with an explicit beam width ef (clamped to ≥ k). It
// never blocks on writers: the whole search runs against the view
// published by the most recent completed batch.
func (ix *Index) SearchEf(query []float32, k, ef int) ([]Result, error) {
	if len(query) != ix.dim {
		return nil, fmt.Errorf("hnsw: query has dim %d, index wants %d", len(query), ix.dim)
	}
	if k <= 0 {
		return nil, nil
	}
	if ef < k {
		ef = k
	}
	g := ix.view.Load()
	if g.entry < 0 {
		return nil, nil
	}

	s := scratchPool.Get().(*searchScratch)
	defer scratchPool.Put(s)
	bound := 2 * ix.cfg.M
	if ef > bound {
		bound = ef
	}
	s.prep(bound, g.quant)

	if g.quant {
		return ix.searchQuantized(g, s, query, k, ef), nil
	}

	ep := g.entry
	for lvl := g.maxLvl; lvl > 0; lvl-- {
		ep = g.greedyClosest(s, query, ep, lvl)
	}
	cands := g.searchLayer(s, query, ep, ef, 0)
	qNorm := vecmath.Norm(query)
	out := make([]Result, 0, k)
	for _, c := range cands {
		ci := int(c.idx)
		if g.deleted[ci] {
			continue
		}
		out = append(out, Result{
			ID:    g.ids[ci],
			Score: vecmath.CosineWithNorms(query, g.vecAt(ci), qNorm, g.norms[ci]),
		})
		if len(out) == k {
			break
		}
	}
	return out, nil
}

// randomLevel draws the node level from the exponential distribution of the
// HNSW paper: floor(-ln(U) · mL).
func (ix *Index) randomLevel() int {
	ix.rngDraws++
	u := ix.rng.Float64()
	for u == 0 {
		ix.rngDraws++
		u = ix.rng.Float64()
	}
	return int(math.Floor(-math.Log(u) * ix.levelM))
}

// greedyClosest walks layer lvl greedily toward query from ep and returns
// the local minimum. Each hop scores the node's whole adjacency list with
// one batched call — the list is an immutable-once-published []int32 of
// arena slots, so it feeds SquaredL2Batch directly with no copy. Scanning
// the scores in list order with the same strict comparison reproduces the
// per-neighbor walk exactly.
func (g *graph) greedyClosest(s *searchScratch, query []float32, ep, lvl int) int {
	cur := ep
	curDist := vecmath.SquaredL2(query, g.vecAt(cur))
	for {
		improved := false
		nbs := g.links[cur]
		if lvl < len(nbs) && len(nbs[lvl]) > 0 {
			adj := nbs[lvl]
			dists := s.distBuf(len(adj))
			vecmath.SquaredL2Batch(query, g.vecs, g.dim, adj, dists)
			for j, nb := range adj {
				if d := dists[j]; d < curDist {
					cur, curDist = int(nb), d
					improved = true
				}
			}
		}
		if !improved {
			return cur
		}
	}
}

// cand pairs a node slot with its distance to the query.
type cand struct {
	idx  int32
	dist float32
}

// candHeap is a binary heap of candidates ordered by distance: a min-heap
// by default, a max-heap when max is set. One concrete type replaces the
// former container/heap min/max pair, so pushes and pops move 8-byte cand
// values directly instead of boxing them through interface{}.
type candHeap struct {
	items []cand
	max   bool
}

func (h *candHeap) len() int  { return len(h.items) }
func (h *candHeap) top() cand { return h.items[0] }
func (h *candHeap) reset()    { h.items = h.items[:0] }
func (h *candHeap) before(a, b cand) bool {
	if h.max {
		return a.dist > b.dist
	}
	return a.dist < b.dist
}

func (h *candHeap) push(c cand) {
	h.items = append(h.items, c)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.before(h.items[i], h.items[p]) {
			break
		}
		h.items[i], h.items[p] = h.items[p], h.items[i]
		i = p
	}
}

func (h *candHeap) pop() cand {
	it := h.items
	root := it[0]
	n := len(it) - 1
	it[0] = it[n]
	h.items = it[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && h.before(it[r], it[c]) {
			c = r
		}
		if !h.before(it[c], it[i]) {
			break
		}
		it[i], it[c] = it[c], it[i]
		i = c
	}
	return root
}

// searchScratch is the reusable per-search working state: both beam-search
// heaps, the epoch-stamped visited array and the output buffer. Instances
// cycle through scratchPool; see the package comment for the lifecycle
// rules (no retention past the search, GC may drop pooled instances).
type searchScratch struct {
	visited []uint32
	epoch   uint32
	cands   candHeap // min-heap: next candidate to expand
	results candHeap // max-heap: worst of the ef best so far on top
	out     []cand
	qvec    []int8    // quantized-query codes (Quantize searches only)
	resc    []cand    // exact-rescore buffer (Quantize searches only)
	batch   []int32   // unvisited-candidate collect buffer for batched scoring
	dists   []float32 // batched float32 distance/dot outputs
	qdots   []int32   // batched int8 dot outputs (Quantize searches only)
}

var scratchPool = sync.Pool{
	New: func() any {
		return &searchScratch{results: candHeap{max: true}}
	},
}

// prep sizes the batched-scoring buffers up front for a search whose
// collect sets are bounded by n (the layer-0 adjacency cap, or the beam
// width if wider), so a fresh scratch pays one fixed allocation per
// buffer instead of regrowing them mid-search. quant additionally sizes
// the int8 dot output buffer.
func (s *searchScratch) prep(n int, quant bool) {
	if cap(s.batch) < n {
		s.batch = make([]int32, 0, n)
	}
	if cap(s.dists) < n {
		s.dists = make([]float32, n)
	}
	if quant && cap(s.qdots) < n {
		s.qdots = make([]int32, n)
	}
}

// distBuf returns a float32 output buffer with room for n batched scores,
// reusing (and growing) the pooled backing array so steady-state searches
// allocate nothing.
func (s *searchScratch) distBuf(n int) []float32 {
	if cap(s.dists) < n {
		s.dists = make([]float32, n)
	}
	return s.dists[:n]
}

// qdotBuf is distBuf for the quantized tier's int32 dot products.
func (s *searchScratch) qdotBuf(n int) []int32 {
	if cap(s.qdots) < n {
		s.qdots = make([]int32, n)
	}
	return s.qdots[:n]
}

// begin readies the scratch for a search over n node slots: both heaps are
// emptied and the visited epoch advances, invalidating every mark left by
// earlier searches (against this index or any other sharing the pool)
// without touching the array. On epoch wrap-around the array is zeroed so
// stale uint32 stamps from 2^32 searches ago cannot collide.
func (s *searchScratch) begin(n int) {
	s.cands.reset()
	s.results.reset()
	if cap(s.visited) < n {
		grown := make([]uint32, n)
		s.visited = grown
		s.epoch = 0
	}
	s.visited = s.visited[:cap(s.visited)]
	s.epoch++
	if s.epoch == 0 {
		clear(s.visited)
		s.epoch = 1
	}
}

// searchLayer is Algorithm 2: ef-bounded best-first search on one layer.
// Neighbor expansion is batched: the unvisited part of the adjacency list
// is collected first, scored with one SquaredL2Batch call against the
// vector arena, then pushed in list order. The batched kernels are
// bit-identical to single calls and scoring has no side effects, so the
// heap evolves exactly as it did when each neighbor was scored inline —
// results are unchanged, only the per-neighbor dispatch and call overhead
// is gone. The result is sorted ascending by distance and aliases
// s.out — it is valid only until the next search using the same scratch.
func (g *graph) searchLayer(s *searchScratch, query []float32, ep, ef, lvl int) []cand {
	s.begin(len(g.ids))
	s.visited[ep] = s.epoch
	epDist := vecmath.SquaredL2(query, g.vecAt(ep))
	s.cands.push(cand{int32(ep), epDist})
	s.results.push(cand{int32(ep), epDist})

	for s.cands.len() > 0 {
		c := s.cands.pop()
		if s.results.len() >= ef && c.dist > s.results.top().dist {
			break
		}
		nbs := g.links[c.idx]
		if lvl < len(nbs) {
			batch := s.batch[:0]
			for _, nb := range nbs[lvl] {
				if s.visited[nb] == s.epoch {
					continue
				}
				s.visited[nb] = s.epoch
				batch = append(batch, nb)
			}
			s.batch = batch
			if len(batch) == 0 {
				continue
			}
			dists := s.distBuf(len(batch))
			vecmath.SquaredL2Batch(query, g.vecs, g.dim, batch, dists)
			for j, nb := range batch {
				d := dists[j]
				if s.results.len() < ef || d < s.results.top().dist {
					s.cands.push(cand{nb, d})
					s.results.push(cand{nb, d})
					if s.results.len() > ef {
						s.results.pop()
					}
				}
			}
		}
	}
	n := s.results.len()
	if cap(s.out) < n {
		s.out = make([]cand, n)
	}
	out := s.out[:n]
	for i := n - 1; i >= 0; i-- {
		out[i] = s.results.pop()
	}
	return out
}

// selectHeuristic is Algorithm 4: pick up to m diverse neighbours — a
// candidate is kept only if it is closer to the query than to every
// already-kept neighbour.
func (g *graph) selectHeuristic(query []float32, cands []cand, m int) []cand {
	if len(cands) <= m {
		return cands
	}
	kept := make([]cand, 0, m)
	for _, c := range cands {
		if len(kept) >= m {
			break
		}
		ok := true
		for _, k := range kept {
			if vecmath.SquaredL2(g.vecAt(int(c.idx)), g.vecAt(int(k.idx))) < c.dist {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, c)
		}
	}
	// Backfill with nearest rejected candidates if diversity pruned too hard.
	if len(kept) < m {
		seen := make(map[int32]struct{}, len(kept))
		for _, k := range kept {
			seen[k.idx] = struct{}{}
		}
		for _, c := range cands {
			if len(kept) >= m {
				break
			}
			if _, dup := seen[c.idx]; !dup {
				kept = append(kept, c)
			}
		}
	}
	return kept
}

// link adds a bidirectional edge a↔b on layer lvl, shrinking neighbour
// lists that exceed maxLinks via the selection heuristic.
func (ix *Index) link(g *graph, a, b, lvl, maxLinks int) {
	if a == b {
		return
	}
	ix.addEdge(g, a, b, lvl, maxLinks)
	ix.addEdge(g, b, a, lvl, maxLinks)
}

func (ix *Index) addEdge(g *graph, from, to, lvl, maxLinks int) {
	if lvl >= len(g.links[from]) {
		return
	}
	for _, existing := range g.links[from][lvl] {
		if int(existing) == to {
			return
		}
	}
	nbs := ix.writableLinks(g, from)
	nbs[lvl] = append(nbs[lvl], int32(to))
	if len(nbs[lvl]) > maxLinks {
		// Re-select the best maxLinks neighbours relative to this node.
		vec := g.vecAt(from)
		cands := make([]cand, 0, len(nbs[lvl]))
		for _, nb := range nbs[lvl] {
			cands = append(cands, cand{nb, vecmath.SquaredL2(vec, g.vecAt(int(nb)))})
		}
		sortCands(cands)
		kept := g.selectHeuristic(vec, cands, maxLinks)
		links := make([]int32, 0, len(kept))
		for _, k := range kept {
			links = append(links, k.idx)
		}
		nbs[lvl] = links
	}
}

// sortCands orders a neighbour candidate list ascending by distance. Still
// needed by addEdge's overflow re-selection (which never goes through the
// beam-search heaps); insertion sort, because neighbour lists are tiny
// (≤ 2M+1).
func sortCands(cs []cand) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].dist < cs[j-1].dist; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}
