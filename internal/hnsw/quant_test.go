package hnsw

import (
	"fmt"
	"math/rand"
	"testing"

	"pneuma/internal/vecmath"
	"pneuma/internal/wire"
)

// unitVec returns a deterministic unit-norm vector, matching the
// embedder's output convention (the index compares by squared L2, which
// ranks identically to cosine only for unit vectors — the recall metric
// below depends on that equivalence).
func unitVec(rng *rand.Rand, dim int) []float32 {
	vec := make([]float32, dim)
	for d := range vec {
		vec[d] = rng.Float32()*2 - 1
	}
	n := vecmath.Norm(vec)
	for d := range vec {
		vec[d] /= n
	}
	return vec
}

// buildPair populates an unquantized and a quantized index with the same
// deterministic corpus and returns them alongside the raw vectors by ID.
func buildPair(t *testing.T, dim, n int) (base, quant *Index, vecs map[string][]float32) {
	t.Helper()
	base = New(dim, Config{Seed: 42})
	quant = New(dim, Config{Seed: 42, Quantize: true})
	vecs = make(map[string][]float32, n)
	rng := rand.New(rand.NewSource(2026))
	for i := 0; i < n; i++ {
		vec := unitVec(rng, dim)
		id := fmt.Sprintf("v%04d", i)
		vecs[id] = vec
		if err := base.Add(id, vec); err != nil {
			t.Fatal(err)
		}
		if err := quant.Add(id, vec); err != nil {
			t.Fatal(err)
		}
	}
	return base, quant, vecs
}

// TestQuantizedRecallAndExactScores is the speed tier's accuracy contract:
// over a 1k corpus, quantized top-10 overlaps unquantized top-10 at ≥0.98
// average recall, and every score the quantized path returns is the exact
// float32 cosine — bit-identical to what the unquantized path would assign
// that document — so quantization can reorder only by changing which
// candidates reach the rescore set, never the numbers attached to them.
func TestQuantizedRecallAndExactScores(t *testing.T) {
	const dim, n, k, queries = 64, 1000, 10, 50
	base, quant, vecs := buildPair(t, dim, n)

	var hit, total int
	for qi := int64(0); qi < queries; qi++ {
		query := unitVec(rand.New(rand.NewSource(1000+qi)), dim)
		qNorm := vecmath.Norm(query)
		exact, err := base.Search(query, k)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := quant.Search(query, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(approx) != k {
			t.Fatalf("query %d: quantized returned %d results, want %d", qi, len(approx), k)
		}
		want := make(map[string]bool, k)
		for _, r := range exact {
			want[r.ID] = true
		}
		for _, r := range approx {
			if want[r.ID] {
				hit++
			}
			// Exact-rescore contract: the returned score is the float32
			// cosine of the stored vector, not a dequantized estimate.
			ref := vecmath.CosineWithNorms(query, vecs[r.ID], qNorm, vecmath.Norm(vecs[r.ID]))
			if r.Score != ref {
				t.Fatalf("query %d: score for %s = %v, exact cosine %v", qi, r.ID, r.Score, ref)
			}
		}
		total += k
	}
	recall := float64(hit) / float64(total)
	t.Logf("recall@%d over %d queries: %.4f", k, queries, recall)
	if recall < 0.98 {
		t.Fatalf("recall@%d = %.4f, want >= 0.98", k, recall)
	}
}

// TestQuantizedArenaRatio pins the memory claim: at the embedder's
// dimensionality the complete int8 side (codes + per-vector constants)
// costs at most 30% of the float32 arena.
func TestQuantizedArenaRatio(t *testing.T) {
	const dim, n = 256, 200
	ix := New(dim, Config{Seed: 7, Quantize: true})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		vec := make([]float32, dim)
		for d := range vec {
			vec[d] = rng.Float32()*2 - 1
		}
		if err := ix.Add(fmt.Sprintf("v%03d", i), vec); err != nil {
			t.Fatal(err)
		}
	}
	f, q := ix.ArenaBytes()
	if f != n*dim*4 {
		t.Fatalf("float32 arena = %d bytes, want %d", f, n*dim*4)
	}
	if ratio := float64(q) / float64(f); ratio > 0.30 {
		t.Fatalf("int8 arena is %.1f%% of float32 (%d / %d bytes), want <= 30%%", ratio*100, q, f)
	}
}

// TestQuantizedSnapshotRoundTrip restores a quantized snapshot and checks
// searches stay bit-identical; then cross-restores an unquantized snapshot
// into a quantized index (requantize path) and a quantized snapshot into
// an unquantized index (arenas dropped) and checks each behaves exactly
// like a directly built index of that configuration.
func TestQuantizedSnapshotRoundTrip(t *testing.T) {
	const dim, n, k = 32, 300, 10
	base, quant, _ := buildPair(t, dim, n)
	for i := 0; i < n; i += 9 {
		id := fmt.Sprintf("v%04d", i)
		base.Delete(id)
		quant.Delete(id)
	}

	var wq, wb wire.Writer
	quant.AppendSnapshot(&wq)
	base.AppendSnapshot(&wb)

	check := func(name string, want, got *Index) {
		t.Helper()
		if got.Len() != want.Len() {
			t.Fatalf("%s: Len = %d, want %d", name, got.Len(), want.Len())
		}
		for qi := int64(0); qi < 20; qi++ {
			query := unitVec(rand.New(rand.NewSource(500+qi)), dim)
			a, err := want.Search(query, k)
			if err != nil {
				t.Fatal(err)
			}
			b, err := got.Search(query, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(a) != len(b) {
				t.Fatalf("%s: query %d: %d vs %d results", name, qi, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s: query %d rank %d: %+v vs %+v", name, qi, i, a[i], b[i])
				}
			}
		}
	}

	// Quantized snapshot → quantized index: arenas adopted wholesale.
	rq := New(dim, Config{Seed: 42, Quantize: true})
	if err := rq.LoadSnapshot(wire.NewSharedReader(wq.Bytes())); err != nil {
		t.Fatal(err)
	}
	check("quant->quant", quant, rq)

	// Unquantized snapshot → quantized index: int8 arenas rebuilt from the
	// float32 arena; quantizeVec is deterministic so results must match a
	// quantized index built by Adds.
	rr := New(dim, Config{Seed: 42, Quantize: true})
	if err := rr.LoadSnapshot(wire.NewSharedReader(wb.Bytes())); err != nil {
		t.Fatal(err)
	}
	check("plain->quant (requantize)", quant, rr)

	// Quantized snapshot → unquantized index: quantized arenas are parsed
	// and dropped; behaves exactly like the unquantized original.
	rp := New(dim, Config{Seed: 42})
	if err := rp.LoadSnapshot(wire.NewSharedReader(wq.Bytes())); err != nil {
		t.Fatal(err)
	}
	check("quant->plain", base, rp)
}

// TestQuantizeDegenerateVectors exercises the scale-0 paths: constant and
// all-zero vectors must quantize without NaN/Inf and remain searchable.
func TestQuantizeDegenerateVectors(t *testing.T) {
	const dim = 8
	ix := New(dim, Config{Seed: 3, Quantize: true})
	constant := make([]float32, dim)
	for i := range constant {
		constant[i] = 0.5
	}
	zero := make([]float32, dim)
	varied := []float32{0.9, -0.2, 0.4, 0.1, -0.8, 0.3, 0.0, 0.7}
	for id, v := range map[string][]float32{"const": constant, "zero": zero, "varied": varied} {
		if err := ix.Add(id, v); err != nil {
			t.Fatal(err)
		}
	}
	res, err := ix.Search(constant, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d results, want 3", len(res))
	}
	if res[0].ID != "const" {
		t.Fatalf("top result %q, want the constant vector itself", res[0].ID)
	}
	for _, r := range res {
		if r.Score != r.Score || r.Score > 1.001 || r.Score < -1.001 {
			t.Fatalf("degenerate score out of range: %+v", r)
		}
	}

	// quantizeVec on a constant vector: zero codes, exact offset.
	dst := make([]int8, dim)
	scale, off, sum := quantizeVec(dst, constant)
	if scale != 0 || off != 0.5 || sum != 0 {
		t.Fatalf("constant vector: scale=%v off=%v sum=%v, want 0, 0.5, 0", scale, off, sum)
	}
	for _, c := range dst {
		if c != 0 {
			t.Fatalf("constant vector produced nonzero code %d", c)
		}
	}
}

// TestQuantizedGraphIdentical verifies the construction contract: the
// graph (links, levels, entry point) is bit-identical with Quantize on and
// off, because construction always runs on float32 distances.
func TestQuantizedGraphIdentical(t *testing.T) {
	const dim, n = 16, 200
	baseIx, quantIx, _ := buildPair(t, dim, n)
	base, quant := baseIx.view.Load(), quantIx.view.Load()
	if base.entry != quant.entry || base.maxLvl != quant.maxLvl {
		t.Fatalf("entry/maxLvl diverge: (%d,%d) vs (%d,%d)", base.entry, base.maxLvl, quant.entry, quant.maxLvl)
	}
	for i := range base.links {
		if len(base.links[i]) != len(quant.links[i]) {
			t.Fatalf("node %d: layer count %d vs %d", i, len(base.links[i]), len(quant.links[i]))
		}
		for l := range base.links[i] {
			a, b := base.links[i][l], quant.links[i][l]
			if len(a) != len(b) {
				t.Fatalf("node %d layer %d: %d vs %d links", i, l, len(a), len(b))
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("node %d layer %d link %d: %d vs %d", i, l, j, a[j], b[j])
				}
			}
		}
	}
}
