package hnsw

import (
	"math"

	"pneuma/internal/vecmath"
)

// DefaultRescoreFactor is the exact-rescore over-fetch multiplier used
// when Config.RescoreFactor is unset: the quantized beam's top
// k·DefaultRescoreFactor candidates are rescored with float32 math before
// the top k are returned.
const DefaultRescoreFactor = 4

// Scalar quantization scheme. Every vector is stored (alongside its exact
// float32 form) as dim int8 codes plus three per-vector constants:
//
//	v[i] ≈ off + scale·q[i],  q[i] ∈ [-127, 127]
//
// with off = (min+max)/2 and scale = (max-min)/254, the affine map that
// spreads the vector's own value range across the full int8 range. The
// dot product of two quantized vectors then expands to
//
//	dot(a,b) ≈ sa·sb·Σqa·qb + sa·oa'…  (see graph.qdist)
//
// where the only O(dim) term, Σ qa[i]·qb[i], is the int32 DotInt8 kernel;
// Σ q[i] is precomputed per vector at Add time. Squared L2 distance is
// derived from the approximate dot and the exact stored norms, so only
// the cross term is approximated.

// quantizeVec fills dst (len == len(v)) with the int8 codes of v and
// returns the per-vector constants. A constant vector (max == min) gets
// scale 0 and all-zero codes, which reconstructs exactly as off.
// Rounding goes through float64 math.Round, so codes are deterministic
// across platforms.
func quantizeVec(dst []int8, v []float32) (scale, off float32, sum int32) {
	if len(v) == 0 {
		return 0, 0, 0
	}
	lo, hi := v[0], v[0]
	for _, x := range v[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	off = (lo + hi) / 2
	scale = (hi - lo) / 254
	if scale == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return 0, off, 0
	}
	inv := 1 / float64(scale)
	for i, x := range v {
		q := math.Round(float64(x-off) * inv)
		if q > 127 {
			q = 127
		} else if q < -127 {
			q = -127
		}
		dst[i] = int8(q)
		sum += int32(q)
	}
	return scale, off, sum
}

// appendQuantized quantizes the newest arena slot of the draft (which must
// already hold vec) into the int8 arenas, keeping them slot-parallel with
// the float32 arena. Writer-batch only: the appends grow the draft's
// arenas past the published length, which readers never touch.
func appendQuantized(g *graph, vec []float32) {
	n := len(g.qvecs)
	g.qvecs = append(g.qvecs, make([]int8, g.dim)...)
	scale, off, sum := quantizeVec(g.qvecs[n:n+g.dim], vec)
	g.qscale = append(g.qscale, scale)
	g.qoff = append(g.qoff, off)
	g.qsum = append(g.qsum, sum)
}

// requantize rebuilds the int8 arenas of a not-yet-published draft from
// its float32 arena — used when a snapshot without quantized sections is
// loaded into an index with Quantize on. Tombstoned slots are quantized
// too: traversal routes through them.
func requantize(g *graph) {
	n := len(g.ids)
	g.qvecs = make([]int8, n*g.dim)
	g.qscale = make([]float32, n)
	g.qoff = make([]float32, n)
	g.qsum = make([]int32, n)
	for i := 0; i < n; i++ {
		g.qscale[i], g.qoff[i], g.qsum[i] = quantizeVec(g.qvecs[i*g.dim:(i+1)*g.dim], g.vecAt(i))
	}
}

// qvecAt returns slot i's int8 codes.
func (g *graph) qvecAt(i int) []int8 {
	return g.qvecs[i*g.dim : (i+1)*g.dim]
}

// ArenaBytes reports the byte sizes of the float32 vector arena and of the
// complete quantized side (codes plus per-vector constants); the second
// value is 0 when quantization is off. Exposed for the bench harness's
// memory accounting.
func (ix *Index) ArenaBytes() (float32Bytes, int8Bytes int) {
	g := ix.view.Load()
	f := len(g.vecs) * 4
	q := len(g.qvecs) + (len(g.qscale)+len(g.qoff)+len(g.qsum))*4
	return f, q
}

// qquery is the per-search quantized form of the query vector, carrying
// the query-constant factors of the distance expansion pre-folded (cDot,
// cOff, cSum, norm2) so the per-candidate cost is the int8 dot plus five
// multiply-adds. vec aliases the search scratch.
type qquery struct {
	vec   []int8
	scale float32
	off   float32
	sum   int32
	norm  float32 // exact float32 norm of the original query
	norm2 float32 // norm·norm
	cDot  float32 // 2·scale — coefficient of qscale[i]·dotInt8
	cOff  float32 // 2·(scale·sum + dim·off) — coefficient of qoff[i]
	cSum  float32 // 2·off — coefficient of qscale[i]·qsum[i]
}

// quantizeQuery quantizes the query once into the scratch buffer; every
// candidate scored during this search reuses the codes and the folded
// coefficients.
func (s *searchScratch) quantizeQuery(query []float32) qquery {
	if cap(s.qvec) < len(query) {
		s.qvec = make([]int8, len(query))
	}
	s.qvec = s.qvec[:len(query)]
	var q qquery
	q.vec = s.qvec
	q.scale, q.off, q.sum = quantizeVec(q.vec, query)
	q.norm = vecmath.Norm(query)
	q.norm2 = q.norm * q.norm
	q.cDot = 2 * q.scale
	q.cOff = 2 * (q.scale*float32(q.sum) + float32(len(query))*q.off)
	q.cSum = 2 * q.off
	return q
}

// qdist returns the approximate squared L2 distance between the quantized
// query and slot i: ‖q‖² + ‖v‖² − 2·dot(q,v), with the exact stored norms
// and the cross term expanded over the quantized forms — the
// query-constant factors live pre-folded in q. The float32 combination
// has a fixed evaluation order, so distances are deterministic run to
// run.
func (g *graph) qdist(q *qquery, i int) float32 {
	return g.qdistWith(q, i, vecmath.DotInt8(q.vec, g.qvecAt(i)))
}

// qdistWith is qdist with the int8 dot product already in hand — the
// shared tail of the single and batched scoring paths. The float32
// combination has a fixed evaluation order, so a batched caller gets the
// exact distance qdist would compute (DotInt8Batch is bit-identical to
// DotInt8 by the integer-exactness argument on the kernel).
func (g *graph) qdistWith(q *qquery, i int, qd int32) float32 {
	sc := g.qscale[i]
	cross := q.cDot*sc*float32(qd) + q.cOff*g.qoff[i] + q.cSum*sc*float32(g.qsum[i])
	n := g.norms[i]
	return q.norm2 + n*n - cross
}

// greedyClosestQ is greedyClosest on the int8 arena: each hop scores the
// whole adjacency list with one DotInt8Batch call, then folds the
// per-candidate constants in list order.
func (g *graph) greedyClosestQ(s *searchScratch, q *qquery, ep, lvl int) int {
	cur := ep
	curDist := g.qdist(q, cur)
	for {
		improved := false
		nbs := g.links[cur]
		if lvl < len(nbs) && len(nbs[lvl]) > 0 {
			adj := nbs[lvl]
			qds := s.qdotBuf(len(adj))
			vecmath.DotInt8Batch(q.vec, g.qvecs, g.dim, adj, qds)
			for j, nb := range adj {
				if d := g.qdistWith(q, int(nb), qds[j]); d < curDist {
					cur, curDist = int(nb), d
					improved = true
				}
			}
		}
		if !improved {
			return cur
		}
	}
}

// searchLayerQ is searchLayer (Algorithm 2) on the int8 arena. The body is
// duplicated rather than parameterized by a distance closure so the hot
// loop stays free of indirect calls and allocations. Neighbor expansion is
// batched exactly like searchLayer's: collect the unvisited candidate
// block, one DotInt8Batch call, then push in list order.
func (g *graph) searchLayerQ(s *searchScratch, q *qquery, ep, ef, lvl int) []cand {
	s.begin(len(g.ids))
	s.visited[ep] = s.epoch
	epDist := g.qdist(q, ep)
	s.cands.push(cand{int32(ep), epDist})
	s.results.push(cand{int32(ep), epDist})

	for s.cands.len() > 0 {
		c := s.cands.pop()
		if s.results.len() >= ef && c.dist > s.results.top().dist {
			break
		}
		nbs := g.links[c.idx]
		if lvl < len(nbs) {
			batch := s.batch[:0]
			for _, nb := range nbs[lvl] {
				if s.visited[nb] == s.epoch {
					continue
				}
				s.visited[nb] = s.epoch
				batch = append(batch, nb)
			}
			s.batch = batch
			if len(batch) == 0 {
				continue
			}
			qds := s.qdotBuf(len(batch))
			vecmath.DotInt8Batch(q.vec, g.qvecs, g.dim, batch, qds)
			for j, nb := range batch {
				d := g.qdistWith(q, int(nb), qds[j])
				if s.results.len() < ef || d < s.results.top().dist {
					s.cands.push(cand{nb, d})
					s.results.push(cand{nb, d})
					if s.results.len() > ef {
						s.results.pop()
					}
				}
			}
		}
	}
	n := s.results.len()
	if cap(s.out) < n {
		s.out = make([]cand, n)
	}
	out := s.out[:n]
	for i := n - 1; i >= 0; i-- {
		out[i] = s.results.pop()
	}
	return out
}

// searchQuantized is the quantized query path: greedy descent and the
// layer-0 beam run on int8 codes, then the top k·RescoreFactor live
// candidates are rescored with exact float32 CosineWithNorms and sorted
// by (score desc, ID asc). Returned scores are bit-identical to what the
// unquantized path computes for the same nodes; quantization can only
// change *which* candidates reach the rescore set, which is what the
// recall@k metric measures.
func (ix *Index) searchQuantized(g *graph, s *searchScratch, query []float32, k, ef int) []Result {
	q := s.quantizeQuery(query)
	ep := g.entry
	for lvl := g.maxLvl; lvl > 0; lvl-- {
		ep = g.greedyClosestQ(s, &q, ep, lvl)
	}
	// Rescore the top k·RescoreFactor beam candidates, capped by the beam
	// itself: a wider rescore cannot recover vectors the beam never
	// surfaced, so inflating ef to match the factor would only re-widen
	// the traversal the tier exists to cheapen. The beam stays exactly as
	// wide as the unquantized path's.
	rescore := k * ix.cfg.RescoreFactor
	cands := g.searchLayerQ(s, &q, ep, ef, 0)

	// The rescore set is scored with one DotBatch call over the float32
	// arena; dividing by the stored norms afterwards reproduces
	// CosineWithNorms exactly (same guard, same single division, and
	// DotBatch is bit-identical to Dot), so rescored values match the
	// unquantized path's scores bit for bit.
	batch := s.batch[:0]
	for _, c := range cands {
		if g.deleted[c.idx] {
			continue
		}
		batch = append(batch, c.idx)
		if len(batch) == rescore {
			break
		}
	}
	s.batch = batch
	dots := s.distBuf(len(batch))
	vecmath.DotBatch(query, g.vecs, g.dim, batch, dots)
	resc := s.resc[:0]
	for j, ci := range batch {
		var score float32
		if q.norm != 0 && g.norms[ci] != 0 {
			score = dots[j] / (q.norm * g.norms[ci])
		}
		// Negated score as distance: the shared cand sort orders ascending.
		resc = append(resc, cand{ci, -score})
	}
	s.resc = resc
	g.sortRescored(resc)
	out := make([]Result, 0, k)
	for _, c := range resc {
		out = append(out, Result{ID: g.ids[c.idx], Score: -c.dist})
		if len(out) == k {
			break
		}
	}
	return out
}

// sortRescored orders rescored candidates ascending by negated exact
// score with external-ID ties ascending, making the quantized result
// order a pure function of the exact scores. Insertion sort: the set is
// k·RescoreFactor entries, already near-ordered by the beam.
func (g *graph) sortRescored(cs []cand) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && g.rescLess(cs[j], cs[j-1]); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

func (g *graph) rescLess(a, b cand) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return g.ids[a.idx] < g.ids[b.idx]
}
