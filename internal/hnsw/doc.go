// Package hnsw implements the Hierarchical Navigable Small World
// approximate-nearest-neighbour index of Malkov & Yashunin (2018), the
// vector half of Pneuma-Retriever's hybrid index.
//
// The implementation follows the paper's Algorithms 1-5: multi-layer greedy
// search from a single entry point, ef-bounded best-first search per layer,
// and the heuristic neighbour-selection rule that keeps the graph navigable
// by preferring diverse neighbours. Level assignment uses the standard
// exponential distribution with normalization factor 1/ln(M), drawn from a
// seeded deterministic PRNG so index builds are reproducible.
//
// # Memory layout
//
// Nodes are stored struct-of-arrays: all vectors live in one contiguous
// float32 arena (node i's vector is the dim-sized window at i*dim), with
// parallel slices for IDs, levels, tombstone flags, per-layer adjacency
// lists and precomputed vector norms. Beam search therefore walks flat
// slices instead of chasing per-node pointers, and result scoring reuses
// the stored norms instead of recomputing two norms per candidate.
//
// # Search scratch and the sync.Pool lifecycle
//
// The per-search working state — the candidate min-heap, the result
// max-heap, the epoch-stamped visited array and the output buffer — lives
// in a searchScratch obtained from a package-level sync.Pool, so a
// steady-state Search performs no heap allocation beyond the caller-owned
// result slice. Two caveats follow from the sync.Pool contract:
//
//   - Pooled scratch is dropped wholesale at any GC cycle, so the first
//     search after a collection re-grows its heaps and visited array; only
//     steady-state searches are allocation-free. Allocation budgets in
//     tests must leave headroom for that refill.
//   - A scratch must never be retained past the Search call that got it
//     (nothing searchLayerLocked returns may alias scratch memory after
//     the public method returns a fresh []Result), and the visited array
//     is epoch-stamped precisely so a recycled scratch needs no clearing:
//     each search bumps the epoch and stale marks from earlier searches —
//     possibly against other Index instances sharing the pool — compare
//     unequal. On uint32 epoch wrap-around the array is zeroed once.
//
// # Epoch lifecycle: the RCU read path
//
// The index serves reads and writes concurrently without reader locks.
// All read-path state lives in an immutable graph value published behind
// one atomic pointer; Search, Len, ForEachLive and AppendSnapshot load it
// once and use it unlocked for the whole operation. Writers (serialized
// by a mutex readers never touch) open a batch as a shallow copy of the
// published view, clone only what the batch mutates, and publish the
// draft in a single atomic swap. Consequences worth knowing:
//
//   - A reader observes the index exactly as of some publish — batches
//     become visible atomically, never partially. Two loads of the view
//     may differ; one operation's single load is always self-consistent.
//   - Superseded views are retired by the garbage collector when their
//     last reader drains. There is no epoch counter to advance and no
//     grace period to wait out — the Go GC is the reclamation mechanism,
//     which is what makes the scheme safe to expose to arbitrary
//     callers.
//   - Append-only arrays (the vector arena, IDs, levels, norms) are
//     shared between the draft and published views: the draft appends
//     past the published length, possibly in place when spare capacity
//     allows. This is sound because a published view never indexes
//     beyond its own length and slots below it are never rewritten;
//     anything mutated in place (adjacency lists, tombstones) is cloned
//     into the draft first, at most once per batch.
//   - A batch's mutation cost is therefore borne entirely by the writer;
//     what a batch can still cost concurrent readers is the scheduler.
//     AddBatch and Compact yield between inserts (reads-first pacing) so
//     on a saturated machine reader tail latency is bounded by one
//     insert's work — bulk ingest slows down before query p99 does. On
//     an idle machine the yields are nanoseconds.
//   - Nothing returned to a caller aliases the published arrays (results
//     are copied out), so callers cannot extend a view's lifetime by
//     accident — with the one exception of the mmap'd-snapshot aliasing
//     documented below.
//
// # Int8 speed tier (Config.Quantize)
//
// With Quantize on, Add additionally stores a scalar-quantized copy of
// each vector: per-vector offset and scale map the float32 values onto
// int8 codes in [-127, 127], kept in a second contiguous arena one quarter
// the size of the float32 one. Queries then split into two phases:
//
//   - Traversal scores candidates on the int8 arena. The squared-L2
//     surrogate expands the quantized dot product (an int32-accumulating
//     kernel — SSE2 assembly on amd64, an unrolled scalar loop elsewhere,
//     bit-identical by construction and differentially tested) with the
//     exact stored norms and per-vector dequantization coefficients folded
//     into per-query constants. This phase is approximate: quantization
//     error can locally reorder near-ties, which is what the next phase
//     repairs.
//   - Rescoring re-ranks the top k×RescoreFactor traversal candidates
//     (default factor 4, capped at the beam width — a wider rescore cannot
//     recover candidates the beam never surfaced) with the exact float32
//     kernel over the full-precision arena, which is retained for this
//     purpose and for graph construction.
//
// Returned scores are therefore float32-exact — byte-identical to the
// unquantized path's for every candidate that survives both beams — and
// only ranking beyond the rescore horizon can differ. On the reference
// corpus recall@10 versus the unquantized path is ≥ 0.98 (measured 1.0)
// while traversal touches ~4× less memory; the graph itself is built from
// float32 vectors either way, so the knob never changes graph shape.
// The quantized arenas serialize alongside the float32 state, and a
// snapshot restored under WithMmap aliases both arenas zero-copy into the
// mapping — they must not be read after the mapping is unmapped (the
// retriever's Close).
//
// # Serialization
//
// WriteTo/ReadFrom serialize the struct-of-arrays state directly — the
// vector arena, the parallel slices, the adjacency lists, the entry point
// and the level-generator draw count — so a persisted graph is restored
// by a bulk load instead of re-running construction. The restore is exact:
// queries answer bit-identically, and because the level generator is
// fast-forwarded to the writer's stream position, inserts after the
// restore assign the same levels (and therefore build the same graph) as
// they would have on the never-serialized index. Construction parameters
// are not serialized; the reading index must be created with the same
// Config, in particular the same Seed.
package hnsw
