package hnsw

import (
	"fmt"
	"math/rand"
	"testing"
)

// allocIndex builds a 400-vector index for the allocation and benchmark
// tests.
func allocIndex(tb testing.TB, dim int) (*Index, []float32) {
	tb.Helper()
	rng := rand.New(rand.NewSource(42))
	ix := New(dim, Config{Seed: 3})
	for i := 0; i < 400; i++ {
		if err := ix.Add(fmt.Sprintf("v-%03d", i), randomUnit(rng, dim)); err != nil {
			tb.Fatal(err)
		}
	}
	return ix, randomUnit(rng, dim)
}

// searchAllocBudget is the committed per-query allocation ceiling for
// steady-state Search: the returned result slice, plus headroom for the GC
// occasionally dropping the pooled scratch (see the package comment). A
// regression past this budget means per-query garbage crept back into the
// beam search.
const searchAllocBudget = 4

func TestSearchAllocsWithinBudget(t *testing.T) {
	ix, query := allocIndex(t, 32)
	// Warm the scratch pool so the measured runs see steady state.
	for i := 0; i < 10; i++ {
		if _, err := ix.Search(query, 10); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := ix.Search(query, 10); err != nil {
			t.Fatal(err)
		}
	})
	if avg > searchAllocBudget {
		t.Fatalf("steady-state Search allocates %.1f/op, budget is %d", avg, searchAllocBudget)
	}
}

func BenchmarkSearch(b *testing.B) {
	ix, query := allocIndex(b, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Search(query, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchQuantized is BenchmarkSearch on the int8 speed tier:
// same corpus and query, traversal on the quantized arena plus the exact
// float32 rescoring pass. Compare against BenchmarkSearch to see the
// tier's per-query cost delta at cache-resident scale.
func BenchmarkSearchQuantized(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	ix := New(32, Config{Seed: 3, Quantize: true})
	for i := 0; i < 400; i++ {
		if err := ix.Add(fmt.Sprintf("v-%03d", i), randomUnit(rng, 32)); err != nil {
			b.Fatal(err)
		}
	}
	query := randomUnit(rng, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Search(query, 10); err != nil {
			b.Fatal(err)
		}
	}
}
