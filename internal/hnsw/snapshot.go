package hnsw

import (
	"fmt"
	"io"

	"pneuma/internal/wire"
)

// WriteTo serializes the index's struct-of-arrays state — the vector
// arena, the id/level/tombstone/norm slices, the adjacency lists, the
// entry point and the level-generator draw count — as one length-prefixed
// binary section, implementing io.WriterTo. An index restored by ReadFrom
// is bit-identical: it answers every query with the same results and
// assigns the same levels to future inserts. Construction parameters
// (M, EfConstruction, EfSearch, Seed) are NOT serialized; the reading
// index must be created with the same Config.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	var body wire.Writer
	n := len(ix.ids)
	body.Uvarint(uint64(ix.dim))
	body.Uvarint(uint64(n))
	for _, id := range ix.ids {
		body.String(id)
	}
	for _, lvl := range ix.levels {
		body.Uvarint(uint64(lvl))
	}
	for _, d := range ix.deleted {
		if d {
			body.Byte(1)
		} else {
			body.Byte(0)
		}
	}
	body.Float32s(ix.norms)
	body.Float32s(ix.vecs)
	for _, layers := range ix.links {
		body.Uvarint(uint64(len(layers)))
		for _, nbs := range layers {
			body.Uvarint(uint64(len(nbs)))
			for _, nb := range nbs {
				body.Uvarint(uint64(nb))
			}
		}
	}
	body.Varint(int64(ix.entry))
	body.Varint(int64(ix.maxLvl))
	body.Uvarint(uint64(ix.live))
	body.Uvarint(ix.rngDraws)

	var head wire.Writer
	head.Uvarint(uint64(body.Len()))
	if _, err := w.Write(head.Bytes()); err != nil {
		return 0, err
	}
	if _, err := w.Write(body.Bytes()); err != nil {
		return int64(head.Len()), err
	}
	return int64(head.Len() + body.Len()), nil
}

// ReadFrom restores state serialized by WriteTo into an empty index,
// implementing io.ReaderFrom. The index must have been created with the
// same Config (in particular the same Seed) and dimensionality as the
// writer; the level generator is fast-forwarded to the writer's draw
// count, so inserts after the restore build exactly the graph the writing
// index would have built. A malformed or truncated section leaves the
// index unchanged and returns an error.
func (ix *Index) ReadFrom(r io.Reader) (int64, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if len(ix.ids) != 0 {
		return 0, fmt.Errorf("hnsw: ReadFrom into non-empty index")
	}

	br := wire.AsByteScanner(r)
	var read int64
	size, err := wire.ReadUvarint(br, &read)
	if err != nil {
		return read, fmt.Errorf("hnsw: snapshot section header: %w", err)
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(br, buf); err != nil {
		return read, fmt.Errorf("hnsw: snapshot section body: %w", err)
	}
	read += int64(size)

	// The section buffer is owned by the restored index, so strings
	// decode as zero-copy views (wire.NewSharedReader).
	rd := wire.NewSharedReader(buf)
	dim := int(rd.Uvarint())
	n := int(rd.Uvarint())
	if rd.Err() == nil && dim != ix.dim {
		return read, fmt.Errorf("hnsw: snapshot has dim %d, index wants %d", dim, ix.dim)
	}
	// Every node costs at least a few bytes, so a count exceeding the
	// section size is malformed — reject before allocating for it.
	if n < 0 || n > len(buf) {
		return read, fmt.Errorf("hnsw: snapshot section claims %d nodes in %d bytes", n, len(buf))
	}
	ids := make([]string, n)
	for i := range ids {
		ids[i] = rd.String()
	}
	levels := make([]int32, n)
	for i := range levels {
		levels[i] = int32(rd.Uvarint())
	}
	deleted := make([]bool, n)
	for i := range deleted {
		deleted[i] = rd.Byte() != 0
	}
	norms := rd.Float32s()
	vecs := rd.Float32s()
	links := make([][][]int32, n)
	for i := range links {
		nl := int(rd.Uvarint())
		if nl < 0 || nl > rd.Remaining() {
			return read, fmt.Errorf("hnsw: snapshot section claims %d layers in %d bytes", nl, rd.Remaining())
		}
		layers := make([][]int32, nl)
		for l := range layers {
			cnt := int(rd.Uvarint())
			if cnt < 0 || cnt > rd.Remaining() {
				return read, fmt.Errorf("hnsw: snapshot section claims %d links in %d bytes", cnt, rd.Remaining())
			}
			nbs := make([]int32, cnt)
			for j := range nbs {
				nbs[j] = int32(rd.Uvarint())
			}
			layers[l] = nbs
		}
		links[i] = layers
	}
	entry := int(rd.Varint())
	maxLvl := int(rd.Varint())
	live := int(rd.Uvarint())
	draws := rd.Uvarint()
	if err := rd.Err(); err != nil {
		return read, fmt.Errorf("hnsw: snapshot section: %w", err)
	}
	if len(norms) != n || len(vecs) != n*ix.dim || live > n || entry >= n {
		return read, fmt.Errorf("hnsw: snapshot section inconsistent (n=%d norms=%d vecs=%d live=%d entry=%d)",
			n, len(norms), len(vecs), live, entry)
	}

	ix.ids = ids
	ix.levels = levels
	ix.deleted = deleted
	ix.norms = norms
	ix.vecs = vecs
	ix.links = links
	ix.entry = entry
	ix.maxLvl = maxLvl
	ix.live = live
	byID := make(map[string]int, live)
	for i, id := range ids {
		if !deleted[i] {
			byID[id] = i
		}
	}
	ix.byID = byID
	// Replay the level generator's consumed draws so the next Add sees the
	// same stream position a never-serialized index would.
	for ix.rngDraws < draws {
		ix.rngDraws++
		ix.rng.Float64()
	}
	return read, nil
}

// ForEachLive visits every live (non-tombstoned) node in insertion order,
// passing its external ID and vector. The vector aliases the index's
// arena — callers must copy it if they retain it past the callback. The
// walk stops early when fn returns false. Segment compaction uses this to
// rewrite a log with exactly the surviving inserts, in their original
// relative order.
func (ix *Index) ForEachLive(fn func(id string, vec []float32) bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	for i := range ix.ids {
		if ix.deleted[i] {
			continue
		}
		if !fn(ix.ids[i], ix.vecAt(i)) {
			return
		}
	}
}
