package hnsw

import (
	"fmt"

	"pneuma/internal/wire"
)

// AppendSnapshot serializes the index's struct-of-arrays state — the
// id/level/tombstone slices, the adjacency lists, the entry point, the
// level-generator draw count, and the vector arenas — into w. The small
// variable-width fields come first; the bulk arrays (norms, the float32
// arena and, when Quantize is on, the int8 arenas) are written as
// wire aligned blobs, padded relative to the *writer start*. Callers that
// want the blobs mmap-addressable must therefore hand in a writer whose
// offset 0 lands at file offset 0 (the retriever's snapshot writer does).
//
// The view and the level-generator draw count are pinned together under a
// brief writer-lock acquisition; serialization then runs entirely against
// the immutable view, concurrent with both readers and later writers, so
// snapshotting never stalls serving.
//
// An index restored by LoadSnapshot is bit-identical: it answers every
// query with the same results and assigns the same levels to future
// inserts. Construction parameters (M, EfConstruction, EfSearch, Seed,
// Quantize) are NOT serialized; the reading index must be created with a
// compatible Config — Quantize may differ, in which case the quantized
// arenas are dropped or rebuilt from the float32 arena at load.
func (ix *Index) AppendSnapshot(w *wire.Writer) {
	// Pin a (view, rngDraws) pair from a quiesced writer state: between
	// batches the draw count is exactly the one that produced the
	// published view.
	ix.mu.Lock()
	g := ix.view.Load()
	draws := ix.rngDraws
	ix.mu.Unlock()

	n := len(g.ids)
	w.Uvarint(uint64(g.dim))
	w.Uvarint(uint64(n))
	for _, id := range g.ids {
		w.String(id)
	}
	for _, lvl := range g.levels {
		w.Uvarint(uint64(lvl))
	}
	for _, d := range g.deleted {
		if d {
			w.Byte(1)
		} else {
			w.Byte(0)
		}
	}
	for _, layers := range g.links {
		w.Uvarint(uint64(len(layers)))
		for _, nbs := range layers {
			w.Uvarint(uint64(len(nbs)))
			for _, nb := range nbs {
				w.Uvarint(uint64(nb))
			}
		}
	}
	w.Varint(int64(g.entry))
	w.Varint(int64(g.maxLvl))
	w.Uvarint(uint64(g.live))
	w.Uvarint(draws)
	if g.quant {
		w.Byte(1)
	} else {
		w.Byte(0)
	}
	w.Float32Blob(g.norms)
	w.Float32Blob(g.vecs)
	if g.quant {
		w.Float32Blob(g.qscale)
		w.Float32Blob(g.qoff)
		w.Int32Blob(g.qsum)
		w.Int8Blob(g.qvecs)
	}
}

// LoadSnapshot restores state appended by AppendSnapshot into an empty
// index. The reader must be a shared reader over a buffer whose start
// corresponds to the writer's start (so blob alignment lines up); for a
// shared reader on a little-endian host the restored arenas are zero-copy
// views into that buffer — an mmap'd snapshot pages them in lazily, and
// the buffer must outlive the index (see the package comment's mmap
// caveats). The level generator is fast-forwarded to the writer's draw
// count, so inserts after the restore build exactly the graph the writing
// index would have built; appends to the zero-copy arenas reallocate
// (len == cap), never scribbling on the buffer. A malformed or truncated
// section leaves the index unchanged and returns an error.
func (ix *Index) LoadSnapshot(rd *wire.Reader) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if len(ix.view.Load().ids) != 0 {
		return fmt.Errorf("hnsw: LoadSnapshot into non-empty index")
	}

	dim := int(rd.Uvarint())
	n := int(rd.Uvarint())
	if rd.Err() == nil && dim != ix.dim {
		return fmt.Errorf("hnsw: snapshot has dim %d, index wants %d", dim, ix.dim)
	}
	// Every node costs at least a few bytes, so a count exceeding the
	// remaining section is malformed — reject before allocating for it.
	if n < 0 || n > rd.Remaining() {
		return fmt.Errorf("hnsw: snapshot section claims %d nodes in %d bytes", n, rd.Remaining())
	}
	ids := make([]string, n)
	for i := range ids {
		ids[i] = rd.String()
	}
	levels := make([]int32, n)
	for i := range levels {
		levels[i] = int32(rd.Uvarint())
	}
	deleted := make([]bool, n)
	for i := range deleted {
		deleted[i] = rd.Byte() != 0
	}
	links := make([][][]int32, n)
	for i := range links {
		nl := int(rd.Uvarint())
		if nl < 0 || nl > rd.Remaining() {
			return fmt.Errorf("hnsw: snapshot section claims %d layers in %d bytes", nl, rd.Remaining())
		}
		layers := make([][]int32, nl)
		for l := range layers {
			cnt := int(rd.Uvarint())
			if cnt < 0 || cnt > rd.Remaining() {
				return fmt.Errorf("hnsw: snapshot section claims %d links in %d bytes", cnt, rd.Remaining())
			}
			nbs := make([]int32, cnt)
			for j := range nbs {
				nbs[j] = int32(rd.Uvarint())
			}
			layers[l] = nbs
		}
		links[i] = layers
	}
	entry := int(rd.Varint())
	maxLvl := int(rd.Varint())
	live := int(rd.Uvarint())
	draws := rd.Uvarint()
	quant := rd.Byte() != 0
	norms := rd.Float32Blob()
	vecs := rd.Float32Blob()
	var qscale, qoff []float32
	var qsum []int32
	var qvecs []int8
	if quant {
		qscale = rd.Float32Blob()
		qoff = rd.Float32Blob()
		qsum = rd.Int32Blob()
		qvecs = rd.Int8Blob()
	}
	if err := rd.Err(); err != nil {
		return fmt.Errorf("hnsw: snapshot section: %w", err)
	}
	if len(norms) != n || len(vecs) != n*ix.dim || live > n || entry >= n {
		return fmt.Errorf("hnsw: snapshot section inconsistent (n=%d norms=%d vecs=%d live=%d entry=%d)",
			n, len(norms), len(vecs), live, entry)
	}
	if quant && (len(qscale) != n || len(qoff) != n || len(qsum) != n || len(qvecs) != n*ix.dim) {
		return fmt.Errorf("hnsw: snapshot quantized arenas inconsistent (n=%d qscale=%d qoff=%d qsum=%d qvecs=%d)",
			n, len(qscale), len(qoff), len(qsum), len(qvecs))
	}

	g := &graph{
		dim:     ix.dim,
		ids:     ids,
		levels:  levels,
		deleted: deleted,
		norms:   norms,
		vecs:    vecs,
		links:   links,
		entry:   entry,
		maxLvl:  maxLvl,
		live:    live,
	}
	if ix.cfg.Quantize {
		if quant {
			g.qscale, g.qoff, g.qsum, g.qvecs = qscale, qoff, qsum, qvecs
		} else {
			// Snapshot written without quantization: rebuild the int8
			// arenas from the float32 arena (same codes Add would have
			// produced — quantizeVec is deterministic).
			requantize(g)
		}
	}
	byID := make(map[string]int, live)
	for i, id := range ids {
		if !deleted[i] {
			byID[id] = i
		}
	}
	ix.byID = byID
	// The loaded slots were never COW'd by any batch; stamp them 0 (no
	// batch) so the first mutating batch copies before touching them.
	ix.copied = make([]uint64, n)
	// Replay the level generator's consumed draws so the next Add sees the
	// same stream position a never-serialized index would.
	for ix.rngDraws < draws {
		ix.rngDraws++
		ix.rng.Float64()
	}
	ix.publish(g)
	return nil
}

// ForEachLive visits every live (non-tombstoned) node in insertion order,
// passing its external ID and vector. It walks the view current at call
// time, without blocking writers; the vector aliases that view's arena —
// callers must copy it if they retain it past the callback. The walk
// stops early when fn returns false. Segment compaction uses this to
// rewrite a log with exactly the surviving inserts, in their original
// relative order.
func (ix *Index) ForEachLive(fn func(id string, vec []float32) bool) {
	ix.PinLive()(fn)
}

// PinLive pins the view current at call time and returns a walker over
// its live nodes, decoupling the pin from the walk: background compaction
// pins under the shard writer lock (freezing exactly which inserts the
// shadow rebuild will see) and then walks off-lock, possibly much later
// and in chunks, while concurrent writers keep publishing newer views.
// The walker has ForEachLive's contract — insertion order, early stop on
// false, vectors alias the pinned arena — and may be invoked repeatedly;
// each invocation walks the same frozen view.
func (ix *Index) PinLive() func(fn func(id string, vec []float32) bool) {
	g := ix.view.Load()
	return func(fn func(id string, vec []float32) bool) {
		for i := range g.ids {
			if g.deleted[i] {
				continue
			}
			if !fn(g.ids[i], g.vecAt(i)) {
				return
			}
		}
	}
}
