package hnsw

import (
	"fmt"
	"math/rand"
	"testing"

	"pneuma/internal/wire"
)

// snapshotBytes serializes ix through the wire-writer snapshot API.
func snapshotBytes(t *testing.T, ix *Index) []byte {
	t.Helper()
	var w wire.Writer
	ix.AppendSnapshot(&w)
	return w.Bytes()
}

// loadSnapshotBytes restores a snapshot into ix from raw bytes, using a
// shared reader like the retriever's load path does.
func loadSnapshotBytes(ix *Index, raw []byte) error {
	return ix.LoadSnapshot(wire.NewSharedReader(raw))
}

// buildIndex populates an index with n deterministic vectors, deleting
// every seventh, so the serialized state includes tombstones.
func buildIndex(t *testing.T, cfg Config, dim, n int) *Index {
	t.Helper()
	ix := New(dim, cfg)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < n; i++ {
		vec := make([]float32, dim)
		for d := range vec {
			vec[d] = rng.Float32()*2 - 1
		}
		if err := ix.Add(fmt.Sprintf("v%03d", i), vec); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 7 {
		ix.Delete(fmt.Sprintf("v%03d", i))
	}
	return ix
}

// queryVec returns a deterministic query vector.
func queryVec(dim int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float32, dim)
	for d := range v {
		v[d] = rng.Float32()*2 - 1
	}
	return v
}

// TestSnapshotRoundTrip serializes a graph with tombstones and restores
// it into a fresh index: every query must return bit-identical results,
// and — the rng fast-forward contract — inserts after the restore must
// leave both indexes answering identically too.
func TestSnapshotRoundTrip(t *testing.T) {
	const dim, n = 16, 120
	cfg := Config{Seed: 42}
	orig := buildIndex(t, cfg, dim, n)

	raw := snapshotBytes(t, orig)
	restored := New(dim, cfg)
	if err := loadSnapshotBytes(restored, raw); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != orig.Len() {
		t.Fatalf("restored Len = %d, want %d", restored.Len(), orig.Len())
	}
	for q := int64(0); q < 10; q++ {
		query := queryVec(dim, q)
		a, err := orig.Search(query, 10)
		if err != nil {
			t.Fatal(err)
		}
		b, err := restored.Search(query, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("query %d: %d vs %d results", q, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %d rank %d: %+v vs %+v", q, i, a[i], b[i])
			}
		}
	}

	// Continue building both: the restored index's level generator must be
	// at the same stream position, so the graphs stay identical.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		vec := make([]float32, dim)
		for d := range vec {
			vec[d] = rng.Float32()*2 - 1
		}
		id := fmt.Sprintf("post%03d", i)
		if err := orig.Add(id, vec); err != nil {
			t.Fatal(err)
		}
		if err := restored.Add(id, vec); err != nil {
			t.Fatal(err)
		}
	}
	for q := int64(20); q < 26; q++ {
		query := queryVec(dim, q)
		a, _ := orig.Search(query, 10)
		b, _ := restored.Search(query, 10)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("post-restore query %d rank %d: %+v vs %+v", q, i, a[i], b[i])
			}
		}
	}
}

// TestSnapshotErrors covers the refusal paths: restoring into a non-empty
// index, a dimensionality mismatch, and a truncated section.
func TestSnapshotErrors(t *testing.T) {
	const dim = 8
	orig := buildIndex(t, Config{Seed: 1}, dim, 30)
	raw := snapshotBytes(t, orig)

	nonEmpty := buildIndex(t, Config{Seed: 1}, dim, 3)
	if err := loadSnapshotBytes(nonEmpty, raw); err == nil {
		t.Fatal("LoadSnapshot into non-empty index succeeded")
	}
	wrongDim := New(dim+1, Config{Seed: 1})
	if err := loadSnapshotBytes(wrongDim, raw); err == nil {
		t.Fatal("LoadSnapshot with wrong dim succeeded")
	}
	truncated := New(dim, Config{Seed: 1})
	if err := loadSnapshotBytes(truncated, raw[:len(raw)/2]); err == nil {
		t.Fatal("LoadSnapshot of truncated section succeeded")
	}
	if truncated.Len() != 0 {
		t.Fatalf("failed restore mutated the index: Len = %d", truncated.Len())
	}
}

// TestForEachLiveOrder verifies the compaction iterator yields exactly
// the live nodes in insertion order.
func TestForEachLiveOrder(t *testing.T) {
	ix := buildIndex(t, Config{Seed: 5}, 8, 40)
	var ids []string
	ix.ForEachLive(func(id string, vec []float32) bool {
		ids = append(ids, id)
		return true
	})
	if len(ids) != ix.Len() {
		t.Fatalf("visited %d nodes, live %d", len(ids), ix.Len())
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("insertion order violated: %s before %s", ids[i-1], ids[i])
		}
	}
	for _, id := range ids {
		if id[0] != 'v' {
			t.Fatalf("unexpected id %q", id)
		}
	}
}
