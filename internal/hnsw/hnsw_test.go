package hnsw

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"pneuma/internal/vecmath"
)

func randomUnit(rng *rand.Rand, dim int) []float32 {
	v := make([]float32, dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return vecmath.Normalize(v)
}

func TestEmptyIndex(t *testing.T) {
	ix := New(8, Config{Seed: 1})
	res, err := ix.Search(make([]float32, 8), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("empty index returned %d results", len(res))
	}
	if ix.Len() != 0 {
		t.Fatalf("Len = %d, want 0", ix.Len())
	}
}

func TestDimMismatch(t *testing.T) {
	ix := New(8, Config{Seed: 1})
	if err := ix.Add("a", make([]float32, 4)); err == nil {
		t.Fatal("dim mismatch on Add must error")
	}
	_ = ix.Add("a", make([]float32, 8))
	if _, err := ix.Search(make([]float32, 4), 1); err == nil {
		t.Fatal("dim mismatch on Search must error")
	}
}

func TestExactNearestOnSmallSet(t *testing.T) {
	ix := New(4, Config{Seed: 7})
	vecs := map[string][]float32{
		"x": {1, 0, 0, 0},
		"y": {0, 1, 0, 0},
		"z": {0, 0, 1, 0},
		"w": {0.9, 0.1, 0, 0},
	}
	for id, v := range vecs {
		if err := ix.Add(id, vecmath.Normalize(append([]float32(nil), v...))); err != nil {
			t.Fatal(err)
		}
	}
	res, err := ix.Search([]float32{1, 0, 0, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].ID != "x" || res[1].ID != "w" {
		t.Fatalf("nearest = %v, want [x w]", res)
	}
}

func TestRecallAgainstBruteForce(t *testing.T) {
	const (
		n   = 2000
		dim = 32
		k   = 10
	)
	rng := rand.New(rand.NewSource(42))
	ix := New(dim, Config{Seed: 99, M: 16, EfConstruction: 200, EfSearch: 128})
	data := make([][]float32, n)
	for i := 0; i < n; i++ {
		data[i] = randomUnit(rng, dim)
		if err := ix.Add(fmt.Sprintf("v%d", i), data[i]); err != nil {
			t.Fatal(err)
		}
	}
	totalRecall := 0.0
	const queries = 20
	for q := 0; q < queries; q++ {
		query := randomUnit(rng, dim)
		// Brute force top-k.
		type pair struct {
			id   string
			dist float32
		}
		all := make([]pair, n)
		for i := range data {
			all[i] = pair{fmt.Sprintf("v%d", i), vecmath.SquaredL2(query, data[i])}
		}
		sort.Slice(all, func(i, j int) bool { return all[i].dist < all[j].dist })
		truth := make(map[string]struct{}, k)
		for _, p := range all[:k] {
			truth[p.id] = struct{}{}
		}
		res, err := ix.Search(query, k)
		if err != nil {
			t.Fatal(err)
		}
		hit := 0
		for _, r := range res {
			if _, ok := truth[r.ID]; ok {
				hit++
			}
		}
		totalRecall += float64(hit) / float64(k)
	}
	recall := totalRecall / queries
	if recall < 0.85 {
		t.Fatalf("recall@%d = %.3f, want >= 0.85", k, recall)
	}
}

func TestDeleteHidesResults(t *testing.T) {
	ix := New(4, Config{Seed: 3})
	_ = ix.Add("a", []float32{1, 0, 0, 0})
	_ = ix.Add("b", []float32{0.99, 0.01, 0, 0})
	if !ix.Delete("a") {
		t.Fatal("delete existing failed")
	}
	if ix.Delete("a") {
		t.Fatal("double delete should be false")
	}
	res, _ := ix.Search([]float32{1, 0, 0, 0}, 2)
	for _, r := range res {
		if r.ID == "a" {
			t.Fatal("deleted id surfaced in results")
		}
	}
	if ix.Len() != 1 {
		t.Fatalf("Len = %d, want 1", ix.Len())
	}
}

func TestReAddReplacesVector(t *testing.T) {
	ix := New(4, Config{Seed: 3})
	_ = ix.Add("a", []float32{1, 0, 0, 0})
	_ = ix.Add("b", []float32{0, 1, 0, 0})
	// Move "a" to point near b's direction.
	_ = ix.Add("a", []float32{0, 0.99, 0.01, 0})
	res, _ := ix.Search([]float32{0, 1, 0, 0}, 2)
	if len(res) != 2 {
		t.Fatalf("results = %v", res)
	}
	ids := map[string]bool{res[0].ID: true, res[1].ID: true}
	if !ids["a"] || !ids["b"] {
		t.Fatalf("want both a and b near y axis, got %v", res)
	}
	if ix.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ix.Len())
	}
}

func TestDeterministicBuild(t *testing.T) {
	build := func() []Result {
		rng := rand.New(rand.NewSource(5))
		ix := New(16, Config{Seed: 11})
		for i := 0; i < 300; i++ {
			_ = ix.Add(fmt.Sprintf("d%d", i), randomUnit(rng, 16))
		}
		q := randomUnit(rand.New(rand.NewSource(6)), 16)
		res, _ := ix.Search(q, 5)
		return res
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic result sizes %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("non-deterministic results: %v vs %v", a, b)
		}
	}
}

func TestScoresAreDescending(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ix := New(8, Config{Seed: 2})
	for i := 0; i < 100; i++ {
		_ = ix.Add(fmt.Sprintf("v%d", i), randomUnit(rng, 8))
	}
	res, _ := ix.Search(randomUnit(rng, 8), 10)
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score+1e-6 {
			t.Fatalf("scores not descending: %v", res)
		}
	}
}
