package core

import (
	"context"
	"fmt"
	"strings"

	"pneuma/internal/docs"
	"pneuma/internal/llm"
	"pneuma/internal/sqlengine"
	"pneuma/internal/table"
	"pneuma/internal/transform"
)

// Materializer populates T (§3.4). Its "sole purpose is to populate T with
// data, possibly involving integration of multi-source data from IR
// System." It is a context-specialized agent: its prompts contain only what
// integration needs (the spec, the source schemas, the queries in Q), and
// its toolkit is the SQL executor plus the transform toolkit. Tool errors
// feed a bounded repair loop through the model's materialize-plan skill.
type Materializer struct {
	model      llm.Model
	maxRepairs int
	// sampleVals bounds per-column samples in the specialized context.
	sampleVals int
}

// NewMaterializer builds a Materializer. maxRepairs ≤ 0 disables the repair
// loop (the static-pipeline ablation).
func NewMaterializer(model llm.Model, maxRepairs int) *Materializer {
	return &Materializer{model: model, maxRepairs: maxRepairs, sampleVals: 8}
}

// MaterializeResult carries the populated table plus the trace of plans and
// errors (surfaced in the CLI and tested by the repair-loop tests).
type MaterializeResult struct {
	Table   *table.Table
	Plans   []llm.MaterializePlan
	Errors  []string
	Repairs int
}

// Materialize builds the target table for spec out of the retrieved
// documents, running the plan → execute → repair loop. The context bounds
// every planning (model) call; cancellation ends the repair loop early
// with ctx.Err().
func (m *Materializer) Materialize(ctx context.Context, spec llm.TableSpec, retrieved []docs.Document, queries []string) (MaterializeResult, error) {
	var res MaterializeResult

	// Specialized context: only table documents, only integration data.
	var docDTOs []llm.DocInfo
	byName := make(map[string]*table.Table)
	for _, d := range retrieved {
		if d.Table == nil {
			continue
		}
		docDTOs = append(docDTOs, llm.NewDocInfo(d, m.sampleVals))
		byName[strings.ToLower(d.Table.Schema.Name)] = d.Table
	}

	in := llm.MaterializeInput{Spec: spec, Docs: docDTOs, Queries: queries}
	plan, err := m.plan(ctx, in)
	if err != nil {
		return res, err
	}
	res.Plans = append(res.Plans, plan)

	for attempt := 0; ; attempt++ {
		t, execErr := m.execute(plan, spec, byName)
		if execErr == nil {
			res.Table = t
			return res, nil
		}
		res.Errors = append(res.Errors, execErr.Error())
		if attempt >= m.maxRepairs {
			return res, fmt.Errorf("materializer: giving up after %d attempt(s): %w", attempt+1, execErr)
		}
		// Repair: same skill, now with the error and the previous plan.
		in.LastError = execErr.Error()
		in.PrevPlan = &plan
		repaired, planErr := m.plan(ctx, in)
		if planErr != nil {
			return res, planErr
		}
		plan = repaired
		res.Plans = append(res.Plans, plan)
		res.Repairs++
	}
}

// PlanOnly produces the integration plan for a spec without executing it;
// the full-context baseline runs plans with its own lenient policy.
func (m *Materializer) PlanOnly(ctx context.Context, spec llm.TableSpec, retrieved []docs.Document, queries []string) (llm.MaterializePlan, error) {
	var docDTOs []llm.DocInfo
	for _, d := range retrieved {
		if d.Table != nil {
			docDTOs = append(docDTOs, llm.NewDocInfo(d, m.sampleVals))
		}
	}
	return m.plan(ctx, llm.MaterializeInput{Spec: spec, Docs: docDTOs, Queries: queries})
}

// ExecutePlan runs an integration plan against the retrieved documents.
func (m *Materializer) ExecutePlan(plan llm.MaterializePlan, spec llm.TableSpec, retrieved []docs.Document) (*table.Table, error) {
	byName := make(map[string]*table.Table)
	for _, d := range retrieved {
		if d.Table != nil {
			byName[strings.ToLower(d.Table.Schema.Name)] = d.Table
		}
	}
	return m.execute(plan, spec, byName)
}

func (m *Materializer) plan(ctx context.Context, in llm.MaterializeInput) (llm.MaterializePlan, error) {
	resp, err := m.model.Complete(ctx, llm.Request{
		Task: llm.TaskMaterializePlan,
		System: "You are the Materializer of Pneuma-Seeker. Your sole purpose is to " +
			"populate the target table T by integrating and transforming the retrieved " +
			"source tables, aligning value formats with what the queries in Q expect.",
		Payload: llm.MarshalPayload(in),
	})
	if err != nil {
		return llm.MaterializePlan{}, fmt.Errorf("materializer: planning failed: %w", err)
	}
	var plan llm.MaterializePlan
	if err := llm.DecodeResponse(resp, &plan); err != nil {
		return llm.MaterializePlan{}, err
	}
	return plan, nil
}

// execute runs an integration plan over the source tables.
func (m *Materializer) execute(plan llm.MaterializePlan, spec llm.TableSpec, byName map[string]*table.Table) (*table.Table, error) {
	var cur *table.Table
	for _, step := range plan.Steps {
		switch step.Op {
		case "base":
			src, ok := byName[strings.ToLower(step.Table)]
			if !ok {
				return nil, &transform.Error{Op: "BASE", Msg: fmt.Sprintf(
					"source table %q was not retrieved; available: %s", step.Table, names(byName))}
			}
			cur = src.Clone()

		case "join":
			if cur == nil {
				return nil, &transform.Error{Op: "JOIN", Msg: "no base table selected before join"}
			}
			right, ok := byName[strings.ToLower(step.Table)]
			if !ok {
				return nil, &transform.Error{Op: "JOIN", Msg: fmt.Sprintf(
					"join table %q was not retrieved; available: %s", step.Table, names(byName))}
			}
			lk, rk, err := splitJoinKeys(step.Arg)
			if err != nil {
				return nil, err
			}
			joined, err := equiJoin(cur, right, lk, rk)
			if err != nil {
				return nil, err
			}
			if joined.NumRows() == 0 && cur.NumRows() > 0 && right.NumRows() > 0 {
				return nil, &transform.Error{Op: "JOIN", Msg: fmt.Sprintf(
					"join produced no rows on %s=%s — key values may not line up exactly", lk, rk)}
			}
			cur = joined

		case "fuzzy_join":
			if cur == nil {
				return nil, &transform.Error{Op: "FUZZY_JOIN", Msg: "no base table selected before join"}
			}
			right, ok := byName[strings.ToLower(step.Table)]
			if !ok {
				return nil, &transform.Error{Op: "FUZZY_JOIN", Msg: fmt.Sprintf(
					"join table %q was not retrieved; available: %s", step.Table, names(byName))}
			}
			lk, rk, err := splitJoinKeys(step.Arg)
			if err != nil {
				return nil, err
			}
			out, err := transform.FuzzyJoin{Right: right, LeftKey: lk, RightKey: rk}.Apply(cur)
			if err != nil {
				return nil, err
			}
			cur = out

		case "parse_dates":
			out, err := transform.ParseDates{Column: step.Column, Lenient: step.Lenient}.Apply(cur)
			if err != nil {
				return nil, err
			}
			cur = out

		case "to_number":
			out, err := transform.ToNumber{Column: step.Column, Lenient: step.Lenient}.Apply(cur)
			if err != nil {
				return nil, err
			}
			cur = out

		case "interpolate":
			out, err := transform.Interpolate{XColumn: step.Arg, YColumn: step.Column}.Apply(cur)
			if err != nil {
				return nil, err
			}
			cur = out

		case "derive":
			out, err := transform.Derive{Name: step.Column, Expr: step.Arg}.Apply(cur)
			if err != nil {
				return nil, err
			}
			cur = out

		case "project":
			cols := splitCSV(step.Arg)
			out, err := transform.Keep{Columns: cols}.Apply(cur)
			if err != nil {
				return nil, err
			}
			cur = out

		default:
			return nil, &transform.Error{Op: step.Op, Msg: "unknown integration op"}
		}
	}
	if cur == nil {
		return nil, &transform.Error{Op: "PLAN", Msg: "plan produced no table"}
	}
	cur.Schema.Name = spec.Name
	return cur, nil
}

// equiJoin joins via the SQL engine under stable aliases.
func equiJoin(left, right *table.Table, leftKey, rightKey string) (*table.Table, error) {
	eng := sqlengine.NewEngine()
	l, r := left.Clone(), right.Clone()
	l.Schema.Name = "l"
	r.Schema.Name = "r"
	eng.Register(l)
	eng.Register(r)
	// Project right-side columns that do not collide with left names.
	var rcols []string
	for _, c := range r.Schema.Columns {
		if l.Schema.ColumnIndex(c.Name) < 0 {
			rcols = append(rcols, "r."+quoteIdent(c.Name))
		}
	}
	sel := "l.*"
	if len(rcols) > 0 {
		sel += ", " + strings.Join(rcols, ", ")
	}
	q := fmt.Sprintf("SELECT %s FROM l JOIN r ON l.%s = r.%s", sel, quoteIdent(leftKey), quoteIdent(rightKey))
	out, err := eng.Query(q)
	if err != nil {
		return nil, &transform.Error{Op: "JOIN", Msg: err.Error()}
	}
	// Preserve column descriptions from the sources.
	for i := range out.Schema.Columns {
		name := out.Schema.Columns[i].Name
		if c, ok := left.Schema.Column(name); ok {
			out.Schema.Columns[i].Description = c.Description
			out.Schema.Columns[i].Unit = c.Unit
		} else if c, ok := right.Schema.Column(name); ok {
			out.Schema.Columns[i].Description = c.Description
			out.Schema.Columns[i].Unit = c.Unit
		}
	}
	return out, nil
}

func quoteIdent(s string) string {
	if strings.ContainsAny(s, " -") {
		return `"` + s + `"`
	}
	return s
}

func splitJoinKeys(arg string) (string, string, error) {
	parts := strings.SplitN(arg, "=", 2)
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return "", "", &transform.Error{Op: "JOIN", Msg: fmt.Sprintf(
			"join keys %q malformed; want left=right", arg)}
	}
	return strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1]), nil
}

func splitCSV(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func names(byName map[string]*table.Table) string {
	out := make([]string, 0, len(byName))
	for n := range byName {
		out = append(out, n)
	}
	if len(out) == 0 {
		return "(none)"
	}
	return strings.Join(out, ", ")
}
