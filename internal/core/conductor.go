package core

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"pneuma/internal/ir"
	"pneuma/internal/llm"
	"pneuma/internal/sqlengine"
)

// DefaultMaxActions is the paper's action cap i = 5 (§3.2): "Conductor
// limits the number of consecutive actions to a fixed value i ... to
// prevent (T, Q) from moving away from the latent information need before
// user feedback can correct it, while also avoiding long autonomous runs."
const DefaultMaxActions = 5

// ActionLog records one Conductor action for the trace shown in the CLI and
// analyzed by tests and ablations.
type ActionLog struct {
	Action    string
	Reasoning string
	Detail    string
	Err       string
}

// Reply is the user-facing outcome of one Conductor turn.
type Reply struct {
	// Message is the user-facing communication the turn ended with. §3.2:
	// every action sequence ends with a user-facing message, forced if the
	// action limit is reached first.
	Message string
	// Clarify marks the message as a clarifying question.
	Clarify bool
	// Forced marks a message produced by the action-limit interrupt.
	Forced bool
	// MentionedColumns is the interpreted column surface of the message.
	MentionedColumns []llm.MentionedColumn
	// State is the surfaced (T, Q) view (Figure 2 box 3).
	State llm.StateInfo
	// Answer is the scalar answer when Q has been executed.
	Answer string
	// Actions is the trace of this turn.
	Actions []ActionLog
}

// Conductor drives Pneuma-Seeker toward convergence by selecting actions on
// the fly (§3.2): internal reasoning, tool calls (IR System, Materializer,
// SQL Executor), state modification, and user-facing communication.
type Conductor struct {
	model        llm.Model
	irsys        *ir.System
	materializer *Materializer
	maxActions   int
	webSearch    bool
	// sampleVals bounds the samples serialized per column into the
	// specialized planning context.
	sampleVals int
	// specialized toggles context specialization (ablation §5.2 of
	// DESIGN.md): when false, the conductor's prompt also carries the
	// materializer-grade context (full sample payloads) for every call.
	specialized bool
	// dynamicPlanning toggles the conductor loop vs the fixed static
	// pipeline of §3.5.
	dynamicPlanning bool
}

// ConductorConfig configures a Conductor.
type ConductorConfig struct {
	Model        llm.Model
	IR           *ir.System
	Materializer *Materializer
	// MaxActions caps consecutive actions (default DefaultMaxActions).
	MaxActions int
	// WebSearch enables the web retriever (disabled in benchmarks, §4).
	WebSearch bool
	// Specialized enables context specialization (default true; false is
	// the ablation).
	Specialized *bool
	// DynamicPlanning selects conductor-style planning (default true;
	// false runs the fixed static pipeline of §3.5).
	DynamicPlanning *bool
}

// NewConductor builds a Conductor.
func NewConductor(cfg ConductorConfig) *Conductor {
	c := &Conductor{
		model:           cfg.Model,
		irsys:           cfg.IR,
		materializer:    cfg.Materializer,
		maxActions:      cfg.MaxActions,
		webSearch:       cfg.WebSearch,
		sampleVals:      12,
		specialized:     true,
		dynamicPlanning: true,
	}
	if c.maxActions <= 0 {
		c.maxActions = DefaultMaxActions
	}
	if cfg.Specialized != nil {
		c.specialized = *cfg.Specialized
	}
	if cfg.DynamicPlanning != nil {
		c.dynamicPlanning = *cfg.DynamicPlanning
	}
	return c
}

// Turn runs one user turn: up to maxActions Conductor actions ending in a
// user-facing message. The context bounds every model call and retrieval
// the turn makes.
func (c *Conductor) Turn(ctx context.Context, sess *Session, userMessage string) (Reply, error) {
	sess.UserMessages = append(sess.UserMessages, userMessage)
	if c.dynamicPlanning {
		return c.dynamicTurn(ctx, sess)
	}
	return c.staticTurn(ctx, sess)
}

// dynamicTurn is the paper's conductor loop.
func (c *Conductor) dynamicTurn(ctx context.Context, sess *Session) (Reply, error) {
	var reply Reply
	lastError := ""
	retrievalRounds := sess.RetrievalRounds

	for action := 0; action < c.maxActions; action++ {
		if err := ctx.Err(); err != nil {
			return Reply{}, err
		}
		decision, err := c.plan(ctx, sess, lastError, action, retrievalRounds)
		if err != nil {
			if errors.Is(err, llm.ErrContextLengthExceeded) {
				// Specialization failed to bound the context; shed the
				// lowest-ranked documents and retry once per action.
				sess.shedDocs()
				decision, err = c.plan(ctx, sess, lastError, action, retrievalRounds)
			}
			if err != nil {
				return Reply{}, err
			}
		}
		log := ActionLog{Action: decision.Action, Reasoning: decision.Reasoning}
		lastError = ""

		switch decision.Action {
		case llm.ActionRetrieve:
			res, err := c.irsys.Query(ctx, ir.Request{
				Query:   decision.RetrievalQuery,
				K:       8,
				Sources: toSources(decision.Sources, c.webSearch),
			})
			if err != nil {
				lastError = err.Error()
				log.Err = lastError
			} else {
				added := sess.mergeDocs(res.Documents)
				retrievalRounds++
				sess.RetrievalRounds = retrievalRounds
				log.Detail = fmt.Sprintf("query=%q added=%d", decision.RetrievalQuery, added)
				if res.Degraded != nil {
					// Partial fusion: good sources answered, the failures
					// ride along in the action log for the trace.
					log.Err = res.Degraded.Error()
				}
			}

		case llm.ActionUpdateState:
			sess.State.SetModel(decision.StateTables, decision.StateQueries)
			log.Detail = fmt.Sprintf("T=%d table(s), Q=%d query(ies)", len(decision.StateTables), len(decision.StateQueries))

		case llm.ActionMaterialize:
			if len(sess.State.Specs) == 0 {
				lastError = "cannot materialize: T is not defined yet"
				log.Err = lastError
				break
			}
			for _, spec := range sess.State.Specs {
				res, err := c.materializer.Materialize(ctx, spec, sess.Docs, sess.State.Queries)
				if err != nil {
					lastError = err.Error()
					log.Err = lastError
					break
				}
				sess.State.SetMaterialized(spec.Name, res.Table)
				log.Detail += fmt.Sprintf("%s: %d rows (%d repair(s)); ", spec.Name, res.Table.NumRows(), res.Repairs)
			}

		case llm.ActionExecute:
			out, err := c.executeQ(sess)
			if err != nil {
				lastError = err.Error()
				log.Err = lastError
			} else if out != nil {
				log.Detail = fmt.Sprintf("result: %dx%d", out.NumRows(), out.NumCols())
			}

		case llm.ActionRespond, llm.ActionClarify:
			reply.Message = decision.Message
			reply.Clarify = decision.Action == llm.ActionClarify
			reply.MentionedColumns = decision.MentionedColumns
			reply.State = sess.State.Info(c.sampleVals)
			if ans, ok := sess.State.Answer(); ok {
				reply.Answer = ans
			}
			reply.Actions = append(sess.drainActions(), log)
			return reply, nil

		default:
			lastError = fmt.Sprintf("unknown action %q", decision.Action)
			log.Err = lastError
		}
		sess.pushAction(log)
	}

	// Action limit reached without a user-facing message: the system
	// interrupts and forces one (§3.2).
	reply.Forced = true
	reply.Message = c.forcedSummary(sess, lastError)
	reply.State = sess.State.Info(c.sampleVals)
	if ans, ok := sess.State.Answer(); ok {
		reply.Answer = ans
	}
	reply.Actions = sess.drainActions()
	return reply, nil
}

// staticTurn is the fixed pipeline of §3.5: retrieve top-k → define (T, Q)
// → materialize → execute → respond, with no re-planning, no clarification
// recovery and no extra retrieval rounds.
func (c *Conductor) staticTurn(ctx context.Context, sess *Session) (Reply, error) {
	var reply Reply

	// Step 1 (fixed): retrieve with the latest message.
	res, err := c.irsys.Query(ctx, ir.Request{
		Query:   sess.UserMessages[len(sess.UserMessages)-1],
		K:       5,
		Sources: toSources(nil, c.webSearch),
	})
	step1 := ActionLog{Action: llm.ActionRetrieve, Reasoning: "static pipeline step 1"}
	if err == nil {
		sess.mergeDocs(res.Documents)
		sess.RetrievalRounds++
		if res.Degraded != nil {
			// Partial fusion: record the per-source failures in the trace,
			// exactly as the dynamic conductor loop does.
			step1.Err = res.Degraded.Error()
		}
	} else {
		step1.Err = err.Error()
	}
	sess.pushAction(step1)

	// Step 2 (fixed): one planning call to define (T, Q).
	decision, err := c.plan(ctx, sess, "", 0, sess.RetrievalRounds)
	if err != nil {
		return Reply{}, err
	}
	if decision.Action == llm.ActionUpdateState {
		sess.State.SetModel(decision.StateTables, decision.StateQueries)
		sess.pushAction(ActionLog{Action: llm.ActionUpdateState, Reasoning: "static pipeline step 2"})

		// Step 3 (fixed): materialize, no repairs beyond the materializer's
		// own budget (which the Seeker sets to zero in static mode).
		matFailed := false
		for _, spec := range sess.State.Specs {
			mres, err := c.materializer.Materialize(ctx, spec, sess.Docs, sess.State.Queries)
			if err != nil {
				matFailed = true
				sess.pushAction(ActionLog{Action: llm.ActionMaterialize, Err: err.Error()})
				break
			}
			sess.State.SetMaterialized(spec.Name, mres.Table)
		}
		// Step 4 (fixed): execute.
		if !matFailed {
			if _, err := c.executeQ(sess); err != nil {
				sess.pushAction(ActionLog{Action: llm.ActionExecute, Err: err.Error()})
			}
		}
	}

	// Step 5 (fixed): respond with whatever happened.
	reply.State = sess.State.Info(c.sampleVals)
	if ans, ok := sess.State.Answer(); ok {
		reply.Answer = ans
		reply.Message = fmt.Sprintf("Computed result: %s", ans)
	} else if decision.Message != "" {
		reply.Message = decision.Message
		reply.MentionedColumns = decision.MentionedColumns
	} else {
		reply.Message = "The pipeline ran but produced no result."
	}
	reply.Actions = sess.drainActions()
	return reply, nil
}

// plan makes one conductor-plan model call with the specialized context.
func (c *Conductor) plan(ctx context.Context, sess *Session, lastError string, actionsTaken, retrievalRounds int) (llm.ConductorDecision, error) {
	sampleVals := c.sampleVals
	if !c.specialized {
		// Ablation: the merged mega-context carries materializer-grade
		// payloads on every planning call.
		sampleVals = 40
	}
	in := llm.ConductorInput{
		UserMessages:     sess.UserMessages,
		State:            sess.State.Info(sampleVals),
		Knowledge:        sess.KnowledgeNotes,
		LastError:        lastError,
		ActionsTaken:     actionsTaken,
		RetrievalRounds:  retrievalRounds,
		WebSearchEnabled: c.webSearch,
	}
	for _, d := range sess.Docs {
		in.Docs = append(in.Docs, llm.NewDocInfo(d, sampleVals))
	}
	req := llm.Request{
		Task: llm.TaskConductorPlan,
		System: "You are the Conductor of Pneuma-Seeker. Evaluate the current state " +
			"(T, Q), the retrieved data and the user's feedback, and select the single " +
			"best next action to align the state with the user's information need. " +
			"Ground every decision in retrieved data, never in assumptions.",
		Payload: llm.MarshalPayload(in),
	}
	// The planning prompt carries rendered summaries (schema + a few sample
	// rows) of every retrieved document — grounding costs real context,
	// which is what Table 2 measures.
	{
		var b strings.Builder
		for _, d := range sess.Docs {
			b.WriteString(d.Summary(10))
		}
		req.Sections = append(req.Sections, llm.Section{Title: "DOCUMENTS", Body: b.String()})
	}
	if !c.specialized {
		// The unspecialized prompt also drags in the raw document summaries
		// as prose, inflating context the way a single mega-agent would.
		var b strings.Builder
		for _, d := range sess.Docs {
			b.WriteString(d.Summary(40))
		}
		req.Sections = append(req.Sections, llm.Section{Title: "ALL_CONTEXT", Body: b.String()})
	}
	resp, err := c.model.Complete(ctx, req)
	if err != nil {
		return llm.ConductorDecision{}, err
	}
	var dec llm.ConductorDecision
	if err := llm.DecodeResponse(resp, &dec); err != nil {
		return llm.ConductorDecision{}, err
	}
	return dec, nil
}

// executeQ runs every query in Q against the materialized tables plus the
// retrieved source tables, recording the last result. Execution errors are
// routed through one materializer repair round (e.g. a numeric aggregate
// hitting unparsed text), mirroring §3.4's error feedback.
func (c *Conductor) executeQ(sess *Session) (out interface {
	NumRows() int
	NumCols() int
}, err error) {
	eng := sqlengine.NewEngine()
	for name, t := range sess.State.Materialized {
		tt := t.Clone()
		tt.Schema.Name = name
		eng.Register(tt)
	}
	for _, d := range sess.Docs {
		if d.Table != nil {
			if _, exists := eng.Table(d.Table.Schema.Name); !exists {
				eng.Register(d.Table)
			}
		}
	}
	var last *sqlResult
	for _, q := range sess.State.Queries {
		res, qerr := eng.Query(q)
		if qerr != nil {
			return nil, fmt.Errorf("SQL executor: %w", qerr)
		}
		last = &sqlResult{res.NumRows(), res.NumCols()}
		sess.State.SetResult(res)
	}
	if last == nil {
		return nil, errors.New("SQL executor: Q is empty")
	}
	return last, nil
}

type sqlResult struct{ rows, cols int }

func (r *sqlResult) NumRows() int { return r.rows }
func (r *sqlResult) NumCols() int { return r.cols }

// forcedSummary is the interrupt message when the action budget runs out.
func (c *Conductor) forcedSummary(sess *Session, lastError string) string {
	var b strings.Builder
	b.WriteString("I hit my per-turn action limit, so here is where things stand: ")
	if len(sess.State.Specs) > 0 {
		fmt.Fprintf(&b, "T has %d target table(s) and Q has %d query(ies). ",
			len(sess.State.Specs), len(sess.State.Queries))
	} else {
		b.WriteString("I have not settled on a target schema yet. ")
	}
	if lastError != "" {
		fmt.Fprintf(&b, "The last step failed with: %s. ", lastError)
	}
	b.WriteString("Please confirm the direction or refine the request so I can continue.")
	return b.String()
}

func toSources(names []string, webOn bool) []ir.Source {
	if len(names) == 0 {
		if webOn {
			return nil // all
		}
		return []ir.Source{ir.SourceTables, ir.SourceKnowledge}
	}
	var out []ir.Source
	for _, n := range names {
		s := ir.Source(n)
		if s == ir.SourceWeb && !webOn {
			continue
		}
		out = append(out, s)
	}
	return out
}
