package core

import (
	"context"
	"strings"
	"testing"

	"pneuma/internal/docs"
	"pneuma/internal/llm"
	"pneuma/internal/table"
	"pneuma/internal/value"
)

func TestStateLifecycle(t *testing.T) {
	s := NewState()
	if s.IsMaterialized() {
		t.Fatal("empty state cannot be materialized")
	}
	spec := llm.TableSpec{Name: "target", BaseTable: "base", Columns: []string{"a"}}
	s.SetModel([]llm.TableSpec{spec}, []string{"SELECT a FROM target"})
	if s.Revision != 1 {
		t.Fatalf("revision = %d", s.Revision)
	}
	if s.IsMaterialized() {
		t.Fatal("unpopulated spec cannot be materialized")
	}
	tb := table.New(table.Schema{Name: "target", Columns: []table.Column{{Name: "a", Type: value.KindInt}}})
	tb.MustAppend(table.Row{value.Int(7)})
	s.SetMaterialized("target", tb)
	if !s.IsMaterialized() {
		t.Fatal("state should be materialized")
	}
	s.SetResult(tb)
	ans, ok := s.Answer()
	if !ok || ans != "7" {
		t.Fatalf("answer = %q %v", ans, ok)
	}
	// SetModel invalidates materialization and results.
	s.SetModel([]llm.TableSpec{spec}, []string{"SELECT a FROM target WHERE a > 0"})
	if s.IsMaterialized() || s.LastResult != nil {
		t.Fatal("SetModel must invalidate materialization")
	}
	view := s.View()
	for _, want := range []string{"State (T, Q)", "target", "Q[0]"} {
		if !strings.Contains(view, want) {
			t.Errorf("view missing %q:\n%s", want, view)
		}
	}
}

func TestStateInfoCarriesSpecs(t *testing.T) {
	s := NewState()
	spec := llm.TableSpec{Name: "t", BaseTable: "b", Columns: []string{"x"},
		Transforms: []llm.TransformSpec{{Kind: "interpolate", Column: "x", Arg: "year"}}}
	s.SetModel([]llm.TableSpec{spec}, nil)
	info := s.Info(4)
	if len(info.Specs) != 1 || len(info.Specs[0].Transforms) != 1 {
		t.Fatalf("state info lost transforms: %+v", info.Specs)
	}
}

// dirtyCorpusDocs builds retrieval documents whose date column carries mixed
// formats plus "n.d." garbage — the repair-loop scenario.
func dirtyCorpusDocs() []docs.Document {
	tb := table.New(table.Schema{
		Name:        "artifacts",
		Description: "artifact catalog",
		Columns: []table.Column{
			{Name: "region", Type: value.KindString, Description: "Region"},
			{Name: "catalog_date", Type: value.KindString, Description: "Date catalogued"},
			{Name: "grade", Type: value.KindInt, Description: "Condition grade"},
		},
	})
	rows := []struct {
		region, date string
		grade        int64
	}{
		{"Malta", "March 5, 1972", 3},
		{"Malta", "1975-06-01", 5},
		{"Malta", "n.d.", 2},
		{"Gozo", "April 9, 1977", 4},
	}
	for _, r := range rows {
		tb.MustAppend(table.Row{value.String(r.region), value.String(r.date), value.Int(r.grade)})
	}
	return []docs.Document{docs.TableDocument(tb)}
}

func TestMaterializerRepairLoopOnDirtyDates(t *testing.T) {
	model := llm.NewSimModel()
	m := NewMaterializer(model, 3)
	spec := llm.TableSpec{
		Name:      "target_artifacts",
		BaseTable: "artifacts",
		Columns:   []string{"region", "catalog_date", "grade"},
		Transforms: []llm.TransformSpec{
			{Kind: "parse_dates", Column: "catalog_date"},
		},
	}
	res, err := m.Materialize(context.Background(), spec, dirtyCorpusDocs(), []string{
		"SELECT AVG(grade) AS answer FROM target_artifacts WHERE YEAR(catalog_date) BETWEEN 1970 AND 1980",
	})
	if err != nil {
		t.Fatalf("repair loop failed: %v (errors: %v)", err, res.Errors)
	}
	if res.Repairs == 0 {
		t.Fatal("expected at least one repair for the n.d. value")
	}
	if res.Table.NumRows() != 4 {
		t.Fatalf("rows = %d", res.Table.NumRows())
	}
	// The n.d. row must have a NULL date after the lenient re-run.
	di := res.Table.Schema.ColumnIndex("catalog_date")
	nulls := 0
	for _, r := range res.Table.Rows {
		if r[di].IsNull() {
			nulls++
		}
	}
	if nulls != 1 {
		t.Fatalf("null dates = %d, want 1", nulls)
	}
}

func TestMaterializerNoRepairBudgetFails(t *testing.T) {
	model := llm.NewSimModel()
	m := NewMaterializer(model, 0) // the static-pipeline / DS-Guru setting
	spec := llm.TableSpec{
		Name:      "target_artifacts",
		BaseTable: "artifacts",
		Columns:   []string{"region", "catalog_date", "grade"},
		Transforms: []llm.TransformSpec{
			{Kind: "parse_dates", Column: "catalog_date"},
		},
	}
	_, err := m.Materialize(context.Background(), spec, dirtyCorpusDocs(), []string{
		"SELECT AVG(grade) AS answer FROM target_artifacts WHERE YEAR(catalog_date) BETWEEN 1970 AND 1980",
	})
	if err == nil {
		t.Fatal("zero repair budget must fail on dirty dates")
	}
}

func TestMaterializerMissingBaseTable(t *testing.T) {
	m := NewMaterializer(llm.NewSimModel(), 1)
	spec := llm.TableSpec{Name: "t", BaseTable: "ghost", Columns: []string{"x"}}
	_, err := m.Materialize(context.Background(), spec, dirtyCorpusDocs(), nil)
	if err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("err = %v", err)
	}
}

func smallCorpus() map[string]*table.Table {
	soil := table.New(table.Schema{
		Name:        "soil_samples",
		Description: "Soil chemistry samples from excavation sites",
		Columns: []table.Column{
			{Name: "region", Type: value.KindString, Description: "Region of the site"},
			{Name: "study_year", Type: value.KindInt, Description: "Year of the study"},
			{Name: "organic_pct", Type: value.KindFloat, Description: "Organic matter percentage"},
		},
	})
	data := []struct {
		region string
		year   int64
		v      float64
	}{
		{"Malta", 1950, 4.0}, {"Malta", 1960, 6.0}, {"Gozo", 1950, 2.0}, {"Gozo", 1970, 8.0},
	}
	for _, d := range data {
		soil.MustAppend(table.Row{value.String(d.region), value.Int(d.year), value.Float(d.v)})
	}
	return map[string]*table.Table{"soil_samples": soil}
}

func TestSeekerEndToEndTurn(t *testing.T) {
	seeker, err := New(context.Background(), Config{}, smallCorpus(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess := seeker.NewSession("tester")
	reply, err := sess.Send(context.Background(), "What is the average organic matter percentage for soil samples in the Malta region? Round your answer to 2 decimal places.")
	if err != nil {
		t.Fatal(err)
	}
	if reply.Answer != "5" {
		t.Fatalf("answer = %q, want 5 (avg of 4 and 6)", reply.Answer)
	}
	if len(reply.State.Queries) != 1 || !strings.Contains(reply.State.Queries[0], "AVG(organic_pct)") {
		t.Fatalf("state queries = %v", reply.State.Queries)
	}
	// The action trace must show the full dynamic sequence.
	var kinds []string
	for _, a := range reply.Actions {
		kinds = append(kinds, a.Action)
	}
	joined := strings.Join(kinds, ",")
	for _, want := range []string{"retrieve", "update_state", "materialize", "execute"} {
		if !strings.Contains(joined, want) {
			t.Errorf("action trace missing %s: %v", want, kinds)
		}
	}
	// The meter must have billed tokens.
	if seeker.Meter().Snapshot().Total.InTokens == 0 {
		t.Error("no tokens metered")
	}
	if sess.TurnLatency == 0 {
		t.Error("no simulated latency recorded")
	}
}

func TestSeekerRefinementInvalidatesAndRecomputes(t *testing.T) {
	seeker, err := New(context.Background(), Config{}, smallCorpus(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess := seeker.NewSession("tester")
	if _, err := sess.Send(context.Background(), "What is the average organic matter percentage for soil samples in the Malta region?"); err != nil {
		t.Fatal(err)
	}
	reply, err := sess.Send(context.Background(), "Actually, what is the average organic matter percentage in the Gozo region since 1960?")
	if err != nil {
		t.Fatal(err)
	}
	if reply.Answer != "8" {
		t.Fatalf("refined answer = %q, want 8 (only the 1970 Gozo sample)", reply.Answer)
	}
}

func TestSeekerActionCapForcesMessage(t *testing.T) {
	seeker, err := New(context.Background(), Config{MaxActions: 1}, smallCorpus(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess := seeker.NewSession("tester")
	reply, err := sess.Send(context.Background(), "What is the average organic matter percentage in the Malta region?")
	if err != nil {
		t.Fatal(err)
	}
	if !reply.Forced {
		t.Fatal("action cap of 1 must force an interrupt message")
	}
	if reply.Message == "" {
		t.Fatal("forced reply must still carry a user-facing message")
	}
}

func TestKnowledgeCapture(t *testing.T) {
	seeker, err := New(context.Background(), Config{}, smallCorpus(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess := seeker.NewSession("alice")
	if _, err := sess.Send(context.Background(), "Note that organic matter should be calculated on dry weight; assume values are comparable across years."); err != nil {
		t.Fatal(err)
	}
	if seeker.Knowledge().Len() != 1 {
		t.Fatalf("knowledge notes = %d, want 1", seeker.Knowledge().Len())
	}
	// A second user's session surfaces it.
	bob := seeker.NewSession("bob")
	if _, err := bob.Send(context.Background(), "Tell me about organic matter values across years."); err != nil {
		t.Fatal(err)
	}
	if len(bob.KnowledgeNotes) == 0 {
		t.Fatal("cross-user knowledge transfer failed")
	}
}

func TestStaticPipelineMode(t *testing.T) {
	off := false
	seeker, err := New(context.Background(), Config{DynamicPlanning: &off}, smallCorpus(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess := seeker.NewSession("tester")
	reply, err := sess.Send(context.Background(), "What is the average organic matter percentage for soil samples in the Malta region?")
	if err != nil {
		t.Fatal(err)
	}
	// The fixed pipeline can still answer simple questions...
	if reply.Answer == "" {
		t.Fatalf("static pipeline failed on an easy question: %q", reply.Message)
	}
}
