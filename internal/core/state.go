// Package core implements the paper's primary contribution: Pneuma-Seeker
// (§3) — the shared state (T, Q) that reifies an information need as a
// relational data model, the Conductor that plans dynamically over that
// state, the Materializer that populates T, and the Seeker session loop
// that converges the state toward the user's latent information need.
package core

import (
	"fmt"
	"strings"
	"sync"

	"pneuma/internal/llm"
	"pneuma/internal/table"
)

// State is the shared state (T, Q) of §3.1: T is a set of target tables
// (their specifications plus, once materialized, their contents) and Q is a
// sequence of SQL queries over T. The user and the system co-evolve this
// object; the interaction converges when it matches the latent need.
type State struct {
	mu sync.RWMutex
	// Specs are the current target-table definitions.
	Specs []llm.TableSpec
	// Queries is Q.
	Queries []string
	// Materialized maps spec names to populated tables once the
	// Materializer has run.
	Materialized map[string]*table.Table
	// LastResult is the output of the most recent execution of Q.
	LastResult *table.Table
	// Revision counts state modifications (for the UI and for tests).
	Revision int
}

// NewState returns an empty state.
func NewState() *State {
	return &State{Materialized: make(map[string]*table.Table)}
}

// SetModel replaces (T, Q) — the Conductor's "state modification" action.
// Materialization and results are invalidated because T changed.
func (s *State) SetModel(specs []llm.TableSpec, queries []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Specs = specs
	s.Queries = queries
	s.Materialized = make(map[string]*table.Table)
	s.LastResult = nil
	s.Revision++
}

// SetMaterialized records a populated target table.
func (s *State) SetMaterialized(name string, t *table.Table) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Materialized[name] = t
	s.Revision++
}

// SetResult records the latest execution result.
func (s *State) SetResult(t *table.Table) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.LastResult = t
	s.Revision++
}

// IsMaterialized reports whether every spec in T has been populated.
func (s *State) IsMaterialized() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.Specs) == 0 {
		return false
	}
	for _, spec := range s.Specs {
		if _, ok := s.Materialized[spec.Name]; !ok {
			return false
		}
	}
	return true
}

// Info renders the state as the prompt/UI DTO. Materialized tables carry
// their real schemas; unmaterialized specs carry the planned columns.
func (s *State) Info(sampleVals int) llm.StateInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	info := llm.StateInfo{
		Queries: append([]string{}, s.Queries...),
		Specs:   append([]llm.TableSpec{}, s.Specs...),
	}
	for _, spec := range s.Specs {
		if t, ok := s.Materialized[spec.Name]; ok {
			info.Tables = append(info.Tables, llm.NewTableInfo(t, sampleVals))
			continue
		}
		ti := llm.TableInfo{Name: spec.Name}
		for _, c := range spec.Columns {
			ti.Columns = append(ti.Columns, llm.ColumnInfo{Name: c})
		}
		info.Tables = append(info.Tables, ti)
	}
	info.Materialized = s.isMaterializedLocked()
	if s.LastResult != nil {
		info.ResultPreview = s.LastResult.Render(5)
	}
	return info
}

func (s *State) isMaterializedLocked() bool {
	if len(s.Specs) == 0 {
		return false
	}
	for _, spec := range s.Specs {
		if _, ok := s.Materialized[spec.Name]; !ok {
			return false
		}
	}
	return true
}

// Answer extracts a scalar answer from the last result: the single cell of
// a 1×1 result, or the first cell of the first row otherwise.
func (s *State) Answer() (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r := s.LastResult
	if r == nil || r.NumRows() == 0 || r.NumCols() == 0 {
		return "", false
	}
	return r.Rows[0][0].String(), true
}

// View renders the state panel of the paper's Figure 2 (box 3): the target
// schemas with sample rows, and the queries in Q.
func (s *State) View() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var b strings.Builder
	b.WriteString("=== State (T, Q) ===\n")
	if len(s.Specs) == 0 {
		b.WriteString("T: (not yet defined)\n")
	}
	for _, spec := range s.Specs {
		fmt.Fprintf(&b, "T: %s", spec.Name)
		if t, ok := s.Materialized[spec.Name]; ok {
			fmt.Fprintf(&b, " [materialized, %d rows]\n", t.NumRows())
			b.WriteString(t.Render(5))
		} else {
			fmt.Fprintf(&b, " [planned] columns: %s\n", strings.Join(spec.Columns, ", "))
		}
	}
	if len(s.Queries) == 0 {
		b.WriteString("Q: (empty)\n")
	}
	for i, q := range s.Queries {
		fmt.Fprintf(&b, "Q[%d]: %s\n", i, q)
	}
	if s.LastResult != nil {
		b.WriteString("Last result:\n")
		b.WriteString(s.LastResult.Render(5))
	}
	return b.String()
}
