package core

import (
	"context"
	"strings"
	"time"

	"pneuma/internal/docdb"
	"pneuma/internal/docs"
	"pneuma/internal/ir"
	"pneuma/internal/llm"
	"pneuma/internal/pnerr"
	"pneuma/internal/retriever"
	"pneuma/internal/table"
	"pneuma/internal/websearch"
)

// Config configures a Seeker instance.
type Config struct {
	// Model is the language model; defaults to a fresh SimModel with the
	// o4-mini profile (the paper's deployment).
	Model llm.Model
	// MaxActions is the Conductor's per-turn cap (default 5).
	MaxActions int
	// WebSearch enables the web retriever (the paper disables it for
	// benchmarks).
	WebSearch bool
	// MaxRepairs bounds the Materializer's repair loop (default 3).
	MaxRepairs int
	// Specialized toggles context specialization (default true).
	Specialized *bool
	// DynamicPlanning selects conductor-style orchestration over the fixed
	// static pipeline (default true).
	DynamicPlanning *bool
	// RetrieverMode selects the hybrid/vector-only/BM25-only table index.
	RetrieverMode retriever.Mode
	// Shards is the table-index shard count (default
	// retriever.DefaultShards(), derived from GOMAXPROCS).
	Shards int
	// IndexWorkers sizes the embedding worker pool used by bulk corpus
	// ingest (default GOMAXPROCS).
	IndexWorkers int
	// Backend selects the table-index shard storage engine (default
	// retriever.Memory; retriever.Disk persists shards to append-only
	// segment files under IndexDir).
	Backend retriever.Backend
	// IndexDir is the directory the Disk backend stores segment files in
	// (default: a fresh temporary directory).
	IndexDir string
	// Ef is the table-index HNSW query beam width (default
	// hnsw.DefaultEfSearch via the retriever). Larger values trade query
	// latency for vector-search recall.
	Ef int
	// SyncEvery triggers a group-commit fsync of a Disk-backend segment
	// once n records are pending (0 defers durability to Flush/Close
	// unless another sync knob is set). Prefer SyncBytes/SyncInterval.
	SyncEvery int
	// SyncBytes triggers a group-commit fsync of a Disk-backend segment
	// once the pending records reach n bytes (0 leaves the trigger
	// unset).
	SyncBytes int64
	// SyncInterval bounds how long an acknowledged Disk-backend write may
	// stay unsynced: the group-commit flusher fsyncs pending records at
	// most this long after the first arrived (0 leaves the bound unset;
	// it defaults to 2ms when SyncEvery or SyncBytes is set).
	SyncInterval time.Duration
	// CompactionRatio is the dead-record fraction that triggers a
	// Disk-backend segment rewrite at Flush/Close (0 selects the
	// retriever default of 0.5; negative disables compaction).
	CompactionRatio float64
	// Quantize enables the table index's int8 speed tier: traversal on
	// scalar-quantized vectors with exact float32 rescoring (default
	// off).
	Quantize bool
	// Mmap makes Disk-backend snapshot loads memory-map the file instead
	// of reading it (default off; ignored where unsupported).
	Mmap bool
}

// Seeker is the assembled Pneuma-Seeker system (Figure 1): Conductor, IR
// System (Pneuma-Retriever + Document Database + Web Search), Materializer
// and the SQL executor, sharing state (T, Q) per session.
type Seeker struct {
	cfg       Config
	model     llm.Model
	meter     *llm.Meter
	irsys     *ir.System
	knowledge *docdb.DB
	conductor *Conductor
}

// New assembles a Seeker over a corpus of tables. web and kb may be nil
// (a fresh knowledge DB is created when kb is nil). The context governs
// corpus ingest — canceling it abandons index construction and returns a
// typed pnerr.ErrCanceled.
func New(ctx context.Context, cfg Config, corpus map[string]*table.Table, web *websearch.Engine, kb *docdb.DB) (*Seeker, error) {
	if cfg.Model == nil {
		cfg.Model = llm.NewSimModel()
	}
	if cfg.MaxRepairs == 0 {
		cfg.MaxRepairs = 3
	}
	if kb == nil {
		kb = docdb.New()
	}
	meter := llm.NewMeter()

	ropts := []retriever.Option{retriever.WithMode(cfg.RetrieverMode)}
	if cfg.Shards > 0 {
		ropts = append(ropts, retriever.WithShards(cfg.Shards))
	}
	if cfg.IndexWorkers > 0 {
		ropts = append(ropts, retriever.WithWorkers(cfg.IndexWorkers))
	}
	if cfg.Backend != "" {
		ropts = append(ropts, retriever.WithBackend(cfg.Backend))
	}
	if cfg.IndexDir != "" {
		ropts = append(ropts, retriever.WithDir(cfg.IndexDir))
	}
	if cfg.Ef > 0 {
		ropts = append(ropts, retriever.WithEf(cfg.Ef))
	}
	if cfg.SyncEvery > 0 {
		ropts = append(ropts, retriever.WithSyncEvery(cfg.SyncEvery))
	}
	if cfg.SyncBytes > 0 {
		ropts = append(ropts, retriever.WithSyncBytes(cfg.SyncBytes))
	}
	if cfg.SyncInterval > 0 {
		ropts = append(ropts, retriever.WithSyncInterval(cfg.SyncInterval))
	}
	if cfg.CompactionRatio != 0 {
		ropts = append(ropts, retriever.WithCompactionRatio(cfg.CompactionRatio))
	}
	if cfg.Quantize {
		ropts = append(ropts, retriever.WithQuantize(true))
	}
	if cfg.Mmap {
		ropts = append(ropts, retriever.WithMmap(true))
	}
	ret, err := retriever.Open(ropts...)
	if err != nil {
		return nil, err
	}
	// Bulk ingest: embedding runs on the worker pool and all index shards
	// build concurrently. The retriever orders documents internally, so
	// map iteration order cannot affect the built index. A disk-backed
	// index reopened from a populated IndexDir is served as-is —
	// re-ingesting would only append replacement records and grow the
	// segment log every construction; delete the directory to rebuild
	// from the corpus.
	if ret.Len() == 0 {
		tables := make([]*table.Table, 0, len(corpus))
		for _, t := range corpus {
			tables = append(tables, t)
		}
		if err := ret.IndexTables(ctx, tables); err != nil {
			ret.Close()
			return nil, err
		}
		// Make the freshly built corpus durable right away for
		// disk-backed indexes (a no-op for the memory backend): the
		// table index does not mutate after assembly, so this is the one
		// flush that matters even if the caller never invokes
		// Seeker.Close.
		if err := ret.Flush(); err != nil {
			ret.Close()
			return nil, err
		}
	}
	if web != nil {
		web.SetEnabled(cfg.WebSearch)
	}
	irsys := ir.New(ret, kb, web)

	condModel := &llm.MeteredModel{Inner: cfg.Model, Meter: meter, Component: "conductor"}
	matModel := &llm.MeteredModel{Inner: cfg.Model, Meter: meter, Component: "materializer"}

	maxRepairs := cfg.MaxRepairs
	if cfg.DynamicPlanning != nil && !*cfg.DynamicPlanning {
		// The static pipeline has no repair loop: errors pass through.
		maxRepairs = 0
	}
	mat := NewMaterializer(matModel, maxRepairs)
	cond := NewConductor(ConductorConfig{
		Model:           condModel,
		IR:              irsys,
		Materializer:    mat,
		MaxActions:      cfg.MaxActions,
		WebSearch:       cfg.WebSearch,
		Specialized:     cfg.Specialized,
		DynamicPlanning: cfg.DynamicPlanning,
	})
	return &Seeker{
		cfg:       cfg,
		model:     cfg.Model,
		meter:     meter,
		irsys:     irsys,
		knowledge: kb,
		conductor: cond,
	}, nil
}

// Meter exposes the token/latency meter (Table 2, latency trade-off).
func (s *Seeker) Meter() *llm.Meter { return s.meter }

// IR exposes the IR System (examples and tests).
func (s *Seeker) IR() *ir.System { return s.irsys }

// Knowledge exposes the Document Database.
func (s *Seeker) Knowledge() *docdb.DB { return s.knowledge }

// Close flushes and releases the table index. It matters for disk-backed
// retrievers (Config.Backend = retriever.Disk), whose segment files stay
// open until closed; for the default memory backend it is a no-op. The
// Seeker must not be used afterwards.
func (s *Seeker) Close() error {
	if s.irsys == nil || s.irsys.Tables == nil {
		return nil
	}
	return s.irsys.Tables.Close()
}

// Session is one user's conversation: the shared state, the accumulated
// retrieved documents, and the message history. A Session is a
// single-caller object — one conversation has one author — but distinct
// sessions of the same Seeker may run concurrently (the Service admits
// them through its scheduler); everything they share (IR System, Document
// Database, meters) is concurrency-safe.
type Session struct {
	seeker *Seeker
	// User identifies the user for knowledge capture.
	User string
	// State is the shared (T, Q).
	State *State
	// UserMessages is the full history of user inputs.
	UserMessages []string
	// Docs are the retrieved documents accumulated across turns.
	Docs []docs.Document
	// KnowledgeNotes are relevant notes retrieved from the Document
	// Database at session start and after knowledge capture.
	KnowledgeNotes []string
	// RetrievalRounds counts retrieve actions across the session.
	RetrievalRounds int
	// TurnLatency is the simulated latency of the last turn.
	TurnLatency time.Duration

	// meter accumulates this session's own model usage; the system meter
	// keeps recording global totals in parallel, so per-session accounting
	// works under concurrency without double-locking the shared meter on
	// the caller side.
	meter   *llm.Meter
	actions []ActionLog
	docIDs  map[string]struct{}
}

// NewSession starts a conversation for the named user.
func (s *Seeker) NewSession(user string) *Session {
	return &Session{
		seeker: s,
		User:   user,
		State:  NewState(),
		meter:  llm.NewMeter(),
		docIDs: make(map[string]struct{}),
	}
}

// Meter exposes the session's own token/latency accounting (the
// per-session slice of Table 2).
func (sess *Session) Meter() *llm.Meter { return sess.meter }

// Send delivers one user message and runs the Conductor turn. The returned
// Reply always carries a user-facing message and the current state view.
// The context bounds the whole turn: every model call, retrieval fan-out
// and materialization checks it, and cancellation surfaces as a typed
// pnerr.ErrCanceled. An empty message is rejected with pnerr.ErrBadQuery
// before any model call is billed.
func (sess *Session) Send(ctx context.Context, message string) (Reply, error) {
	if strings.TrimSpace(message) == "" {
		return Reply{}, pnerr.BadQueryf("session: send", "empty message")
	}
	if err := ctx.Err(); err != nil {
		return Reply{}, pnerr.Canceled("session: send", err)
	}
	s := sess.seeker
	// Attribute every model call in this turn to the session's own meter
	// (in addition to the system meter the MeteredModel already records
	// on); the turn latency below is read from the session meter, so
	// concurrent sessions cannot bleed latency into each other.
	ctx = llm.WithMeter(ctx, sess.meter)
	latBefore := sess.meter.Snapshot().TotalLatency

	// Knowledge capture (§3.3, §5.2): assumptions the user externalizes are
	// saved to the Document Database for cross-user transfer. Repeating the
	// identical message must not pile up duplicate notes, so the capture is
	// skipped when the database already holds the content verbatim.
	if captured, topic := captureKnowledge(message); captured != "" {
		if !s.knowledge.Contains(topic, captured) {
			if _, err := s.knowledge.Save(ctx, topic, captured, sess.User); err == nil {
				sess.KnowledgeNotes = append(sess.KnowledgeNotes, captured)
			}
		} else if !containsNote(sess.KnowledgeNotes, captured) {
			// Already in organizational memory (this or another session);
			// still surface it in this session's context.
			sess.KnowledgeNotes = append(sess.KnowledgeNotes, captured)
		}
	}
	// Surface previously captured knowledge relevant to this message.
	if notes, err := s.knowledge.Search(ctx, message, 3); err == nil {
		for _, n := range notes {
			body := n.Content
			// Document content is "topic\nbody"; sessions carry the body.
			if i := strings.IndexByte(body, '\n'); i >= 0 {
				body = body[i+1:]
			}
			if !containsNote(sess.KnowledgeNotes, body) {
				sess.KnowledgeNotes = append(sess.KnowledgeNotes, body)
			}
		}
	}

	reply, err := s.conductor.Turn(ctx, sess, message)
	sess.TurnLatency = sess.meter.Snapshot().TotalLatency - latBefore
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return reply, pnerr.Canceled("session: send", ctxErr)
		}
		return reply, err
	}
	return reply, nil
}

// mergeDocs adds newly retrieved documents, deduplicating by ID; returns
// how many were new.
func (sess *Session) mergeDocs(ds []docs.Document) int {
	added := 0
	for _, d := range ds {
		if _, dup := sess.docIDs[d.ID]; dup {
			continue
		}
		sess.docIDs[d.ID] = struct{}{}
		sess.Docs = append(sess.Docs, d)
		added++
	}
	return added
}

// shedDocs drops the lowest-ranked half of the accumulated documents —
// the Conductor's context-pressure relief valve.
func (sess *Session) shedDocs() {
	if len(sess.Docs) <= 2 {
		return
	}
	keep := len(sess.Docs) / 2
	dropped := sess.Docs[keep:]
	sess.Docs = sess.Docs[:keep]
	for _, d := range dropped {
		delete(sess.docIDs, d.ID)
	}
}

func (sess *Session) pushAction(a ActionLog) { sess.actions = append(sess.actions, a) }

func (sess *Session) drainActions() []ActionLog {
	out := sess.actions
	sess.actions = nil
	return out
}

// knowledgeMarkers are utterance patterns that signal externalized domain
// assumptions worth persisting.
var knowledgeMarkers = []string{
	"assume", "should be calculated", "relative to the previous",
	"should account for", "keep in mind that", "note that", "by definition",
}

// captureKnowledge decides whether a user message contains persistable
// domain knowledge, returning the note body and a topic.
func captureKnowledge(message string) (body, topic string) {
	lower := strings.ToLower(message)
	for _, m := range knowledgeMarkers {
		if strings.Contains(lower, m) {
			words := strings.Fields(message)
			n := len(words)
			if n > 6 {
				n = 6
			}
			return message, strings.Join(words[:n], " ")
		}
	}
	return "", ""
}

func containsNote(notes []string, body string) bool {
	for _, n := range notes {
		if n == body {
			return true
		}
	}
	return false
}
