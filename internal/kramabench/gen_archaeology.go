// Package kramabench is the project's substitute for the KramaBench
// benchmark (Lai et al. 2025) used in the paper's evaluation (§4): seeded
// synthetic datasets whose shape matches Table 1 exactly — Archaeology with
// 5 tables averaging 11,289 rows and 16 columns, Environment with 36 tables
// averaging 9,199 rows and 10 columns — plus 12 and 20 benchmark questions
// with oracle-computed ground-truth answers.
//
// The questions exercise the same difficulty axes the paper's narrative
// relies on: opaque physical column names that only resolve through
// descriptions, filtered and temporal aggregates, multi-table joins,
// value-format repair, linear interpolation, and cross-table temporal
// anchors (the Maltese potassium question).
package kramabench

import (
	"fmt"
	"math/rand"

	"pneuma/internal/table"
	"pneuma/internal/value"
)

// Seed fixes every generator; all experiments are bit-reproducible.
const Seed = 20260118

// archaeology table row counts: 200 + 42045 + 4200 + 5000 + 5000 = 56445,
// i.e. an average of exactly 11,289 rows over 5 tables (Table 1). The
// split puts most rows in soil_samples (which then exceeds a 200k-token
// context when serialized whole — the O3 baseline experiment) while
// keeping the other tables under the limit, mirroring the paper's
// overflow-on-half-the-questions pattern.
const (
	rowsSites       = 200
	rowsSoil        = 42045
	rowsArtifacts   = 4200
	rowsRadiocarbon = 5000
	rowsOccupation  = 5000
)

// archRegions are the site regions; Malta drives the paper's running
// example.
var archRegions = []string{"Malta", "Gozo", "Sicily", "Sardinia", "Crete", "Cyprus", "Rhodes", "Santorini"}

var archSitePrefixes = []string{"Tarxien", "Ggantija", "Skorba", "Hagar", "Mnajdra", "Borg", "Kordin", "Bugibba", "Tas-Silg", "Xaghra"}
var archSiteSuffixes = []string{"Temple", "Settlement", "Necropolis", "Quarry", "Harbor", "Terrace", "Cave", "Midden"}

var artifactTypes = []string{"pottery sherd", "flint blade", "bone awl", "shell bead", "bronze pin", "obsidian flake", "loom weight", "figurine"}
var artifactMaterials = []string{"ceramic", "flint", "bone", "shell", "bronze", "obsidian", "clay", "stone"}
var archPeriods = []string{"Neolithic", "Chalcolithic", "Bronze Age", "Iron Age", "Punic", "Roman"}
var evidenceTypes = []string{"hearth", "burial", "midden", "structure", "pottery scatter", "census record"}
var collectors = []string{"Vella", "Borg", "Camilleri", "Farrugia", "Zammit", "Grech"}
var methods = []string{"XRF", "ICP-MS", "wet chemistry", "spectrometry"}

// Archaeology generates the 5-table archaeology dataset.
func Archaeology() map[string]*table.Table {
	rng := rand.New(rand.NewSource(Seed))
	out := make(map[string]*table.Table)

	// --- excavation_sites (200 × 16) ---
	sites := table.New(table.Schema{
		Name:        "excavation_sites",
		Description: "Registry of archaeological excavation sites with location and status",
		Columns: []table.Column{
			{Name: "site_id", Type: value.KindInt, Description: "Site identifier"},
			{Name: "site_name", Type: value.KindString, Description: "Site name"},
			{Name: "region", Type: value.KindString, Description: "Geographic region of the site"},
			{Name: "country", Type: value.KindString, Description: "Country"},
			{Name: "latitude", Type: value.KindFloat, Description: "Latitude in decimal degrees"},
			{Name: "longitude", Type: value.KindFloat, Description: "Longitude in decimal degrees"},
			{Name: "site_type", Type: value.KindString, Description: "Type of site"},
			{Name: "discovered_year", Type: value.KindInt, Description: "Year the site was discovered"},
			{Name: "excavation_status", Type: value.KindString, Description: "Current excavation status"},
			{Name: "area_m2", Type: value.KindFloat, Description: "Excavated area in square meters", Unit: "m2"},
			{Name: "elevation_m", Type: value.KindFloat, Description: "Elevation above sea level", Unit: "m"},
			{Name: "period_primary", Type: value.KindString, Description: "Primary occupation period"},
			{Name: "lead_archaeologist", Type: value.KindString, Description: "Lead archaeologist surname"},
			{Name: "permit_code", Type: value.KindString, Description: "Excavation permit code"},
			{Name: "trench_count", Type: value.KindInt, Description: "Number of excavation trenches"},
			{Name: "active", Type: value.KindBool, Description: "Whether excavation is ongoing"},
		},
	})
	siteNames := make([]string, rowsSites)
	siteRegions := make([]string, rowsSites)
	for i := 0; i < rowsSites; i++ {
		name := fmt.Sprintf("%s %s %d",
			archSitePrefixes[rng.Intn(len(archSitePrefixes))],
			archSiteSuffixes[rng.Intn(len(archSiteSuffixes))], i+1)
		region := archRegions[i%len(archRegions)]
		siteNames[i] = name
		siteRegions[i] = region
		status := []string{"active", "completed", "suspended"}[rng.Intn(3)]
		sites.MustAppend(table.Row{
			value.Int(int64(i + 1)),
			value.String(name),
			value.String(region),
			value.String(countryOf(region)),
			value.Float(34.5 + rng.Float64()*4),
			value.Float(13.5 + rng.Float64()*12),
			value.String(archSiteSuffixes[rng.Intn(len(archSiteSuffixes))]),
			value.Int(int64(1880 + rng.Intn(140))),
			value.String(status),
			value.Float(50 + rng.Float64()*5000),
			value.Float(rng.Float64() * 250),
			value.String(archPeriods[rng.Intn(len(archPeriods))]),
			value.String(collectors[rng.Intn(len(collectors))]),
			value.String(fmt.Sprintf("PRM-%04d", rng.Intn(10000))),
			value.Int(int64(1 + rng.Intn(20))),
			value.Bool(status == "active"),
		})
	}
	out[sites.Schema.Name] = sites

	// --- soil_samples (30,000 × 16) ---
	// The chemistry table: opaque physical names (k_ppm, p_ppm, n_pct) that
	// only resolve to user language through descriptions, sparse k_ppm
	// values (interpolation questions), and sample_date in a non-ISO
	// format on a slice of rows (format-repair questions).
	soil := table.New(table.Schema{
		Name:        "soil_samples",
		Description: "Soil chemistry samples taken at excavation sites across study years",
		Columns: []table.Column{
			{Name: "sample_id", Type: value.KindInt, Description: "Sample identifier"},
			{Name: "site_name", Type: value.KindString, Description: "Excavation site the sample was taken at"},
			{Name: "region", Type: value.KindString, Description: "Region of the site"},
			{Name: "study_year", Type: value.KindInt, Description: "Year of the study campaign"},
			{Name: "sample_date", Type: value.KindString, Description: "Collection date"},
			{Name: "depth_cm", Type: value.KindFloat, Description: "Sampling depth below surface", Unit: "cm"},
			{Name: "k_ppm", Type: value.KindFloat, Description: "Potassium concentration in parts per million", Unit: "ppm"},
			{Name: "p_ppm", Type: value.KindFloat, Description: "Phosphorus concentration in parts per million", Unit: "ppm"},
			{Name: "n_pct", Type: value.KindFloat, Description: "Nitrogen content percentage", Unit: "%"},
			{Name: "ca_ppm", Type: value.KindFloat, Description: "Calcium concentration in parts per million", Unit: "ppm"},
			{Name: "mg_ppm", Type: value.KindFloat, Description: "Magnesium concentration in parts per million", Unit: "ppm"},
			{Name: "ph", Type: value.KindFloat, Description: "Soil acidity (pH)"},
			{Name: "organic_pct", Type: value.KindFloat, Description: "Organic matter percentage", Unit: "%"},
			{Name: "collector", Type: value.KindString, Description: "Collector surname"},
			{Name: "method", Type: value.KindString, Description: "Analysis method"},
			{Name: "lab_certified", Type: value.KindBool, Description: "Whether the measuring lab is certified"},
		},
	})
	months := []string{"January", "February", "March", "April", "May", "June",
		"July", "August", "September", "October", "November", "December"}
	for i := 0; i < rowsSoil; i++ {
		siteIdx := rng.Intn(rowsSites)
		year := 1900 + rng.Intn(120)
		month := rng.Intn(12)
		day := 1 + rng.Intn(28)
		// 30% of dates use "Month Day, Year"; the rest ISO; 2% are the
		// archival "n.d." (no date) marker. Temporal use of this column
		// needs normalization, and the dirty values force the repair loop.
		var date string
		switch {
		case rng.Float64() < 0.02:
			date = "n.d."
		case rng.Float64() < 0.3:
			date = fmt.Sprintf("%s %d, %d", months[month], day, year)
		default:
			date = fmt.Sprintf("%04d-%02d-%02d", year, month+1, day)
		}
		// Potassium has a regional signal plus a slow temporal drift, and
		// 20% missing values (interpolation questions).
		kBase := 95.0 + 18.0*float64(siteIdx%len(archRegions))
		k := value.Null()
		if rng.Float64() >= 0.20 {
			k = value.Float(kBase + 0.08*float64(year-1900) + rng.NormFloat64()*9)
		}
		soil.MustAppend(table.Row{
			value.Int(int64(i + 1)),
			value.String(siteNames[siteIdx]),
			value.String(siteRegions[siteIdx]),
			value.Int(int64(year)),
			value.String(date),
			value.Float(5 + rng.Float64()*195),
			k,
			value.Float(40 + rng.Float64()*60),
			value.Float(0.05 + rng.Float64()*0.9),
			value.Float(800 + rng.Float64()*2400),
			value.Float(60 + rng.Float64()*240),
			value.Float(5.5 + rng.Float64()*3),
			value.Float(0.5 + rng.Float64()*9),
			value.String(collectors[rng.Intn(len(collectors))]),
			value.String(methods[rng.Intn(len(methods))]),
			value.Bool(rng.Float64() < 0.8),
		})
	}
	out[soil.Schema.Name] = soil

	// --- artifacts (15,000 × 16) ---
	artifacts := table.New(table.Schema{
		Name:        "artifacts",
		Description: "Catalogued artifacts recovered from excavation sites",
		Columns: []table.Column{
			{Name: "artifact_id", Type: value.KindInt, Description: "Artifact identifier"},
			{Name: "site_name", Type: value.KindString, Description: "Site of recovery"},
			{Name: "region", Type: value.KindString, Description: "Region of the site"},
			{Name: "artifact_type", Type: value.KindString, Description: "Kind of artifact"},
			{Name: "material", Type: value.KindString, Description: "Primary material"},
			{Name: "period", Type: value.KindString, Description: "Attributed archaeological period"},
			{Name: "length_cm", Type: value.KindFloat, Description: "Length", Unit: "cm"},
			{Name: "width_cm", Type: value.KindFloat, Description: "Width", Unit: "cm"},
			{Name: "mass_g", Type: value.KindString, Description: "Mass in grams, as recorded by cataloguers", Unit: "g"},
			{Name: "condition_grade", Type: value.KindInt, Description: "Condition grade 1 (poor) to 5 (pristine)"},
			{Name: "catalog_date", Type: value.KindString, Description: "Date the artifact was catalogued"},
			{Name: "depth_found_cm", Type: value.KindFloat, Description: "Recovery depth", Unit: "cm"},
			{Name: "trench", Type: value.KindString, Description: "Trench code"},
			{Name: "catalogued_by", Type: value.KindString, Description: "Cataloguer surname"},
			{Name: "on_display", Type: value.KindBool, Description: "Whether exhibited in a museum"},
			{Name: "storage_box", Type: value.KindString, Description: "Storage box code"},
		},
	})
	for i := 0; i < rowsArtifacts; i++ {
		siteIdx := rng.Intn(rowsSites)
		year := 1950 + rng.Intn(75)
		month := rng.Intn(12)
		day := 1 + rng.Intn(28)
		// Cataloguers recorded dates as "Month Day, Year"; 2% are "n.d.".
		date := fmt.Sprintf("%s %d, %d", months[month], day, year)
		if rng.Float64() < 0.02 {
			date = "n.d."
		}
		// Mass was recorded as free text; 1.5% of entries read "unknown" —
		// aggregating this column forces numeric coercion plus a repair.
		mass := fmt.Sprintf("%.1f", 1+rng.Float64()*2000)
		if rng.Float64() < 0.015 {
			mass = "unknown"
		}
		artifacts.MustAppend(table.Row{
			value.Int(int64(i + 1)),
			value.String(siteNames[siteIdx]),
			value.String(siteRegions[siteIdx]),
			value.String(artifactTypes[rng.Intn(len(artifactTypes))]),
			value.String(artifactMaterials[rng.Intn(len(artifactMaterials))]),
			value.String(archPeriods[rng.Intn(len(archPeriods))]),
			value.Float(0.5 + rng.Float64()*40),
			value.Float(0.3 + rng.Float64()*25),
			value.String(mass),
			value.Int(int64(1 + rng.Intn(5))),
			value.String(date),
			value.Float(5 + rng.Float64()*300),
			value.String(fmt.Sprintf("TR-%02d", 1+rng.Intn(20))),
			value.String(collectors[rng.Intn(len(collectors))]),
			value.Bool(rng.Float64() < 0.1),
			value.String(fmt.Sprintf("BX-%04d", rng.Intn(5000))),
		})
	}
	out[artifacts.Schema.Name] = artifacts

	// --- radiocarbon_dates (5,000 × 16) ---
	radiocarbon := table.New(table.Schema{
		Name:        "radiocarbon_dates",
		Description: "Radiocarbon dating results for organic samples from sites",
		Columns: []table.Column{
			{Name: "lab_code", Type: value.KindString, Description: "Dating lab code"},
			{Name: "site_name", Type: value.KindString, Description: "Site the sample came from"},
			{Name: "region", Type: value.KindString, Description: "Region of the site"},
			{Name: "material_dated", Type: value.KindString, Description: "Dated material"},
			{Name: "c14_age_bp", Type: value.KindInt, Description: "Radiocarbon age in years before present", Unit: "BP"},
			{Name: "error_bp", Type: value.KindInt, Description: "Measurement error", Unit: "BP"},
			{Name: "calibrated_from", Type: value.KindInt, Description: "Calibrated range start (BCE negative)"},
			{Name: "calibrated_to", Type: value.KindInt, Description: "Calibrated range end (BCE negative)"},
			{Name: "delta_c13", Type: value.KindFloat, Description: "Delta carbon-13 ratio", Unit: "permil"},
			{Name: "sample_mass_mg", Type: value.KindFloat, Description: "Sample mass", Unit: "mg"},
			{Name: "pretreatment", Type: value.KindString, Description: "Pretreatment protocol"},
			{Name: "measured_year", Type: value.KindInt, Description: "Year the measurement was made"},
			{Name: "lab_name", Type: value.KindString, Description: "Laboratory name"},
			{Name: "context_code", Type: value.KindString, Description: "Stratigraphic context code"},
			{Name: "reliable", Type: value.KindBool, Description: "Whether the date passed reliability checks"},
			{Name: "publication", Type: value.KindString, Description: "Publication reference"},
		},
	})
	labNames := []string{"Oxford", "Groningen", "Zurich", "Tucson"}
	matsDated := []string{"charcoal", "bone collagen", "seed", "shell"}
	for i := 0; i < rowsRadiocarbon; i++ {
		siteIdx := rng.Intn(rowsSites)
		age := 2000 + rng.Intn(6000)
		radiocarbon.MustAppend(table.Row{
			value.String(fmt.Sprintf("%s-%05d", labNames[rng.Intn(len(labNames))][:2], i+1)),
			value.String(siteNames[siteIdx]),
			value.String(siteRegions[siteIdx]),
			value.String(matsDated[rng.Intn(len(matsDated))]),
			value.Int(int64(age)),
			value.Int(int64(20 + rng.Intn(80))),
			value.Int(int64(-age + 1950 - 100 + rng.Intn(50))),
			value.Int(int64(-age + 1950 + 50 + rng.Intn(50))),
			value.Float(-28 + rng.Float64()*8),
			value.Float(1 + rng.Float64()*120),
			value.String([]string{"ABA", "ABOx", "collagen extraction"}[rng.Intn(3)]),
			value.Int(int64(1970 + rng.Intn(55))),
			value.String(labNames[rng.Intn(len(labNames))]),
			value.String(fmt.Sprintf("CTX-%04d", rng.Intn(9999))),
			value.Bool(rng.Float64() < 0.85),
			value.String(fmt.Sprintf("Ref%03d", rng.Intn(400))),
		})
	}
	out[radiocarbon.Schema.Name] = radiocarbon

	// --- occupation_records (6,245 × 16) ---
	// The table behind "the first and last time the study recorded people
	// in the Maltese area": population evidence per region per year.
	occupation := table.New(table.Schema{
		Name:        "occupation_records",
		Description: "Study records of human occupation evidence (people recorded) by region and year",
		Columns: []table.Column{
			{Name: "record_id", Type: value.KindInt, Description: "Record identifier"},
			{Name: "site_name", Type: value.KindString, Description: "Site the record concerns"},
			{Name: "region", Type: value.KindString, Description: "Region of the record"},
			{Name: "study_year", Type: value.KindInt, Description: "Year the study recorded people at the location"},
			{Name: "population_estimate", Type: value.KindInt, Description: "Estimated number of people recorded"},
			{Name: "evidence_type", Type: value.KindString, Description: "Kind of occupation evidence"},
			{Name: "confidence", Type: value.KindFloat, Description: "Confidence score 0-1"},
			{Name: "households", Type: value.KindInt, Description: "Estimated household count"},
			{Name: "dwellings", Type: value.KindInt, Description: "Dwelling structures identified"},
			{Name: "survey_method", Type: value.KindString, Description: "Survey methodology"},
			{Name: "surveyor", Type: value.KindString, Description: "Surveyor surname"},
			{Name: "season", Type: value.KindString, Description: "Field season"},
			{Name: "area_surveyed_m2", Type: value.KindFloat, Description: "Area surveyed", Unit: "m2"},
			{Name: "finds_count", Type: value.KindInt, Description: "Associated finds"},
			{Name: "published", Type: value.KindBool, Description: "Whether the record is published"},
			{Name: "archive_ref", Type: value.KindString, Description: "Archive reference"},
		},
	})
	seasons := []string{"spring", "summer", "autumn"}
	surveyMethods := []string{"pedestrian survey", "test pits", "remote sensing", "archival"}
	for i := 0; i < rowsOccupation; i++ {
		siteIdx := rng.Intn(rowsSites)
		region := siteRegions[siteIdx]
		// Occupation study years span a narrower window than soil sampling
		// (1920-2010), which is what makes the cross-table temporal anchor
		// question genuinely different from a same-table first/last.
		year := 1920 + rng.Intn(91)
		occupation.MustAppend(table.Row{
			value.Int(int64(i + 1)),
			value.String(siteNames[siteIdx]),
			value.String(region),
			value.Int(int64(year)),
			value.Int(int64(10 + rng.Intn(4000))),
			value.String(evidenceTypes[rng.Intn(len(evidenceTypes))]),
			value.Float(0.3 + rng.Float64()*0.7),
			value.Int(int64(2 + rng.Intn(600))),
			value.Int(int64(1 + rng.Intn(350))),
			value.String(surveyMethods[rng.Intn(len(surveyMethods))]),
			value.String(collectors[rng.Intn(len(collectors))]),
			value.String(seasons[rng.Intn(len(seasons))]),
			value.Float(100 + rng.Float64()*9000),
			value.Int(int64(rng.Intn(2500))),
			value.Bool(rng.Float64() < 0.6),
			value.String(fmt.Sprintf("ARC-%05d", rng.Intn(99999))),
		})
	}
	out[occupation.Schema.Name] = occupation

	return out
}

func countryOf(region string) string {
	switch region {
	case "Malta", "Gozo":
		return "Malta"
	case "Sicily", "Sardinia":
		return "Italy"
	case "Crete", "Rhodes", "Santorini":
		return "Greece"
	case "Cyprus":
		return "Cyprus"
	default:
		return "Unknown"
	}
}
