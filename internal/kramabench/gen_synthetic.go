package kramabench

import (
	"fmt"
	"math/rand"
	"sort"

	"pneuma/internal/table"
	"pneuma/internal/value"
)

// synthDomains are vocabulary pools for the scale-test generator; each
// synthetic table draws its name, description and column vocabulary from
// one domain so the corpus has retrieval structure (queries about one
// domain should rank that domain's tables first) instead of being noise.
var synthDomains = []struct {
	name    string
	nouns   []string
	columns []string
}{
	{"shipping", []string{"freight", "container", "manifest", "port", "vessel", "cargo"},
		[]string{"teu_count", "departure_port", "arrival_port", "transit_days", "gross_tonnage"}},
	{"energy", []string{"turbine", "grid", "substation", "reactor", "solar", "demand"},
		[]string{"output_mwh", "capacity_factor", "voltage_kv", "downtime_hours", "fuel_cost"}},
	{"retail", []string{"inventory", "checkout", "warehouse", "supplier", "basket", "promotion"},
		[]string{"sku_count", "unit_price", "stock_level", "reorder_point", "margin_pct"}},
	{"climate", []string{"rainfall", "temperature", "humidity", "station", "anomaly", "forecast"},
		[]string{"reading_c", "precip_mm", "wind_speed", "pressure_hpa", "sensor_id"}},
	{"finance", []string{"ledger", "portfolio", "settlement", "dividend", "exposure", "hedge"},
		[]string{"notional_usd", "yield_bps", "maturity_days", "rating_grade", "counterparty"}},
	{"health", []string{"admission", "diagnosis", "pathology", "vaccination", "clinic", "triage"},
		[]string{"patient_count", "wait_minutes", "dosage_mg", "ward_code", "outcome_score"}},
}

// Synthetic generates an n-table corpus for ingest and retrieval scale
// benchmarks. Tables are small (the cost under test is indexing and
// search, not row storage) but carry domain-structured names, column
// descriptions and sample values, so hybrid retrieval behaves as it does
// on real corpora. The generator is seeded: equal n yields an identical
// corpus.
func Synthetic(n int) map[string]*table.Table {
	rng := rand.New(rand.NewSource(Seed + 7))
	out := make(map[string]*table.Table, n)
	for i := 0; i < n; i++ {
		dom := synthDomains[i%len(synthDomains)]
		noun := dom.nouns[rng.Intn(len(dom.nouns))]
		name := fmt.Sprintf("%s_%s_%04d", dom.name, noun, i)
		cols := []table.Column{
			{Name: "record_id", Type: value.KindInt, Description: "Unique record identifier"},
			{Name: "region", Type: value.KindString, Description: "Geographic region of the " + noun + " record"},
		}
		nExtra := 2 + rng.Intn(3)
		for c := 0; c < nExtra; c++ {
			cn := dom.columns[(i+c)%len(dom.columns)]
			cols = append(cols, table.Column{
				Name:        cn,
				Type:        value.KindFloat,
				Description: fmt.Sprintf("Measured %s for the %s %s series", cn, dom.name, noun),
			})
		}
		t := table.New(table.Schema{
			Name:        name,
			Description: fmt.Sprintf("%s %s records for the %s domain scale benchmark", dom.name, noun, dom.name),
			Columns:     cols,
		})
		for r := 0; r < 8; r++ {
			row := table.Row{value.Int(int64(i*100 + r)), value.String(archRegions[rng.Intn(len(archRegions))])}
			for c := 0; c < nExtra; c++ {
				row = append(row, value.Float(rng.Float64()*1000))
			}
			t.MustAppend(row)
		}
		out[name] = t
	}
	return out
}

// SyntheticSlice returns Synthetic(n) as a slice sorted by table name —
// the canonical deterministic ingest order the benchmarks and CLIs share.
func SyntheticSlice(n int) []*table.Table {
	corpus := Synthetic(n)
	names := make([]string, 0, len(corpus))
	for name := range corpus {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*table.Table, 0, len(names))
	for _, name := range names {
		out = append(out, corpus[name])
	}
	return out
}

// RetrievalQueries returns the canonical query mix over the synthetic
// corpus domains, shared by the retrieval-latency benchmarks and
// `pneuma-bench -ingest` so CLI reports and the benchmark suite measure
// the same workload.
func RetrievalQueries() []string {
	return []string{
		"freight container transit from port", "turbine output capacity",
		"warehouse stock levels and reorder", "rainfall readings by station",
		"portfolio yield and maturity", "clinic admission wait times",
		"Malta region records", "gross tonnage of vessels",
	}
}
