package kramabench

import (
	"fmt"
	"strconv"

	"pneuma/internal/llm"
	"pneuma/internal/table"
	"pneuma/internal/transform"
)

// EnvironmentQuestions builds the 20 environment questions with oracle
// answers computed from the corpus.
func EnvironmentQuestions(corpus map[string]*table.Table) []Question {
	stations := corpus["stations"]

	var qs []Question
	add := func(q Question) { qs = append(qs, q) }

	// stationRows filters a measurement table to one named station.
	stationRows := func(meas *table.Table, name string) []table.Row {
		id := stationIDByName(stations, name)
		mi := meas.Schema.ColumnIndex("station_id")
		var out []table.Row
		for _, row := range meas.Rows {
			if row[mi].IntVal() == id {
				out = append(out, row)
			}
		}
		return out
	}

	// E1 — join measurement table with stations by station name.
	{
		t := corpus["air_pm25"]
		vals := floatsOf(t, stationRows(t, "Alder Point"), "pm25_ugm3")
		ans := mustAgg(vals, "AVG", "E1")
		add(Question{
			ID: "E1", Dataset: "environment",
			Need: llm.NeedSpec{
				Topic:         "air quality monitoring around the Alder Point station",
				MeasurePhrase: "fine particulate matter concentration",
				MeasureColumn: "pm25_ugm3",
				Tables:        []string{"air_pm25", "stations"},
				JoinTable:     "stations", JoinKey: "station_id",
				Aggregate:    "AVG",
				Filters:      []llm.FilterSpec{{Column: "station_name", Value: "Alder Point", ColumnPhrase: "station"}},
				RoundTo:      3,
				QuestionText: "What is the average fine particulate matter concentration at the Alder Point station? Round your answer to 3 decimal places.",
			},
			Answer:         formatAnswer(ans, 3),
			RelevantTables: []string{"air_pm25", "stations"},
			Tags:           []string{"join", "opaque-name"},
		})
	}

	// E2 — year-scoped average, no join.
	{
		t := corpus["air_pm25"]
		vals := floatsOf(t, rowsWhere(t, intBetween("year", 2015, 2015)), "pm25_ugm3")
		ans := mustAgg(vals, "AVG", "E2")
		add(Question{
			ID: "E2", Dataset: "environment",
			Need: llm.NeedSpec{
				Topic:         "regional air quality trends for particulate matter",
				MeasurePhrase: "fine particulate matter concentration",
				MeasureColumn: "pm25_ugm3",
				Tables:        []string{"air_pm25"},
				Aggregate:     "AVG",
				YearFrom:      2015, YearTo: 2015, TimeColumn: "year",
				RoundTo:      3,
				QuestionText: "What is the average fine particulate matter concentration across all stations in 2015? Round your answer to 3 decimal places.",
			},
			Answer:         formatAnswer(ans, 3),
			RelevantTables: []string{"air_pm25"},
			Tags:           []string{"temporal", "opaque-name"},
		})
	}

	// E3-E6 — transparent-name regional statistics (the easy tier every
	// baseline can ground).
	easyRegional := []struct {
		id, tbl, col, phrase, region, question string
		from, to                               int
		agg                                    string
		round                                  int
		topic                                  string
	}{
		{"E3", "forest_cover", "forest_km2", "forest cover area", "Lakelands",
			"What is the average forest cover area in the Lakelands region in 2010? Round your answer to 3 decimal places.",
			2010, 2010, "AVG", 3, "forest cover statistics across the Lakelands region"},
		{"E4", "waste_generation", "waste_kt", "municipal waste generated", "Coastal Strip",
			"What is the average municipal waste generated in the Coastal Strip region between 2000 and 2010? Round your answer to 3 decimal places.",
			2000, 2010, "AVG", 3, "municipal waste statistics for the Coastal Strip region"},
		{"E5", "noise_levels", "noise_db", "daytime noise level", "Central Plain",
			"What is the average daytime noise level in the Central Plain region? Round your answer to 3 decimal places.",
			0, 0, "AVG", 3, "urban noise monitoring in the Central Plain region"},
		{"E6", "biodiversity_counts", "species_n", "bird species observed", "Highlands",
			"What is the maximum of bird species observed in the Highlands region in any survey? Round your answer to 0 decimal places.",
			0, 0, "MAX", 0, "bird survey records across the Highlands region"},
	}
	for _, e := range easyRegional {
		t := corpus[e.tbl]
		preds := []pred{eq("region", e.region)}
		if e.from != 0 {
			preds = append(preds, intBetween("year", e.from, e.to))
		}
		vals := floatsOf(t, rowsWhere(t, preds...), e.col)
		ans := mustAgg(vals, e.agg, e.id)
		need := llm.NeedSpec{
			Topic:         e.topic,
			MeasurePhrase: e.phrase,
			MeasureColumn: e.col,
			Tables:        []string{e.tbl},
			Aggregate:     e.agg,
			Filters:       []llm.FilterSpec{{Column: "region", Value: e.region, ColumnPhrase: "region"}},
			RoundTo:       e.round,
			QuestionText:  e.question,
		}
		if e.from != 0 {
			need.YearFrom, need.YearTo, need.TimeColumn = e.from, e.to, "year"
		}
		add(Question{
			ID: e.id, Dataset: "environment", Need: need,
			Answer:         formatAnswer(ans, e.round),
			RelevantTables: []string{e.tbl},
			Tags:           []string{"easy", "transparent-name"},
		})
	}

	// E7-E9, E11 — opaque physical names that need description grounding,
	// with region or station joins.
	{
		t := corpus["water_phosphate"]
		vals := floatsOf(t, joinedRegionRows(t, stations, "Coastal Strip"), "po4_mgl")
		ans := mustAgg(vals, "AVG", "E7")
		add(Question{
			ID: "E7", Dataset: "environment",
			Need: llm.NeedSpec{
				Topic:         "water quality sampling from stations in the Coastal Strip region",
				MeasurePhrase: "phosphate concentration",
				MeasureColumn: "po4_mgl",
				Tables:        []string{"water_phosphate", "stations"},
				JoinTable:     "stations", JoinKey: "station_id",
				Aggregate:    "AVG",
				Filters:      []llm.FilterSpec{{Column: "region", Value: "Coastal Strip", ColumnPhrase: "region"}},
				RoundTo:      4,
				QuestionText: "What is the average phosphate concentration in water samples from the Coastal Strip region? Round your answer to 4 decimal places.",
			},
			Answer:         formatAnswer(ans, 4),
			RelevantTables: []string{"water_phosphate", "stations"},
			Tags:           []string{"join", "opaque-name"},
		})
	}
	{
		t := corpus["water_oxygen"]
		rows := joinedRegionRows(t, stations, "North Basin")
		sub := table.New(t.Schema)
		sub.Rows = rows
		vals := floatsOf(sub, rowsWhere(sub, intBetween("year", 2000, 2020)), "do_mgl")
		ans := mustAgg(vals, "AVG", "E8")
		add(Question{
			ID: "E8", Dataset: "environment",
			Need: llm.NeedSpec{
				Topic:         "dissolved oxygen monitoring of water bodies in the North Basin region",
				MeasurePhrase: "dissolved oxygen concentration",
				MeasureColumn: "do_mgl",
				Tables:        []string{"water_oxygen", "stations"},
				JoinTable:     "stations", JoinKey: "station_id",
				Aggregate: "AVG",
				Filters:   []llm.FilterSpec{{Column: "region", Value: "North Basin", ColumnPhrase: "region"}},
				YearFrom:  2000, YearTo: 2020, TimeColumn: "year",
				RoundTo:      4,
				QuestionText: "What is the average dissolved oxygen concentration in the North Basin region between 2000 and 2020? Round your answer to 4 decimal places.",
			},
			Answer:         formatAnswer(ans, 4),
			RelevantTables: []string{"water_oxygen", "stations"},
			Tags:           []string{"join", "temporal", "opaque-name"},
		})
	}
	{
		t := corpus["air_o3"]
		vals := floatsOf(t, stationRows(t, "Cedar Point"), "o3_ugm3")
		ans := mustAgg(vals, "MAX", "E9")
		add(Question{
			ID: "E9", Dataset: "environment",
			Need: llm.NeedSpec{
				Topic:         "ozone pollution episodes around the Cedar Point station",
				MeasurePhrase: "ground-level ozone concentration",
				MeasureColumn: "o3_ugm3",
				Tables:        []string{"air_o3", "stations"},
				JoinTable:     "stations", JoinKey: "station_id",
				Aggregate:    "MAX",
				Filters:      []llm.FilterSpec{{Column: "station_name", Value: "Cedar Point", ColumnPhrase: "station"}},
				RoundTo:      3,
				QuestionText: "What is the maximum ground-level ozone concentration recorded at the Cedar Point station? Round your answer to 3 decimal places.",
			},
			Answer:         formatAnswer(ans, 3),
			RelevantTables: []string{"air_o3", "stations"},
			Tags:           []string{"join", "opaque-name", "max"},
		})
	}

	// E10 — disambiguated emissions phrase.
	{
		t := corpus["emissions_transport"]
		vals := floatsOf(t, rowsWhere(t, eq("region", "West Valley"), intBetween("year", 2005, 2015)), "co2_kt")
		ans := mustAgg(vals, "SUM", "E10")
		add(Question{
			ID: "E10", Dataset: "environment",
			Need: llm.NeedSpec{
				Topic:         "transport sector emissions in the West Valley region",
				MeasurePhrase: "transport carbon dioxide emissions",
				MeasureColumn: "co2_kt",
				Tables:        []string{"emissions_transport"},
				Aggregate:     "SUM",
				Filters:       []llm.FilterSpec{{Column: "region", Value: "West Valley", ColumnPhrase: "region"}},
				YearFrom:      2005, YearTo: 2015, TimeColumn: "year",
				RoundTo:      2,
				QuestionText: "What is the total transport carbon dioxide emissions in the West Valley region between 2005 and 2015? Round your answer to 2 decimal places.",
			},
			Answer:         formatAnswer(ans, 2),
			RelevantTables: []string{"emissions_transport"},
			Tags:           []string{"sum", "temporal", "near-ambiguous"},
		})
	}

	// E11 — station join with a year range.
	{
		t := corpus["weather_humidity"]
		rows := stationRows(t, "Dune Point")
		sub := table.New(t.Schema)
		sub.Rows = rows
		vals := floatsOf(sub, rowsWhere(sub, intBetween("year", 1995, 2005)), "rh_pct")
		ans := mustAgg(vals, "AVG", "E11")
		add(Question{
			ID: "E11", Dataset: "environment",
			Need: llm.NeedSpec{
				Topic:         "weather observations at the Dune Point station",
				MeasurePhrase: "relative humidity",
				MeasureColumn: "rh_pct",
				Tables:        []string{"weather_humidity", "stations"},
				JoinTable:     "stations", JoinKey: "station_id",
				Aggregate: "AVG",
				Filters:   []llm.FilterSpec{{Column: "station_name", Value: "Dune Point", ColumnPhrase: "station"}},
				YearFrom:  1995, YearTo: 2005, TimeColumn: "year",
				RoundTo:      3,
				QuestionText: "What is the average relative humidity recorded at the Dune Point station between 1995 and 2005? Round your answer to 3 decimal places.",
			},
			Answer:         formatAnswer(ans, 3),
			RelevantTables: []string{"weather_humidity", "stations"},
			Tags:           []string{"join", "temporal"},
		})
	}

	// E12 — interpolation within the station's own series (intended) vs a
	// global interpolation (the plausible system reading).
	{
		t := corpus["water_nitrate"]
		id := stationIDByName(stations, "Elm Point")
		vals, err := interpolateWithin(t, []pred{func(tt *table.Table, row table.Row) bool {
			return row[tt.Schema.ColumnIndex("station_id")].IntVal() == id
		}}, "year", "nitrate_mgl", 0, 0)
		if err != nil {
			panic(err)
		}
		ans := mustAgg(vals, "AVG", "E12")
		add(Question{
			ID: "E12", Dataset: "environment",
			Need: llm.NeedSpec{
				Topic:         "nitrate pollution at the Elm Point station",
				MeasurePhrase: "nitrate concentration",
				MeasureColumn: "nitrate_mgl",
				Tables:        []string{"water_nitrate", "stations"},
				JoinTable:     "stations", JoinKey: "station_id",
				Aggregate:    "AVG",
				Filters:      []llm.FilterSpec{{Column: "station_name", Value: "Elm Point", ColumnPhrase: "station"}},
				Interpolate:  true,
				RoundTo:      4,
				QuestionText: "What is the average nitrate concentration in water at the Elm Point station? Assume that nitrate is linearly interpolated between samples. Round your answer to 4 decimal places.",
			},
			Answer:         formatAnswer(ans, 4),
			RelevantTables: []string{"water_nitrate", "stations"},
			Tags:           []string{"interpolation", "scope-semantics"},
		})
	}

	// E13 — first/last with month-level ordering the surface query loses.
	{
		t := corpus["air_so2"]
		id := stationIDByName(stations, "Fern Point")
		rows := stationRows(t, "Fern Point")
		_ = id
		// Intended: order by (year, month), interpolate the series, take
		// the first and last values.
		type obs struct {
			key  float64
			val  float64
			null bool
		}
		yi := t.Schema.ColumnIndex("year")
		mi := t.Schema.ColumnIndex("month")
		ci := t.Schema.ColumnIndex("so2_ugm3")
		var series []obs
		for _, row := range rows {
			key := row[yi].FloatVal()*12 + row[mi].FloatVal()
			if row[ci].IsNull() {
				series = append(series, obs{key: key, null: true})
			} else {
				series = append(series, obs{key: key, val: row[ci].FloatVal()})
			}
		}
		var xs, ys []float64
		for _, o := range series {
			if !o.null {
				xs = append(xs, o.key)
				ys = append(ys, o.val)
			}
		}
		minKey, maxKey := series[0].key, series[0].key
		for _, o := range series {
			if o.key < minKey {
				minKey = o.key
			}
			if o.key > maxKey {
				maxKey = o.key
			}
		}
		vFirst, err := transform.InterpolateAt(xs, ys, minKey)
		if err != nil {
			panic(err)
		}
		vLast, err := transform.InterpolateAt(xs, ys, maxKey)
		if err != nil {
			panic(err)
		}
		ans := (vFirst + vLast) / 2
		add(Question{
			ID: "E13", Dataset: "environment",
			Need: llm.NeedSpec{
				Topic:         "long-term sulphur dioxide record at the Fern Point station",
				MeasurePhrase: "sulphur dioxide concentration",
				MeasureColumn: "so2_ugm3",
				Tables:        []string{"air_so2", "stations"},
				JoinTable:     "stations", JoinKey: "station_id",
				Aggregate: "AVG",
				Filters:   []llm.FilterSpec{{Column: "station_name", Value: "Fern Point", ColumnPhrase: "station"}},
				FirstLast: true, Interpolate: true,
				RoundTo:      4,
				QuestionText: "What is the average sulphur dioxide concentration from the first and last recorded readings at the Fern Point station? Assume values are linearly interpolated between readings. Round your answer to 4 decimal places.",
			},
			Answer:         formatAnswer(ans, 4),
			RelevantTables: []string{"air_so2", "stations"},
			Tags:           []string{"first-last", "interpolation", "ordering-semantics"},
		})
	}

	// E14 — ratio across two tables: unsupported aggregate vocabulary.
	{
		rec := corpus["recycling_rates"]
		waste := corpus["waste_generation"]
		rvals := floatsOf(rec, rowsWhere(rec, eq("region", "East Valley")), "recy_pct")
		if len(floatsOf(waste, rowsWhere(waste, eq("region", "East Valley")), "waste_kt")) == 0 {
			panic("E14: no waste data for East Valley")
		}
		// Recycled kt / generated kt per year reduces to the recycling
		// percentage expressed as a ratio.
		rmean := mustAgg(rvals, "AVG", "E14")
		ans := rmean / 100
		add(Question{
			ID: "E14", Dataset: "environment",
			Need: llm.NeedSpec{
				Topic:         "waste management performance in the East Valley region",
				MeasurePhrase: "ratio of recycled waste to generated waste",
				MeasureColumn: "recy_pct",
				Tables:        []string{"recycling_rates", "waste_generation"},
				Aggregate:     "AVG",
				Filters:       []llm.FilterSpec{{Column: "region", Value: "East Valley", ColumnPhrase: "region"}},
				RoundTo:       4,
				QuestionText:  "What is the average ratio of recycled waste to generated waste across the East Valley region? Round your answer to 4 decimal places.",
			},
			Answer:         formatAnswer(ans, 4),
			RelevantTables: []string{"recycling_rates", "waste_generation"},
			Tags:           []string{"derived-ratio", "unsupported-aggregate", "multi-table"},
		})
	}

	// E15 — argmax over regions.
	{
		t := corpus["emissions_industry"]
		region, _ := argmaxGroup(t, "region", "co2eq_kt")
		add(Question{
			ID: "E15", Dataset: "environment",
			Need: llm.NeedSpec{
				Topic:         "industrial emissions compared across regions",
				MeasurePhrase: "industry carbon dioxide equivalent emissions",
				MeasureColumn: "co2eq_kt",
				Tables:        []string{"emissions_industry"},
				Aggregate:     "MAX",
				RoundTo:       -1,
				QuestionText:  "Which region has the highest industry carbon dioxide equivalent emissions on average? Provide the region name.",
			},
			Answer:         region,
			RelevantTables: []string{"emissions_industry"},
			Tags:           []string{"argmax", "entity-answer"},
		})
	}

	// E16 — "average annual": mean of yearly means.
	{
		t := corpus["energy_consumption"]
		rows := rowsWhere(t, eq("region", "South Basin"), intBetween("year", 2000, 2020))
		_, means := yearlyMeans(t, rows, "year", "energy_gwh")
		ans := mustAgg(means, "AVG", "E16")
		add(Question{
			ID: "E16", Dataset: "environment",
			Need: llm.NeedSpec{
				Topic:         "electricity consumption trends in the South Basin region",
				MeasurePhrase: "annual electricity consumed",
				MeasureColumn: "energy_gwh",
				Tables:        []string{"energy_consumption"},
				Aggregate:     "AVG",
				Filters:       []llm.FilterSpec{{Column: "region", Value: "South Basin", ColumnPhrase: "region"}},
				YearFrom:      2000, YearTo: 2020, TimeColumn: "year",
				RoundTo:      2,
				QuestionText: "What is the average annual electricity consumed in the South Basin region between 2000 and 2020? Round your answer to 2 decimal places.",
			},
			Answer:         formatAnswer(ans, 2),
			RelevantTables: []string{"energy_consumption"},
			Tags:           []string{"weighting-semantics"},
		})
	}

	// E17 — boolean filter the surface grammar cannot express.
	{
		t := corpus["air_co"]
		id := stationIDByName(stations, "Grove Point")
		rows := rowsWhere(t, func(tt *table.Table, row table.Row) bool {
			return row[tt.Schema.ColumnIndex("station_id")].IntVal() == id
		}, boolTrue("validated"))
		vals := floatsOf(t, rows, "co_mgm3")
		ans := mustAgg(vals, "AVG", "E17")
		add(Question{
			ID: "E17", Dataset: "environment",
			Need: llm.NeedSpec{
				Topic:         "carbon monoxide measurements at the Grove Point station",
				MeasurePhrase: "carbon monoxide concentration",
				MeasureColumn: "co_mgm3",
				Tables:        []string{"air_co", "stations"},
				JoinTable:     "stations", JoinKey: "station_id",
				Aggregate:    "AVG",
				Filters:      []llm.FilterSpec{{Column: "station_name", Value: "Grove Point", ColumnPhrase: "station"}},
				RoundTo:      4,
				QuestionText: "What is the average carbon monoxide concentration among validated readings at the Grove Point station? Round your answer to 4 decimal places.",
			},
			Answer:         formatAnswer(ans, 4),
			RelevantTables: []string{"air_co", "stations"},
			Tags:           []string{"hidden-filter"},
		})
	}

	// E18 — month filter outside the surface grammar.
	{
		t := corpus["water_turbidity"]
		rows := rowsWhere(t, func(tt *table.Table, row table.Row) bool {
			m := row[tt.Schema.ColumnIndex("month")].IntVal()
			return m == 12 || m == 1 || m == 2
		})
		vals := floatsOf(t, rows, "turb_ntu")
		ans := mustAgg(vals, "MEDIAN", "E18")
		add(Question{
			ID: "E18", Dataset: "environment",
			Need: llm.NeedSpec{
				Topic:         "seasonal water clarity patterns across monitoring stations",
				MeasurePhrase: "turbidity",
				MeasureColumn: "turb_ntu",
				Tables:        []string{"water_turbidity"},
				Aggregate:     "MEDIAN",
				RoundTo:       3,
				QuestionText:  "What is the median turbidity in water bodies during the winter months of December through February? Round your answer to 3 decimal places.",
			},
			Answer:         formatAnswer(ans, 3),
			RelevantTables: []string{"water_turbidity"},
			Tags:           []string{"seasonal-filter", "median"},
		})
	}

	// E19 — year-over-year change: outside the aggregate vocabulary.
	{
		t := corpus["groundwater_levels"]
		rows := rowsWhere(t, eq("region", "Highlands"))
		_, means := yearlyMeans(t, rows, "year", "gw_level_m")
		var diffs []float64
		for i := 1; i < len(means); i++ {
			diffs = append(diffs, means[i]-means[i-1])
		}
		ans := mustAgg(diffs, "AVG", "E19")
		add(Question{
			ID: "E19", Dataset: "environment",
			Need: llm.NeedSpec{
				Topic:         "aquifer depletion in the Highlands region",
				MeasurePhrase: "year-over-year change in groundwater level",
				MeasureColumn: "gw_level_m",
				Tables:        []string{"groundwater_levels"},
				Aggregate:     "AVG",
				Filters:       []llm.FilterSpec{{Column: "region", Value: "Highlands", ColumnPhrase: "region"}},
				RoundTo:       4,
				QuestionText:  "What is the average year-over-year change in groundwater level across the Highlands region? Round your answer to 4 decimal places.",
			},
			Answer:         formatAnswer(ans, 4),
			RelevantTables: []string{"groundwater_levels"},
			Tags:           []string{"derived-delta", "unsupported-aggregate"},
		})
	}

	// E20 — data gap: the coastal index starts in 1995, the question asks
	// about 1992 (§3.2's grounding-gap scenario).
	add(Question{
		ID: "E20", Dataset: "environment",
		Need: llm.NeedSpec{
			Topic:         "historical coastal bathing water quality in the North Basin region",
			MeasurePhrase: "coastal bathing water quality index",
			MeasureColumn: "cbq_idx",
			Tables:        []string{"coastal_quality"},
			Aggregate:     "AVG",
			Filters:       []llm.FilterSpec{{Column: "region", Value: "North Basin", ColumnPhrase: "region"}},
			YearFrom:      1992, YearTo: 1992, TimeColumn: "year",
			RoundTo:      2,
			QuestionText: "What is the average coastal bathing water quality index in the North Basin region in 1992? Round your answer to 2 decimal places.",
		},
		Answer:         "no data for 1992 (records begin in 1995)",
		RelevantTables: []string{"coastal_quality"},
		Tags:           []string{"data-gap"},
	})

	if len(qs) != 20 {
		panic(fmt.Sprintf("environment bank has %d questions, want 20", len(qs)))
	}
	return qs
}

var _ = strconv.Itoa
