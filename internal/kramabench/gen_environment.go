package kramabench

import (
	"fmt"
	"math/rand"

	"pneuma/internal/table"
	"pneuma/internal/value"
)

// Environment dataset shape (Table 1): 36 tables, average 9,199 rows and 10
// columns. Reference tables (stations, rivers, lakes) are small; the 33
// measurement/statistic tables split the remaining rows so the total is
// exactly 36 × 9,199 = 331,164.

const (
	envTables    = 36
	envAvgRows   = 9199
	rowsStations = 250
	rowsRivers   = 180
	rowsLakes    = 120
)

var envRegions = []string{"North Basin", "South Basin", "East Valley", "West Valley", "Central Plain", "Coastal Strip", "Highlands", "Lakelands"}

var stationPrefixes = []string{"Alder", "Birch", "Cedar", "Dune", "Elm", "Fern", "Grove", "Heath", "Iris", "Juniper"}
var stationSuffixes = []string{"Point", "Ridge", "Crossing", "Mill", "Gate", "Hollow", "Bend", "Field"}

// measurementSpec describes one station-keyed measurement table.
type measurementSpec struct {
	name    string
	desc    string
	col     string
	colDesc string
	unit    string
	base    float64
	spread  float64
	nullPct float64
}

// stationSpecs are the station-keyed measurement tables (18).
var stationSpecs = []measurementSpec{
	{"air_pm25", "Air quality readings for fine particulate matter", "pm25_ugm3", "Fine particulate matter (PM2.5) concentration", "ug/m3", 12, 18, 0.05},
	{"air_pm10", "Air quality readings for coarse particulate matter", "pm10_ugm3", "Coarse particulate matter (PM10) concentration", "ug/m3", 22, 26, 0.05},
	{"air_no2", "Air quality readings for nitrogen dioxide", "no2_ugm3", "Nitrogen dioxide concentration", "ug/m3", 18, 22, 0.05},
	{"air_o3", "Air quality readings for ozone", "o3_ugm3", "Ground-level ozone concentration", "ug/m3", 55, 40, 0.05},
	{"air_so2", "Air quality readings for sulphur dioxide", "so2_ugm3", "Sulphur dioxide concentration", "ug/m3", 6, 9, 0.05},
	{"air_co", "Air quality readings for carbon monoxide", "co_mgm3", "Carbon monoxide concentration", "mg/m3", 0.5, 0.8, 0.05},
	{"air_benzene", "Air quality readings for benzene", "c6h6_ugm3", "Benzene concentration", "ug/m3", 1.2, 1.5, 0.08},
	{"water_nitrate", "River and lake water samples analyzed for nitrate", "nitrate_mgl", "Nitrate concentration in water", "mg/L", 4.5, 6, 0.12},
	{"water_phosphate", "Water samples analyzed for phosphate", "po4_mgl", "Phosphate concentration in water", "mg/L", 0.4, 0.7, 0.12},
	{"water_ph", "Water acidity measurements", "ph_level", "Water acidity (pH)", "", 7.4, 1.1, 0.03},
	{"water_oxygen", "Dissolved oxygen measurements in water bodies", "do_mgl", "Dissolved oxygen concentration", "mg/L", 8.5, 3, 0.06},
	{"water_turbidity", "Water clarity measurements", "turb_ntu", "Turbidity (water cloudiness)", "NTU", 9, 14, 0.1},
	{"water_ecoli", "Bacterial contamination counts in water", "ecoli_cfu", "Escherichia coli colony count per 100mL", "CFU", 120, 300, 0.15},
	{"water_temperature", "Water temperature measurements", "wtemp_c", "Water temperature", "C", 13, 9, 0.04},
	{"weather_temperature", "Weather station air temperature normals", "tavg_c", "Average air temperature", "C", 11, 12, 0.02},
	{"weather_precipitation", "Weather station precipitation totals", "precip_mm", "Monthly precipitation total", "mm", 65, 70, 0.02},
	{"weather_wind", "Weather station wind speed observations", "wind_ms", "Mean wind speed", "m/s", 4.2, 3, 0.02},
	{"weather_humidity", "Weather station relative humidity observations", "rh_pct", "Relative humidity percentage", "%", 72, 18, 0.02},
}

// regionSpec describes one region+year statistic table.
type regionSpec struct {
	name    string
	desc    string
	col     string
	colDesc string
	unit    string
	base    float64
	spread  float64
}

// smallRegionTables are annual-granularity statistic tables: 8 regions ×
// 30 years = 240 rows, small enough to fit whole into a 200k context (the
// 3-of-20 env questions the O3 baseline can actually read).
var smallRegionTables = map[string]bool{
	"noise_levels":        true,
	"biodiversity_counts": true,
	"uv_index":            true,
	"coastal_quality":     true,
	"renewable_share":     true,
}

// regionSpecs are the region-keyed statistic tables (15).
var regionSpecs = []regionSpec{
	{"emissions_transport", "Greenhouse gas emissions from the transport sector", "co2_kt", "Carbon dioxide emissions from transport", "kt", 420, 180},
	{"emissions_industry", "Greenhouse gas emissions from industry", "co2eq_kt", "Carbon dioxide equivalent emissions from industry", "kt", 650, 300},
	{"emissions_agriculture", "Greenhouse gas emissions from agriculture", "ch4_t", "Methane emissions from agriculture", "t", 900, 350},
	{"emissions_energy", "Greenhouse gas emissions from energy production", "co2_energy_kt", "Carbon dioxide emissions from energy production", "kt", 1100, 420},
	{"forest_cover", "Forested area statistics", "forest_km2", "Forest cover area", "km2", 340, 160},
	{"recycling_rates", "Municipal recycling statistics", "recy_pct", "Share of municipal waste recycled", "%", 38, 18},
	{"waste_generation", "Municipal waste generation statistics", "waste_kt", "Municipal waste generated", "kt", 210, 90},
	{"energy_consumption", "Energy consumption statistics", "energy_gwh", "Electricity consumed", "GWh", 780, 320},
	{"groundwater_levels", "Aquifer groundwater level observations", "gw_level_m", "Groundwater level below surface", "m", 14, 8},
	{"soil_quality", "Agricultural soil quality index surveys", "sqi", "Soil quality index (0-100)", "", 62, 20},
	{"noise_levels", "Urban noise monitoring aggregates", "noise_db", "Average daytime noise level", "dB", 58, 9},
	{"biodiversity_counts", "Breeding bird survey counts", "species_n", "Distinct bird species observed", "", 74, 28},
	{"uv_index", "Ultraviolet radiation index observations", "uv_idx", "Midday ultraviolet index", "", 4.5, 2.5},
	{"coastal_quality", "Coastal bathing water quality index", "cbq_idx", "Coastal bathing water quality index (0-100)", "", 71, 18},
	{"renewable_share", "Renewable electricity share statistics", "renew_pct", "Share of electricity from renewables", "%", 28, 16},
}

// Environment generates the 36-table environment dataset.
func Environment() map[string]*table.Table {
	rng := rand.New(rand.NewSource(Seed + 1))
	out := make(map[string]*table.Table)

	stationNames := make([]string, rowsStations)
	stationRegions := make([]string, rowsStations)

	// --- stations (250 × 10) ---
	stations := table.New(table.Schema{
		Name:        "stations",
		Description: "Monitoring stations registry with location and type",
		Columns: []table.Column{
			{Name: "station_id", Type: value.KindInt, Description: "Station identifier"},
			{Name: "station_name", Type: value.KindString, Description: "Station name"},
			{Name: "region", Type: value.KindString, Description: "Region the station monitors"},
			{Name: "latitude", Type: value.KindFloat, Description: "Latitude in decimal degrees"},
			{Name: "longitude", Type: value.KindFloat, Description: "Longitude in decimal degrees"},
			{Name: "elevation_m", Type: value.KindFloat, Description: "Elevation above sea level", Unit: "m"},
			{Name: "established_year", Type: value.KindInt, Description: "Year the station was established"},
			{Name: "station_type", Type: value.KindString, Description: "Monitoring domain (air, water, weather)"},
			{Name: "operator", Type: value.KindString, Description: "Operating agency"},
			{Name: "status", Type: value.KindString, Description: "Operational status"},
		},
	})
	operators := []string{"EnvAgency", "RegionalEPA", "HydroMet", "UniLab"}
	stTypes := []string{"air", "water", "weather"}
	for i := 0; i < rowsStations; i++ {
		name := fmt.Sprintf("%s %s",
			stationPrefixes[i%len(stationPrefixes)],
			stationSuffixes[(i/len(stationPrefixes))%len(stationSuffixes)])
		if i >= len(stationPrefixes)*len(stationSuffixes) {
			name = fmt.Sprintf("%s %d", name, i)
		}
		region := envRegions[i%len(envRegions)]
		stationNames[i] = name
		stationRegions[i] = region
		stations.MustAppend(table.Row{
			value.Int(int64(i + 1)),
			value.String(name),
			value.String(region),
			value.Float(46 + rng.Float64()*6),
			value.Float(4 + rng.Float64()*12),
			value.Float(rng.Float64() * 900),
			value.Int(int64(1950 + rng.Intn(70))),
			value.String(stTypes[i%3]),
			value.String(operators[rng.Intn(len(operators))]),
			value.String([]string{"operational", "maintenance", "decommissioned"}[rng.Intn(3)]),
		})
	}
	out[stations.Schema.Name] = stations

	// --- rivers (180 × 10) ---
	rivers := table.New(table.Schema{
		Name:        "rivers",
		Description: "River registry with length and basin characteristics",
		Columns: []table.Column{
			{Name: "river_id", Type: value.KindInt, Description: "River identifier"},
			{Name: "river_name", Type: value.KindString, Description: "River name"},
			{Name: "region", Type: value.KindString, Description: "Primary region the river flows through"},
			{Name: "length_km", Type: value.KindFloat, Description: "River length", Unit: "km"},
			{Name: "basin_km2", Type: value.KindFloat, Description: "Drainage basin area", Unit: "km2"},
			{Name: "avg_flow_m3s", Type: value.KindFloat, Description: "Average discharge", Unit: "m3/s"},
			{Name: "source_elev_m", Type: value.KindFloat, Description: "Source elevation", Unit: "m"},
			{Name: "mouth", Type: value.KindString, Description: "Water body the river empties into"},
			{Name: "navigable", Type: value.KindBool, Description: "Whether commercially navigable"},
			{Name: "protected", Type: value.KindBool, Description: "Whether under environmental protection"},
		},
	})
	riverNames := []string{"Aire", "Brent", "Clyde", "Derwent", "Eden", "Frome", "Goyt", "Hull", "Irwell", "Kennet"}
	mouths := []string{"North Sea", "Lake Grand", "Bay of Reeds", "River Main"}
	for i := 0; i < rowsRivers; i++ {
		rivers.MustAppend(table.Row{
			value.Int(int64(i + 1)),
			value.String(fmt.Sprintf("%s %d", riverNames[i%len(riverNames)], i/len(riverNames)+1)),
			value.String(envRegions[i%len(envRegions)]),
			value.Float(10 + rng.Float64()*400),
			value.Float(50 + rng.Float64()*8000),
			value.Float(1 + rng.Float64()*220),
			value.Float(100 + rng.Float64()*2400),
			value.String(mouths[rng.Intn(len(mouths))]),
			value.Bool(rng.Float64() < 0.3),
			value.Bool(rng.Float64() < 0.4),
		})
	}
	out[rivers.Schema.Name] = rivers

	// --- lakes (120 × 10) ---
	lakes := table.New(table.Schema{
		Name:        "lakes",
		Description: "Lake registry with surface and depth characteristics",
		Columns: []table.Column{
			{Name: "lake_id", Type: value.KindInt, Description: "Lake identifier"},
			{Name: "lake_name", Type: value.KindString, Description: "Lake name"},
			{Name: "region", Type: value.KindString, Description: "Region of the lake"},
			{Name: "surface_km2", Type: value.KindFloat, Description: "Surface area", Unit: "km2"},
			{Name: "max_depth_m", Type: value.KindFloat, Description: "Maximum depth", Unit: "m"},
			{Name: "volume_mcm", Type: value.KindFloat, Description: "Volume in million cubic meters", Unit: "mcm"},
			{Name: "trophic_state", Type: value.KindString, Description: "Trophic classification"},
			{Name: "inflows", Type: value.KindInt, Description: "Number of inflowing rivers"},
			{Name: "artificial", Type: value.KindBool, Description: "Whether the lake is a reservoir"},
			{Name: "bathing_allowed", Type: value.KindBool, Description: "Whether bathing is permitted"},
		},
	})
	lakeNames := []string{"Grand", "Mirror", "Stone", "Willow", "Crescent", "Osprey"}
	trophic := []string{"oligotrophic", "mesotrophic", "eutrophic"}
	for i := 0; i < rowsLakes; i++ {
		lakes.MustAppend(table.Row{
			value.Int(int64(i + 1)),
			value.String(fmt.Sprintf("Lake %s %d", lakeNames[i%len(lakeNames)], i/len(lakeNames)+1)),
			value.String(envRegions[i%len(envRegions)]),
			value.Float(0.2 + rng.Float64()*90),
			value.Float(2 + rng.Float64()*120),
			value.Float(1 + rng.Float64()*4000),
			value.String(trophic[rng.Intn(len(trophic))]),
			value.Int(int64(rng.Intn(8))),
			value.Bool(rng.Float64() < 0.25),
			value.Bool(rng.Float64() < 0.55),
		})
	}
	out[lakes.Schema.Name] = lakes

	// Distribute the remaining rows so the dataset total is exactly
	// envTables × envAvgRows: small annual tables get 8 regions × 30 years
	// = 240 rows; the other generated tables split the rest evenly.
	const smallRows = 240
	remaining := envTables*envAvgRows - rowsStations - rowsRivers - rowsLakes - smallRows*len(smallRegionTables)
	genTables := len(stationSpecs) + len(regionSpecs) - len(smallRegionTables)
	per := remaining / genTables
	extra := remaining - per*genTables

	// --- station-keyed measurement tables (10 cols each) ---
	for si, spec := range stationSpecs {
		n := per
		if si == 0 {
			n += extra
		}
		t := table.New(table.Schema{
			Name:        spec.name,
			Description: spec.desc,
			Columns: []table.Column{
				{Name: "reading_id", Type: value.KindInt, Description: "Reading identifier"},
				{Name: "station_id", Type: value.KindInt, Description: "Station that produced the reading"},
				{Name: "year", Type: value.KindInt, Description: "Year of the reading"},
				{Name: "month", Type: value.KindInt, Description: "Month of the reading"},
				{Name: spec.col, Type: value.KindFloat, Description: spec.colDesc, Unit: spec.unit},
				{Name: "sensor_code", Type: value.KindString, Description: "Sensor code"},
				{Name: "qc_flag", Type: value.KindString, Description: "Quality-control flag"},
				{Name: "validated", Type: value.KindBool, Description: "Whether the reading passed validation"},
				{Name: "instrument_model", Type: value.KindString, Description: "Instrument make and model"},
				{Name: "sampling_protocol", Type: value.KindString, Description: "Sampling protocol applied"},
			},
		})
		rngT := rand.New(rand.NewSource(Seed + int64(100+si)))
		for i := 0; i < n; i++ {
			stIdx := rngT.Intn(rowsStations)
			year := 1990 + rngT.Intn(35)
			v := value.Null()
			if rngT.Float64() >= spec.nullPct {
				// Regional signal + mild yearly trend keeps aggregates
				// meaningfully different across filters.
				regionBias := float64(stIdx%len(envRegions)) * spec.spread * 0.08
				val := spec.base + regionBias + 0.01*spec.base*float64(year-1990) + rngT.NormFloat64()*spec.spread*0.3
				if val < 0 {
					val = 0
				}
				v = value.Float(val)
			}
			t.MustAppend(table.Row{
				value.Int(int64(i + 1)),
				value.Int(int64(stIdx + 1)),
				value.Int(int64(year)),
				value.Int(int64(1 + rngT.Intn(12))),
				v,
				value.String(fmt.Sprintf("SN-%03d", rngT.Intn(400))),
				value.String([]string{"ok", "ok", "ok", "suspect"}[rngT.Intn(4)]),
				value.Bool(rngT.Float64() < 0.92),
				value.String([]string{"Beta Instruments GX-200", "HydroSense Mark IV", "AeroTrack 5000 Series", "EnviroScan Pro 12"}[rngT.Intn(4)]),
				value.String([]string{"monthly grab sample", "continuous automated logging", "weekly composite sample"}[rngT.Intn(3)]),
			})
		}
		out[t.Schema.Name] = t
	}

	// --- region-keyed statistic tables (10 cols each) ---
	citations := []string{
		"National Environmental Statistics Yearbook",
		"Regional Monitoring Bulletin Series B",
		"State of the Environment Annual Report",
		"Inter-Agency Compendium of Indicators",
	}
	for ri, spec := range regionSpecs {
		n := per
		if smallRegionTables[spec.name] {
			n = smallRows
		}
		t := table.New(table.Schema{
			Name:        spec.name,
			Description: spec.desc,
			Columns: []table.Column{
				{Name: "stat_id", Type: value.KindInt, Description: "Statistic identifier"},
				{Name: "region", Type: value.KindString, Description: "Region the statistic covers"},
				{Name: "year", Type: value.KindInt, Description: "Reporting year"},
				{Name: spec.col, Type: value.KindFloat, Description: spec.colDesc, Unit: spec.unit},
				{Name: "methodology", Type: value.KindString, Description: "Estimation methodology"},
				{Name: "reported_by", Type: value.KindString, Description: "Reporting agency"},
				{Name: "revision", Type: value.KindInt, Description: "Revision number"},
				{Name: "provisional", Type: value.KindBool, Description: "Whether the figure is provisional"},
				{Name: "coverage_pct", Type: value.KindFloat, Description: "Share of region covered by the estimate", Unit: "%"},
				{Name: "source_citation", Type: value.KindString, Description: "Published source of the figure"},
			},
		})
		rngT := rand.New(rand.NewSource(Seed + int64(200+ri)))
		for i := 0; i < n; i++ {
			var region string
			var year int
			if smallRegionTables[spec.name] {
				// Exactly one row per region-year, 1995-2024.
				region = envRegions[i%len(envRegions)]
				year = 1995 + i/len(envRegions)
			} else {
				region = envRegions[i%len(envRegions)]
				year = 1995 + rngT.Intn(30)
			}
			regionBias := float64(indexOf(envRegions, region)) * spec.spread * 0.1
			val := spec.base + regionBias - 0.004*spec.base*float64(year-1995) + rngT.NormFloat64()*spec.spread*0.25
			if val < 0 {
				val = 0
			}
			t.MustAppend(table.Row{
				value.Int(int64(i + 1)),
				value.String(region),
				value.Int(int64(year)),
				value.Float(val),
				value.String([]string{"survey", "model", "census"}[rngT.Intn(3)]),
				value.String(operators[rngT.Intn(len(operators))]),
				value.Int(int64(rngT.Intn(3))),
				value.Bool(rngT.Float64() < 0.15),
				value.Float(60 + rngT.Float64()*40),
				value.String(citations[rngT.Intn(len(citations))]),
			})
		}
		out[t.Schema.Name] = t
	}
	return out
}

func indexOf(xs []string, x string) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return 0
}
