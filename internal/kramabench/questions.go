package kramabench

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"pneuma/internal/llm"
	"pneuma/internal/table"
	"pneuma/internal/transform"
)

// Question is one benchmark item: a latent information need, the oracle's
// ground-truth answer, and metadata for the harness.
type Question struct {
	ID      string
	Dataset string
	// Need is the structured latent information need driving LLM Sim.
	Need llm.NeedSpec
	// Answer is the oracle's ground truth (numeric answers are rendered
	// with the question's rounding applied).
	Answer string
	// RelevantTables are the ground-truth tables (the O3 whole-table
	// baseline serializes exactly these).
	RelevantTables []string
	// Tags label the difficulty axes the question exercises.
	Tags []string
}

// AnswersMatch compares a system answer against the ground truth: numeric
// answers compare after rounding to the question's precision, other answers
// compare case-insensitively.
func (q Question) AnswersMatch(got string) bool {
	got = strings.TrimSpace(got)
	if got == "" {
		return false
	}
	want := q.Answer
	gf, gerr := strconv.ParseFloat(got, 64)
	wf, werr := strconv.ParseFloat(want, 64)
	if gerr == nil && werr == nil {
		r := q.Need.RoundTo
		if r < 0 {
			r = 6
		}
		return roundTo(gf, r) == roundTo(wf, r)
	}
	return strings.EqualFold(got, want)
}

// ArchaeologyQuestions builds the 12 archaeology questions with oracle
// answers computed from the corpus.
func ArchaeologyQuestions(corpus map[string]*table.Table) []Question {
	soil := corpus["soil_samples"]
	artifacts := corpus["artifacts"]
	radiocarbon := corpus["radiocarbon_dates"]
	occupation := corpus["occupation_records"]

	var qs []Question
	add := func(q Question) { qs = append(qs, q) }

	// A1 — easy filtered average; transparent column name.
	{
		vals := floatsOf(soil, rowsWhere(soil, eq("region", "Malta")), "organic_pct")
		ans := mustAgg(vals, "AVG", "A1")
		add(Question{
			ID: "A1", Dataset: "archaeology",
			Need: llm.NeedSpec{
				Topic:         "historical soil chemistry data from the Malta region",
				MeasurePhrase: "organic matter percentage",
				MeasureColumn: "organic_pct",
				Tables:        []string{"soil_samples"},
				Aggregate:     "AVG",
				Filters:       []llm.FilterSpec{{Column: "region", Value: "Malta", ColumnPhrase: "region"}},
				RoundTo:       4,
				QuestionText:  "What is the average organic matter percentage for soil samples in the Malta region? Round your answer to 4 decimal places.",
			},
			Answer:         formatAnswer(ans, 4),
			RelevantTables: []string{"soil_samples"},
			Tags:           []string{"easy", "filtered-aggregate"},
		})
	}

	// A2 — max with transparent name.
	{
		vals := floatsOf(soil, rowsWhere(soil, eq("region", "Gozo")), "depth_cm")
		ans := mustAgg(vals, "MAX", "A2")
		add(Question{
			ID: "A2", Dataset: "archaeology",
			Need: llm.NeedSpec{
				Topic:         "soil sampling campaigns around the Gozo region",
				MeasurePhrase: "sampling depth",
				MeasureColumn: "depth_cm",
				Tables:        []string{"soil_samples"},
				Aggregate:     "MAX",
				Filters:       []llm.FilterSpec{{Column: "region", Value: "Gozo", ColumnPhrase: "region"}},
				RoundTo:       2,
				QuestionText:  "What is the maximum sampling depth for soil samples in the Gozo region? Round your answer to 2 decimal places.",
			},
			Answer:         formatAnswer(ans, 2),
			RelevantTables: []string{"soil_samples"},
			Tags:           []string{"easy", "filtered-aggregate"},
		})
	}

	// A3 — count over a year range.
	{
		rows := rowsWhere(occupation, eq("region", "Malta"), intBetween("study_year", 1940, 1960))
		add(Question{
			ID: "A3", Dataset: "archaeology",
			Need: llm.NeedSpec{
				Topic:         "occupation records of ancient settlements in the Malta region",
				MeasurePhrase: "population estimate records",
				MeasureColumn: "population_estimate",
				Tables:        []string{"occupation_records"},
				Aggregate:     "COUNT",
				Filters:       []llm.FilterSpec{{Column: "region", Value: "Malta", ColumnPhrase: "region"}},
				YearFrom:      1940, YearTo: 1960, TimeColumn: "study_year",
				RoundTo:      -1,
				QuestionText: "What is the count of population estimate records in the Malta region between 1940 and 1960?",
			},
			Answer:         strconv.Itoa(len(rows)),
			RelevantTables: []string{"occupation_records"},
			Tags:           []string{"easy", "count", "temporal"},
		})
	}

	// A4 — dirty numeric column: mass recorded as text with "unknown"
	// entries; requires numeric coercion plus a lenient repair.
	{
		vals := floatsOf(artifacts, rowsWhere(artifacts, eq("period", "Bronze Age"), eq("region", "Malta")), "mass_g")
		ans := mustAgg(vals, "AVG", "A4")
		add(Question{
			ID: "A4", Dataset: "archaeology",
			Need: llm.NeedSpec{
				Topic:         "catalogued artifacts recovered in the Malta region",
				MeasurePhrase: "mass",
				MeasureColumn: "mass_g",
				Tables:        []string{"artifacts"},
				Aggregate:     "AVG",
				Filters: []llm.FilterSpec{
					{Column: "period", Value: "Bronze Age", ColumnPhrase: "period"},
					{Column: "region", Value: "Malta", ColumnPhrase: "region"},
				},
				RoundTo:      2,
				QuestionText: "What is the average mass of artifacts from the Bronze Age period found in the Malta region? Round your answer to 2 decimal places.",
			},
			Answer:         formatAnswer(ans, 2),
			RelevantTables: []string{"artifacts"},
			Tags:           []string{"dirty-numeric", "repair-loop", "multi-filter"},
		})
	}

	// A5 — the paper's Maltese potassium question: the first/last times come
	// from occupation_records (cross-table temporal anchor), potassium is
	// interpolated within the Malta series of yearly means.
	{
		occRows := rowsWhere(occupation, eq("region", "Malta"))
		years := floatsOf(occupation, occRows, "study_year")
		first := mustAgg(years, "MIN", "A5")
		last := mustAgg(years, "MAX", "A5")
		soilRows := rowsWhere(soil, eq("region", "Malta"))
		ys, ms := yearlyMeans(soil, soilRows, "study_year", "k_ppm")
		xs := make([]float64, len(ys))
		for i, y := range ys {
			xs[i] = float64(y)
		}
		vFirst, err := transform.InterpolateAt(xs, ms, first)
		if err != nil {
			panic(err)
		}
		vLast, err := transform.InterpolateAt(xs, ms, last)
		if err != nil {
			panic(err)
		}
		ans := (vFirst + vLast) / 2
		add(Question{
			ID: "A5", Dataset: "archaeology",
			Need: llm.NeedSpec{
				Topic:         "historical data from the Maltese region",
				MeasurePhrase: "Potassium in ppm",
				MeasureColumn: "k_ppm",
				Tables:        []string{"soil_samples", "occupation_records"},
				Aggregate:     "AVG",
				Filters:       []llm.FilterSpec{{Value: "Maltese", ColumnPhrase: "area"}},
				FirstLast:     true,
				Interpolate:   true,
				RoundTo:       4,
				QuestionText:  "What is the average Potassium in ppm from the first and last time the study recorded people in the Maltese area? Assume that Potassium is linearly interpolated between samples. Round your answer to 4 decimal places.",
			},
			Answer:         formatAnswer(ans, 4),
			RelevantTables: []string{"soil_samples", "occupation_records"},
			Tags:           []string{"cross-table-anchor", "interpolation", "first-last", "paper-example"},
		})
	}

	// A6 — interpolation inside a filtered series (opaque column name).
	{
		vals, err := interpolateWithin(soil, []pred{eq("region", "Sicily")}, "study_year", "k_ppm", 1920, 1980)
		if err != nil {
			panic(err)
		}
		ans := mustAgg(vals, "AVG", "A6")
		add(Question{
			ID: "A6", Dataset: "archaeology",
			Need: llm.NeedSpec{
				Topic:         "soil chemistry studies across the Sicily region",
				MeasurePhrase: "Potassium concentration",
				MeasureColumn: "k_ppm",
				Tables:        []string{"soil_samples"},
				Aggregate:     "AVG",
				Filters:       []llm.FilterSpec{{Column: "region", Value: "Sicily", ColumnPhrase: "region"}},
				YearFrom:      1920, YearTo: 1980, TimeColumn: "study_year",
				Interpolate:  true,
				RoundTo:      4,
				QuestionText: "What is the average Potassium concentration for soil samples in the Sicily region between 1920 and 1980? Assume that Potassium is linearly interpolated between samples. Round your answer to 4 decimal places.",
			},
			Answer:         formatAnswer(ans, 4),
			RelevantTables: []string{"soil_samples"},
			Tags:           []string{"interpolation", "opaque-name", "temporal"},
		})
	}

	// A7 — ratio: outside the supported aggregate vocabulary.
	{
		rows := rowsWhere(soil, eq("region", "Malta"))
		pi := soil.Schema.ColumnIndex("p_ppm")
		ni := soil.Schema.ColumnIndex("n_pct")
		var ratios []float64
		for _, row := range rows {
			p, pok := row[pi].AsFloat()
			n, nok := row[ni].AsFloat()
			if pok && nok && n != 0 && !row[pi].IsNull() && !row[ni].IsNull() {
				ratios = append(ratios, p/n)
			}
		}
		ans := mustAgg(ratios, "AVG", "A7")
		add(Question{
			ID: "A7", Dataset: "archaeology",
			Need: llm.NeedSpec{
				Topic:         "nutrient balance in soil samples from the Malta region",
				MeasurePhrase: "ratio of phosphorus to nitrogen",
				MeasureColumn: "p_ppm",
				Tables:        []string{"soil_samples"},
				Aggregate:     "AVG",
				Filters:       []llm.FilterSpec{{Column: "region", Value: "Malta", ColumnPhrase: "region"}},
				RoundTo:       4,
				QuestionText:  "What is the average ratio of phosphorus to nitrogen in soil samples across the Malta region? Round your answer to 4 decimal places.",
			},
			Answer:         formatAnswer(ans, 4),
			RelevantTables: []string{"soil_samples"},
			Tags:           []string{"derived-ratio", "unsupported-aggregate"},
		})
	}

	// A8 — date-format repair: catalog_date is "Month Day, Year" text with
	// "n.d." entries; the year filter needs parsing plus a lenient repair.
	{
		rows := rowsWhere(artifacts, eq("region", "Gozo"), dateYearBetween("catalog_date", 1960, 1980))
		vals := floatsOf(artifacts, rows, "condition_grade")
		ans := mustAgg(vals, "AVG", "A8")
		add(Question{
			ID: "A8", Dataset: "archaeology",
			Need: llm.NeedSpec{
				Topic:         "artifact cataloguing history in the Gozo region",
				MeasurePhrase: "condition grade",
				MeasureColumn: "condition_grade",
				Tables:        []string{"artifacts"},
				Aggregate:     "AVG",
				Filters:       []llm.FilterSpec{{Column: "region", Value: "Gozo", ColumnPhrase: "region"}},
				YearFrom:      1960, YearTo: 1980, TimeColumn: "catalog_date",
				RoundTo:      3,
				QuestionText: "What is the average condition grade of artifacts catalogued between 1960 and 1980 in the Gozo region? Round your answer to 3 decimal places.",
			},
			Answer:         formatAnswer(ans, 3),
			RelevantTables: []string{"artifacts"},
			Tags:           []string{"date-repair", "repair-loop", "temporal"},
		})
	}

	// A9 — argmax: the answer is an entity, not a statistic.
	{
		site, _ := argmaxGroup(soil, "site_name", "p_ppm")
		add(Question{
			ID: "A9", Dataset: "archaeology",
			Need: llm.NeedSpec{
				Topic:         "phosphorus enrichment across excavation sites",
				MeasurePhrase: "average phosphorus concentration",
				MeasureColumn: "p_ppm",
				Tables:        []string{"soil_samples"},
				Aggregate:     "MAX",
				RoundTo:       -1,
				QuestionText:  "Which excavation site has the highest average phosphorus concentration in soil samples? Provide the site name.",
			},
			Answer:         site,
			RelevantTables: []string{"soil_samples"},
			Tags:           []string{"argmax", "entity-answer"},
		})
	}

	// A10 — boolean filter the surface grammar cannot express.
	{
		rows := rowsWhere(radiocarbon, eq("region", "Crete"), boolTrue("reliable"))
		vals := floatsOf(radiocarbon, rows, "delta_c13")
		ans := mustAgg(vals, "STDDEV", "A10")
		add(Question{
			ID: "A10", Dataset: "archaeology",
			Need: llm.NeedSpec{
				Topic:         "radiocarbon dating results for the Crete region",
				MeasurePhrase: "delta carbon-13 ratio",
				MeasureColumn: "delta_c13",
				Tables:        []string{"radiocarbon_dates"},
				Aggregate:     "STDDEV",
				Filters:       []llm.FilterSpec{{Column: "region", Value: "Crete", ColumnPhrase: "region"}},
				RoundTo:       4,
				QuestionText:  "What is the standard deviation of the delta carbon-13 ratio for reliable radiocarbon dates in the Crete region? Round your answer to 4 decimal places.",
			},
			Answer:         formatAnswer(ans, 4),
			RelevantTables: []string{"radiocarbon_dates"},
			Tags:           []string{"hidden-filter", "stddev"},
		})
	}

	// A11 — cross-table filter with an out-of-range temporal reading: the
	// occupation study years start in 1920, so a "before 1900" filter on
	// the measure table is empty; the intended filter is the sites' own
	// discovery year via a join.
	{
		sites := corpus["excavation_sites"]
		di := sites.Schema.ColumnIndex("discovered_year")
		ni := sites.Schema.ColumnIndex("site_name")
		oldSites := map[string]bool{}
		for _, row := range sites.Rows {
			if row[di].IntVal() < 1900 {
				oldSites[row[ni].StringVal()] = true
			}
		}
		oi := occupation.Schema.ColumnIndex("site_name")
		var rows []table.Row
		for _, row := range occupation.Rows {
			if oldSites[row[oi].StringVal()] && strings.EqualFold(row[occupation.Schema.ColumnIndex("region")].String(), "Malta") {
				rows = append(rows, row)
			}
		}
		vals := floatsOf(occupation, rows, "population_estimate")
		ans := mustAgg(vals, "AVG", "A11")
		add(Question{
			ID: "A11", Dataset: "archaeology",
			Need: llm.NeedSpec{
				Topic:         "occupation of early-discovered sites in the Malta region",
				MeasurePhrase: "population estimate",
				MeasureColumn: "population_estimate",
				Tables:        []string{"occupation_records", "excavation_sites"},
				JoinTable:     "excavation_sites", JoinKey: "site_name",
				Aggregate:    "AVG",
				Filters:      []llm.FilterSpec{{Column: "region", Value: "Malta", ColumnPhrase: "region"}},
				YearTo:       1900,
				RoundTo:      2,
				QuestionText: "What is the average population estimate recorded at sites discovered before 1900 in the Malta region? Round your answer to 2 decimal places.",
			},
			Answer:         formatAnswer(ans, 2),
			RelevantTables: []string{"occupation_records", "excavation_sites"},
			Tags:           []string{"join", "temporal-misbinding"},
		})
	}

	// A12 — "average annual": mean of yearly means, not row mean.
	{
		rows := rowsWhere(soil, eq("region", "Cyprus"), intBetween("study_year", 1950, 2000))
		_, means := yearlyMeans(soil, rows, "study_year", "n_pct")
		ans := mustAgg(means, "AVG", "A12")
		add(Question{
			ID: "A12", Dataset: "archaeology",
			Need: llm.NeedSpec{
				Topic:         "long-term nitrogen trends in soil from the Cyprus region",
				MeasurePhrase: "annual nitrogen content percentage",
				MeasureColumn: "n_pct",
				Tables:        []string{"soil_samples"},
				Aggregate:     "AVG",
				Filters:       []llm.FilterSpec{{Column: "region", Value: "Cyprus", ColumnPhrase: "region"}},
				YearFrom:      1950, YearTo: 2000, TimeColumn: "study_year",
				RoundTo:      4,
				QuestionText: "What is the average annual nitrogen content percentage for soil samples in the Cyprus region between 1950 and 2000? Round your answer to 4 decimal places.",
			},
			Answer:         formatAnswer(ans, 4),
			RelevantTables: []string{"soil_samples"},
			Tags:           []string{"weighting-semantics", "opaque-name"},
		})
	}

	if len(qs) != 12 {
		panic(fmt.Sprintf("archaeology bank has %d questions, want 12", len(qs)))
	}
	return qs
}

// avoid unused import when math is only used indirectly in some builds.
var _ = math.Pi
