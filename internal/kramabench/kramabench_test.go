package kramabench

import (
	"strconv"
	"testing"
)

func TestArchaeologyShapeMatchesTable1(t *testing.T) {
	corpus := Archaeology()
	if len(corpus) != 5 {
		t.Fatalf("archaeology tables = %d, want 5", len(corpus))
	}
	totalRows, totalCols := 0, 0
	for name, tbl := range corpus {
		if tbl.NumCols() != 16 {
			t.Errorf("%s has %d cols, want 16", name, tbl.NumCols())
		}
		totalRows += tbl.NumRows()
		totalCols += tbl.NumCols()
	}
	if avg := totalRows / 5; avg != 11289 {
		t.Errorf("avg rows = %d, want 11289 (total %d)", avg, totalRows)
	}
	if avg := totalCols / 5; avg != 16 {
		t.Errorf("avg cols = %d, want 16", avg)
	}
}

func TestEnvironmentShapeMatchesTable1(t *testing.T) {
	corpus := Environment()
	if len(corpus) != 36 {
		t.Fatalf("environment tables = %d, want 36", len(corpus))
	}
	totalRows, totalCols := 0, 0
	for name, tbl := range corpus {
		if tbl.NumCols() != 10 {
			t.Errorf("%s has %d cols, want 10", name, tbl.NumCols())
		}
		totalRows += tbl.NumRows()
		totalCols += tbl.NumCols()
	}
	if avg := totalRows / 36; avg != 9199 {
		t.Errorf("avg rows = %d, want 9199 (total %d)", avg, totalRows)
	}
	if avg := totalCols / 36; avg != 10 {
		t.Errorf("avg cols = %d, want 10", avg)
	}
}

func TestGeneratorsAreDeterministic(t *testing.T) {
	a1 := Archaeology()["soil_samples"]
	a2 := Archaeology()["soil_samples"]
	if a1.NumRows() != a2.NumRows() {
		t.Fatal("row counts differ across builds")
	}
	for i := 0; i < 50; i++ {
		for c := 0; c < a1.NumCols(); c++ {
			if a1.Rows[i][c].String() != a2.Rows[i][c].String() {
				t.Fatalf("cell (%d,%d) differs: %q vs %q", i, c, a1.Rows[i][c], a2.Rows[i][c])
			}
		}
	}
}

func TestQuestionBanksBuild(t *testing.T) {
	arch := Archaeology()
	env := Environment()
	aq := ArchaeologyQuestions(arch)
	if len(aq) != 12 {
		t.Fatalf("archaeology questions = %d, want 12", len(aq))
	}
	eq := EnvironmentQuestions(env)
	if len(eq) != 20 {
		t.Fatalf("environment questions = %d, want 20", len(eq))
	}
	seen := map[string]bool{}
	for _, q := range append(aq, eq...) {
		if q.Answer == "" {
			t.Errorf("%s has empty ground truth", q.ID)
		}
		if q.Need.QuestionText == "" {
			t.Errorf("%s has no question text", q.ID)
		}
		if seen[q.ID] {
			t.Errorf("duplicate question id %s", q.ID)
		}
		seen[q.ID] = true
		if len(q.RelevantTables) == 0 {
			t.Errorf("%s lists no relevant tables", q.ID)
		}
	}
}

func TestAnswersMatch(t *testing.T) {
	q := Question{Answer: "12.345"}
	q.Need.RoundTo = 3
	if !q.AnswersMatch("12.345") {
		t.Error("exact match failed")
	}
	if !q.AnswersMatch("12.3451") {
		t.Error("within-rounding match failed")
	}
	if q.AnswersMatch("12.346") {
		t.Error("off-by-rounding should not match")
	}
	if q.AnswersMatch("") {
		t.Error("empty answer must not match")
	}
	qs := Question{Answer: "North Basin"}
	if !qs.AnswersMatch("north basin") {
		t.Error("case-insensitive string match failed")
	}
	if qs.AnswersMatch("South Basin") {
		t.Error("wrong string matched")
	}
}

func TestDirtyDataPresent(t *testing.T) {
	arch := Archaeology()
	soil := arch["soil_samples"]
	di := soil.Schema.ColumnIndex("sample_date")
	nd := 0
	for _, row := range soil.Rows {
		if row[di].String() == "n.d." {
			nd++
		}
	}
	if nd == 0 {
		t.Error("soil_samples should contain 'n.d.' dates for the repair loop")
	}
	artifacts := arch["artifacts"]
	mi := artifacts.Schema.ColumnIndex("mass_g")
	unknown := 0
	for _, row := range artifacts.Rows {
		if row[mi].String() == "unknown" {
			unknown++
		}
	}
	if unknown == 0 {
		t.Error("artifacts should contain 'unknown' masses for the repair loop")
	}
	ki := soil.Schema.ColumnIndex("k_ppm")
	nulls := 0
	for _, row := range soil.Rows {
		if row[ki].IsNull() {
			nulls++
		}
	}
	frac := float64(nulls) / float64(soil.NumRows())
	if frac < 0.15 || frac > 0.25 {
		t.Errorf("k_ppm null fraction = %.3f, want ~0.20", frac)
	}
}

var _ = strconv.Itoa
