package kramabench

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"pneuma/internal/table"
	"pneuma/internal/transform"
)

// The oracle computes ground-truth answers for benchmark questions directly
// from the generated data, implementing each question's *intended*
// semantics. Where a plausible system reading differs from the intended one
// (e.g. interpolating before vs after filtering), the oracle encodes the
// intended reading — that gap is precisely what separates convergence from
// accuracy in RQ2.

// pred filters rows of a table.
type pred func(t *table.Table, row table.Row) bool

// eq builds an equality predicate on a string column.
func eq(col, val string) pred {
	return func(t *table.Table, row table.Row) bool {
		i := t.Schema.ColumnIndex(col)
		return i >= 0 && strings.EqualFold(row[i].String(), val)
	}
}

// boolTrue builds a predicate on a boolean column.
func boolTrue(col string) pred {
	return func(t *table.Table, row table.Row) bool {
		i := t.Schema.ColumnIndex(col)
		if i < 0 {
			return false
		}
		b, ok := row[i].AsBool()
		return ok && b
	}
}

// intBetween builds a range predicate on an integer column.
func intBetween(col string, from, to int) pred {
	return func(t *table.Table, row table.Row) bool {
		i := t.Schema.ColumnIndex(col)
		if i < 0 {
			return false
		}
		v, ok := row[i].AsInt()
		return ok && v >= int64(from) && v <= int64(to)
	}
}

// dateYearBetween parses a date-string column and bounds its year; rows
// with unparseable dates (e.g. "n.d.") never match.
func dateYearBetween(col string, from, to int) pred {
	return func(t *table.Table, row table.Row) bool {
		i := t.Schema.ColumnIndex(col)
		if i < 0 {
			return false
		}
		tm, ok := row[i].AsTime()
		if !ok {
			return false
		}
		y := tm.Year()
		return y >= from && y <= to
	}
}

// rowsWhere returns the rows matching all predicates.
func rowsWhere(t *table.Table, preds ...pred) []table.Row {
	var out []table.Row
	for _, row := range t.Rows {
		ok := true
		for _, p := range preds {
			if !p(t, row) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, row)
		}
	}
	return out
}

// floatsOf extracts the parseable numeric values of a column from rows,
// skipping NULLs and non-numeric text ("unknown").
func floatsOf(t *table.Table, rows []table.Row, col string) []float64 {
	i := t.Schema.ColumnIndex(col)
	if i < 0 {
		return nil
	}
	var out []float64
	for _, row := range rows {
		if row[i].IsNull() {
			continue
		}
		if f, ok := row[i].AsFloat(); ok {
			out = append(out, f)
		}
	}
	return out
}

// aggOf applies an aggregate to values.
func aggOf(vals []float64, agg string) (float64, bool) {
	if len(vals) == 0 {
		return 0, false
	}
	switch agg {
	case "AVG":
		s := 0.0
		for _, v := range vals {
			s += v
		}
		return s / float64(len(vals)), true
	case "SUM":
		s := 0.0
		for _, v := range vals {
			s += v
		}
		return s, true
	case "COUNT":
		return float64(len(vals)), true
	case "MIN":
		m := vals[0]
		for _, v := range vals {
			if v < m {
				m = v
			}
		}
		return m, true
	case "MAX":
		m := vals[0]
		for _, v := range vals {
			if v > m {
				m = v
			}
		}
		return m, true
	case "MEDIAN":
		s := append([]float64{}, vals...)
		sort.Float64s(s)
		n := len(s)
		if n%2 == 1 {
			return s[n/2], true
		}
		return (s[n/2-1] + s[n/2]) / 2, true
	case "STDDEV":
		if len(vals) < 2 {
			return 0, false
		}
		mean, _ := aggOf(vals, "AVG")
		ss := 0.0
		for _, v := range vals {
			d := v - mean
			ss += d * d
		}
		return math.Sqrt(ss / float64(len(vals)-1)), true
	default:
		return 0, false
	}
}

// roundTo rounds to n decimal places (n < 0: no rounding).
func roundTo(f float64, n int) float64 {
	if n < 0 {
		return f
	}
	scale := math.Pow(10, float64(n))
	return math.Round(f*scale) / scale
}

// formatAnswer renders a numeric answer the way answers are compared.
func formatAnswer(f float64, round int) string {
	return strconv.FormatFloat(roundTo(f, round), 'f', -1, 64)
}

// yearlyMeans groups rows by an integer year column and returns the sorted
// years with each year's mean of col.
func yearlyMeans(t *table.Table, rows []table.Row, yearCol, col string) ([]int, []float64) {
	yi := t.Schema.ColumnIndex(yearCol)
	ci := t.Schema.ColumnIndex(col)
	if yi < 0 || ci < 0 {
		return nil, nil
	}
	sums := map[int]float64{}
	counts := map[int]int{}
	for _, row := range rows {
		y, ok := row[yi].AsInt()
		if !ok || row[ci].IsNull() {
			continue
		}
		f, ok := row[ci].AsFloat()
		if !ok {
			continue
		}
		sums[int(y)] += f
		counts[int(y)]++
	}
	years := make([]int, 0, len(sums))
	for y := range sums {
		years = append(years, y)
	}
	sort.Ints(years)
	means := make([]float64, len(years))
	for i, y := range years {
		means[i] = sums[y] / float64(counts[y])
	}
	return years, means
}

// interpolateWithin filters a table, then linearly interpolates the measure
// inside the filtered series ordered by the numeric x column, and returns
// the resulting (including interpolated) values — the intended semantics of
// the interpolation questions.
func interpolateWithin(t *table.Table, preds []pred, xCol, yCol string, yearFrom, yearTo int) ([]float64, error) {
	rows := rowsWhere(t, preds...)
	sub := table.New(t.Schema)
	sub.Rows = rows
	interp, err := transform.Interpolate{XColumn: xCol, YColumn: yCol}.Apply(sub)
	if err != nil {
		return nil, err
	}
	var keep []pred
	if yearFrom != 0 || yearTo != 0 {
		from, to := yearFrom, yearTo
		if from == 0 {
			from = 1500
		}
		if to == 0 {
			to = 2100
		}
		keep = append(keep, intBetween(xCol, from, to))
	}
	final := rowsWhere(interp, keep...)
	return floatsOf(interp, final, yCol), nil
}

// argmaxGroup returns the group key with the highest mean of col.
func argmaxGroup(t *table.Table, groupCol, col string) (string, float64) {
	gi := t.Schema.ColumnIndex(groupCol)
	ci := t.Schema.ColumnIndex(col)
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, row := range t.Rows {
		if row[ci].IsNull() {
			continue
		}
		f, ok := row[ci].AsFloat()
		if !ok {
			continue
		}
		k := row[gi].String()
		sums[k] += f
		counts[k]++
	}
	bestKey, bestVal := "", math.Inf(-1)
	keys := make([]string, 0, len(sums))
	for k := range sums {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		mean := sums[k] / float64(counts[k])
		if mean > bestVal {
			bestKey, bestVal = k, mean
		}
	}
	return bestKey, bestVal
}

// joinedRegionRows joins a station-keyed measurement table with stations
// and filters by region, returning the measurement rows whose station is in
// the region.
func joinedRegionRows(meas, stations *table.Table, region string) []table.Row {
	sidIdx := stations.Schema.ColumnIndex("station_id")
	regIdx := stations.Schema.ColumnIndex("region")
	inRegion := map[int64]bool{}
	for _, row := range stations.Rows {
		if strings.EqualFold(row[regIdx].String(), region) {
			inRegion[row[sidIdx].IntVal()] = true
		}
	}
	mIdx := meas.Schema.ColumnIndex("station_id")
	var out []table.Row
	for _, row := range meas.Rows {
		if inRegion[row[mIdx].IntVal()] {
			out = append(out, row)
		}
	}
	return out
}

// stationIDByName resolves a station name to its id.
func stationIDByName(stations *table.Table, name string) int64 {
	ni := stations.Schema.ColumnIndex("station_name")
	ii := stations.Schema.ColumnIndex("station_id")
	for _, row := range stations.Rows {
		if strings.EqualFold(row[ni].String(), name) {
			return row[ii].IntVal()
		}
	}
	return -1
}

// mustAgg panics when an oracle aggregate is empty — a bank-construction
// bug, not a runtime condition.
func mustAgg(vals []float64, agg, q string) float64 {
	v, ok := aggOf(vals, agg)
	if !ok {
		panic(fmt.Sprintf("oracle: empty aggregate for question %s", q))
	}
	return v
}
