package ir

import (
	"context"
	"errors"
	"testing"

	"pneuma/internal/docdb"
	"pneuma/internal/kramabench"
	"pneuma/internal/pnerr"
	"pneuma/internal/retriever"
)

// unconfiguredFixture builds a System with tables and knowledge but no web
// engine.
func unconfiguredFixture(t *testing.T) *System {
	t.Helper()
	ctx := context.Background()
	ret := retriever.New(retriever.WithShards(2))
	for _, tb := range kramabench.Archaeology() {
		if err := ret.IndexTable(ctx, tb); err != nil {
			t.Fatal(err)
		}
	}
	kb := docdb.New()
	if _, err := kb.Save(ctx, "potassium", "potassium should be interpolated between samples", "alice"); err != nil {
		t.Fatal(err)
	}
	return New(ret, kb, nil)
}

// TestQueryExplicitUnconfiguredSourceDegrades: naming a source the System
// has no retriever for must degrade the query — surviving sources fuse and
// the join names the missing source — instead of silently answering with
// less than was asked for.
func TestQueryExplicitUnconfiguredSourceDegrades(t *testing.T) {
	s := unconfiguredFixture(t)
	res, err := s.Query(context.Background(), Request{
		Query:   "potassium interpolation in soil",
		K:       5,
		Sources: []Source{SourceTables, SourceWeb},
	})
	if err != nil {
		t.Fatalf("Query = %v; want degraded success", err)
	}
	if res.Degraded == nil {
		t.Fatal("Result.Degraded is nil; the unconfigured web source was silently skipped")
	}
	if !errors.Is(res.Degraded, errNotConfigured) {
		t.Errorf("Degraded = %v, want errNotConfigured in the join", res.Degraded)
	}
	if len(res.Documents) == 0 {
		t.Fatal("degraded query returned no documents from the configured sources")
	}
}

// TestQueryAllUnconfiguredSourcesFail: when every explicitly named source
// is unconfigured there is nothing to fuse — the query fails with a typed
// ErrDegraded, mirroring the all-sources-errored contract.
func TestQueryAllUnconfiguredSourcesFail(t *testing.T) {
	s := unconfiguredFixture(t)
	_, err := s.Query(context.Background(), Request{
		Query:   "potassium",
		Sources: []Source{SourceWeb},
	})
	if !errors.Is(err, pnerr.ErrDegraded) {
		t.Fatalf("Query over only unconfigured sources = %v, want ErrDegraded", err)
	}
}

// TestQueryDefaultFanOutStaysSilent: the default all-sources fan-out must
// keep treating a nil source as absent, not failed — a tables-only System
// is a configuration, not a degradation.
func TestQueryDefaultFanOutStaysSilent(t *testing.T) {
	s := unconfiguredFixture(t)
	res, err := s.Query(context.Background(), Request{Query: "potassium interpolation in soil", K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded != nil {
		t.Fatalf("default fan-out degraded on a nil source: %v", res.Degraded)
	}
	if len(res.Documents) == 0 {
		t.Fatal("default fan-out returned no documents")
	}
}
