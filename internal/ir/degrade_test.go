package ir

import (
	"context"
	"errors"
	"testing"

	"pneuma/internal/docdb"
	"pneuma/internal/kramabench"
	"pneuma/internal/pnerr"
	"pneuma/internal/retriever"
)

// degradedFixture builds a System whose table source can be killed (by
// closing the retriever) while the knowledge source keeps answering.
func degradedFixture(t *testing.T) (*System, *retriever.Retriever, *docdb.DB) {
	t.Helper()
	ctx := context.Background()
	ret := retriever.New(retriever.WithShards(2))
	for _, tb := range kramabench.Archaeology() {
		if err := ret.IndexTable(ctx, tb); err != nil {
			t.Fatal(err)
		}
	}
	kb := docdb.New()
	if _, err := kb.Save(ctx, "potassium", "potassium should be interpolated between samples", "alice"); err != nil {
		t.Fatal(err)
	}
	return New(ret, kb, nil), ret, kb
}

// TestQueryPartialFusion: one erroring source must not discard the other
// sources' good results — the query degrades, returns the surviving
// fusion, and surfaces the per-source failure on Result.Degraded.
func TestQueryPartialFusion(t *testing.T) {
	s, ret, _ := degradedFixture(t)
	ctx := context.Background()

	// Kill the tables source.
	if err := ret.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Query(ctx, Request{Query: "potassium interpolation in soil", K: 5})
	if err != nil {
		t.Fatalf("partially failed query returned error %v; want degraded success", err)
	}
	if len(res.Documents) == 0 {
		t.Fatal("degraded query returned no documents; knowledge source results were discarded")
	}
	for _, d := range res.Documents {
		if d.Table != nil {
			t.Errorf("degraded query returned a table doc %s from the dead source", d.ID)
		}
	}
	if res.Degraded == nil {
		t.Fatal("Result.Degraded is nil; the per-source failure was swallowed")
	}
	if !errors.Is(res.Degraded, pnerr.ErrClosed) {
		t.Errorf("Degraded = %v, want the tables source's ErrClosed in the join", res.Degraded)
	}
}

// TestQueryAllSourcesFailed: when every selected source fails the query
// itself fails, with ErrDegraded wrapping the per-source errors.
func TestQueryAllSourcesFailed(t *testing.T) {
	s, ret, _ := degradedFixture(t)
	if err := ret.Close(); err != nil {
		t.Fatal(err)
	}
	_, err := s.Query(context.Background(), Request{
		Query:   "potassium",
		Sources: []Source{SourceTables},
	})
	if !errors.Is(err, pnerr.ErrDegraded) {
		t.Fatalf("all-sources-failed query = %v, want ErrDegraded", err)
	}
	if !errors.Is(err, pnerr.ErrClosed) {
		t.Fatalf("err = %v, want the source's ErrClosed preserved in the chain", err)
	}
}

// TestQueryDegradedNotCached: a degraded result must not be served from
// the cache once the failing source recovers. Recovery is simulated by
// querying with a fresh System over a live retriever but the same cache
// key inputs — here we just assert the cache stays empty after a degraded
// query.
func TestQueryDegradedNotCached(t *testing.T) {
	s, ret, _ := degradedFixture(t)
	if err := ret.Close(); err != nil {
		t.Fatal(err)
	}
	before := s.CacheLen()
	if _, err := s.Query(context.Background(), Request{Query: "potassium interpolation", K: 5}); err != nil {
		t.Fatal(err)
	}
	if got := s.CacheLen(); got != before {
		t.Fatalf("degraded query entered the cache (len %d -> %d)", before, got)
	}
}

// TestQueryCanceled: cancellation beats the fan-out and returns the typed
// error.
func TestQueryCanceled(t *testing.T) {
	s, _, _ := degradedFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.Query(ctx, Request{Query: "potassium", K: 3})
	if !errors.Is(err, pnerr.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled query = %v, want ErrCanceled wrapping context.Canceled", err)
	}
}

// TestQueryBadSource: an unknown source is a typed bad query.
func TestQueryBadSource(t *testing.T) {
	s, _, _ := degradedFixture(t)
	_, err := s.Query(context.Background(), Request{Query: "x", Sources: []Source{"bogus"}})
	if !errors.Is(err, pnerr.ErrBadQuery) {
		t.Fatalf("bogus source = %v, want ErrBadQuery", err)
	}
}
