// Package ir implements the paper's IR System (§3.3): the facade that
// "supports Conductor and Materializer by retrieving relevant data from
// multiple sources", abstracting heterogeneous retrieval formats into
// uniform docs.Document objects. Three retrievers are wired in, exactly as
// in the paper: Pneuma-Retriever (tables), the Document Database (domain
// knowledge) and Web Search.
//
// # Query path
//
// System.Query fans a Request out to every selected source concurrently
// and merges the per-source ranked lists with reciprocal-rank fusion
// (k=60): a document's fused score is the sum over sources of
// 1/(60+rank), so a document every source ranks highly outranks one a
// single source ranks first, and scores of incomparable scales (cosine
// similarity, BM25, web relevance) never mix directly. Ties break by
// document ID.
//
// Results are served from a bounded LRU cache (WithCacheSize, default
// DefaultCacheSize) keyed on (query, k, sources). The cache is
// invalidated by comparing each source's Version() mutation counter at
// lookup time, so a hit is always as fresh as a recomputed query.
//
// # Determinism contract
//
// For fixed source contents, Query returns identical documents in
// identical order on every call: each source is itself deterministic, the
// per-source lists land in fixed slots regardless of goroutine completion
// order, fusion sums in slot order, and the final sort breaks ties by
// document ID. Cached and uncached answers are interchangeable.
package ir
