// Package ir implements the paper's IR System (§3.3): the facade that
// "supports Conductor and Materializer by retrieving relevant data from
// multiple sources", abstracting heterogeneous retrieval formats into
// uniform Document objects. Three retrievers are wired in, exactly as in
// the paper: Pneuma-Retriever (tables), the Document Database (domain
// knowledge) and Web Search.
package ir

import (
	"fmt"
	"sort"
	"strings"

	"pneuma/internal/docdb"
	"pneuma/internal/docs"
	"pneuma/internal/retriever"
	"pneuma/internal/table"
	"pneuma/internal/websearch"
)

// Source selects a retriever.
type Source string

// The available sources.
const (
	SourceTables    Source = "tables"
	SourceKnowledge Source = "knowledge"
	SourceWeb       Source = "web"
)

// AllSources lists every source in query order.
var AllSources = []Source{SourceTables, SourceKnowledge, SourceWeb}

// System is the IR System facade.
type System struct {
	Tables    *retriever.Retriever
	Knowledge *docdb.DB
	Web       *websearch.Engine
}

// New wires a System from its three retrievers. Nil components are allowed
// and simply return no results, so a caller can run tables-only.
func New(tables *retriever.Retriever, knowledge *docdb.DB, web *websearch.Engine) *System {
	return &System{Tables: tables, Knowledge: knowledge, Web: web}
}

// Request is one retrieval request from Conductor or Materializer.
type Request struct {
	// Query is the natural-language retrieval request, e.g. "previously
	// active tariff for the region".
	Query string
	// K is the per-source result budget (default 5).
	K int
	// Sources restricts which retrievers answer; empty means all.
	Sources []Source
}

// Result is the merged retrieval response.
type Result struct {
	Documents []docs.Document
}

// TableDocs filters the result to table documents.
func (r Result) TableDocs() []docs.Document {
	var out []docs.Document
	for _, d := range r.Documents {
		if d.Table != nil {
			out = append(out, d)
		}
	}
	return out
}

// KnowledgeDocs filters the result to knowledge documents.
func (r Result) KnowledgeDocs() []docs.Document {
	var out []docs.Document
	for _, d := range r.Documents {
		if d.Kind == docs.KindKnowledge {
			out = append(out, d)
		}
	}
	return out
}

// Summary renders all documents for an LLM context with the given per-table
// sample-row budget.
func (r Result) Summary(sampleRows int) string {
	var b strings.Builder
	for i := range r.Documents {
		b.WriteString(r.Documents[i].Summary(sampleRows))
		b.WriteByte('\n')
	}
	return b.String()
}

// Query runs the request against the selected sources and merges results.
// Within each source, results keep their ranking; sources are concatenated
// in AllSources order, then globally re-sorted per-source-normalized score
// so cross-source merging is stable and deterministic.
func (s *System) Query(req Request) (Result, error) {
	k := req.K
	if k <= 0 {
		k = 5
	}
	sources := req.Sources
	if len(sources) == 0 {
		sources = AllSources
	}
	var merged []docs.Document
	for _, src := range sources {
		var got []docs.Document
		var err error
		switch src {
		case SourceTables:
			if s.Tables != nil {
				got, err = s.Tables.Search(req.Query, k)
			}
		case SourceKnowledge:
			if s.Knowledge != nil {
				got, err = s.Knowledge.Search(req.Query, k)
			}
		case SourceWeb:
			if s.Web != nil {
				got, err = s.Web.Search(req.Query, k)
			}
		default:
			return Result{}, fmt.Errorf("ir: unknown source %q", src)
		}
		if err != nil {
			return Result{}, fmt.Errorf("ir: source %s: %w", src, err)
		}
		// Normalize scores within the source to [0,1] by rank so different
		// scoring scales merge fairly.
		for i := range got {
			got[i].Score = 1.0 / float64(i+1)
		}
		merged = append(merged, got...)
	}
	sort.SliceStable(merged, func(i, j int) bool {
		if merged[i].Score != merged[j].Score {
			return merged[i].Score > merged[j].Score
		}
		return merged[i].ID < merged[j].ID
	})
	return Result{Documents: merged}, nil
}

// LookupTable fetches a table by exact name from the table retriever's
// store — the grounding path Conductor uses to verify a table it is about
// to reference actually exists (§3.2).
func (s *System) LookupTable(name string) (*table.Table, bool) {
	if s.Tables == nil {
		return nil, false
	}
	d, ok := s.Tables.Document("table:" + name)
	if !ok || d.Table == nil {
		return nil, false
	}
	return d.Table, true
}
