package ir

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"pneuma/internal/docdb"
	"pneuma/internal/docs"
	"pneuma/internal/pnerr"
	"pneuma/internal/retriever"
	"pneuma/internal/table"
	"pneuma/internal/websearch"
)

// Source selects a retriever.
type Source string

// The available sources.
const (
	SourceTables    Source = "tables"
	SourceKnowledge Source = "knowledge"
	SourceWeb       Source = "web"
)

// AllSources lists every source in query order.
var AllSources = []Source{SourceTables, SourceKnowledge, SourceWeb}

// DefaultCacheSize bounds the LRU query-result cache.
const DefaultCacheSize = 128

// errNotConfigured marks an explicitly requested source that this System
// has no retriever for; it rides the degraded join so callers see which
// source was missing.
var errNotConfigured = errors.New("source not configured on this system")

// rrfK is the reciprocal-rank-fusion constant used for cross-source
// merging (standard value 60, the same constant Pneuma-Retriever uses to
// fuse its vector and lexical halves).
const rrfK = 60.0

// System is the IR System facade.
type System struct {
	Tables    *retriever.Retriever
	Knowledge *docdb.DB
	Web       *websearch.Engine

	cache *queryCache
}

// Option configures a System.
type Option func(*System)

// WithCacheSize sets the LRU query-cache capacity (default
// DefaultCacheSize; 0 disables caching).
func WithCacheSize(n int) Option {
	return func(s *System) { s.cache = newQueryCache(n) }
}

// New wires a System from its three retrievers. Nil components are allowed
// and simply return no results, so a caller can run tables-only.
func New(tables *retriever.Retriever, knowledge *docdb.DB, web *websearch.Engine, opts ...Option) *System {
	s := &System{
		Tables:    tables,
		Knowledge: knowledge,
		Web:       web,
		cache:     newQueryCache(DefaultCacheSize),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// snapshotVersions reads the mutation counters of all three sources; a nil
// source contributes a constant, so it never invalidates the cache.
func (s *System) snapshotVersions() versions {
	var v versions
	if s.Tables != nil {
		v[0] = s.Tables.Version()
	}
	if s.Knowledge != nil {
		v[1] = s.Knowledge.Version()
	}
	if s.Web != nil {
		v[2] = s.Web.Version()
	}
	return v
}

// Request is one retrieval request from Conductor or Materializer.
type Request struct {
	// Query is the natural-language retrieval request, e.g. "previously
	// active tariff for the region".
	Query string
	// K is the per-source result budget (default 5).
	K int
	// Sources restricts which retrievers answer; empty means all.
	Sources []Source
}

// Result is the merged retrieval response.
type Result struct {
	Documents []docs.Document
	// Degraded carries the per-source failures of a partially successful
	// query (errors.Join of one typed error per failed source, nil when
	// every source answered). Documents still holds the fusion of the
	// sources that succeeded — one failing source no longer discards the
	// others' good results.
	Degraded error
}

// TableDocs filters the result to table documents.
func (r Result) TableDocs() []docs.Document {
	var out []docs.Document
	for _, d := range r.Documents {
		if d.Table != nil {
			out = append(out, d)
		}
	}
	return out
}

// KnowledgeDocs filters the result to knowledge documents.
func (r Result) KnowledgeDocs() []docs.Document {
	var out []docs.Document
	for _, d := range r.Documents {
		if d.Kind == docs.KindKnowledge {
			out = append(out, d)
		}
	}
	return out
}

// Summary renders all documents for an LLM context with the given per-table
// sample-row budget.
func (r Result) Summary(sampleRows int) string {
	var b strings.Builder
	for i := range r.Documents {
		b.WriteString(r.Documents[i].Summary(sampleRows))
		b.WriteByte('\n')
	}
	return b.String()
}

// Query runs the request against the selected sources concurrently and
// merges results with reciprocal-rank fusion: a document's score is the
// sum over sources of 1/(60+rank), so a document every source ranks highly
// outranks one a single source ranks first, while scores of incomparable
// scales (cosine, BM25, web relevance) never mix directly. Ties break by
// document ID, so the merged order is deterministic. Results are served
// from a bounded LRU cache keyed on (query, k, sources) and invalidated
// whenever any source's index mutates.
//
// Failure semantics: a canceled ctx returns a typed pnerr.ErrCanceled; an
// unknown source returns pnerr.ErrBadQuery; and when only some sources
// fail, the query degrades instead of discarding the good results — the
// returned Result fuses the successful sources and carries the per-source
// failures (errors.Join) in Result.Degraded. Only when every source fails
// is an error (pnerr.ErrDegraded wrapping the join) returned. Degraded
// results are never cached, so a recovered source is consulted again on
// the next identical query.
func (s *System) Query(ctx context.Context, req Request) (Result, error) {
	k := req.K
	if k <= 0 {
		k = 5
	}
	sources := req.Sources
	if len(sources) == 0 {
		sources = AllSources
	}
	for _, src := range sources {
		switch src {
		case SourceTables, SourceKnowledge, SourceWeb:
		default:
			return Result{}, pnerr.BadQueryf("ir: query", "unknown source %q", src)
		}
	}
	if err := ctx.Err(); err != nil {
		return Result{}, pnerr.Canceled("ir: query", err)
	}

	key := cacheKey(req.Query, k, sources)
	vers := s.snapshotVersions()
	if ds, ok := s.cache.get(key, vers); ok {
		return Result{Documents: ds}, nil
	}

	// Fan out to all requested sources concurrently; slot i of lists holds
	// source i's ranked results, so the fusion below is order-independent
	// of goroutine completion. Each source is ctx-aware, so cancellation
	// propagates into the shard fan-outs and the wait stays short.
	//
	// A nil source is silent under the default all-sources fan-out (a
	// tables-only System is a supported configuration, not a failure) but
	// counts as a failed source when the request named it explicitly:
	// a caller asking for "web" on a System without web search gets the
	// degraded contract — surviving fusion plus an error naming the
	// missing source — never a silently smaller answer.
	explicit := len(req.Sources) > 0
	lists := make([][]docs.Document, len(sources))
	errs := make([]error, len(sources))
	var wg sync.WaitGroup
	for i, src := range sources {
		wg.Add(1)
		go func(i int, src Source) {
			defer wg.Done()
			var configured bool
			switch src {
			case SourceTables:
				if s.Tables != nil {
					configured = true
					lists[i], errs[i] = s.Tables.Search(ctx, req.Query, k)
				}
			case SourceKnowledge:
				if s.Knowledge != nil {
					configured = true
					lists[i], errs[i] = s.Knowledge.Search(ctx, req.Query, k)
				}
			case SourceWeb:
				if s.Web != nil {
					configured = true
					lists[i], errs[i] = s.Web.Search(ctx, req.Query, k)
				}
			}
			if !configured && explicit {
				errs[i] = errNotConfigured
			}
		}(i, src)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return Result{}, pnerr.Canceled("ir: query", err)
	}
	// Partial-failure policy: degrade to fusing the sources that answered.
	var sourceErrs []error
	failed := 0
	for i, err := range errs {
		if err != nil {
			failed++
			sourceErrs = append(sourceErrs, fmt.Errorf("ir: source %s: %w", sources[i], err))
			lists[i] = nil
		}
	}
	degraded := errors.Join(sourceErrs...)
	if failed == len(sources) {
		return Result{}, pnerr.Degraded("ir: query", degraded)
	}

	// Reciprocal-rank fusion across sources. IDs are namespaced per source
	// ("table:", "note:", URLs), so a collision means the same document
	// surfaced twice and its contributions sum, which is exactly RRF.
	type fusedDoc struct {
		doc   docs.Document
		score float64
	}
	fused := make(map[string]*fusedDoc)
	for _, got := range lists {
		for rank, d := range got {
			f, ok := fused[d.ID]
			if !ok {
				f = &fusedDoc{doc: d}
				fused[d.ID] = f
			}
			f.score += 1.0 / (rrfK + float64(rank+1))
		}
	}
	merged := make([]docs.Document, 0, len(fused))
	for _, f := range fused {
		f.doc.Score = f.score
		merged = append(merged, f.doc)
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Score != merged[j].Score {
			return merged[i].Score > merged[j].Score
		}
		return merged[i].ID < merged[j].ID
	})

	if degraded == nil {
		// Only complete results enter the cache: caching a degraded fusion
		// would keep serving the gap after the failing source recovers.
		s.cache.put(key, vers, merged)
	}
	return Result{Documents: merged, Degraded: degraded}, nil
}

// cacheKey builds the cache key for a normalized request. Sources arrive
// in caller order; order affects neither fusion nor ranking, so the key
// normalizes it away by sorting.
func cacheKey(query string, k int, sources []Source) string {
	names := make([]string, len(sources))
	for i, s := range sources {
		names[i] = string(s)
	}
	sort.Strings(names)
	return strconv.Itoa(k) + "\x00" + strings.Join(names, ",") + "\x00" + query
}

// CacheLen reports the number of live cache entries (tests and
// instrumentation).
func (s *System) CacheLen() int { return s.cache.len() }

// LookupTable fetches a table by exact name from the table retriever's
// store — the grounding path Conductor uses to verify a table it is about
// to reference actually exists (§3.2).
func (s *System) LookupTable(name string) (*table.Table, bool) {
	if s.Tables == nil {
		return nil, false
	}
	d, ok := s.Tables.Document("table:" + name)
	if !ok || d.Table == nil {
		return nil, false
	}
	return d.Table, true
}
