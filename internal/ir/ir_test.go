package ir

import (
	"context"
	"testing"

	"pneuma/internal/docdb"
	"pneuma/internal/docs"
	"pneuma/internal/retriever"
	"pneuma/internal/table"
	"pneuma/internal/value"
	"pneuma/internal/websearch"
)

func fixtureSystem(t *testing.T) *System {
	t.Helper()
	ret := retriever.New()
	soil := table.New(table.Schema{
		Name:        "soil_samples",
		Description: "Soil chemistry samples",
		Columns: []table.Column{
			{Name: "k_ppm", Type: value.KindFloat, Description: "Potassium concentration"},
		},
	})
	soil.MustAppend(table.Row{value.Float(42)})
	if err := ret.IndexTable(context.Background(), soil); err != nil {
		t.Fatal(err)
	}
	kb := docdb.New()
	if _, err := kb.Save(context.Background(), "potassium analysis", "potassium should be interpolated between samples", "alice"); err != nil {
		t.Fatal(err)
	}
	web := websearch.New(websearch.BuiltinCorpus())
	return New(ret, kb, web)
}

func TestQueryMergesSources(t *testing.T) {
	s := fixtureSystem(t)
	res, err := s.Query(context.Background(), Request{Query: "potassium samples", K: 3})
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[docs.Kind]bool{}
	for _, d := range res.Documents {
		kinds[d.Kind] = true
	}
	if !kinds[docs.KindTable] || !kinds[docs.KindKnowledge] {
		t.Fatalf("expected table + knowledge documents, got %v", kinds)
	}
}

func TestSourceRestriction(t *testing.T) {
	s := fixtureSystem(t)
	res, err := s.Query(context.Background(), Request{Query: "potassium", Sources: []Source{SourceKnowledge}})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Documents {
		if d.Kind != docs.KindKnowledge {
			t.Fatalf("source restriction leaked: %v", d.Kind)
		}
	}
}

func TestUnknownSourceErrors(t *testing.T) {
	s := fixtureSystem(t)
	if _, err := s.Query(context.Background(), Request{Query: "x", Sources: []Source{"bogus"}}); err == nil {
		t.Fatal("unknown source must error")
	}
}

func TestNilComponentsAreSafe(t *testing.T) {
	s := New(nil, nil, nil)
	res, err := s.Query(context.Background(), Request{Query: "anything"})
	if err != nil || len(res.Documents) != 0 {
		t.Fatalf("nil components: %v %v", res, err)
	}
}

func TestLookupTable(t *testing.T) {
	s := fixtureSystem(t)
	tb, ok := s.LookupTable("soil_samples")
	if !ok || tb.Schema.Name != "soil_samples" {
		t.Fatalf("lookup failed: %v %v", tb, ok)
	}
	if _, ok := s.LookupTable("ghost"); ok {
		t.Fatal("missing table must not resolve")
	}
}

func TestResultHelpers(t *testing.T) {
	s := fixtureSystem(t)
	res, _ := s.Query(context.Background(), Request{Query: "potassium samples"})
	if len(res.TableDocs()) == 0 {
		t.Error("TableDocs empty")
	}
	if len(res.KnowledgeDocs()) == 0 {
		t.Error("KnowledgeDocs empty")
	}
	if res.Summary(2) == "" {
		t.Error("Summary empty")
	}
}
