package ir

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"pneuma/internal/docdb"
	"pneuma/internal/docs"
	"pneuma/internal/retriever"
	"pneuma/internal/table"
	"pneuma/internal/value"
)

// mkTable builds a minimal searchable table.
func mkTable(name, desc, colDesc string) *table.Table {
	t := table.New(table.Schema{
		Name:        name,
		Description: desc,
		Columns:     []table.Column{{Name: "v", Type: value.KindFloat, Description: colDesc}},
	})
	t.MustAppend(table.Row{value.Float(1)})
	return t
}

func TestRRFFusionAcrossSources(t *testing.T) {
	ret := retriever.New()
	if err := ret.IndexTable(context.Background(), mkTable("potassium_levels", "Potassium measurements", "potassium concentration")); err != nil {
		t.Fatal(err)
	}
	kb := docdb.New()
	if _, err := kb.Save(context.Background(), "potassium", "potassium should be interpolated", "alice"); err != nil {
		t.Fatal(err)
	}
	s := New(ret, kb, nil)
	res, err := s.Query(context.Background(), Request{Query: "potassium", K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Documents) < 2 {
		t.Fatalf("want table + knowledge hits, got %v", res.Documents)
	}
	// Each source's rank-1 document must carry the RRF score 1/(60+1);
	// the old scheme overwrote scores with 1/(i+1) so every source's top
	// hit tied at 1.0 regardless of relevance.
	want := 1.0 / 61.0
	for _, d := range res.Documents[:2] {
		if d.Score != want {
			t.Errorf("doc %s score = %v, want %v", d.ID, d.Score, want)
		}
	}
	// Deterministic tie-break: equal scores order by ID.
	if res.Documents[0].ID > res.Documents[1].ID {
		t.Errorf("tie not broken by ID: %s before %s", res.Documents[0].ID, res.Documents[1].ID)
	}
}

func TestQueryCacheHitAndCopy(t *testing.T) {
	s := fixtureSystem(t)
	if s.CacheLen() != 0 {
		t.Fatalf("fresh system has %d cache entries", s.CacheLen())
	}
	res1, err := s.Query(context.Background(), Request{Query: "potassium samples", K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.CacheLen() != 1 {
		t.Fatalf("cache len = %d after first query", s.CacheLen())
	}
	res2, err := s.Query(context.Background(), Request{Query: "potassium samples", K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.CacheLen() != 1 {
		t.Fatalf("cache len = %d after repeat query", s.CacheLen())
	}
	if len(res1.Documents) != len(res2.Documents) {
		t.Fatalf("cached result differs: %d vs %d docs", len(res1.Documents), len(res2.Documents))
	}
	for i := range res1.Documents {
		if res1.Documents[i].ID != res2.Documents[i].ID || res1.Documents[i].Score != res2.Documents[i].Score {
			t.Fatalf("cached result diverged at %d", i)
		}
	}
	// The cache must hand out copies: mutating a result must not corrupt
	// later hits.
	res2.Documents[0].Score = -1
	res3, _ := s.Query(context.Background(), Request{Query: "potassium samples", K: 3})
	if res3.Documents[0].Score == -1 {
		t.Fatal("cache returned aliased slice")
	}
}

func TestCacheInvalidationOnMutation(t *testing.T) {
	ret := retriever.New()
	if err := ret.IndexTable(context.Background(), mkTable("soil_samples", "Soil chemistry", "potassium concentration")); err != nil {
		t.Fatal(err)
	}
	kb := docdb.New()
	s := New(ret, kb, nil)

	res, err := s.Query(context.Background(), Request{Query: "potassium interpolation", K: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Documents {
		if d.Kind == docs.KindKnowledge {
			t.Fatal("no knowledge saved yet")
		}
	}
	// Mutate one source; the cached entry must not be served.
	if _, err := kb.Save(context.Background(), "potassium interpolation", "potassium should be interpolated between samples", "bob"); err != nil {
		t.Fatal(err)
	}
	res, err = s.Query(context.Background(), Request{Query: "potassium interpolation", K: 5})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range res.Documents {
		if d.Kind == docs.KindKnowledge {
			found = true
		}
	}
	if !found {
		t.Fatal("stale cache entry served after knowledge save")
	}

	// Table-index mutation invalidates too.
	if err := ret.IndexTable(context.Background(), mkTable("potassium_extra", "Extra potassium data", "potassium reading")); err != nil {
		t.Fatal(err)
	}
	res, _ = s.Query(context.Background(), Request{Query: "potassium interpolation", K: 5})
	seen := false
	for _, d := range res.Documents {
		if d.ID == "table:potassium_extra" {
			seen = true
		}
	}
	if !seen {
		t.Fatal("stale cache entry served after table ingest")
	}
}

func TestCacheEvictionAndDisable(t *testing.T) {
	ret := retriever.New()
	if err := ret.IndexTable(context.Background(), mkTable("t1", "data", "metric")); err != nil {
		t.Fatal(err)
	}
	s := New(ret, nil, nil, WithCacheSize(2))
	for i := 0; i < 5; i++ {
		if _, err := s.Query(context.Background(), Request{Query: fmt.Sprintf("query %d", i), K: 2}); err != nil {
			t.Fatal(err)
		}
	}
	if s.CacheLen() != 2 {
		t.Fatalf("cache len = %d, want capacity 2", s.CacheLen())
	}

	off := New(ret, nil, nil, WithCacheSize(0))
	if _, err := off.Query(context.Background(), Request{Query: "anything", K: 2}); err != nil {
		t.Fatal(err)
	}
	if off.CacheLen() != 0 {
		t.Fatalf("disabled cache holds %d entries", off.CacheLen())
	}
}

// TestChurnCacheInvalidation drives the version-counter invalidation
// through sustained churn: every round replaces one table (add + delete)
// and immediately repeats the same query. Each mutation must bump the
// source version and therefore miss the cache — a single missed bump
// serves a stale entry that either still shows the deleted table or
// misses the added one. A second, concurrent phase (readers racing the
// churn stream, run under race-smoke) then checks the quiesce contract:
// once the stream stops, the next repeat query reflects the final corpus
// exactly.
func TestChurnCacheInvalidation(t *testing.T) {
	ctx := context.Background()
	ret := retriever.New()
	if err := ret.IndexTable(ctx, mkTable("base", "base data", "churn metric baseline")); err != nil {
		t.Fatal(err)
	}
	s := New(ret, nil, nil)
	const q = "churn metric"

	rounds := 30
	if testing.Short() {
		rounds = 10
	}
	for r := 0; r < rounds; r++ {
		name := fmt.Sprintf("churn_%d", r)
		if err := ret.IndexTable(ctx, mkTable(name, "churn data", "churn metric reading")); err != nil {
			t.Fatal(err)
		}
		if r > 0 {
			prev := fmt.Sprintf("table:churn_%d", r-1)
			if n := ret.DeleteDocuments([]string{prev}); n != 1 {
				t.Fatalf("round %d: deleted %d of %s", r, n, prev)
			}
		}
		res, err := s.Query(ctx, Request{Query: q, K: 10})
		if err != nil {
			t.Fatal(err)
		}
		var sawNew, sawOld bool
		for _, d := range res.Documents {
			switch d.ID {
			case "table:" + name:
				sawNew = true
			case fmt.Sprintf("table:churn_%d", r-1):
				sawOld = true
			}
		}
		if !sawNew {
			t.Fatalf("round %d: stale cache — added table %s not in results", r, name)
		}
		if sawOld {
			t.Fatalf("round %d: stale cache — deleted table churn_%d still served", r, r-1)
		}
	}

	// Concurrent phase: readers hammer the cached query while a churner
	// keeps replacing tables, then quiesce and check the final state.
	stopped := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopped:
					return
				default:
				}
				if _, err := s.Query(ctx, Request{Query: q, K: 10}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	last := rounds - 1
	for r := rounds; r < rounds+10; r++ {
		name := fmt.Sprintf("churn_%d", r)
		if err := ret.IndexTable(ctx, mkTable(name, "churn data", "churn metric reading")); err != nil {
			t.Fatal(err)
		}
		ret.DeleteDocuments([]string{fmt.Sprintf("table:churn_%d", last)})
		last = r
	}
	close(stopped)
	wg.Wait()

	res, err := s.Query(ctx, Request{Query: q, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	var sawFinal bool
	for _, d := range res.Documents {
		if d.ID == fmt.Sprintf("table:churn_%d", last) {
			sawFinal = true
		}
		for r := 0; r < last; r++ {
			if d.ID == fmt.Sprintf("table:churn_%d", r) {
				t.Fatalf("post-quiesce query served deleted table churn_%d", r)
			}
		}
	}
	if !sawFinal {
		t.Fatalf("post-quiesce query missing final table churn_%d", last)
	}
}

// TestConcurrentQueriesAndMutations is the -race proof for the facade:
// concurrent queries, knowledge saves and table ingests must not race in
// the cache or the fan-out.
func TestConcurrentQueriesAndMutations(t *testing.T) {
	ret := retriever.New()
	if err := ret.IndexTable(context.Background(), mkTable("base", "base data", "baseline metric")); err != nil {
		t.Fatal(err)
	}
	kb := docdb.New()
	s := New(ret, kb, nil)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := s.Query(context.Background(), Request{Query: fmt.Sprintf("metric %d", (g+i)%3), K: 3}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, err := kb.Save(context.Background(), "note", fmt.Sprintf("knowledge body %d", i), "x"); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := ret.IndexTable(context.Background(), mkTable(fmt.Sprintf("t%d", i), "more data", "another metric")); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
}
