package ir

import (
	"container/list"
	"sync"

	"pneuma/internal/docs"
)

// versions is a snapshot of the mutation counters of all three sources. A
// cached result is valid only while every counter is unchanged — any
// ingest, delete, knowledge save or web toggle invalidates it.
type versions [3]uint64

// queryCache is a bounded LRU over merged query results. Conductor turns
// frequently re-issue the same retrieval request (the same (T, Q) gap is
// probed across actions and repair rounds), so a small cache removes the
// repeated shard fan-out entirely.
type queryCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key  string
	vers versions
	docs []docs.Document
}

func newQueryCache(capacity int) *queryCache {
	if capacity <= 0 {
		return nil
	}
	return &queryCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// get returns a copy of the cached documents for key when the entry exists
// and its version snapshot still matches; a stale entry is evicted on the
// spot. Callers receive a fresh slice so they can reorder or annotate
// results without corrupting the cache.
func (c *queryCache) get(key string, vers versions) ([]docs.Document, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if ent.vers != vers {
		c.ll.Remove(el)
		delete(c.items, key)
		return nil, false
	}
	c.ll.MoveToFront(el)
	out := make([]docs.Document, len(ent.docs))
	copy(out, ent.docs)
	return out, true
}

// put stores the documents under key, evicting the least recently used
// entry when the cache is full.
func (c *queryCache) put(key string, vers versions, ds []docs.Document) {
	if c == nil {
		return
	}
	stored := make([]docs.Document, len(ds))
	copy(stored, ds)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		ent.vers = vers
		ent.docs = stored
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: key, vers: vers, docs: stored})
	c.items[key] = el
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*cacheEntry).key)
	}
}

// len reports the number of live entries (tests).
func (c *queryCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
