package docdb

import (
	"context"
	"testing"
	"time"
)

func fixedClock() func() time.Time {
	t0 := time.Date(2026, 1, 18, 0, 0, 0, 0, time.UTC)
	return func() time.Time { return t0 }
}

func TestSaveAndSearch(t *testing.T) {
	db := New(WithClock(fixedClock()))
	n, err := db.Save(context.Background(), "tariff impact", "Tariff impact must account for both direct and indirect tariffs.", "alice")
	if err != nil {
		t.Fatal(err)
	}
	if n.ID == "" || n.Author != "alice" {
		t.Fatalf("note = %+v", n)
	}
	hits, err := db.Search(context.Background(), "how do I estimate tariff impacts?", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Title != "tariff impact" {
		t.Fatalf("search = %v", hits)
	}
}

func TestCrossUserTransfer(t *testing.T) {
	// The paper's §3.3 scenario: one user's insight serves later users.
	db := New()
	if _, err := db.Save(context.Background(), "tariff impact", "account for direct and indirect tariffs", "alice"); err != nil {
		t.Fatal(err)
	}
	hits, err := db.Search(context.Background(), "tariff", 1)
	if err != nil || len(hits) != 1 {
		t.Fatalf("bob cannot retrieve alice's note: %v %v", hits, err)
	}
	if hits[0].Meta["author"] != "alice" {
		t.Errorf("author metadata lost: %v", hits[0].Meta)
	}
}

func TestGetAllLen(t *testing.T) {
	db := New(WithClock(fixedClock()))
	n1, _ := db.Save(context.Background(), "a", "body a", "u1")
	_, _ = db.Save(context.Background(), "b", "body b", "u2")
	if db.Len() != 2 || len(db.All()) != 2 {
		t.Fatalf("len = %d", db.Len())
	}
	got, ok := db.Get(n1.ID)
	if !ok || got.Body != "body a" {
		t.Fatalf("get = %+v %v", got, ok)
	}
	if _, ok := db.Get("note:999"); ok {
		t.Fatal("missing note should not be found")
	}
	if !got.CreatedAt.Equal(fixedClock()()) {
		t.Errorf("clock not applied: %v", got.CreatedAt)
	}
}

// TestSaveDeduplicates: saving identical (topic, body) content returns the
// existing note instead of storing and indexing a duplicate — the
// store-level half of the knowledge-capture dedupe.
func TestSaveDeduplicates(t *testing.T) {
	db := New(WithClock(fixedClock()))
	ctx := context.Background()
	first, err := db.Save(ctx, "tariff impact", "account for direct and indirect tariffs", "alice")
	if err != nil {
		t.Fatal(err)
	}
	versionAfterFirst := db.Version()
	dup, err := db.Save(ctx, "tariff impact", "account for direct and indirect tariffs", "bob")
	if err != nil {
		t.Fatal(err)
	}
	if dup.ID != first.ID {
		t.Fatalf("duplicate save created a new note %s (first %s)", dup.ID, first.ID)
	}
	if db.Len() != 1 {
		t.Fatalf("Len = %d, want 1", db.Len())
	}
	if db.Version() != versionAfterFirst {
		t.Fatal("duplicate save mutated the index (cache invalidation storm)")
	}
	if !db.Contains("tariff impact", "account for direct and indirect tariffs") {
		t.Fatal("Contains = false for stored content")
	}
	if db.Contains("tariff impact", "different body") {
		t.Fatal("Contains = true for unstored content")
	}
	// Different body under the same topic is still new knowledge.
	if _, err := db.Save(ctx, "tariff impact", "previous active tariff is the reference point", "carol"); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 2 {
		t.Fatalf("Len = %d, want 2", db.Len())
	}
}
