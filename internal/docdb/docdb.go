// Package docdb implements the paper's Document Database (§3.3): a store
// for domain knowledge that reuses Pneuma-Retriever's indexer, enabling
// cross-user knowledge transfer — "if one user specifies that estimating
// tariff impacts requires accounting for both direct and indirect tariffs,
// subsequent tariff-related queries can leverage that insight."
package docdb

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pneuma/internal/docs"
	"pneuma/internal/retriever"
)

// Note is one captured piece of domain knowledge.
type Note struct {
	// ID is assigned by the database.
	ID string
	// Topic is a short label for the knowledge ("tariff impact").
	Topic string
	// Body is the knowledge text itself.
	Body string
	// Author identifies the user (or agent) whose interaction produced the
	// note; knowledge transfers across authors by design.
	Author string
	// CreatedAt is the capture timestamp.
	CreatedAt time.Time
}

// DB is the knowledge store. Safe for concurrent use.
type DB struct {
	mu    sync.RWMutex
	seq   int
	notes map[string]Note
	// byContent maps topic+"\n"+body to the note ID that first captured
	// it, so repeated identical knowledge is recognized instead of saved
	// again (§3.3: the Document Database is shared organizational memory,
	// not a chat log).
	byContent map[string]string
	index     *retriever.Retriever
	clock     func() time.Time
}

// Option configures a DB.
type Option func(*DB)

// WithClock overrides the timestamp source (tests and deterministic runs).
func WithClock(fn func() time.Time) Option {
	return func(d *DB) { d.clock = fn }
}

// New creates an empty knowledge database with its own hybrid index.
func New(opts ...Option) *DB {
	// A single shard: knowledge notes arrive one at a time and the corpus
	// stays small, so shard fan-out would only fragment BM25 statistics.
	d := &DB{
		notes:     make(map[string]Note),
		byContent: make(map[string]string),
		index:     retriever.New(retriever.WithShards(1)),
		clock:     time.Now,
	}
	for _, o := range opts {
		o(d)
	}
	return d
}

// Save captures a knowledge note and indexes it. It returns the stored note
// with its assigned ID. Saving content (topic, body) that the database
// already holds verbatim is a no-op that returns the existing note — the
// store deduplicates so repeated identical user messages cannot pile up
// duplicate notes. A failed save (e.g. canceled ctx) stores nothing: the
// note and its dedupe key are only committed after indexing succeeds, so
// a retry with the same content is a real save, not a silent no-op
// returning an unsearchable note.
func (d *DB) Save(ctx context.Context, topic, body, author string) (Note, error) {
	key := topic + "\n" + body
	// The whole save runs under d.mu so two concurrent saves of the same
	// content cannot both pass the dedupe check; the index has its own
	// locking and never takes d.mu, so there is no ordering cycle.
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, dup := d.byContent[key]; dup {
		return d.notes[id], nil
	}
	n := Note{
		ID:        fmt.Sprintf("note:%d", d.seq+1),
		Topic:     topic,
		Body:      body,
		Author:    author,
		CreatedAt: d.clock(),
	}
	if err := d.index.IndexDocument(ctx, docs.Document{
		ID:      n.ID,
		Kind:    docs.KindKnowledge,
		Title:   topic,
		Content: key,
		Source:  "document-db",
		Meta:    map[string]string{"author": author},
	}); err != nil {
		return Note{}, err
	}
	d.seq++
	d.notes[n.ID] = n
	d.byContent[key] = n.ID
	return n, nil
}

// Contains reports whether the database already holds a note with exactly
// this topic and body — the dedupe check Session.Send runs before capture.
func (d *DB) Contains(topic, body string) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	_, ok := d.byContent[topic+"\n"+body]
	return ok
}

// Version returns the underlying index's mutation counter; the IR
// System's query cache keys on it.
func (d *DB) Version() uint64 { return d.index.Version() }

// Search returns the top-k knowledge notes relevant to the query.
// Cancellation propagates to the underlying hybrid index.
func (d *DB) Search(ctx context.Context, query string, k int) ([]docs.Document, error) {
	return d.index.Search(ctx, query, k)
}

// Get returns a note by ID.
func (d *DB) Get(id string) (Note, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n, ok := d.notes[id]
	return n, ok
}

// Len returns the number of stored notes.
func (d *DB) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.notes)
}

// All returns every note (unordered); used by the knowledge-capture
// example and by tests.
func (d *DB) All() []Note {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]Note, 0, len(d.notes))
	for _, n := range d.notes {
		out = append(out, n)
	}
	return out
}
