//go:build (!amd64 && !arm64) || purego

package vecmath

// detectKernels on architectures without a SIMD kernel (or with the
// purego tag) selects the scalar tier; results are identical everywhere
// by the canonical lane-scheme contract, so only throughput differs.
func detectKernels() *kernelSet { return scalarSet }

func cpuFeatures() []string { return nil }
