//go:build (!amd64 && !arm64) || purego

package vecmath

// detectFloatTiers on architectures without a SIMD kernel (or with the
// purego tag) offers only the scalar tier; results are identical
// everywhere by the canonical lane-scheme contract, so only throughput
// differs.
func detectFloatTiers() []floatKernels { return []floatKernels{scalarFloat} }

func cpuFeatures() []string { return nil }
