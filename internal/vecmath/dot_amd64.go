//go:build amd64 && !purego

package vecmath

// dotInt8SSE2 is the assembly kernel behind DotInt8 on amd64: 16 lanes
// per iteration via PUNPCKLBW/PSRAW sign extension and PMADDWD
// multiply-accumulate, with a scalar tail. SSE2 is part of the amd64
// baseline, so no runtime feature detection is needed. All arithmetic is
// exact integer math, so the result is bit-identical to the portable
// scalar kernel on every input.
//
//go:noescape
func dotInt8SSE2(a, b *int8, n int) int32

// dotInt8Kernel dispatches to the SSE2 kernel.
func dotInt8Kernel(a, b []int8) int32 {
	if len(a) == 0 {
		return 0
	}
	return dotInt8SSE2(&a[0], &b[0], len(a))
}
