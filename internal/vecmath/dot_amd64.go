//go:build amd64 && !purego

package vecmath

// dotInt8SSE2 is the baseline int8 assembly kernel on amd64: 16 lanes
// per iteration via PUNPCKLBW/PSRAW sign extension and PMADDWD
// multiply-accumulate, with a scalar tail. SSE2 is part of the amd64
// baseline, so this tier needs no runtime feature detection. All
// arithmetic is exact integer math, so the result is bit-identical to the
// portable scalar kernel on every input.
//
//go:noescape
func dotInt8SSE2(a, b *int8, n int) int32

// dotInt8AVX2 is the CPUID-gated int8 kernel above the SSE2 baseline
// (dot_amd64.s): 32 bytes per iteration, each 16-byte half sign-extended
// to 16×int16 (VPMOVSXBW) and pair-summed into 8×int32 lanes (VPMADDWD).
// Exact integer math, bit-identical to SSE2 and scalar.
//
//go:noescape
func dotInt8AVX2(a, b *int8, n int) int32

// dotInt8BatchAVX2 is the batched form of dotInt8AVX2: the candidate loop
// runs inside the assembly, with the next candidate's first cache lines
// software-prefetched while the current one is scored. Requires n > 0,
// dim > 0 and pre-validated indices.
//
//go:noescape
func dotInt8BatchAVX2(q, arena *int8, stride int, idxs *int32, n, dim int, out *int32)

func dotInt8SSE2Kernel(a, b []int8) int32 {
	if len(a) == 0 {
		return 0
	}
	return dotInt8SSE2(&a[0], &b[0], len(a))
}

func dotInt8AVX2Kernel(a, b []int8) int32 {
	if len(a) == 0 {
		return 0
	}
	return dotInt8AVX2(&a[0], &b[0], len(a))
}

// dotInt8BatchSSE2Kernel is the SSE2 tier's batched entry: a Go loop over
// the single-call kernel. It still amortizes the dispatch-seam load and
// the wrapper's shape validation across the batch; the AVX2 tier is the
// one that folds the loop into assembly.
func dotInt8BatchSSE2Kernel(q, arena []int8, stride int, idxs []int32, out []int32) {
	d := len(q)
	for j, ix := range idxs {
		out[j] = dotInt8SSE2(&q[0], &arena[int(ix)*stride], d)
	}
}

func dotInt8BatchAVX2Kernel(q, arena []int8, stride int, idxs []int32, out []int32) {
	dotInt8BatchAVX2(&q[0], &arena[0], stride, &idxs[0], len(idxs), len(q), &out[0])
}

// detectInt8Tiers lists the int8 tiers this CPU can run, best first: the
// gated AVX2 kernel when usable, the ungated SSE2 baseline, then scalar.
func detectInt8Tiers() []int8Kernels {
	tiers := []int8Kernels{
		{name: "sse2", dot: dotInt8SSE2Kernel, batch: dotInt8BatchSSE2Kernel},
		scalarInt8,
	}
	if flags.avx2Usable {
		tiers = append([]int8Kernels{
			{name: "avx2", dot: dotInt8AVX2Kernel, batch: dotInt8BatchAVX2Kernel},
		}, tiers...)
	}
	return tiers
}
