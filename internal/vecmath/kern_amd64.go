//go:build amd64 && !purego

package vecmath

// cpuid executes the CPUID instruction for the given leaf/subleaf.
// Implemented in kern_amd64.s.
func cpuid(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (XCR0). Only valid when CPUID
// reports OSXSAVE; implemented in kern_amd64.s.
func xgetbv() (eax, edx uint32)

// dotAVX2 and sqL2AVX2 are the AVX2 float32 kernels (kern_amd64.s). They
// require n > 0 and both slices to hold at least n elements; the Go
// wrappers below enforce that. Each computes the canonical lane scheme of
// dotScalar/sqL2Scalar exactly — eight accumulator lanes in one YMM
// register, fixed-order reduction, sequential scalar tail — so results
// are bit-identical to the scalar tier.
//
//go:noescape
func dotAVX2(a, b *float32, n int) float32

//go:noescape
func sqL2AVX2(a, b *float32, n int) float32

// dotBatchAVX2 and sqL2BatchAVX2 are the batched AVX2 kernels
// (kern_amd64.s): one call scores the query against n arena candidates,
// running the identical per-candidate lane scheme as the single kernels
// with the candidate loop folded into the assembly — the dispatch load,
// call overhead and reduction spills are paid once per batch, and the
// next candidate's first cache lines are software-prefetched while the
// current one is scored. They require n > 0, dim > 0, and pre-validated
// indices (the Go wrappers and checkBatch enforce that).
//
//go:noescape
func dotBatchAVX2(q, arena *float32, stride int, idxs *int32, n, dim int, out *float32)

//go:noescape
func sqL2BatchAVX2(q, arena *float32, stride int, idxs *int32, n, dim int, out *float32)

func dotAVX2Kernel(a, b []float32) float32 {
	if len(a) == 0 {
		return 0
	}
	return dotAVX2(&a[0], &b[0], len(a))
}

func sqL2AVX2Kernel(a, b []float32) float32 {
	if len(a) == 0 {
		return 0
	}
	return sqL2AVX2(&a[0], &b[0], len(a))
}

func dotBatchAVX2Kernel(q, arena []float32, stride int, idxs []int32, out []float32) {
	dotBatchAVX2(&q[0], &arena[0], stride, &idxs[0], len(idxs), len(q), &out[0])
}

func sqL2BatchAVX2Kernel(q, arena []float32, stride int, idxs []int32, out []float32) {
	sqL2BatchAVX2(&q[0], &arena[0], stride, &idxs[0], len(idxs), len(q), &out[0])
}

// amd64 CPU feature bits consulted by the dispatch gate.
const (
	cpuidSSE42   = 1 << 20 // leaf 1 ECX
	cpuidFMA     = 1 << 12 // leaf 1 ECX
	cpuidOSXSAVE = 1 << 27 // leaf 1 ECX
	cpuidAVX     = 1 << 28 // leaf 1 ECX
	cpuidAVX2    = 1 << 5  // leaf 7 EBX
	xcr0XMM      = 1 << 1  // XCR0: XMM state enabled by the OS
	xcr0YMM      = 1 << 2  // XCR0: YMM state enabled by the OS
)

// cpuFlags holds the one-time CPUID probe results.
type cpuFlags struct {
	sse42, fma, avx, avx2 bool
	// avx2Usable additionally requires the OS to have enabled YMM state
	// saving (OSXSAVE + XCR0 bits 1 and 2): AVX2 being present in CPUID
	// is not enough to safely execute VEX.256 code.
	avx2Usable bool
}

var flags = probeCPU()

func probeCPU() cpuFlags {
	var f cpuFlags
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 1 {
		return f
	}
	_, _, ecx1, _ := cpuid(1, 0)
	f.sse42 = ecx1&cpuidSSE42 != 0
	f.fma = ecx1&cpuidFMA != 0
	f.avx = ecx1&cpuidAVX != 0
	if maxLeaf >= 7 {
		_, ebx7, _, _ := cpuid(7, 0)
		f.avx2 = ebx7&cpuidAVX2 != 0
	}
	if f.avx && f.avx2 && ecx1&cpuidOSXSAVE != 0 {
		xlo, _ := xgetbv()
		f.avx2Usable = xlo&(xcr0XMM|xcr0YMM) == xcr0XMM|xcr0YMM
	}
	return f
}

// detectFloatTiers lists the float32 tiers this CPU can run, best first:
// AVX2 when feature-detected and OS-enabled, then the scalar fallback.
func detectFloatTiers() []floatKernels {
	if flags.avx2Usable {
		return []floatKernels{
			{name: "avx2", dot: dotAVX2Kernel, sqL2: sqL2AVX2Kernel, dotBatch: dotBatchAVX2Kernel, sqL2Batch: sqL2BatchAVX2Kernel},
			scalarFloat,
		}
	}
	return []floatKernels{scalarFloat}
}

func cpuFeatures() []string {
	var fs []string
	if flags.sse42 {
		fs = append(fs, "sse4.2")
	}
	if flags.avx {
		fs = append(fs, "avx")
	}
	if flags.avx2 {
		fs = append(fs, "avx2")
	}
	if flags.fma {
		fs = append(fs, "fma")
	}
	return fs
}
