package vecmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	if got := Dot([]float32{1, 2, 3}, []float32{4, 5, 6}); got != 32 {
		t.Fatalf("dot = %v, want 32", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float32{1}, []float32{1, 2})
}

func TestNormAndNormalize(t *testing.T) {
	v := []float32{3, 4}
	if got := Norm(v); got != 5 {
		t.Fatalf("norm = %v, want 5", got)
	}
	Normalize(v)
	if math.Abs(float64(Norm(v))-1) > 1e-6 {
		t.Fatalf("normalized norm = %v", Norm(v))
	}
	zero := []float32{0, 0}
	Normalize(zero)
	if zero[0] != 0 || zero[1] != 0 {
		t.Fatal("zero vector must stay zero")
	}
}

func TestCosine(t *testing.T) {
	a := []float32{1, 0}
	b := []float32{0, 1}
	if got := Cosine(a, b); got != 0 {
		t.Fatalf("orthogonal cosine = %v", got)
	}
	if got := Cosine(a, a); math.Abs(float64(got)-1) > 1e-6 {
		t.Fatalf("self cosine = %v", got)
	}
	if got := Cosine(a, []float32{0, 0}); got != 0 {
		t.Fatalf("zero-vector cosine = %v", got)
	}
	if got := Cosine(a, []float32{-1, 0}); math.Abs(float64(got)+1) > 1e-6 {
		t.Fatalf("opposite cosine = %v", got)
	}
}

func TestSquaredL2(t *testing.T) {
	if got := SquaredL2([]float32{1, 2}, []float32{4, 6}); got != 25 {
		t.Fatalf("sql2 = %v, want 25", got)
	}
}

// TestUnrolledKernelsMatchReference pins the lane-accumulated kernels
// against naive sequential reference loops at every length from 0 to 19,
// covering each tail-remainder case. The canonical reduction order differs
// from sequential summation only in the last ULPs, so a loose relative
// tolerance is enough to catch indexing bugs without flagging legitimate
// reassociation (the bit-exact cross-tier gate is TestKernelTiersBitIdentical).
func TestUnrolledKernelsMatchReference(t *testing.T) {
	refDot := func(a, b []float32) float64 {
		var s float64
		for i := range a {
			s += float64(a[i]) * float64(b[i])
		}
		return s
	}
	refL2 := func(a, b []float32) float64 {
		var s float64
		for i := range a {
			d := float64(a[i]) - float64(b[i])
			s += d * d
		}
		return s
	}
	close := func(got float32, want float64) bool {
		return math.Abs(float64(got)-want) <= 1e-4*(1+math.Abs(want))
	}
	for n := 0; n < 20; n++ {
		a := make([]float32, n)
		b := make([]float32, n)
		for i := 0; i < n; i++ {
			a[i] = float32(i)*0.25 - 1
			b[i] = 2 - float32(i)*0.5
		}
		if got, want := Dot(a, b), refDot(a, b); !close(got, want) {
			t.Fatalf("Dot len %d = %v, reference %v", n, got, want)
		}
		if got, want := SquaredL2(a, b), refL2(a, b); !close(got, want) {
			t.Fatalf("SquaredL2 len %d = %v, reference %v", n, got, want)
		}
		if got, want := Norm(a), math.Sqrt(refDot(a, a)); !close(got, want) {
			t.Fatalf("Norm len %d = %v, reference %v", n, got, want)
		}
		qa := make([]int8, n)
		qb := make([]int8, n)
		for i := 0; i < n; i++ {
			qa[i] = int8(i*13 - 110)
			qb[i] = int8(90 - i*11)
		}
		if got, want := DotInt8(qa, qb), refDotInt8(qa, qb); got != want {
			t.Fatalf("DotInt8 len %d = %v, reference %v (must be exact)", n, got, want)
		}
	}
}

// refDotInt8 is the naive sequential reference for the int8 kernel.
// Integer accumulation is associative, so the unrolled kernel must match
// it bit-for-bit at every length.
func refDotInt8(a, b []int8) int32 {
	var s int32
	for i := range a {
		s += int32(a[i]) * int32(b[i])
	}
	return s
}

// TestDotInt8KernelMatchesScalar sweeps every length through several SIMD
// blocks plus all tail residues, on pseudo-random values spanning the full
// code range including ±127: the dispatched kernel (SSE2 on amd64, scalar
// elsewhere) and the portable scalar implementation must agree
// bit-for-bit with the naive reference. This is the differential gate for
// the assembly path — integer arithmetic leaves no rounding to hide
// behind.
func TestDotInt8KernelMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 0; n <= 100; n++ {
		a := make([]int8, n)
		b := make([]int8, n)
		for i := 0; i < n; i++ {
			a[i] = int8(rng.Intn(255) - 127)
			b[i] = int8(rng.Intn(255) - 127)
		}
		if n > 1 { // force extreme codes into both the block body and the tail
			a[0], b[0] = 127, -127
			a[n-1], b[n-1] = -127, 127
		}
		want := refDotInt8(a, b)
		if got := DotInt8(a, b); got != want {
			t.Fatalf("DotInt8 len %d = %d, reference %d", n, got, want)
		}
		if got := dotInt8Scalar(a, b); got != want {
			t.Fatalf("dotInt8Scalar len %d = %d, reference %d", n, got, want)
		}
	}
}

// TestKernelsOnEmptyVectors pins every kernel's zero-length behavior
// explicitly (the length sweep above covers it too, but an empty arena or
// zero-dimension index must never panic or return garbage).
func TestKernelsOnEmptyVectors(t *testing.T) {
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil, nil) = %v, want 0", got)
	}
	if got := SquaredL2(nil, nil); got != 0 {
		t.Fatalf("SquaredL2(nil, nil) = %v, want 0", got)
	}
	if got := Norm(nil); got != 0 {
		t.Fatalf("Norm(nil) = %v, want 0", got)
	}
	if got := DotInt8(nil, nil); got != 0 {
		t.Fatalf("DotInt8(nil, nil) = %v, want 0", got)
	}
	if got := Cosine(nil, nil); got != 0 {
		t.Fatalf("Cosine(nil, nil) = %v, want 0", got)
	}
}

func TestDotInt8Extremes(t *testing.T) {
	// Saturated components at a realistic embedding width must not
	// overflow the int32 accumulator: 1024 * 127 * 127 = 16.5M << 2^31.
	n := 1024
	a := make([]int8, n)
	b := make([]int8, n)
	for i := range a {
		a[i], b[i] = 127, 127
	}
	if got, want := DotInt8(a, b), int32(n)*127*127; got != want {
		t.Fatalf("saturated DotInt8 = %d, want %d", got, want)
	}
	for i := range b {
		b[i] = -128
	}
	if got, want := DotInt8(a, b), int32(n)*127*-128; got != want {
		t.Fatalf("mixed-sign DotInt8 = %d, want %d", got, want)
	}
}

func TestDotInt8PanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DotInt8([]int8{1}, []int8{1, 2})
}

func TestCosineWithNorms(t *testing.T) {
	a := []float32{1, 2, 3, 4, 5}
	b := []float32{5, 4, 3, 2, 1}
	if got, want := CosineWithNorms(a, b, Norm(a), Norm(b)), Cosine(a, b); got != want {
		t.Fatalf("CosineWithNorms = %v, Cosine = %v; must be bit-identical", got, want)
	}
	if got := CosineWithNorms(a, b, 0, Norm(b)); got != 0 {
		t.Fatalf("zero-norm CosineWithNorms = %v, want 0", got)
	}
}

func BenchmarkDot(b *testing.B) {
	x := make([]float32, 256)
	y := make([]float32, 256)
	for i := range x {
		x[i] = float32(i) * 0.01
		y[i] = 1 - float32(i)*0.01
	}
	b.ResetTimer()
	var s float32
	for i := 0; i < b.N; i++ {
		s += Dot(x, y)
	}
	_ = s
}

func BenchmarkSquaredL2(b *testing.B) {
	x := make([]float32, 256)
	y := make([]float32, 256)
	for i := range x {
		x[i] = float32(i) * 0.01
		y[i] = 1 - float32(i)*0.01
	}
	b.ResetTimer()
	var s float32
	for i := 0; i < b.N; i++ {
		s += SquaredL2(x, y)
	}
	_ = s
}

func BenchmarkDotInt8(b *testing.B) {
	x := make([]int8, 256)
	y := make([]int8, 256)
	for i := range x {
		x[i] = int8(i - 128)
		y[i] = int8(127 - i)
	}
	b.ResetTimer()
	var s int32
	for i := 0; i < b.N; i++ {
		s += DotInt8(x, y)
	}
	_ = s
}

func TestSquaredL2Properties(t *testing.T) {
	symmetric := func(a, b [8]float32) bool {
		return SquaredL2(a[:], b[:]) == SquaredL2(b[:], a[:])
	}
	if err := quick.Check(symmetric, &quick.Config{MaxCount: 50}); err != nil {
		t.Error("symmetry:", err)
	}
	nonneg := func(a, b [8]float32) bool {
		return SquaredL2(a[:], b[:]) >= 0 || math.IsNaN(float64(SquaredL2(a[:], b[:])))
	}
	if err := quick.Check(nonneg, &quick.Config{MaxCount: 50}); err != nil {
		t.Error("non-negativity:", err)
	}
}
