package vecmath

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	if got := Dot([]float32{1, 2, 3}, []float32{4, 5, 6}); got != 32 {
		t.Fatalf("dot = %v, want 32", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float32{1}, []float32{1, 2})
}

func TestNormAndNormalize(t *testing.T) {
	v := []float32{3, 4}
	if got := Norm(v); got != 5 {
		t.Fatalf("norm = %v, want 5", got)
	}
	Normalize(v)
	if math.Abs(float64(Norm(v))-1) > 1e-6 {
		t.Fatalf("normalized norm = %v", Norm(v))
	}
	zero := []float32{0, 0}
	Normalize(zero)
	if zero[0] != 0 || zero[1] != 0 {
		t.Fatal("zero vector must stay zero")
	}
}

func TestCosine(t *testing.T) {
	a := []float32{1, 0}
	b := []float32{0, 1}
	if got := Cosine(a, b); got != 0 {
		t.Fatalf("orthogonal cosine = %v", got)
	}
	if got := Cosine(a, a); math.Abs(float64(got)-1) > 1e-6 {
		t.Fatalf("self cosine = %v", got)
	}
	if got := Cosine(a, []float32{0, 0}); got != 0 {
		t.Fatalf("zero-vector cosine = %v", got)
	}
	if got := Cosine(a, []float32{-1, 0}); math.Abs(float64(got)+1) > 1e-6 {
		t.Fatalf("opposite cosine = %v", got)
	}
}

func TestSquaredL2(t *testing.T) {
	if got := SquaredL2([]float32{1, 2}, []float32{4, 6}); got != 25 {
		t.Fatalf("sql2 = %v, want 25", got)
	}
}

// TestUnrolledKernelsMatchReference pins the four-wide unrolled kernels
// against naive sequential reference loops at every length from 0 to 19,
// covering each tail-remainder case. The unrolled reduction order differs
// from sequential summation only in the last ULPs, so a loose relative
// tolerance is enough to catch indexing bugs without flagging legitimate
// reassociation.
func TestUnrolledKernelsMatchReference(t *testing.T) {
	refDot := func(a, b []float32) float64 {
		var s float64
		for i := range a {
			s += float64(a[i]) * float64(b[i])
		}
		return s
	}
	refL2 := func(a, b []float32) float64 {
		var s float64
		for i := range a {
			d := float64(a[i]) - float64(b[i])
			s += d * d
		}
		return s
	}
	close := func(got float32, want float64) bool {
		return math.Abs(float64(got)-want) <= 1e-4*(1+math.Abs(want))
	}
	for n := 0; n < 20; n++ {
		a := make([]float32, n)
		b := make([]float32, n)
		for i := 0; i < n; i++ {
			a[i] = float32(i)*0.25 - 1
			b[i] = 2 - float32(i)*0.5
		}
		if got, want := Dot(a, b), refDot(a, b); !close(got, want) {
			t.Fatalf("Dot len %d = %v, reference %v", n, got, want)
		}
		if got, want := SquaredL2(a, b), refL2(a, b); !close(got, want) {
			t.Fatalf("SquaredL2 len %d = %v, reference %v", n, got, want)
		}
		if got, want := Norm(a), math.Sqrt(refDot(a, a)); !close(got, want) {
			t.Fatalf("Norm len %d = %v, reference %v", n, got, want)
		}
	}
}

func TestCosineWithNorms(t *testing.T) {
	a := []float32{1, 2, 3, 4, 5}
	b := []float32{5, 4, 3, 2, 1}
	if got, want := CosineWithNorms(a, b, Norm(a), Norm(b)), Cosine(a, b); got != want {
		t.Fatalf("CosineWithNorms = %v, Cosine = %v; must be bit-identical", got, want)
	}
	if got := CosineWithNorms(a, b, 0, Norm(b)); got != 0 {
		t.Fatalf("zero-norm CosineWithNorms = %v, want 0", got)
	}
}

func BenchmarkDot(b *testing.B) {
	x := make([]float32, 256)
	y := make([]float32, 256)
	for i := range x {
		x[i] = float32(i) * 0.01
		y[i] = 1 - float32(i)*0.01
	}
	b.ResetTimer()
	var s float32
	for i := 0; i < b.N; i++ {
		s += Dot(x, y)
	}
	_ = s
}

func BenchmarkSquaredL2(b *testing.B) {
	x := make([]float32, 256)
	y := make([]float32, 256)
	for i := range x {
		x[i] = float32(i) * 0.01
		y[i] = 1 - float32(i)*0.01
	}
	b.ResetTimer()
	var s float32
	for i := 0; i < b.N; i++ {
		s += SquaredL2(x, y)
	}
	_ = s
}

func TestSquaredL2Properties(t *testing.T) {
	symmetric := func(a, b [8]float32) bool {
		return SquaredL2(a[:], b[:]) == SquaredL2(b[:], a[:])
	}
	if err := quick.Check(symmetric, &quick.Config{MaxCount: 50}); err != nil {
		t.Error("symmetry:", err)
	}
	nonneg := func(a, b [8]float32) bool {
		return SquaredL2(a[:], b[:]) >= 0 || math.IsNaN(float64(SquaredL2(a[:], b[:])))
	}
	if err := quick.Check(nonneg, &quick.Config{MaxCount: 50}); err != nil {
		t.Error("non-negativity:", err)
	}
}
