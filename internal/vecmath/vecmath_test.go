package vecmath

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	if got := Dot([]float32{1, 2, 3}, []float32{4, 5, 6}); got != 32 {
		t.Fatalf("dot = %v, want 32", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float32{1}, []float32{1, 2})
}

func TestNormAndNormalize(t *testing.T) {
	v := []float32{3, 4}
	if got := Norm(v); got != 5 {
		t.Fatalf("norm = %v, want 5", got)
	}
	Normalize(v)
	if math.Abs(float64(Norm(v))-1) > 1e-6 {
		t.Fatalf("normalized norm = %v", Norm(v))
	}
	zero := []float32{0, 0}
	Normalize(zero)
	if zero[0] != 0 || zero[1] != 0 {
		t.Fatal("zero vector must stay zero")
	}
}

func TestCosine(t *testing.T) {
	a := []float32{1, 0}
	b := []float32{0, 1}
	if got := Cosine(a, b); got != 0 {
		t.Fatalf("orthogonal cosine = %v", got)
	}
	if got := Cosine(a, a); math.Abs(float64(got)-1) > 1e-6 {
		t.Fatalf("self cosine = %v", got)
	}
	if got := Cosine(a, []float32{0, 0}); got != 0 {
		t.Fatalf("zero-vector cosine = %v", got)
	}
	if got := Cosine(a, []float32{-1, 0}); math.Abs(float64(got)+1) > 1e-6 {
		t.Fatalf("opposite cosine = %v", got)
	}
}

func TestSquaredL2(t *testing.T) {
	if got := SquaredL2([]float32{1, 2}, []float32{4, 6}); got != 25 {
		t.Fatalf("sql2 = %v, want 25", got)
	}
}

func TestSquaredL2Properties(t *testing.T) {
	symmetric := func(a, b [8]float32) bool {
		return SquaredL2(a[:], b[:]) == SquaredL2(b[:], a[:])
	}
	if err := quick.Check(symmetric, &quick.Config{MaxCount: 50}); err != nil {
		t.Error("symmetry:", err)
	}
	nonneg := func(a, b [8]float32) bool {
		return SquaredL2(a[:], b[:]) >= 0 || math.IsNaN(float64(SquaredL2(a[:], b[:])))
	}
	if err := quick.Check(nonneg, &quick.Config{MaxCount: 50}); err != nil {
		t.Error("non-negativity:", err)
	}
}
