package vecmath

import (
	"math/rand"
	"sync"
	"testing"
)

// fillRand populates a pair of float32 slices with deterministic
// pseudo-random values spanning sign changes and magnitude spread, so the
// differential tests exercise real rounding behavior rather than neat
// integers.
func fillRand(rng *rand.Rand, a, b []float32) {
	for i := range a {
		a[i] = float32(rng.NormFloat64())
		b[i] = float32(rng.NormFloat64()) * 3.7
	}
}

// TestKernelTiersBitIdentical is the differential gate for the float32
// SIMD kernels: at every length 0..129 (several 8-lane blocks plus every
// tail residue) the active dispatch tier and the scalar reference must
// agree bit-for-bit on Dot, SquaredL2, Norm and CosineWithNorms. On a
// machine without a SIMD tier both sides run the same scalar code and the
// test degenerates to a no-op guard; on AVX2/NEON hardware it pins the
// lane-accumulation contract the whole repo's determinism rests on.
func TestKernelTiersBitIdentical(t *testing.T) {
	t.Logf("detected tier %q, features %v", DetectedTier(), Features())
	rng := rand.New(rand.NewSource(42))
	for n := 0; n <= 129; n++ {
		a := make([]float32, n)
		b := make([]float32, n)
		fillRand(rng, a, b)
		simdDot, simdL2 := Dot(a, b), SquaredL2(a, b)
		simdNorm := Norm(a)
		simdCos := CosineWithNorms(a, b, Norm(a), Norm(b))
		if got, want := simdDot, dotScalar(a, b); got != want {
			t.Fatalf("Dot len %d: %s tier %v, scalar %v (must be bit-identical)", n, Tier(), got, want)
		}
		if got, want := simdL2, sqL2Scalar(a, b); got != want {
			t.Fatalf("SquaredL2 len %d: %s tier %v, scalar %v", n, Tier(), got, want)
		}
		ForceScalar(true)
		scalNorm := Norm(a)
		scalCos := CosineWithNorms(a, b, Norm(a), Norm(b))
		ForceScalar(false)
		if simdNorm != scalNorm {
			t.Fatalf("Norm len %d: %s tier %v, scalar %v", n, DetectedTier(), simdNorm, scalNorm)
		}
		if simdCos != scalCos {
			t.Fatalf("CosineWithNorms len %d: %s tier %v, scalar %v", n, DetectedTier(), simdCos, scalCos)
		}
	}
}

// TestKernelTiersOddOffsets re-runs the differential check on slices that
// start at odd element offsets into a shared backing array: the SIMD
// kernels use unaligned loads, and a misaligned base pointer must change
// neither behavior nor results. Offsets 1, 3 and 5 break 32-, 16- and
// 8-byte alignment respectively.
func TestKernelTiersOddOffsets(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	back := make([]float32, 200)
	for i := range back {
		back[i] = float32(rng.NormFloat64())
	}
	for _, off := range []int{1, 3, 5} {
		for n := 0; n <= 80; n++ {
			a := back[off : off+n]
			b := back[off+n : off+2*n]
			if got, want := Dot(a, b), dotScalar(a, b); got != want {
				t.Fatalf("Dot off %d len %d: %v != scalar %v", off, n, got, want)
			}
			if got, want := SquaredL2(a, b), sqL2Scalar(a, b); got != want {
				t.Fatalf("SquaredL2 off %d len %d: %v != scalar %v", off, n, got, want)
			}
		}
	}
}

// TestForceScalarOverride exercises both force-scalar hooks: the exported
// setter must retarget the dispatch seam (observable through Tier) and
// the env-side resolver must pick the scalar tier for any non-empty
// value, falling back to the detected tier otherwise.
func TestForceScalarOverride(t *testing.T) {
	defer ForceScalar(false)
	ForceScalar(true)
	if Tier() != "scalar" {
		t.Fatalf("Tier after ForceScalar(true) = %q, want scalar", Tier())
	}
	ForceScalar(false)
	if Tier() != DetectedTier() {
		t.Fatalf("Tier after ForceScalar(false) = %q, want detected %q", Tier(), DetectedTier())
	}
	if got := initialTier("1"); got != scalarSet {
		t.Fatalf("initialTier(%q) = %q, want scalar", "1", got.name)
	}
	if got := initialTier(""); got != detected {
		t.Fatalf("initialTier(\"\") = %q, want detected %q", got.name, detected.name)
	}
}

// TestDispatchSeamRace hammers the dispatch seam from concurrent kernel
// callers while another goroutine toggles ForceScalar: the seam is an
// atomic pointer precisely so a tier swap mid-flight is a clean race-free
// handoff, and every interleaving must still produce the canonical result
// (the tiers are bit-identical, so the toggle can never change a value).
// Runs under make race-smoke.
func TestDispatchSeamRace(t *testing.T) {
	a := make([]float32, 97)
	b := make([]float32, 97)
	fillRand(rand.New(rand.NewSource(44)), a, b)
	wantDot := dotScalar(a, b)
	wantL2 := sqL2Scalar(a, b)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if got := Dot(a, b); got != wantDot {
					t.Errorf("Dot under toggling = %v, want %v", got, wantDot)
					return
				}
				if got := SquaredL2(a, b); got != wantL2 {
					t.Errorf("SquaredL2 under toggling = %v, want %v", got, wantL2)
					return
				}
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		ForceScalar(i%2 == 0)
	}
	ForceScalar(false)
	close(stop)
	wg.Wait()
}
