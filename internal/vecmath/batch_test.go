package vecmath

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// fillRandInt8 populates int8 slices with the full [-127, 127] range so
// the differential tests hit sign extension on both operands.
func fillRandInt8(rng *rand.Rand, vs ...[]int8) {
	for _, v := range vs {
		for i := range v {
			v[i] = int8(rng.Intn(255) - 127)
		}
	}
}

// tierPairs enumerates every float32×int8 tier pairing this CPU can run,
// so the batch differential tests cover each SIMD rung and not just the
// best one (on an AVX2 machine that includes the SSE2 int8 kernel, which
// would otherwise never be dispatched).
func tierPairs() [][2]string {
	var pairs [][2]string
	for _, f := range FloatTiers() {
		for _, i8 := range Int8Tiers() {
			pairs = append(pairs, [2]string{f, i8})
		}
	}
	return pairs
}

// restoreDetected re-arms the detected tier pair after a ForceTiers walk.
func restoreDetected() { ForceScalar(false) }

// TestBatchBitIdenticalAllLengths is the batch analogue of
// TestKernelTiersBitIdentical: at every dimension 0..129 (several SIMD
// blocks plus every tail residue) and on every tier pairing, one batched
// call must agree bit-for-bit with a loop of single-kernel calls on the
// same tier AND with the scalar reference. That is the contract hnsw
// traversal relies on when it swaps per-neighbor scoring for one batched
// call per adjacency list.
func TestBatchBitIdenticalAllLengths(t *testing.T) {
	defer restoreDetected()
	rng := rand.New(rand.NewSource(50))
	const rows = 9
	idxs := []int32{3, 0, 7, 7, 1, 8, 2} // out of order, with a repeat
	for _, pair := range tierPairs() {
		if !ForceTiers(pair[0], pair[1]) {
			t.Fatalf("ForceTiers(%q, %q) rejected a listed pair", pair[0], pair[1])
		}
		for dim := 0; dim <= 129; dim++ {
			q := make([]float32, dim)
			arena := make([]float32, rows*dim)
			fillRand(rng, q, arena[:dim])
			fillRand(rng, arena[dim:(rows/2)*dim+dim], arena[(rows/2)*dim+dim:])
			out := make([]float32, len(idxs))
			ref := make([]float32, len(idxs))

			DotBatch(q, arena, dim, idxs, out)
			dotBatchScalar(q, arena, dim, idxs, ref)
			for j, ix := range idxs {
				if single := Dot(q, arena[int(ix)*dim:int(ix)*dim+dim]); out[j] != single {
					t.Fatalf("tier %v dim %d: DotBatch[%d]=%v, single=%v", pair, dim, j, out[j], single)
				}
				if out[j] != ref[j] {
					t.Fatalf("tier %v dim %d: DotBatch[%d]=%v, scalar=%v", pair, dim, j, out[j], ref[j])
				}
			}

			SquaredL2Batch(q, arena, dim, idxs, out)
			sqL2BatchScalar(q, arena, dim, idxs, ref)
			for j, ix := range idxs {
				if single := SquaredL2(q, arena[int(ix)*dim:int(ix)*dim+dim]); out[j] != single {
					t.Fatalf("tier %v dim %d: SquaredL2Batch[%d]=%v, single=%v", pair, dim, j, out[j], single)
				}
				if out[j] != ref[j] {
					t.Fatalf("tier %v dim %d: SquaredL2Batch[%d]=%v, scalar=%v", pair, dim, j, out[j], ref[j])
				}
			}

			q8 := make([]int8, dim)
			arena8 := make([]int8, rows*dim)
			fillRandInt8(rng, q8, arena8)
			out8 := make([]int32, len(idxs))
			ref8 := make([]int32, len(idxs))
			DotInt8Batch(q8, arena8, dim, idxs, out8)
			dotInt8BatchScalar(q8, arena8, dim, idxs, ref8)
			for j, ix := range idxs {
				if single := DotInt8(q8, arena8[int(ix)*dim:int(ix)*dim+dim]); out8[j] != single {
					t.Fatalf("tier %v dim %d: DotInt8Batch[%d]=%v, single=%v", pair, dim, j, out8[j], single)
				}
				if out8[j] != ref8[j] {
					t.Fatalf("tier %v dim %d: DotInt8Batch[%d]=%v, scalar=%v", pair, dim, j, out8[j], ref8[j])
				}
			}
		}
	}
}

// TestBatchSizes sweeps the batch-size axis — empty through several SIMD-
// misaligned counts — at a tail-bearing dimension, on every tier pairing.
// Batch size must never leak into per-candidate math, and an empty index
// list must be a no-op that leaves out untouched beyond the batch.
func TestBatchSizes(t *testing.T) {
	defer restoreDetected()
	rng := rand.New(rand.NewSource(51))
	const dim, rows = 99, 40
	q := make([]float32, dim)
	arena := make([]float32, rows*dim)
	fillRand(rng, q, arena[:dim])
	fillRand(rng, arena[dim:20*dim], arena[20*dim:])
	q8 := make([]int8, dim)
	arena8 := make([]int8, rows*dim)
	fillRandInt8(rng, q8, arena8)

	for _, pair := range tierPairs() {
		if !ForceTiers(pair[0], pair[1]) {
			t.Fatalf("ForceTiers(%q, %q) rejected a listed pair", pair[0], pair[1])
		}
		for _, size := range []int{0, 1, 2, 7, 8, 33} {
			idxs := make([]int32, size)
			for j := range idxs {
				idxs[j] = int32(rng.Intn(rows))
			}
			out := make([]float32, size+1)
			out[size] = 12345 // sentinel past the batch
			ref := make([]float32, size)

			DotBatch(q, arena, dim, idxs, out)
			dotBatchScalar(q, arena, dim, idxs, ref)
			for j := range idxs {
				if out[j] != ref[j] {
					t.Fatalf("tier %v size %d: DotBatch[%d]=%v, want %v", pair, size, j, out[j], ref[j])
				}
			}
			SquaredL2Batch(q, arena, dim, idxs, out)
			sqL2BatchScalar(q, arena, dim, idxs, ref)
			for j := range idxs {
				if out[j] != ref[j] {
					t.Fatalf("tier %v size %d: SquaredL2Batch[%d]=%v, want %v", pair, size, j, out[j], ref[j])
				}
			}
			if out[size] != 12345 {
				t.Fatalf("tier %v size %d: batch wrote past len(idxs): out[%d]=%v", pair, size, size, out[size])
			}

			out8 := make([]int32, size)
			ref8 := make([]int32, size)
			DotInt8Batch(q8, arena8, dim, idxs, out8)
			dotInt8BatchScalar(q8, arena8, dim, idxs, ref8)
			for j := range idxs {
				if out8[j] != ref8[j] {
					t.Fatalf("tier %v size %d: DotInt8Batch[%d]=%v, want %v", pair, size, j, out8[j], ref8[j])
				}
			}
		}
	}
}

// TestBatchOddOffsetsAndStride re-runs the differential check on an arena
// sliced at odd element offsets into a shared backing array and with a
// stride wider than the query (padded rows): the kernels use unaligned
// loads and must honor stride exactly, never reading row padding into a
// score. Offsets 1, 3 and 5 break 32-, 16- and 8-byte alignment.
func TestBatchOddOffsetsAndStride(t *testing.T) {
	defer restoreDetected()
	rng := rand.New(rand.NewSource(52))
	const dim, pad, rows = 67, 5, 12
	stride := dim + pad
	back := make([]float32, rows*stride+8)
	for i := range back {
		back[i] = float32(rng.NormFloat64())
	}
	back8 := make([]int8, rows*stride+8)
	fillRandInt8(rng, back8)
	q := make([]float32, dim)
	q8 := make([]int8, dim)
	fillRand(rng, q, q)
	fillRandInt8(rng, q8)
	idxs := []int32{0, 11, 5, 5, 2, 9, 1, 7}

	for _, pair := range tierPairs() {
		if !ForceTiers(pair[0], pair[1]) {
			t.Fatalf("ForceTiers(%q, %q) rejected a listed pair", pair[0], pair[1])
		}
		for _, off := range []int{1, 3, 5} {
			arena := back[off : off+rows*stride]
			out := make([]float32, len(idxs))
			ref := make([]float32, len(idxs))
			DotBatch(q, arena, stride, idxs, out)
			dotBatchScalar(q, arena, stride, idxs, ref)
			for j := range idxs {
				if out[j] != ref[j] {
					t.Fatalf("tier %v off %d: DotBatch[%d]=%v, want %v", pair, off, j, out[j], ref[j])
				}
			}
			SquaredL2Batch(q, arena, stride, idxs, out)
			sqL2BatchScalar(q, arena, stride, idxs, ref)
			for j := range idxs {
				if out[j] != ref[j] {
					t.Fatalf("tier %v off %d: SquaredL2Batch[%d]=%v, want %v", pair, off, j, out[j], ref[j])
				}
			}

			arena8 := back8[off : off+rows*stride]
			out8 := make([]int32, len(idxs))
			ref8 := make([]int32, len(idxs))
			DotInt8Batch(q8, arena8, stride, idxs, out8)
			dotInt8BatchScalar(q8, arena8, stride, idxs, ref8)
			for j := range idxs {
				if out8[j] != ref8[j] {
					t.Fatalf("tier %v off %d: DotInt8Batch[%d]=%v, want %v", pair, off, j, out8[j], ref8[j])
				}
			}
		}
	}
}

// TestBatchValidation pins the checkBatch contract: a short output, a
// stride below the query length, and an index whose window leaves the
// arena must all panic before any kernel runs — that validation is what
// lets the assembly kernels execute raw unchecked loads.
func TestBatchValidation(t *testing.T) {
	q := make([]float32, 8)
	arena := make([]float32, 4*8)
	mustPanic := func(name, wantSub string, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: expected panic", name)
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, wantSub) {
				t.Fatalf("%s: panic %v, want substring %q", name, r, wantSub)
			}
		}()
		fn()
	}
	mustPanic("short out", "output shorter", func() {
		DotBatch(q, arena, 8, []int32{0, 1}, make([]float32, 1))
	})
	mustPanic("narrow stride", "stride below", func() {
		SquaredL2Batch(q, arena, 7, []int32{0}, make([]float32, 1))
	})
	mustPanic("index past arena", "outside arena", func() {
		DotBatch(q, arena, 8, []int32{4}, make([]float32, 1))
	})
	mustPanic("negative index", "outside arena", func() {
		DotBatch(q, arena, 8, []int32{-1}, make([]float32, 1))
	})
	mustPanic("int8 index past arena", "outside arena", func() {
		DotInt8Batch(make([]int8, 8), make([]int8, 32), 8, []int32{4}, make([]int32, 1))
	})
}

// TestForceTiers pins the benchmark-facing tier selector: any pairing of
// listed names retargets the seam (observable through Tier/Int8Tier), an
// unknown name on either axis is rejected without touching the seam, and
// the tier lists end at the scalar floor.
func TestForceTiers(t *testing.T) {
	defer restoreDetected()
	floats, int8s := FloatTiers(), Int8Tiers()
	if floats[len(floats)-1] != "scalar" || int8s[len(int8s)-1] != "scalar" {
		t.Fatalf("tier lists must end with scalar: %v, %v", floats, int8s)
	}
	for _, f := range floats {
		for _, i8 := range int8s {
			if !ForceTiers(f, i8) {
				t.Fatalf("ForceTiers(%q, %q) rejected a listed pair", f, i8)
			}
			if Tier() != f || Int8Tier() != i8 {
				t.Fatalf("after ForceTiers(%q, %q): Tier=%q Int8Tier=%q", f, i8, Tier(), Int8Tier())
			}
		}
	}
	before, before8 := Tier(), Int8Tier()
	if ForceTiers("no-such-tier", "scalar") || ForceTiers("scalar", "no-such-tier") {
		t.Fatal("ForceTiers accepted an unknown tier name")
	}
	if Tier() != before || Int8Tier() != before8 {
		t.Fatalf("rejected ForceTiers moved the seam: %q/%q -> %q/%q", before, before8, Tier(), Int8Tier())
	}
	ForceScalar(false)
	if Tier() != DetectedTier() || Int8Tier() != DetectedInt8Tier() {
		t.Fatalf("ForceScalar(false) should restore detected pair, got %q/%q", Tier(), Int8Tier())
	}
}

// TestDispatchSeamRaceBatch extends the dispatch-seam race contract to
// the batched entry points: concurrent DotBatch/SquaredL2Batch/
// DotInt8Batch callers race a goroutine toggling ForceScalar and walking
// ForceTiers pairings. The seam is one atomic pointer, so every
// interleaving must be race-free and — the tiers being bit-identical —
// value-stable. Runs under make race-smoke (name shares the
// TestDispatchSeamRace prefix the smoke regex matches).
func TestDispatchSeamRaceBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	const dim, rows = 97, 8
	q := make([]float32, dim)
	arena := make([]float32, rows*dim)
	fillRand(rng, q, arena[:dim])
	fillRand(rng, arena[dim:4*dim], arena[4*dim:])
	q8 := make([]int8, dim)
	arena8 := make([]int8, rows*dim)
	fillRandInt8(rng, q8, arena8)
	idxs := []int32{5, 0, 3, 7, 1}
	wantDot := make([]float32, len(idxs))
	wantL2 := make([]float32, len(idxs))
	want8 := make([]int32, len(idxs))
	dotBatchScalar(q, arena, dim, idxs, wantDot)
	sqL2BatchScalar(q, arena, dim, idxs, wantL2)
	dotInt8BatchScalar(q8, arena8, dim, idxs, want8)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			outDot := make([]float32, len(idxs))
			outL2 := make([]float32, len(idxs))
			out8 := make([]int32, len(idxs))
			for {
				select {
				case <-stop:
					return
				default:
				}
				DotBatch(q, arena, dim, idxs, outDot)
				SquaredL2Batch(q, arena, dim, idxs, outL2)
				DotInt8Batch(q8, arena8, dim, idxs, out8)
				for j := range idxs {
					if outDot[j] != wantDot[j] || outL2[j] != wantL2[j] || out8[j] != want8[j] {
						t.Errorf("batch under toggling diverged at %d: %v/%v/%v want %v/%v/%v",
							j, outDot[j], outL2[j], out8[j], wantDot[j], wantL2[j], want8[j])
						return
					}
				}
			}
		}()
	}
	pairs := tierPairs()
	for i := 0; i < 2000; i++ {
		if i%3 == 0 {
			ForceScalar(i%2 == 0)
		} else {
			p := pairs[i%len(pairs)]
			ForceTiers(p[0], p[1])
		}
	}
	ForceScalar(false)
	close(stop)
	wg.Wait()
}
