package vecmath

import (
	"os"
	"sync/atomic"
)

// floatKernels is the float32 half of a dispatch tier: the two distance
// kernels everything else in the package is built from (Norm and
// CosineWithNorms ride dot) plus their batched arena forms. Every kernel
// in a half follows the canonical lane-accumulation scheme documented on
// dotScalar, so switching tiers never changes a result, only throughput.
type floatKernels struct {
	name      string
	dot       func(a, b []float32) float32
	sqL2      func(a, b []float32) float32
	dotBatch  func(q, arena []float32, stride int, idxs []int32, out []float32)
	sqL2Batch func(q, arena []float32, stride int, idxs []int32, out []float32)
}

// int8Kernels is the int8 half of a dispatch tier: the quantized speed
// tier's int32-accumulating dot product, single and batched. Integer math
// is exact, so all int8 tiers are bit-identical by construction.
type int8Kernels struct {
	name  string
	dot   func(a, b []int8) int32
	batch func(q, arena []int8, stride int, idxs []int32, out []int32)
}

// kernelSet is one assembled dispatch tier — a float32 half paired with an
// int8 half. The two halves are detected independently (SSE2 int8 exists
// on machines whose float32 tier is scalar) but always swap together
// through the one seam, so a reader of Tier/Int8Tier sees a consistent
// pair.
type kernelSet struct {
	name         string
	int8Name     string
	dot          func(a, b []float32) float32
	sqL2         func(a, b []float32) float32
	dotBatch     func(q, arena []float32, stride int, idxs []int32, out []float32)
	sqL2Batch    func(q, arena []float32, stride int, idxs []int32, out []float32)
	dotInt8      func(a, b []int8) int32
	dotInt8Batch func(q, arena []int8, stride int, idxs []int32, out []int32)
}

// assemble pairs a float32 half with an int8 half into one dispatchable
// set.
func assemble(f floatKernels, i8 int8Kernels) *kernelSet {
	return &kernelSet{
		name:         f.name,
		int8Name:     i8.name,
		dot:          f.dot,
		sqL2:         f.sqL2,
		dotBatch:     f.dotBatch,
		sqL2Batch:    f.sqL2Batch,
		dotInt8:      i8.dot,
		dotInt8Batch: i8.batch,
	}
}

// scalarFloat and scalarInt8 are the pure-Go halves, available everywhere.
// They are both the fallback when no SIMD tier is usable and the reference
// the SIMD tiers are differentially tested against.
var (
	scalarFloat = floatKernels{name: "scalar", dot: dotScalar, sqL2: sqL2Scalar, dotBatch: dotBatchScalar, sqL2Batch: sqL2BatchScalar}
	scalarInt8  = int8Kernels{name: "scalar", dot: dotInt8Scalar, batch: dotInt8BatchScalar}
)

// floatTiers and int8Tiers are every half this CPU can run, best first,
// always ending with the scalar half. Resolved once at init by the
// per-architecture detectFloatTiers/detectInt8Tiers (CPUID on amd64 —
// AVX2 is not in the baseline, unlike the int8 kernel's SSE2 floor; NEON
// is baseline on arm64, so detection there is unconditional).
var (
	floatTiers = detectFloatTiers()
	int8Tiers  = detectInt8Tiers()
)

// scalarSet is the all-scalar tier ForceScalar pins; detected is the best
// pair the CPU supports.
var (
	scalarSet = assemble(scalarFloat, scalarInt8)
	detected  = assemble(floatTiers[0], int8Tiers[0])
)

// active is the dispatch seam: every public kernel call loads it once.
// An atomic pointer rather than plain function variables so ForceScalar
// and ForceTiers can retarget the seam while queries are in flight (the
// race-detector contract the dispatch-seam race test pins down); a swap
// affects only speed, never results.
var active atomic.Pointer[kernelSet]

// ForceScalarEnv is the environment variable that pins the package to the
// all-scalar tier before the first kernel call (any non-empty value) —
// float32 and int8 kernels both, so a forced process exercises every
// portable code path. The exported ForceScalar setter does the same at
// runtime; the env hook exists for comparing tiers across whole processes
// (benchmarks, the tier1-scalar verify pass) without a code change.
const ForceScalarEnv = "PNEUMA_FORCE_SCALAR"

func init() {
	active.Store(initialTier(os.Getenv(ForceScalarEnv)))
}

// initialTier resolves the startup dispatch tier from the ForceScalarEnv
// value. Factored out of init so tier-1 tests can exercise the env-side
// override without re-execing the process.
func initialTier(forceScalar string) *kernelSet {
	if forceScalar != "" {
		return scalarSet
	}
	return detected
}

// ForceScalar pins the package to the all-scalar tier (on=true) or
// restores the detected tier pair (on=false). Safe to call concurrently
// with running kernels; callers pairing a force with measurements should
// use defer ForceScalar(false).
func ForceScalar(on bool) {
	if on {
		active.Store(scalarSet)
	} else {
		active.Store(detected)
	}
}

// ForceTiers retargets the dispatch seam to the named float32 and int8
// tiers — any pairing of FloatTiers() and Int8Tiers() entries — and
// reports whether both names were available on this CPU (the seam is left
// untouched when either is not). It exists so benchmarks and differential
// tests can measure intermediate rungs (e.g. SSE2 int8 on an AVX2
// machine) in-process; serving code should never call it. Like
// ForceScalar it is safe to call while kernels run.
func ForceTiers(floatTier, int8Tier string) bool {
	var f *floatKernels
	for i := range floatTiers {
		if floatTiers[i].name == floatTier {
			f = &floatTiers[i]
			break
		}
	}
	var i8 *int8Kernels
	for i := range int8Tiers {
		if int8Tiers[i].name == int8Tier {
			i8 = &int8Tiers[i]
			break
		}
	}
	if f == nil || i8 == nil {
		return false
	}
	active.Store(assemble(*f, *i8))
	return true
}

// Tier returns the name of the float32 dispatch tier currently serving
// kernel calls: "avx2", "neon" or "scalar".
func Tier() string { return active.Load().name }

// Int8Tier returns the name of the int8 dispatch tier currently serving
// DotInt8/DotInt8Batch calls: "avx2", "sse2" or "scalar".
func Int8Tier() string { return active.Load().int8Name }

// DetectedTier returns the best float32 tier this CPU supports,
// independent of any force override.
func DetectedTier() string { return detected.name }

// DetectedInt8Tier returns the best int8 tier this CPU supports,
// independent of any force override.
func DetectedInt8Tier() string { return detected.int8Name }

// FloatTiers returns the names of every float32 tier this CPU can run,
// best first, ending with "scalar". Valid inputs for ForceTiers.
func FloatTiers() []string {
	names := make([]string, len(floatTiers))
	for i := range floatTiers {
		names[i] = floatTiers[i].name
	}
	return names
}

// Int8Tiers returns the names of every int8 tier this CPU can run, best
// first, ending with "scalar". Valid inputs for ForceTiers.
func Int8Tiers() []string {
	names := make([]string, len(int8Tiers))
	for i := range int8Tiers {
		names[i] = int8Tiers[i].name
	}
	return names
}

// Features returns the detected CPU features relevant to kernel dispatch
// (e.g. "avx2", "fma" on amd64; "neon" on arm64; empty on other
// architectures). Benchmark reports record it so kernel numbers are
// honestly comparable across machines.
func Features() []string { return cpuFeatures() }
