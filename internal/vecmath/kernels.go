package vecmath

import (
	"os"
	"sync/atomic"
)

// kernelSet is one dispatch tier: a name for observability plus the two
// float32 kernels everything else in the package is built from (Norm and
// CosineWithNorms ride dot). Every kernel in a set follows the canonical
// lane-accumulation scheme documented on dotScalar, so switching tiers
// never changes a result, only throughput.
type kernelSet struct {
	name string
	dot  func(a, b []float32) float32
	sqL2 func(a, b []float32) float32
}

// scalarSet is the pure-Go tier, available everywhere. It is both the
// fallback when no SIMD tier is usable and the reference the SIMD tiers
// are differentially tested against.
var scalarSet = &kernelSet{name: "scalar", dot: dotScalar, sqL2: sqL2Scalar}

// detected is the best tier the CPU supports, resolved once at init by
// the per-architecture detectKernels (CPUID on amd64 — AVX2 is not in the
// baseline, unlike the int8 kernel's SSE2; NEON is baseline on arm64, so
// detection there is unconditional).
var detected = detectKernels()

// active is the dispatch seam: every public kernel call loads it once.
// An atomic pointer rather than plain function variables so ForceScalar
// can retarget the seam while queries are in flight (the race-detector
// contract the dispatch-seam race test pins down); a swap affects only
// speed, never results.
var active atomic.Pointer[kernelSet]

// ForceScalarEnv is the environment variable that pins the package to the
// scalar tier before the first kernel call (any non-empty value). The
// exported ForceScalar setter does the same at runtime; the env hook
// exists for comparing tiers across whole processes (benchmarks, CI)
// without a code change.
const ForceScalarEnv = "PNEUMA_FORCE_SCALAR"

func init() {
	active.Store(initialTier(os.Getenv(ForceScalarEnv)))
}

// initialTier resolves the startup dispatch tier from the ForceScalarEnv
// value. Factored out of init so tier-1 tests can exercise the env-side
// override without re-execing the process.
func initialTier(forceScalar string) *kernelSet {
	if forceScalar != "" {
		return scalarSet
	}
	return detected
}

// ForceScalar pins the package to the scalar tier (on=true) or restores
// the detected tier (on=false). Safe to call concurrently with running
// kernels; callers pairing a force with measurements should use
// defer ForceScalar(false).
func ForceScalar(on bool) {
	if on {
		active.Store(scalarSet)
	} else {
		active.Store(detected)
	}
}

// Tier returns the name of the dispatch tier currently serving kernel
// calls: "avx2", "neon" or "scalar".
func Tier() string { return active.Load().name }

// DetectedTier returns the best tier this CPU supports, independent of
// any ForceScalar override.
func DetectedTier() string { return detected.name }

// Features returns the detected CPU features relevant to kernel dispatch
// (e.g. "avx2", "fma" on amd64; "neon" on arm64; empty on other
// architectures). Benchmark reports record it so kernel numbers are
// honestly comparable across machines.
func Features() []string { return cpuFeatures() }
