//go:build arm64 && !purego

package vecmath

// dotNEON and sqL2NEON are the NEON float32 kernels (kern_arm64.s). They
// require n > 0 and both slices to hold at least n elements; the Go
// wrappers below enforce that. Each computes the canonical lane scheme of
// dotScalar/sqL2Scalar exactly — eight accumulator lanes split across two
// 4-lane vector registers, fixed-order reduction, sequential scalar
// tail — so results are bit-identical to the scalar and AVX2 tiers.
//
//go:noescape
func dotNEON(a, b *float32, n int) float32

//go:noescape
func sqL2NEON(a, b *float32, n int) float32

// dotBatchNEON and sqL2BatchNEON are the batched NEON kernels
// (kern_arm64.s): the candidate loop runs inside the assembly with the
// same per-candidate lane scheme as the single kernels, prefetching the
// next candidate's first cache lines while the current one is scored.
// They require n > 0, dim > 0, and pre-validated indices.
//
//go:noescape
func dotBatchNEON(q, arena *float32, stride int, idxs *int32, n, dim int, out *float32)

//go:noescape
func sqL2BatchNEON(q, arena *float32, stride int, idxs *int32, n, dim int, out *float32)

func dotNEONKernel(a, b []float32) float32 {
	if len(a) == 0 {
		return 0
	}
	return dotNEON(&a[0], &b[0], len(a))
}

func sqL2NEONKernel(a, b []float32) float32 {
	if len(a) == 0 {
		return 0
	}
	return sqL2NEON(&a[0], &b[0], len(a))
}

func dotBatchNEONKernel(q, arena []float32, stride int, idxs []int32, out []float32) {
	dotBatchNEON(&q[0], &arena[0], stride, &idxs[0], len(idxs), len(q), &out[0])
}

func sqL2BatchNEONKernel(q, arena []float32, stride int, idxs []int32, out []float32) {
	sqL2BatchNEON(&q[0], &arena[0], stride, &idxs[0], len(idxs), len(q), &out[0])
}

// detectFloatTiers on arm64 needs no probe: Advanced SIMD (NEON) is part
// of the ARMv8-A baseline Go requires, so the NEON tier is always usable.
func detectFloatTiers() []floatKernels {
	return []floatKernels{
		{name: "neon", dot: dotNEONKernel, sqL2: sqL2NEONKernel, dotBatch: dotBatchNEONKernel, sqL2Batch: sqL2BatchNEONKernel},
		scalarFloat,
	}
}

func cpuFeatures() []string { return []string{"neon"} }
