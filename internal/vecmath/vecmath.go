package vecmath

import "math"

// Dot returns the dot product of a and b. Panics if lengths differ — vector
// dimensionality is fixed per index, so a mismatch is a programming error.
//
// The result is computed by the active dispatch kernel (see doc.go): every
// implementation follows the same canonical lane-accumulation scheme, so
// the value is bit-identical whether the scalar, AVX2 or NEON kernel runs.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("vecmath: dimension mismatch")
	}
	return active.Load().dot(a, b)
}

// dotScalar is the portable reference implementation of Dot and the
// canonical definition of its result: blocks of eight elements feed eight
// independent lane accumulators (element i goes to lane i mod 8), the
// lanes are reduced in the fixed order ((s0+s1)+(s2+s3)) + ((s4+s5)+(s6+s7)),
// and the sub-block tail is added sequentially onto that block sum. The
// AVX2 kernel holds the eight lanes in one YMM register and the NEON
// kernel in two 4-lane registers, so all three produce bit-identical
// results at every input length. The explicit float32 conversions around
// each product are load-bearing: they force the product to be rounded
// before the add, which keeps the compiler (the arm64 backend in
// particular) from contracting multiply+add into a fused FMA with
// different rounding.
func dotScalar(a, b []float32) float32 {
	var s0, s1, s2, s3, s4, s5, s6, s7 float32
	i := 0
	for ; i+8 <= len(a) && i+8 <= len(b); i += 8 {
		aa := a[i : i+8 : i+8]
		bb := b[i : i+8 : i+8]
		s0 += float32(aa[0] * bb[0])
		s1 += float32(aa[1] * bb[1])
		s2 += float32(aa[2] * bb[2])
		s3 += float32(aa[3] * bb[3])
		s4 += float32(aa[4] * bb[4])
		s5 += float32(aa[5] * bb[5])
		s6 += float32(aa[6] * bb[6])
		s7 += float32(aa[7] * bb[7])
	}
	sum := ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))
	for ; i < len(a); i++ {
		sum += float32(a[i] * b[i])
	}
	return sum
}

// SquaredL2 returns the squared Euclidean distance between a and b. Like
// Dot it runs on the active dispatch kernel and is bit-identical across
// dispatch tiers (same lane scheme, with d*d in place of a*b).
func SquaredL2(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("vecmath: dimension mismatch")
	}
	return active.Load().sqL2(a, b)
}

// sqL2Scalar is the portable reference implementation of SquaredL2, built
// on the same canonical lane scheme as dotScalar (see there for why the
// float32 conversions matter).
func sqL2Scalar(a, b []float32) float32 {
	var s0, s1, s2, s3, s4, s5, s6, s7 float32
	i := 0
	for ; i+8 <= len(a) && i+8 <= len(b); i += 8 {
		aa := a[i : i+8 : i+8]
		bb := b[i : i+8 : i+8]
		d0 := aa[0] - bb[0]
		d1 := aa[1] - bb[1]
		d2 := aa[2] - bb[2]
		d3 := aa[3] - bb[3]
		d4 := aa[4] - bb[4]
		d5 := aa[5] - bb[5]
		d6 := aa[6] - bb[6]
		d7 := aa[7] - bb[7]
		s0 += float32(d0 * d0)
		s1 += float32(d1 * d1)
		s2 += float32(d2 * d2)
		s3 += float32(d3 * d3)
		s4 += float32(d4 * d4)
		s5 += float32(d5 * d5)
		s6 += float32(d6 * d6)
		s7 += float32(d7 * d7)
	}
	sum := ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		sum += float32(d * d)
	}
	return sum
}

// Norm returns the Euclidean norm of v: sqrt of the self dot product. It
// rides the Dot kernel, so stored norms are bit-identical across dispatch
// tiers too — they feed CosineWithNorms at query time, where any per-tier
// drift would break cross-machine result parity.
func Norm(v []float32) float32 {
	return float32(math.Sqrt(float64(active.Load().dot(v, v))))
}

// Normalize scales v to unit length in place and returns it. The zero vector
// is returned unchanged.
func Normalize(v []float32) []float32 {
	n := Norm(v)
	if n == 0 {
		return v
	}
	inv := 1 / n
	for i := range v {
		v[i] *= inv
	}
	return v
}

// Cosine returns the cosine similarity of a and b in [-1, 1]; 0 when either
// vector is zero.
func Cosine(a, b []float32) float32 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// CosineWithNorms is Cosine for callers that already know both vector norms
// (the HNSW index stores them at insert time); it skips the two norm
// recomputations. Semantics match Cosine exactly: 0 when either norm is 0.
// The division happens once, outside the kernel, so the whole expression
// is as bit-identical across dispatch tiers as Dot itself.
func CosineWithNorms(a, b []float32, na, nb float32) float32 {
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// DotInt8 returns the dot product of two int8 vectors, accumulating in
// int32. It is the scoring kernel of the quantized HNSW fast path: with
// components in [-127, 127] the accumulator is exact for any dimension up
// to 2^31/127^2 (≈133k), far beyond any embedding width here, so the
// result is bit-identical across every implementation. Like the float32
// kernels it runs on the active dispatch tier (see Int8Tier): on amd64 an
// AVX2 kernel when CPUID allows (32 lanes per iteration, sign-extended
// pair-sums into int32 lanes) above an SSE2 baseline kernel (16 lanes via
// PMADDWD — SSE2 needs no feature gate on amd64); elsewhere the unrolled
// scalar loop of dotInt8Scalar. Integer arithmetic has no rounding, so the
// dispatch never changes results, only speed. Panics if lengths differ,
// like Dot.
func DotInt8(a, b []int8) int32 {
	if len(a) != len(b) {
		panic("vecmath: dimension mismatch")
	}
	return active.Load().dotInt8(a, b)
}

// dotInt8Scalar is the portable reference implementation of DotInt8: the
// non-amd64 kernel, and the oracle the assembly kernel is tested against.
// The body is unrolled 16-wide over full-length sub-slices: the re-slices
// prove all sixteen loads in bounds at once (one check per block instead
// of one per element — the int8 loads otherwise bounds-check-dominate,
// unlike the float32 kernels), and four independent accumulators keep the
// sign-extend/multiply chains pipelined.
func dotInt8Scalar(a, b []int8) int32 {
	var s0, s1, s2, s3 int32
	i := 0
	for ; i+16 <= len(a) && i+16 <= len(b); i += 16 {
		aa := a[i : i+16 : i+16]
		bb := b[i : i+16 : i+16]
		s0 += int32(aa[0])*int32(bb[0]) + int32(aa[4])*int32(bb[4]) + int32(aa[8])*int32(bb[8]) + int32(aa[12])*int32(bb[12])
		s1 += int32(aa[1])*int32(bb[1]) + int32(aa[5])*int32(bb[5]) + int32(aa[9])*int32(bb[9]) + int32(aa[13])*int32(bb[13])
		s2 += int32(aa[2])*int32(bb[2]) + int32(aa[6])*int32(bb[6]) + int32(aa[10])*int32(bb[10]) + int32(aa[14])*int32(bb[14])
		s3 += int32(aa[3])*int32(bb[3]) + int32(aa[7])*int32(bb[7]) + int32(aa[11])*int32(bb[11]) + int32(aa[15])*int32(bb[15])
	}
	for ; i < len(a); i++ {
		s0 += int32(a[i]) * int32(b[i])
	}
	return (s0 + s1) + (s2 + s3)
}
