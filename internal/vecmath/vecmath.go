// Package vecmath provides the small float32 vector kernel used by the
// embedder and the HNSW index: dot product, norms, cosine similarity and
// squared Euclidean distance.
//
// The kernels are unrolled four-wide with independent accumulators so the
// per-element multiply-adds pipeline instead of serializing on one
// accumulator's latency chain. The reduction order (lane sums combined as
// (s0+s1)+(s2+s3)) is fixed, so results are deterministic run to run and
// identical everywhere the same kernel is used — but they differ in the
// last ULP from a naive sequential sum, which is why every caller in the
// repo goes through this package rather than hand-rolling a loop.
package vecmath

import "math"

// Dot returns the dot product of a and b. Panics if lengths differ — vector
// dimensionality is fixed per index, so a mismatch is a programming error.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("vecmath: dimension mismatch")
	}
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// Norm returns the Euclidean norm of v.
func Norm(v []float32) float32 {
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(v); i += 4 {
		s0 += v[i] * v[i]
		s1 += v[i+1] * v[i+1]
		s2 += v[i+2] * v[i+2]
		s3 += v[i+3] * v[i+3]
	}
	for ; i < len(v); i++ {
		s0 += v[i] * v[i]
	}
	return float32(math.Sqrt(float64((s0 + s1) + (s2 + s3))))
}

// Normalize scales v to unit length in place and returns it. The zero vector
// is returned unchanged.
func Normalize(v []float32) []float32 {
	n := Norm(v)
	if n == 0 {
		return v
	}
	inv := 1 / n
	for i := range v {
		v[i] *= inv
	}
	return v
}

// Cosine returns the cosine similarity of a and b in [-1, 1]; 0 when either
// vector is zero.
func Cosine(a, b []float32) float32 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// CosineWithNorms is Cosine for callers that already know both vector norms
// (the HNSW index stores them at insert time); it skips the two norm
// recomputations. Semantics match Cosine exactly: 0 when either norm is 0.
func CosineWithNorms(a, b []float32, na, nb float32) float32 {
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// DotInt8 returns the dot product of two int8 vectors, accumulating in
// int32. It is the scoring kernel of the quantized HNSW fast path: with
// components in [-127, 127] the accumulator is exact for any dimension up
// to 2^31/127^2 (≈133k), far beyond any embedding width here, so the
// result is bit-identical across the SIMD and scalar implementations. On
// amd64 the body is an SSE2 kernel (16 lanes per iteration via PMADDWD —
// SSE2 is in the amd64 baseline, so there is no feature gate); elsewhere
// it is the unrolled scalar loop of dotInt8Scalar. Integer arithmetic has
// no rounding, so the dispatch never changes results, only speed. Panics
// if lengths differ, like Dot.
func DotInt8(a, b []int8) int32 {
	if len(a) != len(b) {
		panic("vecmath: dimension mismatch")
	}
	return dotInt8Kernel(a, b)
}

// dotInt8Scalar is the portable reference implementation of DotInt8: the
// non-amd64 kernel, and the oracle the assembly kernel is tested against.
// The body is unrolled 16-wide over full-length sub-slices: the re-slices
// prove all sixteen loads in bounds at once (one check per block instead
// of one per element — the int8 loads otherwise bounds-check-dominate,
// unlike the float32 kernels), and four independent accumulators keep the
// sign-extend/multiply chains pipelined.
func dotInt8Scalar(a, b []int8) int32 {
	var s0, s1, s2, s3 int32
	i := 0
	for ; i+16 <= len(a) && i+16 <= len(b); i += 16 {
		aa := a[i : i+16 : i+16]
		bb := b[i : i+16 : i+16]
		s0 += int32(aa[0])*int32(bb[0]) + int32(aa[4])*int32(bb[4]) + int32(aa[8])*int32(bb[8]) + int32(aa[12])*int32(bb[12])
		s1 += int32(aa[1])*int32(bb[1]) + int32(aa[5])*int32(bb[5]) + int32(aa[9])*int32(bb[9]) + int32(aa[13])*int32(bb[13])
		s2 += int32(aa[2])*int32(bb[2]) + int32(aa[6])*int32(bb[6]) + int32(aa[10])*int32(bb[10]) + int32(aa[14])*int32(bb[14])
		s3 += int32(aa[3])*int32(bb[3]) + int32(aa[7])*int32(bb[7]) + int32(aa[11])*int32(bb[11]) + int32(aa[15])*int32(bb[15])
	}
	for ; i < len(a); i++ {
		s0 += int32(a[i]) * int32(b[i])
	}
	return (s0 + s1) + (s2 + s3)
}

// SquaredL2 returns the squared Euclidean distance between a and b.
func SquaredL2(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("vecmath: dimension mismatch")
	}
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	return (s0 + s1) + (s2 + s3)
}
