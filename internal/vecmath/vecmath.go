// Package vecmath provides the small float32 vector kernel used by the
// embedder and the HNSW index: dot product, norms, cosine similarity and
// squared Euclidean distance.
package vecmath

import "math"

// Dot returns the dot product of a and b. Panics if lengths differ — vector
// dimensionality is fixed per index, so a mismatch is a programming error.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("vecmath: dimension mismatch")
	}
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func Norm(v []float32) float32 {
	var s float32
	for _, x := range v {
		s += x * x
	}
	return float32(math.Sqrt(float64(s)))
}

// Normalize scales v to unit length in place and returns it. The zero vector
// is returned unchanged.
func Normalize(v []float32) []float32 {
	n := Norm(v)
	if n == 0 {
		return v
	}
	inv := 1 / n
	for i := range v {
		v[i] *= inv
	}
	return v
}

// Cosine returns the cosine similarity of a and b in [-1, 1]; 0 when either
// vector is zero.
func Cosine(a, b []float32) float32 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// SquaredL2 returns the squared Euclidean distance between a and b.
func SquaredL2(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("vecmath: dimension mismatch")
	}
	var s float32
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
